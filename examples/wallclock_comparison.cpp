// Runs the same task system on both execution substrates — the exact
// virtual-time engine and the approximate wall-clock executor — and puts
// their response-time statistics side by side. The virtual engine stands
// in for the paper's jRate/TimeSys testbed measurements; the wall-clock
// run shows what the same workload does on a stock (non-RT) kernel,
// where preemption latency is one cooperative slice.
#include <cstdio>

#include "posix/tsc_clock.hpp"
#include "posix/wallclock_executor.hpp"
#include "runtime/engine.hpp"
#include "sched/response_time.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;

  // A small 3-task system (periods scaled down so the wall-clock run
  // finishes in ~0.6 s of real time).
  sched::TaskSet tasks;
  tasks.add({"hi", 30, 5_ms, 40_ms, 40_ms, 0_ms});
  tasks.add({"mid", 20, 10_ms, 80_ms, 80_ms, 0_ms});
  tasks.add({"lo", 10, 15_ms, 120_ms, 120_ms, 0_ms});
  const Duration horizon = 600_ms;

  std::printf("TSC time source: %s (%.2f cycles/ns)\n\n",
              posix::TscClock::uses_tsc() ? "rdtsc" : "steady_clock",
              posix::TscClock().cycles_per_ns());

  // Virtual-time run (exact).
  rt::EngineOptions vopts;
  vopts.horizon = Instant::epoch() + horizon;
  rt::Engine engine(vopts);
  std::vector<rt::TaskHandle> vh;
  for (const auto& t : tasks) vh.push_back(engine.add_task(t));
  engine.run();

  // Wall-clock run (approximate, 1 ms preemption slice).
  posix::WallclockOptions wopts;
  wopts.horizon = horizon;
  posix::WallclockExecutor exec(wopts);
  std::vector<rt::TaskHandle> wh;
  for (const auto& t : tasks) wh.push_back(exec.add_task(t));
  exec.run();

  std::puts("task  analytic-WCRT  virtual max-resp  wallclock max-resp  "
            "(virtual released / wallclock released)");
  for (sched::TaskId i = 0; i < tasks.size(); ++i) {
    const auto rta = sched::response_time(tasks, i);
    const auto& vs = engine.stats(vh[i]);
    const auto& ws = exec.stats(wh[i]);
    std::printf("%-4s  %-13s  %-16s  %-18s  (%lld / %lld)\n",
                tasks[i].name.c_str(), to_string(rta.wcrt).c_str(),
                to_string(vs.max_response).c_str(),
                to_string(ws.max_response).c_str(),
                static_cast<long long>(vs.released),
                static_cast<long long>(ws.released));
  }
  std::puts("\nreading: the virtual engine matches the analysis exactly;"
            "\nthe wall-clock run tracks it within scheduling noise and"
            "\nthe cooperative slice — on the paper's RT kernel the gap"
            "\nwould shrink to the kernel's preemption latency.");
  return 0;
}
