// Quickstart: admission control, fault injection and treatment in ~60
// lines. Builds the paper's Table 2 task system, verifies it is feasible,
// injects a cost overrun into the highest-priority task, runs it under
// the equitable-allowance treatment and renders what happened.
#include <cstdio>
#include <string>

#include "core/ft_system.hpp"
#include "sched/feasibility.hpp"
#include "sched/format.hpp"
#include "trace/ascii_chart.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;

  // 1. Describe the periodic task system (paper Table 2, priorities are
  //    RTSJ-style: larger = more urgent).
  sched::TaskSet tasks;
  tasks.add({"tau1", 20, 29_ms, 200_ms, 70_ms, 0_ms});
  tasks.add({"tau2", 18, 29_ms, 250_ms, 120_ms, 0_ms});
  tasks.add({"tau3", 16, 29_ms, 1500_ms, 120_ms, 1000_ms});

  // 2. Admission control: load test + worst-case response times.
  const sched::FeasibilityReport feasibility = sched::analyze(tasks);
  std::puts("== admission control ==");
  std::puts(feasibility.summary(tasks).c_str());
  if (!feasibility.feasible) return 1;

  // 3. Configure the experiment: τ1's job released at t=1000 ms overruns
  //    its 29 ms budget by 40 ms; the equitable-allowance treatment stops
  //    it once it exceeds WCRT+A so the lower-priority tasks survive.
  core::FtSystemConfig config;
  config.tasks = tasks;
  config.policy = core::TreatmentPolicy::kEquitableAllowance;
  config.horizon = 2000_ms;
  core::FaultPlan faults;
  faults.add_overrun("tau1", /*job_index=*/5, /*extra=*/40_ms);

  // 4. Run.
  core::FaultTolerantSystem system(config, faults);
  const core::RunReport report = system.run();
  std::puts("\n== run report ==");
  std::puts(report.summary().c_str());

  // 5. Inspect: statistics and the paper-style time-series chart of the
  //    fault window.
  const trace::SystemTimeline timeline = trace::build_timeline(
      tasks, system.recorder(), Instant::epoch() + config.horizon);
  std::puts("== statistics ==");
  std::puts(trace::compute_stats(timeline).table().c_str());

  trace::AsciiChartOptions chart;
  chart.from = Instant::epoch() + 980_ms;
  chart.to = Instant::epoch() + 1140_ms;
  chart.width = 80;
  std::puts("== fault window (t = 980..1140 ms) ==");
  std::puts(trace::render_ascii_chart(timeline, chart).c_str());
  return 0;
}
