// Distributed sweep driver — runs one sweep as a fleet of sweep_runner
// worker processes with crash re-issue, straggler speculation and
// checkpoint resume, then prints the same report (and fingerprint) the
// single-process run would have produced.
//
//   sweep_coordinator --runner BIN --output-dir DIR
//                     [--scenarios N] [--seed S] [--workers W]
//                     [--tasks ...] [--util ...] [--detector-cost-us ...]
//                     [--stop-latency-us ...] [--cores ...]
//                     [--quantum-us ...]
//                     [--partitioner both|first-fit|fault-aware]
//                     [--core-fault F] [--policy NAME]
//                     [--horizon-periods K] [--event-queue wheel|heap]
//                     [--sink-mode static|virtual]
//                     [--cost-spec flat|function]
//                     [--shards M] [--max-procs P] [--retry-budget R]
//                     [--straggler-factor F]
//                     [--min-straggler-timeout-ms MS]
//                     [--poll-interval-ms MS] [--progress] [--quiet]
//
// The sweep-defining flags are the same ones sweep_runner takes (shared
// sweep/cli.hpp parser); --workers is the thread count *inside each
// worker process*, --max-procs the number of concurrent processes.
//
// The output directory holds one shard-<i>.json per completed shard.
// These are the checkpoints: re-running the same command after killing
// the coordinator adopts every valid file and computes only what is
// missing. A worker that dies — or stalls past the straggler timeout —
// has its range re-issued up to --retry-budget extra attempts; a shard
// failing every attempt aborts the run with exit 2.
//
// Lifecycle lines (launch, re-issue, resume, straggler kills) go to
// stderr; --quiet drops them. --progress adds the live scenario
// aggregate across all workers (same format as sweep_runner's).
// Exit code: 0 sound, 1 soundness violation in the merged report, 2 on
// any error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "sweep/cli.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace rtft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --runner BIN --output-dir DIR\n"
      "          [--scenarios N] [--seed S] [--workers W]\n"
      "          [--tasks n1,n2,...] [--util u1,u2,...]\n"
      "          [--detector-cost-us c1,c2,...]\n"
      "          [--stop-latency-us l1,l2,...]\n"
      "          [--cores m1,m2,...] [--quantum-us q1,q2,...]\n"
      "          [--partitioner both|first-fit|fault-aware]\n"
      "          [--core-fault F] [--policy NAME]\n"
      "          [--horizon-periods K] [--event-queue wheel|heap]\n"
      "          [--sink-mode static|virtual] [--cost-spec flat|function]\n"
      "          [--shards M] [--max-procs P] [--retry-budget R]\n"
      "          [--straggler-factor F] [--min-straggler-timeout-ms MS]\n"
      "          [--poll-interval-ms MS] [--progress] [--quiet]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::SweepOptions opts;
  sweep::CoordinatorOptions copts;
  bool progress = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (sweep::cli::apply_sweep_flag(arg, value, opts)) {
        continue;
      } else if (arg == "--runner") {
        copts.runner = value();
      } else if (arg == "--output-dir") {
        copts.output_dir = value();
      } else if (arg == "--shards") {
        copts.shards = sweep::cli::parse_u64("--shards", value(), 1, 1 << 20);
      } else if (arg == "--max-procs") {
        copts.max_procs = static_cast<std::size_t>(sweep::cli::parse_u64(
            "--max-procs", value(), 1, sweep::cli::kMaxWorkers));
      } else if (arg == "--retry-budget") {
        copts.retry_budget = static_cast<int>(
            sweep::cli::parse_u64("--retry-budget", value(), 0, 1000));
      } else if (arg == "--straggler-factor") {
        // 0 disables straggler kills, so this one scalar flag may be 0.
        const std::string v = value();
        copts.straggler_factor =
            v == "0" ? 0.0
                     : sweep::cli::parse_positive_double("--straggler-factor",
                                                         v);
      } else if (arg == "--min-straggler-timeout-ms") {
        copts.min_straggler_timeout =
            Duration::ms(static_cast<std::int64_t>(sweep::cli::parse_u64(
                "--min-straggler-timeout-ms", value(), 1, 86'400'000)));
      } else if (arg == "--poll-interval-ms") {
        copts.poll_interval =
            Duration::ms(static_cast<std::int64_t>(sweep::cli::parse_u64(
                "--poll-interval-ms", value(), 1, 60'000)));
      } else if (arg == "--progress") {
        progress = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        usage(argv[0]);
      }
    }
  } catch (const sweep::cli::ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (copts.runner.empty() || copts.output_dir.empty()) usage(argv[0]);

  if (!quiet) {
    copts.on_log = [](const std::string& line) {
      std::fprintf(stderr, "coordinator: %s\n", line.c_str());
    };
  }
  if (progress) {
    // The coordinator aggregate may regress when a worker dies (its
    // in-flight scenarios are re-run); the printer passes backward
    // jumps through, keeping the display honest.
    copts.on_progress = sweep::cli::stderr_progress_printer();
  }

  sweep::CoordinatorResult result;
  try {
    sweep::ProcessTransport transport;
    sweep::Coordinator coordinator(opts, std::move(copts), transport);
    result = coordinator.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const sweep::SweepReport& report = result.report;
  std::printf(
      "coordinated sweep: %llu scenarios over %llu shard(s): "
      "%llu resumed, %llu worker(s) launched, %llu re-issued, "
      "%llu straggler kill(s), %llu invalid file(s)\n\n",
      static_cast<unsigned long long>(report.options.scenario_count),
      static_cast<unsigned long long>(result.stats.shards),
      static_cast<unsigned long long>(result.stats.resumed),
      static_cast<unsigned long long>(result.stats.launched),
      static_cast<unsigned long long>(result.stats.reissued),
      static_cast<unsigned long long>(result.stats.straggler_kills),
      static_cast<unsigned long long>(result.stats.invalid_files));
  std::fputs(report.table().c_str(), stdout);
  std::printf("\nfingerprint %016llx\n",
              static_cast<unsigned long long>(report.fingerprint));

  // Same soundness contract as sweep_runner: the distributed run is a
  // drop-in for the single-process one, exit code included.
  const bool sound =
      report.totals.agreement_violations == 0 &&
      report.totals.allowance_honored == report.totals.allowance_feasible;
  return sound ? 0 : 1;
}
