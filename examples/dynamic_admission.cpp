// Dynamic admission — the paper's §7 future work ("a more dynamic system
// where tasks can be added or removed in real-time by adapting the
// behavior of our detectors"), built on the same engine: tasks arrive at
// runtime, each is admitted only if the *current* system plus the
// newcomer stays feasible, and on every admission the whole detector
// bank is re-armed with thresholds recomputed for the new task mix —
// otherwise a newcomer that raises an old task's WCRT would make its
// stale detector cry wolf.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "runtime/engine.hpp"
#include "sched/feasibility.hpp"
#include "sched/response_time.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

struct Arrival {
  Duration when;
  sched::TaskParams params;
};

}  // namespace

int main() {
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + 1200_ms;
  rt::Engine engine(opts);

  sched::FeasibilityAnalysis admission;
  std::vector<rt::TaskHandle> handles;        // engine handles, admit order
  std::vector<std::string> names;             // matching task names
  std::unique_ptr<core::DetectorBank> bank;   // current detector bank

  // Re-arms detectors for every admitted task using WCRTs from the
  // current mix. Earlier banks are cancelled: their thresholds no longer
  // reflect the system.
  const auto rearm_detectors = [&](rt::Engine& e) {
    if (bank) bank->cancel(e);
    const sched::TaskSet& mix = admission.task_set();
    std::vector<Duration> thresholds;
    thresholds.reserve(handles.size());
    for (const std::string& name : names) {
      thresholds.push_back(
          sched::response_time(mix, mix.find(name)).wcrt);
    }
    bank = std::make_unique<core::DetectorBank>(
        e, handles, thresholds, core::DetectorConfig{},
        core::DetectorBank::FaultHandler{});
    for (std::size_t i = 0; i < handles.size(); ++i) {
      std::printf("         detector for %-6s armed at threshold %s\n",
                  names[i].c_str(),
                  to_string(bank->quantized_threshold(i)).c_str());
    }
  };

  const std::vector<Arrival> arrivals = {
      {0_ms, {"base", 30, 20_ms, 100_ms, 100_ms, 0_ms}},
      {150_ms, {"video", 28, 40_ms, 120_ms, 120_ms, 0_ms}},
      {300_ms, {"hog", 26, 90_ms, 150_ms, 150_ms, 0_ms}},   // must be refused
      {450_ms, {"audio", 32, 10_ms, 50_ms, 50_ms, 0_ms}},   // outranks all
  };

  for (const Arrival& a : arrivals) {
    engine.add_one_shot_timer(
        Instant::epoch() + a.when, [&, params = a.params](rt::Engine& e) {
          const bool ok = admission.add(params);
          std::printf("t=%-7s arrival of %-6s (P=%d C=%s T=%s) -> %s\n",
                      to_string(e.now()).c_str(), params.name.c_str(),
                      params.priority, to_string(params.cost).c_str(),
                      to_string(params.period).c_str(),
                      ok ? "admitted" : "REFUSED");
          if (!ok) return;
          handles.push_back(e.add_task(params, {}, {}, e.now()));
          names.push_back(params.name);
          rearm_detectors(e);
        });
  }

  engine.run();

  std::puts("\nfinal admitted set:");
  std::puts(admission.report().summary(admission.task_set()).c_str());

  std::printf("detector faults over the run: %lld (0 expected — nobody "
              "overran, and thresholds track the evolving mix)\n",
              static_cast<long long>(bank ? bank->total_faults() : 0));

  for (std::size_t i = 0; i < handles.size(); ++i) {
    const rt::TaskStats& s = engine.stats(handles[i]);
    std::printf("%-6s released=%lld completed=%lld missed=%lld\n",
                names[i].c_str(), static_cast<long long>(s.released),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.missed));
  }
  return 0;
}
