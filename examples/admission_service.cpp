// Admission service driver + load generator.
//
// Spins up the always-on AdmissionService, fires a configurable number of
// producer threads at it flat out (the overload case the service is built
// for), and prints the metrics summary: how much was answered and at
// which degradation tier, how much the backpressure turned away, what the
// fault plan injected and how it was absorbed.
//
//   admission_service --requests 2000 --producers 4 --workers 2
//       --queue 64 --sets 32 --seed 42 [--faults] [--deadline-ms 50]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "sweep/generators.hpp"

namespace {

using namespace rtft;

struct Cli {
  std::size_t requests = 2000;
  std::size_t producers = 4;
  std::size_t workers = 2;
  std::size_t queue = 64;
  std::size_t sets = 32;       ///< distinct task-set population.
  std::uint64_t seed = 42;
  std::int64_t deadline_ms = 0;  ///< per-request budget; 0 = none.
  bool faults = false;
};

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

std::size_t parse_size(const char* flag, const char* value, std::size_t lo,
                       std::size_t hi) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || v < lo || v > hi) {
    die(std::string(flag) + " must be in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "] (got '" + value + "')");
  }
  return static_cast<std::size_t>(v);
}

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) die(std::string(flag) + " expects a value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--requests") == 0) {
      cli.requests = parse_size("--requests", next("--requests"), 1, 1u << 24);
    } else if (std::strcmp(argv[i], "--producers") == 0) {
      cli.producers = parse_size("--producers", next("--producers"), 1, 64);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      cli.workers = parse_size("--workers", next("--workers"), 1, 64);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      cli.queue = parse_size("--queue", next("--queue"), 1, 1u << 20);
    } else if (std::strcmp(argv[i], "--sets") == 0) {
      cli.sets = parse_size("--sets", next("--sets"), 1, 1u << 16);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cli.seed = parse_size("--seed", next("--seed"), 0, ~0ull >> 1);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      cli.deadline_ms = static_cast<std::int64_t>(
          parse_size("--deadline-ms", next("--deadline-ms"), 1, 1u << 20));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      cli.faults = true;
    } else {
      die(std::string("unknown flag '") + argv[i] + "'");
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);

  // The request population: a fixed pool of random task sets spanning
  // clearly-feasible through overloaded, so answers mix admits, rejects
  // and (under degradation) inconclusives.
  std::vector<serve::AdmissionRequest> pool;
  pool.reserve(cli.sets);
  for (std::size_t i = 0; i < cli.sets; ++i) {
    RandomTaskSetSpec spec;
    spec.tasks = 2 + i % 5;
    spec.total_utilization = 0.3 + 0.9 * static_cast<double>(i) /
                                       static_cast<double>(cli.sets);
    serve::AdmissionRequest req;
    req.tasks =
        sweep::make_seeded_task_set(sweep::scenario_seed(cli.seed, i), spec)
            .tasks();
    if (cli.deadline_ms > 0) req.time_budget = Duration::ms(cli.deadline_ms);
    pool.push_back(std::move(req));
  }

  serve::ServiceOptions opts;
  opts.workers = cli.workers;
  opts.queue_capacity = cli.queue;
  if (cli.faults) {
    // Periods low enough that even a mostly-rejected burst (the queue is
    // the throughput bound, not the offered load) sees every class fire.
    opts.faults.worker_throw_every = 23;
    opts.faults.clock_skip_every = 31;
    opts.faults.clock_skip = Duration::ms(20);
    opts.faults.corrupt_cache_every = 13;
  }
  serve::AdmissionService service{opts};

  std::vector<std::thread> producers;
  producers.reserve(cli.producers);
  const std::size_t per_producer = cli.requests / cli.producers;
  for (std::size_t p = 0; p < cli.producers; ++p) {
    producers.emplace_back([&, p] {
      // Fire-and-collect: futures are drained only after the whole burst
      // is submitted, so producers genuinely outpace the workers and the
      // backpressure path gets exercised.
      std::vector<std::future<serve::AdmissionResponse>> in_flight;
      in_flight.reserve(per_producer);
      for (std::size_t i = 0; i < per_producer; ++i) {
        serve::AdmissionRequest req = pool[(p + i * cli.producers) % cli.sets];
        req.id = p * per_producer + i;
        in_flight.push_back(service.submit(std::move(req)));
      }
      for (auto& f : in_flight) (void)f.get();
    });
  }
  for (std::thread& t : producers) t.join();
  service.stop();

  const serve::ServiceMetrics m = service.metrics();
  std::fputs(m.summary().c_str(), stdout);

  // Sanity: the service must have answered something and the books must
  // balance; a nonzero exit makes the smoke test catch regressions.
  if (m.answered == 0) die("service answered nothing");
  if (m.submitted != m.accepted + m.rejected_full + m.rejected_shutdown) {
    die("submission accounting does not balance");
  }
  if (m.accepted !=
      m.answered + m.shed_deadline + m.invalid + m.worker_errors) {
    die("outcome accounting does not balance");
  }
  if (m.cross_check_disagreements != 0) {
    die("engine cross-check disagreed with the analysis");
  }
  return 0;
}
