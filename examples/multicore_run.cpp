// Partitioned multiprocessor demo — one random task set placed onto an
// M-core fleet by both shipped partitioners, then run through a
// mid-horizon core failure with backup fail-over (src/multicore/).
//
//   multicore_run [--tasks N] [--cores M] [--util U] [--seed S]
//                 [--horizon-periods K] [--fault-frac F]
//
// The demo prints, per strategy, the primary/backup placement and the
// per-task fail-over verdicts after killing the busiest core at
// F x horizon. The interesting comparison is the default one: first-fit
// reserves no backup capacity, so its fail-over may miss deadlines;
// fault-aware admits every backup by RTA against the worst post-failure
// load, so a placement it accepts must survive — the demo exits 1 if
// that guarantee is ever contradicted (CI runs it as a smoke test).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "multicore/multi_engine.hpp"
#include "multicore/partition.hpp"
#include "runtime/engine.hpp"
#include "sweep/generators.hpp"

namespace {

using namespace rtft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tasks N] [--cores M] [--util U] [--seed S]\n"
               "          [--horizon-periods K] [--fault-frac F]\n",
               argv0);
  std::exit(2);
}

[[noreturn]] void bad_value(const char* flag, const std::string& value,
                            const char* expects) {
  std::fprintf(stderr, "error: %s %s (got '%s')\n", flag, expects,
               value.c_str());
  std::exit(2);
}

std::int64_t parse_int(const char* flag, const std::string& value,
                       std::int64_t min, std::int64_t max) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || v < min || v > max) {
    bad_value(flag, value,
              ("must be an integer in [" + std::to_string(min) + ", " +
               std::to_string(max) + "]")
                  .c_str());
  }
  return static_cast<std::int64_t>(v);
}

double parse_fraction(const char* flag, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !(v >= 0.0) || !(v <= 1.0)) {
    bad_value(flag, value, "must be a fraction in [0, 1]");
  }
  return v;
}

const char* outcome_name(multicore::FailoverOutcome o) {
  switch (o) {
    case multicore::FailoverOutcome::kSurvived:
      return "survived";
    case multicore::FailoverOutcome::kMissedDuringFailover:
      return "missed-during-failover";
    case multicore::FailoverOutcome::kInfeasiblePlacement:
      return "infeasible-placement";
  }
  return "?";
}

std::string core_name(std::size_t core) {
  return core == multicore::kNoCore ? "-" : std::to_string(core);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tasks = 8;
  std::size_t cores = 4;
  double util = 2.2;
  std::uint64_t seed = 1;
  std::int64_t horizon_periods = 20;
  double fault_frac = 0.5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--tasks") {
      tasks = static_cast<std::size_t>(parse_int("--tasks", value(), 1, 64));
    } else if (arg == "--cores") {
      cores = static_cast<std::size_t>(parse_int("--cores", value(), 1, 64));
    } else if (arg == "--util") {
      const std::string v = value();
      char* end = nullptr;
      util = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(util > 0.0)) {
        bad_value("--util", v, "must be a total utilization > 0");
      }
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(
          parse_int("--seed", value(), 0,
                    std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--horizon-periods") {
      horizon_periods = parse_int("--horizon-periods", value(), 1, 100000);
    } else if (arg == "--fault-frac") {
      fault_frac = parse_fraction("--fault-frac", value());
    } else {
      usage(argv[0]);
    }
  }

  RandomTaskSetSpec spec;
  spec.tasks = tasks;
  spec.total_utilization = util;
  const sched::TaskSet ts = sweep::make_seeded_task_set(seed, spec);

  Duration max_period = Duration::zero();
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    max_period = std::max(max_period, ts[id].period);
  }
  const Duration horizon = max_period * horizon_periods;

  std::printf("task set: %zu tasks, total utilization %.3f, seed %llu\n",
              ts.size(), util, static_cast<unsigned long long>(seed));
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    std::printf("  %-4s C=%-8.3fms T=%-8.3fms D=%-8.3fms u=%.3f\n",
                ts[id].name.c_str(), ts[id].cost.to_ms(),
                ts[id].period.to_ms(), ts[id].deadline.to_ms(),
                static_cast<double>(ts[id].cost.count()) /
                    static_cast<double>(ts[id].period.count()));
  }
  std::printf("fleet: %zu cores, horizon %.1fms, fault at %.0f%% of it\n",
              cores, horizon.to_ms(), 100.0 * fault_frac);

  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + horizon;
  eopts.sink_mode = trace::SinkMode::kStaticNull;

  const Duration fault_after = Duration::ns(static_cast<std::int64_t>(
      fault_frac * static_cast<double>(horizon.count())));

  const multicore::FirstFitDecreasing first_fit;
  const multicore::FaultAware fault_aware;
  multicore::MultiEngine fleet;
  bool fault_aware_contradicted = false;

  for (const multicore::Partitioner* strategy :
       {static_cast<const multicore::Partitioner*>(&first_fit),
        static_cast<const multicore::Partitioner*>(&fault_aware)}) {
    std::printf("\n=== %s ===\n", strategy->name());
    const multicore::Placement placement = strategy->place(ts, cores);
    if (!placement.feasible) {
      std::printf("placement infeasible: %s\n", placement.reason.c_str());
      continue;
    }
    for (sched::TaskId id = 0; id < ts.size(); ++id) {
      std::printf("  %-4s primary core %s, backup core %s\n",
                  ts[id].name.c_str(),
                  core_name(placement.primary[id]).c_str(),
                  core_name(placement.backup[id]).c_str());
    }

    fleet.reset(cores, eopts);
    fleet.add_placed(ts, placement);
    multicore::CoreFaultPlan fault;
    if (fault_after.is_positive() && fault_after < horizon) {
      const std::vector<double> load =
          multicore::primary_utilization(ts, placement, cores);
      std::size_t victim = 0;
      for (std::size_t c = 1; c < load.size(); ++c) {
        if (load[c] > load[victim]) victim = c;
      }
      fault.core = victim;
      fault.at = Instant::epoch() + fault_after;
      std::printf("killing core %zu (primary load %.3f) at %.1fms\n", victim,
                  load[victim], fault_after.to_ms());
    }
    const multicore::MultiRunReport report = fleet.run_with_fault(fault);
    for (const multicore::TaskFailoverReport& t : report.tasks) {
      std::printf("  %-4s %-22s misses=%lld lost=%lld%s\n",
                  ts[t.task].name.c_str(), outcome_name(t.outcome),
                  static_cast<long long>(t.misses),
                  static_cast<long long>(t.lost_jobs),
                  t.failed_over ? "  (failed over)" : "");
    }
    std::printf("%s: %s (%lld task(s) not clean, %lld job(s) lost)\n",
                strategy->name(),
                report.failover_clean ? "failover clean" : "NOT clean",
                static_cast<long long>(report.missed_tasks),
                static_cast<long long>(report.total_lost_jobs));
    if (strategy == &fault_aware && !report.failover_clean) {
      fault_aware_contradicted = true;
    }
  }

  // Fault-aware placements are admitted against the worst post-failure
  // load, so an unclean fault-aware run contradicts the subsystem's
  // central guarantee — fail loudly so CI notices.
  if (fault_aware_contradicted) {
    std::fprintf(stderr,
                 "error: fault-aware placement missed deadlines during "
                 "fail-over\n");
    return 1;
  }
  return 0;
}
