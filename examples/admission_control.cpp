// Admission control in depth: the paper's §2 machinery on its own —
// utilization bounds, exact response-time analysis (including the
// Table 1 example where the worst job is not the first), incremental
// admission (the RTSJ addToFeasibility/removeFromFeasibility semantics
// the authors had to reimplement), and automatic priority assignment.
#include <cstdio>
#include <string>

#include "core/paper.hpp"
#include "sched/allowance.hpp"
#include "sched/feasibility.hpp"
#include "sched/format.hpp"
#include "sched/priority.hpp"
#include "sched/response_time.hpp"
#include "sched/utilization.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

void print_utilization_tests(const sched::TaskSet& ts, const char* name) {
  std::printf("-- %s --\n", name);
  std::printf("U = %.4f; Liu&Layland bound(%zu) = %.4f -> %s; hyperbolic -> %s\n",
              ts.utilization(), ts.size(),
              sched::liu_layland_bound(ts.size()),
              sched::passes_liu_layland(ts) ? "pass" : "inconclusive",
              sched::passes_hyperbolic(ts) ? "pass" : "inconclusive");
}

void print_per_job_responses(const sched::TaskSet& ts, sched::TaskId id) {
  sched::RtaOptions opts;
  opts.record_jobs = true;
  const sched::RtaResult r = sched::response_time(ts, id, opts);
  std::printf("per-job responses of %s:", ts[id].name.c_str());
  for (const sched::JobResponse& j : r.jobs) {
    std::printf(" job%lld=%s", static_cast<long long>(j.index),
                to_string(j.response).c_str());
  }
  std::printf("  (WCRT %s at job %lld)\n", to_string(r.wcrt).c_str(),
              static_cast<long long>(r.worst_job));
}

}  // namespace

int main() {
  // --- Table 1: the worst case is not always the critical instant. ---
  const sched::TaskSet t1 = core::paper::table1_system();
  print_utilization_tests(t1, "Table 1 system");
  print_per_job_responses(t1, 1);
  std::puts(sched::analyze(t1).summary(t1).c_str());

  // --- Table 2: the evaluated system, with allowances. ---
  const sched::TaskSet t2 = core::paper::table2_system();
  print_utilization_tests(t2, "Table 2 system");
  const auto reports = sched::response_times(t2);
  std::vector<Duration> wcrt;
  for (const auto& r : reports) wcrt.push_back(r.wcrt);
  const sched::EquitableAllowance allowance = sched::equitable_allowance(t2);
  std::vector<Duration> per_task_allowance(t2.size(), allowance.allowance);
  sched::TableColumns cols;
  cols.wcrt = &wcrt;
  cols.allowance = &per_task_allowance;
  std::puts(sched::format_task_table(t2, cols).c_str());

  // --- Incremental admission (RTSJ-style). ---
  std::puts("-- incremental admission --");
  sched::FeasibilityAnalysis admission;
  for (const sched::TaskParams& t : t2) {
    std::printf("add %-6s -> %s\n", t.name.c_str(),
                admission.add(t) ? "admitted" : "REJECTED");
  }
  const sched::TaskParams hog{"hog", 30, 40_ms, 100_ms, 100_ms, 0_ms};
  std::printf("add %-6s -> %s\n", hog.name.c_str(),
              admission.add(hog) ? "admitted" : "REJECTED");
  std::printf("remove tau3, retry %s -> %s\n", hog.name.c_str(),
              (admission.remove("tau3") && admission.add(hog))
                  ? "admitted"
                  : "REJECTED");

  // --- Automatic priority assignment. ---
  std::puts("\n-- priority assignment (flat input priorities) --");
  sched::TaskSet flat;
  for (const sched::TaskParams& t : t2) {
    sched::TaskParams copy = t;
    copy.priority = 0;
    copy.offset = Duration::zero();
    flat.add(copy);
  }
  const sched::TaskSet rm = sched::with_rate_monotonic_priorities(flat);
  const sched::TaskSet dm = sched::with_deadline_monotonic_priorities(flat);
  const auto opa = sched::audsley_assignment(flat);
  for (sched::TaskId i = 0; i < flat.size(); ++i) {
    std::printf("%-6s RM=%d DM=%d Audsley=%d\n", flat[i].name.c_str(),
                rm[i].priority, dm[i].priority,
                opa ? (*opa)[i].priority : -1);
  }
  return 0;
}
