// The paper's API, line for line: admit RealtimeThreadExtended objects
// through addToFeasibility(), start() them (arming the WCRT-offset
// detectors, §3.1), inject the §6 fault, and let the fault handler
// interrupt the faulty thread (§4.1). Compare with examples/quickstart,
// which uses the native rtft facade for the same experiment.
#include <cstdio>

#include "rtsj/realtime.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;
  using rtsj::PeriodicParameters;
  using rtsj::PriorityParameters;
  using rtsj::RealtimeThreadExtended;

  rtsj::VirtualMachine vm(2000_ms);

  //                                      start    period  cost  deadline
  RealtimeThreadExtended tau1(vm, "tau1", PriorityParameters(20),
                              PeriodicParameters(0_ms, 200_ms, 29_ms, 70_ms));
  RealtimeThreadExtended tau2(vm, "tau2", PriorityParameters(18),
                              PeriodicParameters(0_ms, 250_ms, 29_ms, 120_ms));
  RealtimeThreadExtended tau3(vm, "tau3", PriorityParameters(16),
                              PeriodicParameters(1000_ms, 1500_ms, 29_ms,
                                                 120_ms));

  // §2.3 — admission control (the corrected feasibility methods).
  for (RealtimeThreadExtended* t : {&tau1, &tau2, &tau3}) {
    if (!t->addToFeasibility()) {
      std::printf("%s refused by admission control\n", t->getName().c_str());
      return 1;
    }
  }

  // §6 — τ1's job at t=1000 ms overruns by 40 ms.
  tau1.setCostModel(
      [](std::int64_t job) { return job == 5 ? 69_ms : 29_ms; });

  // §4.1 — the treatment: stop the faulty thread.
  const auto stop_faulty = [](RealtimeThreadExtended& self, std::int64_t) {
    self.interrupt();
  };
  for (RealtimeThreadExtended* t : {&tau1, &tau2, &tau3}) {
    t->setFaultHandler(stop_faulty);
    t->start();  // §3.1: starts the thread, then its detector
  }
  std::printf("detectors armed at %s / %s / %s (WCRTs 29/58/87 rounded to "
              "the 10ms grid)\n",
              to_string(tau1.detectorThreshold()).c_str(),
              to_string(tau2.detectorThreshold()).c_str(),
              to_string(tau3.detectorThreshold()).c_str());

  vm.run();

  for (RealtimeThreadExtended* t : {&tau1, &tau2, &tau3}) {
    const rt::TaskStats& s = t->getStats();
    std::printf("%-5s released=%lld completed=%lld missed=%lld faults=%lld%s\n",
                t->getName().c_str(), static_cast<long long>(s.released),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.missed),
                static_cast<long long>(t->faultsDetected()),
                s.stopped ? "  [stopped by its detector]" : "");
  }
  std::puts("\nexpected (paper Figure 5): tau1 stopped at t=1030ms and the"
            "\nonly deadline miss; tau2 and tau3 unharmed.");
  return 0;
}
