// Scenario runner — the paper's §5 measurement tool: parses a scenario
// file describing the tasks, builds and runs them, and writes the
// collected measurements (text log, CSV, SVG chart) next to the input.
//
//   scenario_runner my_experiment.rtft
//
// With no argument it demonstrates itself on the paper's Figure 6
// scenario, written to a temporary file first so the full parse → run →
// log pipeline is exercised.
#include <cstdio>
#include <string>

#include "config/scenario.hpp"
#include "core/paper.hpp"
#include "trace/log_writer.hpp"
#include "trace/stats.hpp"
#include "trace/svg_chart.hpp"
#include "trace/timeline.hpp"

namespace {

using namespace rtft;

std::string demo_scenario_path() {
  // Serialize the canonical Figure 6 scenario and write it out.
  core::paper::Scenario s = core::paper::figures_scenario(
      core::TreatmentPolicy::kEquitableAllowance);
  cfg::Scenario file;
  file.config = std::move(s.config);
  file.faults = std::move(s.faults);
  const std::string path = "/tmp/rtft_figure6_demo.rtft";
  trace::write_file(path, cfg::write_scenario(file));
  std::printf("no input given; wrote demo scenario to %s\n", path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : demo_scenario_path();

  cfg::Scenario scenario;
  try {
    scenario = cfg::load_scenario(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const sched::TaskSet tasks = scenario.config.tasks;
  const Duration horizon = scenario.config.horizon;
  core::FaultTolerantSystem system(std::move(scenario.config),
                                   std::move(scenario.faults));
  const core::RunReport report = system.run();
  std::fputs(report.summary().c_str(), stdout);
  if (!report.executed) {
    std::puts("system refused by admission control; nothing executed");
    return 2;
  }

  const trace::SystemTimeline timeline = trace::build_timeline(
      tasks, system.recorder(), Instant::epoch() + horizon);
  std::fputs(trace::compute_stats(timeline).table().c_str(), stdout);

  const std::string base = path + ".out";
  trace::write_file(base + ".log",
                    trace::text_log_string(system.recorder(), tasks));
  trace::write_file(base + ".csv",
                    trace::csv_string(system.recorder(), tasks));
  trace::write_file(base + ".svg", trace::render_svg_chart(timeline));
  std::printf("wrote %s.{log,csv,svg}\n", base.c_str());
  return 0;
}
