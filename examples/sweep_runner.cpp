// Batch scenario sweep CLI — thousands of random task systems through the
// analyses and the virtual-time engine, on a worker pool.
//
//   sweep_runner [--scenarios N] [--workers W] [--seed S]
//                [--tasks n1,n2,...] [--util u1,u2,...]
//                [--detector-cost-us c1,c2,...]
//                [--stop-latency-us l1,l2,...]
//                [--cores m1,m2,...] [--quantum-us q1,q2,...]
//                [--partitioner both|first-fit|fault-aware]
//                [--core-fault F] [--policy NAME]
//                [--horizon-periods K] [--event-queue wheel|heap]
//                [--sink-mode static|virtual] [--cost-spec flat|function]
//                [--verdicts] [--full-traces] [--progress]
//                [--csv FILE] [--cells-csv FILE] [--json FILE]
//                [--shard I/N [--emit-shard FILE]]
//   sweep_runner --merge FILE...
//
// Defaults run 1000 scenarios on 4 workers over the default grid
// (3/5/8 tasks x U 0.5/0.7/0.9 x free detectors x zero stop latency).
// The summary ends with a deterministic fingerprint: identical arguments
// reproduce it bit-for-bit whatever the worker count.
//
// The sweep-defining flags are parsed by sweep/cli.hpp (shared with the
// coordinator, which drives this binary as its worker): every bad value
// — non-numeric text, out-of-range, overflow, a malformed I/N shard
// request — dies with a one-line "error: ..." naming the flag and the
// offending value, exit 2.
//
// --stop-latency-us sweeps the cooperative stop-poll delay (§4.1); pair
// it with a stopping --policy (e.g. instant-stop) so detected faults
// actually request stops. --event-queue selects the engine's queue
// implementation — wheel (default) and heap are trace-equivalent, so
// the fingerprint must not depend on it. --sink-mode and --cost-spec
// select the observation dispatch (engine-local batched counting vs the
// per-event virtual seam) and the fault-injection representation (flat
// CostSpec vs std::function closure); all four combinations are
// verdict- and fingerprint-equivalent — 'virtual' and 'function' are
// the retained oracles.
//
// --cores sweeps the partitioned-multiprocessor axis: for M > 1 each
// scenario is additionally placed onto an M-core fleet (first-fit and
// fault-aware partitioners, per --partitioner) and run through a
// mid-horizon core failure at --core-fault x horizon (0 disables the
// fault). --quantum-us sweeps the release-quantizer resolution; the
// default 1000 keeps the historical exact-threshold behavior, any other
// value arms nearest-rounding on the paper's jRate grid. Both axes
// fingerprint only when off their defaults, so historical pins hold.
//
// --shard I/N runs only shard I (0-based) of an N-way contiguous
// partition of the scenario index space and, with --emit-shard, writes
// the result as a versioned JSON shard file. --merge combines shard
// files — any order, any mix of per-shard worker counts or event-queue
// modes — into the report the single-process run would have produced,
// with the identical fingerprint. The two-process pattern:
//
//   sweep_runner --shard 0/2 --emit-shard a.json &   # host A
//   sweep_runner --shard 1/2 --emit-shard b.json     # host B
//   sweep_runner --merge a.json b.json               # anywhere
//
// (sweep_coordinator automates exactly this, with crash re-issue.)
//
// --progress prints a stderr progress stream: a '\r'-in-place human
// line on a terminal, machine-parseable "progress D/T" lines on a pipe
// (what the coordinator reads). Purely observational; never moves the
// fingerprint.
//
// --csv exports one row per scenario verdict, --cells-csv one row per
// grid cell, --json the whole report; "-" writes to stdout.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sweep/cli.hpp"
#include "sweep/export.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace rtft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenarios N] [--workers W] [--seed S]\n"
      "          [--tasks n1,n2,...] [--util u1,u2,...]\n"
      "          [--detector-cost-us c1,c2,...]\n"
      "          [--stop-latency-us l1,l2,...]\n"
      "          [--cores m1,m2,...] [--quantum-us q1,q2,...]\n"
      "          [--partitioner both|first-fit|fault-aware]\n"
      "          [--core-fault F] [--policy NAME]\n"
      "          [--horizon-periods K] [--event-queue wheel|heap]\n"
      "          [--sink-mode static|virtual] [--cost-spec flat|function]\n"
      "          [--verdicts] [--full-traces] [--progress]\n"
      "          [--csv FILE] [--cells-csv FILE] [--json FILE]\n"
      "          [--shard I/N [--emit-shard FILE]]\n"
      "       %s --merge FILE...\n",
      argv0, argv0);
  std::exit(2);
}

/// Reads a whole file ("-" = stdin); exits 2 on I/O failure.
std::string read_file(const std::string& path) {
  std::FILE* f = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for reading\n",
                 path.c_str());
    std::exit(2);
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  if (f != stdin) std::fclose(f);
  if (failed) {
    std::fprintf(stderr, "error: failed reading '%s'\n", path.c_str());
    std::exit(2);
  }
  return content;
}

/// Writes `content` to `path` ("-" = stdout); exits 2 on I/O failure.
void write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    if (std::fwrite(content.data(), 1, content.size(), stdout) !=
        content.size()) {
      std::fprintf(stderr, "error: short write to stdout\n");
      std::exit(2);
    }
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    std::exit(2);
  }
  const bool wrote_all =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;  // always close, even on failure
  if (!wrote_all || !closed) {
    std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  sweep::SweepOptions opts;
  bool print_verdicts = false;
  bool progress = false;
  bool sweep_flags = false;  ///< any flag that configures a run.
  bool have_shard = false;
  sweep::cli::ShardRequest shard_request;
  std::string emit_shard_path;
  std::vector<std::string> merge_paths;
  std::string csv_path;
  std::string cells_csv_path;
  std::string json_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (sweep::cli::apply_sweep_flag(arg, value, opts)) {
        sweep_flags = true;
      } else if (arg == "--shard") {
        shard_request = sweep::cli::parse_shard_request(value());
        have_shard = true;
        sweep_flags = true;
      } else if (arg == "--emit-shard") {
        emit_shard_path = value();
        sweep_flags = true;
      } else if (arg == "--merge") {
        // Consumes the following path arguments, stopping at the next
        // flag so --csv/--json/--verdicts can follow the file list
        // ("-" reads a shard from stdin and is not a flag).
        while (i + 1 < argc &&
               std::string_view(argv[i + 1]).substr(0, 2) != "--") {
          merge_paths.emplace_back(argv[++i]);
        }
        if (merge_paths.empty()) usage(argv[0]);
      } else if (arg == "--progress") {
        progress = true;
      } else if (arg == "--verdicts") {
        print_verdicts = true;
      } else if (arg == "--csv") {
        csv_path = value();
      } else if (arg == "--cells-csv") {
        cells_csv_path = value();
      } else if (arg == "--json") {
        json_path = value();
      } else {
        usage(argv[0]);
      }
    }
  } catch (const sweep::cli::ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  // The three modes are exclusive: a full sweep, one shard of a sweep,
  // or a merge of previously emitted shard files (which take every
  // sweep-defining option from the files themselves).
  if (!merge_paths.empty() && sweep_flags) usage(argv[0]);
  if (!emit_shard_path.empty() && !have_shard) usage(argv[0]);
  // Exports describe a full SweepReport; a shard run has only its slice.
  if (have_shard && (print_verdicts || !csv_path.empty() ||
                     !cells_csv_path.empty() || !json_path.empty())) {
    usage(argv[0]);
  }

  if (progress) {
    // Human '\r' line on a terminal, machine "progress D/T" lines on a
    // pipe; ~1% throttle. run_shard serializes invocations and delivers
    // a strictly increasing count, so the callback needs no lock.
    opts.on_progress = sweep::cli::stderr_progress_printer();
  }

  if (have_shard) {
    sweep::ShardResult shard;
    try {
      const sweep::SweepPlan plan(opts);
      shard = sweep::run_shard(
          plan.shard(shard_request.index, shard_request.count),
          plan.options());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    // With --emit-shard - the JSON document owns stdout; the summary
    // moves to stderr so the emitted stream stays loadable.
    std::FILE* const summary = emit_shard_path == "-" ? stderr : stdout;
    std::fprintf(summary,
                 "shard %llu/%llu: scenarios [%llu, %llu) of %llu, "
                 "seed %llu, %zu workers\n",
                 static_cast<unsigned long long>(shard.shard.index),
                 static_cast<unsigned long long>(shard.shard.shards),
                 static_cast<unsigned long long>(shard.shard.begin),
                 static_cast<unsigned long long>(shard.shard.end),
                 static_cast<unsigned long long>(
                     shard.options.scenario_count),
                 static_cast<unsigned long long>(shard.options.base_seed),
                 shard.options.workers);
    std::fprintf(summary,
                 "total %llu  schedulable %llu  engine-clean %llu  "
                 "agreement-violations %llu  allowance-honored %llu/%llu\n",
                 static_cast<unsigned long long>(shard.totals.total),
                 static_cast<unsigned long long>(shard.totals.rta_schedulable),
                 static_cast<unsigned long long>(shard.totals.engine_clean),
                 static_cast<unsigned long long>(
                     shard.totals.agreement_violations),
                 static_cast<unsigned long long>(
                     shard.totals.allowance_honored),
                 static_cast<unsigned long long>(
                     shard.totals.allowance_feasible));
    std::fprintf(summary, "elapsed %.3fs (%.0f scenarios/s)\n",
                 shard.elapsed_seconds,
                 static_cast<double>(shard.totals.total) /
                     (shard.elapsed_seconds > 0 ? shard.elapsed_seconds
                                                : 1.0));
    // Deliberately labeled "shard fingerprint": it is the standalone
    // FNV-1a fold over this range, not the sweep fingerprint CI pins —
    // only the merge reproduces that.
    std::fprintf(summary, "shard fingerprint %016llx\n",
                 static_cast<unsigned long long>(shard.fingerprint));
    if (!emit_shard_path.empty()) {
      write_file(emit_shard_path, sweep::shard_json(shard));
    }
    const bool sound =
        shard.totals.agreement_violations == 0 &&
        shard.totals.allowance_honored == shard.totals.allowance_feasible;
    return sound ? 0 : 1;
  }

  sweep::SweepReport report;
  if (!merge_paths.empty()) {
    // Incremental merge: each file folds into the merger as it loads,
    // so peak memory is one in-flight ShardResult (plus any shards
    // buffered while waiting for a predecessor range), not the whole
    // shard list. Load each file under its own handler: a defect
    // report that does not say *which* of a dozen files is truncated
    // or stale is useless to whoever has to clean the output
    // directory up.
    sweep::ShardMerger merger;
    std::vector<std::pair<std::string, sweep::ShardSpec>> origins;
    origins.reserve(merge_paths.size());
    for (const std::string& path : merge_paths) {
      try {
        sweep::ShardResult shard = sweep::load_shard_json(read_file(path));
        origins.emplace_back(path, shard.shard);
        merger.add(std::move(shard));
      } catch (const sweep::ShardError& e) {
        std::fprintf(stderr, "error: shard file '%s': %s\n", path.c_str(),
                     e.what());
        return 2;
      }
    }
    // Cross-file defects (gaps, short coverage) surface at finish(); the
    // messages speak in index ranges, so append the file -> range map to
    // keep them pointing at files.
    try {
      report = merger.finish();
    } catch (const sweep::ShardError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      for (const auto& [path, spec] : origins) {
        std::fprintf(stderr, "  '%s' covers [%llu, %llu)\n", path.c_str(),
                     static_cast<unsigned long long>(spec.begin),
                     static_cast<unsigned long long>(spec.end));
      }
      return 2;
    }
    std::printf("merged %zu shard file(s)\n", origins.size());
  } else {
    if (opts.grid.task_counts.empty() || opts.grid.utilizations.empty() ||
        opts.grid.detector_costs.empty() ||
        opts.grid.stop_poll_latencies.empty()) {
      usage(argv[0]);
    }
    try {
      report = sweep::run_sweep(opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  std::printf("sweep: %llu scenarios, %zu workers, seed %llu\n\n",
              static_cast<unsigned long long>(report.options.scenario_count),
              report.options.workers,
              static_cast<unsigned long long>(report.options.base_seed));
  std::fputs(report.table().c_str(), stdout);
  std::printf("\nelapsed %.3fs (%.0f scenarios/s)\n", report.elapsed_seconds,
              static_cast<double>(report.totals.total) /
                  (report.elapsed_seconds > 0 ? report.elapsed_seconds : 1.0));
  std::printf("fingerprint %016llx\n",
              static_cast<unsigned long long>(report.fingerprint));

  if (!csv_path.empty()) write_file(csv_path, sweep::verdicts_csv(report));
  if (!cells_csv_path.empty()) {
    write_file(cells_csv_path, sweep::cells_csv(report));
  }
  if (!json_path.empty()) write_file(json_path, sweep::report_json(report));

  if (print_verdicts) {
    std::puts("\nindex seed             tasks U     sched clean agree A(ms)");
    for (const sweep::ScenarioVerdict& v : report.verdicts) {
      std::printf("%5llu %016llx %5zu %.3f %5s %5s %5s %.3f\n",
                  static_cast<unsigned long long>(v.index),
                  static_cast<unsigned long long>(v.seed), v.task_count,
                  v.actual_utilization, v.rta_schedulable ? "yes" : "no",
                  v.engine_clean ? "yes" : "no", v.agreement ? "yes" : "NO",
                  v.allowance.to_ms());
    }
  }

  // Exit nonzero when the engine contradicted an analysis anywhere — a
  // schedulable-by-RTA set missing a deadline, or an overrun of the
  // equitable allowance not being absorbed. The sweep doubles as a
  // soundness check (CI relies on this exit code).
  const bool sound =
      report.totals.agreement_violations == 0 &&
      report.totals.allowance_honored == report.totals.allowance_feasible;
  return sound ? 0 : 1;
}
