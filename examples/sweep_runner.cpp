// Batch scenario sweep CLI — thousands of random task systems through the
// analyses and the virtual-time engine, on a worker pool.
//
//   sweep_runner [--scenarios N] [--workers W] [--seed S]
//                [--tasks n1,n2,...] [--util u1,u2,...]
//                [--detector-cost-us c1,c2,...]
//                [--stop-latency-us l1,l2,...] [--policy NAME]
//                [--horizon-periods K] [--event-queue wheel|heap]
//                [--verdicts] [--full-traces] [--progress]
//                [--csv FILE] [--cells-csv FILE] [--json FILE]
//                [--shard I/N [--emit-shard FILE]]
//   sweep_runner --merge FILE...
//
// Defaults run 1000 scenarios on 4 workers over the default grid
// (3/5/8 tasks x U 0.5/0.7/0.9 x free detectors x zero stop latency).
// The summary ends with a deterministic fingerprint: identical arguments
// reproduce it bit-for-bit whatever the worker count.
//
// --stop-latency-us sweeps the cooperative stop-poll delay (§4.1); pair
// it with a stopping --policy (e.g. instant-stop) so detected faults
// actually request stops. --event-queue selects the engine's queue
// implementation — wheel (default) and heap are trace-equivalent, so
// the fingerprint must not depend on it.
//
// --shard I/N runs only shard I (0-based) of an N-way contiguous
// partition of the scenario index space and, with --emit-shard, writes
// the result as a versioned JSON shard file. --merge combines shard
// files — any order, any mix of per-shard worker counts or event-queue
// modes — into the report the single-process run would have produced,
// with the identical fingerprint. The two-process pattern:
//
//   sweep_runner --shard 0/2 --emit-shard a.json &   # host A
//   sweep_runner --shard 1/2 --emit-shard b.json     # host B
//   sweep_runner --merge a.json b.json               # anywhere
//
// --progress prints a stderr progress line (scenarios completed); it is
// purely observational and never moves the fingerprint.
//
// --csv exports one row per scenario verdict, --cells-csv one row per
// grid cell, --json the whole report; "-" writes to stdout.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "sweep/export.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace rtft;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenarios N] [--workers W] [--seed S]\n"
      "          [--tasks n1,n2,...] [--util u1,u2,...]\n"
      "          [--detector-cost-us c1,c2,...]\n"
      "          [--stop-latency-us l1,l2,...] [--policy NAME]\n"
      "          [--horizon-periods K] [--event-queue wheel|heap]\n"
      "          [--verdicts] [--full-traces] [--progress]\n"
      "          [--csv FILE] [--cells-csv FILE] [--json FILE]\n"
      "          [--shard I/N [--emit-shard FILE]]\n"
      "       %s --merge FILE...\n",
      argv0, argv0);
  std::exit(2);
}

/// Reads a whole file ("-" = stdin); exits 2 on I/O failure.
std::string read_file(const std::string& path) {
  std::FILE* f = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for reading\n",
                 path.c_str());
    std::exit(2);
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  if (f != stdin) std::fclose(f);
  if (failed) {
    std::fprintf(stderr, "error: failed reading '%s'\n", path.c_str());
    std::exit(2);
  }
  return content;
}

/// Writes `content` to `path` ("-" = stdout); exits 2 on I/O failure.
void write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    if (std::fwrite(content.data(), 1, content.size(), stdout) !=
        content.size()) {
      std::fprintf(stderr, "error: short write to stdout\n");
      std::exit(2);
    }
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    std::exit(2);
  }
  const bool wrote_all =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;  // always close, even on failure
  if (!wrote_all || !closed) {
    std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
    std::exit(2);
  }
}

[[noreturn]] void bad_value(const char* flag, std::string_view value) {
  std::fprintf(stderr, "error: invalid value '%.*s' for %s\n",
               static_cast<int>(value.size()), value.data(), flag);
  std::exit(2);
}

std::int64_t parse_count(const char* flag, std::string_view value) {
  std::int64_t parsed = 0;
  if (!parse_int64(value, parsed) || parsed < 0) bad_value(flag, value);
  return parsed;
}

double parse_real(const char* flag, std::string_view value) {
  double parsed = 0.0;
  if (!parse_double(value, parsed)) bad_value(flag, value);
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  sweep::SweepOptions opts;
  bool print_verdicts = false;
  bool progress = false;
  bool sweep_flags = false;  ///< any flag that configures a run.
  bool have_shard = false;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::string emit_shard_path;
  std::vector<std::string> merge_paths;
  std::string csv_path;
  std::string cells_csv_path;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg != "--merge" && arg != "--verdicts" && arg != "--csv" &&
        arg != "--cells-csv" && arg != "--json" && arg != "--progress") {
      sweep_flags = true;
    }
    if (arg == "--scenarios") {
      opts.scenario_count =
          static_cast<std::uint64_t>(parse_count("--scenarios", value()));
    } else if (arg == "--workers") {
      opts.workers = static_cast<std::size_t>(parse_count("--workers", value()));
    } else if (arg == "--shard") {
      const std::string v = value();  // keep alive: split returns views.
      const auto parts = split(v, '/');
      if (parts.size() != 2) bad_value("--shard", v);
      shard_index =
          static_cast<std::uint64_t>(parse_count("--shard", parts[0]));
      shard_count =
          static_cast<std::uint64_t>(parse_count("--shard", parts[1]));
      if (shard_count == 0 || shard_index >= shard_count) {
        bad_value("--shard", v);
      }
      have_shard = true;
    } else if (arg == "--emit-shard") {
      emit_shard_path = value();
    } else if (arg == "--merge") {
      // Consumes the following path arguments, stopping at the next
      // flag so --csv/--json/--verdicts can follow the file list
      // ("-" reads a shard from stdin and is not a flag).
      while (i + 1 < argc &&
             std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        merge_paths.emplace_back(argv[++i]);
      }
      if (merge_paths.empty()) usage(argv[0]);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--seed") {
      const std::string v = value();
      std::int64_t seed = 0;
      if (!parse_int64(v, seed)) bad_value("--seed", v);
      opts.base_seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--tasks") {
      const std::string v = value();  // keep alive: split returns views.
      opts.grid.task_counts.clear();
      for (const std::string_view p : split(v, ','))
        opts.grid.task_counts.push_back(
            static_cast<std::size_t>(parse_count("--tasks", p)));
    } else if (arg == "--util") {
      const std::string v = value();
      opts.grid.utilizations.clear();
      for (const std::string_view p : split(v, ','))
        opts.grid.utilizations.push_back(parse_real("--util", p));
    } else if (arg == "--detector-cost-us") {
      const std::string v = value();
      opts.grid.detector_costs.clear();
      for (const std::string_view p : split(v, ','))
        opts.grid.detector_costs.push_back(
            Duration::us(parse_count("--detector-cost-us", p)));
    } else if (arg == "--stop-latency-us") {
      const std::string v = value();
      opts.grid.stop_poll_latencies.clear();
      for (const std::string_view p : split(v, ','))
        opts.grid.stop_poll_latencies.push_back(
            Duration::us(parse_count("--stop-latency-us", p)));
    } else if (arg == "--policy") {
      const std::string v = value();
      try {
        opts.detector_policy = core::treatment_policy_from_string(v);
      } catch (const std::exception&) {
        bad_value("--policy", v);
      }
    } else if (arg == "--event-queue") {
      const std::string v = value();
      if (v == "wheel") {
        opts.event_queue = rt::EventQueueMode::kTimingWheel;
      } else if (v == "heap") {
        opts.event_queue = rt::EventQueueMode::kPooledHeap;
      } else {
        bad_value("--event-queue", v);
      }
    } else if (arg == "--horizon-periods") {
      opts.horizon_periods = parse_count("--horizon-periods", value());
    } else if (arg == "--verdicts") {
      print_verdicts = true;
    } else if (arg == "--full-traces") {
      opts.full_traces = true;
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--cells-csv") {
      cells_csv_path = value();
    } else if (arg == "--json") {
      json_path = value();
    } else {
      usage(argv[0]);
    }
  }
  // The three modes are exclusive: a full sweep, one shard of a sweep,
  // or a merge of previously emitted shard files (which take every
  // sweep-defining option from the files themselves).
  if (!merge_paths.empty() && (have_shard || sweep_flags)) usage(argv[0]);
  if (!emit_shard_path.empty() && !have_shard) usage(argv[0]);
  // Exports describe a full SweepReport; a shard run has only its slice.
  if (have_shard && (print_verdicts || !csv_path.empty() ||
                     !cells_csv_path.empty() || !json_path.empty())) {
    usage(argv[0]);
  }
  if (merge_paths.empty() &&
      (opts.scenario_count == 0 || opts.grid.task_counts.empty() ||
       opts.grid.utilizations.empty() || opts.grid.detector_costs.empty() ||
       opts.grid.stop_poll_latencies.empty())) {
    usage(argv[0]);
  }

  if (progress) {
    // Throttled stderr line, ~1% steps; \r keeps it to one line on a
    // terminal. stderr so piped/teed stdout stays machine-readable.
    // Workers report concurrently and a straggler's lower count can
    // arrive after the 100% call, so check-and-print runs under one
    // lock — otherwise a stale "99%" line could land after the final
    // one. Contention is bounded by the ~1% throttle.
    struct ProgressState {
      std::mutex mutex;
      std::uint64_t printed = 0;
    };
    auto state = std::make_shared<ProgressState>();
    opts.on_progress = [state](std::uint64_t done, std::uint64_t total) {
      const std::uint64_t step = total < 100 ? 1 : total / 100;
      if (done % step != 0 && done != total) return;
      const std::lock_guard<std::mutex> lock(state->mutex);
      if (done <= state->printed) return;
      state->printed = done;
      std::fprintf(stderr, "\r%llu/%llu scenarios (%3.0f%%)",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total),
                   100.0 * static_cast<double>(done) /
                       static_cast<double>(total));
      if (done == total) std::fputc('\n', stderr);
    };
  }

  if (have_shard) {
    sweep::ShardResult shard;
    try {
      const sweep::SweepPlan plan(opts);
      shard = sweep::run_shard(plan.shard(shard_index, shard_count),
                               plan.options());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    // With --emit-shard - the JSON document owns stdout; the summary
    // moves to stderr so the emitted stream stays loadable.
    std::FILE* const summary = emit_shard_path == "-" ? stderr : stdout;
    std::fprintf(summary,
                 "shard %llu/%llu: scenarios [%llu, %llu) of %llu, "
                 "seed %llu, %zu workers\n",
                 static_cast<unsigned long long>(shard.shard.index),
                 static_cast<unsigned long long>(shard.shard.shards),
                 static_cast<unsigned long long>(shard.shard.begin),
                 static_cast<unsigned long long>(shard.shard.end),
                 static_cast<unsigned long long>(
                     shard.options.scenario_count),
                 static_cast<unsigned long long>(shard.options.base_seed),
                 shard.options.workers);
    std::fprintf(summary,
                 "total %llu  schedulable %llu  engine-clean %llu  "
                 "agreement-violations %llu  allowance-honored %llu/%llu\n",
                 static_cast<unsigned long long>(shard.totals.total),
                 static_cast<unsigned long long>(shard.totals.rta_schedulable),
                 static_cast<unsigned long long>(shard.totals.engine_clean),
                 static_cast<unsigned long long>(
                     shard.totals.agreement_violations),
                 static_cast<unsigned long long>(
                     shard.totals.allowance_honored),
                 static_cast<unsigned long long>(
                     shard.totals.allowance_feasible));
    std::fprintf(summary, "elapsed %.3fs (%.0f scenarios/s)\n",
                 shard.elapsed_seconds,
                 static_cast<double>(shard.totals.total) /
                     (shard.elapsed_seconds > 0 ? shard.elapsed_seconds
                                                : 1.0));
    // Deliberately labeled "shard fingerprint": it is the standalone
    // FNV-1a fold over this range, not the sweep fingerprint CI pins —
    // only the merge reproduces that.
    std::fprintf(summary, "shard fingerprint %016llx\n",
                 static_cast<unsigned long long>(shard.fingerprint));
    if (!emit_shard_path.empty()) {
      write_file(emit_shard_path, sweep::shard_json(shard));
    }
    const bool sound =
        shard.totals.agreement_violations == 0 &&
        shard.totals.allowance_honored == shard.totals.allowance_feasible;
    return sound ? 0 : 1;
  }

  sweep::SweepReport report;
  try {
    if (!merge_paths.empty()) {
      std::vector<sweep::ShardResult> shards;
      shards.reserve(merge_paths.size());
      for (const std::string& path : merge_paths) {
        shards.push_back(sweep::load_shard_json(read_file(path)));
      }
      const std::size_t shard_files = shards.size();
      report = sweep::merge(std::move(shards));
      std::printf("merged %zu shard file(s)\n", shard_files);
    } else {
      report = sweep::run_sweep(opts);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("sweep: %llu scenarios, %zu workers, seed %llu\n\n",
              static_cast<unsigned long long>(report.options.scenario_count),
              report.options.workers,
              static_cast<unsigned long long>(report.options.base_seed));
  std::fputs(report.table().c_str(), stdout);
  std::printf("\nelapsed %.3fs (%.0f scenarios/s)\n", report.elapsed_seconds,
              static_cast<double>(report.totals.total) /
                  (report.elapsed_seconds > 0 ? report.elapsed_seconds : 1.0));
  std::printf("fingerprint %016llx\n",
              static_cast<unsigned long long>(report.fingerprint));

  if (!csv_path.empty()) write_file(csv_path, sweep::verdicts_csv(report));
  if (!cells_csv_path.empty()) {
    write_file(cells_csv_path, sweep::cells_csv(report));
  }
  if (!json_path.empty()) write_file(json_path, sweep::report_json(report));

  if (print_verdicts) {
    std::puts("\nindex seed             tasks U     sched clean agree A(ms)");
    for (const sweep::ScenarioVerdict& v : report.verdicts) {
      std::printf("%5llu %016llx %5zu %.3f %5s %5s %5s %.3f\n",
                  static_cast<unsigned long long>(v.index),
                  static_cast<unsigned long long>(v.seed), v.task_count,
                  v.actual_utilization, v.rta_schedulable ? "yes" : "no",
                  v.engine_clean ? "yes" : "no", v.agreement ? "yes" : "NO",
                  v.allowance.to_ms());
    }
  }

  // Exit nonzero when the engine contradicted an analysis anywhere — a
  // schedulable-by-RTA set missing a deadline, or an overrun of the
  // equitable allowance not being absorbed. The sweep doubles as a
  // soundness check (CI relies on this exit code).
  const bool sound =
      report.totals.agreement_violations == 0 &&
      report.totals.allowance_honored == report.totals.allowance_feasible;
  return sound ? 0 : 1;
}
