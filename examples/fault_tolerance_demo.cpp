// The paper's §6 in one binary: runs the Table 2 system with the injected
// τ1 overrun under all five treatments (Figures 3–7, plus the sound
// system-allowance extension) and prints, for each, the key dates and the
// fault-window chart. The qualitative story to look for:
//
//   no-detection / detect-only : τ3 misses its deadline (the failure mode)
//   instant-stop               : only τ1 (the faulty task) fails
//   equitable-allowance        : τ1 runs 10 ms longer before being stopped
//   system-allowance           : τ1 runs longest; τ2 & τ3 finish just
//                                before their deadlines
#include <cstdio>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "trace/ascii_chart.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;
  using core::TreatmentPolicy;

  const TreatmentPolicy policies[] = {
      TreatmentPolicy::kNoDetection,       TreatmentPolicy::kDetectOnly,
      TreatmentPolicy::kInstantStop,       TreatmentPolicy::kEquitableAllowance,
      TreatmentPolicy::kSystemAllowance,   TreatmentPolicy::kSystemAllowanceSound,
  };

  for (const TreatmentPolicy policy : policies) {
    core::paper::Scenario scenario = core::paper::figures_scenario(policy);
    const sched::TaskSet tasks = scenario.config.tasks;
    core::FaultTolerantSystem system(std::move(scenario.config),
                                     std::move(scenario.faults));
    const core::RunReport report = system.run();

    std::printf("==== policy: %s ====\n",
                std::string(core::to_string(policy)).c_str());
    std::fputs(report.summary().c_str(), stdout);

    const trace::SystemTimeline timeline = trace::build_timeline(
        tasks, system.recorder(),
        Instant::epoch() + core::paper::kFigureHorizon);
    trace::AsciiChartOptions chart;
    chart.from = Instant::epoch() + 980_ms;
    chart.to = Instant::epoch() + 1140_ms;
    chart.width = 80;
    chart.legend = policy == TreatmentPolicy::kSystemAllowanceSound;
    std::fputs(trace::render_ascii_chart(timeline, chart).c_str(), stdout);
    std::puts("");
  }
  return 0;
}
