// Tests of the RTSJ-flavoured veneer, written to read like the paper's
// own usage: admit threads through addToFeasibility(), start() them
// (which arms the WCRT-offset detectors), run the VM, inspect.
#include "rtsj/realtime.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::rtsj {
namespace {

using namespace rtft::literals;

PeriodicParameters table2_release(Duration cost, Duration period,
                                  Duration deadline,
                                  Duration start = Duration::zero()) {
  return PeriodicParameters(start, period, cost, deadline);
}

struct Table2Threads {
  VirtualMachine vm{2000_ms};
  RealtimeThreadExtended tau1{vm, "tau1", PriorityParameters(20),
                              table2_release(29_ms, 200_ms, 70_ms)};
  RealtimeThreadExtended tau2{vm, "tau2", PriorityParameters(18),
                              table2_release(29_ms, 250_ms, 120_ms)};
  RealtimeThreadExtended tau3{vm, "tau3", PriorityParameters(16),
                              table2_release(29_ms, 1500_ms, 120_ms,
                                             1000_ms)};
};

TEST(RtsjVeneer, PeriodicParametersDefaultDeadlineIsPeriod) {
  const PeriodicParameters p(0_ms, 100_ms, 10_ms);
  EXPECT_EQ(p.getDeadline(), 100_ms);
}

TEST(RtsjVeneer, AdmissionControlMirrorsThePaper) {
  Table2Threads t;
  EXPECT_TRUE(t.tau1.addToFeasibility());
  EXPECT_TRUE(t.tau2.addToFeasibility());
  EXPECT_TRUE(t.tau3.addToFeasibility());
  // A hog that would break the set is refused.
  RealtimeThread hog(t.vm, "hog", PriorityParameters(30),
                     table2_release(40_ms, 100_ms, 100_ms));
  EXPECT_FALSE(hog.addToFeasibility());
  // Withdrawal works for un-started threads.
  EXPECT_TRUE(t.tau3.removeFromFeasibility());
  EXPECT_FALSE(t.vm.scheduler().task_set().contains("tau3"));
}

TEST(RtsjVeneer, StartArmsDetectorAtQuantizedWcrt) {
  Table2Threads t;
  ASSERT_TRUE(t.tau1.addToFeasibility());
  ASSERT_TRUE(t.tau2.addToFeasibility());
  ASSERT_TRUE(t.tau3.addToFeasibility());
  t.tau1.start();
  t.tau2.start();
  t.tau3.start();
  // §3.1 + §6.2: thresholds are the WCRTs, rounded to the 10 ms grid.
  EXPECT_EQ(t.tau1.detectorThreshold(), 30_ms);
  EXPECT_EQ(t.tau2.detectorThreshold(), 60_ms);
  EXPECT_EQ(t.tau3.detectorThreshold(), 90_ms);
}

TEST(RtsjVeneer, NominalRunDetectsNothingAndHooksFire) {
  // Subclass with the paper's computeBefore/AfterPeriodic hooks.
  class CountingThread : public RealtimeThreadExtended {
   public:
    using RealtimeThreadExtended::RealtimeThreadExtended;
    void computeBeforePeriodic(std::int64_t) override { ++begins; }
    void computeAfterPeriodic(std::int64_t) override { ++ends; }
    int begins = 0;
    int ends = 0;
  };
  VirtualMachine vm(1000_ms);
  CountingThread thread(vm, "t", PriorityParameters(10),
                        table2_release(10_ms, 100_ms, 100_ms));
  ASSERT_TRUE(thread.addToFeasibility());
  thread.start();
  vm.run();
  EXPECT_EQ(thread.faultsDetected(), 0);
  // Releases at 0, 100, ..., 1000: the job released exactly at the
  // horizon begins but cannot end inside the window.
  EXPECT_EQ(thread.begins, 11);
  EXPECT_EQ(thread.ends, 10);
  EXPECT_EQ(thread.getStats().missed, 0);
}

TEST(RtsjVeneer, Figure5ThroughThePaperApi) {
  // The instant-stop experiment, written as the paper's Java would be:
  // the fault handler interrupts the faulty thread.
  Table2Threads t;
  ASSERT_TRUE(t.tau1.addToFeasibility());
  ASSERT_TRUE(t.tau2.addToFeasibility());
  ASSERT_TRUE(t.tau3.addToFeasibility());

  t.tau1.setCostModel([](std::int64_t job) {
    return job == core::paper::kFaultyJobIndex ? 69_ms : 29_ms;
  });
  const auto stop_on_fault = [](RealtimeThreadExtended& self,
                                std::int64_t) { self.interrupt(); };
  t.tau1.setFaultHandler(stop_on_fault);
  t.tau2.setFaultHandler(stop_on_fault);
  t.tau3.setFaultHandler(stop_on_fault);

  t.tau1.start();
  t.tau2.start();
  t.tau3.start();
  t.vm.run();

  // Figure 5's outcome: τ1 stopped at 1030 ms, only τ1 misses.
  EXPECT_TRUE(t.tau1.getStats().stopped);
  EXPECT_EQ(t.tau1.getStats().missed, 1);
  EXPECT_EQ(t.tau1.faultsDetected(), 1);
  EXPECT_EQ(t.tau2.getStats().missed, 0);
  EXPECT_EQ(t.tau3.getStats().missed, 0);
  EXPECT_FALSE(t.tau2.getStats().stopped);
  EXPECT_FALSE(t.tau3.getStats().stopped);
}

TEST(RtsjVeneer, ExplicitThresholdAndExactTimers) {
  VirtualMachine vm(500_ms);
  RealtimeThreadExtended thread(vm, "t", PriorityParameters(10),
                                table2_release(10_ms, 100_ms, 100_ms));
  ASSERT_TRUE(thread.addToFeasibility());
  core::DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  thread.setDetectorConfig(cfg);
  thread.setDetectorThreshold(25_ms);
  thread.setCostModel([](std::int64_t job) {
    return job == 1 ? 40_ms : 10_ms;  // job 1 overruns past 25 ms
  });
  thread.start();
  EXPECT_EQ(thread.detectorThreshold(), 25_ms);
  vm.run();
  EXPECT_EQ(thread.faultsDetected(), 1);
}

TEST(RtsjVeneer, UnadmittedStartFallsBackToDeadlineThreshold) {
  VirtualMachine vm(300_ms);
  RealtimeThreadExtended thread(vm, "t", PriorityParameters(10),
                                table2_release(10_ms, 100_ms, 80_ms));
  // No addToFeasibility(): the detector watches the deadline instead.
  thread.start();
  EXPECT_EQ(thread.detectorThreshold(), 80_ms);
  vm.run();
  EXPECT_EQ(thread.faultsDetected(), 0);
}

TEST(RtsjVeneer, ApiMisuseRejected) {
  VirtualMachine vm(100_ms);
  RealtimeThreadExtended thread(vm, "t", PriorityParameters(10),
                                table2_release(10_ms, 50_ms, 50_ms));
  EXPECT_THROW((void)thread.getStats(), ContractViolation);
  EXPECT_THROW(thread.interrupt(), ContractViolation);
  EXPECT_THROW((void)thread.faultsDetected(), ContractViolation);
  thread.start();
  EXPECT_THROW(thread.start(), ContractViolation);
  EXPECT_THROW(thread.setCostModel({}), ContractViolation);
  // Never admitted: withdrawing is a no-op, not an error.
  EXPECT_FALSE(thread.removeFromFeasibility());

  // An admitted *and started* thread cannot be withdrawn.
  VirtualMachine vm2(100_ms);
  RealtimeThread admitted(vm2, "a", PriorityParameters(10),
                          table2_release(10_ms, 50_ms, 50_ms));
  ASSERT_TRUE(admitted.addToFeasibility());
  admitted.start();
  EXPECT_THROW((void)admitted.removeFromFeasibility(), ContractViolation);
}

}  // namespace
}  // namespace rtft::rtsj
