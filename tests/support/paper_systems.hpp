// The paper's two task systems, used throughout the test and bench suites.
#pragma once

#include "sched/task.hpp"

namespace rtft::testsupport {

using rtft::Duration;
using rtft::sched::TaskParams;
using rtft::sched::TaskSet;

/// Paper Table 1 (the response-time example of §2.2 / Figure 1):
///   τ1: P=20 D=6 T=6 C=3,  τ2: P=15 D=2 T=4 C=2   (interpreted as ms).
/// τ2's worst response is 6 at its *second* job — the example shows the
/// critical-instant job is not always the worst one.
inline TaskSet table1_system() {
  TaskSet ts;
  ts.add(TaskParams{"tau1", 20, Duration::ms(3), Duration::ms(6),
                    Duration::ms(6), Duration::zero()});
  ts.add(TaskParams{"tau2", 15, Duration::ms(2), Duration::ms(4),
                    Duration::ms(2), Duration::zero()});
  return ts;
}

/// Paper Table 2 (the evaluated system of §6):
///   τ1: P=20 T=200 D=70  C=29
///   τ2: P=18 T=250 D=120 C=29
///   τ3: P=16 T=1500 D=120 C=29      (ms)
/// WCRTs 29/58/87 ms, equitable allowance A=11 ms, system budget B=33 ms.
/// `tau3_offset` shifts τ3 so its job joins the t=1000 ms window of
/// Figures 3–7 (see DESIGN.md).
inline TaskSet table2_system(Duration tau3_offset = Duration::zero()) {
  TaskSet ts;
  ts.add(TaskParams{"tau1", 20, Duration::ms(29), Duration::ms(200),
                    Duration::ms(70), Duration::zero()});
  ts.add(TaskParams{"tau2", 18, Duration::ms(29), Duration::ms(250),
                    Duration::ms(120), Duration::zero()});
  ts.add(TaskParams{"tau3", 16, Duration::ms(29), Duration::ms(1500),
                    Duration::ms(120), tau3_offset});
  return ts;
}

}  // namespace rtft::testsupport
