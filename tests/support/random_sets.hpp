// Random task-set construction shared by property tests and benchmarks.
#pragma once

#include <string>

#include "common/random.hpp"
#include "sched/priority.hpp"
#include "sched/task.hpp"

namespace rtft::testsupport {

/// Builds a TaskSet from random parameters with deadline-monotonic
/// priorities (unique, descending from the RTSJ max).
inline sched::TaskSet make_random_task_set(Rng& rng,
                                           const RandomTaskSetSpec& spec) {
  const auto raw = random_task_set(rng, spec);
  sched::TaskSet ts;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    sched::TaskParams p;
    p.name = "t" + std::to_string(i);
    p.priority = 0;  // assigned below
    p.cost = raw[i].cost;
    p.period = raw[i].period;
    p.deadline = raw[i].deadline;
    p.offset = Duration::zero();
    ts.add(std::move(p));
  }
  return sched::with_deadline_monotonic_priorities(ts);
}

}  // namespace rtft::testsupport
