// Random task-set construction shared by property tests and benchmarks.
//
// The construction itself lives in src/sweep/generators.* so that the
// sweep engine, the benches and the tests all generate identical systems
// from identical seeds; this header only re-exports it under the
// historical test-support names.
#pragma once

#include "sweep/generators.hpp"

namespace rtft::testsupport {

using rtft::sweep::make_random_task_set;
using rtft::sweep::make_seeded_task_set;

}  // namespace rtft::testsupport
