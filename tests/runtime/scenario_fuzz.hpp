// Shared randomized-scenario generator for the engine equivalence
// suites. One materialized Scenario applied to two engines yields
// bit-identical inputs, whatever their event queue, sink mode or cost
// representation — so each suite varies exactly one axis and compares.
//
// Scenarios cross every engine-visible path: periodic / one-shot /
// cancelled timers, stop requests in both modes, injected overhead,
// context-switch charging, deadline misses on overloaded sets, and
// tie-heavy quantized grids where every duration snaps to a coarse
// quantum so many events share one date.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/engine.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt::fuzz {

struct StopPlan {
  Duration when;
  TaskHandle task = 0;
  StopMode mode = StopMode::kTask;
  Duration extra_latency;
};

struct OverheadPlan {
  Duration when;
  Duration amount;
};

struct TimerPlan {
  Duration first;
  Duration period;        ///< zero: one-shot.
  Duration cancel_at;     ///< zero: never cancelled.
};

/// One fully materialized random scenario.
struct Scenario {
  Duration horizon;
  Duration stop_poll_latency;
  Duration context_switch_cost;
  std::vector<sched::TaskParams> tasks;
  std::vector<std::uint64_t> cost_seeds;
  std::vector<StopPlan> stops;
  std::vector<OverheadPlan> overheads;
  std::vector<TimerPlan> timers;
};

/// Deterministic per-job actual cost in [C/2+1ns, 2C]: underruns,
/// overruns and deadline misses without any shared-RNG ordering
/// dependence between runs. `quantum` snaps the jitter so tie-heavy
/// scenarios stay tie-heavy through the cost model.
inline Duration jittered_cost(Duration nominal, std::uint64_t seed,
                              std::int64_t job, std::int64_t quantum) {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(job) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  const std::int64_t c = nominal.count();
  const std::int64_t lo = c / 2 + 1;
  const std::int64_t span = 2 * c - lo + 1;
  std::int64_t v =
      lo + static_cast<std::int64_t>(z % static_cast<std::uint64_t>(span));
  if (quantum > 1) v = std::max<std::int64_t>((v / quantum) * quantum, 1);
  return Duration::ns(v);
}

/// The cost-jitter quantum that keeps a tie-heavy scenario tie-heavy.
inline std::int64_t cost_quantum(const Scenario& s) {
  return s.context_switch_cost.is_zero() &&
                 s.stop_poll_latency % Duration::ms(1) == Duration::zero()
             ? 1'000'000
             : 1;
}

inline Scenario random_scenario(std::uint64_t seed, bool quantized) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  Scenario s;
  s.horizon = Duration::ms(pick(150, 400));
  s.stop_poll_latency =
      (rng() % 2 != 0) ? Duration::us(pick(0, 3000)) : Duration::zero();
  s.context_switch_cost =
      (rng() % 2 != 0) ? Duration::us(pick(1, 200)) : Duration::zero();
  if (quantized) {
    // Snap everything to a coarse grid: simultaneous releases,
    // completions, timer fires and deadline checks everywhere.
    s.stop_poll_latency = Duration::ms(pick(0, 2));
    s.context_switch_cost = Duration::zero();
  }
  const auto n = static_cast<std::size_t>(pick(1, 10));
  for (std::size_t i = 0; i < n; ++i) {
    sched::TaskParams p;
    p.name = "t" + std::to_string(i);
    p.priority = static_cast<int>(pick(1, 4));  // heavy priority ties
    p.period = quantized ? Duration::ms(pick(1, 12) * 5)
                         : Duration::ms(pick(5, 60));
    p.cost = quantized ? Duration::ms(pick(1, 4))
                       : Duration::us(pick(200, 4000));
    // Mostly constrained deadlines; sometimes tight ones that miss.
    p.deadline = (rng() % 4 == 0) ? p.cost * 2 : p.period;
    p.offset = quantized ? Duration::ms(pick(0, 4) * 5)
                         : Duration::ms(pick(0, 20));
    s.tasks.push_back(std::move(p));
    s.cost_seeds.push_back(rng());
  }
  const std::int64_t stops = pick(0, 3);
  for (std::int64_t k = 0; k < stops; ++k) {
    s.stops.push_back(StopPlan{
        Duration::ms(pick(10, 140)),
        static_cast<TaskHandle>(pick(0, static_cast<std::int64_t>(n) - 1)),
        (rng() % 2 != 0) ? StopMode::kTask : StopMode::kJob,
        quantized ? Duration::zero() : Duration::us(pick(0, 500))});
  }
  const std::int64_t overheads = pick(0, 3);
  for (std::int64_t k = 0; k < overheads; ++k) {
    s.overheads.push_back(
        OverheadPlan{Duration::ms(pick(5, 140)),
                     quantized ? Duration::ms(pick(1, 2))
                               : Duration::us(pick(10, 800))});
  }
  const std::int64_t timers = pick(0, 4);
  for (std::int64_t k = 0; k < timers; ++k) {
    TimerPlan t;
    t.first = Duration::ms(pick(0, 120));
    t.period = (rng() % 2 != 0) ? Duration::ms(pick(1, 25)) : Duration::zero();
    t.cancel_at =
        (rng() % 3 == 0) ? Duration::ms(pick(10, 130)) : Duration::zero();
    s.timers.push_back(t);
  }
  return s;
}

/// Registers the scenario's tasks, stops, overheads and timers on an
/// already-reset engine. `cost_for(i)` supplies task i's cost spec;
/// `fires` counts timer-handler invocations and must outlive the run.
inline void apply_scenario(Engine& engine, const Scenario& s,
                           const std::function<CostSpec(std::size_t)>& cost_for,
                           std::int64_t& fires) {
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    engine.add_task(s.tasks[i], cost_for(i));
  }
  for (const StopPlan& p : s.stops) {
    engine.add_one_shot_timer(Instant::epoch() + p.when, [p](Engine& e) {
      e.request_stop(p.task, p.mode, p.extra_latency);
    });
  }
  for (const OverheadPlan& p : s.overheads) {
    engine.add_one_shot_timer(Instant::epoch() + p.when, [p](Engine& e) {
      e.inject_overhead(p.amount);
    });
  }
  std::vector<TimerHandle> handles;
  for (const TimerPlan& p : s.timers) {
    const Instant first = Instant::epoch() + p.first;
    if (p.period.is_positive()) {
      handles.push_back(engine.add_periodic_timer(
          first, p.period, [&fires](Engine&) { ++fires; }));
    } else {
      handles.push_back(
          engine.add_one_shot_timer(first, [&fires](Engine&) { ++fires; }));
    }
  }
  for (std::size_t i = 0; i < s.timers.size(); ++i) {
    if (s.timers[i].cancel_at.is_positive()) {
      const TimerHandle victim = handles[i];
      engine.add_one_shot_timer(Instant::epoch() + s.timers[i].cancel_at,
                                [victim](Engine& e) {
                                  e.cancel_timer(victim);
                                });
    }
  }
}

using FlatEvent =
    std::tuple<std::int64_t, int, std::uint32_t, std::int64_t, std::int64_t>;

inline std::vector<FlatEvent> flatten(const trace::Recorder& rec) {
  std::vector<FlatEvent> out;
  out.reserve(rec.size());
  for (const auto& e : rec.events()) {
    out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task, e.job,
                     e.detail);
  }
  return out;
}

}  // namespace rtft::rt::fuzz
