#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "support/paper_systems.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt {
namespace {

using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using trace::EventKind;
using namespace rtft::literals;

EngineOptions options_with_horizon(Duration horizon) {
  EngineOptions opts;
  opts.horizon = Instant::epoch() + horizon;
  return opts;
}

/// Wires a full-fidelity recorder into the options' sink seam.
EngineOptions with_sink(EngineOptions opts, trace::Recorder& rec) {
  opts.sink = &rec;
  return opts;
}

/// Events of one kind, in record order.
std::vector<trace::TraceEvent> events_of_kind(const trace::Recorder& rec,
                                              EventKind kind) {
  std::vector<trace::TraceEvent> out;
  rec.of_kind(kind, std::back_inserter(out));
  return out;
}

sched::TaskParams simple_task(std::string name, int priority, Duration cost,
                              Duration period,
                              Duration offset = Duration::zero()) {
  return sched::TaskParams{std::move(name), priority, cost, period, period,
                           offset};
}

/// First event of a kind for a task, or nullopt.
std::optional<trace::TraceEvent> first_event(const trace::Recorder& rec,
                                             EventKind kind,
                                             std::uint32_t task) {
  for (const auto& e : rec.events()) {
    if (e.kind == kind && e.task == task) return e;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Basic lifecycle.
// ---------------------------------------------------------------------------

TEST(Engine, SingleTaskCompletesWithResponseEqualCost) {
  Engine eng(options_with_horizon(100_ms));
  const TaskHandle t = eng.add_task(simple_task("solo", 5, 7_ms, 50_ms));
  eng.run();
  const TaskStats& s = eng.stats(t);
  EXPECT_EQ(s.released, 3);   // releases at 0, 50 and 100 (the horizon)
  EXPECT_EQ(s.completed, 2);  // the job released at 100 cannot finish
  EXPECT_EQ(s.missed, 0);
  EXPECT_EQ(s.max_response, 7_ms);
}

TEST(Engine, ReleaseDatesFollowOffsetAndPeriod) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(100_ms), rec));
  const TaskHandle t =
      eng.add_task(simple_task("off", 5, 1_ms, 30_ms, /*offset=*/10_ms));
  eng.run();
  const auto releases = events_of_kind(rec, EventKind::kJobRelease);
  ASSERT_EQ(releases.size(), 4u);  // 10, 40, 70, 100
  EXPECT_EQ(releases[0].time, Instant::epoch() + 10_ms);
  EXPECT_EQ(releases[1].time, Instant::epoch() + 40_ms);
  EXPECT_EQ(releases[2].time, Instant::epoch() + 70_ms);
  EXPECT_EQ(releases[3].time, Instant::epoch() + 100_ms);
  EXPECT_EQ(eng.stats(t).released, 4);
}

TEST(Engine, HigherPriorityPreemptsLower) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(50_ms), rec));
  const TaskHandle low =
      eng.add_task(simple_task("low", 1, 10_ms, 50_ms));
  const TaskHandle high =
      eng.add_task(simple_task("high", 9, 3_ms, 50_ms, /*offset=*/2_ms));
  eng.run();

  // low runs [0,2), preempted, high runs [2,5), low resumes [5,13).
  const auto low_end = first_event(rec, EventKind::kJobEnd,
                                   static_cast<std::uint32_t>(low));
  const auto high_end = first_event(rec, EventKind::kJobEnd,
                                    static_cast<std::uint32_t>(high));
  ASSERT_TRUE(low_end && high_end);
  EXPECT_EQ(high_end->time, Instant::epoch() + 5_ms);
  EXPECT_EQ(low_end->time, Instant::epoch() + 13_ms);

  const auto preempt = first_event(rec, EventKind::kJobPreempted,
                                   static_cast<std::uint32_t>(low));
  ASSERT_TRUE(preempt.has_value());
  EXPECT_EQ(preempt->time, Instant::epoch() + 2_ms);
}

TEST(Engine, FifoWithinSamePriority) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(50_ms), rec));
  const TaskHandle a = eng.add_task(simple_task("a", 5, 3_ms, 50_ms));
  const TaskHandle b = eng.add_task(simple_task("b", 5, 3_ms, 50_ms));
  eng.run();
  // Both release at 0; "a" was added first, becomes ready first, runs
  // first; "b" follows without preempting it.
  const auto a_end = first_event(rec, EventKind::kJobEnd,
                                 static_cast<std::uint32_t>(a));
  const auto b_end = first_event(rec, EventKind::kJobEnd,
                                 static_cast<std::uint32_t>(b));
  ASSERT_TRUE(a_end && b_end);
  EXPECT_EQ(a_end->time, Instant::epoch() + 3_ms);
  EXPECT_EQ(b_end->time, Instant::epoch() + 6_ms);
  EXPECT_EQ(rec.count_of_kind(EventKind::kJobPreempted), 0u);
}

// ---------------------------------------------------------------------------
// Paper Table 1 timeline: simulated responses must equal the analysis.
// ---------------------------------------------------------------------------

TEST(Engine, PaperTable1SimulatedResponsesAre5_6_4) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(24_ms), rec));
  const auto ts = table1_system();
  eng.add_task(ts[0]);
  const TaskHandle tau2 = eng.add_task(ts[1]);
  eng.run();

  std::vector<Duration> responses;
  for (const auto& e : rec.events()) {
    if (e.kind == EventKind::kJobEnd &&
        e.task == static_cast<std::uint32_t>(tau2)) {
      responses.push_back(Duration::ns(e.detail));
    }
  }
  // τ2 jobs released at 0, 4, 8, 12, ... — the level-2 busy period gives
  // responses 5, 6, 4 for the first three jobs (paper Figure 1), after
  // which the pattern repeats (12 is the hyperperiod).
  ASSERT_GE(responses.size(), 3u);
  EXPECT_EQ(responses[0], 5_ms);
  EXPECT_EQ(responses[1], 6_ms);
  EXPECT_EQ(responses[2], 4_ms);
}

TEST(Engine, PaperTable1DeadlineMissesDetected) {
  // τ2's deadline is 2 ms but its responses are 4–6 ms: every job misses.
  Engine eng(options_with_horizon(12_ms));
  const auto ts = table1_system();
  eng.add_task(ts[0]);
  const TaskHandle tau2 = eng.add_task(ts[1]);
  eng.run();
  EXPECT_EQ(eng.stats(tau2).missed, 3);
  EXPECT_EQ(eng.stats(tau2).completed, 3);  // late but completed
}

// ---------------------------------------------------------------------------
// Backlogged releases (RTSJ waitForNextPeriod semantics).
// ---------------------------------------------------------------------------

TEST(Engine, OverrunningJobBacklogsSuccessor) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(30_ms), rec));
  // One task, period 10, nominal cost 4, first job takes 14.
  const TaskHandle t = eng.add_task(
      simple_task("lag", 5, 4_ms, 10_ms),
      [](std::int64_t job) { return job == 0 ? 14_ms : 4_ms; });
  eng.run();
  const TaskStats& s = eng.stats(t);
  // Job 0: [0,14) -> misses its deadline at 10. Job 1 (released 10) runs
  // [14,18): response 8, meets deadline at 20. Job 2 (released 20) runs
  // [20,24).
  EXPECT_EQ(s.missed, 1);
  EXPECT_EQ(s.completed, 3);
  const auto ends = events_of_kind(rec, EventKind::kJobEnd);
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_EQ(ends[0].time, Instant::epoch() + 14_ms);
  EXPECT_EQ(ends[1].time, Instant::epoch() + 18_ms);
  EXPECT_EQ(ends[2].time, Instant::epoch() + 24_ms);
}

TEST(Engine, OverrunInjectionIsRecorded) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(20_ms), rec));
  eng.add_task(simple_task("f", 5, 4_ms, 20_ms),
               [](std::int64_t job) { return job == 0 ? 9_ms : 4_ms; });
  eng.run();
  const auto injected = events_of_kind(rec, EventKind::kOverrunInjected);
  ASSERT_EQ(injected.size(), 1u);
  EXPECT_EQ(injected[0].job, 0);
  EXPECT_EQ(Duration::ns(injected[0].detail), 5_ms);
}

// ---------------------------------------------------------------------------
// Stopping (cooperative, §4.1).
// ---------------------------------------------------------------------------

TEST(Engine, StopTaskAbortsCurrentJobAndFutureReleases) {
  Engine eng(options_with_horizon(100_ms));
  const TaskHandle t = eng.add_task(simple_task("victim", 5, 8_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 3_ms, [&](Engine& e) {
    e.request_stop(t, StopMode::kTask);
  });
  eng.run();
  const TaskStats& s = eng.stats(t);
  EXPECT_TRUE(s.stopped);
  EXPECT_EQ(s.aborted, 1);
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.released, 1);  // releases at 20, 40, ... never happen
  EXPECT_EQ(s.missed, 1);    // job 0 never completed
  EXPECT_EQ(eng.job_outcome(t, 0), JobOutcome::kAborted);
}

TEST(Engine, StopJobKeepsTaskAlive) {
  Engine eng(options_with_horizon(45_ms));
  const TaskHandle t = eng.add_task(simple_task("victim", 5, 8_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 3_ms, [&](Engine& e) {
    e.request_stop(t, StopMode::kJob);
  });
  eng.run();
  const TaskStats& s = eng.stats(t);
  EXPECT_FALSE(s.stopped);
  EXPECT_EQ(s.aborted, 1);
  EXPECT_EQ(s.completed, 1);  // job at 20 finishes; 40+8 = 48 > horizon
  EXPECT_EQ(s.released, 3);   // 0, 20, 40
}

TEST(Engine, StopPollLatencyDelaysEffect) {
  trace::Recorder rec;
  EngineOptions opts = options_with_horizon(100_ms);
  opts.stop_poll_latency = 2_ms;
  opts.sink = &rec;
  Engine eng(opts);
  const TaskHandle t = eng.add_task(simple_task("victim", 5, 8_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 3_ms, [&](Engine& e) {
    e.request_stop(t, StopMode::kTask);
  });
  eng.run();
  const auto aborted = first_event(rec, EventKind::kJobAborted,
                                   static_cast<std::uint32_t>(t));
  ASSERT_TRUE(aborted.has_value());
  EXPECT_EQ(aborted->time, Instant::epoch() + 5_ms);  // 3 + 2
}

TEST(Engine, StoppingStoppedTaskIsIdempotent) {
  Engine eng(options_with_horizon(50_ms));
  const TaskHandle t = eng.add_task(simple_task("victim", 5, 8_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 1_ms, [&](Engine& e) {
    e.request_stop(t, StopMode::kTask);
    e.request_stop(t, StopMode::kTask);
  });
  eng.run();
  EXPECT_EQ(eng.stats(t).aborted, 1);
}

TEST(Engine, SkippedBackloggedJobsCountAsMissed) {
  Engine eng(options_with_horizon(100_ms));
  // First job overruns heavily so jobs 1 and 2 are backlogged, then the
  // task is stopped: the backlogged jobs are skipped and ultimately miss.
  const TaskHandle t = eng.add_task(
      simple_task("lag", 5, 2_ms, 10_ms),
      [](std::int64_t job) { return job == 0 ? 50_ms : 2_ms; });
  eng.add_one_shot_timer(Instant::epoch() + 25_ms, [&](Engine& e) {
    e.request_stop(t, StopMode::kTask);
  });
  eng.run();
  const TaskStats& s = eng.stats(t);
  EXPECT_TRUE(s.stopped);
  EXPECT_EQ(s.released, 3);  // 0, 10, 20
  EXPECT_EQ(s.aborted, 1);
  EXPECT_EQ(s.missed, 3);    // all of them
  EXPECT_EQ(eng.job_outcome(t, 1), JobOutcome::kSkipped);
  EXPECT_EQ(eng.job_outcome(t, 2), JobOutcome::kSkipped);
}

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

TEST(Engine, OneShotTimerFiresOnce) {
  Engine eng(options_with_horizon(50_ms));
  int fires = 0;
  eng.add_one_shot_timer(Instant::epoch() + 10_ms,
                         [&](Engine&) { ++fires; });
  eng.run();
  EXPECT_EQ(fires, 1);
}

TEST(Engine, PeriodicTimerFiresRepeatedly) {
  Engine eng(options_with_horizon(50_ms));
  std::vector<Instant> dates;
  eng.add_periodic_timer(Instant::epoch() + 5_ms, 10_ms,
                         [&](Engine& e) { dates.push_back(e.now()); });
  eng.run();
  ASSERT_EQ(dates.size(), 5u);  // 5, 15, 25, 35, 45
  EXPECT_EQ(dates[0], Instant::epoch() + 5_ms);
  EXPECT_EQ(dates[4], Instant::epoch() + 45_ms);
}

TEST(Engine, CancelledTimerStopsFiring) {
  Engine eng(options_with_horizon(50_ms));
  int fires = 0;
  TimerHandle timer = eng.add_periodic_timer(
      Instant::epoch() + 5_ms, 10_ms, [&](Engine& e) {
        if (++fires == 2) e.cancel_timer(timer);
      });
  eng.run();
  EXPECT_EQ(fires, 2);
}

TEST(Engine, TimerRunsInZeroVirtualTime) {
  // A timer fire between two jobs must not delay them.
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(20_ms), rec));
  const TaskHandle t = eng.add_task(simple_task("t", 5, 10_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 5_ms, [](Engine&) {});
  eng.run();
  const auto end = first_event(rec, EventKind::kJobEnd,
                               static_cast<std::uint32_t>(t));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->time, Instant::epoch() + 10_ms);
}

TEST(Engine, CompletionBeatsTimerAtSameInstant) {
  // Figure 5 semantics: a job completing exactly when a detector fires is
  // observed as finished.
  Engine eng(options_with_horizon(20_ms));
  const TaskHandle t = eng.add_task(simple_task("t", 5, 10_ms, 20_ms));
  bool finished_at_fire = false;
  eng.add_one_shot_timer(Instant::epoch() + 10_ms, [&](Engine& e) {
    finished_at_fire = e.job_completed(t, 0);
  });
  eng.run();
  EXPECT_TRUE(finished_at_fire);
}

// ---------------------------------------------------------------------------
// Overhead injection and context switches.
// ---------------------------------------------------------------------------

TEST(Engine, InjectedOverheadDelaysTasks) {
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(30_ms), rec));
  const TaskHandle t = eng.add_task(simple_task("t", 5, 10_ms, 30_ms));
  eng.add_one_shot_timer(Instant::epoch() + 2_ms, [](Engine& e) {
    e.inject_overhead(3_ms);  // a simulated kernel/detector cost
  });
  eng.run();
  const auto end = first_event(rec, EventKind::kJobEnd,
                               static_cast<std::uint32_t>(t));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->time, Instant::epoch() + 13_ms);
}

TEST(Engine, OverheadDrainingAtAnotherEventsInstant) {
  // Regression: a stale completion event landing at the exact instant the
  // overhead interval drains used to dispatch a task while the queued
  // OverheadDone event was still valid, tripping an engine invariant.
  trace::Recorder rec;
  Engine eng(with_sink(options_with_horizon(20_ms), rec));
  const TaskHandle t = eng.add_task(simple_task("t", 5, 5_ms, 20_ms));
  eng.add_one_shot_timer(Instant::epoch() + 2_ms, [](Engine& e) {
    e.inject_overhead(3_ms);  // drains at t=5, where the (now stale)
                              // completion event also lands
  });
  eng.run();
  const auto end = first_event(rec, EventKind::kJobEnd,
                               static_cast<std::uint32_t>(t));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->time, Instant::epoch() + 8_ms);  // 5ms work + 3ms overhead
}

TEST(Engine, ContextSwitchCostCharged) {
  trace::Recorder rec;
  EngineOptions opts = options_with_horizon(40_ms);
  opts.context_switch_cost = 1_ms;
  opts.sink = &rec;
  Engine eng(opts);
  const TaskHandle low = eng.add_task(simple_task("low", 1, 10_ms, 40_ms));
  eng.add_task(simple_task("high", 9, 5_ms, 40_ms, /*offset=*/3_ms));
  eng.run();
  // Switch charge [0,1), low runs [1,3) and is preempted by high's
  // release; charge [3,4), high runs [4,9); charge [9,10), low resumes
  // with 8 ms left and ends at 18.
  const auto low_end = first_event(rec, EventKind::kJobEnd,
                                   static_cast<std::uint32_t>(low));
  ASSERT_TRUE(low_end.has_value());
  EXPECT_EQ(low_end->time, Instant::epoch() + 18_ms);
}

// ---------------------------------------------------------------------------
// Callbacks (waitForNextPeriod hooks).
// ---------------------------------------------------------------------------

TEST(Engine, JobCallbacksBracketEveryJob) {
  Engine eng(options_with_horizon(45_ms));
  std::vector<std::pair<char, std::int64_t>> log;
  TaskCallbacks cb;
  cb.on_job_begin = [&](Engine&, std::int64_t j) { log.push_back({'b', j}); };
  cb.on_job_end = [&](Engine&, std::int64_t j) { log.push_back({'e', j}); };
  eng.add_task(simple_task("t", 5, 5_ms, 20_ms), {}, cb);
  eng.run();
  ASSERT_EQ(log.size(), 6u);  // jobs 0, 1, 2
  EXPECT_EQ(log[0], (std::pair<char, std::int64_t>{'b', 0}));
  EXPECT_EQ(log[1], (std::pair<char, std::int64_t>{'e', 0}));
  EXPECT_EQ(log[4], (std::pair<char, std::int64_t>{'b', 2}));
  EXPECT_EQ(log[5], (std::pair<char, std::int64_t>{'e', 2}));
}

// ---------------------------------------------------------------------------
// Determinism and guard rails.
// ---------------------------------------------------------------------------

TEST(Engine, RunsAreDeterministic) {
  auto run_once = [] {
    trace::Recorder rec;
    Engine eng(with_sink(options_with_horizon(2000_ms), rec));
    const auto ts = table2_system(/*tau3_offset=*/1000_ms);
    for (const auto& t : ts) eng.add_task(t);
    eng.run();
    std::vector<std::tuple<std::int64_t, int, std::uint32_t, std::int64_t>>
        out;
    for (const auto& e : rec.events()) {
      out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task,
                       e.job);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, RejectsPastDates) {
  Engine eng(options_with_horizon(50_ms));
  eng.add_task(simple_task("t", 5, 5_ms, 20_ms));
  eng.run_until(Instant::epoch() + 30_ms);
  EXPECT_THROW(eng.add_one_shot_timer(Instant::epoch() + 10_ms, {}),
               ContractViolation);
  EXPECT_THROW(
      (void)eng.add_task(simple_task("late", 5, 5_ms, 20_ms)),
      ContractViolation);
  EXPECT_THROW(eng.run_until(Instant::epoch() + 10_ms), ContractViolation);
  EXPECT_THROW(eng.run_until(Instant::epoch() + 60_ms), ContractViolation);
}

TEST(Engine, DynamicTaskAdditionMidRun) {
  Engine eng(options_with_horizon(50_ms));
  eng.add_task(simple_task("t", 5, 5_ms, 20_ms));
  eng.run_until(Instant::epoch() + 10_ms);
  const TaskHandle late = eng.add_task(simple_task("late", 6, 3_ms, 20_ms),
                                       {}, {}, eng.now());
  eng.run();
  EXPECT_EQ(eng.stats(late).released, 3);  // 10, 30, 50
  EXPECT_EQ(eng.stats(late).completed, 2); // 50+3 > 50: last incomplete
}

TEST(Engine, InvalidHandlesThrow) {
  Engine eng(options_with_horizon(10_ms));
  EXPECT_THROW((void)eng.stats(0), ContractViolation);
  EXPECT_THROW(eng.request_stop(3, StopMode::kTask), ContractViolation);
  EXPECT_THROW(eng.cancel_timer(0), ContractViolation);
}

TEST(Engine, JobOutcomeQueries) {
  Engine eng(options_with_horizon(25_ms));
  const TaskHandle t = eng.add_task(simple_task("t", 5, 5_ms, 20_ms));
  eng.run();
  EXPECT_EQ(eng.job_outcome(t, 0), JobOutcome::kCompleted);
  EXPECT_EQ(eng.job_outcome(t, 1), JobOutcome::kCompleted);  // ends at 25
  EXPECT_THROW((void)eng.job_outcome(t, 7), ContractViolation);
  EXPECT_TRUE(eng.job_completed(t, 0));
  EXPECT_FALSE(eng.job_completed(t, 7));  // unreleased: just false
}

}  // namespace
}  // namespace rtft::rt
