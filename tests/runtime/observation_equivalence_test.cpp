// Observation-seam and cost-model equivalence — the zero-virtual paths
// must be indistinguishable from the runtime-polymorphic oracles on
// randomized scenarios (tests/runtime/scenario_fuzz.hpp), crossed with
// both event-queue modes:
//
//   * flat CostSpec resolution vs a std::function closure computing the
//     identical per-job costs (trace equality via Recorder);
//   * engine-local batched counting (SinkMode::kStaticCounting) vs the
//     per-event virtual CountingSink (counter + stats equality);
//   * SinkMode::kStaticNull vs everything (stats equality);
//   * batched flush across split run_until() calls and across
//     Engine::reset() reuse (no leak into pooled follow-up runs).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"
#include "scenario_fuzz.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;
using fuzz::Scenario;

/// The flat cost spec task `i` of `s` runs under — deliberately cycling
/// through every non-custom CostKind, including a negative overrun big
/// enough to exercise the 1 ns floor.
CostSpec flat_cost(const Scenario& s, std::size_t i) {
  const Duration nominal = s.tasks[i].cost;
  const std::int64_t quantum = fuzz::cost_quantum(s);
  switch (i % 3) {
    case 0:
      return CostSpec::seeded_jitter(s.cost_seeds[i],
                                     Duration::ns(nominal.count() / 2 + 1),
                                     nominal * 2, Duration::ns(quantum));
    case 1:
      return CostSpec::fixed_overrun(
          static_cast<std::int64_t>(i % 5),
          (i % 2 != 0) ? nominal / 2 : -(nominal * 2));
    default:
      return CostSpec::nominal();
  }
}

/// The std::function oracle for the same costs: wraps the flat spec's
/// own resolution in a closure, so the two runs differ *only* in the
/// dispatch path (inline switch vs type-erased call).
CostSpec function_cost(const Scenario& s, std::size_t i) {
  const CostSpec spec = flat_cost(s, i);
  const Duration nominal = s.tasks[i].cost;
  return CostModel([spec, nominal](std::int64_t job) {
    return spec.resolve(nominal, job);
  });
}

enum class Observation { kRecorder, kVirtualCounting, kStaticCounting,
                         kStaticNull };

struct RunResult {
  std::vector<fuzz::FlatEvent> events;       ///< kRecorder only.
  std::vector<trace::TaskCounters> counters; ///< counting modes only.
  std::vector<std::int64_t> kind_totals;     ///< counting modes only.
  std::vector<TaskStats> stats;
};

RunResult run_scenario(Engine& engine, const Scenario& s, Observation obs,
                       EventQueueMode queue, bool flat_costs) {
  trace::Recorder rec;
  trace::CountingSink counting;
  EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.event_queue = queue;
  switch (obs) {
    case Observation::kRecorder: opts.sink = &rec; break;
    case Observation::kVirtualCounting: opts.sink = &counting; break;
    case Observation::kStaticCounting:
      opts.sink_mode = trace::SinkMode::kStaticCounting;
      opts.counting_sink = &counting;
      break;
    case Observation::kStaticNull:
      opts.sink_mode = trace::SinkMode::kStaticNull;
      break;
  }
  engine.reset(opts);
  std::int64_t fires = 0;
  fuzz::apply_scenario(
      engine, s,
      [&](std::size_t i) {
        return flat_costs ? flat_cost(s, i) : function_cost(s, i);
      },
      fires);
  engine.run();
  RunResult result;
  if (obs == Observation::kRecorder) {
    result.events = fuzz::flatten(rec);
    result.events.emplace_back(fires, -1, 0, 0, 0);
  }
  if (obs == Observation::kVirtualCounting ||
      obs == Observation::kStaticCounting) {
    for (std::size_t i = 0; i < engine.task_count(); ++i) {
      result.counters.push_back(counting.counters(i));
    }
    for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
      result.kind_totals.push_back(
          counting.total(static_cast<trace::EventKind>(k)));
    }
  }
  for (std::size_t i = 0; i < engine.task_count(); ++i) {
    result.stats.push_back(engine.stats(i));
  }
  return result;
}

void expect_counters_equal(const std::vector<trace::TaskCounters>& a,
                           const std::vector<trace::TaskCounters>& b,
                           std::uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].released, b[i].released) << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].started, b[i].started) << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].completed, b[i].completed)
        << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].missed, b[i].missed) << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].aborted, b[i].aborted) << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].preemptions, b[i].preemptions)
        << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].detector_fires, b[i].detector_fires)
        << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].faults_detected, b[i].faults_detected)
        << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].stopped, b[i].stopped) << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].max_response, b[i].max_response)
        << "seed " << seed << " task " << i;
    EXPECT_EQ(a[i].last_response, b[i].last_response)
        << "seed " << seed << " task " << i;
  }
}

void expect_stats_equal(const std::vector<TaskStats>& a,
                        const std::vector<TaskStats>& b, std::uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].released, b[i].released) << "seed " << seed;
    EXPECT_EQ(a[i].completed, b[i].completed) << "seed " << seed;
    EXPECT_EQ(a[i].missed, b[i].missed) << "seed " << seed;
    EXPECT_EQ(a[i].aborted, b[i].aborted) << "seed " << seed;
    EXPECT_EQ(a[i].stopped, b[i].stopped) << "seed " << seed;
    EXPECT_EQ(a[i].max_response, b[i].max_response) << "seed " << seed;
    EXPECT_EQ(a[i].last_response, b[i].last_response) << "seed " << seed;
  }
}

/// The 64 suite seeds: 40 free-form + 24 quantized tie-heavy grids.
std::vector<std::pair<std::uint64_t, bool>> suite_seeds() {
  std::vector<std::pair<std::uint64_t, bool>> seeds;
  for (std::uint64_t s = 1; s <= 40; ++s) seeds.emplace_back(s, false);
  for (std::uint64_t s = 1000; s < 1024; ++s) seeds.emplace_back(s, true);
  return seeds;
}

TEST(ObservationEquivalence, FlatCostSpecMatchesFunctionOracleTraces) {
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine flat_engine(bootstrap);
  Engine fn_engine(bootstrap);
  for (const auto& [seed, quantized] : suite_seeds()) {
    const Scenario s = fuzz::random_scenario(seed, quantized);
    for (const EventQueueMode queue :
         {EventQueueMode::kTimingWheel, EventQueueMode::kPooledHeap}) {
      const RunResult flat = run_scenario(flat_engine, s,
                                          Observation::kRecorder, queue,
                                          /*flat_costs=*/true);
      const RunResult fn = run_scenario(fn_engine, s, Observation::kRecorder,
                                        queue, /*flat_costs=*/false);
      ASSERT_EQ(flat.events, fn.events) << "cost divergence at seed " << seed;
      expect_stats_equal(flat.stats, fn.stats, seed);
    }
  }
}

TEST(ObservationEquivalence, StaticCountingMatchesVirtualSink) {
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine static_engine(bootstrap);
  Engine virtual_engine(bootstrap);
  Engine null_engine(bootstrap);
  for (const auto& [seed, quantized] : suite_seeds()) {
    const Scenario s = fuzz::random_scenario(seed, quantized);
    for (const EventQueueMode queue :
         {EventQueueMode::kTimingWheel, EventQueueMode::kPooledHeap}) {
      const RunResult st = run_scenario(static_engine, s,
                                        Observation::kStaticCounting, queue,
                                        /*flat_costs=*/true);
      const RunResult vt = run_scenario(virtual_engine, s,
                                        Observation::kVirtualCounting, queue,
                                        /*flat_costs=*/true);
      expect_counters_equal(st.counters, vt.counters, seed);
      EXPECT_EQ(st.kind_totals, vt.kind_totals) << "seed " << seed;
      expect_stats_equal(st.stats, vt.stats, seed);
      // Static-null discards observation without disturbing execution.
      const RunResult nl = run_scenario(null_engine, s,
                                        Observation::kStaticNull, queue,
                                        /*flat_costs=*/true);
      expect_stats_equal(nl.stats, vt.stats, seed);
    }
  }
}

TEST(ObservationEquivalence, BatchedFlushCoversSplitRuns) {
  // A run split across run_until() calls must absorb into the sink the
  // same counters as one contiguous run — including last_response,
  // which only the task's most recent completion may set.
  const Scenario s = fuzz::random_scenario(11, /*quantized=*/false);
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine whole_engine(bootstrap);
  Engine split_engine(bootstrap);
  const RunResult whole = run_scenario(whole_engine, s,
                                       Observation::kStaticCounting,
                                       EventQueueMode::kTimingWheel,
                                       /*flat_costs=*/true);
  trace::CountingSink counting;
  EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.sink_mode = trace::SinkMode::kStaticCounting;
  opts.counting_sink = &counting;
  split_engine.reset(opts);
  std::int64_t fires = 0;
  fuzz::apply_scenario(
      split_engine, s, [&](std::size_t i) { return flat_cost(s, i); }, fires);
  split_engine.run_until(Instant::epoch() + s.horizon / 3);
  split_engine.run_until(Instant::epoch() + (s.horizon * 2) / 3);
  split_engine.run();
  std::vector<trace::TaskCounters> split;
  for (std::size_t i = 0; i < split_engine.task_count(); ++i) {
    split.push_back(counting.counters(i));
  }
  expect_counters_equal(whole.counters, split, 11);
}

TEST(ObservationEquivalence, ResetReuseLeaksNoCountersAcrossRuns) {
  // Pooled-runner pattern: one engine, thousands of scenarios. Counters
  // accumulated for scenario A — including events recorded through the
  // Engine::sink() seam *between* runs, which no run boundary flushed —
  // must never surface in scenario B's sink after reset().
  const Scenario a = fuzz::random_scenario(3, /*quantized=*/false);
  const Scenario b = fuzz::random_scenario(21, /*quantized=*/false);
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;

  Engine fresh_engine(bootstrap);
  const RunResult fresh = run_scenario(fresh_engine, b,
                                       Observation::kStaticCounting,
                                       EventQueueMode::kTimingWheel,
                                       /*flat_costs=*/true);

  Engine reused_engine(bootstrap);
  (void)run_scenario(reused_engine, a, Observation::kStaticCounting,
                     EventQueueMode::kTimingWheel, /*flat_costs=*/true);
  // Stray post-run events sit in the engine-local bank, unflushed.
  reused_engine.sink().record(reused_engine.now(),
                              trace::EventKind::kDetectorFire, 0, 0, 0);
  reused_engine.sink().record(reused_engine.now(),
                              trace::EventKind::kDeadlineMiss, 1, 0, 0);
  const RunResult reused = run_scenario(reused_engine, b,
                                        Observation::kStaticCounting,
                                        EventQueueMode::kTimingWheel,
                                        /*flat_costs=*/true);
  expect_counters_equal(fresh.counters, reused.counters, 21);
  EXPECT_EQ(fresh.kind_totals, reused.kind_totals);
}

}  // namespace
}  // namespace rtft::rt
