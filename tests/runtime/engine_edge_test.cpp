// Edge-case suite for the virtual-time engine: arbitrary deadlines,
// offsets, degenerate workloads, horizon boundaries.
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "runtime/engine.hpp"
#include "sched/response_time.hpp"
#include "support/paper_systems.hpp"
#include "trace/recorder.hpp"
#include "trace/validator.hpp"

namespace rtft::rt {
namespace {

using trace::EventKind;
using namespace rtft::literals;

EngineOptions horizon_opts(Duration h) {
  EngineOptions o;
  o.horizon = Instant::epoch() + h;
  return o;
}

EngineOptions traced_opts(Duration h, trace::Recorder& rec) {
  EngineOptions o = horizon_opts(h);
  o.sink = &rec;
  return o;
}

TEST(EngineEdge, ArbitraryDeadlineBacklogMatchesLehoczkyJobByJob) {
  // τ2 of Table 1 (D < T but responses exceed the period): the engine's
  // backlogged-release semantics must produce exactly the per-job
  // responses of the level-i busy-period analysis over the hyperperiod.
  const sched::TaskSet ts = testsupport::table1_system();
  sched::RtaOptions opts;
  opts.record_jobs = true;
  const sched::RtaResult rta = sched::response_time(ts, 1, opts);

  trace::Recorder rec;
  Engine eng(traced_opts(12_ms, rec));  // one hyperperiod
  eng.add_task(ts[0]);
  const TaskHandle tau2 = eng.add_task(ts[1]);
  eng.run();

  std::vector<Duration> simulated;
  for (const auto& e : rec.events()) {
    if (e.kind == EventKind::kJobEnd &&
        e.task == static_cast<std::uint32_t>(tau2)) {
      simulated.push_back(Duration::ns(e.detail));
    }
  }
  ASSERT_EQ(simulated.size(), rta.jobs.size());
  for (std::size_t i = 0; i < simulated.size(); ++i) {
    EXPECT_EQ(simulated[i], rta.jobs[i].response) << "job " << i;
  }
}

TEST(EngineEdge, OffsetsShiftEverything) {
  trace::Recorder rec;
  Engine eng(traced_opts(100_ms, rec));
  sched::TaskParams p{"off", 5, 10_ms, 40_ms, 40_ms, /*offset=*/15_ms};
  const TaskHandle t = eng.add_task(p);
  eng.run();
  std::vector<trace::TraceEvent> releases;
  rec.of_kind(EventKind::kJobRelease, std::back_inserter(releases));
  ASSERT_EQ(releases.size(), 3u);  // 15, 55, 95
  EXPECT_EQ(releases[0].time, Instant::epoch() + 15_ms);
  EXPECT_EQ(releases[2].time, Instant::epoch() + 95_ms);
  EXPECT_EQ(eng.stats(t).completed, 2);  // 95+10 > 100
}

TEST(EngineEdge, TinyCostsAndLongHorizonsStayExact) {
  Engine eng(horizon_opts(Duration::s(10)));
  const TaskHandle t = eng.add_task(
      sched::TaskParams{"tiny", 5, 1_us, 1_ms, 1_ms, 0_ms});
  eng.run();
  EXPECT_EQ(eng.stats(t).released, 10'001);  // 0 .. 10s inclusive
  EXPECT_EQ(eng.stats(t).completed, 10'000);
  EXPECT_EQ(eng.stats(t).max_response, 1_us);
}

TEST(EngineEdge, ManyEqualPriorityTasksKeepFifoOrder) {
  trace::Recorder rec;
  Engine eng(traced_opts(100_ms, rec));
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(eng.add_task(sched::TaskParams{
        "t" + std::to_string(i), 5, 2_ms, 100_ms, 100_ms, 0_ms}));
  }
  eng.run();
  // All released at 0, served in handle order: completions at 2, 4, ...
  for (std::size_t i = 0; i < handles.size(); ++i) {
    bool found = false;
    for (const auto& e : rec.events()) {
      if (e.kind == EventKind::kJobEnd &&
          e.task == static_cast<std::uint32_t>(handles[i])) {
        EXPECT_EQ(e.time,
                  Instant::epoch() + 2_ms * (static_cast<std::int64_t>(i) + 1));
        found = true;
      }
    }
    EXPECT_TRUE(found) << i;
  }
  EXPECT_EQ(rec.count_of_kind(EventKind::kJobPreempted), 0u);
}

TEST(EngineEdge, DeadlineLongerThanPeriodChecksFireAfterNextRelease) {
  // D = 2T: the job released at 0 is checked at 2T, after the next
  // release — late completion within D is a meet.
  Engine eng(horizon_opts(100_ms));
  sched::TaskParams p{"dgt", 5, 15_ms, 10_ms, 20_ms, 0_ms};
  const TaskHandle t = eng.add_task(p);
  eng.run_until(Instant::epoch() + 42_ms);
  // job0 [0,15): response 15 <= 20: meets. job1 (rel 10) [15,30):
  // response 20 <= 20 meets. job2 (rel 20) [30,45): at check 40 pending
  // -> miss.
  EXPECT_EQ(eng.stats(t).missed, 1);
  EXPECT_EQ(eng.job_outcome(t, 0), JobOutcome::kCompleted);
  EXPECT_EQ(eng.job_outcome(t, 1), JobOutcome::kCompleted);
}

TEST(EngineEdge, HeavyOverloadTraceStillValidates) {
  // U > 1: constant backlog and misses everywhere, but the trace must
  // remain structurally sound.
  sched::TaskSet ts;
  ts.add(sched::TaskParams{"a", 9, 7_ms, 10_ms, 10_ms, 0_ms});
  ts.add(sched::TaskParams{"b", 1, 7_ms, 10_ms, 10_ms, 0_ms});
  trace::Recorder rec;
  Engine eng(traced_opts(500_ms, rec));
  const TaskHandle a = eng.add_task(ts[0]);
  const TaskHandle b = eng.add_task(ts[1]);
  eng.run();
  EXPECT_EQ(eng.stats(a).missed, 0);      // a fits: 7 <= 10
  EXPECT_GT(eng.stats(b).missed, 30);     // b starves
  const trace::ValidationResult v = trace::validate_trace(ts, rec);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST(EngineEdge, RunUntilInStepsEqualsOneShot) {
  const auto collect = [](const trace::Recorder& rec) {
    std::vector<std::tuple<std::int64_t, int, std::uint32_t>> out;
    for (const auto& e : rec.events()) {
      out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task);
    }
    return out;
  };
  const sched::TaskSet ts = testsupport::table2_system(1000_ms);

  trace::Recorder one_rec;
  Engine one(traced_opts(2000_ms, one_rec));
  for (const auto& t : ts) one.add_task(t);
  one.run();

  trace::Recorder stepped_rec;
  Engine stepped(traced_opts(2000_ms, stepped_rec));
  for (const auto& t : ts) stepped.add_task(t);
  for (int k = 1; k <= 20; ++k) {
    stepped.run_until(Instant::epoch() + 100_ms * k);
  }
  EXPECT_EQ(collect(one_rec), collect(stepped_rec));
}

}  // namespace
}  // namespace rtft::rt
