#include "runtime/event_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace rtft::rt {
namespace {

struct Item {
  int key = 0;
  int seq = 0;  ///< unique: makes the order total.
};

struct ItemEarlier {
  bool operator()(const Item& a, const Item& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
};

using Heap = PooledEventHeap<Item, ItemEarlier>;

TEST(PooledEventHeap, PopsInOrder) {
  Heap heap;
  heap.push(Item{5, 0});
  heap.push(Item{1, 1});
  heap.push(Item{3, 2});
  heap.push(Item{1, 3});
  ASSERT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.top().key, 1);
  EXPECT_EQ(heap.top().seq, 1);  // equal keys: insertion order
  heap.pop();
  EXPECT_EQ(heap.top().seq, 3);
  heap.pop();
  EXPECT_EQ(heap.top().key, 3);
  heap.pop();
  EXPECT_EQ(heap.top().key, 5);
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

TEST(PooledEventHeap, InterleavedPushPopMatchesSortedOrder) {
  // Randomized interleaving cross-checked against a sorted reference:
  // the free list must recycle slots without corrupting the order.
  std::mt19937 rng(7);
  Heap heap;
  std::vector<Item> reference;
  std::vector<int> popped;
  int seq = 0;
  for (int round = 0; round < 2000; ++round) {
    if (heap.empty() || rng() % 3 != 0) {
      const Item item{static_cast<int>(rng() % 100), seq++};
      heap.push(item);
      reference.push_back(item);
    } else {
      popped.push_back(heap.top().seq);
      heap.pop();
    }
  }
  while (!heap.empty()) {
    popped.push_back(heap.top().seq);
    heap.pop();
  }
  // Every pushed item came out exactly once...
  std::vector<int> sorted_popped = popped;
  std::sort(sorted_popped.begin(), sorted_popped.end());
  ASSERT_EQ(sorted_popped.size(), reference.size());
  for (std::size_t i = 0; i < sorted_popped.size(); ++i) {
    EXPECT_EQ(sorted_popped[i], static_cast<int>(i));
  }
  // ...and a full drain after the interleaving is globally ordered.
  Heap drain;
  for (const Item& item : reference) drain.push(item);
  std::vector<Item> drained;
  while (!drain.empty()) {
    drained.push_back(drain.top());
    drain.pop();
  }
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end(),
                             [](const Item& a, const Item& b) {
                               return ItemEarlier{}(a, b);
                             }));
}

TEST(PooledEventHeap, ClearKeepsWorking) {
  Heap heap;
  for (int i = 0; i < 100; ++i) heap.push(Item{100 - i, i});
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  heap.push(Item{2, 0});
  heap.push(Item{1, 1});
  EXPECT_EQ(heap.top().key, 1);
}

TEST(PooledEventHeap, PoolRecyclingBoundsStorage) {
  // A push/pop steady state (one event in flight) must not grow the pool:
  // the recycled slot serves every push.
  Heap heap;
  heap.push(Item{0, 0});
  for (int i = 1; i < 10000; ++i) {
    heap.push(Item{i, i});
    heap.pop();
  }
  EXPECT_EQ(heap.size(), 1u);
}

}  // namespace
}  // namespace rtft::rt
