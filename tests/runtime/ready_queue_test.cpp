// ReadyQueue — the incrementally maintained dispatcher order must match
// the linear-scan oracle (the dispatch rule pick_top_task implements) on
// every interleaving of insertions and removals.
#include "runtime/ready_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "common/assert.hpp"

namespace rtft::rt {
namespace {

/// Shadow model: the dispatch rule as a linear scan over live entries,
/// mirroring the engine's pick_top_task (priority desc, ready_seq asc,
/// scan in slot order).
class ScanOracle {
 public:
  void insert(std::size_t task, int priority, std::uint64_t ready_seq) {
    if (task >= live_.size()) live_.resize(task + 1);
    live_[task] = Entry{priority, ready_seq, true};
  }

  void erase(std::size_t task) { live_[task].present = false; }

  [[nodiscard]] bool contains(std::size_t task) const {
    return task < live_.size() && live_[task].present;
  }

  [[nodiscard]] std::optional<std::size_t> top() const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (!live_[i].present) continue;
      if (!best) {
        best = i;
        continue;
      }
      const Entry& b = live_[*best];
      const Entry& t = live_[i];
      if (t.priority > b.priority ||
          (t.priority == b.priority && t.ready_seq < b.ready_seq)) {
        best = i;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Entry& e : live_) n += e.present ? 1 : 0;
    return n;
  }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t ready_seq = 0;
    bool present = false;
  };
  std::vector<Entry> live_;
};

TEST(ReadyQueue, StartsEmpty) {
  ReadyQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.contains(0));
  EXPECT_THROW((void)q.top(), ContractViolation);
}

TEST(ReadyQueue, HighestPriorityWins) {
  ReadyQueue q;
  q.insert(0, 3, 0);
  q.insert(1, 7, 1);
  q.insert(2, 5, 2);
  EXPECT_EQ(q.top(), 1u);
  q.erase(1);
  EXPECT_EQ(q.top(), 2u);
  q.erase(2);
  EXPECT_EQ(q.top(), 0u);
}

TEST(ReadyQueue, SamePriorityIsFifoByReadySeq) {
  // Insertion call order is irrelevant; ready_seq alone breaks the tie.
  ReadyQueue q;
  q.insert(4, 5, 30);
  q.insert(1, 5, 10);
  q.insert(3, 5, 20);
  EXPECT_EQ(q.top(), 1u);
  q.erase(1);
  EXPECT_EQ(q.top(), 3u);
  q.erase(3);
  EXPECT_EQ(q.top(), 4u);
}

TEST(ReadyQueue, FifoSurvivesArrivalOfHigherPriorityWork) {
  // The paper's preemption picture: equal-priority backlog keeps its
  // order while a higher-priority task comes and goes.
  ReadyQueue q;
  q.insert(0, 2, 0);
  q.insert(1, 2, 1);
  q.insert(2, 9, 2);
  EXPECT_EQ(q.top(), 2u);
  q.erase(2);
  EXPECT_EQ(q.top(), 0u);  // not task 1: FIFO within the level
}

TEST(ReadyQueue, EraseOfANonTopMiddleEntry) {
  ReadyQueue q;
  for (std::size_t t = 0; t < 8; ++t) {
    q.insert(t, static_cast<int>(t % 3), t);
  }
  q.erase(5);  // neither top nor last inserted
  EXPECT_FALSE(q.contains(5));
  EXPECT_EQ(q.size(), 7u);
  EXPECT_EQ(q.top(), 2u);  // priority 2, earliest ready_seq
  EXPECT_THROW(q.erase(5), ContractViolation);
}

TEST(ReadyQueue, DuplicateInsertIsRejected) {
  ReadyQueue q;
  q.insert(3, 1, 0);
  EXPECT_THROW(q.insert(3, 1, 1), ContractViolation);
}

TEST(ReadyQueue, ClearRetainsNothingAndSupportsReuse) {
  ReadyQueue q;
  q.insert(0, 5, 0);
  q.insert(9, 4, 1);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(0));
  EXPECT_FALSE(q.contains(9));
  // Reuse after clear: fresh ready_seq numbering must not collide with
  // anything remembered from the previous run.
  q.insert(9, 1, 0);
  q.insert(0, 1, 1);
  EXPECT_EQ(q.top(), 9u);
}

TEST(ReadyQueue, PropertyRandomInterleavingsMatchTheScanOracle) {
  // Random release/retire interleavings over a small slot space, with
  // deliberately heavy priority ties: after every operation the queue
  // and the oracle agree on emptiness, membership and the winner.
  std::mt19937_64 rng(0xc0ffee);
  constexpr std::size_t kSlots = 24;
  for (int round = 0; round < 20; ++round) {
    ReadyQueue q;
    ScanOracle oracle;
    std::uint64_t next_seq = 0;
    for (int op = 0; op < 600; ++op) {
      const auto slot = static_cast<std::size_t>(rng() % kSlots);
      if (!oracle.contains(slot) && (rng() % 3) != 0) {
        const int priority = static_cast<int>(rng() % 4);  // many ties
        q.insert(slot, priority, next_seq);
        oracle.insert(slot, priority, next_seq);
        ++next_seq;
      } else if (oracle.contains(slot)) {
        q.erase(slot);
        oracle.erase(slot);
      }
      ASSERT_EQ(q.size(), oracle.size());
      ASSERT_EQ(q.empty(), !oracle.top().has_value());
      for (std::size_t s = 0; s < kSlots; ++s) {
        ASSERT_EQ(q.contains(s), oracle.contains(s));
      }
      if (const auto expect = oracle.top()) {
        ASSERT_EQ(q.top(), *expect);
      }
    }
  }
}

TEST(ReadyQueue, PropertyDrainInDispatchOrderMatchesTheOracle) {
  // Popping the winner repeatedly yields the exact dispatch sequence the
  // oracle predicts — the heap's global order, not just its top.
  std::mt19937_64 rng(2026);
  for (int round = 0; round < 10; ++round) {
    ReadyQueue q;
    ScanOracle oracle;
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 64);
    for (std::size_t t = 0; t < n; ++t) {
      const int priority = static_cast<int>(rng() % 5);
      q.insert(t, priority, t);
      oracle.insert(t, priority, t);
    }
    while (!q.empty()) {
      const std::size_t expect = *oracle.top();
      ASSERT_EQ(q.top(), expect);
      q.erase(expect);
      oracle.erase(expect);
    }
    EXPECT_FALSE(oracle.top().has_value());
  }
}

}  // namespace
}  // namespace rtft::rt
