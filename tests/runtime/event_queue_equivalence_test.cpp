// Event-queue equivalence — the timing wheel (with lazy deadline
// validation) must reproduce the pooled-heap oracle event-for-event on
// randomized scenarios (tests/runtime/scenario_fuzz.hpp) crossing every
// queue-visible path, including tie-heavy quantized grids where many
// events share one date (and one wheel tick).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "scenario_fuzz.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;
using fuzz::Scenario;

struct RunResult {
  std::vector<fuzz::FlatEvent> events;
  std::vector<TaskStats> stats;
};

/// Applies `s` to `engine` (re-armed through reset) and runs it to the
/// horizon under the given event queue. Timer handlers count fires so
/// handler-visible state is compared too.
RunResult run_scenario(Engine& engine, const Scenario& s,
                       EventQueueMode mode) {
  trace::Recorder rec;
  EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.sink = &rec;
  opts.event_queue = mode;
  engine.reset(opts);
  const std::int64_t quantum = fuzz::cost_quantum(s);
  std::int64_t fires = 0;
  fuzz::apply_scenario(
      engine, s,
      [&](std::size_t i) -> CostSpec {
        const Duration nominal = s.tasks[i].cost;
        const std::uint64_t seed = s.cost_seeds[i];
        return CostModel([nominal, seed, quantum](std::int64_t job) {
          return fuzz::jittered_cost(nominal, seed, job, quantum);
        });
      },
      fires);
  engine.run();
  RunResult result;
  result.events = fuzz::flatten(rec);
  result.events.emplace_back(fires, -1, 0, 0, 0);  // handler-visible state
  for (std::size_t i = 0; i < engine.task_count(); ++i) {
    result.stats.push_back(engine.stats(i));
  }
  return result;
}

void expect_equivalent(const RunResult& a, const RunResult& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.events, b.events) << "trace divergence at seed " << seed;
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    ASSERT_EQ(a.stats[i].released, b.stats[i].released) << "seed " << seed;
    ASSERT_EQ(a.stats[i].completed, b.stats[i].completed) << "seed " << seed;
    ASSERT_EQ(a.stats[i].missed, b.stats[i].missed) << "seed " << seed;
    ASSERT_EQ(a.stats[i].aborted, b.stats[i].aborted) << "seed " << seed;
    ASSERT_EQ(a.stats[i].max_response, b.stats[i].max_response)
        << "seed " << seed;
  }
}

TEST(EventQueueEquivalence, WheelMatchesHeapOnRandomScenarios) {
  // Both engines are reused across all scenarios: the comparison also
  // covers queue state surviving reset().
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine wheel_engine(bootstrap);
  Engine heap_engine(bootstrap);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = fuzz::random_scenario(seed, /*quantized=*/false);
    const RunResult a =
        run_scenario(wheel_engine, s, EventQueueMode::kTimingWheel);
    const RunResult b =
        run_scenario(heap_engine, s, EventQueueMode::kPooledHeap);
    expect_equivalent(a, b, seed);
  }
}

TEST(EventQueueEquivalence, WheelMatchesHeapOnQuantizedTieHeavyGrids) {
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine wheel_engine(bootstrap);
  Engine heap_engine(bootstrap);
  for (std::uint64_t seed = 1000; seed < 1030; ++seed) {
    const Scenario s = fuzz::random_scenario(seed, /*quantized=*/true);
    const RunResult a =
        run_scenario(wheel_engine, s, EventQueueMode::kTimingWheel);
    const RunResult b =
        run_scenario(heap_engine, s, EventQueueMode::kPooledHeap);
    expect_equivalent(a, b, seed);
  }
}

TEST(EventQueueEquivalence, ModeCanFlipAcrossResetsOfOneEngine) {
  // One engine alternating event queues across resets must agree with
  // itself: no per-mode state may leak through the reuse path.
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine engine(bootstrap);
  const Scenario s = fuzz::random_scenario(7, /*quantized=*/false);
  const RunResult first =
      run_scenario(engine, s, EventQueueMode::kPooledHeap);
  const RunResult second =
      run_scenario(engine, s, EventQueueMode::kTimingWheel);
  const RunResult third =
      run_scenario(engine, s, EventQueueMode::kPooledHeap);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.events, third.events);
}

TEST(EventQueueEquivalence, LazyDeadlinesFlushOnPartialRuns) {
  // run_until() must observe every deadline dated up to its stop point
  // (inclusive) and none beyond, exactly like the oracle's event queue.
  for (const EventQueueMode mode :
       {EventQueueMode::kTimingWheel, EventQueueMode::kPooledHeap}) {
    EngineOptions opts;
    opts.horizon = Instant::epoch() + 100_ms;
    opts.event_queue = mode;
    Engine engine(opts);
    // Cost 8ms > deadline 5ms: every job misses, at release + 5ms.
    sched::TaskParams p{"t0", 3, 8_ms, 20_ms, 5_ms, 0_ms};
    const TaskHandle h = engine.add_task(p);
    engine.run_until(Instant::epoch() + 4'999'999_ns);
    EXPECT_EQ(engine.stats(h).missed, 0) << "mode " << static_cast<int>(mode);
    engine.run_until(Instant::epoch() + 5_ms);  // exactly at the deadline
    EXPECT_EQ(engine.stats(h).missed, 1) << "mode " << static_cast<int>(mode);
    engine.run_until(Instant::epoch() + 44_ms);  // misses at 25ms
    EXPECT_EQ(engine.stats(h).missed, 2) << "mode " << static_cast<int>(mode);
    engine.run();
    EXPECT_EQ(engine.stats(h).missed, 5) << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace rtft::rt
