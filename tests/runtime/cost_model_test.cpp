#include "runtime/cost_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/assert.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;

TEST(CostSpec, DefaultAndEmptyFunctionAreNominal) {
  const CostSpec def;
  EXPECT_TRUE(def.is_nominal());
  EXPECT_EQ(def.resolve(3_ms, 0), 3_ms);
  EXPECT_EQ(def.resolve(3_ms, 1000), 3_ms);

  // An empty std::function means "nominal", exactly as the engine's old
  // CostModel contract had it.
  const CostSpec from_empty = CostModel{};
  EXPECT_TRUE(from_empty.is_nominal());
  EXPECT_EQ(CostSpec::nominal().resolve(7_us, 3), 7_us);
}

TEST(CostSpec, FixedOverrunHitsExactlyOneJob) {
  const CostSpec s = CostSpec::fixed_overrun(2, 500_us);
  EXPECT_FALSE(s.is_nominal());
  EXPECT_EQ(s.resolve(1_ms, 0), 1_ms);
  EXPECT_EQ(s.resolve(1_ms, 1), 1_ms);
  EXPECT_EQ(s.resolve(1_ms, 2), 1500_us);
  EXPECT_EQ(s.resolve(1_ms, 3), 1_ms);
}

TEST(CostSpec, FixedOverrunFloorsNegativeDeltasAtOneNanosecond) {
  // The fault model's semantics: a job always does some work.
  const CostSpec s = CostSpec::fixed_overrun(0, -(2_ms));
  EXPECT_EQ(s.resolve(1_ms, 0), 1_ns);
  EXPECT_EQ(s.resolve(1_ms, 1), 1_ms);
  EXPECT_EQ(CostSpec::fixed_overrun(0, -(1_ms) + 1_ns).resolve(1_ms, 0), 1_ns);
}

TEST(CostSpec, SeededJitterIsDeterministicBoundedAndQuantized) {
  const CostSpec s = CostSpec::seeded_jitter(99, 1_ms, 4_ms, 500_us);
  for (std::int64_t job = 0; job < 200; ++job) {
    const Duration c = s.resolve(2_ms, job);
    EXPECT_GE(c, 1_ms) << "job " << job;
    EXPECT_LE(c, 4_ms) << "job " << job;
    EXPECT_EQ(c.count() % 500'000, 0) << "job " << job;
    EXPECT_EQ(c, s.resolve(2_ms, job)) << "job " << job;  // pure function
  }
  // Different seeds decorrelate; same seed reproduces.
  const CostSpec t = CostSpec::seeded_jitter(100, 1_ms, 4_ms, 500_us);
  bool any_differ = false;
  for (std::int64_t job = 0; job < 50; ++job) {
    any_differ = any_differ || t.resolve(2_ms, job) != s.resolve(2_ms, job);
  }
  EXPECT_TRUE(any_differ);
}

TEST(CostSpec, SeededJitterRejectsMalformedBounds) {
  EXPECT_THROW((void)CostSpec::seeded_jitter(1, 0_ns, 1_ms),
               ContractViolation);
  EXPECT_THROW((void)CostSpec::seeded_jitter(1, 2_ms, 1_ms),
               ContractViolation);
  EXPECT_THROW((void)CostSpec::seeded_jitter(1, 1_ms, 2_ms, 0_ns),
               ContractViolation);
}

TEST(CostSpec, CallablesConvertToCustomAndKeepTheirContract) {
  const CostSpec s = [](std::int64_t job) {
    return job == 0 ? 5_ms : 2_ms;
  };
  EXPECT_FALSE(s.is_nominal());
  EXPECT_EQ(s.resolve(1_ms, 0), 5_ms);   // nominal is ignored by kCustom
  EXPECT_EQ(s.resolve(1_ms, 7), 2_ms);

  const CostSpec bad = [](std::int64_t) { return 0_ns; };
  EXPECT_THROW((void)bad.resolve(1_ms, 0), ContractViolation);
}

}  // namespace
}  // namespace rtft::rt
