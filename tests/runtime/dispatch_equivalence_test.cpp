// Dispatcher equivalence — the ready-queue dispatcher must reproduce the
// linear-scan oracle event-for-event on randomized scenarios that cross
// every path the dispatcher is interleaved with: priority ties and FIFO
// backlogs, cost overruns/underruns, context-switch charging, injected
// overhead, stop requests in both modes, and engine reuse via reset().
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/engine.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;

struct StopPlan {
  Duration when;
  TaskHandle task = 0;
  StopMode mode = StopMode::kTask;
  Duration extra_latency;
};

struct OverheadPlan {
  Duration when;
  Duration amount;
};

/// One fully materialized random scenario: applying it to two engines
/// yields bit-identical inputs, whatever their dispatcher.
struct Scenario {
  Duration horizon;
  Duration stop_poll_latency;
  Duration context_switch_cost;
  std::vector<sched::TaskParams> tasks;
  std::vector<std::uint64_t> cost_seeds;
  std::vector<StopPlan> stops;
  std::vector<OverheadPlan> overheads;
};

/// Deterministic per-job actual cost in [C/2+1ns, 2C]: underruns and
/// overruns without any shared-RNG ordering dependence between runs.
Duration jittered_cost(Duration nominal, std::uint64_t seed,
                       std::int64_t job) {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(job) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  const std::int64_t c = nominal.count();
  const std::int64_t lo = c / 2 + 1;
  const std::int64_t span = 2 * c - lo + 1;
  return Duration::ns(
      lo + static_cast<std::int64_t>(z % static_cast<std::uint64_t>(span)));
}

Scenario random_scenario(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  Scenario s;
  s.horizon = Duration::ms(pick(150, 400));
  s.stop_poll_latency =
      (rng() % 2 != 0) ? Duration::us(pick(0, 3000)) : Duration::zero();
  s.context_switch_cost =
      (rng() % 2 != 0) ? Duration::us(pick(1, 200)) : Duration::zero();
  const auto n = static_cast<std::size_t>(pick(1, 10));
  for (std::size_t i = 0; i < n; ++i) {
    sched::TaskParams p;
    p.name = "t" + std::to_string(i);
    p.priority = static_cast<int>(pick(1, 4));  // heavy priority ties
    p.period = Duration::ms(pick(5, 60));
    p.cost = Duration::us(pick(200, 4000));
    p.deadline = p.period;
    p.offset = Duration::ms(pick(0, 20));  // simultaneous releases likely
    s.tasks.push_back(std::move(p));
    s.cost_seeds.push_back(rng());
  }
  const std::int64_t stops = pick(0, 3);
  for (std::int64_t k = 0; k < stops; ++k) {
    s.stops.push_back(StopPlan{
        Duration::ms(pick(10, 140)),
        static_cast<TaskHandle>(pick(0, static_cast<std::int64_t>(n) - 1)),
        (rng() % 2 != 0) ? StopMode::kTask : StopMode::kJob,
        Duration::us(pick(0, 500))});
  }
  const std::int64_t overheads = pick(0, 3);
  for (std::int64_t k = 0; k < overheads; ++k) {
    s.overheads.push_back(
        OverheadPlan{Duration::ms(pick(5, 140)), Duration::us(pick(10, 800))});
  }
  return s;
}

using FlatEvent =
    std::tuple<std::int64_t, int, std::uint32_t, std::int64_t, std::int64_t>;

std::vector<FlatEvent> flatten(const trace::Recorder& rec) {
  std::vector<FlatEvent> out;
  out.reserve(rec.size());
  for (const auto& e : rec.events()) {
    out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task, e.job,
                     e.detail);
  }
  return out;
}

struct RunResult {
  std::vector<FlatEvent> events;
  std::vector<TaskStats> stats;
};

/// Applies `s` to `engine` (re-armed through reset) and runs it to the
/// horizon under the given dispatcher.
RunResult run_scenario(Engine& engine, const Scenario& s, DispatchMode mode) {
  trace::Recorder rec;
  EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.sink = &rec;
  opts.dispatch = mode;
  engine.reset(opts);
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    const Duration nominal = s.tasks[i].cost;
    const std::uint64_t seed = s.cost_seeds[i];
    engine.add_task(s.tasks[i], [nominal, seed](std::int64_t job) {
      return jittered_cost(nominal, seed, job);
    });
  }
  for (const StopPlan& p : s.stops) {
    engine.add_one_shot_timer(Instant::epoch() + p.when, [p](Engine& e) {
      e.request_stop(p.task, p.mode, p.extra_latency);
    });
  }
  for (const OverheadPlan& p : s.overheads) {
    engine.add_one_shot_timer(Instant::epoch() + p.when, [p](Engine& e) {
      e.inject_overhead(p.amount);
    });
  }
  engine.run();
  RunResult result;
  result.events = flatten(rec);
  for (std::size_t i = 0; i < engine.task_count(); ++i) {
    result.stats.push_back(engine.stats(i));
  }
  return result;
}

TEST(DispatchEquivalence, ReadyQueueMatchesLinearScanOnRandomScenarios) {
  // Both engines are reused across all scenarios: the comparison also
  // covers dispatcher state surviving reset().
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine ready_engine(bootstrap);
  Engine scan_engine(bootstrap);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario s = random_scenario(seed);
    const RunResult a = run_scenario(ready_engine, s, DispatchMode::kReadyQueue);
    const RunResult b = run_scenario(scan_engine, s, DispatchMode::kLinearScan);
    ASSERT_EQ(a.events, b.events) << "trace divergence at seed " << seed;
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
      ASSERT_EQ(a.stats[i].released, b.stats[i].released) << "seed " << seed;
      ASSERT_EQ(a.stats[i].completed, b.stats[i].completed) << "seed " << seed;
      ASSERT_EQ(a.stats[i].missed, b.stats[i].missed) << "seed " << seed;
      ASSERT_EQ(a.stats[i].aborted, b.stats[i].aborted) << "seed " << seed;
      ASSERT_EQ(a.stats[i].max_response, b.stats[i].max_response)
          << "seed " << seed;
    }
  }
}

TEST(DispatchEquivalence, ModeCanFlipAcrossResetsOfOneEngine) {
  // One engine alternating dispatchers across resets must agree with
  // itself: no per-mode state may leak through the reuse path.
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine engine(bootstrap);
  const Scenario s = random_scenario(7);
  const RunResult first = run_scenario(engine, s, DispatchMode::kLinearScan);
  const RunResult second = run_scenario(engine, s, DispatchMode::kReadyQueue);
  const RunResult third = run_scenario(engine, s, DispatchMode::kLinearScan);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.events, third.events);
}

}  // namespace
}  // namespace rtft::rt
