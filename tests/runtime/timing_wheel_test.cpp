// TimingWheel unit tests: the wheel is a drop-in priority queue, so it
// must agree with a reference comparison sort on any push/pop sequence —
// dense tie storms, sparse far-future jumps (multi-level cascades),
// same-instant chains pushed while draining, and reuse through clear().
#include "runtime/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace rtft::rt {
namespace {

struct TestEvent {
  std::int64_t time = 0;
  std::uint64_t seq = 0;
};

struct TestEarlier {
  bool operator()(const TestEvent& a, const TestEvent& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

struct TestTimeNs {
  std::int64_t operator()(const TestEvent& e) const { return e.time; }
};

using Wheel = TimingWheel<TestEvent, TestEarlier, TestTimeNs>;

std::vector<TestEvent> drain(Wheel& wheel) {
  std::vector<TestEvent> out;
  while (!wheel.empty()) {
    out.push_back(wheel.top());
    wheel.pop();
  }
  return out;
}

void expect_sorted_run(Wheel& wheel, std::vector<TestEvent> events) {
  for (const TestEvent& e : events) wheel.push(e);
  std::vector<TestEvent> expected = std::move(events);
  std::sort(expected.begin(), expected.end(), TestEarlier{});
  const std::vector<TestEvent> got = drain(wheel);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, expected[i].time) << "at position " << i;
    EXPECT_EQ(got[i].seq, expected[i].seq) << "at position " << i;
  }
}

TEST(TimingWheel, StartsEmpty) {
  Wheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheel, SingleEventRoundTrips) {
  Wheel wheel;
  wheel.push(TestEvent{12345, 1});
  EXPECT_FALSE(wheel.empty());
  EXPECT_EQ(wheel.top().time, 12345);
  wheel.pop();
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, OrdersAcrossAllLevels) {
  // One event per decade from 1ns to ~1000s: every cascade path fires.
  Wheel wheel;
  std::vector<TestEvent> events;
  std::uint64_t seq = 0;
  for (std::int64_t t = 1; t <= 1'000'000'000'000; t *= 10) {
    events.push_back(TestEvent{t, seq++});
  }
  std::mt19937_64 rng(7);
  std::shuffle(events.begin(), events.end(), rng);
  expect_sorted_run(wheel, events);
}

TEST(TimingWheel, TieStormWithinOneTickKeepsSeqOrder) {
  // Hundreds of events inside one tick (and at the exact same instant):
  // the near heap must fall back to the full comparator.
  Wheel wheel;
  std::vector<TestEvent> events;
  for (std::uint64_t s = 0; s < 300; ++s) {
    events.push_back(TestEvent{1'000'000 + static_cast<std::int64_t>(s % 3),
                               299 - s});
  }
  expect_sorted_run(wheel, events);
}

TEST(TimingWheel, RandomizedAgainstReferenceSort) {
  std::mt19937_64 rng(2026);
  for (int round = 0; round < 20; ++round) {
    Wheel wheel;  // fresh wheel per round; reuse is covered below
    std::vector<TestEvent> events;
    const std::size_t n = 1 + rng() % 400;
    for (std::uint64_t s = 0; s < n; ++s) {
      // Mix of scales: same-tick ties, level-0 spacing, far outliers.
      std::int64_t t = 0;
      switch (rng() % 4) {
        case 0: t = static_cast<std::int64_t>(rng() % 1'000); break;
        case 1: t = static_cast<std::int64_t>(rng() % 1'000'000); break;
        case 2: t = static_cast<std::int64_t>(rng() % 1'000'000'000); break;
        default:
          t = static_cast<std::int64_t>(rng() % 4'000'000'000'000);
      }
      events.push_back(TestEvent{t, s});
    }
    expect_sorted_run(wheel, events);
  }
}

TEST(TimingWheel, InterleavedPushesAtAndAfterTheCursor) {
  // The engine's pattern: every pop triggers pushes at `now + delta`,
  // including delta == 0 (stop effects with zero latency).
  Wheel wheel;
  std::mt19937_64 rng(99);
  std::vector<TestEvent> reference;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) {
    const TestEvent e{static_cast<std::int64_t>(rng() % 10'000'000), seq++};
    wheel.push(e);
    reference.push_back(e);
  }
  std::vector<TestEvent> got;
  while (!wheel.empty()) {
    const TestEvent e = wheel.top();
    wheel.pop();
    got.push_back(e);
    if (seq < 4096 && rng() % 2 == 0) {
      const std::int64_t delta =
          static_cast<std::int64_t>(rng() % 3) == 0
              ? 0
              : static_cast<std::int64_t>(rng() % 5'000'000);
      const TestEvent follow{e.time + delta, seq++};
      wheel.push(follow);
      reference.push_back(follow);
    }
  }
  std::sort(reference.begin(), reference.end(), TestEarlier{});
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, reference[i].seq) << "at position " << i;
  }
}

TEST(TimingWheel, PushBeforeLastPopStillComesOutNext) {
  // A push dated before the most recent pop (run_until peeked ahead,
  // then the caller armed a new timer in the gap) must pop immediately,
  // exactly as a binary heap would behave.
  Wheel wheel;
  wheel.push(TestEvent{1'000'000'000, 1});
  EXPECT_EQ(wheel.top().seq, 1u);  // cursor advances to the far event
  wheel.push(TestEvent{5'000, 2});
  wheel.push(TestEvent{900, 3});
  EXPECT_EQ(wheel.top().seq, 3u);
  wheel.pop();
  EXPECT_EQ(wheel.top().seq, 2u);
  wheel.pop();
  EXPECT_EQ(wheel.top().seq, 1u);
  wheel.pop();
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, ClearResetsAndKeepsWorking) {
  Wheel wheel;
  std::mt19937_64 rng(5);
  for (int round = 0; round < 8; ++round) {
    std::vector<TestEvent> events;
    for (std::uint64_t s = 0; s < 200; ++s) {
      events.push_back(
          TestEvent{static_cast<std::int64_t>(rng() % 100'000'000'000), s});
    }
    // Partially drain, then clear mid-flight: the next round must not
    // see any residue (cursor position, slot lists, near heap).
    for (const TestEvent& e : events) wheel.push(e);
    for (int k = 0; k < 50; ++k) wheel.pop();
    wheel.clear();
    EXPECT_TRUE(wheel.empty());
    expect_sorted_run(wheel, events);
  }
}

TEST(TimingWheel, CustomShiftsAgree) {
  // The shift is a pure performance knob: any value yields the same
  // order. Run the identical sequence at extreme shifts.
  std::mt19937_64 rng(11);
  std::vector<TestEvent> events;
  for (std::uint64_t s = 0; s < 500; ++s) {
    events.push_back(
        TestEvent{static_cast<std::int64_t>(rng() % 10'000'000'000), s});
  }
  for (const int shift : {0, 4, 16, 28, 32}) {
    Wheel wheel(shift);
    std::vector<TestEvent> copy = events;
    expect_sorted_run(wheel, std::move(copy));
  }
}

}  // namespace
}  // namespace rtft::rt
