#include "runtime/quantize.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;

TEST(Quantizer, NoneIsIdentity) {
  const Quantizer q{10_ms, Rounding::kNone};
  EXPECT_EQ(q.apply(29_ms), 29_ms);
  EXPECT_EQ(q.apply(Duration::zero()), Duration::zero());
}

TEST(Quantizer, PaperDetectorOffsets) {
  // §6.2: WCRTs 29/58/87 ms observably became 30/60/90 ms.
  const Quantizer q = jrate_quantizer();
  EXPECT_EQ(q.apply(29_ms), 30_ms);
  EXPECT_EQ(q.apply(58_ms), 60_ms);
  EXPECT_EQ(q.apply(87_ms), 90_ms);
}

TEST(Quantizer, NearestTiesRoundUp) {
  const Quantizer q{10_ms, Rounding::kNearest};
  EXPECT_EQ(q.apply(65_ms), 70_ms);
  EXPECT_EQ(q.apply(64_ms), 60_ms);
  EXPECT_EQ(q.apply(62_ms), 60_ms);  // Figure 7's threshold 62 -> 60
  EXPECT_EQ(q.apply(91_ms), 90_ms);
  EXPECT_EQ(q.apply(120_ms), 120_ms);  // exact multiples unchanged
}

TEST(Quantizer, UpNeverEarly) {
  const Quantizer q{10_ms, Rounding::kUp};
  EXPECT_EQ(q.apply(61_ms), 70_ms);
  EXPECT_EQ(q.apply(60_ms), 60_ms);
  EXPECT_EQ(q.apply(1_ns), 10_ms);
}

TEST(Quantizer, DownNeverLate) {
  const Quantizer q{10_ms, Rounding::kDown};
  EXPECT_EQ(q.apply(69_ms), 60_ms);
  EXPECT_EQ(q.apply(60_ms), 60_ms);
  EXPECT_EQ(q.apply(9_ms), Duration::zero());
}

TEST(Quantizer, NegativeClampsToZero) {
  const Quantizer q{10_ms, Rounding::kNearest};
  EXPECT_EQ(q.apply(Duration::ms(-5)), Duration::zero());
}

TEST(Quantizer, InvalidResolutionThrows) {
  const Quantizer q{Duration::zero(), Rounding::kNearest};
  EXPECT_THROW((void)q.apply(1_ms), ContractViolation);
}

TEST(Quantizer, FineResolution) {
  const Quantizer q{1_ms, Rounding::kNearest};
  EXPECT_EQ(q.apply(29_ms), 29_ms);
  EXPECT_EQ(q.apply(Duration::us(29'400)), 29_ms);
  EXPECT_EQ(q.apply(Duration::us(29'500)), 30_ms);
}

}  // namespace
}  // namespace rtft::rt
