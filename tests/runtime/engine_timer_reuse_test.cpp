// Timer behaviour under engine reuse: a reset() engine must reproduce a
// fresh engine's timer traces exactly — one-shot, periodic and cancelled
// timers, in both event-queue modes (the timing wheel keeps timer events
// in pooled slot lists and the cursor survives nothing across clear()).
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "runtime/engine.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;

using FlatEvent =
    std::tuple<std::int64_t, int, std::uint32_t, std::int64_t, std::int64_t>;

std::vector<FlatEvent> flatten(const trace::Recorder& rec) {
  std::vector<FlatEvent> out;
  out.reserve(rec.size());
  for (const auto& e : rec.events()) {
    out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task, e.job,
                     e.detail);
  }
  return out;
}

struct TimerTrace {
  std::vector<FlatEvent> events;
  std::int64_t one_shot_fires = 0;
  std::int64_t periodic_fires = 0;
  std::int64_t cancelled_fires = 0;
};

/// Arms the reference timer scenario on `engine` and runs it: a task to
/// keep the processor busy, a one-shot timer, a fast periodic timer, and
/// a periodic timer cancelled mid-run from a one-shot handler.
TimerTrace run_timer_scenario(Engine& engine, EventQueueMode mode) {
  trace::Recorder rec;
  EngineOptions opts;
  opts.horizon = Instant::epoch() + 60_ms;
  opts.sink = &rec;
  opts.event_queue = mode;
  engine.reset(opts);
  engine.add_task(sched::TaskParams{"t0", 5, 2_ms, 10_ms, 10_ms, 0_ms});

  TimerTrace out;
  engine.add_one_shot_timer(Instant::epoch() + 7_ms,
                            [&out](Engine&) { ++out.one_shot_fires; });
  engine.add_periodic_timer(Instant::epoch() + 1_ms, 4_ms,
                            [&out](Engine&) { ++out.periodic_fires; });
  const TimerHandle doomed = engine.add_periodic_timer(
      Instant::epoch() + 2_ms, 5_ms,
      [&out](Engine&) { ++out.cancelled_fires; });
  engine.add_one_shot_timer(Instant::epoch() + 23_ms,
                            [doomed](Engine& e) { e.cancel_timer(doomed); });
  engine.run();
  out.events = flatten(rec);
  return out;
}

void expect_same(const TimerTrace& a, const TimerTrace& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.one_shot_fires, b.one_shot_fires);
  EXPECT_EQ(a.periodic_fires, b.periodic_fires);
  EXPECT_EQ(a.cancelled_fires, b.cancelled_fires);
}

class EngineTimerReuse : public ::testing::TestWithParam<EventQueueMode> {};

TEST_P(EngineTimerReuse, FreshAndResetEnginesAgree) {
  const EventQueueMode mode = GetParam();
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine fresh(bootstrap);
  const TimerTrace reference = run_timer_scenario(fresh, mode);
  ASSERT_EQ(reference.one_shot_fires, 1);
  // First fire at 1ms, then every 4ms until the 60ms horizon.
  ASSERT_EQ(reference.periodic_fires, 15);
  // Fires at 2, 7, 12, 17, 22ms; cancelled at 23ms.
  ASSERT_EQ(reference.cancelled_fires, 5);

  // A dirty engine — timers pending, one cancelled, mid-horizon state —
  // must come out of reset() indistinguishable from fresh.
  Engine reused(bootstrap);
  {
    trace::Recorder scratch;
    EngineOptions other;
    other.horizon = Instant::epoch() + 35_ms;
    other.sink = &scratch;
    other.event_queue = mode;
    reused.reset(other);
    reused.add_task(sched::TaskParams{"x", 2, 1_ms, 3_ms, 3_ms, 0_ms});
    const TimerHandle dead = reused.add_periodic_timer(
        Instant::epoch() + 500_us, 1_ms, [](Engine&) {});
    reused.add_one_shot_timer(Instant::epoch() + 9_ms,
                              [dead](Engine& e) { e.cancel_timer(dead); });
    reused.add_periodic_timer(Instant::epoch() + 100_us, 2_ms,
                              [](Engine&) {});
    // Stop mid-run so undispatched timer events are left in the queue.
    reused.run_until(Instant::epoch() + 20_ms);
  }
  expect_same(run_timer_scenario(reused, mode), reference);

  // And again: repeated reuse (the sweep's thousands-of-runs pattern).
  expect_same(run_timer_scenario(reused, mode), reference);
}

TEST_P(EngineTimerReuse, CancelledTimerStaysCancelledOnlyWithinItsRun) {
  // Cancelling timer k in run 1 must not affect the timer that happens
  // to get handle k in run 2 (slot reuse across reset()).
  const EventQueueMode mode = GetParam();
  EngineOptions opts;
  opts.horizon = Instant::epoch() + 10_ms;
  opts.event_queue = mode;
  Engine engine(opts);
  const TimerHandle first =
      engine.add_periodic_timer(Instant::epoch() + 1_ms, 1_ms, [](Engine&) {});
  engine.cancel_timer(first);
  engine.run();

  engine.reset(opts);
  std::int64_t fires = 0;
  const TimerHandle second = engine.add_periodic_timer(
      Instant::epoch() + 1_ms, 1_ms, [&fires](Engine&) { ++fires; });
  EXPECT_EQ(first, second);  // same slot, recycled
  engine.run();
  EXPECT_EQ(fires, 10);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, EngineTimerReuse,
                         ::testing::Values(EventQueueMode::kTimingWheel,
                                           EventQueueMode::kPooledHeap),
                         [](const auto& info) {
                           return info.param == EventQueueMode::kTimingWheel
                                      ? "TimingWheel"
                                      : "PooledHeap";
                         });

}  // namespace
}  // namespace rtft::rt
