// Engine::reset() — one engine reused across scenarios must be
// observationally identical to a fresh engine per scenario. This is the
// contract the sweep's per-worker ScenarioRunner relies on.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "runtime/engine.hpp"
#include "support/paper_systems.hpp"
#include "trace/recorder.hpp"

namespace rtft::rt {
namespace {

using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

EngineOptions traced_options(Duration horizon, trace::Sink* sink) {
  EngineOptions opts;
  opts.horizon = Instant::epoch() + horizon;
  opts.sink = sink;
  return opts;
}

std::vector<std::tuple<std::int64_t, int, std::uint32_t, std::int64_t>>
flatten(const trace::Recorder& rec) {
  std::vector<std::tuple<std::int64_t, int, std::uint32_t, std::int64_t>> out;
  for (const auto& e : rec.events()) {
    out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task, e.job);
  }
  return out;
}

void run_system(Engine& eng, const sched::TaskSet& ts) {
  for (const auto& t : ts) eng.add_task(t);
  eng.run();
}

TEST(EngineReuse, ResetReproducesAFreshEngineExactly) {
  // Fresh engine: the reference trace and stats.
  trace::Recorder fresh_rec;
  Engine fresh(traced_options(2000_ms, &fresh_rec));
  run_system(fresh, table2_system(1000_ms));

  // Reused engine: first a *different* workload (dirtying task slots,
  // event pool, stats), then reset into the reference scenario.
  trace::Recorder reused_rec;
  Engine reused(traced_options(500_ms, &reused_rec));
  run_system(reused, table1_system());
  reused_rec.clear();
  reused.reset(traced_options(2000_ms, &reused_rec));
  run_system(reused, table2_system(1000_ms));

  EXPECT_EQ(flatten(fresh_rec), flatten(reused_rec));
  ASSERT_EQ(fresh.task_count(), reused.task_count());
  for (std::size_t i = 0; i < fresh.task_count(); ++i) {
    EXPECT_EQ(fresh.stats(i).released, reused.stats(i).released);
    EXPECT_EQ(fresh.stats(i).completed, reused.stats(i).completed);
    EXPECT_EQ(fresh.stats(i).missed, reused.stats(i).missed);
    EXPECT_EQ(fresh.stats(i).max_response, reused.stats(i).max_response);
  }
}

TEST(EngineReuse, ResetPreservesFifoTieBreaksOnATieHeavyScenario) {
  // Same-priority tasks with colliding releases: dispatch order within
  // the level is decided purely by the per-job ready sequence. Any
  // dispatcher state surviving reset() — a stale ready_seq, a leftover
  // ready-queue entry — would reorder these ties or corrupt dispatch.
  const auto build = [](Engine& eng) {
    for (int i = 0; i < 6; ++i) {
      eng.add_task(sched::TaskParams{"tie" + std::to_string(i), 5, 3_ms,
                                     30_ms, 30_ms, 0_ms});
    }
  };
  trace::Recorder fresh_rec;
  Engine fresh(traced_options(300_ms, &fresh_rec));
  build(fresh);
  fresh.run();

  // Dirty the dispatcher hard before the reference scenario: advance the
  // ready-sequence counter through many job starts, then abandon the run
  // mid-way so current jobs are still queued for dispatch at reset time.
  trace::Recorder reused_rec;
  Engine reused(traced_options(700_ms, &reused_rec));
  build(reused);
  // 335 ms is mid-burst: the 330 ms releases of all six tasks are still
  // draining, so several jobs sit in the ready queue right now.
  reused.run_until(Instant::epoch() + 335_ms);
  reused_rec.clear();
  reused.reset(traced_options(300_ms, &reused_rec));
  build(reused);
  reused.run();

  EXPECT_EQ(flatten(fresh_rec), flatten(reused_rec));
}

TEST(EngineReuse, ResetClearsTasksTimersAndClock) {
  Engine eng(traced_options(100_ms, nullptr));
  eng.add_task(sched::TaskParams{"t", 5, 1_ms, 10_ms, 10_ms, 0_ms});
  int fires = 0;
  eng.add_periodic_timer(Instant::epoch() + 5_ms, 10_ms,
                         [&](Engine&) { ++fires; });
  eng.run();
  EXPECT_GT(fires, 0);
  EXPECT_EQ(eng.task_count(), 1u);
  EXPECT_EQ(eng.now(), Instant::epoch() + 100_ms);

  eng.reset(traced_options(50_ms, nullptr));
  EXPECT_EQ(eng.task_count(), 0u);
  EXPECT_EQ(eng.now(), Instant::epoch());
  // Old handles are dead: the reset engine rejects them.
  EXPECT_THROW((void)eng.stats(0), ContractViolation);
  EXPECT_THROW(eng.cancel_timer(0), ContractViolation);
  // The old timer no longer fires.
  const int fires_before = fires;
  eng.add_task(sched::TaskParams{"u", 5, 1_ms, 10_ms, 10_ms, 0_ms});
  eng.run();
  EXPECT_EQ(fires, fires_before);
  EXPECT_EQ(eng.stats(0).released, 6);  // 0, 10, ..., 50
}

TEST(EngineReuse, ReuseAcrossShrinkingAndGrowingTaskSets) {
  // Slot reuse must not leak state between scenarios of different sizes.
  Engine eng(traced_options(100_ms, nullptr));
  const auto run_n = [&](std::size_t n, Duration cost) {
    eng.reset(traced_options(100_ms, nullptr));
    std::vector<TaskHandle> handles;
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(eng.add_task(sched::TaskParams{
          "t" + std::to_string(i), 5, cost, 50_ms, 50_ms, 0_ms}));
    }
    eng.run();
    for (const TaskHandle h : handles) {
      EXPECT_EQ(eng.stats(h).released, 3);
      EXPECT_EQ(eng.stats(h).missed, 0);
      EXPECT_EQ(eng.stats(h).max_response,
                cost * static_cast<std::int64_t>(h + 1));
    }
  };
  run_n(8, 1_ms);
  run_n(2, 2_ms);   // shrink: slots 2..7 must be inert
  run_n(12, 1_ms);  // grow past the previous maximum
}

TEST(EngineReuse, SinkCanBeSwappedOnReset) {
  trace::Recorder a;
  trace::Recorder b;
  Engine eng(traced_options(20_ms, &a));
  eng.add_task(sched::TaskParams{"t", 5, 1_ms, 10_ms, 10_ms, 0_ms});
  eng.run();
  EXPECT_GT(a.size(), 0u);

  eng.reset(traced_options(20_ms, &b));
  eng.add_task(sched::TaskParams{"t", 5, 1_ms, 10_ms, 10_ms, 0_ms});
  eng.run();
  EXPECT_EQ(flatten(a), flatten(b));
  EXPECT_EQ(&eng.sink(), &b);
}

TEST(EngineReuse, DefaultSinkDiscardsButStatsSurvive) {
  Engine eng(traced_options(100_ms, nullptr));
  const TaskHandle t =
      eng.add_task(sched::TaskParams{"t", 5, 7_ms, 50_ms, 50_ms, 0_ms});
  eng.run();
  EXPECT_EQ(eng.stats(t).released, 3);
  EXPECT_EQ(eng.stats(t).completed, 2);
  EXPECT_EQ(eng.stats(t).max_response, 7_ms);
}

}  // namespace
}  // namespace rtft::rt
