// Engine-reuse soak — one pooled engine reset()-cycled through ten
// thousand heterogeneous scenarios (tests/runtime/scenario_fuzz.hpp)
// must stay observationally identical to a fresh engine built per
// scenario. Each iteration draws its event-queue mode, observation mode
// and cost representation from the seed, so the pooled engine constantly
// flips configuration across reuses — the pattern the admission
// service's worker pool and the sweep's ScenarioRunner both rely on.
//
// The comparison is as strong as the drawn observation mode allows:
// full trace equality under a Recorder, per-task counter equality under
// counting sinks, and TaskStats equality always.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "scenario_fuzz.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::rt {
namespace {

using namespace rtft::literals;
using fuzz::Scenario;

constexpr std::uint64_t kScenarios = 10'000;

enum class Observation { kRecorder, kStaticCounting, kStaticNull };

/// Per-scenario configuration, drawn from the seed independently of the
/// scenario content (splitmix so neighbouring seeds land on different
/// mixes even though random_scenario consumes the raw seed).
struct Mix {
  EventQueueMode queue;
  Observation obs;
  bool flat_costs;
  bool quantized;
};

Mix mix_for(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  Mix mix;
  mix.queue = (z & 1) != 0 ? EventQueueMode::kTimingWheel
                           : EventQueueMode::kPooledHeap;
  switch ((z >> 1) % 3) {
    case 0: mix.obs = Observation::kRecorder; break;
    case 1: mix.obs = Observation::kStaticCounting; break;
    default: mix.obs = Observation::kStaticNull; break;
  }
  mix.flat_costs = (z >> 3 & 1) != 0;
  mix.quantized = (z >> 4) % 5 == 0;  // ~20% tie-heavy quantized grids
  return mix;
}

/// Flat cost spec cycling through every non-custom CostKind (same
/// rotation as the observation-equivalence suite).
CostSpec flat_cost(const Scenario& s, std::size_t i) {
  const Duration nominal = s.tasks[i].cost;
  const std::int64_t quantum = fuzz::cost_quantum(s);
  switch (i % 3) {
    case 0:
      return CostSpec::seeded_jitter(s.cost_seeds[i],
                                     Duration::ns(nominal.count() / 2 + 1),
                                     nominal * 2, Duration::ns(quantum));
    case 1:
      return CostSpec::fixed_overrun(
          static_cast<std::int64_t>(i % 5),
          (i % 2 != 0) ? nominal / 2 : -(nominal * 2));
    default:
      return CostSpec::nominal();
  }
}

/// std::function oracle computing the identical per-job costs.
CostSpec function_cost(const Scenario& s, std::size_t i) {
  const CostSpec spec = flat_cost(s, i);
  const Duration nominal = s.tasks[i].cost;
  return CostModel([spec, nominal](std::int64_t job) {
    return spec.resolve(nominal, job);
  });
}

struct RunResult {
  std::vector<fuzz::FlatEvent> events;        ///< kRecorder only.
  std::vector<trace::TaskCounters> counters;  ///< kStaticCounting only.
  std::vector<std::int64_t> kind_totals;      ///< kStaticCounting only.
  std::vector<TaskStats> stats;
  std::int64_t fires = 0;
};

EngineOptions scenario_options(const Scenario& s, const Mix& mix,
                               trace::Recorder* rec,
                               trace::CountingSink* counting) {
  EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.event_queue = mix.queue;
  switch (mix.obs) {
    case Observation::kRecorder:
      opts.sink = rec;
      break;
    case Observation::kStaticCounting:
      opts.sink_mode = trace::SinkMode::kStaticCounting;
      opts.counting_sink = counting;
      break;
    case Observation::kStaticNull:
      opts.sink_mode = trace::SinkMode::kStaticNull;
      break;
  }
  return opts;
}

/// Applies `s` to an engine already carrying the scenario's options and
/// runs it to the horizon, collecting whatever the mix observes.
RunResult run_applied(Engine& engine, const Scenario& s, const Mix& mix,
                      trace::Recorder& rec, trace::CountingSink& counting) {
  RunResult result;
  fuzz::apply_scenario(
      engine, s,
      [&](std::size_t i) {
        return mix.flat_costs ? flat_cost(s, i) : function_cost(s, i);
      },
      result.fires);
  engine.run();
  if (mix.obs == Observation::kRecorder) {
    result.events = fuzz::flatten(rec);
  }
  if (mix.obs == Observation::kStaticCounting) {
    for (std::size_t i = 0; i < engine.task_count(); ++i) {
      result.counters.push_back(counting.counters(i));
    }
    for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
      result.kind_totals.push_back(
          counting.total(static_cast<trace::EventKind>(k)));
    }
  }
  for (std::size_t i = 0; i < engine.task_count(); ++i) {
    result.stats.push_back(engine.stats(i));
  }
  return result;
}

void expect_equivalent(const RunResult& pooled, const RunResult& fresh,
                       std::uint64_t seed) {
  ASSERT_EQ(pooled.events, fresh.events) << "trace divergence at seed "
                                         << seed;
  ASSERT_EQ(pooled.fires, fresh.fires) << "seed " << seed;
  ASSERT_EQ(pooled.kind_totals, fresh.kind_totals) << "seed " << seed;
  ASSERT_EQ(pooled.counters.size(), fresh.counters.size()) << "seed " << seed;
  for (std::size_t i = 0; i < pooled.counters.size(); ++i) {
    const trace::TaskCounters& a = pooled.counters[i];
    const trace::TaskCounters& b = fresh.counters[i];
    ASSERT_EQ(a.released, b.released) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.started, b.started) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.completed, b.completed) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.missed, b.missed) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.aborted, b.aborted) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.preemptions, b.preemptions) << "seed " << seed << " task "
                                            << i;
    ASSERT_EQ(a.stopped, b.stopped) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.max_response, b.max_response) << "seed " << seed << " task "
                                              << i;
    ASSERT_EQ(a.last_response, b.last_response) << "seed " << seed << " task "
                                                << i;
  }
  ASSERT_EQ(pooled.stats.size(), fresh.stats.size()) << "seed " << seed;
  for (std::size_t i = 0; i < pooled.stats.size(); ++i) {
    const TaskStats& a = pooled.stats[i];
    const TaskStats& b = fresh.stats[i];
    ASSERT_EQ(a.released, b.released) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.completed, b.completed) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.missed, b.missed) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.aborted, b.aborted) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.stopped, b.stopped) << "seed " << seed << " task " << i;
    ASSERT_EQ(a.max_response, b.max_response) << "seed " << seed << " task "
                                              << i;
    ASSERT_EQ(a.last_response, b.last_response) << "seed " << seed << " task "
                                                << i;
  }
}

TEST(EngineReuseSoak, TenThousandMixedScenariosMatchFreshEngines) {
  EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + 1_ms;
  Engine pooled(bootstrap);

  // Every axis must actually flip during the soak, or the mix derivation
  // silently degenerated and the "heterogeneous" claim is hollow.
  std::uint64_t wheel = 0, recorder = 0, counting_runs = 0, null_runs = 0;
  std::uint64_t flat = 0, quantized = 0;

  for (std::uint64_t seed = 1; seed <= kScenarios; ++seed) {
    const Mix mix = mix_for(seed);
    const Scenario s = fuzz::random_scenario(seed, mix.quantized);
    wheel += mix.queue == EventQueueMode::kTimingWheel ? 1 : 0;
    recorder += mix.obs == Observation::kRecorder ? 1 : 0;
    counting_runs += mix.obs == Observation::kStaticCounting ? 1 : 0;
    null_runs += mix.obs == Observation::kStaticNull ? 1 : 0;
    flat += mix.flat_costs ? 1 : 0;
    quantized += mix.quantized ? 1 : 0;

    trace::Recorder pooled_rec;
    trace::CountingSink pooled_counting;
    pooled.reset(scenario_options(s, mix, &pooled_rec, &pooled_counting));
    const RunResult reused =
        run_applied(pooled, s, mix, pooled_rec, pooled_counting);

    trace::Recorder fresh_rec;
    trace::CountingSink fresh_counting;
    Engine fresh(scenario_options(s, mix, &fresh_rec, &fresh_counting));
    const RunResult reference =
        run_applied(fresh, s, mix, fresh_rec, fresh_counting);

    expect_equivalent(reused, reference, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }

  EXPECT_GT(wheel, 0u);
  EXPECT_LT(wheel, kScenarios);
  EXPECT_GT(recorder, 0u);
  EXPECT_GT(counting_runs, 0u);
  EXPECT_GT(null_runs, 0u);
  EXPECT_GT(flat, 0u);
  EXPECT_LT(flat, kScenarios);
  EXPECT_GT(quantized, 0u);
  EXPECT_LT(quantized, kScenarios);
}

}  // namespace
}  // namespace rtft::rt
