// Sink equivalence — the proof that observation was decoupled without
// perturbing execution:
//
//   * the same scenario run under a full Recorder and under a
//     CountingSink yields identical engine TaskStats, and the counting
//     sink's event-derived counters agree with both;
//   * sweeps reproduce one fingerprint whatever the observation mode
//     (counting vs full traces), across the static/virtual sink
//     dispatch and flat/function cost-spec axes, and whether verdicts
//     are kept.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/engine.hpp"
#include "sweep/generators.hpp"
#include "sweep/sweep.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::sweep {
namespace {

using namespace rtft::literals;

SweepOptions small_options() {
  SweepOptions opts;
  opts.scenario_count = 60;
  opts.workers = 3;
  opts.base_seed = 77;
  opts.grid.task_counts = {3, 5};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  return opts;
}

std::vector<rt::TaskStats> run_under(const sched::TaskSet& ts,
                                     trace::Sink* sink) {
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  opts.sink = sink;
  rt::Engine eng(opts);
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : ts) handles.push_back(eng.add_task(t));
  eng.run();
  std::vector<rt::TaskStats> stats;
  for (const rt::TaskHandle h : handles) stats.push_back(eng.stats(h));
  return stats;
}

TEST(SinkEquivalence, SameScenarioSameTaskStatsUnderEverySink) {
  RandomTaskSetSpec spec;
  spec.tasks = 6;
  spec.total_utilization = 0.95;  // overloaded draws: misses + preemptions
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sched::TaskSet ts = make_seeded_task_set(seed, spec);

    trace::Recorder recorder;
    trace::CountingSink counting;
    const auto with_recorder = run_under(ts, &recorder);
    const auto with_counting = run_under(ts, &counting);
    const auto with_nothing = run_under(ts, nullptr);

    ASSERT_EQ(with_recorder.size(), with_counting.size());
    for (std::size_t i = 0; i < with_recorder.size(); ++i) {
      const rt::TaskStats& a = with_recorder[i];
      const rt::TaskStats& b = with_counting[i];
      const rt::TaskStats& c = with_nothing[i];
      EXPECT_EQ(a.released, b.released) << "seed " << seed << " task " << i;
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.missed, b.missed);
      EXPECT_EQ(a.aborted, b.aborted);
      EXPECT_EQ(a.stopped, b.stopped);
      EXPECT_EQ(a.max_response, b.max_response);
      EXPECT_EQ(a.last_response, b.last_response);
      EXPECT_EQ(a.released, c.released);
      EXPECT_EQ(a.missed, c.missed);
      EXPECT_EQ(a.max_response, c.max_response);

      // The counting sink's event-derived counters agree with the
      // engine's internally maintained statistics...
      const trace::TaskCounters& counters = counting.counters(i);
      EXPECT_EQ(counters.released, a.released);
      EXPECT_EQ(counters.completed, a.completed);
      EXPECT_EQ(counters.missed, a.missed);
      EXPECT_EQ(counters.aborted, a.aborted);
      EXPECT_EQ(counters.stopped, a.stopped);
      EXPECT_EQ(counters.max_response, a.max_response);
      EXPECT_EQ(counters.last_response, a.last_response);

      // ...and with counts derived from the full trace.
      EXPECT_EQ(static_cast<std::size_t>(counters.completed),
                [&] {
                  std::size_t n = 0;
                  for (const auto& e : recorder.events()) {
                    if (e.kind == trace::EventKind::kJobEnd &&
                        e.task == static_cast<std::uint32_t>(i)) {
                      ++n;
                    }
                  }
                  return n;
                }());
    }
    EXPECT_EQ(static_cast<std::size_t>(
                  counting.total(trace::EventKind::kJobRelease)),
              recorder.count_of_kind(trace::EventKind::kJobRelease));
  }
}

TEST(SinkEquivalence, FullTracesReproduceTheCountingFingerprint) {
  SweepOptions opts = small_options();
  const SweepReport counting = run_sweep(opts);
  opts.full_traces = true;
  const SweepReport full = run_sweep(opts);
  EXPECT_EQ(counting.fingerprint, full.fingerprint);
  EXPECT_EQ(counting.totals.engine_clean, full.totals.engine_clean);
  EXPECT_EQ(counting.totals.detector_clean, full.totals.detector_clean);
}

TEST(SinkEquivalence, EveryDispatchCombinationReproducesTheFingerprint) {
  // The devirtualized hot path (static sink + flat cost specs) and the
  // retained oracles (virtual sink, std::function costs) are four
  // selectable combinations; all must fold to one fingerprint.
  SweepOptions opts = small_options();
  opts.sink_dispatch = SinkDispatch::kStatic;
  opts.cost_spec = CostSpecMode::kFlat;
  const SweepReport baseline = run_sweep(opts);
  for (const SinkDispatch sd : {SinkDispatch::kStatic,
                                SinkDispatch::kVirtual}) {
    for (const CostSpecMode cs : {CostSpecMode::kFlat,
                                  CostSpecMode::kFunction}) {
      opts.sink_dispatch = sd;
      opts.cost_spec = cs;
      const SweepReport r = run_sweep(opts);
      EXPECT_EQ(r.fingerprint, baseline.fingerprint)
          << "sink " << static_cast<int>(sd) << " cost "
          << static_cast<int>(cs);
      EXPECT_EQ(r.totals.engine_clean, baseline.totals.engine_clean);
      EXPECT_EQ(r.totals.detector_clean, baseline.totals.detector_clean);
    }
  }
}

TEST(SinkEquivalence, DroppingVerdictsReproducesTheFingerprint) {
  SweepOptions opts = small_options();
  const SweepReport kept = run_sweep(opts);
  opts.keep_verdicts = false;
  const SweepReport dropped = run_sweep(opts);
  EXPECT_EQ(kept.fingerprint, dropped.fingerprint);
  EXPECT_TRUE(dropped.verdicts.empty());
  EXPECT_FALSE(kept.verdicts.empty());
}

TEST(SinkEquivalence, ReusedRunnerMatchesOneShotRunScenario) {
  // One ScenarioRunner across many scenarios (the worker-pool usage)
  // must produce the same verdicts as a fresh runner per scenario.
  const SweepOptions opts = small_options();
  ScenarioRunner reused(opts);
  for (std::uint64_t i = 0; i < 24; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    const ScenarioVerdict a = reused.run(spec);
    const ScenarioVerdict b = run_scenario(spec, opts);
    EXPECT_EQ(a.rta_schedulable, b.rta_schedulable) << "scenario " << i;
    EXPECT_EQ(a.engine_clean, b.engine_clean);
    EXPECT_EQ(a.nominal_misses, b.nominal_misses);
    EXPECT_EQ(a.allowance_feasible, b.allowance_feasible);
    EXPECT_EQ(a.allowance, b.allowance);
    EXPECT_EQ(a.allowance_honored, b.allowance_honored);
    EXPECT_EQ(a.detector_clean, b.detector_clean);
    EXPECT_EQ(a.detector_faults, b.detector_faults);
  }
}

}  // namespace
}  // namespace rtft::sweep
