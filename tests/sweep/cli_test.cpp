#include "sweep/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/treatment.hpp"
#include "sweep/sweep.hpp"

namespace rtft::sweep::cli {
namespace {

/// Runs `f` and returns the ArgError message it must throw.
template <typename F>
std::string arg_error_of(F&& f) {
  try {
    std::forward<F>(f)();
  } catch (const ArgError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ArgError";
  return {};
}

// ---------------------------------------------------------------------------
// Scalar parsing.
// ---------------------------------------------------------------------------

TEST(ParseU64, AcceptsTheWholeRequestedRange) {
  EXPECT_EQ(parse_u64("--x", "0", 0, 10), 0u);
  EXPECT_EQ(parse_u64("--x", "10", 0, 10), 10u);
  EXPECT_EQ(parse_u64("--x", "9223372036854775807", 0,
                      9223372036854775807ULL),
            9223372036854775807ULL);
}

TEST(ParseU64, RejectsGarbageOverflowAndOutOfRange) {
  // Each rejection names the flag and echoes the offending value.
  // (Surrounding whitespace is trimmed by parse_int64, so " 1" is fine;
  // everything below is genuinely malformed or out of range.)
  for (const char* bad :
       {"", "x", "12x", "1.5", "-1", "+1", "99999999999999999999"}) {
    const std::string msg =
        arg_error_of([&] { (void)parse_u64("--scenarios", bad, 0, 100); });
    EXPECT_NE(msg.find("--scenarios"), std::string::npos) << msg;
    EXPECT_NE(msg.find(bad), std::string::npos) << msg;
  }
  EXPECT_THROW((void)parse_u64("--x", "11", 0, 10), ArgError);
  EXPECT_THROW((void)parse_u64("--x", "0", 1, 10), ArgError);
}

TEST(ParsePositiveDouble, RejectsNonFiniteAndNonPositive) {
  EXPECT_DOUBLE_EQ(parse_positive_double("--util", "0.85"), 0.85);
  for (const char* bad : {"", "x", "0", "-0.5", "nan", "inf"}) {
    EXPECT_THROW((void)parse_positive_double("--util", bad), ArgError)
        << bad;
  }
}

// ---------------------------------------------------------------------------
// --shard I/N.
// ---------------------------------------------------------------------------

TEST(ParseShardRequest, AcceptsValidRequests) {
  const ShardRequest r = parse_shard_request("2/8");
  EXPECT_EQ(r.index, 2u);
  EXPECT_EQ(r.count, 8u);
  EXPECT_EQ(parse_shard_request("0/1").count, 1u);
}

TEST(ParseShardRequest, RejectsEachDefectWithItsOwnMessage) {
  // Non-numeric / malformed / overflowing text.
  for (const char* bad :
       {"", "3", "a/b", "1/2/3", "-1/3", "1/-3", "1.5/3",
        "99999999999999999999/3", "1/99999999999999999999"}) {
    const std::string msg =
        arg_error_of([&] { (void)parse_shard_request(bad); });
    EXPECT_NE(msg.find("--shard"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unsigned decimal"), std::string::npos) << msg;
  }
  // N == 0 and I >= N are distinct, actionable complaints.
  EXPECT_NE(arg_error_of([] { (void)parse_shard_request("0/0"); })
                .find("N must be >= 1"),
            std::string::npos);
  for (const char* bad : {"3/3", "4/3"}) {
    EXPECT_NE(arg_error_of([&] { (void)parse_shard_request(bad); })
                  .find("below the count"),
              std::string::npos)
        << bad;
  }
}

// ---------------------------------------------------------------------------
// Flag application and its inverse, worker_argv.
// ---------------------------------------------------------------------------

/// Applies argv pairs (skipping a leading binary path) the way the CLIs
/// do; returns the flags apply_sweep_flag did not claim.
std::vector<std::string> reparse(const std::vector<std::string>& argv,
                                 SweepOptions& opts) {
  std::vector<std::string> unclaimed;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const auto value = [&]() -> std::string {
      EXPECT_LT(i + 1, argv.size()) << argv[i] << " missing its value";
      return argv[++i];
    };
    if (!apply_sweep_flag(argv[i], value, opts)) {
      unclaimed.push_back(argv[i]);
      // --shard and --emit-shard carry values; skip them too.
      if (argv[i] == "--shard" || argv[i] == "--emit-shard") ++i;
    }
  }
  return unclaimed;
}

TEST(ApplySweepFlag, ClaimsOnlySweepFlagsAndRejectsBadValues) {
  SweepOptions opts;
  EXPECT_FALSE(apply_sweep_flag(
      "--merge", [] { return std::string(); }, opts));
  EXPECT_FALSE(apply_sweep_flag(
      "--not-a-flag", [] { return std::string(); }, opts));
  EXPECT_TRUE(apply_sweep_flag(
      "--scenarios", [] { return std::string("64"); }, opts));
  EXPECT_EQ(opts.scenario_count, 64u);
  EXPECT_THROW(apply_sweep_flag(
                   "--scenarios", [] { return std::string("0"); }, opts),
               ArgError);
  EXPECT_THROW(apply_sweep_flag(
                   "--workers", [] { return std::string("5000"); }, opts),
               ArgError);  // kMaxWorkers cap.
  EXPECT_THROW(apply_sweep_flag(
                   "--tasks", [] { return std::string("3,0,5"); }, opts),
               ArgError);  // zero-task entry inside a list.
  EXPECT_THROW(apply_sweep_flag(
                   "--policy", [] { return std::string("nonsense"); }, opts),
               ArgError);
  EXPECT_THROW(apply_sweep_flag(
                   "--event-queue", [] { return std::string("ring"); }, opts),
               ArgError);
}

TEST(ApplySweepFlag, ParsesSinkModeAndCostSpecStrictly) {
  SweepOptions opts;
  EXPECT_TRUE(apply_sweep_flag(
      "--sink-mode", [] { return std::string("virtual"); }, opts));
  EXPECT_EQ(opts.sink_dispatch, SinkDispatch::kVirtual);
  EXPECT_TRUE(apply_sweep_flag(
      "--sink-mode", [] { return std::string("static"); }, opts));
  EXPECT_EQ(opts.sink_dispatch, SinkDispatch::kStatic);
  EXPECT_TRUE(apply_sweep_flag(
      "--cost-spec", [] { return std::string("function"); }, opts));
  EXPECT_EQ(opts.cost_spec, CostSpecMode::kFunction);
  EXPECT_TRUE(apply_sweep_flag(
      "--cost-spec", [] { return std::string("flat"); }, opts));
  EXPECT_EQ(opts.cost_spec, CostSpecMode::kFlat);

  // Rejections name the flag, echo the value and say what is accepted.
  for (const char* bad : {"", "Static", "null", "counting"}) {
    const std::string msg = arg_error_of([&] {
      apply_sweep_flag(
          "--sink-mode", [&] { return std::string(bad); }, opts);
    });
    EXPECT_NE(msg.find("--sink-mode"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'static' or 'virtual'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(got '" + std::string(bad) + "')"),
              std::string::npos)
        << msg;
  }
  for (const char* bad : {"", "Flat", "closure", "nonsense"}) {
    const std::string msg = arg_error_of([&] {
      apply_sweep_flag(
          "--cost-spec", [&] { return std::string(bad); }, opts);
    });
    EXPECT_NE(msg.find("--cost-spec"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'flat' or 'function'"), std::string::npos) << msg;
  }
  // Bad values must not have clobbered the last good settings.
  EXPECT_EQ(opts.sink_dispatch, SinkDispatch::kStatic);
  EXPECT_EQ(opts.cost_spec, CostSpecMode::kFlat);
}

TEST(ApplySweepFlag, ParsesTheMulticoreAxesStrictly) {
  SweepOptions opts;
  EXPECT_TRUE(apply_sweep_flag(
      "--cores", [] { return std::string("1,2,4"); }, opts));
  EXPECT_EQ(opts.grid.core_counts, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_TRUE(apply_sweep_flag(
      "--quantum-us", [] { return std::string("1000,250"); }, opts));
  EXPECT_EQ(opts.grid.quantizer_resolutions,
            (std::vector<Duration>{Duration::ms(1), Duration::us(250)}));
  EXPECT_TRUE(apply_sweep_flag(
      "--partitioner", [] { return std::string("fault-aware"); }, opts));
  EXPECT_EQ(opts.partitioner, PartitionerMode::kFaultAware);
  EXPECT_TRUE(apply_sweep_flag(
      "--partitioner", [] { return std::string("first-fit"); }, opts));
  EXPECT_EQ(opts.partitioner, PartitionerMode::kFirstFit);
  EXPECT_TRUE(apply_sweep_flag(
      "--partitioner", [] { return std::string("both"); }, opts));
  EXPECT_EQ(opts.partitioner, PartitionerMode::kBoth);
  EXPECT_TRUE(apply_sweep_flag(
      "--core-fault", [] { return std::string("0"); }, opts));
  EXPECT_EQ(opts.core_fault_fraction, 0.0);
  EXPECT_TRUE(apply_sweep_flag(
      "--core-fault", [] { return std::string("0.75"); }, opts));
  EXPECT_EQ(opts.core_fault_fraction, 0.75);

  EXPECT_THROW(apply_sweep_flag(
                   "--cores", [] { return std::string("0"); }, opts),
               ArgError);
  EXPECT_THROW(apply_sweep_flag(
                   "--cores", [] { return std::string("65"); }, opts),
               ArgError);
  EXPECT_THROW(apply_sweep_flag(
                   "--quantum-us", [] { return std::string("0"); }, opts),
               ArgError);
  {
    const std::string msg = arg_error_of([&] {
      apply_sweep_flag(
          "--partitioner", [] { return std::string("nonsense"); }, opts);
    });
    EXPECT_NE(msg.find("--partitioner"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'both', 'first-fit' or 'fault-aware'"),
              std::string::npos)
        << msg;
  }
  for (const char* bad : {"", "x", "-0.1", "1.5", "nan", "inf"}) {
    const std::string msg = arg_error_of([&] {
      apply_sweep_flag(
          "--core-fault", [&] { return std::string(bad); }, opts);
    });
    EXPECT_NE(msg.find("--core-fault"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 1]"), std::string::npos) << msg;
  }
  // Bad values must not have clobbered the last good settings.
  EXPECT_EQ(opts.partitioner, PartitionerMode::kBoth);
  EXPECT_EQ(opts.core_fault_fraction, 0.75);
}

TEST(WorkerArgv, RoundTripsTheMulticoreAxesBitForBit) {
  SweepOptions opts;
  opts.scenario_count = 60;
  opts.grid.task_counts = {8};
  opts.grid.utilizations = {2.0, 2.4};
  opts.grid.core_counts = {2, 4};
  opts.grid.quantizer_resolutions = {Duration::ms(1), Duration::us(250)};
  opts.partitioner = PartitionerMode::kFaultAware;
  opts.core_fault_fraction = 0.25;

  const SweepPlan plan(opts);
  const std::vector<std::string> argv = worker_argv(
      "/bin/sweep_runner", plan.options(), plan.shard(0, 2), "/tmp/s0.json");
  SweepOptions reparsed;
  (void)reparse(argv, reparsed);
  EXPECT_TRUE(detail::same_scenario_identity(plan.options(), reparsed));
  EXPECT_EQ(reparsed.grid.core_counts, opts.grid.core_counts);
  EXPECT_EQ(reparsed.grid.quantizer_resolutions,
            opts.grid.quantizer_resolutions);
  EXPECT_EQ(reparsed.partitioner, opts.partitioner);
  EXPECT_EQ(reparsed.core_fault_fraction, opts.core_fault_fraction);

  // Sub-microsecond quantizer resolutions are inexpressible in the
  // runner CLI and must be refused, not silently rounded.
  SweepOptions sub_us = opts;
  sub_us.grid.quantizer_resolutions = {Duration::ns(500)};
  EXPECT_THROW((void)worker_argv("r", sub_us, plan.shard(0, 2), "p"),
               ContractViolation);
}

TEST(WorkerArgv, RoundTripsTheScenarioIdentityBitForBit) {
  SweepOptions opts;
  opts.scenario_count = 240;
  opts.workers = 2;
  opts.base_seed = 77;
  opts.grid.task_counts = {3, 5};
  // Deliberately awkward doubles: must survive the %.17g round trip.
  opts.grid.utilizations = {0.6, 1.0 / 3.0, 0.8500000000000001};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  opts.grid.stop_poll_latencies = {Duration::us(50)};
  opts.detector_policy = core::TreatmentPolicy::kInstantStop;
  opts.event_queue = rt::EventQueueMode::kPooledHeap;
  // Non-default dispatch knobs must survive the round trip too.
  opts.sink_dispatch = SinkDispatch::kVirtual;
  opts.cost_spec = CostSpecMode::kFunction;
  opts.horizon_periods = 6;
  opts.full_traces = true;

  const SweepPlan plan(opts);
  const ShardSpec spec = plan.shard(1, 4);
  const std::vector<std::string> argv =
      worker_argv("/bin/sweep_runner", plan.options(), spec, "/tmp/s1.json");
  ASSERT_FALSE(argv.empty());
  EXPECT_EQ(argv[0], "/bin/sweep_runner");

  SweepOptions reparsed;
  const std::vector<std::string> unclaimed = reparse(argv, reparsed);
  // The worker computes the same scenario population...
  EXPECT_TRUE(detail::same_scenario_identity(plan.options(), reparsed));
  // ...with the same execution knobs...
  EXPECT_EQ(reparsed.workers, opts.workers);
  EXPECT_EQ(reparsed.event_queue, opts.event_queue);
  EXPECT_EQ(reparsed.sink_dispatch, opts.sink_dispatch);
  EXPECT_EQ(reparsed.cost_spec, opts.cost_spec);
  EXPECT_TRUE(reparsed.full_traces);
  // ...and the runner-only flags are exactly the shard/emit/progress
  // triple the coordinator relies on.
  EXPECT_EQ(unclaimed, (std::vector<std::string>{"--shard", "--emit-shard",
                                                 "--progress"}));
}

TEST(WorkerArgv, RefusesOptionsTheRunnerCliCannotExpress) {
  const SweepPlan base(SweepOptions{});
  const ShardSpec spec = base.shard(0, 2);
  {
    SweepOptions opts;
    opts.allowance_granularity = Duration::us(1);
    EXPECT_THROW((void)worker_argv("r", opts, spec, "p"), ContractViolation);
  }
  {
    SweepOptions opts;
    opts.grid.detector_costs = {Duration::ns(500)};  // sub-microsecond.
    EXPECT_THROW((void)worker_argv("r", opts, spec, "p"), ContractViolation);
  }
  {
    SweepOptions opts;
    opts.grid.deadline_max_factor = 1.2;
    EXPECT_THROW((void)worker_argv("r", opts, spec, "p"), ContractViolation);
  }
  EXPECT_THROW((void)worker_argv("", SweepOptions{}, spec, "p"),
               ContractViolation);
}

}  // namespace
}  // namespace rtft::sweep::cli
