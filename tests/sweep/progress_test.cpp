#include "sweep/progress.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep.hpp"

namespace rtft::sweep {
namespace {

// ---------------------------------------------------------------------------
// The wire format.
// ---------------------------------------------------------------------------

TEST(ProgressLine, RoundTripsThroughTheParser) {
  for (const ProgressUpdate u : {ProgressUpdate{0, 0}, ProgressUpdate{0, 10},
                                 ProgressUpdate{7, 10},
                                 ProgressUpdate{1000, 1000},
                                 ProgressUpdate{123456789, 987654321}}) {
    const std::string line = progress_line(u);
    EXPECT_EQ(line.back(), '\n');
    ProgressUpdate parsed;
    ASSERT_TRUE(parse_progress_token(line, parsed)) << line;
    EXPECT_EQ(parsed, u);
  }
}

TEST(ProgressToken, AcceptsBothMachineAndHumanForms) {
  ProgressUpdate u;
  ASSERT_TRUE(parse_progress_token("progress 5/10", u));
  EXPECT_EQ(u, (ProgressUpdate{5, 10}));
  // The human '\r' form a tty-attached worker prints.
  ASSERT_TRUE(parse_progress_token("120/120 scenarios (100%)", u));
  EXPECT_EQ(u, (ProgressUpdate{120, 120}));
  ASSERT_TRUE(parse_progress_token("  3/10 scenarios ( 30%)  ", u));
  EXPECT_EQ(u, (ProgressUpdate{3, 10}));
}

TEST(ProgressToken, RejectsNoiseAndMalformedFractions) {
  ProgressUpdate u{99, 99};
  // Arbitrary stderr noise must not parse — a worker's diagnostics
  // share the stream with the protocol.
  EXPECT_FALSE(parse_progress_token("", u));
  EXPECT_FALSE(parse_progress_token("warning: /tmp/x.json unreadable", u));
  EXPECT_FALSE(parse_progress_token("5/10", u));  // no keyword: ambiguous.
  EXPECT_FALSE(parse_progress_token("progress", u));
  EXPECT_FALSE(parse_progress_token("progress 5", u));
  EXPECT_FALSE(parse_progress_token("progress 5/10/15", u));
  EXPECT_FALSE(parse_progress_token("progress a/b", u));
  EXPECT_FALSE(parse_progress_token("progress -1/10", u));
  EXPECT_FALSE(parse_progress_token("progress 11/10", u));  // done > total.
  EXPECT_FALSE(parse_progress_token(
      "progress 99999999999999999999/99999999999999999999", u));
  // A rejected token must leave the output untouched.
  EXPECT_EQ(u, (ProgressUpdate{99, 99}));
}

TEST(ProgressParser, SplitsOnBothSeparatorsAcrossChunkBoundaries) {
  ProgressParser parser;
  std::vector<ProgressUpdate> seen;
  const auto sink = [&](const ProgressUpdate& u) { seen.push_back(u); };
  // One byte at a time: the parser must buffer partial tokens across
  // arbitrarily small reads (exactly what a pipe delivers).
  const std::string stream =
      "progress 1/4\nnoise line\rprogress 2/4\r3/4 scenarios ( 75%)\n";
  for (const char c : stream) parser.feed(std::string_view(&c, 1), sink);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (ProgressUpdate{1, 4}));
  EXPECT_EQ(seen[1], (ProgressUpdate{2, 4}));
  EXPECT_EQ(seen[2], (ProgressUpdate{3, 4}));
  // An unterminated final token is flushed by finish() (EOF).
  parser.feed("progress 4/4", sink);
  ASSERT_EQ(seen.size(), 3u);
  parser.finish(sink);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[3], (ProgressUpdate{4, 4}));
}

// ---------------------------------------------------------------------------
// The run_shard progress contract: serialized, exactly sequential.
// ---------------------------------------------------------------------------

TEST(RunShardProgress, SerializedAndExactlySequentialUnderManyWorkers) {
  SweepOptions opts;
  opts.scenario_count = 120;
  opts.workers = 8;  // plenty of overlap pressure on the callback.
  opts.base_seed = 2006;
  opts.grid.task_counts = {3};
  opts.grid.utilizations = {0.6};
  opts.keep_verdicts = false;

  std::vector<std::uint64_t> seen;  // unguarded on purpose: the
                                    // serialization contract is the lock.
  std::atomic<int> inflight{0};
  std::atomic<bool> overlapped{false};
  opts.on_progress = [&](std::uint64_t done, std::uint64_t total) {
    if (inflight.fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlapped.store(true, std::memory_order_relaxed);
    }
    EXPECT_EQ(total, 120u);
    seen.push_back(done);
    inflight.fetch_sub(1, std::memory_order_acq_rel);
  };

  const SweepPlan plan(opts);
  const ShardResult result = run_shard(plan.shard(0, 1), plan.options());
  EXPECT_EQ(result.totals.total, 120u);

  // No two invocations may overlap...
  EXPECT_FALSE(overlapped.load());
  // ...and the counts arrive exactly sequential: 1, 2, ..., total — not
  // merely monotone. (The old relaxed-atomic implementation could
  // deliver 2 before 1 under exactly this many-worker load.)
  ASSERT_EQ(seen.size(), 120u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
}

TEST(RunShardProgress, EmptyShardMakesNoCalls) {
  SweepOptions opts;
  opts.scenario_count = 3;
  opts.workers = 2;
  opts.grid.task_counts = {3};
  opts.grid.utilizations = {0.6};
  int calls = 0;
  opts.on_progress = [&](std::uint64_t, std::uint64_t) { ++calls; };
  const SweepPlan plan(opts);
  // 8-way split of 3 scenarios: shard 7 is empty.
  const ShardResult result = run_shard(plan.shard(7, 8), plan.options());
  EXPECT_EQ(result.totals.total, 0u);
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace rtft::sweep
