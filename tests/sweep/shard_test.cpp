// The partition/run/merge triad: plan partitioning, shard/merge
// equivalence with the single-process sweep (the API's core contract —
// bit-for-bit, for any shard count and any per-shard worker count),
// shard-file round-trips, and rejection of malformed or mismatched
// shard inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sweep/export.hpp"
#include "sweep/sweep.hpp"

namespace rtft::sweep {
namespace {

SweepOptions small_options() {
  SweepOptions opts;
  opts.scenario_count = 60;
  opts.workers = 3;
  opts.base_seed = 2006;
  opts.grid.task_counts = {3, 5};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  return opts;
}

void expect_same_aggregate(const SweepAggregate& a, const SweepAggregate& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.rta_schedulable, b.rta_schedulable);
  EXPECT_EQ(a.engine_clean, b.engine_clean);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.allowance_feasible, b.allowance_feasible);
  EXPECT_EQ(a.allowance_honored, b.allowance_honored);
  EXPECT_EQ(a.detector_clean, b.detector_clean);
  EXPECT_EQ(a.allowance_sum, b.allowance_sum);
  EXPECT_EQ(a.multicore, b.multicore);
  EXPECT_EQ(a.ff_placed, b.ff_placed);
  EXPECT_EQ(a.fa_placed, b.fa_placed);
  EXPECT_EQ(a.ff_failover_clean, b.ff_failover_clean);
  EXPECT_EQ(a.fa_failover_clean, b.fa_failover_clean);
}

void expect_same_verdict(const ScenarioVerdict& a, const ScenarioVerdict& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.task_count, b.task_count);
  EXPECT_EQ(a.target_utilization, b.target_utilization);
  EXPECT_EQ(a.actual_utilization, b.actual_utilization);
  EXPECT_EQ(a.detector_cost, b.detector_cost);
  EXPECT_EQ(a.stop_poll_latency, b.stop_poll_latency);
  EXPECT_EQ(a.rta_schedulable, b.rta_schedulable);
  EXPECT_EQ(a.engine_clean, b.engine_clean);
  EXPECT_EQ(a.nominal_misses, b.nominal_misses);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.allowance_feasible, b.allowance_feasible);
  EXPECT_EQ(a.allowance, b.allowance);
  EXPECT_EQ(a.allowance_honored, b.allowance_honored);
  EXPECT_EQ(a.detector_clean, b.detector_clean);
  EXPECT_EQ(a.detector_faults, b.detector_faults);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.quantum, b.quantum);
  EXPECT_EQ(a.ff_placement_feasible, b.ff_placement_feasible);
  EXPECT_EQ(a.fa_placement_feasible, b.fa_placement_feasible);
  EXPECT_EQ(a.ff_failover_clean, b.ff_failover_clean);
  EXPECT_EQ(a.fa_failover_clean, b.fa_failover_clean);
  EXPECT_EQ(a.ff_missed_tasks, b.ff_missed_tasks);
  EXPECT_EQ(a.fa_missed_tasks, b.fa_missed_tasks);
  EXPECT_EQ(a.ff_lost_jobs, b.ff_lost_jobs);
  EXPECT_EQ(a.fa_lost_jobs, b.fa_lost_jobs);
}

void expect_same_report(const SweepReport& a, const SweepReport& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  expect_same_aggregate(a.totals, b.totals);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    expect_same_aggregate(a.cells[c].agg, b.cells[c].agg);
    EXPECT_EQ(a.cells[c].task_count, b.cells[c].task_count);
    EXPECT_EQ(a.cells[c].utilization, b.cells[c].utilization);
    EXPECT_EQ(a.cells[c].detector_cost, b.cells[c].detector_cost);
    EXPECT_EQ(a.cells[c].stop_poll_latency, b.cells[c].stop_poll_latency);
    EXPECT_EQ(a.cells[c].cores, b.cells[c].cores);
    EXPECT_EQ(a.cells[c].quantum, b.cells[c].quantum);
  }
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    expect_same_verdict(a.verdicts[i], b.verdicts[i]);
  }
}

std::vector<ShardResult> run_split(const SweepPlan& plan, std::uint64_t n) {
  std::vector<ShardResult> shards;
  shards.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    shards.push_back(run_shard(plan.shard(i, n), plan.options()));
  }
  return shards;
}

// ---------------------------------------------------------------------------
// Plan partitioning.
// ---------------------------------------------------------------------------

TEST(SweepPlan, ShardsTileTheIndexSpaceContiguously) {
  const SweepPlan plan(small_options());
  const std::uint64_t count = plan.scenario_count();
  for (const std::uint64_t n : {1u, 2u, 3u, 7u, 59u, 60u, 61u, 200u}) {
    std::uint64_t expected_begin = 0;
    std::uint64_t smallest = count;
    std::uint64_t largest = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const ShardSpec s = plan.shard(i, n);
      EXPECT_EQ(s.index, i);
      EXPECT_EQ(s.shards, n);
      EXPECT_EQ(s.begin, expected_begin) << "n=" << n << " i=" << i;
      EXPECT_LE(s.begin, s.end);
      expected_begin = s.end;
      smallest = std::min(smallest, s.count());
      largest = std::max(largest, s.count());
    }
    EXPECT_EQ(expected_begin, count) << "n=" << n;
    // Balanced to within one scenario.
    EXPECT_LE(largest - smallest, 1u) << "n=" << n;
  }
}

TEST(SweepPlan, SingleShardCoversEverything) {
  const SweepPlan plan(small_options());
  const ShardSpec whole = plan.shard(0, 1);
  EXPECT_EQ(whole.begin, 0u);
  EXPECT_EQ(whole.end, plan.scenario_count());
}

TEST(SweepPlan, RejectsBadShardRequestsAndBadOptions) {
  const SweepPlan plan(small_options());
  EXPECT_THROW((void)plan.shard(0, 0), ContractViolation);
  EXPECT_THROW((void)plan.shard(3, 3), ContractViolation);
  SweepOptions bad = small_options();
  bad.grid.task_counts = {0};
  EXPECT_THROW(SweepPlan{bad}, ContractViolation);
  bad = small_options();
  bad.scenario_count = 0;
  EXPECT_THROW(SweepPlan{bad}, ContractViolation);
}

TEST(SweepPlan, ResolvesZeroWorkersToHardwareConcurrency) {
  SweepOptions opts = small_options();
  opts.workers = 0;
  const SweepPlan plan(opts);
  EXPECT_GT(plan.options().workers, 0u);
}

// ---------------------------------------------------------------------------
// Running one shard.
// ---------------------------------------------------------------------------

TEST(RunShard, ProducesTheCorrespondingSliceOfTheFullSweep) {
  const SweepOptions opts = small_options();
  const SweepReport full = run_sweep(opts);
  const SweepPlan plan(opts);
  const ShardResult s = run_shard(plan.shard(1, 3), plan.options());
  ASSERT_EQ(s.verdicts.size(), s.shard.count());
  for (std::size_t i = 0; i < s.verdicts.size(); ++i) {
    expect_same_verdict(
        s.verdicts[i],
        full.verdicts[static_cast<std::size_t>(s.shard.begin) + i]);
  }
  // The shard's standalone fingerprint is reproducible...
  const ShardResult again = run_shard(plan.shard(1, 3), plan.options());
  EXPECT_EQ(s.fingerprint, again.fingerprint);
  // ...and a full-range shard's equals the sweep fingerprint.
  const ShardResult whole = run_shard(plan.shard(0, 1), plan.options());
  EXPECT_EQ(whole.fingerprint, full.fingerprint);
}

TEST(RunShard, EmptyShardsAreLegalAndEmpty) {
  SweepOptions opts = small_options();
  opts.scenario_count = 3;
  const SweepPlan plan(opts);
  const ShardSpec tail = plan.shard(4, 5);  // 3 scenarios over 5 shards
  EXPECT_EQ(tail.count(), 0u);
  const ShardResult r = run_shard(tail, plan.options());
  EXPECT_EQ(r.totals.total, 0u);
  EXPECT_TRUE(r.verdicts.empty());
  EXPECT_EQ(r.fingerprint, Fingerprint{}.value());  // empty fold
}

TEST(RunShard, RejectsRangesOutsideTheSweep) {
  const SweepOptions opts = small_options();
  ShardSpec bad;
  bad.begin = 10;
  bad.end = opts.scenario_count + 1;
  EXPECT_THROW((void)run_shard(bad, opts), ContractViolation);
  bad.begin = 20;
  bad.end = 10;
  EXPECT_THROW((void)run_shard(bad, opts), ContractViolation);
}

// ---------------------------------------------------------------------------
// Merge equivalence: the API's core contract.
// ---------------------------------------------------------------------------

TEST(ShardMerge, ReproducesTheSingleProcessReportBitForBit) {
  const SweepOptions opts = small_options();
  const SweepReport single = run_sweep(opts);
  for (const std::uint64_t n : {1u, 2u, 3u, 5u}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
      SweepOptions per_shard = opts;
      per_shard.workers = workers;
      const SweepPlan plan(per_shard);
      std::vector<ShardResult> shards = run_split(plan, n);
      // Arrival order must not matter.
      std::reverse(shards.begin(), shards.end());
      const SweepReport merged = merge(shards);
      expect_same_report(merged, single);
    }
  }
}

TEST(ShardMerge, MixedWorkerCountsAndQueueModesMerge) {
  // Shards produced under different worker counts and different engine
  // event-queue implementations are still the same sweep — verdicts are
  // pure functions of (options identity, index).
  const SweepOptions opts = small_options();
  const SweepReport single = run_sweep(opts);
  SweepOptions wheel = opts;
  wheel.workers = 1;
  wheel.event_queue = rt::EventQueueMode::kTimingWheel;
  SweepOptions heap = opts;
  heap.workers = 2;
  heap.event_queue = rt::EventQueueMode::kPooledHeap;
  const SweepPlan plan(opts);
  std::vector<ShardResult> shards;
  shards.push_back(run_shard(plan.shard(0, 2), wheel));
  shards.push_back(run_shard(plan.shard(1, 2), heap));
  expect_same_report(merge(shards), single);
}

TEST(ShardMerge, DroppedVerdictsKeepAggregatesAndFingerprint) {
  SweepOptions opts = small_options();
  const SweepReport single = run_sweep(opts);
  opts.keep_verdicts = false;
  const SweepPlan plan(opts);
  const SweepReport merged = merge(run_split(plan, 3));
  EXPECT_TRUE(merged.verdicts.empty());
  EXPECT_EQ(merged.fingerprint, single.fingerprint);
  expect_same_aggregate(merged.totals, single.totals);
}

TEST(ShardMerge, EmptyShardsTyingWithNonEmptyOnesMergeInAnyOrder) {
  // An empty shard [b, b) tiles trivially but ties on begin with a
  // non-empty [b, e); the merge must order it first whatever the input
  // order, not depend on an unstable sort's whim.
  SweepOptions opts = small_options();
  opts.scenario_count = 4;
  const SweepReport single = run_sweep(opts);
  ShardSpec first;
  first.index = 0;
  first.shards = 3;
  first.begin = 0;
  first.end = 2;
  ShardSpec hollow = first;
  hollow.index = 1;
  hollow.begin = 2;
  hollow.end = 2;
  ShardSpec last = first;
  last.index = 2;
  last.begin = 2;
  last.end = 4;
  for (int order = 0; order < 2; ++order) {
    std::vector<ShardResult> shards;
    shards.push_back(run_shard(order == 0 ? hollow : last, opts));
    shards.push_back(run_shard(order == 0 ? last : hollow, opts));
    shards.push_back(run_shard(first, opts));
    expect_same_report(merge(shards), single);
  }
}

TEST(ShardMerge, RejectsGapsOverlapsDuplicatesAndForeignShards) {
  const SweepOptions opts = small_options();
  const SweepPlan plan(opts);
  const std::vector<ShardResult> shards = run_split(plan, 3);

  EXPECT_THROW((void)merge(std::span<const ShardResult>{}), ShardError);

  std::vector<ShardResult> gap = {shards[0], shards[2]};
  EXPECT_THROW((void)merge(gap), ShardError);

  std::vector<ShardResult> duplicate = {shards[0], shards[0], shards[1],
                                        shards[2]};
  EXPECT_THROW((void)merge(duplicate), ShardError);

  std::vector<ShardResult> incomplete = {shards[0], shards[1]};
  EXPECT_THROW((void)merge(incomplete), ShardError);

  SweepOptions foreign_opts = opts;
  foreign_opts.base_seed = opts.base_seed + 1;
  const SweepPlan foreign_plan(foreign_opts);
  std::vector<ShardResult> foreign = {
      shards[0], shards[1],
      run_shard(foreign_plan.shard(2, 3), foreign_plan.options())};
  EXPECT_THROW((void)merge(foreign), ShardError);
}

// ---------------------------------------------------------------------------
// Incremental merging: ShardMerger folds shards as they arrive and must
// reproduce the batch merge() bit-for-bit, whatever the arrival order.
// ---------------------------------------------------------------------------

SweepOptions multicore_options() {
  SweepOptions opts = small_options();
  opts.grid.core_counts = {1, 2};
  opts.grid.quantizer_resolutions = {Duration::ms(1), Duration::us(500)};
  return opts;
}

TEST(ShardMergerTest, SixShardMixFoldsToTheBatchMergeBitForBit) {
  // Six shards with mixed worker counts over a grid exercising the
  // multicore and quantizer axes, folded incrementally in order and in
  // reverse (so every shard but the first waits in the pending buffer):
  // same fingerprint, aggregates and verdicts as the batch merge.
  const SweepOptions opts = multicore_options();
  const SweepReport single = run_sweep(opts);
  const SweepPlan plan(opts);
  std::vector<ShardResult> shards;
  for (std::uint64_t i = 0; i < 6; ++i) {
    SweepOptions per_shard = opts;
    per_shard.workers = 1 + i % 3;
    shards.push_back(run_shard(plan.shard(i, 6), per_shard));
  }
  expect_same_report(merge(shards), single);

  ShardMerger in_order;
  for (const ShardResult& s : shards) {
    in_order.add(ShardResult(s));
    EXPECT_EQ(in_order.pending_shards(), 0u);
  }
  EXPECT_EQ(in_order.accepted_scenarios(), opts.scenario_count);
  expect_same_report(in_order.finish(), single);

  ShardMerger reversed;
  for (std::size_t i = shards.size(); i-- > 1;) {
    reversed.add(ShardResult(shards[i]));
  }
  EXPECT_EQ(reversed.pending_shards(), shards.size() - 1);
  reversed.add(ShardResult(shards[0]));  // closes the gap, drains all.
  EXPECT_EQ(reversed.pending_shards(), 0u);
  expect_same_report(reversed.finish(), single);
}

TEST(ShardMergerTest, EmptyShardsFoldInAnyOrder) {
  // A partition wider than the scenario count yields empty [b, b)
  // shards; they must fold as no-ops without wedging the frontier,
  // whether they arrive before or after their non-empty peers.
  SweepOptions opts = small_options();
  opts.scenario_count = 4;
  const SweepReport single = run_sweep(opts);
  const SweepPlan plan(opts);
  const std::vector<ShardResult> shards = run_split(plan, 6);
  for (int order = 0; order < 2; ++order) {
    ShardMerger merger;
    if (order == 0) {
      for (const ShardResult& s : shards) merger.add(ShardResult(s));
    } else {  // all empties first, then the non-empty shards reversed.
      for (const ShardResult& s : shards) {
        if (s.shard.count() == 0) merger.add(ShardResult(s));
      }
      for (std::size_t i = shards.size(); i-- > 0;) {
        if (shards[i].shard.count() != 0) {
          merger.add(ShardResult(shards[i]));
        }
      }
    }
    expect_same_report(merger.finish(), single);
  }
}

TEST(ShardMergerTest, RejectsForeignShardsAndIncompleteCoverage) {
  const SweepOptions opts = small_options();
  const SweepPlan plan(opts);
  const std::vector<ShardResult> shards = run_split(plan, 3);

  ShardMerger empty;
  EXPECT_THROW((void)empty.finish(), ShardError);

  ShardMerger gappy;  // missing the middle shard: coverage fails late.
  gappy.add(ShardResult(shards[0]));
  gappy.add(ShardResult(shards[2]));
  EXPECT_THROW((void)gappy.finish(), ShardError);

  // A shard of a different sweep is rejected on add() and must not
  // poison the merger: the matching shards still merge afterwards.
  SweepOptions foreign_opts = opts;
  foreign_opts.base_seed = opts.base_seed + 1;
  const SweepPlan foreign_plan(foreign_opts);
  ShardMerger merger;
  merger.add(ShardResult(shards[0]));
  EXPECT_THROW(
      merger.add(run_shard(foreign_plan.shard(1, 3), foreign_opts)),
      ShardError);
  merger.add(ShardResult(shards[1]));
  merger.add(ShardResult(shards[2]));
  expect_same_report(merger.finish(), run_sweep(opts));
}

// ---------------------------------------------------------------------------
// Serialization: shards cross process/host boundaries as versioned JSON.
// ---------------------------------------------------------------------------

TEST(ShardJson, RoundTripsThroughSerializeAndLoad) {
  const SweepOptions opts = small_options();
  const SweepPlan plan(opts);
  const ShardResult original = run_shard(plan.shard(1, 3), plan.options());
  const ShardResult loaded = load_shard_json(shard_json(original));
  EXPECT_EQ(loaded.shard.index, original.shard.index);
  EXPECT_EQ(loaded.shard.shards, original.shard.shards);
  EXPECT_EQ(loaded.shard.begin, original.shard.begin);
  EXPECT_EQ(loaded.shard.end, original.shard.end);
  EXPECT_EQ(loaded.fingerprint, original.fingerprint);
  EXPECT_EQ(loaded.elapsed_seconds, original.elapsed_seconds);
  expect_same_aggregate(loaded.totals, original.totals);
  ASSERT_EQ(loaded.verdicts.size(), original.verdicts.size());
  for (std::size_t i = 0; i < loaded.verdicts.size(); ++i) {
    expect_same_verdict(loaded.verdicts[i], original.verdicts[i]);
  }
  // A second generation of serialize -> load is a fixed point.
  EXPECT_EQ(shard_json(loaded), shard_json(original));
}

TEST(ShardJson, LoadedShardsMergeToTheSingleProcessReport) {
  const SweepOptions opts = small_options();
  const SweepReport single = run_sweep(opts);
  const SweepPlan plan(opts);
  std::vector<ShardResult> loaded;
  for (const ShardResult& s : run_split(plan, 4)) {
    loaded.push_back(load_shard_json(shard_json(s)));
  }
  expect_same_report(merge(loaded), single);
}

TEST(ShardJson, RejectsMalformedDocuments) {
  const SweepOptions opts = small_options();
  const SweepPlan plan(opts);
  const std::string good =
      shard_json(run_shard(plan.shard(0, 2), plan.options()));

  EXPECT_THROW((void)load_shard_json(""), ShardError);
  EXPECT_THROW((void)load_shard_json("not json at all"), ShardError);
  EXPECT_THROW((void)load_shard_json("{\"format\": \"rtft-shard\""),
               ShardError);  // truncated
  EXPECT_THROW((void)load_shard_json(good.substr(0, good.size() / 2)),
               ShardError);  // cut mid-document
  EXPECT_THROW((void)load_shard_json("[1,2,3]"), ShardError);  // not an object
  EXPECT_THROW((void)load_shard_json("{}"), ShardError);  // missing fields

  std::string wrong_format = good;
  const std::size_t fpos = wrong_format.find("rtft-shard");
  ASSERT_NE(fpos, std::string::npos);
  wrong_format.replace(fpos, 10, "some-other");
  EXPECT_THROW((void)load_shard_json(wrong_format), ShardError);

  std::string wrong_version = good;
  const std::string version_field =
      "\"version\": " + std::to_string(kShardFormatVersion);
  const std::size_t vpos = wrong_version.find(version_field);
  ASSERT_NE(vpos, std::string::npos);
  wrong_version.replace(
      vpos, version_field.size(),
      "\"version\": " + std::to_string(kShardFormatVersion + 1));
  EXPECT_THROW((void)load_shard_json(wrong_version), ShardError);
}

TEST(ShardJson, RejectsTamperedVerdictsAndFingerprints) {
  const SweepOptions opts = small_options();
  const SweepPlan plan(opts);
  const std::string good =
      shard_json(run_shard(plan.shard(0, 2), plan.options()));

  // Flip one verdict bit: the declared aggregates no longer match.
  std::string tampered = good;
  const std::size_t epos = tampered.find("\"engine_clean\":true");
  ASSERT_NE(epos, std::string::npos);
  tampered.replace(epos, 19, "\"engine_clean\":false");
  EXPECT_THROW((void)load_shard_json(tampered), ShardError);

  // target_utilization is the one verdict field outside both the
  // fingerprint and the aggregates; the loader re-derives it from the
  // grid instead. Replace the first value token (its %.17g rendering is
  // not a friendly literal) with an exact-but-wrong 0.125.
  std::string bad_target = good;
  const std::string key = "\"target_utilization\":";
  const std::size_t tpos = bad_target.find(key);
  ASSERT_NE(tpos, std::string::npos);
  const std::size_t vstart = tpos + key.size();
  const std::size_t vend = bad_target.find(',', vstart);
  ASSERT_NE(vend, std::string::npos);
  bad_target.replace(vstart, vend - vstart, "0.125");
  EXPECT_THROW((void)load_shard_json(bad_target), ShardError);

  // Corrupt the declared fingerprint: the recomputation catches it.
  std::string bad_fp = good;
  const std::size_t fpos = bad_fp.find("\"fingerprint\": \"");
  ASSERT_NE(fpos, std::string::npos);
  const std::size_t digit = fpos + 16;
  bad_fp[digit] = bad_fp[digit] == '0' ? '1' : '0';
  EXPECT_THROW((void)load_shard_json(bad_fp), ShardError);
}

TEST(ShardJson, RejectsMergingShardsOfDifferentGrids) {
  SweepOptions a = small_options();
  SweepOptions b = small_options();
  b.grid.utilizations = {0.5, 0.8};
  const SweepPlan plan_a(a);
  const SweepPlan plan_b(b);
  std::vector<ShardResult> mixed;
  mixed.push_back(
      load_shard_json(shard_json(run_shard(plan_a.shard(0, 2), a))));
  mixed.push_back(
      load_shard_json(shard_json(run_shard(plan_b.shard(1, 2), b))));
  EXPECT_THROW((void)merge(mixed), ShardError);
}

}  // namespace
}  // namespace rtft::sweep
