#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>

#include "sched/feasibility.hpp"
#include "sweep/generators.hpp"

namespace rtft::sweep {
namespace {

SweepOptions small_options() {
  SweepOptions opts;
  opts.scenario_count = 120;
  opts.workers = 4;
  opts.base_seed = 2006;
  opts.grid.task_counts = {3, 5};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  return opts;
}

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

TEST(Generators, SeededSetIsReproducible) {
  RandomTaskSetSpec spec;
  spec.tasks = 6;
  spec.total_utilization = 0.7;
  const sched::TaskSet a = make_seeded_task_set(99, spec);
  const sched::TaskSet b = make_seeded_task_set(99, spec);
  ASSERT_EQ(a.size(), b.size());
  for (sched::TaskId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cost, b[i].cost);
    EXPECT_EQ(a[i].period, b[i].period);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].priority, b[i].priority);
  }
  // Costs are rounded to whole nanoseconds (floored at 1us), so the
  // realized utilization only approximates the target.
  EXPECT_NEAR(a.utilization(), 0.7, 1e-4);
}

TEST(Generators, DifferentSeedsDiffer) {
  RandomTaskSetSpec spec;
  const sched::TaskSet a = make_seeded_task_set(1, spec);
  const sched::TaskSet b = make_seeded_task_set(2, spec);
  bool any_difference = false;
  for (sched::TaskId i = 0; i < a.size(); ++i) {
    any_difference |= a[i].period != b[i].period || a[i].cost != b[i].cost;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generators, ScenarioSeedMixesBothInputs) {
  EXPECT_NE(scenario_seed(1, 0), scenario_seed(2, 0));
  EXPECT_NE(scenario_seed(1, 0), scenario_seed(1, 1));
  // Stable across runs/platforms: pin one value as a regression anchor —
  // changing the mixing constants silently re-seeds every sweep.
  EXPECT_EQ(scenario_seed(42, 0), 0xbdd732262feb6e95ULL);
}

// ---------------------------------------------------------------------------
// Grid -> spec mapping.
// ---------------------------------------------------------------------------

TEST(SweepGrid, SpecsCoverCellsRoundRobin) {
  const SweepOptions opts = small_options();
  const std::size_t cells = opts.grid.cell_count();
  ASSERT_EQ(cells, 8u);
  std::vector<std::uint64_t> per_cell(cells, 0);
  for (std::uint64_t i = 0; i < opts.scenario_count; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    ASSERT_LT(spec.cell, cells);
    ++per_cell[spec.cell];
  }
  for (const std::uint64_t n : per_cell)
    EXPECT_EQ(n, opts.scenario_count / cells);
}

TEST(SweepGrid, SpecIsPureFunctionOfIndex) {
  const SweepOptions opts = small_options();
  const ScenarioSpec a = scenario_spec(opts, 17);
  const ScenarioSpec b = scenario_spec(opts, 17);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.tasks.tasks, b.tasks.tasks);
  EXPECT_EQ(a.tasks.total_utilization, b.tasks.total_utilization);
  EXPECT_EQ(a.detector_cost, b.detector_cost);
}

// ---------------------------------------------------------------------------
// Determinism: identical options reproduce identical aggregates and
// fingerprints across runs and across worker counts.
// ---------------------------------------------------------------------------

void expect_same_aggregate(const SweepAggregate& a, const SweepAggregate& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.rta_schedulable, b.rta_schedulable);
  EXPECT_EQ(a.engine_clean, b.engine_clean);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.allowance_feasible, b.allowance_feasible);
  EXPECT_EQ(a.allowance_honored, b.allowance_honored);
  EXPECT_EQ(a.detector_clean, b.detector_clean);
  EXPECT_EQ(a.allowance_sum, b.allowance_sum);
}

TEST(Sweep, DeterministicAcrossRuns) {
  const SweepOptions opts = small_options();
  const SweepReport a = run_sweep(opts);
  const SweepReport b = run_sweep(opts);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  expect_same_aggregate(a.totals, b.totals);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].seed, b.verdicts[i].seed);
    EXPECT_EQ(a.verdicts[i].rta_schedulable, b.verdicts[i].rta_schedulable);
    EXPECT_EQ(a.verdicts[i].nominal_misses, b.verdicts[i].nominal_misses);
    EXPECT_EQ(a.verdicts[i].allowance, b.verdicts[i].allowance);
  }
}

TEST(Sweep, WorkerCountIndependence) {
  SweepOptions opts = small_options();
  opts.workers = 1;
  const SweepReport serial = run_sweep(opts);
  opts.workers = 7;
  const SweepReport parallel = run_sweep(opts);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  expect_same_aggregate(serial.totals, parallel.totals);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c)
    expect_same_aggregate(serial.cells[c].agg, parallel.cells[c].agg);
}

TEST(Sweep, EventQueueModesProduceIdenticalFingerprints) {
  // The timing wheel and the pooled-heap oracle must agree verdict for
  // verdict — the sweep is the engine-equivalence test at population
  // scale. Exercise a stopping policy too, so stop effects and the
  // faulty detector run cross the queue as well.
  SweepOptions opts = small_options();
  opts.scenario_count = 60;
  opts.detector_policy = core::TreatmentPolicy::kInstantStop;
  opts.grid.stop_poll_latencies = {Duration::zero(), Duration::ms(5)};
  opts.event_queue = rt::EventQueueMode::kTimingWheel;
  const SweepReport wheel = run_sweep(opts);
  opts.event_queue = rt::EventQueueMode::kPooledHeap;
  const SweepReport heap = run_sweep(opts);
  EXPECT_EQ(wheel.fingerprint, heap.fingerprint);
  expect_same_aggregate(wheel.totals, heap.totals);
  ASSERT_EQ(wheel.verdicts.size(), heap.verdicts.size());
  for (std::size_t i = 0; i < wheel.verdicts.size(); ++i) {
    EXPECT_EQ(wheel.verdicts[i].nominal_misses,
              heap.verdicts[i].nominal_misses);
    EXPECT_EQ(wheel.verdicts[i].detector_faults,
              heap.verdicts[i].detector_faults);
    EXPECT_EQ(wheel.verdicts[i].allowance, heap.verdicts[i].allowance);
  }
}

TEST(SweepGrid, DefaultStopLatencyAxisKeepsHistoricalMapping) {
  // A single zero-latency axis must not perturb the cell mapping or the
  // fingerprint: pre-axis sweeps stay bit-for-bit reproducible.
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  const SweepReport implicit = run_sweep(opts);
  ASSERT_EQ(opts.grid.stop_poll_latencies,
            std::vector<Duration>{Duration::zero()});
  opts.grid.stop_poll_latencies = {Duration::zero()};  // explicit default
  const SweepReport explicit_zero = run_sweep(opts);
  EXPECT_EQ(implicit.fingerprint, explicit_zero.fingerprint);
  for (std::uint64_t i = 0; i < opts.scenario_count; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    EXPECT_EQ(spec.stop_poll_latency, Duration::zero());
  }
}

TEST(SweepGrid, StopLatencyAxisRoundRobinsFastest) {
  SweepOptions opts = small_options();
  opts.grid.stop_poll_latencies = {Duration::zero(), Duration::us(500),
                                   Duration::ms(2)};
  ASSERT_EQ(opts.grid.cell_count(), 24u);
  for (std::uint64_t i = 0; i < 48; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    EXPECT_EQ(spec.stop_poll_latency,
              opts.grid.stop_poll_latencies[static_cast<std::size_t>(i % 3)]);
    // The slower axes decompose as before, just scaled by the new one.
    EXPECT_EQ(spec.detector_cost,
              opts.grid.detector_costs[static_cast<std::size_t>((i / 3) % 2)]);
  }
}

TEST(SweepGrid, DefaultMulticoreAxesKeepHistoricalMapping) {
  // Single-value default core/quantum axes (and the default partitioner
  // and fault fraction) must not perturb the cell mapping or the
  // fingerprint: pre-multicore sweeps stay bit-for-bit reproducible.
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  const SweepReport implicit = run_sweep(opts);
  ASSERT_EQ(opts.grid.core_counts, std::vector<std::size_t>{1});
  ASSERT_EQ(opts.grid.quantizer_resolutions,
            std::vector<Duration>{Duration::ms(1)});
  opts.grid.core_counts = {1};                        // explicit defaults
  opts.grid.quantizer_resolutions = {Duration::ms(1)};
  opts.partitioner = PartitionerMode::kBoth;
  opts.core_fault_fraction = 0.5;
  const SweepReport explicit_defaults = run_sweep(opts);
  EXPECT_EQ(implicit.fingerprint, explicit_defaults.fingerprint);
  for (std::uint64_t i = 0; i < opts.scenario_count; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    EXPECT_EQ(spec.cores, 1u);
    EXPECT_EQ(spec.quantum, Duration::ms(1));
  }
}

TEST(SweepGrid, QuantumAxisRoundRobinsFastestThenCores) {
  SweepOptions opts = small_options();
  opts.grid.quantizer_resolutions = {Duration::ms(1), Duration::us(500)};
  opts.grid.core_counts = {1, 2};
  ASSERT_EQ(opts.grid.cell_count(), 32u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    EXPECT_EQ(spec.quantum,
              opts.grid.quantizer_resolutions[static_cast<std::size_t>(i % 2)]);
    EXPECT_EQ(spec.cores,
              opts.grid.core_counts[static_cast<std::size_t>((i / 2) % 2)]);
    // The slower axes decompose as before, just scaled by the new ones.
    EXPECT_EQ(spec.detector_cost,
              opts.grid.detector_costs[static_cast<std::size_t>((i / 4) % 2)]);
  }
}

TEST(Sweep, QuantizerResolutionChangesTheFingerprint) {
  // A non-default resolution arms nearest-rounding on the release
  // quantizer: the verdicts must move, so the axis can never silently
  // go inert.
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  const SweepReport exact = run_sweep(opts);
  opts.grid.quantizer_resolutions = {Duration::us(250)};
  const SweepReport coarse = run_sweep(opts);
  EXPECT_NE(exact.fingerprint, coarse.fingerprint);
}

TEST(Sweep, FaultAwarePlacementsSurviveTheSweptCoreFault) {
  // The multicore stage's paired evidence, asserted at sweep level:
  // fault-aware admission is sound (a placement it accepts never misses
  // across the injected fault), and it buys something first-fit does
  // not (some scenario where first-fit's fail-over misses while
  // fault-aware's is clean).
  SweepOptions opts;
  opts.scenario_count = 60;
  opts.workers = 4;
  opts.base_seed = 42;
  opts.grid.task_counts = {8};
  opts.grid.utilizations = {2.0, 2.4};
  opts.grid.detector_costs = {Duration::zero()};
  opts.grid.core_counts = {4};
  const SweepReport report = run_sweep(opts);
  ASSERT_EQ(report.verdicts.size(), opts.scenario_count);
  bool contrast_seen = false;
  std::uint64_t multicore_rows = 0;
  for (const ScenarioVerdict& v : report.verdicts) {
    ASSERT_EQ(v.cores, 4u);
    ++multicore_rows;
    if (v.fa_placement_feasible) {
      EXPECT_TRUE(v.fa_failover_clean) << "scenario " << v.index;
      EXPECT_EQ(v.fa_missed_tasks, 0) << "scenario " << v.index;
    }
    contrast_seen = contrast_seen ||
                    (v.ff_placement_feasible && v.fa_placement_feasible &&
                     !v.ff_failover_clean && v.fa_failover_clean);
  }
  EXPECT_EQ(report.totals.multicore, multicore_rows);
  EXPECT_EQ(report.totals.fa_placed, report.totals.fa_failover_clean);
  EXPECT_TRUE(contrast_seen);
}

TEST(Sweep, StopLatencyChangesOutcomesUnderAStoppingPolicy) {
  // Under instant-stop the detector run injects a top-priority hog whose
  // stop lands only after the poll latency: a long poll must be visible
  // in the verdicts (more lower-priority detector fires while the hog
  // spins). Carried by the fingerprint either way, but assert the raw
  // signal so the axis can never silently go inert again.
  SweepOptions opts = small_options();
  opts.scenario_count = 30;
  opts.grid.task_counts = {5};
  opts.grid.utilizations = {0.9};
  opts.grid.detector_costs = {Duration::zero()};
  opts.detector_policy = core::TreatmentPolicy::kInstantStop;
  opts.grid.stop_poll_latencies = {Duration::zero()};
  const SweepReport fast = run_sweep(opts);
  opts.grid.stop_poll_latencies = {Duration::ms(500)};
  const SweepReport slow = run_sweep(opts);
  std::int64_t fast_faults = 0;
  std::int64_t slow_faults = 0;
  for (const ScenarioVerdict& v : fast.verdicts) {
    fast_faults += v.detector_faults;
  }
  for (const ScenarioVerdict& v : slow.verdicts) {
    slow_faults += v.detector_faults;
  }
  EXPECT_GT(slow_faults, fast_faults);
  EXPECT_NE(fast.fingerprint, slow.fingerprint);
}

TEST(Sweep, DifferentSeedsProduceDifferentFingerprints) {
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  const SweepReport a = run_sweep(opts);
  opts.base_seed = opts.base_seed + 1;
  const SweepReport b = run_sweep(opts);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Sweep, BadOptionsThrowBeforeAnyWorkerStarts) {
  SweepOptions opts = small_options();
  opts.grid.task_counts = {3, 0};  // e.g. a trailing comma in a CLI list
  EXPECT_THROW((void)run_sweep(opts), ContractViolation);
  opts = small_options();
  opts.grid.task_counts = {29};  // beyond the 28-slot RTSJ priority range
  EXPECT_THROW((void)run_sweep(opts), ContractViolation);
  opts = small_options();
  opts.grid.utilizations = {-0.5};
  EXPECT_THROW((void)run_sweep(opts), ContractViolation);
  opts = small_options();
  opts.scenario_count = 0;
  EXPECT_THROW((void)run_sweep(opts), ContractViolation);
}

TEST(Sweep, ProgressHookSeesEveryScenarioAndNeverMovesTheFingerprint) {
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  const SweepReport plain = run_sweep(opts);
  // The hook runs concurrently on worker threads: collect with atomics,
  // assert afterwards.
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> final_done{0};
  std::atomic<bool> total_consistent{true};
  opts.on_progress = [&](std::uint64_t done, std::uint64_t total) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (total != 40) total_consistent.store(false);
    if (done == total) final_done.store(done);
  };
  const SweepReport observed = run_sweep(opts);
  EXPECT_EQ(calls.load(), 40u);  // one call per scenario
  EXPECT_TRUE(total_consistent.load());
  EXPECT_EQ(final_done.load(), 40u);  // the final call reports completion
  EXPECT_EQ(observed.fingerprint, plain.fingerprint);
}

TEST(Sweep, ProgressHookOnAShardReportsShardLocalTotals) {
  SweepOptions opts = small_options();
  opts.scenario_count = 40;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<bool> total_consistent{true};
  opts.on_progress = [&](std::uint64_t, std::uint64_t total) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (total != 20) total_consistent.store(false);
  };
  const SweepPlan plan(opts);
  (void)run_shard(plan.shard(0, 2), plan.options());
  EXPECT_EQ(calls.load(), 20u);
  EXPECT_TRUE(total_consistent.load());
}

TEST(Sweep, VerdictsCanBeDropped) {
  SweepOptions opts = small_options();
  opts.scenario_count = 16;
  opts.keep_verdicts = false;
  const SweepReport report = run_sweep(opts);
  EXPECT_TRUE(report.verdicts.empty());
  EXPECT_EQ(report.totals.total, 16u);
  opts.keep_verdicts = true;
  EXPECT_EQ(report.fingerprint, run_sweep(opts).fingerprint);
}

// ---------------------------------------------------------------------------
// Cross-checks: the analyses and the engine must not contradict each
// other on any swept scenario.
// ---------------------------------------------------------------------------

TEST(SweepCrossCheck, RtaSchedulableScenariosMeetAllDeadlinesInEngine) {
  SweepOptions opts = small_options();
  opts.scenario_count = 200;
  // Stress the boundary: high utilization produces a mix of schedulable
  // and unschedulable sets.
  opts.grid.utilizations = {0.7, 0.85, 0.97};
  const SweepReport report = run_sweep(opts);
  for (const ScenarioVerdict& v : report.verdicts) {
    if (v.rta_schedulable) {
      EXPECT_TRUE(v.engine_clean)
          << "scenario " << v.index << " (seed " << v.seed
          << "): RTA says schedulable but the engine missed "
          << v.nominal_misses << " deadline(s)";
    }
    EXPECT_TRUE(v.agreement);
  }
  EXPECT_EQ(report.totals.agreement_violations, 0u);
  // The sweep must actually exercise both sides of the boundary.
  EXPECT_GT(report.totals.rta_schedulable, 0u);
  EXPECT_LT(report.totals.rta_schedulable, report.totals.total);
}

TEST(SweepCrossCheck, EquitableAllowanceIsHonoredByTheEngine) {
  SweepOptions opts = small_options();
  opts.scenario_count = 150;
  const SweepReport report = run_sweep(opts);
  for (const ScenarioVerdict& v : report.verdicts) {
    if (v.allowance_feasible) {
      EXPECT_TRUE(v.allowance_honored)
          << "scenario " << v.index << " (seed " << v.seed
          << "): overrun of the equitable allowance "
          << to_string(v.allowance) << " caused a deadline miss";
      EXPECT_FALSE(v.allowance.is_negative());
    }
  }
  EXPECT_GT(report.totals.allowance_feasible, 0u);
}

TEST(SweepCrossCheck, RtaVerdictMatchesDirectAnalysis) {
  const SweepOptions opts = small_options();
  for (std::uint64_t i = 0; i < 32; ++i) {
    const ScenarioSpec spec = scenario_spec(opts, i);
    const sched::TaskSet ts = make_seeded_task_set(spec.seed, spec.tasks);
    const ScenarioVerdict v = run_scenario(spec, opts);
    EXPECT_EQ(v.rta_schedulable, sched::is_feasible(ts));
    EXPECT_EQ(v.task_count, ts.size());
    EXPECT_NEAR(v.actual_utilization, ts.utilization(), 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

TEST(SweepReport, TableListsEveryCellAndTotals) {
  SweepOptions opts = small_options();
  opts.scenario_count = 32;
  const SweepReport report = run_sweep(opts);
  const std::string table = report.table();
  EXPECT_NE(table.find("tasks"), std::string::npos);
  EXPECT_NE(table.find("total 32"), std::string::npos);
  // Header + one row per cell + totals line.
  const std::size_t lines = std::count(table.begin(), table.end(), '\n');
  EXPECT_EQ(lines, 1 + report.cells.size() + 1);
}

}  // namespace
}  // namespace rtft::sweep
