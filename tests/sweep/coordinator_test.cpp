#include "sweep/coordinator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "sweep/cli.hpp"
#include "sweep/export.hpp"
#include "sweep/sweep.hpp"

namespace rtft::sweep {
namespace {

SweepOptions small_options() {
  SweepOptions opts;
  opts.scenario_count = 60;
  opts.workers = 2;
  opts.base_seed = 2006;
  opts.grid.task_counts = {3};
  opts.grid.utilizations = {0.6, 0.9};
  return opts;
}

/// Fresh per-test scratch directory under the system temp root.
std::filesystem::path scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rtft_coordinator_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

void write_text(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

/// How one scripted worker attempt behaves.
enum class Behavior {
  kComplete,  ///< write a valid shard file, report progress, exit 0.
  kCrash,     ///< die by signal without writing anything.
  kCorrupt,   ///< exit 0 but leave a truncated shard file behind.
  kStall,     ///< never produce output until kill_worker arrives.
};

/// Deterministic in-process ExecTransport. Workers "run" synchronously
/// at spawn time (a kComplete attempt really computes its shard through
/// run_shard, via the same worker_argv -> apply_sweep_flag round trip
/// the real runner performs), behaviors are scripted per (shard index,
/// attempt), and the clock only moves when the coordinator polls — so
/// straggler timing is exact, not wall-clock dependent.
class FakeTransport final : public ExecTransport {
 public:
  /// script[shard_index][attempt] (0-based); missing entries complete.
  std::map<std::uint64_t, std::vector<Behavior>> script;
  std::uint64_t spawned = 0;

  std::uint64_t spawn(const std::vector<std::string>& argv) override {
    ++spawned;
    const std::uint64_t id = next_id_++;

    // Re-parse the argv exactly as sweep_runner would.
    SweepOptions opts;
    cli::ShardRequest request;
    std::string emit_path;
    bool progress_flag = false;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      const auto value = [&]() -> std::string {
        EXPECT_LT(i + 1, argv.size());
        return argv[++i];
      };
      if (cli::apply_sweep_flag(argv[i], value, opts)) continue;
      if (argv[i] == "--shard") {
        request = cli::parse_shard_request(value());
      } else if (argv[i] == "--emit-shard") {
        emit_path = value();
      } else if (argv[i] == "--progress") {
        progress_flag = true;
      } else {
        ADD_FAILURE() << "unexpected worker flag " << argv[i];
      }
    }
    EXPECT_TRUE(progress_flag);
    EXPECT_FALSE(emit_path.empty());

    switch (behavior_for(request.index)) {
      case Behavior::kComplete: {
        const SweepPlan plan(opts);
        ShardResult result =
            run_shard(plan.shard(request.index, request.count),
                      plan.options());
        write_file(emit_path, shard_json(result));
        push_progress(id, result.shard.count(), result.shard.count());
        push_exit(id, 0);
        break;
      }
      case Behavior::kCrash:
        push_progress(id, 1, 99);  // died mid-shard, some progress seen.
        push_exit(id, -9);
        break;
      case Behavior::kCorrupt: {
        write_file(emit_path, "{\"format\": \"rtft-shard\", \"version\":");
        push_exit(id, 0);
        break;
      }
      case Behavior::kStall:
        stalled_.insert(id);
        break;
    }
    return id;
  }

  std::optional<WorkerEvent> poll(Duration timeout) override {
    if (!ready_.empty()) {
      now_ += Duration::ms(1);
      const WorkerEvent ev = ready_.front();
      ready_.pop_front();
      return ev;
    }
    now_ += timeout;  // idle poll: only stalled workers remain.
    return std::nullopt;
  }

  void kill_worker(std::uint64_t worker) override {
    if (stalled_.erase(worker) > 0) push_exit(worker, -9);
  }

  Duration now() override { return now_; }

 private:
  Behavior behavior_for(std::uint64_t shard_index) {
    const std::size_t attempt = attempts_[shard_index]++;
    const auto it = script.find(shard_index);
    if (it == script.end() || attempt >= it->second.size()) {
      return Behavior::kComplete;
    }
    return it->second[attempt];
  }

  static void write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
  }

  void push_progress(std::uint64_t id, std::uint64_t done,
                     std::uint64_t total) {
    WorkerEvent ev;
    ev.kind = WorkerEvent::Kind::kProgress;
    ev.worker = id;
    ev.progress = {done, total};
    ready_.push_back(ev);
  }

  void push_exit(std::uint64_t id, int code) {
    WorkerEvent ev;
    ev.kind = WorkerEvent::Kind::kExit;
    ev.worker = id;
    ev.exit_code = code;
    ready_.push_back(ev);
  }

  std::deque<WorkerEvent> ready_;
  std::set<std::uint64_t> stalled_;
  std::map<std::uint64_t, std::size_t> attempts_;
  std::uint64_t next_id_ = 1;
  Duration now_;
};

CoordinatorOptions test_copts(const std::filesystem::path& dir) {
  CoordinatorOptions copts;
  copts.runner = "fake-runner";
  copts.output_dir = dir.string();
  copts.shards = 6;
  copts.max_procs = 3;
  copts.retry_budget = 2;
  copts.min_straggler_timeout = Duration::ms(50);
  copts.poll_interval = Duration::ms(20);
  return copts;
}

TEST(Coordinator, HappyPathReproducesTheSingleProcessFingerprint) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("happy");
  FakeTransport transport;
  Coordinator coordinator(opts, test_copts(dir), transport);
  const CoordinatorResult result = coordinator.run();

  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.report.totals.total, 60u);
  EXPECT_EQ(result.stats.shards, 6u);
  EXPECT_EQ(result.stats.launched, 6u);
  EXPECT_EQ(result.stats.resumed, 0u);
  EXPECT_EQ(result.stats.reissued, 0u);
  EXPECT_EQ(result.stats.invalid_files, 0u);
  // Six checkpoint files remain for a potential resume.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                          std::filesystem::directory_iterator()),
            6);
}

TEST(Coordinator, CrashedWorkerIsReissuedAndTheSweepConverges) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("crash");
  FakeTransport transport;
  transport.script[2] = {Behavior::kCrash};  // attempt 2 completes.
  Coordinator coordinator(opts, test_copts(dir), transport);
  const CoordinatorResult result = coordinator.run();

  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.stats.launched, 7u);
  EXPECT_EQ(result.stats.reissued, 1u);
}

TEST(Coordinator, CorruptShardFileIsDetectedRemovedAndReissued) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("corrupt");
  FakeTransport transport;
  // Exit 0 with a truncated file: success claims mean nothing, only a
  // loadable file does.
  transport.script[1] = {Behavior::kCorrupt};
  std::vector<std::string> log;
  CoordinatorOptions copts = test_copts(dir);
  copts.on_log = [&](const std::string& line) { log.push_back(line); };
  Coordinator coordinator(opts, std::move(copts), transport);
  const CoordinatorResult result = coordinator.run();

  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.stats.reissued, 1u);
  EXPECT_EQ(result.stats.invalid_files, 1u);
  bool named = false;
  for (const std::string& line : log) {
    if (line.find("invalid shard file") != std::string::npos &&
        line.find("shard-1.json") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "the log must name the offending file";
}

TEST(Coordinator, StalledWorkerIsKilledAsStragglerAndReissued) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("stall");
  FakeTransport transport;
  transport.script[0] = {Behavior::kStall};
  Coordinator coordinator(opts, test_copts(dir), transport);
  const CoordinatorResult result = coordinator.run();

  // Five shards complete normally (>= 3 samples for the median), the
  // stalled attempt ages past max(4 x median, 50ms) on the fake clock,
  // is killed, and the re-issue completes.
  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.stats.straggler_kills, 1u);
  EXPECT_EQ(result.stats.reissued, 1u);
}

TEST(Coordinator, RetryBudgetExhaustionAbortsNamingTheShard) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("budget");
  FakeTransport transport;
  transport.script[4] = {Behavior::kCrash, Behavior::kCrash, Behavior::kCrash};
  Coordinator coordinator(opts, test_copts(dir), transport);
  try {
    (void)coordinator.run();
    FAIL() << "expected CoordinatorError";
  } catch (const CoordinatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("retry budget"), std::string::npos) << msg;
  }
}

TEST(Coordinator, ResumesFromValidCheckpointsAndRejectsForeignOnes) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("resume");
  std::filesystem::create_directories(dir);
  const SweepPlan plan(opts);

  // Shards 0 and 1: genuine checkpoints from a previous run.
  for (std::uint64_t i = 0; i < 2; ++i) {
    write_text(dir / ("shard-" + std::to_string(i) + ".json"),
               shard_json(run_shard(plan.shard(i, 6), plan.options())));
  }
  // Shard 2: valid JSON, but from a *different sweep* (other seed) —
  // must be rejected, removed and recomputed, not silently merged.
  SweepOptions foreign = opts;
  foreign.base_seed = 1;
  const SweepPlan foreign_plan(foreign);
  write_text(dir / "shard-2.json",
             shard_json(run_shard(foreign_plan.shard(2, 6),
                                  foreign_plan.options())));
  // Shard 3: truncated garbage.
  write_text(dir / "shard-3.json", "not json at all");

  FakeTransport transport;
  Coordinator coordinator(opts, test_copts(dir), transport);
  const CoordinatorResult result = coordinator.run();

  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.stats.resumed, 2u);
  EXPECT_EQ(result.stats.invalid_files, 2u);
  EXPECT_EQ(result.stats.launched, 4u);  // shards 2..5.
}

TEST(Coordinator, PartitionWiderThanTheSweepRunsEmptyShardsInProcess) {
  SweepOptions opts = small_options();
  opts.scenario_count = 5;
  const auto dir = scratch_dir("wide");
  FakeTransport transport;
  CoordinatorOptions copts = test_copts(dir);
  copts.shards = 12;  // trailing 7 shards are empty.
  Coordinator coordinator(opts, std::move(copts), transport);
  const CoordinatorResult result = coordinator.run();

  EXPECT_EQ(result.report.fingerprint, run_sweep(opts).fingerprint);
  EXPECT_EQ(result.stats.launched, 5u);  // one per non-empty shard only.
  EXPECT_EQ(result.report.totals.total, 5u);
}

TEST(Coordinator, LiveProgressAggregatesAcrossWorkersAndFinishesAtTotal) {
  const SweepOptions opts = small_options();
  const auto dir = scratch_dir("progress");
  FakeTransport transport;
  std::vector<std::uint64_t> done_values;
  std::uint64_t total_seen = 0;
  CoordinatorOptions copts = test_copts(dir);
  copts.on_progress = [&](std::uint64_t done, std::uint64_t total) {
    done_values.push_back(done);
    total_seen = total;
  };
  Coordinator coordinator(opts, std::move(copts), transport);
  (void)coordinator.run();

  EXPECT_EQ(total_seen, 60u);
  ASSERT_FALSE(done_values.empty());
  EXPECT_EQ(done_values.back(), 60u);
}

TEST(Coordinator, ConstructionRejectsUnexpressibleSweeps) {
  SweepOptions opts = small_options();
  opts.allowance_granularity = Duration::us(1);  // not a runner flag.
  FakeTransport transport;
  EXPECT_THROW(Coordinator(opts, test_copts(scratch_dir("reject")),
                           transport),
               ContractViolation);
}

}  // namespace
}  // namespace rtft::sweep
