// ProcessTransport under benign signal fire: poll(2), the pipe reads and
// the reaping waitpid(2) must all restart across EINTR instead of
// abandoning a child or surfacing a phantom failure. A SIGUSR1 handler
// installed WITHOUT SA_RESTART makes every delivery interrupt whatever
// syscall the transport is blocked in; a helper thread then peppers the
// polling thread while real children run to completion.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sweep/coordinator.hpp"

namespace rtft::sweep {
namespace {

std::atomic<std::uint64_t> signals_received{0};

extern "C" void count_signal(int) { signals_received.fetch_add(1); }

/// Installs the non-restarting SIGUSR1 handler for the test's lifetime
/// and restores the previous disposition afterwards.
class NonRestartingSigusr1 {
 public:
  NonRestartingSigusr1() {
    struct sigaction action = {};
    action.sa_handler = count_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR.
    sigaction(SIGUSR1, &action, &previous_);
  }
  ~NonRestartingSigusr1() { sigaction(SIGUSR1, &previous_, nullptr); }

 private:
  struct sigaction previous_ = {};
};

/// Fires SIGUSR1 at `target` every millisecond until stopped.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target)
      : thread_([this, target] {
          while (!stop_.load()) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }) {}
  ~SignalStorm() {
    stop_.store(true);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(ProcessTransportEintr, PollAndReapSurviveSignalFire) {
  NonRestartingSigusr1 handler;
  SignalStorm storm(pthread_self());

  ProcessTransport transport;
  // Long enough that the storm provably interrupts the transport while
  // the child is still alive (over a hundred EINTRs across its run).
  const std::uint64_t worker =
      transport.spawn({"/bin/sh", "-c", "sleep 0.2; exit 0"});

  std::optional<WorkerEvent> exit_event;
  const Duration deadline = transport.now() + Duration::s(30);
  while (transport.now() < deadline) {
    std::optional<WorkerEvent> ev = transport.poll(Duration::ms(50));
    if (!ev) continue;  // timeout slice; keep waiting.
    if (ev->kind == WorkerEvent::Kind::kExit) {
      exit_event = ev;
      break;
    }
  }
  ASSERT_TRUE(exit_event.has_value())
      << "worker exit was lost under signal fire";
  EXPECT_EQ(exit_event->worker, worker);
  EXPECT_EQ(exit_event->exit_code, 0) << "clean exit misreported";
  // The storm genuinely hit this thread while it was waiting.
  EXPECT_GT(signals_received.load(), 0u);
}

TEST(ProcessTransportEintr, NonzeroExitStatusSurvivesSignalFire) {
  NonRestartingSigusr1 handler;
  SignalStorm storm(pthread_self());

  ProcessTransport transport;
  (void)transport.spawn({"/bin/sh", "-c", "sleep 0.1; exit 7"});
  std::optional<WorkerEvent> exit_event;
  const Duration deadline = transport.now() + Duration::s(30);
  while (transport.now() < deadline) {
    std::optional<WorkerEvent> ev = transport.poll(Duration::ms(50));
    if (ev && ev->kind == WorkerEvent::Kind::kExit) {
      exit_event = ev;
      break;
    }
  }
  ASSERT_TRUE(exit_event.has_value());
  EXPECT_EQ(exit_event->exit_code, 7) << "exit status corrupted by EINTR";
}

TEST(ProcessTransportEintr, DestructorReapsLiveChildrenUnderSignalFire) {
  NonRestartingSigusr1 handler;
  SignalStorm storm(pthread_self());
  {
    ProcessTransport transport;
    // Children that would outlive the transport by far: the destructor
    // must SIGKILL and reap every one even with EINTR in its waitpid.
    for (int i = 0; i < 3; ++i) {
      (void)transport.spawn({"/bin/sh", "-c", "sleep 600"});
    }
  }
  // If the destructor leaked a zombie or lost a child, the process would
  // still have children: waitpid(-1) would find one instead of ECHILD.
  int status = 0;
  errno = 0;
  const int rc = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(errno, ECHILD) << "transport destructor left a child behind";
}

}  // namespace
}  // namespace rtft::sweep
