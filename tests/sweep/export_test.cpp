#include "sweep/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

namespace rtft::sweep {
namespace {

SweepOptions tiny_options() {
  SweepOptions opts;
  opts.scenario_count = 24;
  opts.workers = 2;
  opts.base_seed = 11;
  opts.grid.task_counts = {3};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero()};
  return opts;
}

std::size_t count_lines(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

TEST(SweepExport, VerdictsCsvHasHeaderAndOneRowPerScenario) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string csv = verdicts_csv(report);
  EXPECT_EQ(count_lines(csv), 1 + report.verdicts.size());
  EXPECT_EQ(csv.rfind("index,seed,cell,tasks", 0), 0u);  // starts with header
  // Every row has the full column count.
  const std::size_t columns =
      1 + static_cast<std::size_t>(
              std::count(csv.begin(), csv.begin() + csv.find('\n'), ','));
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string row = csv.substr(pos, end - pos);
    EXPECT_EQ(1 + std::count(row.begin(), row.end(), ','), columns);
    pos = end + 1;
  }
}

TEST(SweepExport, VerdictsCsvIsHeaderOnlyWithoutKeptVerdicts) {
  SweepOptions opts = tiny_options();
  opts.keep_verdicts = false;
  const SweepReport report = run_sweep(opts);
  EXPECT_EQ(count_lines(verdicts_csv(report)), 1u);
}

TEST(SweepExport, CellsCsvHasOneRowPerCell) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string csv = cells_csv(report);
  EXPECT_EQ(count_lines(csv), 1 + report.cells.size());
  EXPECT_NE(csv.find("mean_allowance_ms"), std::string::npos);
}

TEST(SweepExport, JsonCarriesFingerprintSeedAndStructure) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string json = report_json(report);
  // The fingerprint round-trips as a 16-digit hex string.
  char fp[32];
  std::snprintf(fp, sizeof(fp), "\"%016llx\"",
                static_cast<unsigned long long>(report.fingerprint));
  EXPECT_NE(json.find(std::string("\"fingerprint\": ") + fp),
            std::string::npos);
  EXPECT_NE(json.find("\"options\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"verdicts\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Seeds are strings, never bare 64-bit numbers.
  EXPECT_NE(json.find("\"seed\":\""), std::string::npos);
}

TEST(SweepExport, ExportsAreDeterministic) {
  const SweepOptions opts = tiny_options();
  const SweepReport a = run_sweep(opts);
  const SweepReport b = run_sweep(opts);
  EXPECT_EQ(verdicts_csv(a), verdicts_csv(b));
  EXPECT_EQ(cells_csv(a), cells_csv(b));
}

}  // namespace
}  // namespace rtft::sweep
