#include "sweep/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <clocale>
#include <cstdio>
#include <string>

namespace rtft::sweep {
namespace {

/// Restores the LC_NUMERIC locale the test found, whatever happens.
class ScopedNumericLocale {
 public:
  ScopedNumericLocale() : saved_(std::setlocale(LC_NUMERIC, nullptr)) {}
  ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }

  /// Tries to install a locale whose decimal separator is ','; returns
  /// false when the platform ships none (the test then skips).
  bool force_comma_decimal() {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8", "de_DE",
          "fr_FR", "it_IT.UTF-8", "es_ES.UTF-8"}) {
      if (std::setlocale(LC_NUMERIC, name) == nullptr) continue;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f", 0.5);
      if (std::string_view(buf).find(',') != std::string_view::npos) {
        return true;
      }
    }
    std::setlocale(LC_NUMERIC, saved_.c_str());
    return false;
  }

 private:
  std::string saved_;
};

SweepOptions tiny_options() {
  SweepOptions opts;
  opts.scenario_count = 24;
  opts.workers = 2;
  opts.base_seed = 11;
  opts.grid.task_counts = {3};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero()};
  return opts;
}

std::size_t count_lines(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

TEST(SweepExport, VerdictsCsvHasHeaderAndOneRowPerScenario) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string csv = verdicts_csv(report);
  EXPECT_EQ(count_lines(csv), 1 + report.verdicts.size());
  EXPECT_EQ(csv.rfind("index,seed,cell,tasks", 0), 0u);  // starts with header
  // Every row has the full column count.
  const std::size_t columns =
      1 + static_cast<std::size_t>(
              std::count(csv.begin(), csv.begin() + csv.find('\n'), ','));
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string row = csv.substr(pos, end - pos);
    EXPECT_EQ(1 + std::count(row.begin(), row.end(), ','), columns);
    pos = end + 1;
  }
}

TEST(SweepExport, CarriesTheStopLatencyAxis) {
  SweepOptions opts = tiny_options();
  opts.grid.stop_poll_latencies = {Duration::us(250)};
  const SweepReport report = run_sweep(opts);
  const std::string csv = verdicts_csv(report);
  EXPECT_NE(csv.find("stop_poll_latency_ns"), std::string::npos);
  EXPECT_NE(csv.find(",250000,"), std::string::npos);
  EXPECT_NE(cells_csv(report).find("stop_poll_latency_ns"),
            std::string::npos);
  EXPECT_NE(report_json(report).find("\"stop_poll_latency_ns\":250000"),
            std::string::npos);
}

TEST(SweepExport, VerdictsCsvIsHeaderOnlyWithoutKeptVerdicts) {
  SweepOptions opts = tiny_options();
  opts.keep_verdicts = false;
  const SweepReport report = run_sweep(opts);
  EXPECT_EQ(count_lines(verdicts_csv(report)), 1u);
}

TEST(SweepExport, CellsCsvHasOneRowPerCell) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string csv = cells_csv(report);
  EXPECT_EQ(count_lines(csv), 1 + report.cells.size());
  EXPECT_NE(csv.find("mean_allowance_ms"), std::string::npos);
}

TEST(SweepExport, JsonCarriesFingerprintSeedAndStructure) {
  const SweepReport report = run_sweep(tiny_options());
  const std::string json = report_json(report);
  // The fingerprint round-trips as a 16-digit hex string.
  char fp[32];
  std::snprintf(fp, sizeof(fp), "\"%016llx\"",
                static_cast<unsigned long long>(report.fingerprint));
  EXPECT_NE(json.find(std::string("\"fingerprint\": ") + fp),
            std::string::npos);
  EXPECT_NE(json.find("\"options\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"verdicts\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Seeds are strings, never bare 64-bit numbers.
  EXPECT_NE(json.find("\"seed\":\""), std::string::npos);
}

TEST(SweepExport, AppendfGrowsInsteadOfTruncating) {
  // Rows wider than the internal stack buffer (1 KiB) must come out
  // whole — this is the NDEBUG-sensitive path: the old code asserted on
  // overflow and emitted a truncated row when assertions compile out.
  const std::string wide(5000, 'x');
  std::string out = "head:";
  detail::appendf(out, "[%s|%d]", wide.c_str(), 42);
  EXPECT_EQ(out, "head:[" + wide + "|42]");

  // Exactly at the boundary (content + NUL straddling 1024) too.
  for (std::size_t len : {1022u, 1023u, 1024u, 1025u}) {
    const std::string edge(len, 'y');
    std::string o;
    detail::appendf(o, "%s", edge.c_str());
    EXPECT_EQ(o, edge);
  }
}

TEST(SweepExport, NormalizeDecimalPointHandlesMultiByteSeparators) {
  EXPECT_EQ(detail::normalize_decimal_point("3,14", ","), "3.14");
  EXPECT_EQ(detail::normalize_decimal_point("3.14", "."), "3.14");
  EXPECT_EQ(detail::normalize_decimal_point("-1,5e-07", ","), "-1.5e-07");
  EXPECT_EQ(detail::normalize_decimal_point("42", ","), "42");
  EXPECT_EQ(detail::normalize_decimal_point("3\xC2\xB7"
                                            "14",
                                            "\xC2\xB7"),
            "3.14");  // U+00B7 middle dot (e.g. some ca_ES variants)
  EXPECT_EQ(detail::normalize_decimal_point("", ","), "");
}

TEST(SweepExport, DoublesRoundTripUnderACommaDecimalLocale) {
  ScopedNumericLocale locale;
  if (!locale.force_comma_decimal()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  // Sanity: the C library really formats with ',' right now, so the
  // assertions below prove the normalization and not the environment.
  {
    char raw[64];
    std::snprintf(raw, sizeof(raw), "%.17g", 0.5);
    ASSERT_NE(std::string_view(raw).find(','), std::string_view::npos);
  }
  for (const double v : {0.5, -3.25, 1e-7, 123456.789, 2.2250738585072014e-308,
                         9007199254740993.0}) {
    std::string s;
    detail::append_double(s, v);
    EXPECT_EQ(s.find(','), std::string::npos) << s;
    double back = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_EQ(ec, std::errc{}) << s;
    EXPECT_EQ(ptr, s.data() + s.size()) << s;
    EXPECT_EQ(back, v) << s;  // %.17g round-trips exactly
  }
}

TEST(SweepExport, ReportsStayParseableUnderACommaDecimalLocale) {
  ScopedNumericLocale locale;
  if (!locale.force_comma_decimal()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  const SweepReport report = run_sweep(tiny_options());
  // Column counts survive: no float smuggled a ',' into a CSV row.
  const std::string csv = verdicts_csv(report);
  const std::size_t columns =
      1 + static_cast<std::size_t>(
              std::count(csv.begin(), csv.begin() + csv.find('\n'), ','));
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string row = csv.substr(pos, end - pos);
    ASSERT_EQ(1 + std::count(row.begin(), row.end(), ','), columns) << row;
    pos = end + 1;
  }
  // JSON keeps its structure and numbers keep '.' decimals.
  const std::string json = report_json(report);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"elapsed_seconds\""), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(SweepExport, ExportsAreDeterministic) {
  const SweepOptions opts = tiny_options();
  const SweepReport a = run_sweep(opts);
  const SweepReport b = run_sweep(opts);
  EXPECT_EQ(verdicts_csv(a), verdicts_csv(b));
  EXPECT_EQ(cells_csv(a), cells_csv(b));
}

}  // namespace
}  // namespace rtft::sweep
