// MultiEngine fail-over semantics, pinned with hand-built placements:
// the lost-job audit at the death instant, the backup release-phase
// rule (next primary release *strictly after* the failure), the verdict
// taxonomy, and the lockstep sync-quantum invariance.
#include "multicore/multi_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "multicore/partition.hpp"
#include "runtime/engine.hpp"

namespace rtft::multicore {
namespace {

sched::TaskParams simple_task(const char* name, int priority, Duration cost,
                              Duration period) {
  sched::TaskParams p;
  p.name = name;
  p.priority = priority;
  p.cost = cost;
  p.period = period;
  p.deadline = period;
  return p;
}

rt::EngineOptions quiet_options(Duration horizon) {
  rt::EngineOptions o;
  o.horizon = Instant::epoch() + horizon;
  o.sink_mode = trace::SinkMode::kStaticNull;
  return o;
}

Placement one_task_placement(std::size_t primary, std::size_t backup) {
  Placement p;
  p.feasible = true;
  p.primary = {primary};
  p.backup = {backup};
  return p;
}

TEST(MultiEngine, KillingMidJobLosesThePendingJob) {
  // cost 4ms, period 10ms: at t=2ms job 0 is still running on the dying
  // core, so it is lost; the backup picks up at the next release, 10ms.
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(4), Duration::ms(10)));
  MultiEngine fleet;
  fleet.reset(2, quiet_options(Duration::ms(100)));
  fleet.add_placed(ts, one_task_placement(0, 1));
  fleet.run_until(Instant::epoch() + Duration::ms(2));
  fleet.fail_core(0);
  fleet.run();

  const MultiRunReport r = fleet.report();
  EXPECT_EQ(r.failed_core, 0u);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_TRUE(r.tasks[0].failed_over);
  EXPECT_EQ(r.tasks[0].lost_jobs, 1);
  EXPECT_EQ(r.tasks[0].misses, 0);
  EXPECT_EQ(r.tasks[0].outcome, FailoverOutcome::kSurvived);
  EXPECT_EQ(r.total_lost_jobs, 1);
  EXPECT_TRUE(r.failover_clean);  // lost != missed: nobody observed it.

  // The backup replica exists on core 1 with first release at 10ms.
  rt::Engine& backup = fleet.core(1);
  ASSERT_EQ(backup.task_count(), 1u);
  EXPECT_EQ(backup.first_release(0), Instant::epoch() + Duration::ms(10));
}

TEST(MultiEngine, KillingBetweenJobsLosesNothing) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(4), Duration::ms(10)));
  MultiEngine fleet;
  fleet.reset(2, quiet_options(Duration::ms(100)));
  fleet.add_placed(ts, one_task_placement(0, 1));
  fleet.run_until(Instant::epoch() + Duration::ms(6));  // job 0 done at 4ms.
  fleet.fail_core(0);
  fleet.run();

  const MultiRunReport r = fleet.report();
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].lost_jobs, 0);
  EXPECT_EQ(r.tasks[0].outcome, FailoverOutcome::kSurvived);
}

TEST(MultiEngine, BackupReleaseIsStrictlyAfterTheFailureInstant) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(1), Duration::ms(10)));
  // Mid-period kill at 25ms -> next release 30ms; kill exactly on a
  // release date (20ms) skips it -> 30ms too, since that release
  // already happened on (and died with) the primary.
  for (const std::int64_t kill_ms : {25, 20}) {
    MultiEngine fleet;
    fleet.reset(2, quiet_options(Duration::ms(100)));
    fleet.add_placed(ts, one_task_placement(0, 1));
    fleet.run_until(Instant::epoch() + Duration::ms(kill_ms));
    fleet.fail_core(0);
    rt::Engine& backup = fleet.core(1);
    ASSERT_EQ(backup.task_count(), 1u) << "kill at " << kill_ms << "ms";
    EXPECT_EQ(backup.first_release(0), Instant::epoch() + Duration::ms(30))
        << "kill at " << kill_ms << "ms";
  }
}

TEST(MultiEngine, MissingBackupYieldsInfeasiblePlacementVerdict) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(1), Duration::ms(10)));
  MultiEngine fleet;
  fleet.reset(2, quiet_options(Duration::ms(100)));
  fleet.add_placed(ts, one_task_placement(0, kNoCore));
  fleet.run_until(Instant::epoch() + Duration::ms(15));
  fleet.fail_core(0);
  fleet.run();

  const MultiRunReport r = fleet.report();
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_FALSE(r.tasks[0].failed_over);
  EXPECT_EQ(r.tasks[0].outcome, FailoverOutcome::kInfeasiblePlacement);
  EXPECT_FALSE(r.failover_clean);
  EXPECT_EQ(r.missed_tasks, 1);
}

TEST(MultiEngine, OverloadedBackupCoreMissesDuringFailover) {
  // Core 1 already runs a high-priority 6ms/10ms task; a's 6ms backup
  // replica cannot also fit in the period, so fail-over must miss.
  sched::TaskSet ts;
  ts.add(simple_task("a", 5, Duration::ms(6), Duration::ms(10)));
  ts.add(simple_task("b", 10, Duration::ms(6), Duration::ms(10)));
  Placement p;
  p.feasible = true;
  p.primary = {0, 1};
  p.backup = {1, 0};
  MultiEngine fleet;
  fleet.reset(2, quiet_options(Duration::ms(100)));
  fleet.add_placed(ts, p);
  fleet.run_until(Instant::epoch() + Duration::ms(15));
  fleet.fail_core(0);
  fleet.run();

  const MultiRunReport r = fleet.report();
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[0].outcome, FailoverOutcome::kMissedDuringFailover);
  EXPECT_GT(r.tasks[0].misses, 0);
  // b keeps its core and its priority: unaffected.
  EXPECT_EQ(r.tasks[1].outcome, FailoverOutcome::kSurvived);
  EXPECT_FALSE(r.failover_clean);
}

TEST(MultiEngine, DefaultFaultPlanIsAFaultFreeRun) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(2), Duration::ms(10)));
  ts.add(simple_task("b", 9, Duration::ms(2), Duration::ms(20)));
  Placement p;
  p.feasible = true;
  p.primary = {0, 1};
  p.backup = {1, 0};
  const Instant horizon = Instant::epoch() + Duration::ms(100);
  for (const CoreFaultPlan plan :
       {CoreFaultPlan{},             // kNoCore: no fault planned.
        CoreFaultPlan{0, horizon}}) {  // dated at the horizon: ignored.
    MultiEngine fleet;
    fleet.reset(2, quiet_options(Duration::ms(100)));
    fleet.add_placed(ts, p);
    const MultiRunReport r = fleet.run_with_fault(plan);
    EXPECT_EQ(r.failed_core, kNoCore);
    EXPECT_TRUE(r.failover_clean);
    for (const TaskFailoverReport& t : r.tasks) {
      EXPECT_EQ(t.outcome, FailoverOutcome::kSurvived);
      EXPECT_FALSE(t.failed_over);
      EXPECT_EQ(t.lost_jobs, 0);
    }
    EXPECT_TRUE(fleet.core_alive(0));
    EXPECT_TRUE(fleet.core_alive(1));
  }
}

TEST(MultiEngine, ContractViolations) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(1), Duration::ms(10)));
  MultiEngine fleet;
  EXPECT_THROW(fleet.reset(0, quiet_options(Duration::ms(10))),
               ContractViolation);
  EXPECT_THROW(
      fleet.reset(1, quiet_options(Duration::ms(10)), Duration::ms(-1)),
      ContractViolation);
  fleet.reset(2, quiet_options(Duration::ms(100)));
  fleet.add_placed(ts, one_task_placement(0, 1));
  EXPECT_THROW(static_cast<void>(fleet.core(2)), ContractViolation);
  EXPECT_THROW(fleet.fail_core(2), ContractViolation);
  fleet.run_until(Instant::epoch() + Duration::ms(10));
  EXPECT_THROW(fleet.run_until(Instant::epoch() + Duration::ms(5)),
               ContractViolation);  // clock cannot run backwards.
  EXPECT_THROW(fleet.run_until(Instant::epoch() + Duration::ms(200)),
               ContractViolation);  // past the horizon.
  fleet.fail_core(0);
  EXPECT_THROW(fleet.fail_core(0), ContractViolation);  // already dead.
  EXPECT_THROW(fleet.add_task(0, ts[0]), ContractViolation);  // dead core.
}

TEST(MultiEngine, SyncQuantumDoesNotChangeTheRun) {
  // The engines are run_until-segmentation-invariant, so stepping the
  // fleet in 700us global ticks must reproduce the single-segment run
  // bit-for-bit, fault and all.
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(3), Duration::ms(10)));
  ts.add(simple_task("b", 9, Duration::ms(4), Duration::ms(14)));
  ts.add(simple_task("c", 8, Duration::ms(5), Duration::ms(21)));
  Placement p;
  p.feasible = true;
  p.primary = {0, 1, 0};
  p.backup = {1, 0, 1};
  CoreFaultPlan fault{0, Instant::epoch() + Duration::ms(37)};

  std::vector<MultiRunReport> reports;
  for (const Duration quantum :
       {Duration::zero(), Duration::us(700), Duration::ms(5)}) {
    MultiEngine fleet;
    fleet.reset(2, quiet_options(Duration::ms(200)), quantum);
    fleet.add_placed(ts, p);
    reports.push_back(fleet.run_with_fault(fault));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    ASSERT_EQ(reports[i].tasks.size(), reports[0].tasks.size());
    EXPECT_EQ(reports[i].total_misses, reports[0].total_misses);
    EXPECT_EQ(reports[i].total_lost_jobs, reports[0].total_lost_jobs);
    EXPECT_EQ(reports[i].failover_clean, reports[0].failover_clean);
    for (std::size_t t = 0; t < reports[0].tasks.size(); ++t) {
      EXPECT_EQ(reports[i].tasks[t].outcome, reports[0].tasks[t].outcome);
      EXPECT_EQ(reports[i].tasks[t].misses, reports[0].tasks[t].misses);
      EXPECT_EQ(reports[i].tasks[t].lost_jobs, reports[0].tasks[t].lost_jobs);
    }
  }
}

}  // namespace
}  // namespace rtft::multicore
