// M=1 equivalence oracle — a MultiEngine fleet with a single core must
// be bit-identical to a plain rt::Engine on randomized scenarios
// (tests/runtime/scenario_fuzz.hpp), under both event-queue modes,
// whatever sync quantum the fleet steps in and however its run is
// segmented. The multicore layer must add exactly nothing to the
// uniprocessor semantics it composes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "../runtime/scenario_fuzz.hpp"
#include "multicore/multi_engine.hpp"
#include "runtime/engine.hpp"
#include "trace/recorder.hpp"

namespace rtft::multicore {
namespace {

using rt::fuzz::Scenario;
namespace fuzz = rt::fuzz;

struct RunResult {
  std::vector<fuzz::FlatEvent> events;
  std::vector<rt::TaskStats> stats;
};

rt::CostSpec scenario_cost(const Scenario& s, std::size_t i,
                           std::int64_t quantum) {
  const Duration nominal = s.tasks[i].cost;
  const std::uint64_t seed = s.cost_seeds[i];
  return rt::CostModel([nominal, seed, quantum](std::int64_t job) {
    return fuzz::jittered_cost(nominal, seed, job, quantum);
  });
}

rt::EngineOptions scenario_options(const Scenario& s, trace::Recorder& rec,
                                   rt::EventQueueMode mode) {
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + s.horizon;
  opts.stop_poll_latency = s.stop_poll_latency;
  opts.context_switch_cost = s.context_switch_cost;
  opts.sink = &rec;
  opts.event_queue = mode;
  return opts;
}

RunResult collect(rt::Engine& engine, const trace::Recorder& rec,
                  std::int64_t fires) {
  RunResult result;
  result.events = fuzz::flatten(rec);
  result.events.emplace_back(fires, -1, 0, 0, 0);  // handler-visible state
  for (std::size_t i = 0; i < engine.task_count(); ++i) {
    result.stats.push_back(engine.stats(i));
  }
  return result;
}

/// The oracle: the plain engine run in one shot.
RunResult run_plain(rt::Engine& engine, const Scenario& s,
                    rt::EventQueueMode mode) {
  trace::Recorder rec;
  engine.reset(scenario_options(s, rec, mode));
  std::int64_t fires = 0;
  const std::int64_t quantum = fuzz::cost_quantum(s);
  fuzz::apply_scenario(
      engine, s,
      [&](std::size_t i) { return scenario_cost(s, i, quantum); }, fires);
  engine.run();
  return collect(engine, rec, fires);
}

/// The subject: a one-core fleet with a randomized sync quantum,
/// advanced through randomized run_until segments before the final
/// run() — the harshest segmentation the fleet API allows.
RunResult run_fleet(MultiEngine& fleet, const Scenario& s,
                    rt::EventQueueMode mode, std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b9ULL + static_cast<int>(mode));
  const Duration sync_quantum =
      (rng() % 2 != 0)
          ? Duration::us(static_cast<std::int64_t>(100 + rng() % 7000))
          : Duration::zero();
  trace::Recorder rec;
  fleet.reset(1, scenario_options(s, rec, mode), sync_quantum);
  rt::Engine& engine = fleet.core(0);
  std::int64_t fires = 0;
  const std::int64_t quantum = fuzz::cost_quantum(s);
  fuzz::apply_scenario(
      engine, s,
      [&](std::size_t i) { return scenario_cost(s, i, quantum); }, fires);
  std::vector<Instant> cuts;
  const std::size_t n_cuts = rng() % 4;
  for (std::size_t k = 0; k < n_cuts; ++k) {
    cuts.push_back(Instant::epoch() +
                   Duration::ns(static_cast<std::int64_t>(
                       rng() % static_cast<std::uint64_t>(s.horizon.count()))));
  }
  std::sort(cuts.begin(), cuts.end());
  for (const Instant cut : cuts) fleet.run_until(cut);
  fleet.run();
  return collect(engine, rec, fires);
}

void expect_equivalent(const RunResult& a, const RunResult& b,
                       std::uint64_t seed, rt::EventQueueMode mode) {
  ASSERT_EQ(a.events, b.events)
      << "trace divergence at seed " << seed << ", mode "
      << static_cast<int>(mode);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    ASSERT_EQ(a.stats[i].released, b.stats[i].released) << "seed " << seed;
    ASSERT_EQ(a.stats[i].completed, b.stats[i].completed) << "seed " << seed;
    ASSERT_EQ(a.stats[i].missed, b.stats[i].missed) << "seed " << seed;
    ASSERT_EQ(a.stats[i].aborted, b.stats[i].aborted) << "seed " << seed;
    ASSERT_EQ(a.stats[i].max_response, b.stats[i].max_response)
        << "seed " << seed;
  }
}

TEST(SingleCoreEquivalence, FleetMatchesPlainEngineOnRandomScenarios) {
  // Both subjects are reused across all scenarios, so the comparison
  // also covers fleet state surviving reset().
  rt::EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + Duration::ms(1);
  rt::Engine plain(bootstrap);
  MultiEngine fleet;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = fuzz::random_scenario(seed, /*quantized=*/false);
    for (const rt::EventQueueMode mode :
         {rt::EventQueueMode::kTimingWheel, rt::EventQueueMode::kPooledHeap}) {
      const RunResult oracle = run_plain(plain, s, mode);
      const RunResult subject = run_fleet(fleet, s, mode, seed);
      expect_equivalent(oracle, subject, seed, mode);
    }
  }
}

TEST(SingleCoreEquivalence, FleetMatchesPlainEngineOnQuantizedGrids) {
  // Tie-heavy grids: many events share one date, so any ordering slip
  // the fleet's lockstep stepping introduced would surface here.
  rt::EngineOptions bootstrap;
  bootstrap.horizon = Instant::epoch() + Duration::ms(1);
  rt::Engine plain(bootstrap);
  MultiEngine fleet;
  for (std::uint64_t seed = 1000; seed < 1030; ++seed) {
    const Scenario s = fuzz::random_scenario(seed, /*quantized=*/true);
    for (const rt::EventQueueMode mode :
         {rt::EventQueueMode::kTimingWheel, rt::EventQueueMode::kPooledHeap}) {
      const RunResult oracle = run_plain(plain, s, mode);
      const RunResult subject = run_fleet(fleet, s, mode, seed);
      expect_equivalent(oracle, subject, seed, mode);
    }
  }
}

}  // namespace
}  // namespace rtft::multicore
