// Partitioner properties: deterministic placements, the
// primary/backup invariants both strategies promise, and the central
// contrast — fault-aware placements survive any single core failure by
// construction, first-fit placements demonstrably do not.
#include "multicore/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "sched/feasibility.hpp"
#include "sweep/generators.hpp"

namespace rtft::multicore {
namespace {

sched::TaskSet seeded_set(std::uint64_t seed, std::size_t tasks,
                          double util) {
  RandomTaskSetSpec spec;
  spec.tasks = tasks;
  spec.total_utilization = util;
  return sweep::make_seeded_task_set(seed, spec);
}

sched::TaskParams simple_task(const char* name, int priority, Duration cost,
                              Duration period) {
  sched::TaskParams p;
  p.name = name;
  p.priority = priority;
  p.cost = cost;
  p.period = period;
  p.deadline = period;
  return p;
}

TEST(FirstFitDecreasing, PlacesEveryTaskAndBacksUpOnTheNextCore) {
  const sched::TaskSet ts = seeded_set(1, 8, 2.2);
  const FirstFitDecreasing ffd;
  const Placement p = ffd.place(ts, 4);
  ASSERT_TRUE(p.feasible) << p.reason;
  ASSERT_EQ(p.primary.size(), ts.size());
  ASSERT_EQ(p.backup.size(), ts.size());
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    ASSERT_LT(p.primary[id], 4u);
    EXPECT_EQ(p.backup[id], (p.primary[id] + 1) % 4);
    EXPECT_NE(p.backup[id], p.primary[id]);
  }
}

TEST(FirstFitDecreasing, SingleCoreHasNoBackups) {
  const sched::TaskSet ts = seeded_set(7, 3, 0.5);
  const FirstFitDecreasing ffd;
  const Placement p = ffd.place(ts, 1);
  ASSERT_TRUE(p.feasible) << p.reason;
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    EXPECT_EQ(p.primary[id], 0u);
    EXPECT_EQ(p.backup[id], kNoCore);
  }
}

TEST(FirstFitDecreasing, ReportsTheUnplaceableTaskByName) {
  // One task alone over-utilizes any core: placement must fail with the
  // offending task named.
  sched::TaskSet ts;
  ts.add(simple_task("hog", 10, Duration::ms(12), Duration::ms(10)));
  const FirstFitDecreasing ffd;
  const Placement p = ffd.place(ts, 2);
  EXPECT_FALSE(p.feasible);
  EXPECT_NE(p.reason.find("'hog'"), std::string::npos) << p.reason;
  EXPECT_EQ(p.primary[0], kNoCore);
}

TEST(Partitioners, PlacementsAreDeterministic) {
  const sched::TaskSet ts = seeded_set(11, 10, 2.4);
  const FirstFitDecreasing ffd;
  const FaultAware fa;
  for (const Partitioner* strategy :
       {static_cast<const Partitioner*>(&ffd),
        static_cast<const Partitioner*>(&fa)}) {
    const Placement a = strategy->place(ts, 4);
    const Placement b = strategy->place(ts, 4);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.primary, b.primary);
    EXPECT_EQ(a.backup, b.backup);
  }
}

TEST(FaultAware, FeasiblePlacementsSurviveAnySingleFault) {
  // The subsystem's central guarantee, checked against the independent
  // global (failed core x surviving core) RTA sweep over many random
  // sets and fleet widths.
  const FaultAware fa;
  int feasible_seen = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    for (const std::size_t cores : {2u, 3u, 4u}) {
      const double util = 0.45 * static_cast<double>(cores);
      const sched::TaskSet ts = seeded_set(seed, 2 * cores, util);
      const Placement p = fa.place(ts, cores);
      if (!p.feasible) continue;
      ++feasible_seen;
      EXPECT_TRUE(survives_any_single_fault(ts, p, cores))
          << "seed " << seed << ", " << cores << " cores";
      for (sched::TaskId id = 0; id < ts.size(); ++id) {
        EXPECT_NE(p.backup[id], p.primary[id]);
        EXPECT_LT(p.backup[id], cores);
      }
    }
  }
  // The sweep must actually have exercised the guarantee.
  EXPECT_GT(feasible_seen, 20);
}

TEST(FaultAware, SharesTheFirstFitPrimaryPhase) {
  // Identical primary assignment by construction (shared helper), so
  // fault-aware can only be infeasible where first-fit also is, or
  // because backup admission failed.
  const FirstFitDecreasing ffd;
  const FaultAware fa;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sched::TaskSet ts = seeded_set(seed, 8, 2.2);
    const Placement pf = ffd.place(ts, 4);
    const Placement pa = fa.place(ts, 4);
    if (pa.feasible) {
      ASSERT_TRUE(pf.feasible) << "seed " << seed;
      EXPECT_EQ(pa.primary, pf.primary) << "seed " << seed;
    }
  }
}

TEST(Partitioners, FirstFitAcceptsPlacementsThatDoNotSurviveAFault) {
  // The paired evidence at placement level: at least one random set
  // where first-fit's unchecked backups fail the post-failure RTA sweep
  // while fault-aware's reserved ones pass it.
  const FirstFitDecreasing ffd;
  const FaultAware fa;
  bool contrast_seen = false;
  for (std::uint64_t seed = 1; seed <= 20 && !contrast_seen; ++seed) {
    const sched::TaskSet ts = seeded_set(seed, 8, 2.2);
    const Placement pf = ffd.place(ts, 4);
    const Placement pa = fa.place(ts, 4);
    if (!pf.feasible || !pa.feasible) continue;
    contrast_seen = !survives_any_single_fault(ts, pf, 4) &&
                    survives_any_single_fault(ts, pa, 4);
  }
  EXPECT_TRUE(contrast_seen);
}

TEST(PrimaryUtilization, SumsPerCoreLoads) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(2), Duration::ms(10)));  // 0.2
  ts.add(simple_task("b", 9, Duration::ms(3), Duration::ms(10)));   // 0.3
  ts.add(simple_task("c", 8, Duration::ms(1), Duration::ms(10)));   // 0.1
  Placement p;
  p.feasible = true;
  p.primary = {0, 1, 0};
  p.backup = {1, 0, 1};
  const std::vector<double> u = primary_utilization(ts, p, 2);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_NEAR(u[0], 0.3, 1e-12);
  EXPECT_NEAR(u[1], 0.3, 1e-12);
}

TEST(SurvivesAnySingleFault, RejectsMissingOrColocatedBackups) {
  sched::TaskSet ts;
  ts.add(simple_task("a", 10, Duration::ms(1), Duration::ms(10)));
  Placement p;
  p.feasible = true;
  p.primary = {0};
  p.backup = {kNoCore};  // no backup: fail-over impossible.
  EXPECT_FALSE(survives_any_single_fault(ts, p, 2));
  p.backup = {1};
  EXPECT_TRUE(survives_any_single_fault(ts, p, 2));
  p.feasible = false;  // an infeasible placement never survives.
  EXPECT_FALSE(survives_any_single_fault(ts, p, 2));
  EXPECT_THROW(survives_any_single_fault(ts, Placement{}, 2),
               ContractViolation);  // must cover the task set.
}

}  // namespace
}  // namespace rtft::multicore
