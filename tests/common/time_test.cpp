#include "common/time.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace rtft {
namespace {

using namespace rtft::literals;

TEST(Duration, NamedConstructorsAgreeOnScale) {
  EXPECT_EQ(Duration::us(1).count(), 1'000);
  EXPECT_EQ(Duration::ms(1).count(), 1'000'000);
  EXPECT_EQ(Duration::s(1).count(), 1'000'000'000);
  EXPECT_EQ(Duration::ms(29).count(), 29'000'000);
}

TEST(Duration, LiteralsMatchNamedConstructors) {
  EXPECT_EQ(5_ns, Duration::ns(5));
  EXPECT_EQ(5_us, Duration::us(5));
  EXPECT_EQ(5_ms, Duration::ms(5));
  EXPECT_EQ(5_s, Duration::s(5));
}

TEST(Duration, ArithmeticIsExact) {
  EXPECT_EQ(3_ms + 4_ms, 7_ms);
  EXPECT_EQ(3_ms - 4_ms, Duration::ms(-1));
  EXPECT_EQ(-(3_ms), Duration::ms(-3));
  EXPECT_EQ(3_ms * 4, 12_ms);
  EXPECT_EQ(4 * 3_ms, 12_ms);
  EXPECT_EQ(12_ms / 4, 3_ms);
  EXPECT_EQ(13_ms / (4_ms), 3);  // truncating ratio
  EXPECT_EQ(13_ms % 4_ms, 1_ms);
}

TEST(Duration, CompoundAssignment) {
  Duration d = 10_ms;
  d += 5_ms;
  EXPECT_EQ(d, 15_ms);
  d -= 20_ms;
  EXPECT_EQ(d, Duration::ms(-5));
}

TEST(Duration, ComparisonIsTotalOrder) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(3_ms, 2_ms);
  EXPECT_EQ(Duration::zero(), 0_ns);
}

TEST(Duration, Predicates) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((1_ns).is_positive());
  EXPECT_TRUE((Duration::zero() - 1_ns).is_negative());
  EXPECT_FALSE((1_ns).is_negative());
}

TEST(Duration, ConversionHelpers) {
  EXPECT_EQ((1500_us).whole_ms(), 1);
  EXPECT_DOUBLE_EQ((1500_us).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ((2_s).to_s(), 2.0);
}

TEST(CeilDiv, RoundsUpwardExactly) {
  EXPECT_EQ(ceil_div(0_ms, 10_ms), 0);
  EXPECT_EQ(ceil_div(1_ns, 10_ms), 1);
  EXPECT_EQ(ceil_div(10_ms, 10_ms), 1);
  EXPECT_EQ(ceil_div(Duration::ms(10) + 1_ns, 10_ms), 2);
  EXPECT_EQ(ceil_div(87_ms, 200_ms), 1);
}

TEST(CeilDiv, RejectsInvalidArguments) {
  EXPECT_THROW((void)ceil_div(1_ms, Duration::zero()), ContractViolation);
  EXPECT_THROW((void)ceil_div(Duration::ms(-1), 1_ms), ContractViolation);
}

TEST(Instant, EpochAndOffsets) {
  const Instant t0 = Instant::epoch();
  EXPECT_EQ(t0.count(), 0);
  const Instant t1 = t0 + 29_ms;
  EXPECT_EQ(t1.since_epoch(), 29_ms);
  EXPECT_EQ(t1 - t0, 29_ms);
  EXPECT_EQ(t1 - 29_ms, t0);
  EXPECT_LT(t0, t1);
}

TEST(Instant, NeverIsBeyondEverything) {
  EXPECT_GT(Instant::never(), Instant::epoch() + Duration::s(1'000'000));
}

TEST(TimeToString, MillisecondCentricRendering) {
  EXPECT_EQ(to_string(29_ms), "29ms");
  EXPECT_EQ(to_string(1500_us), "1.5ms");
  EXPECT_EQ(to_string(250_us), "250us");
  EXPECT_EQ(to_string(17_ns), "17ns");
  EXPECT_EQ(to_string(Duration::zero()), "0ns");
  EXPECT_EQ(to_string(Duration::ms(-5)), "-5ms");
  EXPECT_EQ(to_string(Instant::epoch() + 1020_ms), "1020ms");
}

}  // namespace
}  // namespace rtft
