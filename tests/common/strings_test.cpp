#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace rtft {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(FormatFixed, RendersRequestedDigits) {
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
  EXPECT_EQ(format_fixed(0.285, 3), "0.285");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // no truncation
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(ParseInt64, AcceptsWholeStringOnly) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int64("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int64(" -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int64("42x", v));
  EXPECT_FALSE(parse_int64("", v));
  EXPECT_FALSE(parse_int64("4 2", v));
}

TEST(ParseDouble, AcceptsWholeStringOnly) {
  double v = 0;
  EXPECT_TRUE(parse_double("0.5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(parse_double(" 2e3 ", v));
  EXPECT_DOUBLE_EQ(v, 2000.0);
  EXPECT_FALSE(parse_double("1.2.3", v));
  EXPECT_FALSE(parse_double("", v));
}

}  // namespace
}  // namespace rtft
