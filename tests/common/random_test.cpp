#include "common/random.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/assert.hpp"

namespace rtft {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.next_in(17, 17), 17);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng rng(9);
  EXPECT_THROW((void)rng.next_in(2, 1), ContractViolation);
}

TEST(Rng, NextDurationStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Duration d = rng.next_duration(Duration::ms(1), Duration::ms(3));
    EXPECT_GE(d, Duration::ms(1));
    EXPECT_LE(d, Duration::ms(3));
  }
}

TEST(UUniFast, SumsToTotalUtilization) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = uunifast(rng, 8, 0.75);
    ASSERT_EQ(u.size(), 8u);
    const double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, 0.75, 1e-12);
    for (double ui : u) EXPECT_GT(ui, 0.0);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(5);
  const auto u = uunifast(rng, 1, 0.4);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.4);
}

TEST(RandomTaskSet, RespectsSpec) {
  Rng rng(21);
  RandomTaskSetSpec spec;
  spec.tasks = 12;
  spec.total_utilization = 0.6;
  spec.min_period = Duration::ms(5);
  spec.max_period = Duration::ms(500);
  spec.deadline_min_factor = 0.5;
  spec.deadline_max_factor = 1.0;
  const auto set = random_task_set(rng, spec);
  ASSERT_EQ(set.size(), 12u);
  for (const RandomTask& t : set) {
    EXPECT_GE(t.period, spec.min_period);
    EXPECT_LE(t.period, spec.max_period);
    EXPECT_GT(t.cost, Duration::zero());
    EXPECT_GE(t.deadline, t.cost);
    EXPECT_LE(t.deadline, t.period);
  }
}

TEST(RandomTaskSet, UtilizationApproximatelyMatches) {
  Rng rng(22);
  RandomTaskSetSpec spec;
  spec.tasks = 10;
  spec.total_utilization = 0.5;
  const auto set = random_task_set(rng, spec);
  double u = 0.0;
  for (const RandomTask& t : set) {
    u += static_cast<double>(t.cost.count()) /
         static_cast<double>(t.period.count());
  }
  // Rounding to >=1us per task may push utilization slightly around the
  // target, but it must stay close.
  EXPECT_NEAR(u, 0.5, 0.05);
}

}  // namespace
}  // namespace rtft
