#include "common/math.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>

namespace rtft {
namespace {

using namespace rtft::literals;

TEST(CheckedMul, DetectsOverflow) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(-6, 7), -42);
  EXPECT_FALSE(
      checked_mul(std::numeric_limits<std::int64_t>::max(), 2).has_value());
}

TEST(CheckedAdd, DetectsOverflow) {
  EXPECT_EQ(checked_add(40, 2), 42);
  EXPECT_FALSE(
      checked_add(std::numeric_limits<std::int64_t>::max(), 1).has_value());
}

TEST(CheckedLcm, ComputesSmallValues) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(200, 250), 1000);
  EXPECT_EQ(checked_lcm(1, 7), 7);
}

TEST(CheckedLcm, DetectsOverflow) {
  // Two large co-prime values whose product overflows.
  const std::int64_t a = (std::int64_t{1} << 62) - 1;
  const std::int64_t b = (std::int64_t{1} << 61) - 1;
  EXPECT_FALSE(checked_lcm(a, b).has_value());
}

TEST(CheckedLcm, RejectsNonPositive) {
  EXPECT_THROW((void)checked_lcm(0, 3), ContractViolation);
  EXPECT_THROW((void)checked_lcm(3, -1), ContractViolation);
}

TEST(Hyperperiod, PaperTable2PeriodsIs3Seconds) {
  // lcm(200, 250, 1500) = 3000 ms.
  const std::array<Duration, 3> periods{200_ms, 250_ms, 1500_ms};
  const auto h = hyperperiod(periods);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, 3000_ms);
}

TEST(Hyperperiod, SingleTask) {
  const std::array<Duration, 1> periods{6_ms};
  EXPECT_EQ(hyperperiod(periods), 6_ms);
}

TEST(Hyperperiod, OverflowReportsNullopt) {
  // Large co-prime nanosecond periods.
  const std::array<Duration, 2> periods{
      Duration::ns((std::int64_t{1} << 62) - 1),
      Duration::ns((std::int64_t{1} << 61) - 1)};
  EXPECT_FALSE(hyperperiod(periods).has_value());
}

TEST(CompareLoadToOne, ExactBoundary) {
  // 3/6 + 2/4 = 1 exactly.
  const std::array<Duration, 2> costs{3_ms, 2_ms};
  const std::array<Duration, 2> periods{6_ms, 4_ms};
  EXPECT_EQ(compare_load_to_one(costs, periods), 0);
}

TEST(CompareLoadToOne, BelowAndAbove) {
  {
    const std::array<Duration, 2> costs{1_ms, 1_ms};
    const std::array<Duration, 2> periods{6_ms, 4_ms};
    EXPECT_EQ(compare_load_to_one(costs, periods), -1);
  }
  {
    const std::array<Duration, 2> costs{4_ms, 2_ms};
    const std::array<Duration, 2> periods{6_ms, 4_ms};
    EXPECT_EQ(compare_load_to_one(costs, periods), 1);
  }
}

TEST(CompareLoadToOne, ImmuneToFloatRounding) {
  // 1/3 + 1/3 + 1/3 = 1 exactly; floating point would say 0.999...
  const std::array<Duration, 3> costs{1_ns, 1_ns, 1_ns};
  const std::array<Duration, 3> periods{3_ns, 3_ns, 3_ns};
  EXPECT_EQ(compare_load_to_one(costs, periods), 0);
}

TEST(CompareLoadToOne, OneNanosecondOverOne) {
  const std::array<Duration, 2> costs{Duration::ns(500'000'001), 500_ms};
  const std::array<Duration, 2> periods{Duration::s(1), Duration::s(1)};
  EXPECT_EQ(compare_load_to_one(costs, periods), 1);
}

}  // namespace
}  // namespace rtft
