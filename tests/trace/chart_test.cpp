#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "trace/ascii_chart.hpp"
#include "trace/svg_chart.hpp"

namespace rtft::trace {
namespace {

using core::FaultTolerantSystem;
using core::TreatmentPolicy;
using namespace rtft::literals;

SystemTimeline figure_timeline(TreatmentPolicy policy) {
  core::paper::Scenario s = core::paper::figures_scenario(policy);
  const sched::TaskSet tasks = s.config.tasks;
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  (void)sys.run();
  return build_timeline(tasks, sys.recorder(),
                        Instant::epoch() + core::paper::kFigureHorizon);
}

AsciiChartOptions window_1000_1130() {
  AsciiChartOptions opts;
  opts.from = Instant::epoch() + 1000_ms;
  opts.to = Instant::epoch() + 1130_ms;
  opts.width = 130;  // 1 ms per column
  return opts;
}

TEST(AsciiChart, RendersAllTaskRows) {
  const std::string chart = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kInstantStop), window_1000_1130());
  EXPECT_NE(chart.find("tau1"), std::string::npos);
  EXPECT_NE(chart.find("tau2"), std::string::npos);
  EXPECT_NE(chart.find("tau3"), std::string::npos);
  EXPECT_NE(chart.find("running"), std::string::npos) << "legend expected";
}

TEST(AsciiChart, StopMarkAppearsForInstantStop) {
  const std::string chart = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kInstantStop), window_1000_1130());
  EXPECT_NE(chart.find('X'), std::string::npos);
}

TEST(AsciiChart, NoStopMarkWithoutTreatment) {
  AsciiChartOptions opts = window_1000_1130();
  opts.legend = false;  // the legend itself contains the X glyph
  const std::string chart = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kDetectOnly), opts);
  EXPECT_EQ(chart.find('X'), std::string::npos);
}

TEST(AsciiChart, DetectorMarksOnlyWhenInstalled) {
  AsciiChartOptions opts = window_1000_1130();
  opts.legend = false;
  const std::string with =
      render_ascii_chart(figure_timeline(TreatmentPolicy::kDetectOnly), opts);
  const std::string without = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kNoDetection), opts);
  EXPECT_NE(with.find('*'), std::string::npos);
  EXPECT_EQ(without.find('*'), std::string::npos);
}

TEST(AsciiChart, DeterministicOutput) {
  const std::string a = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kSystemAllowance), window_1000_1130());
  const std::string b = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kSystemAllowance), window_1000_1130());
  EXPECT_EQ(a, b);
}

TEST(AsciiChart, UnicodeGlyphs) {
  AsciiChartOptions opts = window_1000_1130();
  opts.unicode = true;
  const std::string chart = render_ascii_chart(
      figure_timeline(TreatmentPolicy::kDetectOnly), opts);
  EXPECT_NE(chart.find("↑"), std::string::npos);
  EXPECT_NE(chart.find("█"), std::string::npos);
  EXPECT_NE(chart.find("◆"), std::string::npos);
}

TEST(AsciiChart, RejectsDegenerateWindows) {
  const SystemTimeline tl = figure_timeline(TreatmentPolicy::kNoDetection);
  AsciiChartOptions opts;
  opts.width = 4;
  EXPECT_THROW((void)render_ascii_chart(tl, opts), ContractViolation);
  opts = AsciiChartOptions{};
  opts.from = Instant::epoch() + 10_ms;
  opts.to = Instant::epoch() + 10_ms;
  EXPECT_THROW((void)render_ascii_chart(tl, opts), ContractViolation);
}

TEST(SvgChart, WellFormedDocument) {
  const std::string svg = render_svg_chart(
      figure_timeline(TreatmentPolicy::kInstantStop), SvgChartOptions{});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("tau1"), std::string::npos);
  // Stop cross drawn in red.
  EXPECT_NE(svg.find("#cc0000"), std::string::npos);
}

TEST(SvgChart, WindowedRenderOmitsOutsideEvents) {
  SvgChartOptions opts;
  opts.from = Instant::epoch() + 0_ms;
  opts.to = Instant::epoch() + 100_ms;
  const std::string svg = render_svg_chart(
      figure_timeline(TreatmentPolicy::kInstantStop), opts);
  // No stop happens before 100 ms, so no red cross in this window.
  EXPECT_EQ(svg.find("stroke=\"#cc0000\""), std::string::npos);
}

TEST(SvgChart, Deterministic) {
  const SystemTimeline tl = figure_timeline(TreatmentPolicy::kDetectOnly);
  EXPECT_EQ(render_svg_chart(tl, SvgChartOptions{}),
            render_svg_chart(tl, SvgChartOptions{}));
}

}  // namespace
}  // namespace rtft::trace
