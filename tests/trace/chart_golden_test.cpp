// Golden snapshot of the Figure 5 fault-window chart: locks both the
// execution reconstruction and the renderer. If this test breaks, either
// the engine's schedule changed (investigate first!) or the chart format
// was deliberately revised (then update the snapshot).
#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "trace/ascii_chart.hpp"

namespace rtft::trace {
namespace {

using namespace rtft::literals;

constexpr char kFigure5Window[] =
    "      [980ms .. 1140ms, 2ms/col]\n"
    "tau1            ^              *                   v                "
    "                  \n"
    "                ###############X                                    "
    "                  \n"
    "tau2            ^                             *                     "
    "        v         \n"
    "                ...............###############                      "
    "                  \n"
    "tau3            ^                                            *      "
    "        v         \n"
    "                .............................###############       "
    "                   \n";

TEST(ChartGolden, Figure5FaultWindow) {
  core::paper::Scenario s =
      core::paper::figures_scenario(core::TreatmentPolicy::kInstantStop);
  const sched::TaskSet tasks = s.config.tasks;
  core::FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  (void)sys.run();
  const SystemTimeline tl = build_timeline(
      tasks, sys.recorder(), Instant::epoch() + core::paper::kFigureHorizon);

  AsciiChartOptions opts;
  opts.from = Instant::epoch() + 980_ms;
  opts.to = Instant::epoch() + 1140_ms;
  opts.width = 80;
  opts.legend = false;
  const std::string chart = render_ascii_chart(tl, opts);

  // Compare line by line after trimming trailing spaces (they carry no
  // information and make the golden string fragile).
  const auto normalize = [](std::string_view text) {
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t end = text.find('\n', pos);
      if (end == std::string_view::npos) end = text.size();
      std::string line(text.substr(pos, end - pos));
      while (!line.empty() && line.back() == ' ') line.pop_back();
      lines.push_back(std::move(line));
      pos = end + 1;
    }
    return lines;
  };
  const auto actual = normalize(chart);
  const auto expected = normalize(kFigure5Window);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "line " << i;
  }
}

}  // namespace
}  // namespace rtft::trace
