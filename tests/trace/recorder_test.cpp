#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

namespace rtft::trace {
namespace {

using namespace rtft::literals;

TEST(Recorder, RecordsInOrder) {
  Recorder rec;
  rec.record(Instant::epoch() + 1_ms, EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 2_ms, EventKind::kJobStart, 0, 0);
  rec.record(Instant::epoch() + 3_ms, EventKind::kJobEnd, 0, 0, 2'000'000);
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kJobRelease);
  EXPECT_EQ(rec.events()[2].detail, 2'000'000);
}

TEST(Recorder, DefaultsForTasklessEvents) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kTimerFire);
  EXPECT_EQ(rec.events()[0].task, kNoTask);
  EXPECT_EQ(rec.events()[0].job, kNoJob);
}

TEST(Recorder, FiltersByKindAndTask) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch(), EventKind::kJobRelease, 1, 0);
  rec.record(Instant::epoch() + 1_ms, EventKind::kJobEnd, 0, 0);
  EXPECT_EQ(rec.count_of_kind(EventKind::kJobRelease), 2u);
  EXPECT_EQ(rec.count_of_task(0), 2u);
  EXPECT_EQ(rec.count_of_task(7), 0u);

  // The output-iterator form copies matching events in record order.
  std::vector<TraceEvent> releases;
  rec.of_kind(EventKind::kJobRelease, std::back_inserter(releases));
  ASSERT_EQ(releases.size(), 2u);
  EXPECT_EQ(releases[0].task, 0u);
  EXPECT_EQ(releases[1].task, 1u);

  std::vector<TraceEvent> task0;
  rec.of_task(0, std::back_inserter(task0));
  ASSERT_EQ(task0.size(), 2u);
  EXPECT_EQ(task0[1].kind, EventKind::kJobEnd);

  // It also fills preallocated storage and reports the new end.
  std::vector<TraceEvent> fixed(8);
  const auto end = rec.of_task(0, fixed.begin());
  EXPECT_EQ(end - fixed.begin(), 2);
}

TEST(Recorder, ClearEmpties) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

TEST(Recorder, NoReallocationWithinReserve) {
  Recorder rec(128);
  const TraceEvent* before = rec.events().data();
  for (int i = 0; i < 128; ++i) {
    rec.record(Instant::epoch(), EventKind::kJobRelease, 0, i);
  }
  EXPECT_EQ(rec.events().data(), before);
}

TEST(EventKindNames, AllDistinctAndStable) {
  EXPECT_EQ(to_string(EventKind::kJobRelease), "release");
  EXPECT_EQ(to_string(EventKind::kJobEnd), "end");
  EXPECT_EQ(to_string(EventKind::kDetectorFire), "detector-fire");
  EXPECT_EQ(to_string(EventKind::kFaultDetected), "fault-detected");
  EXPECT_EQ(to_string(EventKind::kTaskStopped), "task-stopped");
}

}  // namespace
}  // namespace rtft::trace
