#include "trace/sink.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "trace/recorder.hpp"

namespace rtft::trace {
namespace {

using namespace rtft::literals;

TraceEvent ev(Duration at, EventKind kind, std::uint32_t task = 0,
              std::int64_t job = 0, std::int64_t detail = 0) {
  return TraceEvent{Instant::epoch() + at, job, detail, task, kind};
}

TEST(NullSink, DiscardsEverything) {
  NullSink& sink = NullSink::instance();
  sink.record(ev(1_ms, EventKind::kJobRelease));
  sink.record(Instant::epoch(), EventKind::kJobEnd, 3, 1, 42);
  // Nothing observable — the instance is stateless and shared.
  EXPECT_EQ(&NullSink::instance(), &sink);
}

TEST(CountingSink, MaintainsPerTaskCounters) {
  CountingSink sink;
  sink.record(ev(0_ms, EventKind::kJobRelease, 2, 0));
  sink.record(ev(1_ms, EventKind::kJobStart, 2, 0));
  sink.record(ev(3_ms, EventKind::kJobEnd, 2, 0, (3_ms).count()));
  sink.record(ev(4_ms, EventKind::kJobRelease, 2, 1));
  sink.record(ev(5_ms, EventKind::kJobStart, 2, 1));
  sink.record(ev(6_ms, EventKind::kJobEnd, 2, 1, (2_ms).count()));
  sink.record(ev(7_ms, EventKind::kDeadlineMiss, 2, 1));

  const TaskCounters& c = sink.counters(2);
  EXPECT_EQ(c.released, 2);
  EXPECT_EQ(c.started, 2);
  EXPECT_EQ(c.completed, 2);
  EXPECT_EQ(c.missed, 1);
  EXPECT_EQ(c.max_response, 3_ms);
  EXPECT_EQ(c.last_response, 2_ms);
  EXPECT_FALSE(c.stopped);
  EXPECT_EQ(sink.task_count(), 3u);  // ids 0..2 allocated
  EXPECT_EQ(sink.counters(0).released, 0);
}

TEST(CountingSink, TracksStopsFaultsAndPreemptions) {
  CountingSink sink;
  sink.record(ev(0_ms, EventKind::kDetectorFire, 1, 0));
  sink.record(ev(0_ms, EventKind::kFaultDetected, 1, 0));
  sink.record(ev(1_ms, EventKind::kJobPreempted, 1, 0));
  sink.record(ev(2_ms, EventKind::kJobAborted, 1, 0));
  sink.record(ev(2_ms, EventKind::kTaskStopped, 1, 0));
  const TaskCounters& c = sink.counters(1);
  EXPECT_EQ(c.detector_fires, 1);
  EXPECT_EQ(c.faults_detected, 1);
  EXPECT_EQ(c.preemptions, 1);
  EXPECT_EQ(c.aborted, 1);
  EXPECT_TRUE(c.stopped);
}

TEST(CountingSink, TasklessEventsCountOnlyInKindTotals) {
  CountingSink sink;
  sink.record(ev(1_ms, EventKind::kTimerFire, kNoTask, kNoJob, 7));
  EXPECT_EQ(sink.task_count(), 0u);
  EXPECT_EQ(sink.total(EventKind::kTimerFire), 1);
}

TEST(CountingSink, ResetForgetsEverything) {
  CountingSink sink;
  sink.record(ev(0_ms, EventKind::kJobRelease, 5, 0));
  sink.reset();
  EXPECT_EQ(sink.task_count(), 0u);
  EXPECT_EQ(sink.total(EventKind::kJobRelease), 0);
  sink.record(ev(0_ms, EventKind::kJobRelease, 1, 0));
  EXPECT_EQ(sink.counters(1).released, 1);
}

TEST(CounterBank, AddMatchesCountingSinkRecordExactly) {
  // The bank is the counting core: folding a stream directly must leave
  // the same counters record() does through the virtual seam.
  CounterBank bank;
  CountingSink sink;
  const TraceEvent stream[] = {
      ev(0_ms, EventKind::kJobRelease, 0, 0),
      ev(0_ms, EventKind::kJobStart, 0, 0),
      ev(3_ms, EventKind::kJobEnd, 0, 0, (3_ms).count()),
      ev(4_ms, EventKind::kTimerFire, kNoTask, kNoJob, 2),
      ev(5_ms, EventKind::kDeadlineMiss, 0, 1),
      ev(5_ms, EventKind::kTaskStopped, 0, 1),
  };
  for (const TraceEvent& e : stream) {
    bank.add(e);
    sink.record(e);
  }
  EXPECT_EQ(bank.task_count(), sink.task_count());
  EXPECT_EQ(bank.counters(0).released, sink.counters(0).released);
  EXPECT_EQ(bank.counters(0).completed, sink.counters(0).completed);
  EXPECT_EQ(bank.counters(0).missed, sink.counters(0).missed);
  EXPECT_EQ(bank.counters(0).stopped, sink.counters(0).stopped);
  EXPECT_EQ(bank.counters(0).max_response, sink.counters(0).max_response);
  EXPECT_EQ(bank.total(EventKind::kTimerFire),
            sink.total(EventKind::kTimerFire));
}

TEST(CounterBank, AbsorbingSplitBatchesEqualsOneContiguousStream) {
  // Split one stream at an arbitrary boundary, absorb both deltas: the
  // result must equal a sink that saw the stream per-event. Exercises
  // the merge rules for sums, `stopped`, max_response and the
  // completed-gated last_response override.
  const TraceEvent stream[] = {
      ev(0_ms, EventKind::kJobRelease, 0, 0),
      ev(3_ms, EventKind::kJobEnd, 0, 0, (3_ms).count()),
      ev(4_ms, EventKind::kJobRelease, 0, 1),
      // -- split here: the second batch completes nothing for task 1 --
      ev(5_ms, EventKind::kJobEnd, 0, 1, (1_ms).count()),
      ev(6_ms, EventKind::kJobRelease, 1, 0),
      ev(7_ms, EventKind::kTaskStopped, 1, 0),
  };
  CountingSink per_event;
  for (const TraceEvent& e : stream) per_event.record(e);

  for (std::size_t split = 0; split <= std::size(stream); ++split) {
    CounterBank first;
    CounterBank second;
    for (std::size_t i = 0; i < std::size(stream); ++i) {
      (i < split ? first : second).add(stream[i]);
    }
    CountingSink merged;
    merged.absorb(first);
    merged.absorb(second);
    for (std::uint32_t task = 0; task < 2; ++task) {
      const TaskCounters& a = merged.counters(task);
      const TaskCounters& b = per_event.counters(task);
      EXPECT_EQ(a.released, b.released) << "split " << split;
      EXPECT_EQ(a.completed, b.completed) << "split " << split;
      EXPECT_EQ(a.stopped, b.stopped) << "split " << split;
      EXPECT_EQ(a.max_response, b.max_response) << "split " << split;
      EXPECT_EQ(a.last_response, b.last_response) << "split " << split;
    }
    EXPECT_EQ(merged.total(EventKind::kJobRelease),
              per_event.total(EventKind::kJobRelease));
  }
}

TEST(CounterBank, ClearKeepsNothing) {
  CounterBank bank;
  bank.add(ev(0_ms, EventKind::kJobRelease, 3, 0));
  bank.clear();
  EXPECT_EQ(bank.task_count(), 0u);
  EXPECT_EQ(bank.total(EventKind::kJobRelease), 0);
}

TEST(Sink, RecorderIsAFullFidelitySink) {
  Recorder rec;
  Sink& sink = rec;  // engines only see this interface
  sink.record(ev(1_ms, EventKind::kJobRelease, 0, 0));
  sink.record(Instant::epoch() + 2_ms, EventKind::kJobEnd, 0, 0, 5);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.events()[1].detail, 5);
}

TEST(Sink, CountingMatchesRecorderDerivedCountsOnOneStream) {
  // Feed the same synthetic stream to both sinks; the counters must agree
  // with counts derived from the full trace.
  Recorder rec;
  CountingSink counting;
  const TraceEvent stream[] = {
      ev(0_ms, EventKind::kJobRelease, 0, 0),
      ev(0_ms, EventKind::kJobStart, 0, 0),
      ev(2_ms, EventKind::kJobPreempted, 0, 0),
      ev(2_ms, EventKind::kJobRelease, 1, 0),
      ev(2_ms, EventKind::kJobStart, 1, 0),
      ev(4_ms, EventKind::kJobEnd, 1, 0, (2_ms).count()),
      ev(4_ms, EventKind::kJobResumed, 0, 0),
      ev(5_ms, EventKind::kJobEnd, 0, 0, (5_ms).count()),
  };
  for (const TraceEvent& e : stream) {
    rec.record(e);
    counting.record(e);
  }
  for (std::uint32_t task = 0; task < 2; ++task) {
    std::size_t ends = 0;
    std::vector<TraceEvent> task_events;
    rec.of_task(task, std::back_inserter(task_events));
    for (const TraceEvent& e : task_events) {
      if (e.kind == EventKind::kJobEnd) ++ends;
    }
    EXPECT_EQ(counting.counters(task).completed,
              static_cast<std::int64_t>(ends));
  }
  EXPECT_EQ(counting.counters(0).preemptions, 1);
  EXPECT_EQ(counting.counters(0).max_response, 5_ms);
  EXPECT_EQ(static_cast<std::size_t>(counting.total(EventKind::kJobEnd)),
            rec.count_of_kind(EventKind::kJobEnd));
}

}  // namespace
}  // namespace rtft::trace
