#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "trace/stats.hpp"

namespace rtft::trace {
namespace {

using core::FaultTolerantSystem;
using core::TreatmentPolicy;
using namespace rtft::literals;

constexpr Instant at(std::int64_t ms) {
  return Instant::epoch() + Duration::ms(ms);
}

/// The Figure 5 run, reconstructed.
SystemTimeline fig5_timeline(core::RunReport* report_out = nullptr) {
  core::paper::Scenario s =
      core::paper::figures_scenario(TreatmentPolicy::kInstantStop);
  const sched::TaskSet tasks = s.config.tasks;
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  const core::RunReport report = sys.run();
  if (report_out) *report_out = report;
  return build_timeline(tasks, sys.recorder(),
                        Instant::epoch() + core::paper::kFigureHorizon);
}

TEST(Timeline, JobRecordsCarryReleaseAndDeadline) {
  const SystemTimeline tl = fig5_timeline();
  ASSERT_EQ(tl.tasks.size(), 3u);
  const TaskTimeline& tau1 = tl.tasks[0];
  ASSERT_GE(tau1.jobs.size(), 6u);
  EXPECT_EQ(tau1.jobs[0].release, at(0));
  EXPECT_EQ(tau1.jobs[0].deadline, at(70));
  EXPECT_EQ(tau1.jobs[5].release, at(1000));
  EXPECT_EQ(tau1.jobs[5].deadline, at(1070));
}

TEST(Timeline, FaultyJobAbortedWithSpans) {
  const SystemTimeline tl = fig5_timeline();
  const JobRecord& faulty = tl.tasks[0].jobs[5];
  EXPECT_FALSE(faulty.end.has_value());
  ASSERT_TRUE(faulty.aborted_at.has_value());
  EXPECT_EQ(*faulty.aborted_at, at(1030));
  EXPECT_TRUE(faulty.missed);
  // One uninterrupted execution span [1000, 1030).
  ASSERT_EQ(faulty.spans.size(), 1u);
  EXPECT_EQ(faulty.spans[0].begin, at(1000));
  EXPECT_EQ(faulty.spans[0].end, at(1030));
  EXPECT_FALSE(faulty.response().has_value());
}

TEST(Timeline, CompletedJobHasResponse) {
  const SystemTimeline tl = fig5_timeline();
  const JobRecord& j = tl.tasks[1].jobs[4];  // τ2's window job
  ASSERT_TRUE(j.end.has_value());
  EXPECT_EQ(*j.end, at(1059));
  EXPECT_EQ(j.response(), 59_ms);
  EXPECT_FALSE(j.missed);
}

TEST(Timeline, StoppedTaskMarked) {
  const SystemTimeline tl = fig5_timeline();
  ASSERT_TRUE(tl.tasks[0].stopped_at.has_value());
  EXPECT_EQ(*tl.tasks[0].stopped_at, at(1030));
  EXPECT_FALSE(tl.tasks[1].stopped_at.has_value());
}

TEST(Timeline, DetectorFiresCollected) {
  const SystemTimeline tl = fig5_timeline();
  // τ3's detector fires once (at 1090), its only job in the horizon.
  ASSERT_EQ(tl.tasks[2].detector_fires.size(), 1u);
  EXPECT_EQ(tl.tasks[2].detector_fires[0], at(1090));
  EXPECT_TRUE(tl.tasks[2].fault_detections.empty());
  // τ1 accumulated one fault detection (the injected overrun).
  EXPECT_EQ(tl.tasks[0].fault_detections.size(), 1u);
}

TEST(Timeline, IdleComplementsExecution) {
  const SystemTimeline tl = fig5_timeline();
  // Total execution + idle must equal the window.
  Duration busy;
  for (const TaskTimeline& t : tl.tasks) {
    for (const JobRecord& j : t.jobs) {
      for (const ExecutionSpan& s : j.spans) busy += s.end - s.begin;
    }
  }
  Duration idle;
  for (const ExecutionSpan& s : tl.idle) idle += s.end - s.begin;
  EXPECT_EQ(busy + idle, core::paper::kFigureHorizon);
}

TEST(Stats, Figure5Summary) {
  core::RunReport report;
  const SystemTimeline tl = fig5_timeline(&report);
  const SystemStatsSummary stats = compute_stats(tl);
  ASSERT_EQ(stats.tasks.size(), 3u);
  EXPECT_EQ(stats.tasks[0].name, "tau1");
  EXPECT_EQ(stats.tasks[0].missed, 1);
  EXPECT_EQ(stats.tasks[0].aborted, 1);
  EXPECT_TRUE(stats.tasks[0].stopped);
  EXPECT_EQ(stats.tasks[1].missed, 0);
  EXPECT_EQ(stats.tasks[2].missed, 0);
  EXPECT_EQ(stats.total_misses, 1);
  // Stats agree with the engine's own counters.
  EXPECT_EQ(stats.tasks[0].released, report.tasks[0].stats.released);
  EXPECT_EQ(stats.tasks[1].completed, report.tasks[1].stats.completed);
  // τ1's nominal jobs respond in 29 ms.
  EXPECT_EQ(stats.tasks[0].min_response, 29_ms);
  EXPECT_EQ(stats.tasks[0].max_response, 29_ms);
  // The table renders every task and the footer.
  const std::string table = stats.table();
  EXPECT_NE(table.find("tau3"), std::string::npos);
  EXPECT_NE(table.find("misses 1"), std::string::npos);
}

TEST(Stats, CpuUtilizationIsSane) {
  const SystemStatsSummary stats = compute_stats(fig5_timeline());
  EXPECT_GT(stats.cpu_utilization, 0.05);
  EXPECT_LT(stats.cpu_utilization, 0.60);
}

}  // namespace
}  // namespace rtft::trace
