#include "trace/validator.hpp"

#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"

namespace rtft::trace {
namespace {

using namespace rtft::literals;

sched::TaskSet two_tasks() {
  sched::TaskSet ts;
  ts.add(sched::TaskParams{"hi", 9, 2_ms, 10_ms, 10_ms, 0_ms});
  ts.add(sched::TaskParams{"lo", 1, 3_ms, 20_ms, 20_ms, 0_ms});
  return ts;
}

TEST(Validator, AcceptsARealEngineRun) {
  core::FtSystemConfig cfg;
  cfg.tasks = core::paper::table2_system();
  cfg.policy = core::TreatmentPolicy::kDetectOnly;
  cfg.horizon = 3000_ms;
  const sched::TaskSet ts = cfg.tasks;
  core::FaultTolerantSystem sys(std::move(cfg));
  (void)sys.run();
  const ValidationResult v = validate_trace(ts, sys.recorder());
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.summary(), "trace ok");
}

TEST(Validator, FlagsOutOfOrderDates) {
  Recorder rec;
  rec.record(Instant::epoch() + 5_ms, EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 3_ms, EventKind::kJobRelease, 1, 0);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("backwards"), std::string::npos);
}

TEST(Validator, FlagsSkippedReleaseIndex) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 10_ms, EventKind::kJobRelease, 0, 2);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("expected 1"), std::string::npos);
}

TEST(Validator, FlagsNonPeriodSpacedReleases) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 7_ms, EventKind::kJobRelease, 0, 1);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("period-spaced"), std::string::npos);
}

TEST(Validator, FlagsRunBeforeRelease) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobStart, 0, 0);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("before its release"), std::string::npos);
}

TEST(Validator, FlagsPriorityInversion) {
  // hi releases at 0 and never runs; lo is dispatched: inversion.
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);  // hi
  rec.record(Instant::epoch(), EventKind::kJobRelease, 1, 0);  // lo
  rec.record(Instant::epoch(), EventKind::kJobStart, 1, 0);    // lo runs!
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("higher-priority"), std::string::npos);
}

TEST(Validator, FlagsCpuOverlap) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 1, 0);
  rec.record(Instant::epoch(), EventKind::kJobStart, 1, 0);
  rec.record(Instant::epoch() + 1_ms, EventKind::kJobRelease, 0, 0);
  // hi starts without lo being preempted: two tasks on one CPU.
  rec.record(Instant::epoch() + 1_ms, EventKind::kJobStart, 0, 0);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("handed over"), std::string::npos);
}

TEST(Validator, FlagsReleaseAfterStop) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 1_ms, EventKind::kTaskStopped, 0, 0);
  rec.record(Instant::epoch() + 10_ms, EventKind::kJobRelease, 0, 1);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("after stop"), std::string::npos);
}

TEST(Validator, FlagsCompletionOfNonRunningJob) {
  Recorder rec;
  rec.record(Instant::epoch(), EventKind::kJobRelease, 0, 0);
  rec.record(Instant::epoch() + 2_ms, EventKind::kJobEnd, 0, 0);
  const ValidationResult v = validate_trace(two_tasks(), rec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("non-running"), std::string::npos);
}

}  // namespace
}  // namespace rtft::trace
