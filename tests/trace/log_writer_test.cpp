#include "trace/log_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/ft_system.hpp"
#include "core/paper.hpp"

namespace rtft::trace {
namespace {

using core::FaultTolerantSystem;
using core::TreatmentPolicy;
using namespace rtft::literals;

struct LoggedRun {
  sched::TaskSet tasks;
  std::unique_ptr<FaultTolerantSystem> sys;
};

LoggedRun small_run() {
  LoggedRun r;
  core::paper::Scenario s =
      core::paper::figures_scenario(TreatmentPolicy::kInstantStop);
  s.config.horizon = 1200_ms;
  r.tasks = s.config.tasks;
  r.sys = std::make_unique<FaultTolerantSystem>(std::move(s.config),
                                                std::move(s.faults));
  (void)r.sys->run();
  return r;
}

TEST(TextLog, OneLinePerEventWithNames) {
  const LoggedRun r = small_run();
  const std::string log = text_log_string(r.sys->recorder(), r.tasks);
  EXPECT_NE(log.find("release"), std::string::npos);
  EXPECT_NE(log.find("task-stopped"), std::string::npos);
  EXPECT_NE(log.find("tau1"), std::string::npos);
  // Line count equals event count.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(log.begin(), log.end(), '\n'));
  EXPECT_EQ(lines, r.sys->recorder().size());
}

TEST(Csv, HeaderAndRowShape) {
  const LoggedRun r = small_run();
  const std::string csv = csv_string(r.sys->recorder(), r.tasks);
  EXPECT_EQ(csv.rfind("time_ns,kind,task,job,detail\n", 0), 0u);
  // Every row has exactly 4 commas.
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string_view row(csv.data() + pos, end - pos);
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 4) << row;
    pos = end + 1;
  }
}

TEST(Json, ParsesStructurally) {
  const LoggedRun r = small_run();
  const std::string json = json_string(r.sys->recorder(), r.tasks);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"kind\": \"release\""), std::string::npos);
  EXPECT_NE(json.find("\"task\": \"tau2\""), std::string::npos);
  // Balanced braces: one '{' per event.
  const auto opens =
      std::count(json.begin(), json.end(), '{');
  const auto closes =
      std::count(json.begin(), json.end(), '}');
  EXPECT_EQ(opens, closes);
  EXPECT_EQ(static_cast<std::size_t>(opens), r.sys->recorder().size());
}

TEST(WriteFile, RoundTripsAndReportsErrors) {
  const std::string path = ::testing::TempDir() + "/rtft_log_test.txt";
  write_file(path, "hello\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::remove(path.c_str());
  EXPECT_THROW(write_file("/nonexistent-dir/x/y.txt", "a"),
               ContractViolation);
}

}  // namespace
}  // namespace rtft::trace
