#include "core/underrun.hpp"

#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "sched/response_time.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

std::vector<Duration> table2_wcrts() { return {29_ms, 58_ms, 87_ms}; }

/// Runs Table 2 with tau1's jobs consuming only `actual` instead of 29ms.
UnderrunReport run_with_tau1_cost(Duration actual) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table2_system();
  cfg.policy = TreatmentPolicy::kNoDetection;
  cfg.horizon = 3000_ms;
  FaultPlan faults;
  for (std::int64_t j = 0; j < 16; ++j) {
    faults.add_overrun("tau1", j, actual - 29_ms);
  }
  const sched::TaskSet ts = cfg.tasks;
  FaultTolerantSystem sys(std::move(cfg), std::move(faults));
  (void)sys.run();
  return analyze_underruns(ts, sys.recorder(), table2_wcrts());
}

TEST(Underrun, NominalRunShowsNoOverestimateForTopTask) {
  const UnderrunReport report = run_with_tau1_cost(29_ms);
  EXPECT_EQ(report.tasks[0].max_response, 29_ms);
  EXPECT_EQ(report.tasks[0].overestimate, Duration::zero());
  EXPECT_EQ(report.tasks[0].headroom, Duration::zero());
  EXPECT_TRUE(std::find(report.overestimated_tasks().begin(),
                        report.overestimated_tasks().end(),
                        "tau1") == report.overestimated_tasks().end());
}

TEST(Underrun, OverestimatedTopTaskDetectedExactly) {
  // tau1 really uses 20 ms: overestimate = 9 ms, headroom = 9 ms.
  const UnderrunReport report = run_with_tau1_cost(20_ms);
  EXPECT_EQ(report.tasks[0].max_response, 20_ms);
  EXPECT_EQ(report.tasks[0].overestimate, 9_ms);
  EXPECT_EQ(report.tasks[0].headroom, 9_ms);
  // Lower tasks' responses include interference (49 ms, 78 ms — above
  // their 29 ms declared costs), so only the top task shows a provable
  // overestimate.
  const auto over = report.overestimated_tasks();
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], "tau1");
}

TEST(Underrun, LowerTasksShowHeadroomFromUnusedInterference) {
  const UnderrunReport report = run_with_tau1_cost(20_ms);
  // tau2's worst response shrinks to 20+29 = 49 (bound 58): headroom 9.
  EXPECT_EQ(report.tasks[1].max_response, 49_ms);
  EXPECT_EQ(report.tasks[1].headroom, 9_ms);
}

TEST(Underrun, ReclaimableAllowanceGrowsWithTrimmedCosts) {
  const UnderrunReport report = run_with_tau1_cost(20_ms);
  // Trimming tau1 to 20 ms: tau3's constraint becomes
  // (20+A)+(29+A)+(29+A) <= 120 -> A <= 14 vs 11 before: +3 ms...
  // but tau2 and tau3 observed responses also trim their costs.
  const Duration gain =
      reclaimable_allowance(paper::table2_system(), report);
  EXPECT_GT(gain, Duration::zero());
  // Sanity: bounded by the largest single observed saving.
  EXPECT_LE(gain, 9_ms);
}

TEST(Underrun, NominalRunReclaimsNothing) {
  const UnderrunReport report = run_with_tau1_cost(29_ms);
  EXPECT_EQ(reclaimable_allowance(paper::table2_system(), report),
            Duration::zero());
}

TEST(Underrun, TableRendersAllTasks) {
  const UnderrunReport report = run_with_tau1_cost(20_ms);
  const std::string table = report.table();
  EXPECT_NE(table.find("tau1"), std::string::npos);
  EXPECT_NE(table.find("tau3"), std::string::npos);
  EXPECT_NE(table.find("overest."), std::string::npos);
}

TEST(Underrun, MismatchedBoundsRejected) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table2_system();
  cfg.horizon = 100_ms;
  const sched::TaskSet ts = cfg.tasks;
  FaultTolerantSystem sys(std::move(cfg));
  (void)sys.run();
  EXPECT_THROW(
      (void)analyze_underruns(ts, sys.recorder(), {29_ms}),
      ContractViolation);
}

}  // namespace
}  // namespace rtft::core
