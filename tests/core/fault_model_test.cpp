#include "core/fault_model.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

TEST(FaultPlan, EmptyPlanYieldsNoCostModel) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 0));
}

TEST(FaultPlan, OverrunAppliesOnlyToTargetJob) {
  FaultPlan plan;
  plan.add_overrun("tau1", 5, 40_ms);
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  ASSERT_TRUE(model);
  EXPECT_EQ(model(4), 29_ms);
  EXPECT_EQ(model(5), 69_ms);
  EXPECT_EQ(model(6), 29_ms);
}

TEST(FaultPlan, OtherTasksUnaffected) {
  FaultPlan plan;
  plan.add_overrun("tau1", 5, 40_ms);
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 1));
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 2));
}

TEST(FaultPlan, MultipleFaultsAccumulate) {
  FaultPlan plan;
  plan.add_overrun("tau1", 2, 10_ms);
  plan.add_overrun("tau1", 2, 5_ms);
  plan.add_overrun("tau1", 3, 1_ms);
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  EXPECT_EQ(model(2), 44_ms);
  EXPECT_EQ(model(3), 30_ms);
}

TEST(FaultPlan, UnderrunSupportedAndFlooredAtOneNanosecond) {
  FaultPlan plan;
  plan.add_overrun("tau1", 0, Duration::ms(-10));  // cost 19 ms
  plan.add_overrun("tau1", 1, Duration::ms(-100)); // would go negative
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  EXPECT_EQ(model(0), 19_ms);
  EXPECT_EQ(model(1), 1_ns);
}

TEST(FaultPlan, ValidatesTaskNames) {
  FaultPlan plan;
  plan.add_overrun("ghost", 0, 1_ms);
  EXPECT_THROW(plan.validate_against(paper::table2_system()),
               ContractViolation);
}

TEST(FaultPlan, RejectsInvalidSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.add(FaultSpec{"", 0, 1_ms}), ContractViolation);
  EXPECT_THROW(plan.add(FaultSpec{"t", -1, 1_ms}), ContractViolation);
}

}  // namespace
}  // namespace rtft::core
