#include "core/fault_model.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

TEST(FaultPlan, EmptyPlanYieldsNoCostModel) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 0));
}

TEST(FaultPlan, OverrunAppliesOnlyToTargetJob) {
  FaultPlan plan;
  plan.add_overrun("tau1", 5, 40_ms);
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  ASSERT_TRUE(model);
  EXPECT_EQ(model(4), 29_ms);
  EXPECT_EQ(model(5), 69_ms);
  EXPECT_EQ(model(6), 29_ms);
}

TEST(FaultPlan, OtherTasksUnaffected) {
  FaultPlan plan;
  plan.add_overrun("tau1", 5, 40_ms);
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 1));
  EXPECT_FALSE(plan.cost_model_for(paper::table2_system(), 2));
}

TEST(FaultPlan, MultipleFaultsAccumulate) {
  FaultPlan plan;
  plan.add_overrun("tau1", 2, 10_ms);
  plan.add_overrun("tau1", 2, 5_ms);
  plan.add_overrun("tau1", 3, 1_ms);
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  EXPECT_EQ(model(2), 44_ms);
  EXPECT_EQ(model(3), 30_ms);
}

TEST(FaultPlan, UnderrunSupportedAndFlooredAtOneNanosecond) {
  FaultPlan plan;
  plan.add_overrun("tau1", 0, Duration::ms(-10));  // cost 19 ms
  plan.add_overrun("tau1", 1, Duration::ms(-100)); // would go negative
  const auto model = plan.cost_model_for(paper::table2_system(), 0);
  EXPECT_EQ(model(0), 19_ms);
  EXPECT_EQ(model(1), 1_ns);
}

TEST(FaultPlan, CostSpecForIsNominalWithoutMatchingFaults) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.cost_spec_for(paper::table2_system(), 0).is_nominal());
  FaultPlan other;
  other.add_overrun("tau2", 0, 1_ms);
  EXPECT_TRUE(other.cost_spec_for(paper::table2_system(), 0).is_nominal());
}

TEST(FaultPlan, CostSpecForMatchesTheClosureOracle) {
  // Single-job faults flatten to kFixedOverrunAtJob; multi-job plans
  // fall back to kCustom wrapping cost_model_for. Either way the
  // resolved per-job costs must equal the oracle closure's.
  const sched::TaskSet& ts = paper::table2_system();
  const Duration nominal = ts[0].cost;
  FaultPlan single;
  single.add_overrun("tau1", 5, 40_ms);
  single.add_overrun("tau1", 5, 2_ms);  // accumulates on the same job
  FaultPlan multi;
  multi.add_overrun("tau1", 1, 10_ms);
  multi.add_overrun("tau1", 4, Duration::ms(-100));  // floors at 1 ns
  for (const FaultPlan* plan : {&single, &multi}) {
    const rt::CostSpec spec = plan->cost_spec_for(ts, 0);
    const rt::CostModel oracle = plan->cost_model_for(ts, 0);
    ASSERT_TRUE(oracle);
    for (std::int64_t job = 0; job <= 8; ++job) {
      EXPECT_EQ(spec.resolve(nominal, job), oracle(job)) << "job " << job;
    }
  }
  EXPECT_EQ(single.cost_spec_for(ts, 0).kind, rt::CostKind::kFixedOverrunAtJob);
  EXPECT_EQ(multi.cost_spec_for(ts, 0).kind, rt::CostKind::kCustom);
}

TEST(FaultPlan, ValidatesTaskNames) {
  FaultPlan plan;
  plan.add_overrun("ghost", 0, 1_ms);
  EXPECT_THROW(plan.validate_against(paper::table2_system()),
               ContractViolation);
}

TEST(FaultPlan, RejectsInvalidSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.add(FaultSpec{"", 0, 1_ms}), ContractViolation);
  EXPECT_THROW(plan.add(FaultSpec{"t", -1, 1_ms}), ContractViolation);
}

}  // namespace
}  // namespace rtft::core
