#include "core/ft_system.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

TEST(FtSystem, AdmissionControlRefusesInfeasibleSets) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table1_system();  // infeasible (τ2 misses)
  cfg.policy = TreatmentPolicy::kNoDetection;
  FaultTolerantSystem sys(std::move(cfg));
  const RunReport report = sys.run();
  EXPECT_FALSE(report.admitted);
  EXPECT_FALSE(report.executed);
  EXPECT_THROW((void)sys.engine(), ContractViolation);
}

TEST(FtSystem, RunInfeasibleOverrideExecutesAnyway) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table1_system();
  cfg.policy = TreatmentPolicy::kNoDetection;
  cfg.horizon = 12_ms;
  cfg.run_infeasible = true;
  FaultTolerantSystem sys(std::move(cfg));
  const RunReport report = sys.run();
  EXPECT_FALSE(report.admitted);
  EXPECT_TRUE(report.executed);
  // τ2 misses every deadline, as the analysis predicted.
  EXPECT_GT(report.tasks[1].stats.missed, 0);
}

TEST(FtSystem, NominalRunIsCleanUnderEveryPolicy) {
  for (TreatmentPolicy policy :
       {TreatmentPolicy::kNoDetection, TreatmentPolicy::kDetectOnly,
        TreatmentPolicy::kInstantStop, TreatmentPolicy::kEquitableAllowance,
        TreatmentPolicy::kSystemAllowance}) {
    FtSystemConfig cfg;
    cfg.tasks = paper::table2_system();
    cfg.policy = policy;
    cfg.horizon = 3000_ms;  // one full hyperperiod
    FaultTolerantSystem sys(std::move(cfg));
    const RunReport report = sys.run();
    ASSERT_TRUE(report.admitted);
    EXPECT_EQ(report.total_misses(), 0) << to_string(policy);
    for (const auto& t : report.tasks) {
      EXPECT_FALSE(t.stats.stopped) << to_string(policy) << " " << t.name;
      EXPECT_EQ(t.faults_detected, 0) << to_string(policy) << " " << t.name;
    }
  }
}

TEST(FtSystem, StopModeJobKeepsFaultyTaskAlive) {
  paper::Scenario s = paper::figures_scenario(TreatmentPolicy::kInstantStop);
  s.config.stop_mode = rt::StopMode::kJob;
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  EXPECT_FALSE(report.tasks[0].stats.stopped);
  EXPECT_EQ(report.tasks[0].stats.aborted, 1);
  // τ1 keeps releasing jobs after the aborted one: 0..5 plus 1200, 1400,
  // 1600, 1800, 2000.
  EXPECT_EQ(report.tasks[0].stats.released, 11);
}

TEST(FtSystem, StopPollLatencyShiftsTheStop) {
  paper::Scenario s = paper::figures_scenario(TreatmentPolicy::kInstantStop);
  s.config.stop_poll_latency = 3_ms;  // §4.1's "a few milliseconds"
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  Instant abort = Instant::never();
  for (const auto& e : sys.recorder().events()) {
    if (e.kind == trace::EventKind::kJobAborted && e.task == 0) {
      abort = e.time;
    }
  }
  EXPECT_EQ(abort, Instant::epoch() + 1033_ms);  // 1030 + 3
}

TEST(FtSystem, FaultOnUnknownTaskRejectedAtConstruction) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table2_system();
  FaultPlan faults;
  faults.add_overrun("ghost", 0, 1_ms);
  EXPECT_THROW(FaultTolerantSystem(std::move(cfg), std::move(faults)),
               ContractViolation);
}

TEST(FtSystem, RunsExactlyOnce) {
  FtSystemConfig cfg;
  cfg.tasks = paper::table2_system();
  cfg.horizon = 100_ms;
  FaultTolerantSystem sys(std::move(cfg));
  (void)sys.run();
  EXPECT_THROW((void)sys.run(), ContractViolation);
}

TEST(FtSystem, EmptyTaskSetRejected) {
  FtSystemConfig cfg;
  EXPECT_THROW(FaultTolerantSystem{std::move(cfg)}, ContractViolation);
}

TEST(FtSystem, DetectorOverheadAblation) {
  // §6.2: "the more tasks in the system, the more sensors, hence the
  // higher the influence of this overrun". A small fire cost must not
  // break the nominal Table 2 system (its slack absorbs it).
  FtSystemConfig cfg;
  cfg.tasks = paper::table2_system();
  cfg.policy = TreatmentPolicy::kDetectOnly;
  cfg.horizon = 3000_ms;
  cfg.detector.fire_cost = 500_us;
  FaultTolerantSystem sys(std::move(cfg));
  const RunReport report = sys.run();
  EXPECT_EQ(report.total_misses(), 0);
}

}  // namespace
}  // namespace rtft::core
