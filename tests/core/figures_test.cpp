// End-to-end reproduction of the paper's Figures 3–7 (§6): the Table 2
// system with a +40 ms overrun injected into τ1's job released at
// t = 1000 ms, executed under each treatment policy. Every assertion
// below is a key date or outcome stated or implied by the paper's
// narration; EXPERIMENTS.md records the full mapping.
#include <gtest/gtest.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"

namespace rtft::core {
namespace {

using trace::EventKind;
using namespace rtft::literals;

constexpr Instant at(std::int64_t ms) {
  return Instant::epoch() + Duration::ms(ms);
}

/// Completion date of `task`'s job `job`, or Instant::never().
Instant end_of(const trace::Recorder& rec, std::uint32_t task,
               std::int64_t job) {
  for (const auto& e : rec.events()) {
    if (e.kind == EventKind::kJobEnd && e.task == task && e.job == job) {
      return e.time;
    }
  }
  return Instant::never();
}

Instant abort_of(const trace::Recorder& rec, std::uint32_t task) {
  for (const auto& e : rec.events()) {
    if (e.kind == EventKind::kJobAborted && e.task == task) return e.time;
  }
  return Instant::never();
}

RunReport run_figure(TreatmentPolicy policy, FaultTolerantSystem** out_sys,
                     Duration overrun = paper::kDefaultOverrun) {
  paper::Scenario s = paper::figures_scenario(policy, overrun);
  auto* sys = new FaultTolerantSystem(std::move(s.config),
                                      std::move(s.faults));
  *out_sys = sys;
  return sys->run();
}

class Figure : public ::testing::Test {
 protected:
  ~Figure() override { delete sys_; }
  RunReport run(TreatmentPolicy policy,
                Duration overrun = paper::kDefaultOverrun) {
    return run_figure(policy, &sys_, overrun);
  }
  const trace::Recorder& rec() const { return sys_->recorder(); }
  FaultTolerantSystem* sys_ = nullptr;
};

// ---------------------------------------------------------------------------
// Figure 3 — no detection: τ1 and τ2 end before their deadlines, τ3
// misses. "It is the case we wish to avoid."
// ---------------------------------------------------------------------------

TEST_F(Figure, Fig3NoDetection) {
  const RunReport report = run(TreatmentPolicy::kNoDetection);
  ASSERT_TRUE(report.admitted);
  ASSERT_TRUE(report.executed);

  // The faulty job runs 69 ms: [1000, 1069) — before τ1's deadline 1070.
  EXPECT_EQ(end_of(rec(), 0, paper::kFaultyJobIndex), at(1069));
  // τ2's coincident job is pushed to [1069, 1098) — meets 1120.
  EXPECT_EQ(end_of(rec(), 1, 4), at(1098));
  // τ3's job lands at [1098, 1127) — misses its 1120 deadline.
  EXPECT_EQ(end_of(rec(), 2, 0), at(1127));

  EXPECT_EQ(report.tasks[0].stats.missed, 0);
  EXPECT_EQ(report.tasks[1].stats.missed, 0);
  EXPECT_EQ(report.tasks[2].stats.missed, 1);
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau3"});
  // Nothing was detected or stopped.
  EXPECT_EQ(rec().count_of_kind(EventKind::kDetectorFire), 0u);
  for (const auto& t : report.tasks) EXPECT_FALSE(t.stats.stopped);
}

// ---------------------------------------------------------------------------
// Figure 4 — detection without treatment: same execution, detectors fire
// at the quantized WCRTs (30/60/90 → delays of 1/2/3 ms, §6.2).
// ---------------------------------------------------------------------------

TEST_F(Figure, Fig4DetectionWithoutTreatment) {
  const RunReport report = run(TreatmentPolicy::kDetectOnly);
  ASSERT_TRUE(report.executed);

  // Quantization reproduces the paper's observed detector delays.
  EXPECT_EQ(*report.tasks[0].quantized_threshold, 30_ms);  // 29 + 1
  EXPECT_EQ(*report.tasks[1].quantized_threshold, 60_ms);  // 58 + 2
  EXPECT_EQ(*report.tasks[2].quantized_threshold, 90_ms);  // 87 + 3

  // The execution is identical to Figure 3.
  EXPECT_EQ(end_of(rec(), 0, paper::kFaultyJobIndex), at(1069));
  EXPECT_EQ(end_of(rec(), 1, 4), at(1098));
  EXPECT_EQ(end_of(rec(), 2, 0), at(1127));
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau3"});

  // All three tasks are flagged in the window: τ1 at 1030 (its own
  // fault), τ2 at 1060 and τ3 at 1090 (inherited lateness).
  std::vector<std::pair<Instant, std::uint32_t>> faults;
  for (const auto& e : rec().events()) {
    if (e.kind == EventKind::kFaultDetected) faults.push_back({e.time, e.task});
  }
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_EQ(faults[0], (std::pair<Instant, std::uint32_t>{at(1030), 0}));
  EXPECT_EQ(faults[1], (std::pair<Instant, std::uint32_t>{at(1060), 1}));
  EXPECT_EQ(faults[2], (std::pair<Instant, std::uint32_t>{at(1090), 2}));
  // Nobody was stopped.
  for (const auto& t : report.tasks) EXPECT_FALSE(t.stats.stopped);
}

// ---------------------------------------------------------------------------
// Figure 5 — instantaneous stop: τ1 stopped at its (quantized) WCRT;
// only τ1 misses; τ2 and τ3 finish early, leaving the CPU free.
// ---------------------------------------------------------------------------

TEST_F(Figure, Fig5InstantStop) {
  const RunReport report = run(TreatmentPolicy::kInstantStop);
  ASSERT_TRUE(report.executed);

  // τ1 stopped when its detector fires at 1000 + 30.
  EXPECT_EQ(abort_of(rec(), 0), at(1030));
  EXPECT_TRUE(report.tasks[0].stats.stopped);
  EXPECT_EQ(report.tasks[0].stats.aborted, 1);

  // τ2 and τ3 then run back to back and meet their deadlines.
  EXPECT_EQ(end_of(rec(), 1, 4), at(1059));
  EXPECT_EQ(end_of(rec(), 2, 0), at(1088));
  EXPECT_EQ(report.tasks[1].stats.missed, 0);
  EXPECT_EQ(report.tasks[2].stats.missed, 0);

  // "The only task to miss its deadline is task τ1."
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau1"});
  EXPECT_EQ(report.tasks[0].stats.missed, 1);

  // τ2's job ends at 1059, one millisecond before its detector (1060):
  // no fault is reported for it.
  EXPECT_EQ(report.tasks[1].faults_detected, 0);
  EXPECT_EQ(report.tasks[2].faults_detected, 0);
  EXPECT_EQ(report.tasks[0].faults_detected, 1);
}

// ---------------------------------------------------------------------------
// Figure 6 — equitable allowance (A = 11): τ1 stopped at WCRT+11 = 40
// after release; it got more time than under instant stop; τ2 and τ3
// keep their (unconsumed) allowances and meet their deadlines.
// ---------------------------------------------------------------------------

TEST_F(Figure, Fig6EquitableAllowance) {
  const RunReport report = run(TreatmentPolicy::kEquitableAllowance);
  ASSERT_TRUE(report.executed);

  EXPECT_EQ(report.plan.allowance, 11_ms);
  // Table 3 thresholds are exact multiples of 10 ms: no quantization
  // error.
  EXPECT_EQ(*report.tasks[0].quantized_threshold, 40_ms);
  EXPECT_EQ(*report.tasks[1].quantized_threshold, 80_ms);
  EXPECT_EQ(*report.tasks[2].quantized_threshold, 120_ms);

  // τ1 stopped at 1040 — later than Figure 5's 1030.
  EXPECT_EQ(abort_of(rec(), 0), at(1040));
  EXPECT_TRUE(report.tasks[0].stats.stopped);

  // τ2: [1040, 1069); τ3: [1069, 1098). Both meet their deadlines.
  EXPECT_EQ(end_of(rec(), 1, 4), at(1069));
  EXPECT_EQ(end_of(rec(), 2, 0), at(1098));
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau1"});
}

// ---------------------------------------------------------------------------
// Figure 7 — system allowance (B = 33) granted to the first faulty task:
// τ1 is stopped ~33 ms after its WCRT; τ2 and τ3 finish just before
// their deadlines.
// ---------------------------------------------------------------------------

TEST_F(Figure, Fig7SystemAllowanceQuantized) {
  const RunReport report = run(TreatmentPolicy::kSystemAllowance);
  ASSERT_TRUE(report.executed);

  EXPECT_EQ(report.plan.allowance, 33_ms);
  // Raw thresholds 62/91/120 quantize to 60/90/120 on the 10 ms grid.
  EXPECT_EQ(*report.tasks[0].quantized_threshold, 60_ms);
  EXPECT_EQ(*report.tasks[1].quantized_threshold, 90_ms);
  EXPECT_EQ(*report.tasks[2].quantized_threshold, 120_ms);

  EXPECT_EQ(abort_of(rec(), 0), at(1060));
  EXPECT_EQ(end_of(rec(), 1, 4), at(1089));
  // τ3 completes at 1118 — two milliseconds before its 1120 deadline:
  // "they both finish just before their deadlines".
  EXPECT_EQ(end_of(rec(), 2, 0), at(1118));
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau1"});
}

TEST_F(Figure, Fig7SystemAllowanceExactTimers) {
  // With an ideal (unquantized) timer the paper's arithmetic is exact:
  // τ1 stopped at 1062 = release + WCRT + B; τ2 ends 1091; τ3 ends
  // exactly at its deadline, 1120.
  paper::Scenario s = paper::figures_scenario(
      TreatmentPolicy::kSystemAllowance, paper::kDefaultOverrun,
      rt::Quantizer{Duration::ms(10), rt::Rounding::kNone});
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);

  EXPECT_EQ(abort_of(sys.recorder(), 0), at(1062));
  EXPECT_EQ(end_of(sys.recorder(), 1, 4), at(1091));
  EXPECT_EQ(end_of(sys.recorder(), 2, 0), at(1120));
  // Completing exactly at the deadline is a meet, not a miss.
  EXPECT_EQ(report.tasks[2].stats.missed, 0);
  EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau1"});
}

// ---------------------------------------------------------------------------
// Cross-figure invariants.
// ---------------------------------------------------------------------------

TEST_F(Figure, FaultyTaskGetsStrictlyMoreTimeUpThePolicyLadder) {
  // §6.4: under the equitable allowance τ1 "had more time to be carried
  // out than in the previous case"; under the system allowance more
  // still. Stop dates: 1030 < 1040 < 1060.
  FaultTolerantSystem* s5 = nullptr;
  FaultTolerantSystem* s6 = nullptr;
  FaultTolerantSystem* s7 = nullptr;
  run_figure(TreatmentPolicy::kInstantStop, &s5);
  run_figure(TreatmentPolicy::kEquitableAllowance, &s6);
  run_figure(TreatmentPolicy::kSystemAllowance, &s7);
  const Instant stop5 = abort_of(s5->recorder(), 0);
  const Instant stop6 = abort_of(s6->recorder(), 0);
  const Instant stop7 = abort_of(s7->recorder(), 0);
  EXPECT_LT(stop5, stop6);
  EXPECT_LT(stop6, stop7);
  delete s5;
  delete s6;
  delete s7;
}

TEST_F(Figure, OverrunWithinSystemAllowanceHarmsNobody) {
  // An overrun of 33 ms (== B) keeps even τ1 within its stop threshold:
  // the job completes at 1062 == the exact threshold; with quantization
  // to 60 the detector at 1060 still catches it mid-run, so use the
  // paper-exact timer to verify the boundary semantics.
  paper::Scenario s = paper::figures_scenario(
      TreatmentPolicy::kSystemAllowance, 33_ms,
      rt::Quantizer{Duration::ms(10), rt::Rounding::kNone});
  FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
  const RunReport report = sys.run();
  // Completion at 1000 + 29 + 33 = 1062, exactly the threshold fire
  // date: completion wins the tie, no stop, no miss anywhere.
  EXPECT_EQ(report.total_misses(), 0);
  for (const auto& t : report.tasks) EXPECT_FALSE(t.stats.stopped);
}

TEST_F(Figure, SummaryIsReadable) {
  const RunReport report = run(TreatmentPolicy::kInstantStop);
  const std::string s = report.summary();
  EXPECT_NE(s.find("instant-stop"), std::string::npos);
  EXPECT_NE(s.find("tau1"), std::string::npos);
  EXPECT_NE(s.find("STOPPED"), std::string::npos);
}

}  // namespace
}  // namespace rtft::core
