#include "core/treatment.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

TEST(PolicyNames, RoundTrip) {
  for (TreatmentPolicy p :
       {TreatmentPolicy::kNoDetection, TreatmentPolicy::kDetectOnly,
        TreatmentPolicy::kInstantStop, TreatmentPolicy::kEquitableAllowance,
        TreatmentPolicy::kSystemAllowance}) {
    EXPECT_EQ(treatment_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW((void)treatment_policy_from_string("bogus"),
               ContractViolation);
}

TEST(TreatmentPlan, NoDetectionInstallsNothing) {
  const TreatmentPlan plan = make_treatment_plan(
      paper::table2_system(), TreatmentPolicy::kNoDetection);
  EXPECT_FALSE(plan.detects);
  EXPECT_FALSE(plan.stops);
  EXPECT_TRUE(plan.thresholds.empty());
}

TEST(TreatmentPlan, DetectOnlyUsesNominalWcrtsAndDoesNotStop) {
  const TreatmentPlan plan = make_treatment_plan(
      paper::table2_system(), TreatmentPolicy::kDetectOnly);
  EXPECT_TRUE(plan.detects);
  EXPECT_FALSE(plan.stops);
  EXPECT_EQ(plan.thresholds, (std::vector<Duration>{29_ms, 58_ms, 87_ms}));
}

TEST(TreatmentPlan, InstantStopUsesNominalWcrts) {
  const TreatmentPlan plan = make_treatment_plan(
      paper::table2_system(), TreatmentPolicy::kInstantStop);
  EXPECT_TRUE(plan.detects);
  EXPECT_TRUE(plan.stops);
  EXPECT_EQ(plan.thresholds, (std::vector<Duration>{29_ms, 58_ms, 87_ms}));
  EXPECT_EQ(plan.allowance, Duration::zero());
}

TEST(TreatmentPlan, EquitableAllowanceMatchesTable3) {
  const TreatmentPlan plan = make_treatment_plan(
      paper::table2_system(), TreatmentPolicy::kEquitableAllowance);
  EXPECT_EQ(plan.allowance, 11_ms);
  EXPECT_EQ(plan.thresholds, (std::vector<Duration>{40_ms, 80_ms, 120_ms}));
}

TEST(TreatmentPlan, SystemAllowanceGrantsWholeBudget) {
  const TreatmentPlan plan = make_treatment_plan(
      paper::table2_system(), TreatmentPolicy::kSystemAllowance);
  EXPECT_EQ(plan.allowance, 33_ms);
  EXPECT_EQ(plan.thresholds, (std::vector<Duration>{62_ms, 91_ms, 120_ms}));
}

TEST(TreatmentPlan, NominalWcrtsAlwaysReported) {
  for (TreatmentPolicy p :
       {TreatmentPolicy::kDetectOnly, TreatmentPolicy::kInstantStop,
        TreatmentPolicy::kEquitableAllowance,
        TreatmentPolicy::kSystemAllowance}) {
    const TreatmentPlan plan = make_treatment_plan(paper::table2_system(), p);
    EXPECT_EQ(plan.nominal_wcrt,
              (std::vector<Duration>{29_ms, 58_ms, 87_ms}));
  }
}

TEST(TreatmentPlan, InfeasibleSetRejectedForThresholdPolicies) {
  EXPECT_THROW((void)make_treatment_plan(paper::table1_system(),
                                         TreatmentPolicy::kInstantStop),
               ContractViolation);
  // No thresholds needed: fine even for an infeasible set.
  EXPECT_NO_THROW((void)make_treatment_plan(paper::table1_system(),
                                            TreatmentPolicy::kNoDetection));
}

}  // namespace
}  // namespace rtft::core
