#include "core/polling_server.hpp"

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "sched/aperiodic.hpp"
#include "sched/feasibility.hpp"
#include "sched/response_time.hpp"

namespace rtft::core {
namespace {

using namespace rtft::literals;

rt::EngineOptions horizon_opts(Duration h) {
  rt::EngineOptions o;
  o.horizon = Instant::epoch() + h;
  return o;
}

/// A server with 10 ms budget every 50 ms at top priority.
sched::TaskParams server_params() {
  return sched::TaskParams{"server", 30, 10_ms, 50_ms, 50_ms,
                           Duration::zero()};
}

TEST(AperiodicBounds, PollingServerResponseBound) {
  // cost 25, budget 10, period 50, server WCRT 10:
  // ceil(25/10) = 3 polls -> 3*50 + 10 = 160.
  EXPECT_EQ(
      sched::polling_server_response_bound(25_ms, 10_ms, 50_ms, 10_ms),
      160_ms);
  // A job no larger than one budget needs one poll.
  EXPECT_EQ(sched::polling_server_response_bound(10_ms, 10_ms, 50_ms, 10_ms),
            60_ms);
  EXPECT_EQ(sched::polling_server_response_bound(1_ns, 10_ms, 50_ms, 10_ms),
            60_ms);
}

TEST(AperiodicBounds, MaxCostWithinDeadlineInvertsTheBound) {
  const Duration cs = 10_ms;
  const Duration ts = 50_ms;
  const Duration wcrt = 10_ms;
  const Duration max160 = sched::max_aperiodic_cost_within(160_ms, cs, ts, wcrt);
  EXPECT_EQ(max160, 30_ms);  // 3 polls fit: 3*50+10 = 160
  EXPECT_LE(sched::polling_server_response_bound(max160, cs, ts, wcrt),
            160_ms);
  // One more nanosecond of cost needs a fourth poll and busts 160.
  EXPECT_GT(sched::polling_server_response_bound(max160 + 1_ns, cs, ts, wcrt),
            160_ms);
  // Deadlines too short for even one poll return zero.
  EXPECT_EQ(sched::max_aperiodic_cost_within(60_ms, cs, ts, wcrt),
            Duration::zero());
}

TEST(PollingServer, SmallJobServedAtFirstPoll) {
  rt::Engine eng(horizon_opts(300_ms));
  PollingServer server(eng, server_params());
  const AperiodicId id = server.submit("req", 8_ms);
  eng.run();
  const AperiodicJobReport& r = server.report(id);
  ASSERT_TRUE(r.completion.has_value());
  // Arrives at 0, first poll at 0 serves 8 ms: done at 8 ms.
  EXPECT_EQ(*r.completion, Instant::epoch() + 8_ms);
  EXPECT_EQ(server.completed(), 1u);
  EXPECT_EQ(server.pending(), 0u);
}

TEST(PollingServer, LargeJobSpansMultiplePolls) {
  rt::Engine eng(horizon_opts(300_ms));
  PollingServer server(eng, server_params());
  const AperiodicId id = server.submit("big", 25_ms);
  eng.run();
  const AperiodicJobReport& r = server.report(id);
  ASSERT_TRUE(r.completion.has_value());
  // Polls at 0 (10), 50 (10), 100 (5): completes at 105 ms.
  EXPECT_EQ(*r.completion, Instant::epoch() + 105_ms);
  // Well within the analysis bound.
  EXPECT_LE(*r.response(), sched::polling_server_response_bound(
                               25_ms, 10_ms, 50_ms, 10_ms));
}

TEST(PollingServer, FifoAcrossJobs) {
  rt::Engine eng(horizon_opts(400_ms));
  PollingServer server(eng, server_params());
  const AperiodicId a = server.submit("a", 15_ms);
  const AperiodicId b = server.submit("b", 5_ms);
  eng.run();
  // a: polls at 0 (10 ms) + 50 (its last 5 ms); b: the remaining 5 ms of
  // the same poll. Completions are attributed at the server-job end, so
  // both bear the date 60 ms — FIFO order shows in the id sequence and
  // never inverts the dates.
  EXPECT_EQ(*server.report(a).completion, Instant::epoch() + 60_ms);
  EXPECT_EQ(*server.report(b).completion, Instant::epoch() + 60_ms);
  EXPECT_LE(*server.report(a).completion, *server.report(b).completion);

  // With a third job that cannot fit in the same poll, strict ordering
  // across polls is visible.
  rt::Engine eng2(horizon_opts(400_ms));
  PollingServer server2(eng2, server_params());
  const AperiodicId c = server2.submit("c", 12_ms);
  const AperiodicId d = server2.submit("d", 12_ms);
  eng2.run();
  // c: 0(10) + 50(2) -> 52...60 window; d: 50(8) + 100(4) -> 104 window.
  EXPECT_LT(*server2.report(c).completion, *server2.report(d).completion);
}

TEST(PollingServer, ArrivalAfterPollWaitsForNextPeriod) {
  rt::Engine eng(horizon_opts(300_ms));
  PollingServer server(eng, server_params());
  AperiodicId id = 0;
  eng.add_one_shot_timer(Instant::epoch() + 20_ms, [&](rt::Engine&) {
    id = server.submit("late", 6_ms);
  });
  eng.run();
  // Poll at 0 found nothing; job arrives at 20; next poll at 50 serves
  // it: completion 56 ms, response 36 ms <= bound 60.
  const AperiodicJobReport& r = server.report(id);
  ASSERT_TRUE(r.completion.has_value());
  EXPECT_EQ(*r.completion, Instant::epoch() + 56_ms);
  EXPECT_LE(*r.response(),
            sched::polling_server_response_bound(6_ms, 10_ms, 50_ms, 10_ms));
}

TEST(PollingServer, EmptyPollsConsumeNothingVisible) {
  // A lower-priority periodic task sees an idle server as free CPU.
  rt::Engine eng(horizon_opts(200_ms));
  PollingServer server(eng, server_params());
  const rt::TaskHandle other = eng.add_task(
      sched::TaskParams{"work", 10, 30_ms, 100_ms, 100_ms, 0_ms});
  eng.run();
  // The 1 ns poll stubs are invisible at ms scale.
  EXPECT_EQ(eng.stats(other).missed, 0);
  EXPECT_EQ(eng.stats(other).max_response, Duration::ns(30'000'001));
}

TEST(PollingServer, DeadlineMissRecordedForSoftDeadlines) {
  rt::Engine eng(horizon_opts(400_ms));
  PollingServer server(eng, server_params());
  // 25 ms of work cannot finish within 70 ms (bound 160) if another job
  // is already queued ahead of it.
  const AperiodicId first = server.submit("first", 20_ms);
  const AperiodicId tight = server.submit("tight", 15_ms, 70_ms);
  eng.run();
  EXPECT_FALSE(server.report(first).deadline_missed);  // no deadline given
  ASSERT_TRUE(server.report(tight).completion.has_value());
  // first: 0(10)+50(10)=done 60; tight: 100(10)+150(5)=done 155 > 70.
  EXPECT_TRUE(server.report(tight).deadline_missed);
}

TEST(PollingServer, ServerAdmitsLikeAPeriodicTask) {
  // The server participates in admission control as a plain task.
  sched::TaskSet ts;
  ts.add(server_params());
  ts.add(sched::TaskParams{"work", 10, 30_ms, 100_ms, 100_ms, 0_ms});
  const sched::FeasibilityReport report = sched::analyze(ts);
  EXPECT_TRUE(report.feasible);
  // Server WCRT = its budget (top priority).
  EXPECT_EQ(report.tasks[0].wcrt, 10_ms);
}

TEST(PollingServer, DetectorWatchesTheServer) {
  // A WCRT-overrun detector on the server task: with only small
  // aperiodic jobs the server never overruns its 10 ms WCRT.
  rt::Engine eng(horizon_opts(500_ms));
  PollingServer server(eng, server_params());
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {server.task()}, {10_ms}, cfg, {});
  for (int i = 0; i < 4; ++i) {
    eng.add_one_shot_timer(Instant::epoch() + Duration::ms(30 * (i + 1)),
                           [&](rt::Engine&) {
                             server.submit("j", 4_ms);
                           });
  }
  eng.run();
  EXPECT_EQ(bank.total_faults(), 0);
  EXPECT_EQ(server.pending(), 0u);
}

TEST(PollingServer, RejectsNonPositiveCost) {
  rt::Engine eng(horizon_opts(100_ms));
  PollingServer server(eng, server_params());
  EXPECT_THROW((void)server.submit("bad", Duration::zero()),
               ContractViolation);
  EXPECT_THROW((void)server.report(99), ContractViolation);
}

}  // namespace
}  // namespace rtft::core
