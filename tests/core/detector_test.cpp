#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "core/paper.hpp"
#include "sched/response_time.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::core {
namespace {

using trace::EventKind;
using namespace rtft::literals;

rt::EngineOptions horizon_opts(Duration h) {
  rt::EngineOptions o;
  o.horizon = Instant::epoch() + h;
  return o;
}

rt::EngineOptions traced_opts(Duration h, trace::Sink& sink) {
  rt::EngineOptions o = horizon_opts(h);
  o.sink = &sink;
  return o;
}

std::vector<trace::TraceEvent> events_of_kind(const trace::Recorder& rec,
                                              EventKind kind) {
  std::vector<trace::TraceEvent> out;
  rec.of_kind(kind, std::back_inserter(out));
  return out;
}

TEST(DetectorBank, QuantizesThresholdsLikeThePaper) {
  rt::Engine eng(horizon_opts(100_ms));
  const auto ts = paper::table2_system();
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : ts) handles.push_back(eng.add_task(t));
  DetectorBank bank(eng, handles, {29_ms, 58_ms, 87_ms}, DetectorConfig{},
                    {});
  EXPECT_EQ(bank.quantized_threshold(0), 30_ms);
  EXPECT_EQ(bank.quantized_threshold(1), 60_ms);
  EXPECT_EQ(bank.quantized_threshold(2), 90_ms);
  EXPECT_EQ(bank.raw_threshold(0), 29_ms);
}

TEST(DetectorBank, NominalRunRaisesNoFault) {
  // A CountingSink suffices here: the test only needs event counts.
  trace::CountingSink sink;
  rt::Engine eng(traced_opts(2000_ms, sink));
  const auto ts = paper::table2_system();
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : ts) handles.push_back(eng.add_task(t));
  DetectorBank bank(eng, handles, {29_ms, 58_ms, 87_ms}, DetectorConfig{},
                    {});
  eng.run();
  EXPECT_EQ(bank.total_faults(), 0);
  EXPECT_EQ(sink.total(EventKind::kFaultDetected), 0);
  // But the detectors did fire regularly.
  EXPECT_GT(sink.total(EventKind::kDetectorFire), 10);
}

TEST(DetectorBank, LateJobDetectedAndHandlerRuns) {
  rt::Engine eng(horizon_opts(100_ms));
  sched::TaskParams p{"t", 5, 10_ms, 50_ms, 50_ms, Duration::zero()};
  const rt::TaskHandle h =
      eng.add_task(p, [](std::int64_t) { return 25_ms; });
  std::vector<std::int64_t> faulted_jobs;
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {10_ms}, cfg,
                    [&](rt::Engine&, rt::TaskHandle, std::int64_t job) {
                      faulted_jobs.push_back(job);
                    });
  eng.run();
  // Jobs 0 (release 0, done 25) and 1 (release 50, done 75) both run past
  // the 10 ms threshold.
  EXPECT_EQ(bank.faults_detected(0), 2);
  EXPECT_EQ(faulted_jobs, (std::vector<std::int64_t>{0, 1}));
}

TEST(DetectorBank, JobFinishingExactlyAtFireIsNotFaulty) {
  rt::Engine eng(horizon_opts(40_ms));
  sched::TaskParams p{"t", 5, 10_ms, 40_ms, 40_ms, Duration::zero()};
  const rt::TaskHandle h = eng.add_task(p);
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {10_ms}, cfg, {});  // fire exactly at end
  eng.run();
  EXPECT_EQ(bank.total_faults(), 0);
}

TEST(DetectorBank, DetectorFollowsTaskOffset) {
  trace::Recorder rec;
  rt::Engine eng(traced_opts(100_ms, rec));
  sched::TaskParams p{"t", 5, 30_ms, 100_ms, 100_ms, /*offset=*/20_ms};
  const rt::TaskHandle h =
      eng.add_task(p, [](std::int64_t) { return 45_ms; });
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {30_ms}, cfg, {});
  eng.run();
  const auto fires = events_of_kind(rec, EventKind::kDetectorFire);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].time, Instant::epoch() + 50_ms);  // 20 + 30
  EXPECT_EQ(bank.total_faults(), 1);                   // done at 65
}

TEST(DetectorBank, RetiresWithStoppedTask) {
  trace::Recorder rec;
  rt::Engine eng(traced_opts(200_ms, rec));
  sched::TaskParams p{"t", 5, 10_ms, 50_ms, 50_ms, Duration::zero()};
  const rt::TaskHandle h = eng.add_task(p);
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {15_ms}, cfg, {});
  eng.add_one_shot_timer(Instant::epoch() + 60_ms, [&](rt::Engine& e) {
    e.request_stop(h, rt::StopMode::kTask);
  });
  eng.run();
  // Fires at 15 (job 0 done) and 65 (task stopped -> detector retires
  // without reporting); later fires are cancelled.
  const auto fires = events_of_kind(rec, EventKind::kDetectorFire);
  EXPECT_EQ(fires.size(), 1u);
  EXPECT_EQ(bank.total_faults(), 0);
}

TEST(DetectorBank, FireCostDelaysTheSystem) {
  trace::Recorder rec;
  rt::Engine eng(traced_opts(60_ms, rec));
  sched::TaskParams p{"t", 5, 30_ms, 60_ms, 60_ms, Duration::zero()};
  const rt::TaskHandle h = eng.add_task(p);
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  cfg.fire_cost = 2_ms;
  // Threshold 10: fires while the job runs; its cost preempts the job.
  DetectorBank bank(eng, {h}, {10_ms}, cfg, {});
  eng.run();
  const auto ends = events_of_kind(rec, EventKind::kJobEnd);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].time, Instant::epoch() + 32_ms);  // 30 + 2
  EXPECT_EQ(bank.total_faults(), 1);  // job genuinely past threshold
}

TEST(DetectorBank, MidRunArmingAlignsWithTaskStart) {
  // Regression: detectors for tasks launched mid-run (dynamic admission)
  // must align on the task's actual first release, not the epoch.
  trace::Recorder rec;
  rt::Engine eng(traced_opts(500_ms, rec));
  eng.run_until(Instant::epoch() + 150_ms);
  sched::TaskParams p{"late", 5, 10_ms, 100_ms, 100_ms, Duration::zero()};
  const rt::TaskHandle h = eng.add_task(p, {}, {}, eng.now());
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {10_ms}, cfg, {});
  eng.run();
  // Releases at 150, 250, 350, 450; fires at 160, 260, 360, 460; the
  // task always completes exactly at its threshold: no fault.
  const auto fires = events_of_kind(rec, EventKind::kDetectorFire);
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[0].time, Instant::epoch() + 160_ms);
  EXPECT_EQ(bank.total_faults(), 0);
}

TEST(DetectorBank, MidRunArmingSkipsElapsedWatchDates) {
  // Bank armed at t=35 for a task running since 0 with threshold 10:
  // watch dates 10 and 30 already passed; watching resumes at job 2
  // (fire at 50) with the job counter aligned.
  trace::Recorder rec;
  rt::Engine eng(traced_opts(100_ms, rec));
  sched::TaskParams p{"t", 5, 5_ms, 20_ms, 20_ms, Duration::zero()};
  const rt::TaskHandle h =
      eng.add_task(p, [](std::int64_t job) { return job == 2 ? 15_ms : 5_ms; });
  eng.run_until(Instant::epoch() + 35_ms);
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {10_ms}, cfg, {});
  eng.run();
  // Job 2 (released 40, cost 15) is still running at its watch date 50.
  ASSERT_GE(bank.total_faults(), 1);
  const auto faults = events_of_kind(rec, EventKind::kFaultDetected);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].time, Instant::epoch() + 50_ms);
  EXPECT_EQ(faults[0].job, 2);
}

TEST(DetectorBank, CancelSilencesTheBank) {
  rt::Engine eng(horizon_opts(200_ms));
  sched::TaskParams p{"t", 5, 10_ms, 50_ms, 50_ms, Duration::zero()};
  const rt::TaskHandle h =
      eng.add_task(p, [](std::int64_t) { return 30_ms; });
  DetectorConfig cfg;
  cfg.quantizer.mode = rt::Rounding::kNone;
  DetectorBank bank(eng, {h}, {10_ms}, cfg, {});
  eng.run_until(Instant::epoch() + 60_ms);
  const std::int64_t faults_before = bank.total_faults();
  EXPECT_GE(faults_before, 1);
  bank.cancel(eng);
  eng.run();
  EXPECT_EQ(bank.total_faults(), faults_before);  // no further reports
}

TEST(DetectorBank, MismatchedVectorsThrow) {
  rt::Engine eng(horizon_opts(10_ms));
  const rt::TaskHandle h = eng.add_task(
      sched::TaskParams{"t", 5, 1_ms, 5_ms, 5_ms, Duration::zero()});
  EXPECT_THROW(DetectorBank(eng, {h}, {1_ms, 2_ms}, DetectorConfig{}, {}),
               ContractViolation);
  EXPECT_THROW(
      DetectorBank(eng, {h}, {Duration::ms(-1)}, DetectorConfig{}, {}),
      ContractViolation);
}

}  // namespace
}  // namespace rtft::core
