// The shipped scenario files (scenarios/*.rtft) must load, match the
// canonical in-library constructions, and reproduce the figures when run.
#include <gtest/gtest.h>

#include "config/scenario.hpp"
#include "core/paper.hpp"

#ifndef RTFT_SCENARIO_DIR
#error "RTFT_SCENARIO_DIR must be defined by the build"
#endif

namespace rtft {
namespace {

using core::TreatmentPolicy;

struct FileCase {
  const char* file;
  TreatmentPolicy policy;
};

class ScenarioFiles : public ::testing::TestWithParam<FileCase> {};

TEST_P(ScenarioFiles, LoadsAndMatchesCanonicalScenario) {
  const FileCase& fc = GetParam();
  const cfg::Scenario loaded = cfg::load_scenario(
      std::string(RTFT_SCENARIO_DIR) + "/" + fc.file);
  const core::paper::Scenario canonical =
      core::paper::figures_scenario(fc.policy);

  EXPECT_EQ(loaded.config.policy, fc.policy);
  EXPECT_EQ(loaded.config.horizon, core::paper::kFigureHorizon);
  ASSERT_EQ(loaded.config.tasks.size(), canonical.config.tasks.size());
  for (sched::TaskId i = 0; i < loaded.config.tasks.size(); ++i) {
    const sched::TaskParams& a = loaded.config.tasks[i];
    const sched::TaskParams& b = canonical.config.tasks[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.priority, b.priority);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.offset, b.offset);
  }
  ASSERT_EQ(loaded.faults.faults().size(), 1u);
  EXPECT_EQ(loaded.faults.faults()[0].task, "tau1");
  EXPECT_EQ(loaded.faults.faults()[0].job_index,
            core::paper::kFaultyJobIndex);
  EXPECT_EQ(loaded.faults.faults()[0].extra_cost,
            core::paper::kDefaultOverrun);
}

TEST_P(ScenarioFiles, RunsWithTheExpectedMissPattern) {
  const FileCase& fc = GetParam();
  cfg::Scenario loaded = cfg::load_scenario(
      std::string(RTFT_SCENARIO_DIR) + "/" + fc.file);
  core::FaultTolerantSystem sys(std::move(loaded.config),
                                std::move(loaded.faults));
  const core::RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  switch (fc.policy) {
    case TreatmentPolicy::kNoDetection:
    case TreatmentPolicy::kDetectOnly:
      EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau3"});
      break;
    default:
      EXPECT_EQ(report.missing_tasks(), std::vector<std::string>{"tau1"});
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, ScenarioFiles,
    ::testing::Values(
        FileCase{"fig3_no_detection.rtft", TreatmentPolicy::kNoDetection},
        FileCase{"fig4_detect_only.rtft", TreatmentPolicy::kDetectOnly},
        FileCase{"fig5_instant_stop.rtft", TreatmentPolicy::kInstantStop},
        FileCase{"fig6_equitable_allowance.rtft",
                 TreatmentPolicy::kEquitableAllowance},
        FileCase{"fig7_system_allowance.rtft",
                 TreatmentPolicy::kSystemAllowance}),
    [](const ::testing::TestParamInfo<FileCase>& param_info) {
      std::string name(param_info.param.file);
      return name.substr(0, name.find('_'));
    });

}  // namespace
}  // namespace rtft
