// Cross-validation of the two halves of the library: the closed-form
// admission-control analysis (sched/) against the executable semantics of
// the virtual-time engine (runtime/ + core/). Each property here is a
// theorem of fixed-priority scheduling; a failure means one of the two
// sides is wrong.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "sched/allowance.hpp"
#include "sched/feasibility.hpp"
#include "sched/response_time.hpp"
#include "support/random_sets.hpp"

namespace rtft {
namespace {

using core::FaultPlan;
using core::FaultTolerantSystem;
using core::FtSystemConfig;
using core::RunReport;
using core::TreatmentPolicy;
using testsupport::make_random_task_set;
using namespace rtft::literals;

/// A random *feasible* constrained-deadline (D <= T) task set, or nullopt
/// if the seed's draw is infeasible.
std::optional<sched::TaskSet> feasible_set(std::uint64_t seed,
                                           double utilization) {
  Rng rng(seed);
  RandomTaskSetSpec spec;
  spec.tasks = 2 + static_cast<std::size_t>(rng.next_in(0, 4));
  spec.total_utilization = utilization;
  spec.min_period = Duration::ms(5);
  spec.max_period = Duration::ms(200);
  const sched::TaskSet ts = make_random_task_set(rng, spec);
  if (!sched::is_feasible(ts)) return std::nullopt;
  return ts;
}

Duration horizon_for(const sched::TaskSet& ts) {
  Duration max_period = Duration::zero();
  for (const auto& t : ts) max_period = std::max(max_period, t.period);
  return max_period * 2;
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Critical instant: with synchronous release, the first job of every task
// in a feasible D<=T system experiences exactly the analytic WCRT.
// ---------------------------------------------------------------------------

TEST_P(CrossValidation, FirstJobResponseEqualsAnalyticWcrt) {
  const auto ts = feasible_set(GetParam(), 0.7);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  trace::Recorder rec;
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + horizon_for(*ts);
  opts.sink = &rec;
  rt::Engine eng(opts);
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : *ts) handles.push_back(eng.add_task(t));
  eng.run();

  for (sched::TaskId i = 0; i < ts->size(); ++i) {
    const sched::RtaResult rta = sched::response_time(*ts, i);
    ASSERT_TRUE(rta.bounded);
    // First job completed (horizon covers it: wcrt <= D <= T < horizon).
    ASSERT_TRUE(eng.job_completed(handles[i], 0)) << (*ts)[i].name;
    Duration first_response;
    for (const auto& e : rec.events()) {
      if (e.kind == trace::EventKind::kJobEnd &&
          e.task == static_cast<std::uint32_t>(handles[i]) && e.job == 0) {
        first_response = Duration::ns(e.detail);
      }
    }
    EXPECT_EQ(first_response, rta.wcrt) << (*ts)[i].name;
  }
}

// ---------------------------------------------------------------------------
// Soundness: no simulated response ever exceeds the analytic WCRT, over a
// longer window and regardless of job index.
// ---------------------------------------------------------------------------

TEST_P(CrossValidation, NoResponseExceedsAnalyticWcrt) {
  const auto ts = feasible_set(GetParam() ^ 0x9999, 0.8);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + horizon_for(*ts) * 4;
  rt::Engine eng(opts);
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : *ts) handles.push_back(eng.add_task(t));
  eng.run();

  for (sched::TaskId i = 0; i < ts->size(); ++i) {
    const sched::RtaResult rta = sched::response_time(*ts, i);
    EXPECT_LE(eng.stats(handles[i]).max_response, rta.wcrt)
        << (*ts)[i].name;
    EXPECT_EQ(eng.stats(handles[i]).missed, 0) << (*ts)[i].name;
  }
}

// ---------------------------------------------------------------------------
// Detector hygiene: a nominal run never trips a detector (paper §3 — the
// detection mechanism must be transparent for a fault-free system).
// ---------------------------------------------------------------------------

TEST_P(CrossValidation, NominalRunTripsNoDetector) {
  const auto ts = feasible_set(GetParam() ^ 0xdead, 0.75);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  FtSystemConfig cfg;
  cfg.tasks = *ts;
  cfg.policy = TreatmentPolicy::kInstantStop;
  cfg.horizon = horizon_for(*ts) * 4;
  cfg.detector.quantizer.mode = rt::Rounding::kNone;  // exact thresholds
  FaultTolerantSystem sys(std::move(cfg));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  for (const auto& t : report.tasks) {
    EXPECT_EQ(t.faults_detected, 0) << t.name;
    EXPECT_FALSE(t.stats.stopped) << t.name;
    EXPECT_EQ(t.stats.missed, 0) << t.name;
  }
}

// ---------------------------------------------------------------------------
// The paper's design claim (§4.2): an overrun within the equitable
// allowance A, injected into the critical-instant job of ANY task,
// causes no deadline miss and no stop anywhere.
// ---------------------------------------------------------------------------

TEST_P(CrossValidation, OverrunWithinEquitableAllowanceIsHarmless) {
  const auto ts = feasible_set(GetParam() ^ 0xa110, 0.6);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  const sched::EquitableAllowance a = sched::equitable_allowance(*ts);
  ASSERT_TRUE(a.feasible_at_zero);
  if (a.allowance.is_zero()) GTEST_SKIP() << "no slack to play with";

  Rng rng(GetParam());
  const auto victim = static_cast<sched::TaskId>(
      rng.next_in(0, static_cast<std::int64_t>(ts->size()) - 1));

  FtSystemConfig cfg;
  cfg.tasks = *ts;
  cfg.policy = TreatmentPolicy::kEquitableAllowance;
  cfg.horizon = horizon_for(*ts) * 4;
  cfg.detector.quantizer.mode = rt::Rounding::kNone;
  FaultPlan faults;
  faults.add_overrun((*ts)[victim].name, 0, a.allowance);  // full budget
  FaultTolerantSystem sys(std::move(cfg), std::move(faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  EXPECT_EQ(report.total_misses(), 0);
  for (const auto& t : report.tasks) EXPECT_FALSE(t.stats.stopped);
}

// ---------------------------------------------------------------------------
// Extension policy soundness: under kSystemAllowanceSound, an overrun of
// the full budget B on the beneficiary harms nobody, and an overrun
// beyond B stops exactly the faulty task at exactly its threshold.
// ---------------------------------------------------------------------------

TEST_P(CrossValidation, SystemBudgetOnBeneficiaryIsHarmlessUnderSoundPlan) {
  const auto ts = feasible_set(GetParam() ^ 0xb0b0, 0.6);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  const sched::SystemAllowance s = sched::system_allowance(*ts);
  ASSERT_TRUE(s.feasible_at_zero);
  if (s.budget.is_zero()) GTEST_SKIP() << "no slack to play with";

  FtSystemConfig cfg;
  cfg.tasks = *ts;
  cfg.policy = TreatmentPolicy::kSystemAllowanceSound;
  cfg.horizon = horizon_for(*ts) * 4;
  cfg.detector.quantizer.mode = rt::Rounding::kNone;
  FaultPlan faults;
  faults.add_overrun((*ts)[s.beneficiary].name, 0, s.budget);
  FaultTolerantSystem sys(std::move(cfg), std::move(faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);
  EXPECT_EQ(report.total_misses(), 0);
  for (const auto& t : report.tasks) EXPECT_FALSE(t.stats.stopped);
}

TEST_P(CrossValidation, OverrunBeyondBudgetStopsFaultyTaskAtThreshold) {
  const auto ts = feasible_set(GetParam() ^ 0xcafe, 0.6);
  if (!ts) GTEST_SKIP() << "infeasible draw";

  const sched::SystemAllowance s = sched::system_allowance(*ts);
  ASSERT_TRUE(s.feasible_at_zero);

  FtSystemConfig cfg;
  cfg.tasks = *ts;
  cfg.policy = TreatmentPolicy::kSystemAllowanceSound;
  cfg.horizon = horizon_for(*ts) * 4;
  cfg.detector.quantizer.mode = rt::Rounding::kNone;
  FaultPlan faults;
  // Well beyond the budget: the beneficiary must be cut off.
  faults.add_overrun((*ts)[s.beneficiary].name, 0, s.budget + 50_ms);
  FaultTolerantSystem sys(std::move(cfg), std::move(faults));
  const RunReport report = sys.run();
  ASSERT_TRUE(report.executed);

  const auto idx = static_cast<std::size_t>(s.beneficiary);
  EXPECT_TRUE(report.tasks[idx].stats.stopped);
  EXPECT_GE(report.tasks[idx].faults_detected, 1);
  // The beneficiary is the highest-priority task: never preempted, so it
  // is aborted exactly at release + threshold.
  Instant abort = Instant::never();
  for (const auto& e : sys.recorder().events()) {
    if (e.kind == trace::EventKind::kJobAborted &&
        e.task == static_cast<std::uint32_t>(s.beneficiary)) {
      abort = e.time;
    }
  }
  const Duration threshold = *report.tasks[idx].threshold;
  EXPECT_EQ(abort, Instant::epoch() + (*ts)[s.beneficiary].offset +
                       threshold);
  // No other task was stopped (sound thresholds absorb the inherited
  // shift).
  for (std::size_t i = 0; i < report.tasks.size(); ++i) {
    if (i != idx) {
      EXPECT_FALSE(report.tasks[i].stats.stopped) << report.tasks[i].name;
      EXPECT_EQ(report.tasks[i].stats.missed, 0) << report.tasks[i].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Paper-specific agreement: the sound and paper thresholds coincide on
// the Table 2 system (no cascaded interference in the extended window).
// ---------------------------------------------------------------------------

TEST(SystemAllowanceVariants, AgreeOnPaperSystem) {
  const sched::SystemAllowance s =
      sched::system_allowance(core::paper::table2_system());
  EXPECT_EQ(s.stop_thresholds, s.sound_stop_thresholds);
}

}  // namespace
}  // namespace rtft
