// Stress suite: random systems, random faults, every policy — each run's
// trace is certified by the validator (single-CPU non-overlap, release
// spacing, fixed-priority compliance) and its bookkeeping cross-checked.
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "common/random.hpp"
#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "support/random_sets.hpp"
#include "trace/validator.hpp"

namespace rtft {
namespace {

using core::FaultPlan;
using core::FaultTolerantSystem;
using core::FtSystemConfig;
using core::RunReport;
using core::TreatmentPolicy;
using testsupport::make_random_task_set;
using namespace rtft::literals;

TEST(TraceValidation, AllFigureRunsAreClean) {
  for (TreatmentPolicy policy :
       {TreatmentPolicy::kNoDetection, TreatmentPolicy::kDetectOnly,
        TreatmentPolicy::kInstantStop, TreatmentPolicy::kEquitableAllowance,
        TreatmentPolicy::kSystemAllowance,
        TreatmentPolicy::kSystemAllowanceSound}) {
    core::paper::Scenario s = core::paper::figures_scenario(policy);
    const sched::TaskSet tasks = s.config.tasks;
    FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
    (void)sys.run();
    const trace::ValidationResult v =
        trace::validate_trace(tasks, sys.recorder());
    EXPECT_TRUE(v.ok()) << core::to_string(policy) << "\n" << v.summary();
  }
}

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, RandomFaultsUnderEveryPolicyYieldValidTraces) {
  Rng rng(GetParam());
  RandomTaskSetSpec spec;
  spec.tasks = 2 + static_cast<std::size_t>(rng.next_in(0, 5));
  spec.total_utilization = 0.3 + 0.5 * rng.next_double();
  spec.min_period = Duration::ms(5);
  spec.max_period = Duration::ms(100);
  const sched::TaskSet ts = make_random_task_set(rng, spec);
  if (!sched::is_feasible(ts)) GTEST_SKIP() << "infeasible draw";

  // Random fault mix: up to three overruns on random tasks/jobs.
  FaultPlan faults;
  const std::int64_t fault_count = rng.next_in(1, 3);
  for (std::int64_t f = 0; f < fault_count; ++f) {
    const auto victim = static_cast<sched::TaskId>(
        rng.next_in(0, static_cast<std::int64_t>(ts.size()) - 1));
    faults.add_overrun(ts[victim].name, rng.next_in(0, 5),
                       Duration::ms(rng.next_in(1, 50)));
  }

  for (TreatmentPolicy policy :
       {TreatmentPolicy::kDetectOnly, TreatmentPolicy::kInstantStop,
        TreatmentPolicy::kEquitableAllowance,
        TreatmentPolicy::kSystemAllowanceSound}) {
    FtSystemConfig cfg;
    cfg.tasks = ts;
    cfg.policy = policy;
    cfg.horizon = 800_ms;
    cfg.detector.quantizer.mode = rt::Rounding::kNone;
    FaultPlan faults_copy = faults;
    FaultTolerantSystem sys(std::move(cfg), std::move(faults_copy));
    const RunReport report = sys.run();
    ASSERT_TRUE(report.executed) << core::to_string(policy);

    const trace::ValidationResult v =
        trace::validate_trace(ts, sys.recorder());
    EXPECT_TRUE(v.ok()) << core::to_string(policy) << "\n" << v.summary();

    // Bookkeeping cross-checks: trace counts match engine counters.
    for (std::size_t i = 0; i < report.tasks.size(); ++i) {
      std::int64_t releases = 0;
      std::int64_t ends = 0;
      std::int64_t aborts = 0;
      std::vector<trace::TraceEvent> task_events;
      sys.recorder().of_task(static_cast<std::uint32_t>(i),
                             std::back_inserter(task_events));
      for (const auto& e : task_events) {
        if (e.kind == trace::EventKind::kJobRelease) ++releases;
        if (e.kind == trace::EventKind::kJobEnd) ++ends;
        if (e.kind == trace::EventKind::kJobAborted) ++aborts;
      }
      EXPECT_EQ(releases, report.tasks[i].stats.released);
      EXPECT_EQ(ends, report.tasks[i].stats.completed);
      EXPECT_EQ(aborts, report.tasks[i].stats.aborted);
    }
    // Policies that stop tasks: a stopped task must have a detected
    // fault; detect-only never stops anyone.
    for (const auto& t : report.tasks) {
      if (t.stats.stopped) {
        EXPECT_NE(policy, TreatmentPolicy::kDetectOnly) << t.name;
        EXPECT_GE(t.faults_detected, 1) << t.name;
      }
    }
  }
}

TEST_P(StressTest, DeterministicAcrossRepeatedRuns) {
  Rng rng(GetParam() ^ 0x77);
  RandomTaskSetSpec spec;
  spec.tasks = 3;
  spec.total_utilization = 0.6;
  const sched::TaskSet ts = make_random_task_set(rng, spec);
  if (!sched::is_feasible(ts)) GTEST_SKIP() << "infeasible draw";

  const auto run_once = [&] {
    FtSystemConfig cfg;
    cfg.tasks = ts;
    cfg.policy = TreatmentPolicy::kInstantStop;
    cfg.horizon = 500_ms;
    FaultPlan faults;
    faults.add_overrun(ts[0].name, 1, 20_ms);
    FaultTolerantSystem sys(std::move(cfg), std::move(faults));
    (void)sys.run();
    std::vector<std::tuple<std::int64_t, int, std::uint32_t, std::int64_t>>
        out;
    for (const auto& e : sys.recorder().events()) {
      out.emplace_back(e.time.count(), static_cast<int>(e.kind), e.task,
                       e.job);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rtft
