#include "config/scenario.hpp"

#include <gtest/gtest.h>

#include "core/paper.hpp"

namespace rtft::cfg {
namespace {

using namespace rtft::literals;

constexpr std::string_view kFigure5 = R"(
# Figure 5 of the paper
[system]
policy = instant-stop
horizon = 2000ms
quantizer = 10ms nearest
stop-mode = task

[task tau1]
priority = 20
cost = 29ms
period = 200ms
deadline = 70ms

[task tau2]
priority = 18
cost = 29ms
period = 250ms
deadline = 120ms

[task tau3]
priority = 16
cost = 29ms
period = 1500ms
deadline = 120ms
offset = 1000ms

[fault]
task = tau1
job = 5
overrun = 40ms
)";

TEST(ParseDuration, UnitsAndDecimals) {
  Duration d;
  ASSERT_TRUE(parse_duration("29ms", d));
  EXPECT_EQ(d, 29_ms);
  ASSERT_TRUE(parse_duration("1.5ms", d));
  EXPECT_EQ(d, 1500_us);
  ASSERT_TRUE(parse_duration("2s", d));
  EXPECT_EQ(d, 2_s);
  ASSERT_TRUE(parse_duration("250us", d));
  EXPECT_EQ(d, 250_us);
  ASSERT_TRUE(parse_duration("17ns", d));
  EXPECT_EQ(d, 17_ns);
  ASSERT_TRUE(parse_duration("0", d));
  EXPECT_EQ(d, Duration::zero());
  ASSERT_TRUE(parse_duration("-5ms", d));
  EXPECT_EQ(d, Duration::ms(-5));
}

TEST(ParseDuration, RejectsMalformedInput) {
  Duration d;
  EXPECT_FALSE(parse_duration("", d));
  EXPECT_FALSE(parse_duration("29", d));       // unit required
  EXPECT_FALSE(parse_duration("ms", d));       // number required
  EXPECT_FALSE(parse_duration("29 ms", d));    // no inner space
  EXPECT_FALSE(parse_duration("29minutes", d));
  EXPECT_FALSE(parse_duration("abcms", d));
}

TEST(DurationToConfigString, PicksLargestExactUnit) {
  EXPECT_EQ(duration_to_config_string(2_s), "2s");
  EXPECT_EQ(duration_to_config_string(29_ms), "29ms");
  EXPECT_EQ(duration_to_config_string(1500_us), "1500us");
  EXPECT_EQ(duration_to_config_string(17_ns), "17ns");
  EXPECT_EQ(duration_to_config_string(Duration::zero()), "0");
}

TEST(ParseScenario, Figure5RoundsTrip) {
  const Scenario s = parse_scenario(kFigure5, "figure5.rtft");
  EXPECT_EQ(s.config.policy, core::TreatmentPolicy::kInstantStop);
  EXPECT_EQ(s.config.horizon, 2000_ms);
  EXPECT_EQ(s.config.detector.quantizer.resolution, 10_ms);
  EXPECT_EQ(s.config.detector.quantizer.mode, rt::Rounding::kNearest);
  EXPECT_EQ(s.config.stop_mode, rt::StopMode::kTask);
  ASSERT_EQ(s.config.tasks.size(), 3u);
  EXPECT_EQ(s.config.tasks[0].name, "tau1");
  EXPECT_EQ(s.config.tasks[0].priority, 20);
  EXPECT_EQ(s.config.tasks[2].offset, 1000_ms);
  ASSERT_EQ(s.faults.faults().size(), 1u);
  EXPECT_EQ(s.faults.faults()[0].task, "tau1");
  EXPECT_EQ(s.faults.faults()[0].job_index, 5);
  EXPECT_EQ(s.faults.faults()[0].extra_cost, 40_ms);

  // The parsed scenario matches the canonical in-library construction.
  const core::paper::Scenario canonical =
      core::paper::figures_scenario(core::TreatmentPolicy::kInstantStop);
  for (sched::TaskId i = 0; i < 3; ++i) {
    EXPECT_EQ(s.config.tasks[i].cost, canonical.config.tasks[i].cost);
    EXPECT_EQ(s.config.tasks[i].period, canonical.config.tasks[i].period);
    EXPECT_EQ(s.config.tasks[i].deadline,
              canonical.config.tasks[i].deadline);
  }
}

TEST(ParseScenario, WriteParseIdentity) {
  const Scenario original = parse_scenario(kFigure5);
  const std::string text = write_scenario(original);
  const Scenario reparsed = parse_scenario(text);
  EXPECT_EQ(write_scenario(reparsed), text);
  EXPECT_EQ(reparsed.config.tasks.size(), original.config.tasks.size());
  EXPECT_EQ(reparsed.config.policy, original.config.policy);
  EXPECT_EQ(reparsed.faults.faults().size(),
            original.faults.faults().size());
}

TEST(ParseScenario, ImplicitDeadlineDefaultsToPeriod) {
  const Scenario s = parse_scenario(R"(
[task t]
priority = 1
cost = 1ms
period = 10ms
)");
  EXPECT_EQ(s.config.tasks[0].deadline, 10_ms);
}

TEST(ParseScenario, ErrorsCarryLineNumbers) {
  const auto expect_error_line = [](std::string_view text, int line) {
    try {
      (void)parse_scenario(text, "t.rtft");
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_line("[system]\nbogus-key = 1\n", 2);
  expect_error_line("[system\n", 1);
  expect_error_line("key = value\n", 1);                       // no section
  expect_error_line("[system]\npolicy = nonsense\n", 2);
  expect_error_line("[system]\nhorizon = fast\n", 2);
  expect_error_line("[task ]\n", 1);                           // no name
  expect_error_line("[unknown]\n", 1);
  // A missing mandatory field points at the section header.
  expect_error_line("[task t]\npriority = 1\ncost = 1ms\n", 1);
  expect_error_line("[system]\nquantizer = 10ms\n", 2);  // missing mode
}

TEST(ParseScenario, MissingFaultFieldsRejected) {
  constexpr std::string_view base = R"(
[task t]
priority = 1
cost = 1ms
period = 10ms
)";
  EXPECT_THROW(
      (void)parse_scenario(std::string(base) + "[fault]\ntask = t\n"),
      ParseError);
  EXPECT_THROW(
      (void)parse_scenario(std::string(base) + "[fault]\njob = 1\n"),
      ParseError);
}

TEST(ParseScenario, FaultOnUnknownTaskRejected) {
  EXPECT_THROW((void)parse_scenario(R"(
[task t]
priority = 1
cost = 1ms
period = 10ms

[fault]
task = ghost
job = 0
overrun = 1ms
)"),
               ContractViolation);
}

TEST(ParseScenario, EmptyScenarioRejected) {
  EXPECT_THROW((void)parse_scenario("# just a comment\n"), ParseError);
}

TEST(ParseScenario, SystemKnobsParsed) {
  const Scenario s = parse_scenario(R"(
[system]
policy = system-allowance-sound
stop-mode = job
stop-poll-latency = 2ms
context-switch-cost = 50us
detector-fire-cost = 10us
allowance-granularity = 1ms
run-infeasible = true

[task t]
priority = 1
cost = 1ms
period = 10ms
)");
  EXPECT_EQ(s.config.policy, core::TreatmentPolicy::kSystemAllowanceSound);
  EXPECT_EQ(s.config.stop_mode, rt::StopMode::kJob);
  EXPECT_EQ(s.config.stop_poll_latency, 2_ms);
  EXPECT_EQ(s.config.context_switch_cost, 50_us);
  EXPECT_EQ(s.config.detector.fire_cost, 10_us);
  EXPECT_EQ(s.config.allowance.granularity, 1_ms);
  EXPECT_TRUE(s.config.run_infeasible);
}

TEST(LoadScenario, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario("/nonexistent/scenario.rtft"),
               ContractViolation);
}

}  // namespace
}  // namespace rtft::cfg
