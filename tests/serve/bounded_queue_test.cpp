#include "serve/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace rtft::serve {
namespace {

TEST(BoundedQueue, RefusesBeyondCapacityWithoutBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: refuse, never grow.
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(BoundedQueue, PopReportsDepthIncludingTheItem) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(10));
  ASSERT_TRUE(q.try_push(20));
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 10);
  EXPECT_EQ(first->second, 2u);  // both items were queued at pop time.
  auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 20);
  EXPECT_EQ(second->second, 1u);
}

TEST(BoundedQueue, RefusedPushLeavesTheItemWithTheCaller) {
  BoundedQueue<std::vector<int>> q(1);
  std::vector<int> first{1, 2, 3};
  ASSERT_TRUE(q.try_push(std::move(first)));
  std::vector<int> second{4, 5, 6};
  ASSERT_FALSE(q.try_push(std::move(second)));
  // The refused item must not have been moved from.
  EXPECT_EQ(second.size(), 3u);
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenEndsTheStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed: producers refused...
  auto a = q.pop();             // ...but consumers still drain.
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 1);
  auto b = q.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 2);
  EXPECT_FALSE(q.pop().has_value());  // end of stream.
  q.close();                          // idempotent.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();  // would hang forever if close() failed to wake it.
}

TEST(BoundedQueue, ZeroCapacityIsAContractViolation) {
  EXPECT_THROW(BoundedQueue<int>(0), ContractViolation);
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(8);
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        popped_sum.fetch_add(item->first);
        popped_count.fetch_add(1);
        EXPECT_LE(item->second, q.capacity());
      }
    });
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = static_cast<int>(p) * kPerProducer + i;
        while (!q.try_push(int{value})) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : threads) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), total);
  EXPECT_EQ(popped_sum.load(),
            static_cast<long long>(total) * (total - 1) / 2);
  EXPECT_LE(q.max_depth(), q.capacity());  // the bound held throughout.
}

}  // namespace
}  // namespace rtft::serve
