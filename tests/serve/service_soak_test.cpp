// Multi-threaded soak of the admission service under injected faults and
// a sustained burst several times the queue capacity. The assertions are
// the service's robustness contract:
//
//   * the queue bound holds at all times (max_depth <= capacity);
//   * every accepted request is answered — no deadlock, no lost promise
//     (a violation hangs a future.get() and trips the ctest timeout);
//   * every answer carries a tier tag, and exact/rta-tier answers agree
//     with the one-shot FeasibilityAnalysis oracle;
//   * bound-tier answers are honest: kAdmit only for oracle-feasible
//     sets, kReject only for oracle-infeasible ones;
//   * injected worker throws, clock skips and cache corruption are all
//     absorbed: the counters prove they fired, the service keeps serving,
//     and the books still balance.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "sched/feasibility.hpp"
#include "serve/service.hpp"
#include "support/random_sets.hpp"

namespace rtft::serve {
namespace {

constexpr std::size_t kDistinctSets = 40;
constexpr std::size_t kProducers = 4;
constexpr std::size_t kPerProducer = 400;

struct Population {
  std::vector<sched::TaskSet> sets;
  std::vector<bool> feasible;  ///< one-shot oracle, per set.
};

Population make_population() {
  Population pop;
  for (std::size_t i = 0; i < kDistinctSets; ++i) {
    RandomTaskSetSpec spec;
    spec.tasks = 2 + i % 4;
    // Sweep utilization through clearly-feasible up to overloaded so the
    // population mixes admits and rejects.
    spec.total_utilization = 0.3 + 0.03 * static_cast<double>(i);
    spec.min_period = Duration::ms(10);
    spec.max_period = Duration::ms(100);
    pop.sets.push_back(testsupport::make_seeded_task_set(1000 + i, spec));
    pop.feasible.push_back(sched::is_feasible(pop.sets.back()));
  }
  return pop;
}

TEST(AdmissionServiceSoak, SurvivesBurstsAndInjectedFaults) {
  const Population pop = make_population();

  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 32;
  opts.cache_capacity = 64;  // comfortably holds the 40-set population.
  opts.autostart = false;
  // Fault periods below the queue capacity: the preload alone already
  // guarantees every fault class fires at least once, no matter how much
  // of the burst the backpressure turns away.
  opts.faults.worker_throw_every = 29;
  opts.faults.clock_skip_every = 31;
  opts.faults.clock_skip = Duration::ms(5);
  opts.faults.corrupt_cache_every = 13;
  AdmissionService service{opts};

  // Pre-fill to capacity before any worker runs: the very first pops see
  // fill 1.0, so the ladder provably visits its floor during the soak.
  std::vector<std::future<AdmissionResponse>> preload;
  for (std::size_t i = 0; i < opts.queue_capacity; ++i) {
    AdmissionRequest req;
    req.id = 1'000'000 + i;
    req.tasks = pop.sets[i % kDistinctSets].tasks();
    auto f = service.submit(std::move(req));
    preload.push_back(std::move(f));
  }
  service.start();

  // The burst: 4 producers submitting flat out, 1600 requests against a
  // 32-deep queue — 50x the queue capacity in total, with poisoned
  // requests and tight deadlines mixed in.
  std::vector<std::vector<std::future<AdmissionResponse>>> futures(kProducers);
  std::vector<std::vector<std::size_t>> set_of(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t n = p * kPerProducer + i;
        AdmissionRequest req;
        req.id = n;
        if (n % 17 == 0) {
          // Poisoned: zero period must surface as kInvalidRequest.
          req.tasks = pop.sets[n % kDistinctSets].tasks();
          req.tasks[0].period = Duration::zero();
          set_of[p].push_back(kDistinctSets);  // sentinel: no oracle.
        } else {
          req.tasks = pop.sets[n % kDistinctSets].tasks();
          set_of[p].push_back(n % kDistinctSets);
        }
        if (n % 5 == 0) req.time_budget = Duration::ms(50);
        futures[p].push_back(service.submit(std::move(req)));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Every future must resolve — the "never deadlocks" clause. A hang
  // here is caught by the ctest timeout.
  std::uint64_t answered = 0, rejected = 0, shed = 0, invalid = 0, errors = 0;
  auto check = [&](const AdmissionResponse& r, std::size_t set_index) {
    switch (r.status) {
      case ResponseStatus::kAnswered: {
        ++answered;
        ASSERT_LE(static_cast<int>(r.tier), 2);
        if (set_index >= kDistinctSets) break;  // poisoned: unreachable.
        const bool oracle = pop.feasible[set_index];
        if (r.tier == AnalysisTier::kExact || r.tier == AnalysisTier::kRtaOnly) {
          // Exact tiers must reproduce the one-shot answer bit for bit.
          ASSERT_EQ(r.verdict, oracle ? AdmissionVerdict::kAdmit
                                      : AdmissionVerdict::kReject)
              << "set " << set_index << " tier " << to_cstring(r.tier);
        } else {
          // The bound tier may be inconclusive but must never lie.
          if (r.verdict == AdmissionVerdict::kAdmit) {
            ASSERT_TRUE(oracle);
          }
          if (r.verdict == AdmissionVerdict::kReject) {
            ASSERT_FALSE(oracle);
          }
        }
        break;
      }
      case ResponseStatus::kRejectedFull:
        ++rejected;
        ASSERT_TRUE(r.retry_after.is_positive());
        break;
      case ResponseStatus::kShedDeadline:
        ++shed;
        break;
      case ResponseStatus::kInvalidRequest:
        ++invalid;
        break;
      case ResponseStatus::kWorkerError:
        ++errors;
        break;
      case ResponseStatus::kShutdown:
        FAIL() << "no request was submitted after stop()";
    }
  };
  for (std::size_t i = 0; i < preload.size(); ++i) {
    check(preload[i].get(), i % kDistinctSets);
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < futures[p].size(); ++i) {
      check(futures[p][i].get(), set_of[p][i]);
    }
  }
  service.stop();

  const ServiceMetrics m = service.metrics();
  const std::uint64_t total = opts.queue_capacity + kProducers * kPerProducer;

  // The books balance: every submission has exactly one recorded fate,
  // and what we observed in responses matches the service's own count.
  EXPECT_EQ(m.submitted, total);
  EXPECT_EQ(m.submitted, m.accepted + m.rejected_full + m.rejected_shutdown);
  EXPECT_EQ(m.accepted,
            m.answered + m.shed_deadline + m.invalid + m.worker_errors);
  EXPECT_EQ(m.answered, answered);
  EXPECT_EQ(m.rejected_full, rejected);
  EXPECT_EQ(m.shed_deadline, shed);
  EXPECT_EQ(m.invalid, invalid);
  EXPECT_EQ(m.worker_errors, errors);

  // The queue bound held throughout the burst.
  EXPECT_LE(m.max_queue_depth, opts.queue_capacity);

  // The ladder provably visited its floor (preload filled the queue) and
  // recovered by the time the queue drained.
  EXPECT_GE(m.degrade_steps, 1u);
  EXPECT_GE(m.recover_steps, 1u);
  EXPECT_GT(m.answered_by_tier[2], 0u);
  EXPECT_EQ(m.current_tier, AnalysisTier::kExact);

  // Faults fired and were absorbed.
  EXPECT_GT(m.faults_injected, 0u);
  EXPECT_GT(m.worker_errors, 0u);
  EXPECT_GT(m.clock_skips, 0u);

  // The engine cross-check never contradicted the analysis.
  EXPECT_EQ(m.cross_check_disagreements, 0u);

  // The cache did real work under contention.
  EXPECT_GT(m.cache_hits, 0u);
}

}  // namespace
}  // namespace rtft::serve
