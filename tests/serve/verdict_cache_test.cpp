#include "serve/verdict_cache.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "sched/canonical.hpp"

namespace rtft::serve {
namespace {

/// Distinct synthetic keys; the cache compares full keys, so rows carry
/// the discriminating value too (mimicking real canonical sets).
sched::CanonicalTaskSet key_of(std::int64_t n) {
  sched::CanonicalTaskSet key;
  key.rows.push_back({n, 1, 2, 3, 0});
  key.hash = static_cast<std::uint64_t>(n) * 0x9e3779b97f4a7c15ULL + 1;
  return key;
}

CachedVerdict exact_admit() {
  return CachedVerdict{AdmissionVerdict::kAdmit, AnalysisTier::kExact, 0.5};
}

TEST(VerdictCache, MissThenInsertThenHit) {
  VerdictCache cache(4);
  EXPECT_FALSE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  cache.insert(key_of(1), exact_admit());
  const auto hit = cache.lookup(key_of(1), AnalysisTier::kExact);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(hit->tier, AnalysisTier::kExact);
  EXPECT_DOUBLE_EQ(hit->utilization, 0.5);
  const VerdictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(VerdictCache, WeakerCachedTierIsNotServedAtAStrongerActiveTier) {
  VerdictCache cache(4);
  cache.insert(key_of(1), CachedVerdict{AdmissionVerdict::kInconclusive,
                                        AnalysisTier::kBound, 0.7});
  // Service currently exact: a bound-tier answer must not be served.
  EXPECT_FALSE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1), AnalysisTier::kRtaOnly).has_value());
  // Service degraded to bound: the entry is exactly as strong, serve it.
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kBound).has_value());
}

TEST(VerdictCache, StrongerCachedTierServesEveryActiveTier) {
  VerdictCache cache(4);
  cache.insert(key_of(1), exact_admit());
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kRtaOnly).has_value());
  const auto hit = cache.lookup(key_of(1), AnalysisTier::kBound);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tier, AnalysisTier::kExact);  // tag keeps the true tier.
}

TEST(VerdictCache, InsertNeverDowngradesAStrongerEntry) {
  VerdictCache cache(4);
  cache.insert(key_of(1), exact_admit());
  cache.insert(key_of(1), CachedVerdict{AdmissionVerdict::kInconclusive,
                                        AnalysisTier::kBound, 0.5});
  const auto hit = cache.lookup(key_of(1), AnalysisTier::kExact);
  ASSERT_TRUE(hit.has_value());  // still the exact entry.
  EXPECT_EQ(hit->verdict, AdmissionVerdict::kAdmit);
  // The reverse direction upgrades.
  cache.insert(key_of(2), CachedVerdict{AdmissionVerdict::kInconclusive,
                                        AnalysisTier::kBound, 0.5});
  cache.insert(key_of(2), exact_admit());
  const auto upgraded = cache.lookup(key_of(2), AnalysisTier::kExact);
  ASSERT_TRUE(upgraded.has_value());
  EXPECT_EQ(upgraded->tier, AnalysisTier::kExact);
}

TEST(VerdictCache, CeilingEntryServesEveryActiveTier) {
  VerdictCache cache(4);
  // kRtaOnly marked as the key's ceiling: the strongest answer this key
  // can ever get (the engine cross-check is refused as oversize).
  cache.insert(key_of(1), CachedVerdict{AdmissionVerdict::kAdmit,
                                        AnalysisTier::kRtaOnly, 0.5, true});
  // An exact-tier lookup must hit — recomputing could do no better, so
  // demanding kExact would make this a permanent miss.
  const auto hit = cache.lookup(key_of(1), AnalysisTier::kExact);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tier, AnalysisTier::kRtaOnly);  // tag stays honest.
  EXPECT_TRUE(hit->tier_is_ceiling);
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kRtaOnly).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kBound).has_value());
  EXPECT_EQ(cache.stats().misses, 0u);

  // An equal-tier refresh must not wash the ceiling away: the oversize
  // window is a property of the key, not of who computed the entry.
  cache.insert(key_of(1), CachedVerdict{AdmissionVerdict::kAdmit,
                                        AnalysisTier::kRtaOnly, 0.5, false});
  const auto kept = cache.lookup(key_of(1), AnalysisTier::kExact);
  ASSERT_TRUE(kept.has_value());
  EXPECT_TRUE(kept->tier_is_ceiling);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedAtCapacity) {
  VerdictCache cache(2);
  cache.insert(key_of(1), exact_admit());
  cache.insert(key_of(2), exact_admit());
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  cache.insert(key_of(3), exact_admit());
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2), AnalysisTier::kExact).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3), AnalysisTier::kExact).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(VerdictCache, CorruptionIsDetectedDroppedAndCounted) {
  VerdictCache cache(4);
  cache.insert(key_of(1), exact_admit());
  ASSERT_TRUE(cache.corrupt(key_of(1)));
  // The damaged entry must never be served — detected, counted, erased.
  EXPECT_FALSE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
  EXPECT_EQ(cache.stats().corruption_detected, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // A fresh insert fully heals the slot.
  cache.insert(key_of(1), exact_admit());
  EXPECT_TRUE(cache.lookup(key_of(1), AnalysisTier::kExact).has_value());
}

TEST(VerdictCache, CorruptingAMissingKeyReportsFalse) {
  VerdictCache cache(4);
  EXPECT_FALSE(cache.corrupt(key_of(9)));
}

TEST(VerdictCache, HashCollisionsAreKeptApartByFullKeyCompare) {
  VerdictCache cache(4);
  sched::CanonicalTaskSet a = key_of(1);
  sched::CanonicalTaskSet b = key_of(2);
  b.hash = a.hash;  // forced collision: same bucket, different rows.
  cache.insert(a, exact_admit());
  cache.insert(b, CachedVerdict{AdmissionVerdict::kReject,
                                AnalysisTier::kExact, 1.5});
  const auto hit_a = cache.lookup(a, AnalysisTier::kExact);
  const auto hit_b = cache.lookup(b, AnalysisTier::kExact);
  ASSERT_TRUE(hit_a.has_value());
  ASSERT_TRUE(hit_b.has_value());
  EXPECT_EQ(hit_a->verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(hit_b->verdict, AdmissionVerdict::kReject);
}

TEST(VerdictCache, ZeroCapacityIsAContractViolation) {
  EXPECT_THROW(VerdictCache(0), ContractViolation);
}

}  // namespace
}  // namespace rtft::serve
