#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "sched/feasibility.hpp"
#include "support/paper_systems.hpp"

namespace rtft::serve {
namespace {

using namespace rtft::literals;
using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;

AdmissionRequest request_for(const sched::TaskSet& ts, std::uint64_t id = 0) {
  AdmissionRequest req;
  req.id = id;
  req.tasks = ts.tasks();
  return req;
}

ServiceOptions quiet_options() {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 64;  // deep enough that unit tests stay exact-tier.
  return opts;
}

TEST(AdmissionService, ExactTierMatchesTheOneShotOracle) {
  AdmissionService service{quiet_options()};
  const AdmissionResponse feasible =
      service.admit(request_for(table2_system(), 1));
  EXPECT_EQ(feasible.id, 1u);
  EXPECT_EQ(feasible.status, ResponseStatus::kAnswered);
  EXPECT_EQ(feasible.verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(feasible.tier, AnalysisTier::kExact);
  EXPECT_TRUE(feasible.cross_checked);
  EXPECT_FALSE(feasible.cache_hit);
  EXPECT_DOUBLE_EQ(feasible.utilization,
                   sched::analyze(table2_system()).utilization);

  const AdmissionResponse infeasible =
      service.admit(request_for(table1_system(), 2));
  EXPECT_EQ(infeasible.status, ResponseStatus::kAnswered);
  EXPECT_EQ(infeasible.verdict, AdmissionVerdict::kReject);
  EXPECT_EQ(infeasible.tier, AnalysisTier::kExact);

  // The engine replay agreed with the analysis on both.
  EXPECT_EQ(service.metrics().cross_check_disagreements, 0u);
}

TEST(AdmissionService, RepeatedQueriesHitTheCacheEvenRenamed) {
  AdmissionService service{quiet_options()};
  const AdmissionResponse first =
      service.admit(request_for(table2_system(), 1));
  EXPECT_FALSE(first.cache_hit);

  // Same parameters, different task names: canonical identity matches.
  AdmissionRequest renamed = request_for(table2_system(), 2);
  for (std::size_t i = 0; i < renamed.tasks.size(); ++i) {
    renamed.tasks[i].name = "renamed" + std::to_string(i);
  }
  const AdmissionResponse second = service.admit(std::move(renamed));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, first.verdict);
  EXPECT_EQ(second.tier, AnalysisTier::kExact);
  EXPECT_EQ(service.metrics().cache_hits, 1u);
}

TEST(AdmissionService, PoisonedRequestsAnswerInvalidInsteadOfThrowing) {
  AdmissionService service{quiet_options()};

  const AdmissionResponse empty = service.admit(AdmissionRequest{7, {}, {}});
  EXPECT_EQ(empty.status, ResponseStatus::kInvalidRequest);
  EXPECT_FALSE(empty.detail.empty());

  AdmissionRequest dup = request_for(table2_system(), 8);
  dup.tasks.push_back(dup.tasks.front());  // duplicate name.
  EXPECT_EQ(service.admit(std::move(dup)).status,
            ResponseStatus::kInvalidRequest);

  AdmissionRequest bad = request_for(table2_system(), 9);
  bad.tasks[0].period = Duration::zero();
  EXPECT_EQ(service.admit(std::move(bad)).status,
            ResponseStatus::kInvalidRequest);

  // The service shrugged all three off and still answers normally.
  EXPECT_EQ(service.admit(request_for(table2_system(), 10)).status,
            ResponseStatus::kAnswered);
  EXPECT_EQ(service.metrics().invalid, 3u);
}

TEST(AdmissionService, FullQueueRejectsWithRetryAfter) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.autostart = false;  // no workers: the queue cannot drain.
  AdmissionService service{opts};

  std::vector<std::future<AdmissionResponse>> accepted;
  accepted.push_back(service.submit(request_for(table2_system(), 1)));
  accepted.push_back(service.submit(request_for(table2_system(), 2)));
  auto refused = service.submit(request_for(table2_system(), 3));
  // The rejection resolves immediately, without any worker running.
  const AdmissionResponse resp = refused.get();
  EXPECT_EQ(resp.status, ResponseStatus::kRejectedFull);
  EXPECT_TRUE(resp.retry_after.is_positive());

  service.start();  // accepted requests are still answered.
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().status, ResponseStatus::kAnswered);
  }
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 3u);
  EXPECT_EQ(m.accepted, 2u);
  EXPECT_EQ(m.rejected_full, 1u);
  EXPECT_LE(m.max_queue_depth, opts.queue_capacity);
}

TEST(AdmissionService, ExpiredRequestsAreShedNotAnsweredLate) {
  ServiceOptions opts = quiet_options();
  opts.autostart = false;
  AdmissionService service{opts};

  AdmissionRequest stale = request_for(table2_system(), 1);
  stale.time_budget = Duration::us(1);
  auto future = service.submit(std::move(stale));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.start();  // by now the budget has long passed.
  const AdmissionResponse resp = future.get();
  EXPECT_EQ(resp.status, ResponseStatus::kShedDeadline);
  EXPECT_EQ(service.metrics().shed_deadline, 1u);
}

TEST(AdmissionService, LadderDegradesUnderDepthAndRecoversWhenDrained) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 10;
  opts.autostart = false;
  // Defaults: rta sheds at fill 0.5, bounds at 0.8, recovery at half.
  AdmissionService service{opts};

  // Ten distinct requests (costs differ) so the cache cannot short-cut.
  std::vector<std::future<AdmissionResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    sched::TaskSet ts;
    ts.add(sched::TaskParams{"a", 2, Duration::ms(1 + i), 100_ms, 100_ms,
                             Duration::zero()});
    ts.add(sched::TaskParams{"b", 1, 10_ms, 200_ms, 200_ms, Duration::zero()});
    futures.push_back(
        service.submit(request_for(ts, static_cast<std::uint64_t>(i))));
  }
  service.start();
  std::vector<AdmissionResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());

  // Pop 1 sees fill 1.0 -> the floor of the ladder. The single worker
  // then drains FIFO, so fill decays one step per response and the
  // ladder climbs back: bound clears at fill <= 0.4, rta at <= 0.25.
  EXPECT_EQ(responses.front().tier, AnalysisTier::kBound);
  EXPECT_EQ(responses.back().tier, AnalysisTier::kExact);
  for (const AdmissionResponse& r : responses) {
    EXPECT_EQ(r.status, ResponseStatus::kAnswered);
  }
  const ServiceMetrics m = service.metrics();
  EXPECT_GE(m.degrade_steps, 1u);
  EXPECT_GE(m.recover_steps, 1u);
  EXPECT_EQ(m.current_tier, AnalysisTier::kExact);
  EXPECT_GT(m.answered_by_tier[2], 0u);  // some answers were bound-tier...
  EXPECT_GT(m.answered_by_tier[0], 0u);  // ...and the tail exact again.
}

TEST(AdmissionService, BoundTierIsHonest) {
  // Capacity 1 means every pop observes fill 1.0: permanently degraded
  // to the bound tier — a convenient harness for its semantics.
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  AdmissionService service{opts};

  // Low-utilization RM set with implicit deadlines: the hyperbolic
  // bound admits it.
  sched::TaskSet easy;
  easy.add(sched::TaskParams{"a", 2, 10_ms, 100_ms, 100_ms, Duration::zero()});
  easy.add(sched::TaskParams{"b", 1, 20_ms, 200_ms, 200_ms, Duration::zero()});
  const AdmissionResponse admit = service.admit(request_for(easy, 1));
  EXPECT_EQ(admit.tier, AnalysisTier::kBound);
  EXPECT_EQ(admit.verdict, AdmissionVerdict::kAdmit);

  // U > 1: provably infeasible even at the floor tier.
  sched::TaskSet overload;
  overload.add(
      sched::TaskParams{"a", 2, 60_ms, 100_ms, 100_ms, Duration::zero()});
  overload.add(
      sched::TaskParams{"b", 1, 50_ms, 100_ms, 100_ms, Duration::zero()});
  EXPECT_EQ(service.admit(request_for(overload, 2)).verdict,
            AdmissionVerdict::kReject);

  // Constrained deadlines (D < T): the sufficient bounds do not apply;
  // the honest degraded answer is "inconclusive", never a guess. The
  // exact tiers would admit this set (WCRT 29ms <= 70ms deadline).
  const AdmissionResponse careful =
      service.admit(request_for(table2_system(), 3));
  EXPECT_EQ(careful.tier, AnalysisTier::kBound);
  EXPECT_EQ(careful.verdict, AdmissionVerdict::kInconclusive);
}

TEST(AdmissionService, BoundTierRefusesEqualPriorityAcrossPeriods) {
  // Equal priorities across *different* periods are not RM: the model
  // (TaskSet::HP) makes equal-priority tasks mutually interfering, so
  // the short-period task suffers interference Liu-Layland/hyperbolic
  // never account for. This set passes both bounds (U = 0.8 <= LL(2),
  // (1.4)(1.4) <= 2) yet exact RTA rejects it (R_b = 440ms > 100ms):
  // admitting it from the bound tier would be degraded-and-*wrong*.
  sched::TaskSet trap;
  trap.add(sched::TaskParams{"a", 1, 400_ms, 1000_ms, 1000_ms,
                             Duration::zero()});
  trap.add(
      sched::TaskParams{"b", 1, 40_ms, 100_ms, 100_ms, Duration::zero()});
  ASSERT_FALSE(sched::analyze(trap).feasible);

  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;  // fill 1.0 at every pop: permanently kBound.
  AdmissionService service{opts};
  const AdmissionResponse resp = service.admit(request_for(trap, 1));
  EXPECT_EQ(resp.tier, AnalysisTier::kBound);
  EXPECT_EQ(resp.verdict, AdmissionVerdict::kInconclusive);
}

TEST(AdmissionService, OversizeCrossChecksFallBackToRtaOnly) {
  ServiceOptions opts = quiet_options();
  opts.max_cross_check_jobs = 10;  // tiny allowance, easy to exceed.
  AdmissionService service{opts};

  // 1 ms next to 10 s: the engine window (8 x 10 s) would release ~80k
  // jobs of the fast task — far past the allowance.
  sched::TaskSet mixed;
  mixed.add(
      sched::TaskParams{"fast", 2, Duration::us(10), 1_ms, 1_ms, Duration::zero()});
  mixed.add(sched::TaskParams{"slow", 1, Duration::s(1), Duration::s(10),
                              Duration::s(10), Duration::zero()});
  const AdmissionResponse resp = service.admit(request_for(mixed, 1));
  EXPECT_EQ(resp.status, ResponseStatus::kAnswered);
  EXPECT_EQ(resp.tier, AnalysisTier::kRtaOnly);  // tagged honestly.
  EXPECT_FALSE(resp.cross_checked);
  EXPECT_EQ(resp.verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(service.metrics().oversize_cross_check_skips, 1u);

  // The kRtaOnly answer is the strongest this key can ever get (the
  // cross-check is refused every time), so an exact-tier repeat must be
  // a cache hit — not a permanent miss that recomputes the full RTA on
  // every request for exactly the pathological sets the cap contains.
  const AdmissionResponse again = service.admit(request_for(mixed, 2));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.tier, AnalysisTier::kRtaOnly);
  EXPECT_EQ(again.verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(service.metrics().oversize_cross_check_skips, 1u);  // no rerun.
}

TEST(AdmissionService, SubmitAfterStopAnswersShutdownImmediately) {
  AdmissionService service{quiet_options()};
  service.stop();
  const AdmissionResponse resp =
      service.submit(request_for(table2_system(), 1)).get();
  EXPECT_EQ(resp.status, ResponseStatus::kShutdown);
  EXPECT_EQ(service.metrics().rejected_shutdown, 1u);
  service.stop();  // idempotent.
}

TEST(AdmissionService, StopWithoutStartStillAnswersEveryAcceptedRequest) {
  ServiceOptions opts = quiet_options();
  opts.autostart = false;
  AdmissionService service{opts};
  auto a = service.submit(request_for(table2_system(), 1));
  auto b = service.submit(request_for(table1_system(), 2));
  service.stop();  // no worker ever ran; the promises must still resolve.
  EXPECT_EQ(a.get().status, ResponseStatus::kShutdown);
  EXPECT_EQ(b.get().status, ResponseStatus::kShutdown);
}

TEST(AdmissionService, InjectedWorkerFaultsAreContained) {
  ServiceOptions opts = quiet_options();
  opts.faults.worker_throw_every = 2;  // every 2nd processed request.
  AdmissionService service{opts};
  std::uint64_t errors = 0;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const AdmissionResponse resp =
        service.admit(request_for(table2_system(), i));
    if (resp.status == ResponseStatus::kWorkerError) {
      ++errors;
      EXPECT_EQ(resp.detail, "injected worker fault");
    } else {
      EXPECT_EQ(resp.status, ResponseStatus::kAnswered);
    }
  }
  EXPECT_EQ(errors, 3u);  // requests 2, 4, 6 — and the worker survived.
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.worker_errors, 3u);
  EXPECT_EQ(m.faults_injected, 3u);
  EXPECT_EQ(m.answered, 3u);
}

TEST(AdmissionService, InjectedClockSkipExpiresQueuedDeadlines) {
  ServiceOptions opts = quiet_options();
  opts.faults.clock_skip_every = 1;
  opts.faults.clock_skip = Duration::s(10);
  AdmissionService service{opts};
  AdmissionRequest req = request_for(table2_system(), 1);
  req.time_budget = Duration::s(1);  // generous — but the clock jumps 10s.
  EXPECT_EQ(service.admit(std::move(req)).status,
            ResponseStatus::kShedDeadline);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.clock_skips, 1u);
  EXPECT_EQ(m.shed_deadline, 1u);
}

TEST(AdmissionService, InjectedCacheCorruptionIsCaughtAndRecomputed) {
  ServiceOptions opts = quiet_options();
  opts.faults.corrupt_cache_every = 3;  // fires on the 3rd request.
  AdmissionService service{opts};
  const AdmissionResponse first =
      service.admit(request_for(table2_system(), 1));
  const AdmissionResponse second =
      service.admit(request_for(table2_system(), 2));
  EXPECT_TRUE(second.cache_hit);
  // Request 3: its cache entry is corrupted right before lookup. The
  // checksum must catch it and the verdict must be recomputed — and
  // still agree.
  const AdmissionResponse third =
      service.admit(request_for(table2_system(), 3));
  EXPECT_EQ(third.status, ResponseStatus::kAnswered);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.verdict, first.verdict);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.cache_corruption_detected, 1u);
  EXPECT_EQ(m.faults_injected, 1u);
}

TEST(AdmissionService, MetricsSummaryMentionsTheHeadlines) {
  AdmissionService service{quiet_options()};
  (void)service.admit(request_for(table2_system(), 1));
  const std::string s = service.metrics().summary();
  EXPECT_NE(s.find("answered"), std::string::npos);
  EXPECT_NE(s.find("ladder"), std::string::npos);
  EXPECT_NE(s.find("cache"), std::string::npos);
  EXPECT_NE(s.find("exact"), std::string::npos);
}

}  // namespace
}  // namespace rtft::serve
