// Wall-clock executor tests. These run against real time on a shared
// machine, so they assert structural properties (counts, orderings,
// bookkeeping invariants) with generous tolerances rather than exact
// dates — exact-date reproduction is the virtual engine's job.
#include "posix/wallclock_executor.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "common/assert.hpp"
#include "trace/sink.hpp"

namespace rtft::posix {
namespace {

using namespace rtft::literals;

sched::TaskParams task(std::string name, int priority, Duration cost,
                       Duration period) {
  return sched::TaskParams{std::move(name), priority, cost, period, period,
                           Duration::zero()};
}

TEST(WallclockExecutor, PeriodicReleasesRoughlyMatchHorizon) {
  WallclockOptions opts;
  opts.horizon = 300_ms;
  WallclockExecutor exec(opts);
  const rt::TaskHandle t = exec.add_task(task("t", 5, 5_ms, 50_ms));
  exec.run();
  const rt::TaskStats& s = exec.stats(t);
  // Expected ~6 releases (0, 50, ..., 250); allow slop for scheduling
  // noise and the shutdown edge.
  EXPECT_GE(s.released, 4);
  EXPECT_LE(s.released, 8);
  EXPECT_GE(s.completed, 4);
  EXPECT_LE(s.completed, s.released);
}

TEST(WallclockExecutor, CompletedJobsHavePositiveResponses) {
  WallclockOptions opts;
  opts.horizon = 200_ms;
  WallclockExecutor exec(opts);
  const rt::TaskHandle t = exec.add_task(task("t", 5, 10_ms, 60_ms));
  exec.run();
  const rt::TaskStats& s = exec.stats(t);
  ASSERT_GE(s.completed, 1);
  // A 10 ms job takes at least 10 ms of real time.
  EXPECT_GE(s.max_response, 10_ms);
  EXPECT_GE(s.last_response, 10_ms);
}

TEST(WallclockExecutor, HigherPriorityDelaysLower) {
  // high: 20 ms of work every 50 ms; low: 20 ms of work every 100 ms.
  // Synchronous release: low's response must include high's interference
  // (>= ~40 ms), clearly above its isolated 20 ms cost.
  WallclockOptions opts;
  opts.horizon = 400_ms;
  WallclockExecutor exec(opts);
  const rt::TaskHandle high = exec.add_task(task("high", 9, 20_ms, 50_ms));
  const rt::TaskHandle low = exec.add_task(task("low", 1, 20_ms, 100_ms));
  exec.run();
  ASSERT_GE(exec.stats(low).completed, 1);
  ASSERT_GE(exec.stats(high).completed, 3);
  EXPECT_GE(exec.stats(low).max_response, 35_ms);
}

TEST(WallclockExecutor, TraceEventsArriveInTimeOrderPerTask) {
  WallclockOptions opts;
  opts.horizon = 250_ms;
  WallclockExecutor exec(opts);
  exec.add_task(task("a", 5, 5_ms, 40_ms));
  exec.add_task(task("b", 3, 5_ms, 70_ms));
  exec.run();
  // Per task: release(j) <= start(j) <= end(j), job indices increasing.
  for (std::uint32_t taskid : {0u, 1u}) {
    std::int64_t last_job = -1;
    std::vector<trace::TraceEvent> task_events;
    exec.recorder().of_task(taskid, std::back_inserter(task_events));
    for (const auto& e : task_events) {
      if (e.kind == trace::EventKind::kJobRelease) {
        EXPECT_EQ(e.job, last_job + 1);
        last_job = e.job;
      }
    }
    EXPECT_GE(last_job, 0);
  }
  // Global timestamps are non-decreasing (single recorder behind a lock).
  Instant prev = Instant::epoch();
  for (const auto& e : exec.recorder().events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(WallclockExecutor, MissesDetectedWhenOverloaded) {
  // One task whose cost exceeds its deadline: every completed job misses.
  WallclockOptions opts;
  opts.horizon = 250_ms;
  WallclockExecutor exec(opts);
  sched::TaskParams p = task("hog", 5, 60_ms, 80_ms);
  p.deadline = 30_ms;
  const rt::TaskHandle t = exec.add_task(p);
  exec.run();
  const rt::TaskStats& s = exec.stats(t);
  ASSERT_GE(s.completed, 1);
  EXPECT_EQ(s.missed, s.completed);
}

TEST(WallclockExecutor, RecordsThroughAConfiguredSink) {
  // The executor is on the engine's Sink seam: a borrowed sink receives
  // every event, no Recorder is owned, and recorder() refuses (the
  // FtSystem contract). The CountingSink's per-task counters must
  // mirror the executor's own statistics — both are maintained in the
  // same critical sections.
  WallclockOptions opts;
  opts.horizon = 250_ms;
  trace::CountingSink sink;
  opts.sink = &sink;
  WallclockExecutor exec(opts);
  const rt::TaskHandle a = exec.add_task(task("a", 5, 5_ms, 40_ms));
  const rt::TaskHandle b = exec.add_task(task("b", 3, 5_ms, 70_ms));
  exec.run();
  for (const rt::TaskHandle t : {a, b}) {
    const rt::TaskStats& s = exec.stats(t);
    const trace::TaskCounters& c =
        sink.counters(static_cast<std::size_t>(t));
    EXPECT_EQ(c.released, s.released);
    EXPECT_EQ(c.completed, s.completed);
    EXPECT_EQ(c.missed, s.missed);
    EXPECT_GE(s.released, 1);
  }
  EXPECT_THROW((void)exec.recorder(), ContractViolation);
}

TEST(WallclockExecutor, OwnsARecorderOnlyWithoutASink) {
  WallclockOptions opts;
  opts.horizon = 100_ms;
  WallclockExecutor exec(opts);
  exec.add_task(task("t", 5, 5_ms, 40_ms));
  exec.run();
  EXPECT_GE(exec.recorder().size(), 1u);  // default path unchanged
}

TEST(WallclockExecutor, ApiMisuseRejected) {
  WallclockOptions opts;
  opts.horizon = 50_ms;
  {
    WallclockExecutor exec(opts);
    EXPECT_THROW(exec.run(), ContractViolation);  // no tasks
  }
  {
    WallclockExecutor exec(opts);
    exec.add_task(task("t", 5, 5_ms, 25_ms));
    exec.run();
    EXPECT_THROW(exec.run(), ContractViolation);           // run twice
    EXPECT_THROW(exec.add_task(task("u", 5, 5_ms, 25_ms)),
                 ContractViolation);                       // add after run
  }
  WallclockOptions bad;
  bad.horizon = Duration::zero();
  EXPECT_THROW(WallclockExecutor{bad}, ContractViolation);
}

}  // namespace
}  // namespace rtft::posix
