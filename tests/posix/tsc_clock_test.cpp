#include "posix/tsc_clock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace rtft::posix {
namespace {

using namespace rtft::literals;

TEST(TscClock, UsesTscOnX86) {
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_TRUE(TscClock::uses_tsc());
#else
  EXPECT_FALSE(TscClock::uses_tsc());
#endif
}

TEST(TscClock, RawIsMonotonicNonDecreasing) {
  TscClock clock;
  std::uint64_t prev = clock.raw();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t cur = clock.raw();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(TscClock, NowStartsNearZeroAndAdvances) {
  TscClock clock;
  const Instant t0 = clock.now();
  EXPECT_LT(t0.since_epoch(), 10_ms);  // freshly constructed
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Instant t1 = clock.now();
  // Sleep granularity on a loaded machine is sloppy; just require the
  // clock to have moved forward by an amount in the right ballpark.
  EXPECT_GE(t1 - t0, 15_ms);
  EXPECT_LT(t1 - t0, 2000_ms);
}

TEST(TscClock, CalibrationIsPlausible) {
  TscClock clock;
  if (TscClock::uses_tsc()) {
    // Any remotely modern x86 runs between 0.4 and 10 GHz.
    EXPECT_GT(clock.cycles_per_ns(), 0.1);
    EXPECT_LT(clock.cycles_per_ns(), 20.0);
  } else {
    EXPECT_DOUBLE_EQ(clock.cycles_per_ns(), 1.0);
  }
}

TEST(TscClock, ToDurationScalesRawDeltas) {
  TscClock clock;
  const auto one_ms_raw = static_cast<std::uint64_t>(
      clock.cycles_per_ns() * 1e6);
  const Duration d = clock.to_duration(one_ms_raw);
  EXPECT_GE(d, Duration::us(900));
  EXPECT_LE(d, Duration::us(1100));
}

}  // namespace
}  // namespace rtft::posix
