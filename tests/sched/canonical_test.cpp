#include "sched/canonical.hpp"

#include <gtest/gtest.h>

#include "sched/task.hpp"

namespace rtft::sched {
namespace {

using namespace rtft::literals;

TaskSet base_set() {
  TaskSet ts;
  ts.add(TaskParams{"tau1", 20, 29_ms, 200_ms, 70_ms, Duration::zero()});
  ts.add(TaskParams{"tau2", 19, 29_ms, 200_ms, 150_ms, Duration::zero()});
  ts.add(TaskParams{"tau3", 18, 29_ms, 200_ms, 220_ms, Duration::zero()});
  return ts;
}

TEST(Canonical, RenamingTasksDoesNotChangeIdentity) {
  TaskSet renamed;
  renamed.add(TaskParams{"alpha", 20, 29_ms, 200_ms, 70_ms, Duration::zero()});
  renamed.add(TaskParams{"beta", 19, 29_ms, 200_ms, 150_ms, Duration::zero()});
  renamed.add(TaskParams{"gamma", 18, 29_ms, 200_ms, 220_ms, Duration::zero()});
  EXPECT_EQ(canonicalize(base_set()), canonicalize(renamed));
  EXPECT_EQ(canonical_hash(base_set()), canonical_hash(renamed));
}

TEST(Canonical, InsertionOrderDoesNotChangeIdentity) {
  TaskSet reordered;
  reordered.add(TaskParams{"tau3", 18, 29_ms, 200_ms, 220_ms, Duration::zero()});
  reordered.add(TaskParams{"tau1", 20, 29_ms, 200_ms, 70_ms, Duration::zero()});
  reordered.add(TaskParams{"tau2", 19, 29_ms, 200_ms, 150_ms, Duration::zero()});
  EXPECT_EQ(canonicalize(base_set()), canonicalize(reordered));
}

TEST(Canonical, EveryParameterFeedsTheIdentity) {
  const CanonicalTaskSet original = canonicalize(base_set());
  // Perturb each scheduling-relevant field of one task in turn.
  const TaskParams variants[] = {
      {"tau2", 7, 29_ms, 200_ms, 150_ms, Duration::zero()},    // priority
      {"tau2", 19, 30_ms, 200_ms, 150_ms, Duration::zero()},   // cost
      {"tau2", 19, 29_ms, 201_ms, 150_ms, Duration::zero()},   // period
      {"tau2", 19, 29_ms, 200_ms, 151_ms, Duration::zero()},   // deadline
      {"tau2", 19, 29_ms, 200_ms, 150_ms, 1_ms},               // offset
  };
  for (const TaskParams& v : variants) {
    TaskSet ts;
    ts.add(TaskParams{"tau1", 20, 29_ms, 200_ms, 70_ms, Duration::zero()});
    ts.add(v);
    ts.add(TaskParams{"tau3", 18, 29_ms, 200_ms, 220_ms, Duration::zero()});
    EXPECT_NE(canonicalize(ts), original) << "variant priority " << v.priority;
    EXPECT_NE(canonical_hash(ts), original.hash);
  }
}

TEST(Canonical, SubsetHasDistinctIdentity) {
  TaskSet two;
  two.add(TaskParams{"tau1", 20, 29_ms, 200_ms, 70_ms, Duration::zero()});
  two.add(TaskParams{"tau2", 19, 29_ms, 200_ms, 150_ms, Duration::zero()});
  EXPECT_NE(canonicalize(two), canonicalize(base_set()));
}

TEST(Canonical, RowsAreSortedByPriorityDescending) {
  const CanonicalTaskSet canon = canonicalize(base_set());
  ASSERT_EQ(canon.rows.size(), 3u);
  EXPECT_GE(canon.rows[0][0], canon.rows[1][0]);
  EXPECT_GE(canon.rows[1][0], canon.rows[2][0]);
}

TEST(Canonical, HashMatchesCanonicalize) {
  EXPECT_EQ(canonical_hash(base_set()), canonicalize(base_set()).hash);
}

}  // namespace
}  // namespace rtft::sched
