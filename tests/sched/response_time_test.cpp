#include "sched/response_time.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sched/feasibility.hpp"
#include "support/paper_systems.hpp"
#include "support/random_sets.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::make_random_task_set;
using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

// ---------------------------------------------------------------------------
// Paper Table 1 / Figure 1: the worst job is not the critical-instant job.
// ---------------------------------------------------------------------------

TEST(PaperTable1, Tau1RespondsInItsCost) {
  const TaskSet ts = table1_system();
  const RtaResult r = response_time(ts, 0);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcrt, 3_ms);
  EXPECT_EQ(r.worst_job, 0);
}

TEST(PaperTable1, Tau2WorstCaseIsSecondJob) {
  const TaskSet ts = table1_system();
  RtaOptions opts;
  opts.record_jobs = true;
  const RtaResult r = response_time(ts, 1, opts);
  ASSERT_TRUE(r.bounded);
  // The busy period spans three jobs with responses 5, 6, 4 ms — the
  // worst response belongs to the *second* job, which is exactly the
  // point of the paper's Figure 1.
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_EQ(r.jobs[0].response, 5_ms);
  EXPECT_EQ(r.jobs[1].response, 6_ms);
  EXPECT_EQ(r.jobs[2].response, 4_ms);
  EXPECT_EQ(r.wcrt, 6_ms);
  EXPECT_EQ(r.worst_job, 1);
  EXPECT_EQ(r.jobs_examined, 3);
}

TEST(PaperTable1, ClassicFixedPointUnderestimatesTau2) {
  // The classic single-job analysis returns 5 ms — valid only when the
  // response fits in the period, which it does not here (5 > 4).
  const TaskSet ts = table1_system();
  const auto classic = classic_response_time(ts, 1);
  ASSERT_TRUE(classic.has_value());
  EXPECT_EQ(*classic, 5_ms);
  EXPECT_LT(*classic, response_time(ts, 1).wcrt);
}

// ---------------------------------------------------------------------------
// Paper Table 2: the evaluated system.
// ---------------------------------------------------------------------------

TEST(PaperTable2, WorstCaseResponseTimesAre29_58_87) {
  const TaskSet ts = table2_system();
  EXPECT_EQ(response_time(ts, 0).wcrt, 29_ms);
  EXPECT_EQ(response_time(ts, 1).wcrt, 58_ms);
  EXPECT_EQ(response_time(ts, 2).wcrt, 87_ms);
}

TEST(PaperTable2, AllWorstCasesAtCriticalInstantJob) {
  const TaskSet ts = table2_system();
  for (TaskId i = 0; i < ts.size(); ++i) {
    const RtaResult r = response_time(ts, i);
    ASSERT_TRUE(r.bounded);
    EXPECT_EQ(r.worst_job, 0);
  }
}

TEST(PaperTable2, ClassicAndGeneralAgree) {
  const TaskSet ts = table2_system();
  for (TaskId i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(*classic_response_time(ts, i), response_time(ts, i).wcrt);
  }
}

// ---------------------------------------------------------------------------
// Structural cases.
// ---------------------------------------------------------------------------

TEST(ResponseTime, SingleTaskIsItsCost) {
  TaskSet ts;
  ts.add(TaskParams{"solo", 5, 7_ms, 50_ms, 50_ms, Duration::zero()});
  EXPECT_EQ(response_time(ts, 0).wcrt, 7_ms);
}

TEST(ResponseTime, EqualPriorityTasksInterfere) {
  // Two same-priority tasks: each sees the other as an interferer, per
  // the paper's HP(S) ("higher or equal priority").
  TaskSet ts;
  ts.add(TaskParams{"a", 5, 2_ms, 10_ms, 10_ms, Duration::zero()});
  ts.add(TaskParams{"b", 5, 3_ms, 10_ms, 10_ms, Duration::zero()});
  EXPECT_EQ(response_time(ts, 0).wcrt, 5_ms);
  EXPECT_EQ(response_time(ts, 1).wcrt, 5_ms);
}

TEST(ResponseTime, OverloadedInterferersReportedUnbounded) {
  TaskSet ts;
  ts.add(TaskParams{"hog", 9, 9_ms, 10_ms, 10_ms, Duration::zero()});
  ts.add(TaskParams{"low", 1, 5_ms, 20_ms, 20_ms, Duration::zero()});
  // Combined load of {hog, low} = 0.9 + 0.25 > 1.
  const RtaResult r = response_time(ts, 1);
  EXPECT_FALSE(r.bounded);
}

TEST(ResponseTime, ExactlyFullUtilizationTerminates) {
  // U = 1 with harmonic periods: the busy period closes exactly at the
  // period boundary; the analysis must terminate and report 2 + 2 = 4.
  TaskSet ts;
  ts.add(TaskParams{"hi", 9, 2_ms, 4_ms, 4_ms, Duration::zero()});
  ts.add(TaskParams{"lo", 1, 2_ms, 4_ms, 4_ms, Duration::zero()});
  const RtaResult r = response_time(ts, 1);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcrt, 4_ms);
}

TEST(ResponseTime, MaxJobsGuardReportsUnbounded) {
  // Arbitrary-deadline task whose busy period is long: a tiny job cap
  // must end the analysis with bounded == false rather than hang.
  TaskSet ts;
  ts.add(TaskParams{"hi", 9, 5_ms, 10_ms, 10_ms, Duration::zero()});
  ts.add(TaskParams{"lo", 1, 499_us, 1_ms, 100_ms, Duration::zero()});
  RtaOptions opts;
  opts.max_jobs = 2;
  const RtaResult r = response_time(ts, 1, opts);
  EXPECT_FALSE(r.bounded);
  EXPECT_EQ(r.jobs_examined, 2);
}

TEST(ResponseTime, RecordedJobsRespectCap) {
  const TaskSet ts = table1_system();
  RtaOptions opts;
  opts.record_jobs = true;
  opts.max_recorded_jobs = 1;
  const RtaResult r = response_time(ts, 1, opts);
  EXPECT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs_examined, 3);
}

TEST(ResponseTime, InvalidTaskIdThrows) {
  const TaskSet ts = table1_system();
  EXPECT_THROW((void)response_time(ts, 5), ContractViolation);
}

TEST(ResponseTimes, ReturnsAllTasksInOrder) {
  const auto all = response_times(table2_system());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].wcrt, 29_ms);
  EXPECT_EQ(all[1].wcrt, 58_ms);
  EXPECT_EQ(all[2].wcrt, 87_ms);
}

// ---------------------------------------------------------------------------
// Properties over random task sets.
// ---------------------------------------------------------------------------

class RtaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaPropertyTest, WcrtAtLeastCostAndMonotoneInCost) {
  Rng rng(GetParam());
  RandomTaskSetSpec spec;
  spec.tasks = 1 + static_cast<std::size_t>(rng.next_in(1, 7));
  spec.total_utilization = 0.5 + 0.3 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);

  for (TaskId i = 0; i < ts.size(); ++i) {
    const RtaResult r = response_time(ts, i);
    if (!r.bounded) continue;
    EXPECT_GE(r.wcrt, ts[i].cost) << "task " << i;

    // Inflating the highest-priority task's cost cannot shrink anyone's
    // WCRT.
    const TaskId top = ts.by_priority_desc().front();
    const TaskSet inflated = ts.with_cost(top, ts[top].cost + 1_ms);
    const RtaResult r2 = response_time(inflated, i);
    if (r2.bounded) {
      EXPECT_GE(r2.wcrt, r.wcrt) << "task " << i;
    }
  }
}

TEST_P(RtaPropertyTest, ClassicEqualsGeneralWhenFirstJobClosesBusyPeriod) {
  Rng rng(GetParam() ^ 0xabcdef);
  RandomTaskSetSpec spec;
  spec.tasks = 1 + static_cast<std::size_t>(rng.next_in(1, 7));
  spec.total_utilization = 0.4 + 0.3 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);

  for (TaskId i = 0; i < ts.size(); ++i) {
    const RtaResult general = response_time(ts, i);
    if (!general.bounded) continue;
    if (general.jobs_examined == 1) {
      const auto classic = classic_response_time(ts, i);
      ASSERT_TRUE(classic.has_value());
      EXPECT_EQ(*classic, general.wcrt);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rtft::sched
