#include "sched/task.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "support/paper_systems.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::table2_system;
using namespace rtft::literals;

TaskParams valid_task(std::string name = "t") {
  return TaskParams{std::move(name), 10, 1_ms, 10_ms, 10_ms,
                    Duration::zero()};
}

TEST(TaskSetValidation, AcceptsValidTask) {
  TaskSet ts;
  EXPECT_EQ(ts.add(valid_task()), 0u);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TaskSetValidation, RejectsEmptyName) {
  TaskParams p = valid_task("");
  EXPECT_THROW(validate_params(p), ContractViolation);
}

TEST(TaskSetValidation, RejectsNonPositiveParameters) {
  {
    TaskParams p = valid_task();
    p.period = Duration::zero();
    EXPECT_THROW(validate_params(p), ContractViolation);
  }
  {
    TaskParams p = valid_task();
    p.cost = Duration::zero();
    EXPECT_THROW(validate_params(p), ContractViolation);
  }
  {
    TaskParams p = valid_task();
    p.deadline = Duration::ms(-1);
    EXPECT_THROW(validate_params(p), ContractViolation);
  }
  {
    TaskParams p = valid_task();
    p.offset = Duration::ms(-1);
    EXPECT_THROW(validate_params(p), ContractViolation);
  }
}

TEST(TaskSetValidation, RejectsDuplicateNames) {
  TaskSet ts;
  ts.add(valid_task("same"));
  EXPECT_THROW(ts.add(valid_task("same")), ContractViolation);
}

TEST(TaskSet, FindByName) {
  const TaskSet ts = table2_system();
  EXPECT_EQ(ts.find("tau2"), 1u);
  EXPECT_TRUE(ts.contains("tau3"));
  EXPECT_FALSE(ts.contains("tau4"));
  EXPECT_THROW((void)ts.find("tau4"), ContractViolation);
}

TEST(TaskSet, IndexOutOfRangeThrows) {
  const TaskSet ts = table2_system();
  EXPECT_THROW((void)ts[3], ContractViolation);
}

TEST(TaskSet, InterferersFollowPaperHpDefinition) {
  const TaskSet ts = table2_system();
  // tau1 (P=20) has no interferer; tau3 (P=16) is interfered by both.
  EXPECT_TRUE(ts.interferers_of(0).empty());
  EXPECT_EQ(ts.interferers_of(1), (std::vector<TaskId>{0}));
  EXPECT_EQ(ts.interferers_of(2), (std::vector<TaskId>{0, 1}));
}

TEST(TaskSet, EqualPrioritiesInterfereMutually) {
  TaskSet ts;
  ts.add(valid_task("a"));
  ts.add(valid_task("b"));  // same priority 10
  EXPECT_EQ(ts.interferers_of(0), (std::vector<TaskId>{1}));
  EXPECT_EQ(ts.interferers_of(1), (std::vector<TaskId>{0}));
}

TEST(TaskSet, ByPriorityDescIsStable) {
  TaskSet ts;
  TaskParams a = valid_task("a");
  a.priority = 5;
  TaskParams b = valid_task("b");
  b.priority = 9;
  TaskParams c = valid_task("c");
  c.priority = 5;
  ts.add(a);
  ts.add(b);
  ts.add(c);
  EXPECT_EQ(ts.by_priority_desc(), (std::vector<TaskId>{1, 0, 2}));
}

TEST(TaskSet, UtilizationOfPaperSystem) {
  // 29/200 + 29/250 + 29/1500 = 0.145 + 0.116 + 0.01933...
  EXPECT_NEAR(table2_system().utilization(), 0.2803, 1e-3);
}

TEST(TaskSet, WithAllCostsInflated) {
  const TaskSet inflated = table2_system().with_all_costs_inflated(11_ms);
  for (TaskId i = 0; i < inflated.size(); ++i) {
    EXPECT_EQ(inflated[i].cost, 40_ms);
    EXPECT_EQ(inflated[i].period, table2_system()[i].period);
  }
}

TEST(TaskSet, WithCostReplacesOneTask) {
  const TaskSet modified = table2_system().with_cost(0, 62_ms);
  EXPECT_EQ(modified[0].cost, 62_ms);
  EXPECT_EQ(modified[1].cost, 29_ms);
  EXPECT_EQ(modified[2].cost, 29_ms);
}

TEST(TaskSet, WithoutRemovesTask) {
  const TaskSet reduced = table2_system().without(1);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0].name, "tau1");
  EXPECT_EQ(reduced[1].name, "tau3");
}

TEST(TaskSet, WithPriorityReplacesPriority) {
  const TaskSet modified = table2_system().with_priority(2, 25);
  EXPECT_EQ(modified[2].priority, 25);
  // tau3 now outranks everyone.
  EXPECT_EQ(modified.by_priority_desc().front(), 2u);
}

TEST(TaskParams, UtilizationIsCostOverPeriod) {
  EXPECT_DOUBLE_EQ(valid_task().utilization(), 0.1);
}

}  // namespace
}  // namespace rtft::sched
