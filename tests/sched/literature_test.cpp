// Textbook/literature task sets with published worst-case response
// times — independent validation vectors for the analysis (and, for the
// arbitrary-deadline case, for the engine's backlog semantics).
#include <gtest/gtest.h>

#include "runtime/engine.hpp"
#include "sched/response_time.hpp"
#include "sched/utilization.hpp"
#include "trace/recorder.hpp"

namespace rtft::sched {
namespace {

using namespace rtft::literals;

TEST(Literature, BurnsWellingsClassicTriple) {
  // Burns & Wellings, "Real-Time Systems and Programming Languages":
  // a(C12 T52), b(C10 T40), c(C10 T30), RM priorities.
  // Published responses: R_c = 10, R_b = 20, R_a = 52.
  TaskSet ts;
  ts.add(TaskParams{"a", 1, 12_ms, 52_ms, 52_ms, 0_ms});
  ts.add(TaskParams{"b", 2, 10_ms, 40_ms, 40_ms, 0_ms});
  ts.add(TaskParams{"c", 3, 10_ms, 30_ms, 30_ms, 0_ms});
  EXPECT_EQ(response_time(ts, 2).wcrt, 10_ms);
  EXPECT_EQ(response_time(ts, 1).wcrt, 20_ms);
  EXPECT_EQ(response_time(ts, 0).wcrt, 52_ms);  // exactly its period
}

TEST(Literature, LiuLayland1973Example) {
  // Liu & Layland's running example: τ1(C20 T100), τ2(C40 T150),
  // τ3(C100 T350) under RM. Responses: 20, 60, 240.
  TaskSet ts;
  ts.add(TaskParams{"t1", 3, 20_ms, 100_ms, 100_ms, 0_ms});
  ts.add(TaskParams{"t2", 2, 40_ms, 150_ms, 150_ms, 0_ms});
  ts.add(TaskParams{"t3", 1, 100_ms, 350_ms, 350_ms, 0_ms});
  EXPECT_EQ(response_time(ts, 0).wcrt, 20_ms);
  EXPECT_EQ(response_time(ts, 1).wcrt, 60_ms);
  EXPECT_EQ(response_time(ts, 2).wcrt, 240_ms);
  EXPECT_EQ(load_test(ts), LoadVerdict::kBelowOne);  // U ≈ 0.753
}

TEST(Literature, Lehoczky1990ArbitraryDeadlineExample) {
  // Lehoczky's arbitrary-deadline example: τ1(C26 T70), τ2(C62 T100),
  // U = 0.9914. τ2's level-2 busy period spans seven jobs with
  // responses 114, 102, 116, 104, 118, 106, 94 — the worst (118) at the
  // FIFTH job, far from the critical instant.
  TaskSet ts;
  ts.add(TaskParams{"t1", 2, 26_ms, 70_ms, 70_ms, 0_ms});
  ts.add(TaskParams{"t2", 1, 62_ms, 100_ms, 120_ms, 0_ms});
  RtaOptions opts;
  opts.record_jobs = true;
  const RtaResult r = response_time(ts, 1, opts);
  ASSERT_TRUE(r.bounded);
  const std::vector<Duration> expected{114_ms, 102_ms, 116_ms, 104_ms,
                                       118_ms, 106_ms, 94_ms};
  ASSERT_EQ(r.jobs.size(), expected.size());
  for (std::size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(r.jobs[q].response, expected[q]) << "job " << q;
  }
  EXPECT_EQ(r.wcrt, 118_ms);
  EXPECT_EQ(r.worst_job, 4);
}

TEST(Literature, Lehoczky1990ExampleSimulatesIdentically) {
  // The engine's backlogged-release semantics must reproduce the same
  // seven responses over one hyperperiod (lcm(70,100) = 700 ms).
  TaskSet ts;
  ts.add(TaskParams{"t1", 2, 26_ms, 70_ms, 70_ms, 0_ms});
  ts.add(TaskParams{"t2", 1, 62_ms, 100_ms, 120_ms, 0_ms});

  trace::Recorder rec;
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + 700_ms;
  opts.sink = &rec;
  rt::Engine eng(opts);
  eng.add_task(ts[0]);
  const rt::TaskHandle t2 = eng.add_task(ts[1]);
  eng.run();

  std::vector<Duration> simulated;
  for (const auto& e : rec.events()) {
    if (e.kind == trace::EventKind::kJobEnd &&
        e.task == static_cast<std::uint32_t>(t2)) {
      simulated.push_back(Duration::ns(e.detail));
    }
  }
  const std::vector<Duration> expected{114_ms, 102_ms, 116_ms, 104_ms,
                                       118_ms, 106_ms, 94_ms};
  ASSERT_EQ(simulated, expected);
}

TEST(Literature, RateMonotonicBoundaryPair) {
  // The classic RM worst case for two tasks: C1/T1 = C2/T2 with
  // U = 2(√2−1): τ1(C29 T70), τ2(C41 T100) has U ≈ 0.8243, right at the
  // Liu&Layland bound — and indeed exactly schedulable.
  TaskSet ts;
  ts.add(TaskParams{"t1", 2, 29_ms, 70_ms, 70_ms, 0_ms});
  ts.add(TaskParams{"t2", 1, 41_ms, 100_ms, 100_ms, 0_ms});
  const RtaResult r = response_time(ts, 1);
  ASSERT_TRUE(r.bounded);
  // R = 41 + 29 = 70: τ2 completes exactly as τ1's second job releases —
  // the defining knife-edge of the RM boundary pair.
  EXPECT_EQ(r.wcrt, 70_ms);
}

}  // namespace
}  // namespace rtft::sched
