#include "sched/allowance.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sched/feasibility.hpp"
#include "support/paper_systems.hpp"
#include "support/random_sets.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::make_random_task_set;
using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

// ---------------------------------------------------------------------------
// Paper Table 2 / Table 3 values.
// ---------------------------------------------------------------------------

TEST(PaperEquitableAllowance, AllowanceIsElevenMilliseconds) {
  const EquitableAllowance a = equitable_allowance(table2_system());
  ASSERT_TRUE(a.feasible_at_zero);
  EXPECT_EQ(a.allowance, 11_ms);
}

TEST(PaperEquitableAllowance, InflatedWcrtsMatchTable3) {
  // Table 3: WCRT1+11 = 40, WCRT2+22 = 80, WCRT3+33 = 120.
  const EquitableAllowance a = equitable_allowance(table2_system());
  ASSERT_EQ(a.inflated_wcrt.size(), 3u);
  EXPECT_EQ(a.inflated_wcrt[0], 40_ms);
  EXPECT_EQ(a.inflated_wcrt[1], 80_ms);
  EXPECT_EQ(a.inflated_wcrt[2], 120_ms);
}

TEST(PaperSystemAllowance, BudgetIsThirtyThreeMilliseconds) {
  // §6.5: "all the system time available in the worst execution case,
  // that is to say thirty three milliseconds".
  const SystemAllowance s = system_allowance(table2_system());
  ASSERT_TRUE(s.feasible_at_zero);
  EXPECT_EQ(s.budget, 33_ms);
  EXPECT_EQ(s.beneficiary, 0u);  // τ1, the highest priority
}

TEST(PaperSystemAllowance, StopThresholdsAreWcrtPlusBudget) {
  const SystemAllowance s = system_allowance(table2_system());
  ASSERT_EQ(s.stop_thresholds.size(), 3u);
  EXPECT_EQ(s.stop_thresholds[0], 62_ms);   // 29 + 33
  EXPECT_EQ(s.stop_thresholds[1], 91_ms);   // 58 + 33
  EXPECT_EQ(s.stop_thresholds[2], 120_ms);  // 87 + 33
}

TEST(PaperMaxSingleOverrun, PerTaskValues) {
  const TaskSet ts = table2_system();
  // τ1: bounded by τ3's deadline — 87 + o <= 120.
  EXPECT_EQ(max_single_task_overrun(ts, 0), 33_ms);
  // τ2: same constraint through τ3 — 87 + o <= 120.
  EXPECT_EQ(max_single_task_overrun(ts, 1), 33_ms);
  // τ3: only its own deadline constrains it — 87 + o <= 120.
  EXPECT_EQ(max_single_task_overrun(ts, 2), 33_ms);
}

// ---------------------------------------------------------------------------
// Semantics and edge cases.
// ---------------------------------------------------------------------------

TEST(EquitableAllowance, InfeasibleSystemReportsNotFeasibleAtZero) {
  const EquitableAllowance a = equitable_allowance(table1_system());
  EXPECT_FALSE(a.feasible_at_zero);
}

TEST(EquitableAllowance, MillisecondGranularityMatchesExactSearch) {
  AllowanceOptions opts;
  opts.granularity = 1_ms;
  const EquitableAllowance coarse = equitable_allowance(table2_system(), opts);
  const EquitableAllowance exact = equitable_allowance(table2_system());
  EXPECT_EQ(coarse.allowance, exact.allowance);  // boundary is at 11 ms
}

TEST(EquitableAllowance, ZeroSlackSystemGetsZeroAllowance) {
  // Task with cost == deadline: no allowance possible.
  TaskSet ts;
  ts.add(TaskParams{"tight", 5, 10_ms, 20_ms, 10_ms, Duration::zero()});
  const EquitableAllowance a = equitable_allowance(ts);
  ASSERT_TRUE(a.feasible_at_zero);
  EXPECT_EQ(a.allowance, Duration::zero());
}

TEST(EquitableAllowance, EmptySetThrows) {
  EXPECT_THROW((void)equitable_allowance(TaskSet{}), ContractViolation);
}

TEST(MaxSingleOverrun, InfeasibleSystemGivesZero) {
  EXPECT_EQ(max_single_task_overrun(table1_system(), 0), Duration::zero());
}

TEST(SystemAllowance, NominalWcrtsReported) {
  const SystemAllowance s = system_allowance(table2_system());
  ASSERT_EQ(s.nominal_wcrt.size(), 3u);
  EXPECT_EQ(s.nominal_wcrt[0], 29_ms);
  EXPECT_EQ(s.nominal_wcrt[1], 58_ms);
  EXPECT_EQ(s.nominal_wcrt[2], 87_ms);
}

// ---------------------------------------------------------------------------
// Properties over random task sets: maximality of the searched values.
// ---------------------------------------------------------------------------

class AllowancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AllowancePropertyTest, EquitableAllowanceIsMaximal) {
  Rng rng(GetParam());
  RandomTaskSetSpec spec;
  spec.tasks = 1 + static_cast<std::size_t>(rng.next_in(1, 5));
  spec.total_utilization = 0.3 + 0.4 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);
  if (!is_feasible(ts)) GTEST_SKIP() << "random set infeasible";

  AllowanceOptions opts;
  opts.granularity = 100_us;
  const EquitableAllowance a = equitable_allowance(ts, opts);
  ASSERT_TRUE(a.feasible_at_zero);
  // Feasible at A, infeasible at A + granularity.
  EXPECT_TRUE(is_feasible(ts.with_all_costs_inflated(a.allowance)));
  EXPECT_FALSE(is_feasible(
      ts.with_all_costs_inflated(a.allowance + opts.granularity)));
}

TEST_P(AllowancePropertyTest, SingleTaskOverrunIsMaximal) {
  Rng rng(GetParam() ^ 0x5a5a5a);
  RandomTaskSetSpec spec;
  spec.tasks = 1 + static_cast<std::size_t>(rng.next_in(1, 5));
  spec.total_utilization = 0.3 + 0.4 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);
  if (!is_feasible(ts)) GTEST_SKIP() << "random set infeasible";

  AllowanceOptions opts;
  opts.granularity = 100_us;
  const TaskId top = ts.by_priority_desc().front();
  const Duration b = max_single_task_overrun(ts, top, opts);
  EXPECT_TRUE(is_feasible(ts.with_cost(top, ts[top].cost + b)));
  EXPECT_FALSE(is_feasible(
      ts.with_cost(top, ts[top].cost + b + opts.granularity)));
}

TEST_P(AllowancePropertyTest, SystemBudgetAtLeastEquitableAllowance) {
  // Granting everything to one task can never be worse than the per-task
  // equitable share.
  Rng rng(GetParam() ^ 0xf00d);
  RandomTaskSetSpec spec;
  spec.tasks = 2 + static_cast<std::size_t>(rng.next_in(0, 4));
  spec.total_utilization = 0.3 + 0.4 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);
  if (!is_feasible(ts)) GTEST_SKIP() << "random set infeasible";

  AllowanceOptions opts;
  opts.granularity = 100_us;
  const EquitableAllowance a = equitable_allowance(ts, opts);
  const SystemAllowance s = system_allowance(ts, opts);
  EXPECT_GE(s.budget, a.allowance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllowancePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace rtft::sched
