#include "sched/utilization.hpp"

#include <gtest/gtest.h>

#include "support/paper_systems.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

TEST(LoadTest, PaperTable1SitsExactlyAtOne) {
  // 3/6 + 2/4 = 1 — the boundary case the paper's Figure 1 explores.
  EXPECT_EQ(load_test(table1_system()), LoadVerdict::kExactlyOne);
}

TEST(LoadTest, PaperTable2IsWellBelowOne) {
  EXPECT_EQ(load_test(table2_system()), LoadVerdict::kBelowOne);
}

TEST(LoadTest, OverloadedSetIsAboveOne) {
  TaskSet ts;
  ts.add(TaskParams{"a", 2, 5_ms, 8_ms, 8_ms, Duration::zero()});
  ts.add(TaskParams{"b", 1, 4_ms, 8_ms, 8_ms, Duration::zero()});
  EXPECT_EQ(load_test(ts), LoadVerdict::kAboveOne);
}

TEST(LiuLaylandBound, KnownValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // n -> infinity: ln 2 ≈ 0.6931.
  EXPECT_NEAR(liu_layland_bound(100000), 0.6931, 1e-3);
}

TEST(LiuLaylandBound, IsMonotoneDecreasing) {
  for (std::size_t n = 1; n < 64; ++n) {
    EXPECT_GT(liu_layland_bound(n), liu_layland_bound(n + 1));
  }
}

TEST(LiuLayland, AcceptsLowUtilizationSet) {
  EXPECT_TRUE(passes_liu_layland(table2_system()));  // U ≈ 0.28
}

TEST(LiuLayland, RejectsBoundarySet) {
  EXPECT_FALSE(passes_liu_layland(table1_system()));  // U = 1 > bound(2)
}

TEST(Hyperbolic, AcceptsLowUtilizationSet) {
  EXPECT_TRUE(passes_hyperbolic(table2_system()));
}

TEST(Hyperbolic, DominatesLiuLayland) {
  // A set accepted by LL must be accepted by the hyperbolic bound
  // (Bini & Buttazzo 2003). Spot-check the classic example that
  // hyperbolic accepts but LL rejects: two tasks with U1 = U2 = 0.45.
  TaskSet ts;
  ts.add(TaskParams{"a", 2, 45_ms, 100_ms, 100_ms, Duration::zero()});
  ts.add(TaskParams{"b", 1, 45_ms, 100_ms, 100_ms, Duration::zero()});
  EXPECT_FALSE(passes_liu_layland(ts));   // 0.9 > 0.8284
  EXPECT_FALSE(passes_hyperbolic(ts));    // 1.45^2 = 2.1025 > 2
  // Dominance needs asymmetric utilizations: U1=0.5, U2=0.33 is rejected
  // by LL (0.83 > 0.8284) but accepted by hyperbolic (1.5*1.33 = 1.995).
  TaskSet ts2;
  ts2.add(TaskParams{"a", 2, 50_ms, 100_ms, 100_ms, Duration::zero()});
  ts2.add(TaskParams{"b", 1, 33_ms, 100_ms, 100_ms, Duration::zero()});
  EXPECT_FALSE(passes_liu_layland(ts2));
  EXPECT_TRUE(passes_hyperbolic(ts2));
}

}  // namespace
}  // namespace rtft::sched
