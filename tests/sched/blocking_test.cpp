#include "sched/blocking.hpp"

#include <gtest/gtest.h>

#include "support/paper_systems.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::table2_system;
using namespace rtft::literals;

/// Table 2 system with a shared resource: tau1 and tau3 lock "bus"
/// (tau3 for 8 ms — the classic priority-inversion shape PCP bounds).
ResourceModel bus_model() {
  ResourceModel m;
  m.add("tau1", "bus", 3_ms);
  m.add("tau3", "bus", 8_ms);
  return m;
}

TEST(ResourceModel, CeilingIsMaxUserPriority) {
  const TaskSet ts = table2_system();
  const ResourceModel m = bus_model();
  ASSERT_TRUE(m.ceiling(ts, "bus").has_value());
  EXPECT_EQ(*m.ceiling(ts, "bus"), 20);  // tau1's priority
  EXPECT_FALSE(m.ceiling(ts, "unused").has_value());
}

TEST(ResourceModel, BlockingTermsFollowPcp) {
  const TaskSet ts = table2_system();
  const ResourceModel m = bus_model();
  // tau1 (P20): blocked by tau3's 8 ms section (ceiling 20 >= 20).
  EXPECT_EQ(m.blocking_term(ts, 0), 8_ms);
  // tau2 (P18): does not use the bus, but the ceiling (20) is above its
  // priority and tau3 is lower: classic ceiling blocking, 8 ms.
  EXPECT_EQ(m.blocking_term(ts, 1), 8_ms);
  // tau3 (P16): lowest priority — nobody below to block it.
  EXPECT_EQ(m.blocking_term(ts, 2), Duration::zero());
}

TEST(ResourceModel, HigherPrioritySectionsNeverBlock) {
  const TaskSet ts = table2_system();
  ResourceModel m;
  m.add("tau1", "bus", 5_ms);  // highest-priority task only
  EXPECT_EQ(m.blocking_term(ts, 1), Duration::zero());
  EXPECT_EQ(m.blocking_term(ts, 2), Duration::zero());
}

TEST(ResourceModel, CeilingBelowTaskMeansNoContention) {
  const TaskSet ts = table2_system();
  ResourceModel m;
  m.add("tau2", "log", 4_ms);
  m.add("tau3", "log", 6_ms);
  // ceiling(log) = 18 < 20: tau1 never touches it.
  EXPECT_EQ(m.blocking_term(ts, 0), Duration::zero());
  // tau2 can be blocked by tau3's 6 ms section.
  EXPECT_EQ(m.blocking_term(ts, 1), 6_ms);
}

TEST(BlockingRta, AddsBlockingOnce) {
  const TaskSet ts = table2_system();
  const ResourceModel m = bus_model();
  // tau1: 29 + 8 = 37; tau2: (29+8) + 29 = 66; tau3: 87 + 0 = 87.
  const BlockingVerdict v1 = response_time_with_blocking(ts, 0, m);
  const BlockingVerdict v2 = response_time_with_blocking(ts, 1, m);
  const BlockingVerdict v3 = response_time_with_blocking(ts, 2, m);
  EXPECT_EQ(v1.wcrt, 37_ms);
  EXPECT_EQ(v2.wcrt, 66_ms);
  EXPECT_EQ(v3.wcrt, 87_ms);
  EXPECT_TRUE(v1.meets_deadline && v2.meets_deadline && v3.meets_deadline);
}

TEST(BlockingRta, ReportAggregatesFeasibility) {
  const BlockingReport ok = analyze_with_blocking(table2_system(),
                                                  bus_model());
  EXPECT_TRUE(ok.feasible);
  // A 45 ms critical section of tau3 pushes tau1 past its 70 ms deadline
  // (29 + 45 = 74).
  ResourceModel heavy;
  heavy.add("tau1", "bus", 1_ms);
  heavy.add("tau3", "bus", 45_ms);
  const BlockingReport bad = analyze_with_blocking(table2_system(), heavy);
  EXPECT_FALSE(bad.feasible);
  EXPECT_FALSE(bad.tasks[0].meets_deadline);
}

TEST(BlockingAllowance, ShrinksByTheBlockingInflation) {
  const TaskSet ts = table2_system();
  // Without blocking the equitable allowance is 11 ms; with the bus
  // model, tau3's constraint (3·(29+A) <= 120) is unchanged (B3 = 0) but
  // tau1 (29+A+8 <= 70) and tau2 (2·(29+A)+8 <= 120) tighten.
  const Duration a = equitable_allowance_with_blocking(ts, bus_model());
  // Constraints: tau1 A <= 33; tau2 A <= 27; tau3 A <= 11 -> A = 11 still.
  EXPECT_EQ(a, 11_ms);

  // Make blocking bite: a 30 ms section under tau3 leaves tau1 only
  // 70 - 29 - 30 = 11, tau2: 120 - 58 - 30 = 32 over two jobs -> 16,
  // tau3 unchanged (11): A = 11 still... use tau2's resource instead.
  ResourceModel tight;
  tight.add("tau1", "bus", 1_ms);
  tight.add("tau2", "bus", 36_ms);
  // tau1: 29 + A + 36 <= 70 -> A <= 5.
  const Duration a2 = equitable_allowance_with_blocking(ts, tight);
  EXPECT_EQ(a2, 5_ms);
}

TEST(BlockingAllowance, InfeasibleBaseGivesZero) {
  ResourceModel heavy;
  heavy.add("tau1", "bus", 1_ms);
  heavy.add("tau3", "bus", 45_ms);
  EXPECT_EQ(equitable_allowance_with_blocking(table2_system(), heavy),
            Duration::zero());
}

TEST(ResourceModel, ValidationAndInvariants) {
  ResourceModel m;
  EXPECT_THROW(m.add("", "bus", 1_ms), ContractViolation);
  EXPECT_THROW(m.add("t", "", 1_ms), ContractViolation);
  EXPECT_THROW(m.add("t", "bus", Duration::zero()), ContractViolation);
  m.add("ghost", "bus", 1_ms);
  EXPECT_THROW(m.validate_against(table2_system()), ContractViolation);
}

}  // namespace
}  // namespace rtft::sched
