#include "sched/feasibility.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "support/paper_systems.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::table1_system;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

TEST(Analyze, PaperTable2IsFeasible) {
  const FeasibilityReport report = analyze(table2_system());
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.load, LoadVerdict::kBelowOne);
  ASSERT_EQ(report.tasks.size(), 3u);
  EXPECT_EQ(report.tasks[0].wcrt, 29_ms);
  EXPECT_EQ(report.tasks[1].wcrt, 58_ms);
  EXPECT_EQ(report.tasks[2].wcrt, 87_ms);
  for (const TaskVerdict& v : report.tasks) {
    EXPECT_TRUE(v.bounded);
    EXPECT_TRUE(v.meets_deadline);
  }
}

TEST(Analyze, PaperTable1IsInfeasible) {
  // τ2's WCRT (6 ms) exceeds its 2 ms deadline.
  const FeasibilityReport report = analyze(table1_system());
  EXPECT_FALSE(report.feasible);
  EXPECT_TRUE(report.tasks[0].meets_deadline);
  EXPECT_FALSE(report.tasks[1].meets_deadline);
}

TEST(Analyze, OverloadIsInfeasibleRegardlessOfDeadlines) {
  TaskSet ts;
  ts.add(TaskParams{"a", 2, 6_ms, 10_ms, 100_ms, Duration::zero()});
  ts.add(TaskParams{"b", 1, 5_ms, 10_ms, 100_ms, Duration::zero()});
  const FeasibilityReport report = analyze(ts);
  EXPECT_EQ(report.load, LoadVerdict::kAboveOne);
  EXPECT_FALSE(report.feasible);
}

TEST(Analyze, SummaryMentionsEveryTask) {
  const TaskSet ts = table2_system();
  const std::string s = analyze(ts).summary(ts);
  EXPECT_NE(s.find("tau1"), std::string::npos);
  EXPECT_NE(s.find("tau2"), std::string::npos);
  EXPECT_NE(s.find("tau3"), std::string::npos);
  EXPECT_NE(s.find("FEASIBLE"), std::string::npos);
}

TEST(IsFeasible, MatchesAnalyze) {
  EXPECT_TRUE(is_feasible(table2_system()));
  EXPECT_FALSE(is_feasible(table1_system()));
}

TEST(FeasibilityAnalysis, AdmitsUntilSaturation) {
  FeasibilityAnalysis admission;
  // Table 2 tasks are admitted one by one.
  for (const TaskParams& t : table2_system()) {
    EXPECT_TRUE(admission.add(t)) << t.name;
  }
  EXPECT_EQ(admission.task_set().size(), 3u);

  // A heavy interloper that would break τ3's deadline is rejected and the
  // set stays intact.
  TaskParams hog{"hog", 30, 40_ms, 100_ms, 100_ms, Duration::zero()};
  // τ3 would see 29+40 per 100ms window: R = 29+29+29 + 2*40 = 167 > 120.
  EXPECT_FALSE(admission.add(hog));
  EXPECT_EQ(admission.task_set().size(), 3u);
  EXPECT_FALSE(admission.task_set().contains("hog"));
}

TEST(FeasibilityAnalysis, RemovalAllowsReAdmission) {
  FeasibilityAnalysis admission;
  for (const TaskParams& t : table2_system()) ASSERT_TRUE(admission.add(t));

  TaskParams hog{"hog", 30, 40_ms, 100_ms, 100_ms, Duration::zero()};
  ASSERT_FALSE(admission.add(hog));
  // Dropping τ3 frees enough slack for the hog (τ1: 29+40=69<=70;
  // τ2: 69+29+40=138 > 120? — verify by behaviour, not by hand).
  ASSERT_TRUE(admission.remove("tau3"));
  const bool admitted = admission.add(hog);
  EXPECT_EQ(admitted, is_feasible(admission.task_set()) &&
                          admission.task_set().contains("hog"));
}

TEST(FeasibilityAnalysis, RemoveUnknownReturnsFalse) {
  FeasibilityAnalysis admission;
  EXPECT_FALSE(admission.remove("ghost"));
}

TEST(FeasibilityAnalysis, ThrowingAddLeavesTheSetUnchanged) {
  // The strong guarantee: a throwing mutation must be a no-op, because a
  // long-lived admission object keeps serving after rejecting bad input.
  FeasibilityAnalysis admission;
  for (const TaskParams& t : table2_system()) ASSERT_TRUE(admission.add(t));

  // Invalid parameters (zero period) throw out of validation.
  EXPECT_THROW(admission.add(TaskParams{"bad", 5, 1_ms, Duration::zero(),
                                        10_ms, Duration::zero()}),
               ContractViolation);
  // Duplicate name throws after validation.
  EXPECT_THROW(
      admission.add(TaskParams{"tau1", 5, 1_ms, 10_ms, 10_ms,
                               Duration::zero()}),
      ContractViolation);
  EXPECT_THROW(admission.add_unchecked(
                   TaskParams{"bad", 5, Duration::zero(), 10_ms, 10_ms,
                              Duration::zero()}),
               ContractViolation);

  // The set is exactly what it was before the three throws.
  EXPECT_EQ(admission.task_set().size(), 3u);
  EXPECT_FALSE(admission.task_set().contains("bad"));
  EXPECT_TRUE(admission.report().feasible);
  // ...and the object still works: a legitimate admission succeeds.
  EXPECT_TRUE(admission.add(
      TaskParams{"late", 1, 1_ms, 400_ms, 400_ms, Duration::zero()}));
}

TEST(FeasibilityAnalysis, RemoveUnknownNeverThrowsAndPreservesState) {
  FeasibilityAnalysis admission;
  for (const TaskParams& t : table2_system()) ASSERT_TRUE(admission.add(t));
  EXPECT_FALSE(admission.remove("ghost"));
  EXPECT_NO_THROW((void)admission.remove("ghost"));
  EXPECT_EQ(admission.task_set().size(), 3u);
  // Removing twice: second call reports "already gone" as false, not a
  // contract violation.
  EXPECT_TRUE(admission.remove("tau2"));
  EXPECT_FALSE(admission.remove("tau2"));
  EXPECT_EQ(admission.task_set().size(), 2u);
}

TEST(FeasibilityAnalysis, AddUncheckedBypassesAdmission) {
  FeasibilityAnalysis admission;
  admission.add_unchecked(
      TaskParams{"a", 2, 6_ms, 10_ms, 10_ms, Duration::zero()});
  admission.add_unchecked(
      TaskParams{"b", 1, 5_ms, 10_ms, 10_ms, Duration::zero()});
  EXPECT_EQ(admission.task_set().size(), 2u);
  EXPECT_FALSE(admission.report().feasible);
}

}  // namespace
}  // namespace rtft::sched
