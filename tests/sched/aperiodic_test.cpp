#include "sched/aperiodic.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/random.hpp"

namespace rtft::sched {
namespace {

using namespace rtft::literals;

TEST(PollingServerBound, OnePollPerBudgetChunk) {
  // k = ceil(cost/budget) polls, each one period apart, then the server's
  // own completion latency.
  EXPECT_EQ(polling_server_response_bound(10_ms, 10_ms, 50_ms, 12_ms),
            62_ms);
  EXPECT_EQ(polling_server_response_bound(11_ms, 10_ms, 50_ms, 12_ms),
            112_ms);
  EXPECT_EQ(polling_server_response_bound(30_ms, 10_ms, 50_ms, 12_ms),
            162_ms);
}

TEST(PollingServerBound, MonotoneInCost) {
  Duration prev;
  for (std::int64_t c = 1; c <= 50; ++c) {
    const Duration bound = polling_server_response_bound(
        Duration::ms(c), 10_ms, 50_ms, 10_ms);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
}

TEST(PollingServerBound, RejectsInvalidArguments) {
  EXPECT_THROW((void)polling_server_response_bound(Duration::zero(), 10_ms,
                                                   50_ms, 10_ms),
               ContractViolation);
  EXPECT_THROW((void)polling_server_response_bound(1_ms, Duration::zero(),
                                                   50_ms, 10_ms),
               ContractViolation);
  EXPECT_THROW((void)polling_server_response_bound(1_ms, 10_ms,
                                                   Duration::zero(), 10_ms),
               ContractViolation);
}

TEST(MaxAperiodicCost, ZeroWhenDeadlineTooShort) {
  EXPECT_EQ(max_aperiodic_cost_within(50_ms, 10_ms, 50_ms, 10_ms),
            Duration::zero());
  EXPECT_EQ(max_aperiodic_cost_within(60_ms, 10_ms, 50_ms, 10_ms),
            Duration::zero());
}

TEST(MaxAperiodicCost, ExactlyOnePollFits) {
  // D = 61: one poll (50) + wcrt (10) fits with 1 ms to spare.
  EXPECT_EQ(max_aperiodic_cost_within(61_ms, 10_ms, 50_ms, 10_ms), 10_ms);
}

class AperiodicInverseProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AperiodicInverseProperty, BoundOfMaxCostFitsAndSupremumHolds) {
  Rng rng(GetParam());
  const Duration budget = Duration::ms(rng.next_in(1, 20));
  const Duration period = budget * rng.next_in(2, 10);
  const Duration wcrt = Duration::ms(rng.next_in(0, budget.whole_ms()));
  const Duration deadline = Duration::ms(rng.next_in(1, 2000));

  const Duration max_cost =
      max_aperiodic_cost_within(deadline, budget, period, wcrt);
  if (max_cost.is_zero()) {
    // Even a minimal job must bust the deadline.
    EXPECT_GT(polling_server_response_bound(Duration::ns(1), budget, period,
                                            wcrt),
              deadline);
    return;
  }
  EXPECT_LE(
      polling_server_response_bound(max_cost, budget, period, wcrt),
      deadline);
  EXPECT_GT(polling_server_response_bound(max_cost + Duration::ns(1), budget,
                                          period, wcrt),
            deadline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AperiodicInverseProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rtft::sched
