#include "sched/sensitivity.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sched/feasibility.hpp"
#include "support/paper_systems.hpp"
#include "support/random_sets.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::make_random_task_set;
using rtft::testsupport::table2_system;
using namespace rtft::literals;

std::vector<Duration> no_jitter(std::size_t n) {
  return std::vector<Duration>(n, Duration::zero());
}

TEST(JitterRta, ZeroJitterEqualsClassicAnalysis) {
  const TaskSet ts = table2_system();
  for (TaskId i = 0; i < ts.size(); ++i) {
    const auto with = response_time_with_jitter(ts, i, no_jitter(3));
    const auto classic = classic_response_time(ts, i);
    ASSERT_TRUE(with && classic);
    EXPECT_EQ(*with, *classic);
  }
}

TEST(JitterRta, OwnJitterAddsDirectly) {
  const TaskSet ts = table2_system();
  std::vector<Duration> jitters = no_jitter(3);
  jitters[2] = 7_ms;  // τ3's releases wobble by up to 7 ms
  const auto r = response_time_with_jitter(ts, 2, jitters);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 87_ms + 7_ms);
}

TEST(JitterRta, InterfererJitterCanPullInExtraHits) {
  // τ1 jitter of 10 ms: τ2's window sees ceil((R+10)/200) τ1 jobs.
  // R = 29 + 29 = 58 still (58+10 < 200): unchanged here...
  const TaskSet ts = table2_system();
  std::vector<Duration> jitters = no_jitter(3);
  jitters[0] = 10_ms;
  EXPECT_EQ(*response_time_with_jitter(ts, 1, jitters), 58_ms);
  // ...but a jitter that spans the gap to τ1's next release does bite:
  // with J1 = 145, R = 58 -> ceil((58+145)/200) = 2 hits -> 87;
  // ceil((87+145)/200) = 2 -> stable 87.
  jitters[0] = 145_ms;
  EXPECT_EQ(*response_time_with_jitter(ts, 1, jitters), 87_ms);
}

TEST(JitterRta, TimerGridAsJitterKeepsPaperSystemFeasible) {
  // §6.2's 10 ms grid, pessimistically modelled as 10 ms of release
  // jitter on everyone: the Table 2 system still holds.
  const TaskSet ts = table2_system();
  const std::vector<Duration> jitters(3, 10_ms);
  EXPECT_TRUE(is_feasible_with_jitter(ts, jitters));
}

TEST(JitterRta, MonotoneInJitter) {
  const TaskSet ts = table2_system();
  Duration prev;
  for (std::int64_t j = 0; j <= 200; j += 20) {
    std::vector<Duration> jitters(3, Duration::ms(j));
    const auto r = response_time_with_jitter(ts, 2, jitters);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, prev);
    prev = *r;
  }
}

TEST(JitterRta, InputValidation) {
  const TaskSet ts = table2_system();
  EXPECT_THROW(
      (void)response_time_with_jitter(ts, 0, no_jitter(2)),
      ContractViolation);
  std::vector<Duration> negative = no_jitter(3);
  negative[1] = Duration::ms(-1);
  EXPECT_THROW((void)response_time_with_jitter(ts, 0, negative),
               ContractViolation);
}

TEST(ScalingFactor, PaperSystemScalesToTau3Boundary) {
  // Binding constraint: 3·(29λ) <= 120 => λ = 120/87 ≈ 1.37931.
  const ScalingFactor lambda =
      critical_scaling_factor(table2_system(), /*precision_ppm=*/100);
  EXPECT_NEAR(lambda.value(), 120.0 / 87.0, 2e-4);
  EXPECT_GT(lambda.value(), 1.0);  // feasible systems have headroom
}

TEST(ScalingFactor, InfeasibleSystemGetsShrinkFactor) {
  // Table 1's τ2 misses (WCRT 6 > D 2): λ < 1 tells how much to shrink.
  const TaskSet ts = rtft::testsupport::table1_system();
  const ScalingFactor lambda = critical_scaling_factor(ts, 100);
  EXPECT_LT(lambda.value(), 1.0);
  EXPECT_GT(lambda.value(), 0.0);
}

class ScalingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingProperty, FeasibleAtLambdaInfeasibleJustAbove) {
  Rng rng(GetParam());
  RandomTaskSetSpec spec;
  spec.tasks = 2 + static_cast<std::size_t>(rng.next_in(0, 4));
  spec.total_utilization = 0.3 + 0.5 * rng.next_double();
  const TaskSet ts = make_random_task_set(rng, spec);

  const std::int64_t precision = 1'000;
  const ScalingFactor lambda = critical_scaling_factor(ts, precision);
  if (lambda.ppm == 0) GTEST_SKIP() << "degenerate draw";

  // Rebuild the scaled sets exactly as the search does.
  const auto scale = [&](std::int64_t ppm) {
    TaskSet out;
    for (const TaskParams& t : ts) {
      TaskParams copy = t;
      std::int64_t ns = (t.cost.count() * ppm + 999'999) / 1'000'000;
      if (ns < 1) ns = 1;
      copy.cost = Duration::ns(ns);
      out.add(std::move(copy));
    }
    return out;
  };
  EXPECT_TRUE(is_feasible(scale(lambda.ppm)));
  EXPECT_FALSE(is_feasible(scale(lambda.ppm + 2 * precision)));
  // Consistency with the boolean verdict at 1.0.
  EXPECT_EQ(is_feasible(ts), lambda.value() >= 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace rtft::sched
