#include "sched/priority.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sched/feasibility.hpp"
#include "support/paper_systems.hpp"
#include "support/random_sets.hpp"

namespace rtft::sched {
namespace {

using rtft::testsupport::table2_system;
using namespace rtft::literals;

TaskSet unprioritized_table2() {
  TaskSet ts;
  // Same parameters as Table 2 but with flat priorities.
  ts.add(TaskParams{"tau1", 0, 29_ms, 200_ms, 70_ms, Duration::zero()});
  ts.add(TaskParams{"tau2", 0, 29_ms, 250_ms, 120_ms, Duration::zero()});
  ts.add(TaskParams{"tau3", 0, 29_ms, 1500_ms, 120_ms, Duration::zero()});
  return ts;
}

TEST(RateMonotonic, ShorterPeriodGetsHigherPriority) {
  const TaskSet ts = with_rate_monotonic_priorities(unprioritized_table2());
  EXPECT_GT(ts[0].priority, ts[1].priority);  // 200 < 250
  EXPECT_GT(ts[1].priority, ts[2].priority);  // 250 < 1500
  EXPECT_EQ(ts[0].priority, kMaxRtPriority);
}

TEST(RateMonotonic, ReproducesPaperOrdering) {
  // The paper's hand-assigned priorities (20 > 18 > 16) are RM-ordered.
  const TaskSet rm = with_rate_monotonic_priorities(unprioritized_table2());
  const TaskSet paper = table2_system();
  EXPECT_EQ(rm.by_priority_desc(), paper.by_priority_desc());
}

TEST(DeadlineMonotonic, ShorterDeadlineGetsHigherPriority) {
  TaskSet ts;
  ts.add(TaskParams{"a", 0, 1_ms, 100_ms, 50_ms, Duration::zero()});
  ts.add(TaskParams{"b", 0, 1_ms, 50_ms, 60_ms, Duration::zero()});
  const TaskSet dm = with_deadline_monotonic_priorities(ts);
  // "a" has the shorter deadline despite the longer period.
  EXPECT_GT(dm[0].priority, dm[1].priority);
}

TEST(DeadlineMonotonic, TieBreaksByTaskId) {
  TaskSet ts;
  ts.add(TaskParams{"a", 0, 1_ms, 100_ms, 50_ms, Duration::zero()});
  ts.add(TaskParams{"b", 0, 1_ms, 100_ms, 50_ms, Duration::zero()});
  const TaskSet dm = with_deadline_monotonic_priorities(ts);
  EXPECT_GT(dm[0].priority, dm[1].priority);
}

TEST(Audsley, FeasibleSystemGetsFeasibleAssignment) {
  const auto assigned = audsley_assignment(unprioritized_table2());
  ASSERT_TRUE(assigned.has_value());
  EXPECT_TRUE(is_feasible(*assigned));
}

TEST(Audsley, InfeasibleSystemReturnsNullopt) {
  TaskSet ts;
  ts.add(TaskParams{"a", 0, 6_ms, 10_ms, 10_ms, Duration::zero()});
  ts.add(TaskParams{"b", 0, 5_ms, 10_ms, 10_ms, Duration::zero()});
  EXPECT_FALSE(audsley_assignment(ts).has_value());
}

TEST(Audsley, FindsAssignmentWhereDmFails) {
  // Classic case where DM is not optimal: arbitrary deadlines (D > T).
  // Audsley must still find an order if one exists; verify the weaker
  // property that whenever DM succeeds, Audsley succeeds too.
  TaskSet ts;
  ts.add(TaskParams{"a", 0, 2_ms, 10_ms, 12_ms, Duration::zero()});
  ts.add(TaskParams{"b", 0, 3_ms, 12_ms, 20_ms, Duration::zero()});
  ts.add(TaskParams{"c", 0, 4_ms, 20_ms, 18_ms, Duration::zero()});
  const bool dm_ok = is_feasible(with_deadline_monotonic_priorities(ts));
  const auto audsley = audsley_assignment(ts);
  if (dm_ok) {
    EXPECT_TRUE(audsley.has_value());
  }
  if (audsley) {
    EXPECT_TRUE(is_feasible(*audsley));
  }
}

class PriorityPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PriorityPropertyTest, AudsleyDominatesDeadlineMonotonic) {
  Rng rng(GetParam());
  RandomTaskSetSpec spec;
  spec.tasks = 2 + static_cast<std::size_t>(rng.next_in(0, 4));
  spec.total_utilization = 0.5 + 0.4 * rng.next_double();
  // Allow arbitrary deadlines so DM can be sub-optimal.
  spec.deadline_min_factor = 0.6;
  spec.deadline_max_factor = 1.5;
  const auto raw = random_task_set(rng, spec);
  TaskSet ts;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ts.add(TaskParams{"t" + std::to_string(i), 0, raw[i].cost, raw[i].period,
                      raw[i].deadline, Duration::zero()});
  }

  const bool dm_ok = is_feasible(with_deadline_monotonic_priorities(ts));
  const auto audsley = audsley_assignment(ts);
  if (dm_ok) {
    EXPECT_TRUE(audsley.has_value())
        << "Audsley must succeed whenever DM succeeds";
  }
  if (audsley) {
    EXPECT_TRUE(is_feasible(*audsley));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace rtft::sched
