// Microbenchmarks of the allowance searches (§4.2/§4.3). The paper calls
// these "expensive algorithms in time" that its static design can afford
// offline (§7); these numbers quantify that cost and how the search
// granularity trades precision for speed.
#include <benchmark/benchmark.h>

#include "core/paper.hpp"
#include "sched/allowance.hpp"
#include "support_bench.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

void BM_EquitableAllowance_PaperTable2(benchmark::State& state) {
  const sched::TaskSet ts = core::paper::table2_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::equitable_allowance(ts));
  }
}
BENCHMARK(BM_EquitableAllowance_PaperTable2);

void BM_EquitableAllowance_Granularity(benchmark::State& state) {
  // Finer granularity = more binary-search steps (log2(range/g)).
  const sched::TaskSet ts = core::paper::table2_system();
  sched::AllowanceOptions opts;
  opts.granularity = Duration::ns(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::equitable_allowance(ts, opts));
  }
}
BENCHMARK(BM_EquitableAllowance_Granularity)
    ->Arg(1)            // exact (ns)
    ->Arg(1'000)        // us
    ->Arg(1'000'000);   // ms (the paper's working precision)

void BM_EquitableAllowance_TaskCount(benchmark::State& state) {
  const sched::TaskSet ts = rtft::bench::random_set(
      21, static_cast<std::size_t>(state.range(0)), 0.6);
  sched::AllowanceOptions opts;
  opts.granularity = 1_us;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::equitable_allowance(ts, opts));
  }
}
BENCHMARK(BM_EquitableAllowance_TaskCount)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SystemAllowance_PaperTable2(benchmark::State& state) {
  const sched::TaskSet ts = core::paper::table2_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::system_allowance(ts));
  }
}
BENCHMARK(BM_SystemAllowance_PaperTable2);

void BM_SystemAllowance_TaskCount(benchmark::State& state) {
  const sched::TaskSet ts = rtft::bench::random_set(
      22, static_cast<std::size_t>(state.range(0)), 0.6);
  sched::AllowanceOptions opts;
  opts.granularity = 1_us;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::system_allowance(ts, opts));
  }
}
BENCHMARK(BM_SystemAllowance_TaskCount)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
