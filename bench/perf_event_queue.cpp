// Event-queue comparison: the hierarchical timing wheel (with lazy
// deadline validation) against the pooled binary-heap oracle, at
// n = 8 / 32 / 128 tasks on a periodic-heavy workload.
//
// Both modes replay the identical seeded scenario on a reused engine
// (the sweep's usage pattern). The denominator is workload-defined —
// jobs released + completed, equal in both modes — so ns/event compares
// pure queue cost: the heap pays O(log outstanding) sifts per push/pop
// plus one eagerly queued deadline-check event per job; the wheel pays
// O(1) amortized placement and validates deadlines lazily, roughly
// halving queue traffic (ISSUE 4 pins >=20% fewer ns/event at n = 128).
#include <benchmark/benchmark.h>

#include "runtime/engine.hpp"
#include "support_bench.hpp"
#include "trace/sink.hpp"

namespace {

using namespace rtft;

void run_queue_bench(benchmark::State& state, rt::EventQueueMode mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(2027, n, 0.85);

  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  opts.event_queue = mode;
  rt::Engine engine(opts);
  engine.reserve(n, 4 * n);

  std::int64_t events = 0;  // jobs released + completed, both modes alike
  for (auto _ : state) {
    engine.reset(opts);
    std::vector<rt::TaskHandle> handles;
    handles.reserve(ts.size());
    for (const auto& t : ts) handles.push_back(engine.add_task(t));
    engine.run();
    for (const rt::TaskHandle h : handles) {
      events += engine.stats(h).released + engine.stats(h).completed;
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_EventQueue_TimingWheel(benchmark::State& state) {
  run_queue_bench(state, rt::EventQueueMode::kTimingWheel);
}

void BM_EventQueue_PooledHeap(benchmark::State& state) {
  run_queue_bench(state, rt::EventQueueMode::kPooledHeap);
}

BENCHMARK(BM_EventQueue_TimingWheel)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_EventQueue_PooledHeap)->Arg(8)->Arg(32)->Arg(128);

// Timer-heavy variant: a detector-bank-like swarm of periodic timers on
// top of the tasks, so the wheel also proves itself on non-release
// traffic (timers are where a calendar queue classically shines).
void run_timer_bench(benchmark::State& state, rt::EventQueueMode mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(2028, n, 0.6);

  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  opts.event_queue = mode;
  rt::Engine engine(opts);

  std::int64_t events = 0;
  for (auto _ : state) {
    engine.reset(opts);
    std::vector<rt::TaskHandle> handles;
    handles.reserve(ts.size());
    for (const auto& t : ts) handles.push_back(engine.add_task(t));
    std::int64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::int64_t>(i) + 1;
      engine.add_periodic_timer(Instant::epoch() + Duration::us(137 * k),
                                Duration::ms(2 + (k % 7)),
                                [&fired](rt::Engine&) { ++fired; });
    }
    engine.run();
    events += fired;
    for (const rt::TaskHandle h : handles) {
      events += engine.stats(h).released + engine.stats(h).completed;
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_EventQueueTimers_TimingWheel(benchmark::State& state) {
  run_timer_bench(state, rt::EventQueueMode::kTimingWheel);
}

void BM_EventQueueTimers_PooledHeap(benchmark::State& state) {
  run_timer_bench(state, rt::EventQueueMode::kPooledHeap);
}

BENCHMARK(BM_EventQueueTimers_TimingWheel)->Arg(16)->Arg(64);
BENCHMARK(BM_EventQueueTimers_PooledHeap)->Arg(16)->Arg(64);

}  // namespace
