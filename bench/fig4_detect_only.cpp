// Figure 4: detection without treatment. The execution is identical to
// Figure 3; the detectors fire at the quantized WCRTs (30/60/90 ms — the
// jRate PeriodicTimer 10 ms grid gives them 1/2/3 ms delays, §6.2).
#include "harness_common.hpp"

int main() {
  return rtft::bench::run_figure_harness(
      "Figure 4", rtft::core::TreatmentPolicy::kDetectOnly,
      "identical execution to Figure 3; the detectors have a small delay "
      "(1, 2 and 3 ms) due to the 10 ms timer grid.");
}
