// Microbenchmarks of the virtual-time engine — the substrate that
// replaces the paper's jRate/TimeSys testbed. Reported as wall time per
// simulated run; the jobs/second counter gives the engine's throughput.
//
// Engines here run with the default (null) sink: these measure execution
// alone. perf_trace_sink measures what each observation mode adds.
#include <benchmark/benchmark.h>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "runtime/engine.hpp"
#include "support_bench.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

void BM_Engine_PaperFigureRun(benchmark::State& state) {
  // One full Figure 5 experiment: build + run + report.
  std::int64_t jobs = 0;
  for (auto _ : state) {
    core::paper::Scenario s =
        core::paper::figures_scenario(core::TreatmentPolicy::kInstantStop);
    core::FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
    const core::RunReport report = sys.run();
    benchmark::DoNotOptimize(report.total_misses());
    for (const auto& t : report.tasks) jobs += t.stats.released;
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Engine_PaperFigureRun);

void run_random_system(benchmark::State& state, rt::EventQueueMode mode) {
  // n periodic tasks over a 10 s horizon, no detectors.
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(33, n, 0.7);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    rt::EngineOptions opts;
    opts.horizon = Instant::epoch() + Duration::s(10);
    opts.event_queue = mode;
    rt::Engine engine(opts);
    std::vector<rt::TaskHandle> handles;
    for (const auto& t : ts) handles.push_back(engine.add_task(t));
    engine.run();
    for (const rt::TaskHandle h : handles) jobs += engine.stats(h).released;
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

void BM_Engine_RandomSystem(benchmark::State& state) {
  run_random_system(state, rt::EventQueueMode::kTimingWheel);
}
BENCHMARK(BM_Engine_RandomSystem)->Arg(4)->Arg(16)->Arg(64);

void BM_Engine_RandomSystem_PooledHeap(benchmark::State& state) {
  run_random_system(state, rt::EventQueueMode::kPooledHeap);
}
BENCHMARK(BM_Engine_RandomSystem_PooledHeap)->Arg(4)->Arg(16)->Arg(64);

void BM_Engine_PreemptionHeavy(benchmark::State& state) {
  // A fast high-priority task shredding a slow low-priority one:
  // stresses the preemption/resume path.
  std::int64_t jobs = 0;
  for (auto _ : state) {
    rt::EngineOptions opts;
    opts.horizon = Instant::epoch() + Duration::s(2);
    rt::Engine engine(opts);
    const rt::TaskHandle fast = engine.add_task(
        sched::TaskParams{"fast", 9, 200_us, 1_ms, 1_ms, 0_ms});
    const rt::TaskHandle slow = engine.add_task(
        sched::TaskParams{"slow", 1, 70_ms, 100_ms, 100_ms, 0_ms});
    engine.run();
    jobs += engine.stats(fast).released + engine.stats(slow).released;
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Engine_PreemptionHeavy);

void BM_Engine_TimerStorm(benchmark::State& state) {
  // Many periodic timers alongside one task: the detector-bank pattern
  // at scale.
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rt::EngineOptions opts;
    opts.horizon = Instant::epoch() + Duration::s(1);
    rt::Engine engine(opts);
    engine.add_task(sched::TaskParams{"t", 5, 1_ms, 10_ms, 10_ms, 0_ms});
    std::int64_t fired = 0;
    for (std::size_t i = 0; i < timers; ++i) {
      const auto k = static_cast<std::int64_t>(i) + 1;
      engine.add_periodic_timer(Instant::epoch() + Duration::us(100 * k),
                                5_ms, [&fired](rt::Engine&) { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_Engine_TimerStorm)->Arg(1)->Arg(16)->Arg(128);

}  // namespace
