// Figure 7: the whole spare budget (B = 33 ms) is granted to the first
// faulty task; τ1 runs longest before being stopped, and τ2 and τ3
// finish just before their deadlines — no CPU time is wasted.
#include "harness_common.hpp"

int main() {
  return rtft::bench::run_figure_harness(
      "Figure 7", rtft::core::TreatmentPolicy::kSystemAllowance,
      "all the system time available in the worst case (33 ms) is granted "
      "to the first faulty task; tau1 is stopped 33 ms after its WCRT and "
      "tau2 and tau3 both finish just before their deadlines.");
}
