// Cost-model flattening comparison: the flat CostSpec (enum switch,
// resolved inline on the engine's actual_cost path) against the
// std::function closure it replaced, at n = 8 / 32 / 128 tasks.
//
// Both sides compute the *same* per-job costs — the function variant
// wraps the flat spec's own resolve() in a closure — so every run
// releases the same jobs and ns/event isolates pure resolution cost:
// the closure pays a type-erased indirect call (and its captured-state
// load) per job start; the flat spec is a branch over four enum cases.
//
//   BM_CostResolve_*   — raw per-resolve cost, no engine.
//   BM_CostModelRun_*  — the engine loop under each representation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "runtime/cost_model.hpp"
#include "runtime/engine.hpp"
#include "support_bench.hpp"

namespace {

using namespace rtft;

constexpr std::size_t kResolveBatch = std::size_t{1} << 16;

// ---------------------------------------------------------------------------
// Raw resolution cost.
// ---------------------------------------------------------------------------

void report_resolve_counters(benchmark::State& state) {
  const double resolves = static_cast<double>(kResolveBatch) *
                          static_cast<double>(state.iterations());
  state.counters["resolves/s"] =
      benchmark::Counter(resolves, benchmark::Counter::kIsRate);
  state.counters["sec/resolve"] = benchmark::Counter(
      resolves, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void resolve_batch(benchmark::State& state, const rt::CostSpec& spec) {
  const Duration nominal = Duration::ms(2);
  for (auto _ : state) {
    Duration acc = Duration::zero();
    for (std::size_t i = 0; i < kResolveBatch; ++i) {
      acc = acc + spec.resolve(nominal, static_cast<std::int64_t>(i));
    }
    benchmark::DoNotOptimize(acc);
  }
  report_resolve_counters(state);
}

void BM_CostResolve_FlatNominal(benchmark::State& state) {
  resolve_batch(state, rt::CostSpec::nominal());
}
BENCHMARK(BM_CostResolve_FlatNominal);

void BM_CostResolve_FlatSeededJitter(benchmark::State& state) {
  resolve_batch(state, rt::CostSpec::seeded_jitter(
                           7, Duration::ms(1), Duration::ms(4)));
}
BENCHMARK(BM_CostResolve_FlatSeededJitter);

void BM_CostResolve_FunctionSeededJitter(benchmark::State& state) {
  // The oracle representation: same arithmetic behind std::function.
  const rt::CostSpec flat =
      rt::CostSpec::seeded_jitter(7, Duration::ms(1), Duration::ms(4));
  const Duration nominal = Duration::ms(2);
  resolve_batch(state, rt::CostSpec(rt::CostModel(
                           [flat, nominal](std::int64_t job) {
                             return flat.resolve(nominal, job);
                           })));
}
BENCHMARK(BM_CostResolve_FunctionSeededJitter);

// ---------------------------------------------------------------------------
// The engine loop under each representation.
// ---------------------------------------------------------------------------

/// Per-task jitter bounded by the nominal cost, so flat and function
/// runs schedule identically and the workload stays the generator's.
rt::CostSpec jitter_for(const sched::TaskParams& t, std::uint64_t seed) {
  const Duration lo = Duration::ns(t.cost.count() / 2 + 1);
  return rt::CostSpec::seeded_jitter(seed, lo, t.cost);
}

void run_cost_bench(benchmark::State& state, bool flat) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(2030, n, 0.85);

  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  opts.sink_mode = trace::SinkMode::kStaticNull;  // isolate cost dispatch
  rt::Engine engine(opts);
  engine.reserve(n, 4 * n);

  std::int64_t events = 0;  // jobs released + completed, both modes alike
  for (auto _ : state) {
    engine.reset(opts);
    std::vector<rt::TaskHandle> handles;
    handles.reserve(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const rt::CostSpec spec = jitter_for(ts[i], 900 + i);
      if (flat) {
        handles.push_back(engine.add_task(ts[i], spec));
      } else {
        const Duration nominal = ts[i].cost;
        handles.push_back(engine.add_task(
            ts[i], rt::CostModel([spec, nominal](std::int64_t job) {
              return spec.resolve(nominal, job);
            })));
      }
    }
    engine.run();
    for (const rt::TaskHandle h : handles) {
      events += engine.stats(h).released + engine.stats(h).completed;
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_CostModelRun_Flat(benchmark::State& state) {
  run_cost_bench(state, /*flat=*/true);
}

void BM_CostModelRun_Function(benchmark::State& state) {
  run_cost_bench(state, /*flat=*/false);
}

BENCHMARK(BM_CostModelRun_Flat)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_CostModelRun_Function)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
