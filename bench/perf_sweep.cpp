// Sweep-throughput microbenchmarks over the partition/run/merge triad.
//
// The sweep is the population-scale workload the ROADMAP points at
// (millions of scenarios); these benches put a scenarios/s number on a
// fixed mid-size grid so the trajectory is trackable per PR
// (BENCH_perf_sweep.json via --json):
//
//   BM_Sweep_SingleShard     — run_sweep(): the plan->run->merge of one
//                              full-range shard every caller gets.
//   BM_Sweep_FourShardMerge  — the same grid split 4 ways, each shard
//                              run in-process, then merged. The gap to
//                              SingleShard is the sharding overhead
//                              (per-shard pool spin-up + merge), i.e.
//                              what distribution costs before any
//                              transport is involved.
//   BM_Sweep_MergeOnly       — merge() alone on pre-run shards: the
//                              coordinator-side cost of combining
//                              results that arrive from elsewhere.
#include <benchmark/benchmark.h>

#include <vector>

#include "sweep/sweep.hpp"

namespace {

using namespace rtft;

/// A fixed mid-size grid: 8 cells x 12 scenarios, two detector costs —
/// large enough that per-scenario work dominates, small enough for a
/// benchmark iteration. Deliberately constant across PRs: the JSON
/// trajectory is only comparable against an unchanged workload.
sweep::SweepOptions bench_options() {
  sweep::SweepOptions opts;
  opts.scenario_count = 96;
  opts.workers = 2;
  opts.base_seed = 2006;
  opts.grid.task_counts = {3, 5};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  return opts;
}

void report_rate(benchmark::State& state, std::uint64_t per_iter) {
  const double scenarios = static_cast<double>(per_iter) *
                           static_cast<double>(state.iterations());
  state.counters["scenarios/s"] =
      benchmark::Counter(scenarios, benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      scenarios, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["scenarios/iter"] =
      benchmark::Counter(static_cast<double>(per_iter));
}

void BM_Sweep_SingleShard(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  for (auto _ : state) {
    const sweep::SweepReport report = sweep::run_sweep(opts);
    benchmark::DoNotOptimize(report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Sweep_SingleShard)->Unit(benchmark::kMillisecond);

void BM_Sweep_FourShardMerge(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  const sweep::SweepPlan plan(opts);
  for (auto _ : state) {
    std::vector<sweep::ShardResult> shards;
    shards.reserve(4);
    for (std::uint64_t i = 0; i < 4; ++i) {
      shards.push_back(sweep::run_shard(plan.shard(i, 4), plan.options()));
    }
    const sweep::SweepReport report = sweep::merge(shards);
    benchmark::DoNotOptimize(report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Sweep_FourShardMerge)->Unit(benchmark::kMillisecond);

void BM_Sweep_MergeOnly(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  const sweep::SweepPlan plan(opts);
  std::vector<sweep::ShardResult> shards;
  shards.reserve(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    shards.push_back(sweep::run_shard(plan.shard(i, 4), plan.options()));
  }
  for (auto _ : state) {
    const sweep::SweepReport report = sweep::merge(shards);
    benchmark::DoNotOptimize(report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Sweep_MergeOnly)->Unit(benchmark::kMillisecond);

}  // namespace
