// Observation-cost microbenchmarks for the trace::Sink seam.
//
// Three families:
//
//   BM_SinkAppend_*      — raw per-event cost of each sink.
//   BM_DetectorRun_*     — the sweep's detector-loaded scenario run (the
//                          hottest run_scenario step: detectors armed
//                          with per-fire CPU cost) under each observation
//                          mode. "FreshRecorder" reproduces the seed
//                          design the Sink refactor replaced: a fresh
//                          heap-allocated engine plus a 64K-event
//                          recorder per run. The acceptance bar for the
//                          refactor is ReusedCounting >= 20% faster than
//                          the full-Recorder modes.
//   BM_SinkDispatch_*    — static (compile-time SinkMode, zero virtual
//                          calls per event, batched CounterBank flush)
//                          against virtual dispatch on the same counting
//                          workload, at n = 8 / 32 / 128 tasks. The
//                          per-event denominator is jobs released +
//                          completed, identical across modes, so
//                          ns/event isolates pure dispatch cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/detector.hpp"
#include "core/treatment.hpp"
#include "runtime/engine.hpp"
#include "runtime/quantize.hpp"
#include "support_bench.hpp"
#include "sweep/generators.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

constexpr std::size_t kAppendBatch = std::size_t{1} << 16;

trace::TraceEvent synthetic_event(std::size_t i) {
  return trace::TraceEvent{Instant::from_ns(static_cast<std::int64_t>(i)),
                           static_cast<std::int64_t>(i % 64),
                           static_cast<std::int64_t>(i),
                           static_cast<std::uint32_t>(i % 8),
                           trace::EventKind::kJobEnd};
}

void append_batch(trace::Sink& sink) {
  for (std::size_t i = 0; i < kAppendBatch; ++i) {
    sink.record(synthetic_event(i));
  }
}

/// Rate counters need the total event count over *all* iterations:
/// kIsRate divides by total elapsed time (a per-iteration constant
/// would inflate sec/event by the iteration count).
void report_append_counters(benchmark::State& state) {
  const double events = static_cast<double>(kAppendBatch) *
                        static_cast<double>(state.iterations());
  state.counters["events/s"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      events, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] =
      benchmark::Counter(static_cast<double>(kAppendBatch));
}

void BM_SinkAppend_Recorder(benchmark::State& state) {
  trace::Recorder rec(kAppendBatch);
  for (auto _ : state) {
    rec.clear();
    append_batch(rec);
    benchmark::DoNotOptimize(rec.size());
  }
  report_append_counters(state);
}
BENCHMARK(BM_SinkAppend_Recorder);

void BM_SinkAppend_Counting(benchmark::State& state) {
  trace::CountingSink sink;
  for (auto _ : state) {
    sink.reset();
    append_batch(sink);
    benchmark::DoNotOptimize(sink.task_count());
  }
  report_append_counters(state);
}
BENCHMARK(BM_SinkAppend_Counting);

void BM_SinkAppend_Null(benchmark::State& state) {
  trace::NullSink sink;
  for (auto _ : state) {
    append_batch(sink);
  }
  report_append_counters(state);
}
BENCHMARK(BM_SinkAppend_Null);

// ---------------------------------------------------------------------------
// The sweep's detector-loaded run.
// ---------------------------------------------------------------------------

struct DetectorScenario {
  sched::TaskSet ts;
  core::TreatmentPlan plan;
  Duration horizon;
  Duration fire_cost;
};

DetectorScenario make_scenario() {
  // A trace-heavy draw — short periods and a long window, the shape a
  // million-scenario sweep takes when horizons grow: a few hundred
  // thousand events per run, where the observation mode is a visible
  // fraction of the run.
  RandomTaskSetSpec spec;
  spec.tasks = 8;
  spec.total_utilization = 0.7;
  spec.min_period = Duration::ms(1);
  spec.max_period = Duration::ms(5);
  DetectorScenario s;
  s.ts = sweep::make_seeded_task_set(2006, spec);
  sched::AllowanceOptions aopts;
  aopts.granularity = Duration::us(100);
  s.plan = core::make_treatment_plan(s.ts, core::TreatmentPolicy::kDetectOnly,
                                     aopts);
  Duration max_period = Duration::zero();
  for (const auto& t : s.ts) max_period = std::max(max_period, t.period);
  s.horizon = max_period * 4000;
  s.fire_cost = Duration::us(20);
  return s;
}

/// One detector-loaded run on `engine` recording into `sink`.
std::int64_t detector_run(rt::Engine& engine, trace::Sink* sink,
                          const DetectorScenario& s) {
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + s.horizon;
  eopts.sink = sink;
  engine.reset(eopts);
  std::vector<rt::TaskHandle> handles;
  handles.reserve(s.ts.size());
  for (const auto& t : s.ts) handles.push_back(engine.add_task(t));
  core::DetectorConfig dcfg;
  dcfg.quantizer = rt::Quantizer{Duration::ms(1), rt::Rounding::kNone};
  dcfg.fire_cost = s.fire_cost;
  core::DetectorBank bank(engine, handles, s.plan.thresholds, dcfg, {});
  engine.run();
  std::int64_t jobs = 0;
  for (const rt::TaskHandle h : handles) jobs += engine.stats(h).released;
  return jobs;
}

void report_rate(benchmark::State& state, std::int64_t jobs) {
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(jobs),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kAvgIterations);
}

void BM_DetectorRun_FreshRecorder(benchmark::State& state) {
  // The seed design: every run pays a fresh engine + 64K-event recorder.
  const DetectorScenario s = make_scenario();
  std::int64_t jobs = 0;
  for (auto _ : state) {
    trace::Recorder rec;
    rt::EngineOptions eopts;
    eopts.horizon = Instant::epoch() + s.horizon;
    rt::Engine engine(eopts);
    jobs += detector_run(engine, &rec, s);
    benchmark::DoNotOptimize(rec.size());
  }
  report_rate(state, jobs);
}
BENCHMARK(BM_DetectorRun_FreshRecorder);

void BM_DetectorRun_ReusedRecorder(benchmark::State& state) {
  // full_traces sweeps: engine reused, recorder cleared between runs.
  const DetectorScenario s = make_scenario();
  trace::Recorder rec;
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + s.horizon;
  rt::Engine engine(eopts);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    rec.clear();
    jobs += detector_run(engine, &rec, s);
    benchmark::DoNotOptimize(rec.size());
  }
  report_rate(state, jobs);
}
BENCHMARK(BM_DetectorRun_ReusedRecorder);

void BM_DetectorRun_ReusedCounting(benchmark::State& state) {
  // The sweep's default observation mode after the Sink refactor.
  const DetectorScenario s = make_scenario();
  trace::CountingSink sink;
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + s.horizon;
  rt::Engine engine(eopts);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    sink.reset();
    jobs += detector_run(engine, &sink, s);
    benchmark::DoNotOptimize(sink.task_count());
  }
  report_rate(state, jobs);
}
BENCHMARK(BM_DetectorRun_ReusedCounting);

void BM_DetectorRun_ReusedNull(benchmark::State& state) {
  // Observation-free floor: what execution alone costs.
  const DetectorScenario s = make_scenario();
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + s.horizon;
  rt::Engine engine(eopts);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    jobs += detector_run(engine, nullptr, s);
  }
  report_rate(state, jobs);
}
BENCHMARK(BM_DetectorRun_ReusedNull);

// ---------------------------------------------------------------------------
// Static vs virtual dispatch in the engine inner loop.
// ---------------------------------------------------------------------------

enum class Dispatch { kVirtualNull, kVirtualCounting, kStaticNull,
                      kStaticCounting };

void run_dispatch_bench(benchmark::State& state, Dispatch dispatch) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(2031, n, 0.85);

  trace::CountingSink counting;
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  switch (dispatch) {
    case Dispatch::kVirtualNull:
      break;  // sink == nullptr routes to NullSink through the vtable
    case Dispatch::kVirtualCounting:
      opts.sink = &counting;
      break;
    case Dispatch::kStaticNull:
      opts.sink_mode = trace::SinkMode::kStaticNull;
      break;
    case Dispatch::kStaticCounting:
      opts.sink_mode = trace::SinkMode::kStaticCounting;
      opts.counting_sink = &counting;
      break;
  }
  rt::Engine engine(opts);
  engine.reserve(n, 4 * n);

  std::int64_t events = 0;  // jobs released + completed, all modes alike
  for (auto _ : state) {
    counting.reset();
    engine.reset(opts);
    std::vector<rt::TaskHandle> handles;
    handles.reserve(ts.size());
    for (const auto& t : ts) handles.push_back(engine.add_task(t));
    engine.run();
    for (const rt::TaskHandle h : handles) {
      events += engine.stats(h).released + engine.stats(h).completed;
    }
    benchmark::DoNotOptimize(counting.task_count());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_SinkDispatch_VirtualNull(benchmark::State& state) {
  run_dispatch_bench(state, Dispatch::kVirtualNull);
}
void BM_SinkDispatch_VirtualCounting(benchmark::State& state) {
  run_dispatch_bench(state, Dispatch::kVirtualCounting);
}
void BM_SinkDispatch_StaticNull(benchmark::State& state) {
  run_dispatch_bench(state, Dispatch::kStaticNull);
}
void BM_SinkDispatch_StaticCounting(benchmark::State& state) {
  run_dispatch_bench(state, Dispatch::kStaticCounting);
}

BENCHMARK(BM_SinkDispatch_VirtualNull)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_SinkDispatch_VirtualCounting)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_SinkDispatch_StaticNull)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_SinkDispatch_StaticCounting)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
