// Shared plumbing for the figure-reproduction harnesses: runs one of the
// paper's §6 scenarios and prints the key dates, the statistics table and
// the fault-window chart, followed by a paper-vs-measured checklist.
#pragma once

#include <string>
#include <vector>

#include "core/ft_system.hpp"
#include "core/paper.hpp"

namespace rtft::bench {

/// One expectation taken from the paper's narration, checked against the
/// run ("who wins, by roughly what factor, where crossovers fall").
struct Expectation {
  std::string description;  ///< e.g. "tau3 misses its deadline".
  bool holds;               ///< measured outcome.
};

/// Runs the figure scenario for `policy` and prints everything.
/// Returns the process exit code (0 iff all expectations hold).
int run_figure_harness(const char* figure, core::TreatmentPolicy policy,
                       const char* narration);

/// Key completion/stop dates of the t=1000ms window, for expectations.
struct WindowDates {
  Instant tau1_retired;  ///< completion or abort of τ1's faulty job.
  bool tau1_stopped = false;
  Instant tau2_end;      ///< completion of τ2's coincident job.
  Instant tau3_end;      ///< completion of τ3's job (never() if missed).
  std::vector<std::string> missing_tasks;
};

}  // namespace rtft::bench
