// Coordinator-overhead microbenchmarks: what fault-tolerant
// multi-process supervision costs on top of the in-process sweep.
//
//   BM_Coordinator_InProcessBaseline — run_sweep() on the bench grid;
//                                      the floor every distribution
//                                      scheme is measured against.
//   BM_Coordinator_ProcessFleet      — the same sweep through the
//                                      Coordinator + ProcessTransport:
//                                      fork/exec of real sweep_runner
//                                      workers, progress parsing, shard
//                                      files, validation, merge. The
//                                      gap to the baseline is the full
//                                      price of process isolation and
//                                      crash tolerance.
//   BM_Coordinator_ResumeFromCheckpoints — the same run over a directory
//                                      that already holds every shard
//                                      file: pure scan/validate/merge,
//                                      i.e. the restart latency after a
//                                      coordinator crash.
//
// The worker binary path comes from RTFT_SWEEP_RUNNER_BIN (set by the
// build from $<TARGET_FILE:sweep_runner>); without it the process
// benches are skipped so the bench target still builds when examples
// are off.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "sweep/coordinator.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace rtft;

/// Same fixed grid as perf_sweep's bench_options(), so the two files'
/// scenarios/s numbers are directly comparable.
sweep::SweepOptions bench_options() {
  sweep::SweepOptions opts;
  opts.scenario_count = 96;
  opts.workers = 2;
  opts.base_seed = 2006;
  opts.grid.task_counts = {3, 5};
  opts.grid.utilizations = {0.6, 0.9};
  opts.grid.detector_costs = {Duration::zero(), Duration::us(200)};
  return opts;
}

void report_rate(benchmark::State& state, std::uint64_t per_iter) {
  const double scenarios = static_cast<double>(per_iter) *
                           static_cast<double>(state.iterations());
  state.counters["scenarios/s"] =
      benchmark::Counter(scenarios, benchmark::Counter::kIsRate);
  state.counters["scenarios/iter"] =
      benchmark::Counter(static_cast<double>(per_iter));
}

#ifdef RTFT_SWEEP_RUNNER_BIN

sweep::CoordinatorOptions bench_copts(const std::string& dir) {
  sweep::CoordinatorOptions copts;
  copts.runner = RTFT_SWEEP_RUNNER_BIN;
  copts.output_dir = dir;
  copts.shards = 4;
  copts.max_procs = 2;
  copts.poll_interval = Duration::ms(5);  // tight: the bench is short.
  return copts;
}

/// Scratch directory under the process working dir, wiped per use.
std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path("bench_coordinator_scratch") / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

void BM_Coordinator_ProcessFleet(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  for (auto _ : state) {
    const std::string dir = fresh_dir("fleet");
    sweep::ProcessTransport transport;
    sweep::Coordinator coordinator(opts, bench_copts(dir), transport);
    const sweep::CoordinatorResult result = coordinator.run();
    benchmark::DoNotOptimize(result.report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Coordinator_ProcessFleet)->Unit(benchmark::kMillisecond);

void BM_Coordinator_ResumeFromCheckpoints(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  const std::string dir = fresh_dir("resume");
  {
    // Populate the checkpoints once; every iteration then resumes.
    sweep::ProcessTransport transport;
    sweep::Coordinator coordinator(opts, bench_copts(dir), transport);
    (void)coordinator.run();
  }
  for (auto _ : state) {
    sweep::ProcessTransport transport;
    sweep::Coordinator coordinator(opts, bench_copts(dir), transport);
    const sweep::CoordinatorResult result = coordinator.run();
    benchmark::DoNotOptimize(result.report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Coordinator_ResumeFromCheckpoints)->Unit(benchmark::kMillisecond);

#endif  // RTFT_SWEEP_RUNNER_BIN

void BM_Coordinator_InProcessBaseline(benchmark::State& state) {
  const sweep::SweepOptions opts = bench_options();
  for (auto _ : state) {
    const sweep::SweepReport report = sweep::run_sweep(opts);
    benchmark::DoNotOptimize(report.fingerprint);
  }
  report_rate(state, opts.scenario_count);
}
BENCHMARK(BM_Coordinator_InProcessBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
