// Microbenchmarks of the worst-case response-time analysis (the paper's
// Figure 2 algorithm): cost as a function of task-set size and load.
// The paper's admission control runs this at every task addition, so its
// cost bounds how dynamic an admission-controlled system can be (§7).
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "core/paper.hpp"
#include "sched/response_time.hpp"
#include "support_bench.hpp"

namespace {

using namespace rtft;

void BM_ResponseTime_PaperTable2(benchmark::State& state) {
  const sched::TaskSet ts = core::paper::table2_system();
  for (auto _ : state) {
    for (sched::TaskId i = 0; i < ts.size(); ++i) {
      benchmark::DoNotOptimize(sched::response_time(ts, i));
    }
  }
}
BENCHMARK(BM_ResponseTime_PaperTable2);

void BM_ResponseTime_LowestPriorityTask(benchmark::State& state) {
  // Analysis of the lowest-priority task: the most expensive single call.
  const auto n = static_cast<std::size_t>(state.range(0));
  const double u = static_cast<double>(state.range(1)) / 100.0;
  const sched::TaskSet ts = rtft::bench::random_set(42, n, u);
  const sched::TaskId lowest = ts.by_priority_desc().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::response_time(ts, lowest));
  }
  state.SetLabel(std::to_string(n) + " tasks, U=" +
                 std::to_string(state.range(1)) + "%");
}
BENCHMARK(BM_ResponseTime_LowestPriorityTask)
    ->Args({4, 60})
    ->Args({8, 60})
    ->Args({16, 60})
    ->Args({32, 60})
    ->Args({64, 60})
    ->Args({16, 30})
    ->Args({16, 80})
    ->Args({16, 95});

void BM_ResponseTime_WholeTaskSet(benchmark::State& state) {
  // Full admission-control pass: every task analyzed.
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(7, n, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::response_times(ts));
  }
}
BENCHMARK(BM_ResponseTime_WholeTaskSet)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ResponseTime_ArbitraryDeadlines(benchmark::State& state) {
  // Deadlines up to 3x the period force multi-job busy periods (the
  // Lehoczky iteration), the general case of the paper's Figure 2.
  Rng rng(11);
  RandomTaskSetSpec spec;
  spec.tasks = static_cast<std::size_t>(state.range(0));
  spec.total_utilization = 0.9;
  spec.deadline_min_factor = 1.0;
  spec.deadline_max_factor = 3.0;
  const sched::TaskSet ts = rtft::sweep::make_random_task_set(rng, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::response_times(ts));
  }
}
BENCHMARK(BM_ResponseTime_ArbitraryDeadlines)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
