// Multicore-fleet microbenchmarks (src/multicore/): per-core engine
// throughput as the fleet widens, and the marginal cost of a mid-run
// core failure with backup fail-over.
//
//   BM_Multicore_Run/M       — place-and-run a fixed per-core workload
//                              (4 tasks, utilization 0.5 per core) on an
//                              M-core fleet, fault-free. jobs/s is the
//                              scaling trajectory: the fleet is one
//                              thread stepping M engines, so ideal
//                              scaling is flat sec/job as M grows.
//   BM_Multicore_Failover/M  — the same workload through run_with_fault
//                              killing the busiest core mid-horizon.
//                              The gap to BM_Multicore_Run prices the
//                              fail-over protocol (lost-job audit +
//                              backup activation + the denser post-
//                              failure schedule on the backup cores).
//
// Workloads are seeded constants: the JSON trajectory
// (BENCH_perf_multicore.json via --json) is only comparable against an
// unchanged workload.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "multicore/multi_engine.hpp"
#include "multicore/partition.hpp"
#include "runtime/engine.hpp"
#include "sweep/generators.hpp"

namespace {

using namespace rtft;

/// 4 tasks and 0.35 utilization per core, so the per-core load is
/// constant while the fleet widens. 0.35 keeps fault-aware placement
/// feasible even at M=2, where one survivor must absorb the whole
/// failed core on top of its own primaries.
sched::TaskSet fleet_workload(std::size_t cores) {
  RandomTaskSetSpec spec;
  spec.tasks = 4 * cores;
  spec.total_utilization = 0.35 * static_cast<double>(cores);
  return sweep::make_seeded_task_set(2006 + cores, spec);
}

Duration workload_horizon(const sched::TaskSet& ts) {
  Duration max_period = Duration::zero();
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    if (ts[id].period > max_period) max_period = ts[id].period;
  }
  return max_period * 20;
}

std::int64_t jobs_released(multicore::MultiEngine& fleet) {
  std::int64_t released = 0;
  for (std::size_t c = 0; c < fleet.cores(); ++c) {
    rt::Engine& engine = fleet.core(c);
    for (rt::TaskHandle h = 0; h < engine.task_count(); ++h) {
      released += engine.stats(h).released;
    }
  }
  return released;
}

void report_job_rate(benchmark::State& state, std::int64_t jobs_per_iter) {
  const double jobs = static_cast<double>(jobs_per_iter) *
                      static_cast<double>(state.iterations());
  state.counters["jobs/s"] =
      benchmark::Counter(jobs, benchmark::Counter::kIsRate);
  state.counters["sec/job"] = benchmark::Counter(
      jobs, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["jobs/iter"] =
      benchmark::Counter(static_cast<double>(jobs_per_iter));
}

void run_fleet_bench(benchmark::State& state, bool with_fault) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = fleet_workload(cores);
  const Duration horizon = workload_horizon(ts);

  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + horizon;
  eopts.sink_mode = trace::SinkMode::kStaticNull;

  const multicore::FaultAware partitioner;
  const multicore::Placement placement = partitioner.place(ts, cores);
  if (!placement.feasible) {
    state.SkipWithError("fault-aware placement infeasible for the workload");
    return;
  }
  multicore::CoreFaultPlan fault;  // defaults to no fault.
  if (with_fault && cores > 1) {
    const std::vector<double> load =
        multicore::primary_utilization(ts, placement, cores);
    std::size_t victim = 0;
    for (std::size_t c = 1; c < load.size(); ++c) {
      if (load[c] > load[victim]) victim = c;
    }
    fault.core = victim;
    fault.at = Instant::epoch() + Duration::ns(horizon.count() / 2);
  }

  multicore::MultiEngine fleet;
  fleet.reserve(cores, ts.size(), 4 * ts.size() + 16);
  std::int64_t jobs_per_iter = 0;
  for (auto _ : state) {
    fleet.reset(cores, eopts);
    fleet.add_placed(ts, placement);
    const multicore::MultiRunReport report = fleet.run_with_fault(fault);
    benchmark::DoNotOptimize(report.total_misses);
    if (jobs_per_iter == 0) jobs_per_iter = jobs_released(fleet);
  }
  report_job_rate(state, jobs_per_iter);
}

void BM_Multicore_Run(benchmark::State& state) {
  run_fleet_bench(state, /*with_fault=*/false);
}
BENCHMARK(BM_Multicore_Run)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Multicore_Failover(benchmark::State& state) {
  run_fleet_bench(state, /*with_fault=*/true);
}
BENCHMARK(BM_Multicore_Failover)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
