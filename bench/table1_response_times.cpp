// Table 1 + Figure 1: the §2.2 example showing that with deadlines
// related arbitrarily to periods, the worst-case response is not always
// the critical-instant job. Regenerates the paper's table and the
// per-job response series (5, 6, 4 ms — worst at the second job), and
// cross-checks the analysis against the executable engine.
#include <cstdio>

#include "core/paper.hpp"
#include "runtime/engine.hpp"
#include "sched/format.hpp"
#include "sched/response_time.hpp"
#include "sched/utilization.hpp"
#include "trace/recorder.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;

  const sched::TaskSet ts = core::paper::table1_system();

  std::puts("================ Table 1 — system task data ================");
  std::fputs(sched::format_task_table(ts).c_str(), stdout);
  std::printf("load: U = %.3f (exactly 1 — boundary case)\n\n",
              ts.utilization());

  std::puts("Figure 1 — per-job response times of tau2 (analysis):");
  sched::RtaOptions opts;
  opts.record_jobs = true;
  const sched::RtaResult rta = sched::response_time(ts, 1, opts);
  for (const sched::JobResponse& j : rta.jobs) {
    std::printf("  job %lld: completion %-6s response %s\n",
                static_cast<long long>(j.index),
                to_string(j.completion).c_str(),
                to_string(j.response).c_str());
  }
  std::printf("  WCRT(tau2) = %s at job %lld (not the first job!)\n\n",
              to_string(rta.wcrt).c_str(),
              static_cast<long long>(rta.worst_job));

  std::puts("cross-check — simulated responses over one hyperperiod:");
  trace::Recorder recorder;
  rt::EngineOptions engine_opts;
  engine_opts.horizon = Instant::epoch() + 12_ms;  // lcm(6, 4)
  engine_opts.sink = &recorder;
  rt::Engine engine(engine_opts);
  engine.add_task(ts[0]);
  const rt::TaskHandle tau2 = engine.add_task(ts[1]);
  engine.run();
  int failures = 0;
  std::size_t k = 0;
  for (const auto& e : recorder.events()) {
    if (e.kind == trace::EventKind::kJobEnd &&
        e.task == static_cast<std::uint32_t>(tau2)) {
      const Duration simulated = Duration::ns(e.detail);
      const Duration analytic =
          k < rta.jobs.size() ? rta.jobs[k].response : Duration::zero();
      const bool ok = simulated == analytic;
      std::printf("  job %zu: simulated %-5s analytic %-5s [%s]\n", k,
                  to_string(simulated).c_str(), to_string(analytic).c_str(),
                  ok ? "ok" : "FAIL");
      if (!ok) ++failures;
      ++k;
    }
  }
  std::printf("\npaper-vs-measured: WCRT(tau1)=%s (paper: 3ms), "
              "WCRT(tau2)=%s (paper: 6ms, Figure 1)\n",
              to_string(sched::response_time(ts, 0).wcrt).c_str(),
              to_string(rta.wcrt).c_str());
  return failures == 0 && rta.wcrt == 6_ms ? 0 : 1;
}
