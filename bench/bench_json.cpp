#include "bench_json.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sweep/export.hpp"

namespace rtft::bench {
namespace {

using sweep::detail::append_double;
using sweep::detail::appendf;

/// Counter names may contain '/' but nothing that needs more escaping;
/// escape the JSON specials anyway so the document is always valid.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Console reporter that additionally captures every measured run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      JsonRun captured;
      captured.name = run.benchmark_name();
      captured.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      captured.real_ns_per_iter = run.real_accumulated_time * 1e9 / iters;
      captured.cpu_ns_per_iter = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [name, counter] : run.counters) {
        captured.counters.emplace_back(name, counter.value);
      }
      runs_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(report);
  }

  [[nodiscard]] const std::vector<JsonRun>& runs() const { return runs_; }

 private:
  std::vector<JsonRun> runs_;
};

const char* build_type() {
#ifdef NDEBUG
  return "NDEBUG";
#else
  return "assertions";
#endif
}

std::string basename_of(const char* path) {
  const std::string s(path);
  const std::size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

}  // namespace

std::string render_bench_json(const std::string& bench_name,
                              const std::vector<JsonRun>& runs) {
  std::string out = "{\n  \"bench\": ";
  append_json_string(out, bench_name);
  out += ",\n  \"config\": {\"build\": ";
  append_json_string(out, build_type());
  appendf(out, ", \"pointer_bits\": %zu},\n  \"results\": [",
          sizeof(void*) * 8);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonRun& r = runs[i];
    if (i > 0) out += ',';
    out += "\n    {\"name\": ";
    append_json_string(out, r.name);
    appendf(out, ", \"iterations\": %lld, \"real_ns_per_iter\": ",
            static_cast<long long>(r.iterations));
    append_double(out, r.real_ns_per_iter);
    out += ", \"cpu_ns_per_iter\": ";
    append_double(out, r.cpu_ns_per_iter);
    double events_per_iter = 0.0;
    double sec_per_event = 0.0;
    out += ", \"counters\": {";
    for (std::size_t c = 0; c < r.counters.size(); ++c) {
      if (c > 0) out += ", ";
      append_json_string(out, r.counters[c].first);
      out += ": ";
      append_double(out, r.counters[c].second);
      if (r.counters[c].first == "events/iter") {
        events_per_iter = r.counters[c].second;
      }
      if (r.counters[c].first == "sec/event") {
        sec_per_event = r.counters[c].second;
      }
    }
    out += '}';
    // The cross-PR trajectory numbers, derived once here so downstream
    // tooling never re-implements counter-flag arithmetic.
    if (sec_per_event > 0.0) {
      out += ", \"ns_per_event\": ";
      append_double(out, sec_per_event * 1e9);
    }
    if (events_per_iter > 0.0) {
      out += ", \"events_per_run\": ";
      append_double(out, events_per_iter);
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace rtft::bench

int main(int argc, char** argv) {
  // Peel off --json [PATH] before Google Benchmark sees the arguments.
  std::string json_path;
  bool write_json = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        json_path = argv[++i];
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  rtft::bench::CapturingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (ran == 0) return 1;

  if (write_json) {
    const std::string bench = rtft::bench::basename_of(argv[0]);
    if (json_path.empty()) json_path = "BENCH_" + bench + ".json";
    const std::string doc =
        rtft::bench::render_bench_json(bench, reporter.runs());
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   json_path.c_str());
      return 2;
    }
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      std::fprintf(stderr, "error: short write to '%s'\n", json_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
