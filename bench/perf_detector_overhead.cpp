// Quantifies the §6.2 claim that the detection mechanism's overhead is
// "that of a preemption plus an unbounded flag test" and negligible:
// compares engine runs of the same system with and without a full
// detector bank, sweeping the task count ("the more tasks, the more
// sensors").
#include <benchmark/benchmark.h>

#include "core/detector.hpp"
#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "sched/response_time.hpp"
#include "support_bench.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

void run_once(const sched::TaskSet& ts, bool with_detectors,
              Duration fire_cost) {
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(5);
  rt::Engine engine(opts);
  std::vector<rt::TaskHandle> handles;
  for (const auto& t : ts) handles.push_back(engine.add_task(t));
  std::unique_ptr<core::DetectorBank> bank;
  if (with_detectors) {
    std::vector<Duration> thresholds;
    for (sched::TaskId i = 0; i < ts.size(); ++i) {
      thresholds.push_back(sched::response_time(ts, i).wcrt);
    }
    core::DetectorConfig cfg;
    cfg.fire_cost = fire_cost;
    bank = std::make_unique<core::DetectorBank>(
        engine, handles, thresholds, cfg,
        core::DetectorBank::FaultHandler{});
  }
  engine.run();
  benchmark::DoNotOptimize(engine.now());
}

void BM_Baseline_NoDetectors(benchmark::State& state) {
  const sched::TaskSet ts = rtft::bench::random_set(
      5, static_cast<std::size_t>(state.range(0)), 0.6);
  for (auto _ : state) run_once(ts, false, Duration::zero());
}
BENCHMARK(BM_Baseline_NoDetectors)->Arg(3)->Arg(8)->Arg(16)->Arg(32);

void BM_WithDetectors_FreeFires(benchmark::State& state) {
  const sched::TaskSet ts = rtft::bench::random_set(
      5, static_cast<std::size_t>(state.range(0)), 0.6);
  for (auto _ : state) run_once(ts, true, Duration::zero());
}
BENCHMARK(BM_WithDetectors_FreeFires)->Arg(3)->Arg(8)->Arg(16)->Arg(32);

void BM_WithDetectors_CostedFires(benchmark::State& state) {
  // Each fire also charges simulated CPU (one preemption's worth).
  const sched::TaskSet ts = rtft::bench::random_set(
      5, static_cast<std::size_t>(state.range(0)), 0.6);
  for (auto _ : state) run_once(ts, true, 10_us);
}
BENCHMARK(BM_WithDetectors_CostedFires)->Arg(3)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
