// Ablation for the §6.2 overhead discussion: "the overrun generated in
// the system by the presence of the detection mechanism is that of a
// preemption, in addition to an unbounded value... one has to bear in
// mind that the more tasks in the system, the more sensors, hence, the
// higher the influence of this overrun."
//
// Sweeps (a) the per-fire detector cost on the paper's 3-task system and
// (b) the number of tasks at a fixed fire cost, reporting when the
// detection machinery itself starts causing deadline misses.
#include <cstdio>
#include <string>
#include <vector>

#include "core/ft_system.hpp"
#include "core/paper.hpp"
#include "sched/priority.hpp"

namespace {

using namespace rtft;
using namespace rtft::literals;

core::RunReport run_with(sched::TaskSet tasks, Duration fire_cost,
                         Duration horizon) {
  core::FtSystemConfig cfg;
  cfg.tasks = std::move(tasks);
  cfg.policy = core::TreatmentPolicy::kDetectOnly;
  cfg.horizon = horizon;
  cfg.detector.fire_cost = fire_cost;
  core::FaultTolerantSystem sys(std::move(cfg));
  return sys.run();
}

/// n harmonic tasks at combined utilization ~0.72 with tight deadlines.
sched::TaskSet synthetic_system(std::size_t n) {
  sched::TaskSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::int64_t>(i);
    sched::TaskParams p;
    p.name = "t" + std::to_string(i);
    p.priority = 0;
    p.period = Duration::ms(20 * (k + 1));
    p.cost = Duration::ms(20 * (k + 1)) * 72 / (100 * static_cast<std::int64_t>(n));
    if (p.cost < Duration::ms(1)) p.cost = Duration::ms(1);
    p.deadline = p.period;
    p.offset = Duration::zero();
    ts.add(p);
  }
  return sched::with_rate_monotonic_priorities(ts);
}

}  // namespace

int main() {
  std::puts("== ablation A: detector fire cost on the Table 2 system ==");
  std::puts("fire_cost  total_misses  detector_fires");
  for (const Duration cost : {0_ms, 1_ms, 2_ms, 5_ms, 10_ms, 20_ms}) {
    const core::RunReport r =
        run_with(core::paper::table2_system(), cost, 3000_ms);
    std::int64_t fires = 0;
    for (const auto& t : r.tasks) fires += t.faults_detected;  // faults only
    std::printf("%-9s  %-12lld  (faults flagged: %lld)\n",
                to_string(cost).c_str(),
                static_cast<long long>(r.total_misses()),
                static_cast<long long>(fires));
  }

  std::puts("\n== ablation B: task count at 200us per detector fire ==");
  std::puts("tasks  admitted  total_misses");
  int failures = 0;
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const sched::TaskSet ts = synthetic_system(n);
    const core::RunReport r = run_with(ts, 200_us, 2000_ms);
    std::printf("%-5zu  %-8s  %lld\n", n, r.admitted ? "yes" : "no",
                static_cast<long long>(r.total_misses()));
    if (!r.admitted) ++failures;
  }

  std::puts("\nreading: with a free detector the system is untouched; the"
            "\noverhead only matters once per-fire cost approaches task"
            "\ncosts — consistent with the paper's 'negligible' estimate.");
  return failures == 0 ? 0 : 1;
}
