// Admission-service throughput under increasing offered load.
//
// One benchmark, three offered loads (requests per burst against the
// same 2-worker / 32-deep service): 2x, 16x and 128x the queue capacity.
// At 2x the service absorbs nearly everything at the exact tier; at 16x
// the ladder starts shedding work; at 128x the backpressure dominates
// and requests/s measures how fast the service can *refuse* without
// stalling the answers it accepted. The counters make the degradation
// story explicit per load (BENCH_perf_admission.json via --json):
//
//   requests/s        offered requests resolved per second
//   answered/s        kAnswered responses per second
//   shed_fraction     (rejected-full + deadline-shed) / submitted
//   degraded_fraction answered at a tier below exact / answered
#include <benchmark/benchmark.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "sweep/generators.hpp"

namespace {

using namespace rtft;

constexpr std::size_t kQueueCapacity = 32;
constexpr std::size_t kProducers = 2;
constexpr std::size_t kDistinctSets = 16;

/// Fixed request population, shared by every load point so the per-load
/// numbers differ only in offered volume. Utilizations span feasible
/// through overloaded; the population must stay constant across PRs for
/// the JSON trajectory to be comparable.
const std::vector<serve::AdmissionRequest>& request_pool() {
  static const std::vector<serve::AdmissionRequest> pool = [] {
    std::vector<serve::AdmissionRequest> reqs;
    for (std::size_t i = 0; i < kDistinctSets; ++i) {
      RandomTaskSetSpec spec;
      spec.tasks = 2 + i % 4;
      spec.total_utilization =
          0.3 + 0.9 * static_cast<double>(i) / kDistinctSets;
      spec.min_period = Duration::ms(10);
      spec.max_period = Duration::ms(100);
      serve::AdmissionRequest req;
      req.tasks =
          sweep::make_seeded_task_set(sweep::scenario_seed(2006, i), spec)
              .tasks();
      reqs.push_back(std::move(req));
    }
    return reqs;
  }();
  return pool;
}

void BM_Admission_OfferedLoad(benchmark::State& state) {
  const std::size_t offered =
      kQueueCapacity * static_cast<std::size_t>(state.range(0));
  const std::vector<serve::AdmissionRequest>& pool = request_pool();

  std::uint64_t submitted = 0, answered = 0, shed = 0, degraded = 0;
  for (auto _ : state) {
    serve::ServiceOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueueCapacity;
    serve::AdmissionService service{opts};

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::vector<std::future<serve::AdmissionResponse>> in_flight;
        in_flight.reserve(offered / kProducers);
        for (std::size_t i = 0; i < offered / kProducers; ++i) {
          serve::AdmissionRequest req = pool[(p + i * kProducers) % pool.size()];
          req.id = p * offered + i;
          in_flight.push_back(service.submit(std::move(req)));
        }
        for (auto& f : in_flight) benchmark::DoNotOptimize(f.get());
      });
    }
    for (std::thread& t : producers) t.join();
    service.stop();

    const serve::ServiceMetrics m = service.metrics();
    submitted += m.submitted;
    answered += m.answered;
    shed += m.rejected_full + m.shed_deadline;
    degraded += m.answered_by_tier[1] + m.answered_by_tier[2];
  }

  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(submitted), benchmark::Counter::kIsRate);
  state.counters["answered/s"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
  state.counters["shed_fraction"] = benchmark::Counter(
      submitted == 0 ? 0.0
                     : static_cast<double>(shed) /
                           static_cast<double>(submitted));
  state.counters["degraded_fraction"] = benchmark::Counter(
      answered == 0 ? 0.0
                    : static_cast<double>(degraded) /
                          static_cast<double>(answered));
}
BENCHMARK(BM_Admission_OfferedLoad)
    ->Arg(2)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Steady-state single-request latency with a hot cache: the service's
/// fast path (canonicalize + one LRU lookup) — what a well-behaved
/// population pays per query once its verdict is memoized.
void BM_Admission_CachedAdmit(benchmark::State& state) {
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = kQueueCapacity;
  serve::AdmissionService service{opts};
  const serve::AdmissionRequest& seed_req = request_pool().front();
  benchmark::DoNotOptimize(service.admit(seed_req));  // warm the cache.
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.admit(seed_req));
    ++n;
  }
  state.counters["requests/s"] =
      benchmark::Counter(static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Admission_CachedAdmit)->Unit(benchmark::kMicrosecond);

}  // namespace
