// Table 2: the evaluated task system with its computed worst-case
// response times and allowance column — regenerated from the analysis
// (the paper lists Pi Ti Di Ci WCRTi Ai = 29/58/87 and 11 ms).
#include <cstdio>

#include "core/paper.hpp"
#include "sched/allowance.hpp"
#include "sched/feasibility.hpp"
#include "sched/format.hpp"
#include "sched/response_time.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;

  const sched::TaskSet ts = core::paper::table2_system();

  std::puts("================ Table 2 — tested tasks system ================");
  std::vector<Duration> wcrt;
  for (const auto& r : sched::response_times(ts)) wcrt.push_back(r.wcrt);
  const sched::EquitableAllowance a = sched::equitable_allowance(ts);
  std::vector<Duration> allowance(ts.size(), a.allowance);

  sched::TableColumns cols;
  cols.wcrt = &wcrt;
  cols.allowance = &allowance;
  std::fputs(sched::format_task_table(ts, cols).c_str(), stdout);

  const sched::FeasibilityReport report = sched::analyze(ts);
  std::printf("\n%s\n", report.summary(ts).c_str());

  std::puts("\npaper-vs-measured:");
  struct Row {
    const char* what;
    Duration measured;
    Duration paper;
  };
  const Row rows[] = {
      {"WCRT(tau1)", wcrt[0], 29_ms}, {"WCRT(tau2)", wcrt[1], 58_ms},
      {"WCRT(tau3)", wcrt[2], 87_ms}, {"allowance A", a.allowance, 11_ms},
  };
  int failures = 0;
  for (const Row& r : rows) {
    const bool ok = r.measured == r.paper;
    std::printf("  %-12s measured %-6s paper %-6s [%s]\n", r.what,
                to_string(r.measured).c_str(), to_string(r.paper).c_str(),
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
