// Ablation for §4.1's cooperative stop: "the thread must check the state
// of the boolean… the cost of which is not bounded. Consequently, the
// task will regularly make small cost overruns, about a few
// milliseconds." The engine models that polling delay as a stop latency;
// this harness sweeps it on the Figure 6 experiment and reports when the
// treatment's guarantee (only the faulty task misses) erodes.
//
// Arithmetic: τ1 is stopped at 1040+L; τ3 then completes at 1098+L, so
// its 1120 ms deadline holds up to L = 22 ms — far above the "few
// milliseconds" the paper observed, confirming the mechanism is robust
// to realistic polling costs.
#include <cstdio>

#include "core/ft_system.hpp"
#include "core/paper.hpp"

int main() {
  using namespace rtft;
  using namespace rtft::literals;

  std::puts("== ablation: stop-poll latency on the Figure 6 experiment ==");
  std::puts("latency  tau1_aborted_at  misses");
  int failures = 0;
  for (const Duration latency :
       {0_ms, 1_ms, 3_ms, 10_ms, 22_ms, 23_ms, 40_ms}) {
    core::paper::Scenario s = core::paper::figures_scenario(
        core::TreatmentPolicy::kEquitableAllowance);
    s.config.stop_poll_latency = latency;
    core::FaultTolerantSystem sys(std::move(s.config), std::move(s.faults));
    const core::RunReport report = sys.run();

    Instant abort = Instant::never();
    for (const auto& e : sys.recorder().events()) {
      if (e.kind == trace::EventKind::kJobAborted && e.task == 0) {
        abort = e.time;
      }
    }
    // At large latencies the faulty job completes before the stop
    // arrives and is never aborted at all.
    std::printf("%-7s  %-15s ", to_string(latency).c_str(),
                abort == Instant::never() ? "(ran to completion)"
                                          : to_string(abort).c_str());
    for (const auto& t : report.tasks) {
      if (t.stats.missed > 0) std::printf(" %s", t.name.c_str());
    }
    std::printf("\n");

    // The guarantee must hold through 22 ms and break by 23 ms.
    const bool only_tau1 =
        report.missing_tasks() == std::vector<std::string>{"tau1"};
    if (latency <= 22_ms && !only_tau1) ++failures;
    if (latency >= 23_ms && only_tau1) ++failures;
  }
  std::puts("\nreading: the equitable-allowance guarantee survives stop"
            "\nlatencies an order of magnitude above the paper's observed"
            "\npolling overrun ('a few milliseconds'); the cliff sits at"
            "\nexactly the slack the analysis predicts (22 ms).");
  return failures == 0 ? 0 : 1;
}
