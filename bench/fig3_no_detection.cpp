// Figure 3: execution without detection. The injected fault propagates
// down the priority ladder and τ3 — an innocent task — misses its
// deadline. "It is the case we wish to avoid."
#include "harness_common.hpp"

int main() {
  return rtft::bench::run_figure_harness(
      "Figure 3", rtft::core::TreatmentPolicy::kNoDetection,
      "tau1 makes a temporal fault; it ends before its deadline, just as "
      "tau2, but tau3 misses its deadline.");
}
