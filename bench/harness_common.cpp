#include "harness_common.hpp"

#include <cstdio>

#include "trace/ascii_chart.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"

namespace rtft::bench {
namespace {

using namespace rtft::literals;

WindowDates collect_window_dates(const core::RunReport& report,
                                 const trace::Recorder& rec) {
  WindowDates d;
  d.tau1_retired = Instant::never();
  d.tau2_end = Instant::never();
  d.tau3_end = Instant::never();
  for (const trace::TraceEvent& e : rec.events()) {
    if (e.kind == trace::EventKind::kJobEnd) {
      if (e.task == 0 && e.job == core::paper::kFaultyJobIndex) {
        d.tau1_retired = e.time;
      }
      if (e.task == 1 && e.job == 4) d.tau2_end = e.time;
      if (e.task == 2 && e.job == 0) d.tau3_end = e.time;
    }
    if (e.kind == trace::EventKind::kJobAborted && e.task == 0) {
      d.tau1_retired = e.time;
    }
  }
  d.tau1_stopped = report.tasks[0].stats.stopped;
  d.missing_tasks = report.missing_tasks();
  return d;
}

std::string date_str(Instant t) {
  return t == Instant::never() ? "never" : to_string(t);
}

}  // namespace

int run_figure_harness(const char* figure, core::TreatmentPolicy policy,
                       const char* narration) {
  core::paper::Scenario scenario = core::paper::figures_scenario(policy);
  const sched::TaskSet tasks = scenario.config.tasks;
  core::FaultTolerantSystem system(std::move(scenario.config),
                                   std::move(scenario.faults));
  const core::RunReport report = system.run();

  std::printf("================ %s — policy %s ================\n", figure,
              std::string(core::to_string(policy)).c_str());
  std::printf("paper narration: %s\n\n", narration);
  std::fputs(report.summary().c_str(), stdout);

  const WindowDates d = collect_window_dates(report, system.recorder());
  std::printf("\nkey dates in the t=1000ms window (paper's 5th τ1 job):\n");
  std::printf("  τ1 faulty job %s at %s\n",
              d.tau1_stopped ? "STOPPED" : "ends",
              date_str(d.tau1_retired).c_str());
  std::printf("  τ2 job ends at %s (deadline 1120ms)\n",
              date_str(d.tau2_end).c_str());
  std::printf("  τ3 job ends at %s (deadline 1120ms)\n",
              date_str(d.tau3_end).c_str());
  std::printf("  deadline misses:");
  if (d.missing_tasks.empty()) std::printf(" none");
  for (const std::string& name : d.missing_tasks) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  const trace::SystemTimeline timeline = trace::build_timeline(
      tasks, system.recorder(),
      Instant::epoch() + core::paper::kFigureHorizon);
  std::fputs(trace::compute_stats(timeline).table().c_str(), stdout);

  trace::AsciiChartOptions chart;
  chart.from = Instant::epoch() + 980_ms;
  chart.to = Instant::epoch() + 1140_ms;
  chart.width = 80;
  std::printf("\nfault window:\n%s\n",
              trace::render_ascii_chart(timeline, chart).c_str());

  // Paper-vs-measured checklist, per figure.
  std::vector<Expectation> checks;
  const bool tau3_missed =
      std::find(d.missing_tasks.begin(), d.missing_tasks.end(), "tau3") !=
      d.missing_tasks.end();
  const bool only_tau1_missed =
      d.missing_tasks == std::vector<std::string>{"tau1"};
  switch (policy) {
    case core::TreatmentPolicy::kNoDetection:
    case core::TreatmentPolicy::kDetectOnly:
      checks.push_back({"tau1 ends before its deadline (1070ms)",
                        d.tau1_retired <= Instant::epoch() + 1070_ms &&
                            !d.tau1_stopped});
      checks.push_back({"tau2 meets its deadline", d.tau2_end <= Instant::epoch() + 1120_ms});
      checks.push_back({"tau3 misses its deadline", tau3_missed});
      if (policy == core::TreatmentPolicy::kDetectOnly) {
        checks.push_back({"detectors fire with 1/2/3ms quantization delay "
                          "(thresholds 30/60/90ms)",
                          *report.tasks[0].quantized_threshold == 30_ms &&
                              *report.tasks[1].quantized_threshold == 60_ms &&
                              *report.tasks[2].quantized_threshold == 90_ms});
        checks.push_back(
            {"all three tasks flagged faulty in the window",
             report.tasks[0].faults_detected == 1 &&
                 report.tasks[1].faults_detected == 1 &&
                 report.tasks[2].faults_detected == 1});
      }
      break;
    case core::TreatmentPolicy::kInstantStop:
      checks.push_back({"tau1 stopped at its quantized WCRT (t=1030ms)",
                        d.tau1_stopped &&
                            d.tau1_retired == Instant::epoch() + 1030_ms});
      checks.push_back({"only tau1 misses its deadline", only_tau1_missed});
      checks.push_back({"tau2 and tau3 finish with CPU to spare "
                        "(1059ms / 1088ms)",
                        d.tau2_end == Instant::epoch() + 1059_ms &&
                            d.tau3_end == Instant::epoch() + 1088_ms});
      break;
    case core::TreatmentPolicy::kEquitableAllowance:
      checks.push_back({"allowance A = 11ms",
                        report.plan.allowance == 11_ms});
      checks.push_back({"tau1 stopped at WCRT+A (t=1040ms), later than "
                        "under instant stop",
                        d.tau1_stopped &&
                            d.tau1_retired == Instant::epoch() + 1040_ms});
      checks.push_back({"only tau1 misses its deadline", only_tau1_missed});
      break;
    case core::TreatmentPolicy::kSystemAllowance:
    case core::TreatmentPolicy::kSystemAllowanceSound:
      checks.push_back({"budget B = 33ms granted to the first faulty task",
                        report.plan.allowance == 33_ms});
      checks.push_back(
          {"tau1 stopped ~33ms past its WCRT (t=1060ms quantized)",
           d.tau1_stopped && d.tau1_retired == Instant::epoch() + 1060_ms});
      checks.push_back(
          {"tau2 and tau3 finish just before their deadlines "
           "(1089ms / 1118ms vs 1120ms)",
           d.tau2_end == Instant::epoch() + 1089_ms &&
               d.tau3_end == Instant::epoch() + 1118_ms});
      checks.push_back({"only tau1 misses its deadline", only_tau1_missed});
      break;
  }

  int failures = 0;
  std::printf("paper-vs-measured checklist:\n");
  for (const Expectation& c : checks) {
    std::printf("  [%s] %s\n", c.holds ? "ok" : "FAIL",
                c.description.c_str());
    if (!c.holds) ++failures;
  }
  std::printf("\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace rtft::bench
