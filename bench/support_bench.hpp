// Shared workload builders for the perf benchmarks — thin aliases over the
// sweep generators (src/sweep/generators.*), which own the construction.
#pragma once

#include "sweep/generators.hpp"

namespace rtft::bench {

/// Deterministic random constrained-deadline set.
inline sched::TaskSet random_set(std::uint64_t seed, std::size_t tasks,
                                 double utilization) {
  RandomTaskSetSpec spec;
  spec.tasks = tasks;
  spec.total_utilization = utilization;
  return sweep::make_seeded_task_set(seed, spec);
}

}  // namespace rtft::bench
