// Shared workload builders for the perf benchmarks.
#pragma once

#include <string>

#include "common/random.hpp"
#include "sched/priority.hpp"
#include "sched/task.hpp"

namespace rtft::bench {

/// Converts raw random tasks into a TaskSet with DM priorities.
inline sched::TaskSet to_task_set(const std::vector<RandomTask>& raw) {
  sched::TaskSet ts;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ts.add(sched::TaskParams{"t" + std::to_string(i), 0, raw[i].cost,
                             raw[i].period, raw[i].deadline,
                             Duration::zero()});
  }
  return sched::with_deadline_monotonic_priorities(ts);
}

/// Deterministic random constrained-deadline set.
inline sched::TaskSet random_set(std::uint64_t seed, std::size_t tasks,
                                 double utilization) {
  Rng rng(seed);
  RandomTaskSetSpec spec;
  spec.tasks = tasks;
  spec.total_utilization = utilization;
  return to_task_set(random_task_set(rng, spec));
}

}  // namespace rtft::bench
