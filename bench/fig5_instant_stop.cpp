// Figure 5: instantaneous stop of the faulty task at its WCRT. Only τ1
// misses; τ2 and τ3 finish early — the CPU is then free well before τ3's
// deadline, hinting that τ1 was stopped more aggressively than needed
// (the motivation for the allowance treatments).
#include "harness_common.hpp"

int main() {
  return rtft::bench::run_figure_harness(
      "Figure 5", rtft::core::TreatmentPolicy::kInstantStop,
      "tasks are stopped as soon as they make faults; the only task to "
      "miss its deadline is tau1, and idle time remains afterwards.");
}
