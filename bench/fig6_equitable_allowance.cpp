// Figure 6: every task is granted the same allowance A = 11 ms; τ1 is
// stopped at its inflated WCRT (Table 3) and had more time to run than
// under the instant stop, but τ2's and τ3's unconsumed allowances go to
// waste — the motivation for granting the whole budget to the first
// faulty task (Figure 7).
#include "harness_common.hpp"

int main() {
  return rtft::bench::run_figure_harness(
      "Figure 6", rtft::core::TreatmentPolicy::kEquitableAllowance,
      "all tasks get the same allowance (11 ms); only tau1 is stopped and "
      "it had more time than in the previous case; unused CPU time "
      "remains because tau2 and tau3 did not consume their allowance.");
}
