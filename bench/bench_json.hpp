// Machine-readable output for the perf_* microbenchmarks.
//
// Every perf bench links the shared main() in bench_json.cpp, which adds
// one flag on top of Google Benchmark's own:
//
//   --json [PATH]   after the normal console run, write every measured
//                   benchmark (name, iterations, per-iteration times,
//                   all user counters, and a derived ns_per_event when
//                   the bench reports a "sec/event" counter) as one JSON
//                   document. PATH defaults to BENCH_<executable>.json
//                   in the working directory.
//
// The document is what CI archives per PR to track the perf trajectory:
// ns/event for the queue/dispatch/sink benches, events per run, and the
// build configuration it was measured under.
#pragma once

#include <string>
#include <vector>

namespace benchmark {
class BenchmarkReporter;
}

namespace rtft::bench {

/// One measured (non-aggregate, non-errored) benchmark run.
struct JsonRun {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns_per_iter = 0.0;
  double cpu_ns_per_iter = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Renders the whole document: executable name, build configuration and
/// the captured runs. Exposed for the unit-testable part of the format.
[[nodiscard]] std::string render_bench_json(const std::string& bench_name,
                                            const std::vector<JsonRun>& runs);

}  // namespace rtft::bench
