// Dispatcher comparison: the incrementally maintained ready queue
// against the linear-scan oracle, at n = 8 / 32 / 128 tasks.
//
// Both dispatchers replay the identical seeded scenario on a reused
// engine (the sweep's usage pattern), so wall time per iteration divides
// by the same event count: compare time/iter (or the events/s counter)
// between ready_queue/<n> and linear_scan/<n>. The scan pays O(n) per
// event; the queue pays O(1) per lookup and O(log n) per job boundary —
// the gap is the large-n win (ISSUE 3 pins >=20% at n = 128).
#include <benchmark/benchmark.h>

#include "runtime/engine.hpp"
#include "support_bench.hpp"
#include "trace/sink.hpp"

namespace {

using namespace rtft;

void run_dispatch_bench(benchmark::State& state, rt::DispatchMode mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sched::TaskSet ts = rtft::bench::random_set(2026, n, 0.85);

  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + Duration::s(2);
  opts.dispatch = mode;
  rt::Engine engine(opts);

  std::int64_t events = 0;  // queue events processed (jobs begin+end)
  for (auto _ : state) {
    engine.reset(opts);
    std::vector<rt::TaskHandle> handles;
    handles.reserve(ts.size());
    for (const auto& t : ts) handles.push_back(engine.add_task(t));
    engine.run();
    for (const rt::TaskHandle h : handles) {
      events += engine.stats(h).released + engine.stats(h).completed;
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sec/event"] = benchmark::Counter(
      static_cast<double>(events),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["events/iter"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_Dispatch_ReadyQueue(benchmark::State& state) {
  run_dispatch_bench(state, rt::DispatchMode::kReadyQueue);
}

void BM_Dispatch_LinearScan(benchmark::State& state) {
  run_dispatch_bench(state, rt::DispatchMode::kLinearScan);
}

BENCHMARK(BM_Dispatch_ReadyQueue)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_Dispatch_LinearScan)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
