// Strong time types for the rtft library.
//
// All scheduling analysis and simulation is performed on signed 64-bit
// nanosecond counts, the same resolution the paper obtains through RDTSC.
// Two distinct types keep points-in-time and lengths-of-time from mixing:
//
//   Duration — a signed length of time (may be negative in intermediate
//              arithmetic, e.g. slack computations).
//   Instant  — a point on the virtual (or wall-clock) timeline, measured
//              from an arbitrary epoch 0.
//
// Both are trivially copyable value types with constexpr arithmetic.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "common/assert.hpp"

namespace rtft {

/// A signed length of time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  // Named constructors; the unit is explicit at every call site.
  static constexpr Duration ns(std::int64_t v) { return Duration(v); }
  static constexpr Duration us(std::int64_t v) { return Duration(v * 1'000); }
  static constexpr Duration ms(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration s(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }

  static constexpr Duration zero() { return Duration(0); }
  /// Largest representable duration; used as an "unreachable" sentinel.
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  /// Raw nanosecond count.
  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t whole_ms() const {
    return ns_ / 1'000'000;
  }
  [[nodiscard]] constexpr double to_ms() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double to_s() const {
    return static_cast<double>(ns_) / 1e9;
  }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }
  [[nodiscard]] constexpr bool is_positive() const { return ns_ > 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ns_ + b.ns_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ns_ - b.ns_);
  }
  constexpr Duration operator-() const { return Duration(-ns_); }
  friend constexpr Duration operator*(Duration d, std::int64_t k) {
    return Duration(d.ns_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration d) {
    return d * k;
  }
  friend constexpr Duration operator/(Duration d, std::int64_t k) {
    return Duration(d.ns_ / k);
  }
  /// Truncating ratio of two durations.
  friend constexpr std::int64_t operator/(Duration a, Duration b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr Duration operator%(Duration a, Duration b) {
    return Duration(a.ns_ % b.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Smallest number of `step`s whose total covers `amount`
/// (ceil(amount/step)). Requires amount >= 0 and step > 0.
[[nodiscard]] constexpr std::int64_t ceil_div(Duration amount, Duration step) {
  RTFT_EXPECTS(step.is_positive(), "ceil_div step must be positive");
  RTFT_EXPECTS(!amount.is_negative(), "ceil_div amount must be non-negative");
  return (amount.count() + step.count() - 1) / step.count();
}

/// A point on the timeline, `count()` nanoseconds after the epoch.
class Instant {
 public:
  constexpr Instant() = default;
  static constexpr Instant epoch() { return Instant(); }
  static constexpr Instant from_ns(std::int64_t v) { return Instant(v); }
  /// Unreachable sentinel (used for "never scheduled" events).
  static constexpr Instant never() {
    return Instant(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr Duration since_epoch() const {
    return Duration::ns(ns_);
  }
  [[nodiscard]] constexpr double to_ms() const {
    return static_cast<double>(ns_) / 1e6;
  }

  friend constexpr Instant operator+(Instant t, Duration d) {
    return Instant(t.ns_ + d.count());
  }
  friend constexpr Instant operator+(Duration d, Instant t) { return t + d; }
  friend constexpr Instant operator-(Instant t, Duration d) {
    return Instant(t.ns_ - d.count());
  }
  friend constexpr Duration operator-(Instant a, Instant b) {
    return Duration::ns(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(Instant, Instant) = default;

 private:
  constexpr explicit Instant(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::ns(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::us(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::ms(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::s(static_cast<std::int64_t>(v));
}
}  // namespace literals

/// Human-readable rendering, millisecond-centric like the paper
/// ("29ms", "1.5ms", "87.003ms"); falls back to µs/ns for tiny values.
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(Instant t);

}  // namespace rtft
