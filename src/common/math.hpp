// Overflow-aware integer helpers used by the scheduling analysis.
//
// Hyperperiods of co-prime millisecond periods overflow int64 easily, and
// utilization comparisons must not suffer floating-point rounding (a task
// set with U exactly 1 sits on the feasibility boundary). Both concerns
// are handled here with saturating/128-bit arithmetic.
#pragma once

#include <cstdint>
#include <numeric>
#include <optional>
#include <span>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace rtft {

/// a*b, or nullopt on int64 overflow.
[[nodiscard]] constexpr std::optional<std::int64_t> checked_mul(
    std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// a+b, or nullopt on int64 overflow.
[[nodiscard]] constexpr std::optional<std::int64_t> checked_add(
    std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// Least common multiple of two positive values, nullopt on overflow.
[[nodiscard]] constexpr std::optional<std::int64_t> checked_lcm(
    std::int64_t a, std::int64_t b) {
  RTFT_EXPECTS(a > 0 && b > 0, "lcm arguments must be positive");
  const std::int64_t g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

/// Hyperperiod (lcm of all periods) of a set of positive durations;
/// nullopt if it does not fit in int64 nanoseconds.
[[nodiscard]] inline std::optional<Duration> hyperperiod(
    std::span<const Duration> periods) {
  std::int64_t acc = 1;
  for (Duration p : periods) {
    RTFT_EXPECTS(p.is_positive(), "periods must be positive");
    auto next = checked_lcm(acc, p.count());
    if (!next) return std::nullopt;
    acc = *next;
  }
  return Duration::ns(acc);
}

namespace detail {
/// 128-bit integer via the GCC/Clang extension; __extension__ silences
/// -Wpedantic, and the arithmetic below only needs this one alias.
__extension__ using Int128 = __int128;

[[nodiscard]] constexpr Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  while (b != 0) {
    const Int128 r = a % b;
    a = b;
    b = r;
  }
  return a;
}
}  // namespace detail

/// Comparison of a utilization sum against 1.
///
/// Returns +1 if sum(costs[i]/periods[i]) > 1, 0 if == 1, -1 if < 1.
/// Accumulates the exact fraction in 128-bit arithmetic (gcd-reduced at
/// every step); if the common denominator still overflows — which needs
/// many near-coprime nanosecond-scale periods — it falls back to a long
/// double sum with a tight boundary band, so a set can only be classified
/// "exactly 1" spuriously if its utilization is within 1e-15 of 1.
[[nodiscard]] inline int compare_load_to_one(std::span<const Duration> costs,
                                             std::span<const Duration> periods) {
  RTFT_EXPECTS(costs.size() == periods.size(),
               "costs/periods size mismatch");
  detail::Int128 num = 0;
  detail::Int128 den = 1;
  bool exact = true;
  for (std::size_t i = 0; i < costs.size() && exact; ++i) {
    RTFT_EXPECTS(periods[i].is_positive(), "periods must be positive");
    RTFT_EXPECTS(!costs[i].is_negative(), "costs must be non-negative");
    detail::Int128 c = costs[i].count();
    detail::Int128 t = periods[i].count();
    const detail::Int128 g0 = detail::gcd128(c, t);
    if (g0 > 1) {
      c /= g0;
      t /= g0;
    }
    // num/den += c/t, overflow-checked.
    detail::Int128 nt = 0;
    detail::Int128 cd = 0;
    detail::Int128 sum = 0;
    detail::Int128 nd = 0;
    if (__builtin_mul_overflow(num, t, &nt) ||
        __builtin_mul_overflow(c, den, &cd) ||
        __builtin_add_overflow(nt, cd, &sum) ||
        __builtin_mul_overflow(den, t, &nd)) {
      exact = false;
      break;
    }
    num = sum;
    den = nd;
    const detail::Int128 g = detail::gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }
  if (exact) {
    if (num > den) return 1;
    if (num == den) return 0;
    return -1;
  }
  long double approx = 0.0L;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    approx += static_cast<long double>(costs[i].count()) /
              static_cast<long double>(periods[i].count());
  }
  if (approx > 1.0L + 1e-15L) return 1;
  if (approx < 1.0L - 1e-15L) return -1;
  return 0;
}

}  // namespace rtft
