#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace rtft {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

bool parse_int64(std::string_view s, std::int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

}  // namespace rtft
