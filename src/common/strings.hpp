// Small string utilities shared by the config parser, chart renderers and
// report formatting. Nothing here allocates during simulation runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtft {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// Fixed-point decimal rendering with `digits` places (no locale).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Left/right padding to a column width (spaces; no truncation).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// True if `s` parses completely as a signed decimal integer.
[[nodiscard]] bool parse_int64(std::string_view s, std::int64_t& out);
/// True if `s` parses completely as a floating-point number.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

}  // namespace rtft
