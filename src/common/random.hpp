// Deterministic pseudo-random generation for tests and benchmarks.
//
// Property tests and workload generators must be reproducible across runs
// and platforms, so rtft carries its own small PRNG (xoshiro256**) instead
// of relying on implementation-defined std::default_random_engine, plus the
// UUniFast utilization generator standard in real-time systems evaluation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace rtft {

/// xoshiro256** seeded through SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);
  /// Uniform duration in [lo, hi] (inclusive).
  Duration next_duration(Duration lo, Duration hi);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// UUniFast (Bini & Buttazzo): n task utilizations that sum exactly to
/// `total_u`, uniformly distributed over the valid simplex.
std::vector<double> uunifast(Rng& rng, std::size_t n, double total_u);

/// A randomly generated periodic task (parameters only; naming and
/// priority assignment are left to the caller).
struct RandomTask {
  Duration cost;
  Duration period;
  Duration deadline;
};

/// Knobs for random_task_set().
struct RandomTaskSetSpec {
  std::size_t tasks = 3;
  double total_utilization = 0.6;
  Duration min_period = Duration::ms(10);
  Duration max_period = Duration::ms(1000);
  /// Deadline = period * factor in [deadline_min_factor, deadline_max_factor];
  /// factors below 1 give constrained deadlines, above 1 arbitrary ones.
  double deadline_min_factor = 0.8;
  double deadline_max_factor = 1.0;
};

/// Generates a random task set with UUniFast utilizations; costs are
/// rounded up to at least 1us so every task does real work.
std::vector<RandomTask> random_task_set(Rng& rng, const RandomTaskSetSpec& spec);

}  // namespace rtft
