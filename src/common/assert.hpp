// Library assertions.
//
// rtft is a library that simulates and analyzes safety-relevant systems;
// silently proceeding past a broken invariant would corrupt results, so
// violated preconditions throw (which also makes them testable) instead of
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace rtft {

/// Thrown when a precondition or internal invariant of the library is
/// violated. Indicates a bug in the caller (preconditions) or in rtft
/// itself (invariants); not used for ordinary error reporting.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::string what(kind);
  what += " failed: ";
  what += expr;
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  what += " (";
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ')';
  throw ContractViolation(what);
}
}  // namespace detail

}  // namespace rtft

/// Precondition check: caller-facing argument validation.
#define RTFT_EXPECTS(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rtft::detail::contract_failure("precondition", #cond, __FILE__,   \
                                       __LINE__, (msg));                  \
    }                                                                     \
  } while (false)

/// Internal invariant check: a failure means an rtft bug.
#define RTFT_ASSERT(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rtft::detail::contract_failure("invariant", #cond, __FILE__,      \
                                       __LINE__, (msg));                  \
    }                                                                     \
  } while (false)
