#include "common/random.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rtft {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  RTFT_EXPECTS(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for unbiased draws.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

Duration Rng::next_duration(Duration lo, Duration hi) {
  return Duration::ns(next_in(lo.count(), hi.count()));
}

std::vector<double> uunifast(Rng& rng, std::size_t n, double total_u) {
  RTFT_EXPECTS(n > 0, "uunifast needs at least one task");
  RTFT_EXPECTS(total_u > 0.0, "uunifast needs positive utilization");
  std::vector<double> u(n);
  double sum = total_u;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.next_double(),
                       1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<RandomTask> random_task_set(Rng& rng,
                                        const RandomTaskSetSpec& spec) {
  RTFT_EXPECTS(spec.tasks > 0, "need at least one task");
  RTFT_EXPECTS(spec.min_period.is_positive() &&
                   spec.max_period >= spec.min_period,
               "invalid period range");
  RTFT_EXPECTS(spec.deadline_min_factor > 0.0 &&
                   spec.deadline_max_factor >= spec.deadline_min_factor,
               "invalid deadline factor range");
  const std::vector<double> utils =
      uunifast(rng, spec.tasks, spec.total_utilization);
  std::vector<RandomTask> out;
  out.reserve(spec.tasks);
  for (double ui : utils) {
    RandomTask t;
    // Log-uniform periods spread tasks across timescales, the standard
    // practice in schedulability experiments.
    const double lo = std::log(static_cast<double>(spec.min_period.count()));
    const double hi = std::log(static_cast<double>(spec.max_period.count()));
    const double p = std::exp(lo + (hi - lo) * rng.next_double());
    t.period = Duration::ns(static_cast<std::int64_t>(p));
    std::int64_t cost_ns =
        static_cast<std::int64_t>(ui * static_cast<double>(t.period.count()));
    if (cost_ns < 1'000) cost_ns = 1'000;  // at least 1us of work
    t.cost = Duration::ns(cost_ns);
    const double f = spec.deadline_min_factor +
                     (spec.deadline_max_factor - spec.deadline_min_factor) *
                         rng.next_double();
    std::int64_t dl_ns =
        static_cast<std::int64_t>(f * static_cast<double>(t.period.count()));
    if (dl_ns < cost_ns) dl_ns = cost_ns;  // deadline can never precede cost
    t.deadline = Duration::ns(dl_ns);
    out.push_back(t);
  }
  return out;
}

}  // namespace rtft
