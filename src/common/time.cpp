#include "common/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace rtft {
namespace {

std::string format_scaled(std::int64_t ns, std::int64_t scale,
                          const char* unit) {
  const std::int64_t whole = ns / scale;
  const std::int64_t frac = ns % scale < 0 ? -(ns % scale) : ns % scale;
  char buf[64];
  if (frac == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "%s", whole, unit);
  } else {
    // Print the fraction with just enough digits, trimming zeros.
    double value = static_cast<double>(ns) / static_cast<double>(scale);
    std::snprintf(buf, sizeof buf, "%.6f", value);
    std::string s(buf);
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s + unit;
  }
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  const std::int64_t ns = d.count();
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns >= 1'000'000) return format_scaled(ns, 1'000'000, "ms");
  if (abs_ns >= 1'000) return format_scaled(ns, 1'000, "us");
  return format_scaled(ns, 1, "ns");
}

std::string to_string(Instant t) { return to_string(t.since_epoch()); }

}  // namespace rtft
