// Indexed binary heap keyed by task slot — the shared core of the
// ready-queue dispatcher (ready_queue.hpp) and the engine's lazy
// deadline index (engine.cpp).
//
// A plain binary heap over `Entry` values plus a task-slot -> heap-index
// table, so membership tests and removal of an arbitrary task are O(1)
// lookup + O(log n) restore. At most one entry per task may be queued.
//
// Reuse discipline matches event_heap.hpp: clear() empties the heap in
// O(size) while every buffer keeps its capacity, so one heap serves
// thousands of scenario runs without reallocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rtft::rt {

/// `Entry` must be trivially copyable and expose a `std::uint32_t task`
/// member (the index key). `Before(a, b)` returns true when `a` must
/// surface before `b` and must induce a strict total order over queued
/// entries (both users embed a unique sequence number).
template <typename Entry, typename Before>
class TaskIndexedHeap {
 public:
  void reserve(std::size_t tasks) {
    heap_.reserve(tasks);
    pos_.reserve(tasks);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The entry that surfaces first. Valid until the next mutation.
  [[nodiscard]] const Entry& top() const {
    RTFT_ASSERT(!heap_.empty(), "top() on an empty indexed heap");
    return heap_.front();
  }

  [[nodiscard]] bool contains(std::size_t task) const {
    return task < pos_.size() && pos_[task] != kAbsent;
  }

  /// Queues `entry` under its task slot; the task must not be queued.
  void insert(const Entry& entry) {
    if (entry.task >= pos_.size()) pos_.resize(entry.task + 1, kAbsent);
    RTFT_ASSERT(pos_[entry.task] == kAbsent, "task is already queued");
    heap_.push_back(entry);
    sift_up(heap_.size() - 1);
  }

  /// Re-keys the queued entry of `entry.task` in place (any direction).
  void update(const Entry& entry) {
    RTFT_ASSERT(contains(entry.task), "update() of a task that is not queued");
    const std::size_t i = pos_[entry.task];
    heap_[i] = entry;
    sift_up(i);
    sift_down(pos_[entry.task]);
  }

  /// Removes the task wherever it sits.
  void erase(std::size_t task) {
    RTFT_ASSERT(contains(task), "erase() of a task that is not queued");
    const std::size_t i = pos_[task];
    pos_[task] = kAbsent;
    const Entry moved = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      place(i, moved);
      sift_up(i);
      sift_down(pos_[moved.task]);
    }
  }

  /// Empties the heap; every buffer keeps its capacity.
  void clear() {
    for (const Entry& e : heap_) pos_[e.task] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  void place(std::size_t i, const Entry& e) {
    heap_[i] = e;
    pos_[e.task] = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before_(e, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before_(heap_[child + 1], heap_[child])) ++child;
      if (!before_(heap_[child], e)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, e);
  }

  Before before_{};
  std::vector<Entry> heap_;          ///< heap-ordered entries.
  std::vector<std::uint32_t> pos_;   ///< task slot -> heap index, or kAbsent.
};

}  // namespace rtft::rt
