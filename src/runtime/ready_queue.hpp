// Ready queue of the fixed-priority dispatcher.
//
// reschedule() used to rescan every task slot on every event to find the
// dispatch winner — O(n) per event, the dominant cost of large-n
// scenarios. This queue maintains the winner incrementally: an indexed
// binary heap ordered by (priority desc, ready_seq asc) and keyed by task
// slot, giving an O(1) top() with O(log n) insert()/erase(). The key of a
// queued task never changes (ready_seq is assigned once per job and
// preemption does not re-queue), so no decrease-key operation exists.
//
// Reuse discipline matches event_heap.hpp: clear() empties the queue in
// O(size) while every buffer keeps its capacity, so one queue serves
// thousands of scenario runs without reallocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rtft::rt {

class ReadyQueue {
 public:
  void reserve(std::size_t tasks) {
    heap_.reserve(tasks);
    pos_.reserve(tasks);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Task slot that must run next: highest priority, FIFO (smallest
  /// ready_seq) within a priority level. Valid until the next mutation.
  [[nodiscard]] std::size_t top() const {
    RTFT_ASSERT(!heap_.empty(), "top() on an empty ready queue");
    return heap_.front().task;
  }

  [[nodiscard]] bool contains(std::size_t task) const {
    return task < pos_.size() && pos_[task] != kAbsent;
  }

  /// Queues a task that became ready. ready_seq must be unique across the
  /// queue's lifetime; the task must not already be queued.
  void insert(std::size_t task, int priority, std::uint64_t ready_seq) {
    if (task >= pos_.size()) pos_.resize(task + 1, kAbsent);
    RTFT_ASSERT(pos_[task] == kAbsent, "task is already queued");
    heap_.push_back(
        Entry{ready_seq, priority, static_cast<std::uint32_t>(task)});
    sift_up(heap_.size() - 1);
  }

  /// Removes the task wherever it sits (a stop can retire a job that is
  /// neither running nor the dispatch winner).
  void erase(std::size_t task) {
    RTFT_ASSERT(contains(task), "erase() of a task that is not queued");
    const std::size_t i = pos_[task];
    pos_[task] = kAbsent;
    const Entry moved = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      place(i, moved);
      sift_up(i);
      sift_down(pos_[moved.task]);
    }
  }

  /// Empties the queue; every buffer keeps its capacity.
  void clear() {
    for (const Entry& e : heap_) pos_[e.task] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  struct Entry {
    std::uint64_t ready_seq;
    int priority;
    std::uint32_t task;
  };

  /// True when `a` must be dispatched before `b`. Total: ready_seq is
  /// unique among queued entries.
  static bool before(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.ready_seq < b.ready_seq;
  }

  void place(std::size_t i, const Entry& e) {
    heap_[i] = e;
    pos_[e.task] = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(e, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], e)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, e);
  }

  std::vector<Entry> heap_;          ///< heap-ordered entries.
  std::vector<std::uint32_t> pos_;   ///< task slot -> heap index, or kAbsent.
};

}  // namespace rtft::rt
