// Ready queue of the fixed-priority dispatcher.
//
// reschedule() used to rescan every task slot on every event to find the
// dispatch winner — O(n) per event, the dominant cost of large-n
// scenarios. This queue maintains the winner incrementally: an indexed
// binary heap (indexed_heap.hpp) ordered by (priority desc, ready_seq
// asc) and keyed by task slot, giving an O(1) top() with O(log n)
// insert()/erase(). The key of a queued task never changes (ready_seq is
// assigned once per job and preemption does not re-queue), so the
// update operation is never used here.
//
// Reuse discipline matches event_heap.hpp: clear() empties the queue in
// O(size) while every buffer keeps its capacity, so one queue serves
// thousands of scenario runs without reallocation.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "runtime/indexed_heap.hpp"

namespace rtft::rt {

class ReadyQueue {
 public:
  void reserve(std::size_t tasks) { heap_.reserve(tasks); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Task slot that must run next: highest priority, FIFO (smallest
  /// ready_seq) within a priority level. Valid until the next mutation.
  [[nodiscard]] std::size_t top() const { return heap_.top().task; }

  [[nodiscard]] bool contains(std::size_t task) const {
    return heap_.contains(task);
  }

  /// Queues a task that became ready. ready_seq must be unique across the
  /// queue's lifetime; the task must not already be queued.
  void insert(std::size_t task, int priority, std::uint64_t ready_seq) {
    heap_.insert(Entry{ready_seq, priority, static_cast<std::uint32_t>(task)});
  }

  /// Removes the task wherever it sits (a stop can retire a job that is
  /// neither running nor the dispatch winner).
  void erase(std::size_t task) { heap_.erase(task); }

  /// Empties the queue; every buffer keeps its capacity.
  void clear() { heap_.clear(); }

 private:
  struct Entry {
    std::uint64_t ready_seq;
    int priority;
    std::uint32_t task;
  };

  /// True when `a` must be dispatched before `b`. Total: ready_seq is
  /// unique among queued entries.
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.ready_seq < b.ready_seq;
    }
  };

  TaskIndexedHeap<Entry, Before> heap_;
};

}  // namespace rtft::rt
