#include "runtime/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "runtime/event_heap.hpp"
#include "runtime/indexed_heap.hpp"
#include "runtime/ready_queue.hpp"
#include "runtime/timing_wheel.hpp"

namespace rtft::rt {
namespace {

/// Event kinds in dispatch order at equal dates (smaller = first).
enum class EvKind : std::uint8_t {
  kCompletion = 0,
  kOverheadDone = 1,
  kStopEffect = 2,
  kTimer = 3,
  kRelease = 4,
  kDeadlineCheck = 5,
};

struct Ev {
  Instant time;
  EvKind kind{};
  std::uint64_t seq = 0;    ///< creation order; final tie-breaker.
  std::size_t index = 0;    ///< task or timer index.
  std::int64_t job = -1;    ///< job index (release/deadline).
  std::uint64_t gen = 0;    ///< validity generation (completion/overhead).
  StopMode stop_mode = StopMode::kTask;
};

/// Dispatch order: (time, kind, seq) — total, since seq is unique.
struct EvEarlier {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.seq < b.seq;
  }
};

/// Time key of an event for the timing wheel.
struct EvTimeNs {
  std::int64_t operator()(const Ev& e) const { return e.time.count(); }
};

/// One lazily validated deadline: the moment job `job` of its task would
/// have been checked by the oracle's kDeadlineCheck event, plus the
/// sequence number that event would have carried (for tie order).
struct DlPend {
  Instant due;
  std::uint64_t seq = 0;
  std::int64_t job = -1;
};

/// One task's earliest pending deadline, keyed for the lazy deadline
/// index: an indexed min-heap over task slots ordered (due asc, seq
/// asc) — the replacement for the oracle's per-job kDeadlineCheck
/// events. Per-task deadlines are FIFO (releases are in order and the
/// relative deadline is fixed), so one entry per task suffices; the
/// heap holds at most n_tasks entries where the event queue used to
/// hold one per outstanding job.
struct DlHead {
  std::int64_t due_ns;
  std::uint64_t seq;
  std::uint32_t task;
};

struct DlBefore {
  bool operator()(const DlHead& a, const DlHead& b) const {
    if (a.due_ns != b.due_ns) return a.due_ns < b.due_ns;
    return a.seq < b.seq;
  }
};

using DeadlineHeap = TaskIndexedHeap<DlHead, DlBefore>;

/// What the CPU is doing.
enum class CpuState : std::uint8_t { kIdle, kOverhead, kTask };

struct TaskRec {
  sched::TaskParams params;
  CostSpec cost;
  TaskCallbacks callbacks;
  Instant start;  ///< base instant; releases at start + offset + k*T.

  bool stopped = false;
  bool stop_in_flight = false;  ///< a stop-effect event is pending.
  std::int64_t next_release_index = 0;  ///< next release event to dispatch.
  std::int64_t next_start_index = 0;    ///< next job to begin execution.

  bool has_current = false;
  std::int64_t cur_index = -1;
  Instant cur_release;
  Duration remaining;
  bool cur_started = false;       ///< current job has held the CPU before.
  std::uint64_t gen = 0;          ///< bumped on every running-state change.
  std::uint64_t ready_seq = 0;    ///< FIFO order within a priority level.

  std::vector<JobOutcome> outcomes;  ///< per released job.
  /// Lazy-deadline mode: deadlines awaiting validation, FIFO in
  /// [dl_head, dl_pending.size()).
  std::vector<DlPend> dl_pending;
  std::size_t dl_head = 0;
  TaskStats stats;
};

struct TimerRec {
  TimerHandler handler;
  Duration period;        ///< zero for one-shot.
  bool periodic = false;
  bool cancelled = false;
};

}  // namespace

/// Exposes an engine-local CounterBank through the virtual seam, so
/// detectors and treatments recording via Engine::sink() in static
/// counting mode land in the same batched flush as the engine's own
/// events.
class BankSink final : public trace::Sink {
 public:
  explicit BankSink(trace::CounterBank& bank) : bank_(&bank) {}
  using trace::Sink::record;
  void record(const trace::TraceEvent& event) override { bank_->add(event); }

 private:
  trace::CounterBank* bank_;
};

struct Engine::Impl {
  EngineOptions options;
  trace::Sink* sink = &trace::NullSink::instance();
  trace::SinkMode sink_mode = trace::SinkMode::kVirtual;
  trace::CounterBank local_counters;   ///< kStaticCounting accumulator.
  trace::CountingSink* flush_target = nullptr;  ///< kStaticCounting only.
  BankSink bank_sink{local_counters};  ///< Engine::sink() in kStaticCounting.
  PooledEventHeap<Ev, EvEarlier> heap_queue;  ///< kPooledHeap events.
  TimingWheel<Ev, EvEarlier, EvTimeNs> wheel; ///< kTimingWheel events.
  bool wheel_mode = true;  ///< cached options.event_queue comparison.
  DeadlineHeap deadlines;  ///< lazy deadline index (wheel mode only).
  ReadyQueue ready;  ///< tasks with a current job, in dispatch order.
  std::vector<TaskRec> tasks;   ///< slots; [0, n_tasks) are live.
  std::vector<TimerRec> timers; ///< slots; [0, n_timers) are live.
  std::size_t n_tasks = 0;
  std::size_t n_timers = 0;

  Instant now = Instant::epoch();
  std::uint64_t next_seq = 0;
  std::uint64_t next_ready_seq = 0;

  CpuState cpu = CpuState::kIdle;
  std::size_t running_task = 0;       ///< valid when cpu == kTask.
  Duration overhead_backlog;          ///< work at above-task priority.
  std::uint64_t overhead_gen = 0;

  /// Context-switch accounting: the job last holding the CPU and the job
  /// a pending switch charge was issued for.
  bool have_last_job = false;
  std::size_t last_job_task = 0;
  std::int64_t last_job_index = -1;
  bool have_charged_job = false;
  std::size_t charged_task = 0;
  std::int64_t charged_index = -1;

  /// Restores pristine pre-run state; keeps slot and pool capacity.
  void rearm(EngineOptions opts) {
    options = opts;
    sink_mode = opts.sink_mode;
    flush_target = opts.counting_sink;
    // Counters never leak across pooled scenario runs: the local bank
    // restarts empty on every reset().
    local_counters.clear();
    switch (sink_mode) {
      case trace::SinkMode::kVirtual:
        sink = opts.sink != nullptr ? opts.sink : &trace::NullSink::instance();
        break;
      case trace::SinkMode::kStaticNull:
        sink = &trace::NullSink::instance();
        break;
      case trace::SinkMode::kStaticCounting:
        sink = &bank_sink;
        break;
    }
    wheel_mode = opts.event_queue == EventQueueMode::kTimingWheel;
    heap_queue.clear();
    wheel.clear();
    deadlines.clear();
    ready.clear();
    // Drop the closures of the previous run now: a shrinking follow-up
    // run would otherwise pin their captured state in unused slots.
    for (std::size_t i = 0; i < n_tasks; ++i) {
      tasks[i].cost = {};
      tasks[i].callbacks = {};
      tasks[i].dl_pending.clear();
      tasks[i].dl_head = 0;
    }
    for (std::size_t i = 0; i < n_timers; ++i) timers[i].handler = nullptr;
    n_tasks = 0;
    n_timers = 0;
    now = Instant::epoch();
    next_seq = 0;
    next_ready_seq = 0;
    cpu = CpuState::kIdle;
    running_task = 0;
    overhead_backlog = Duration::zero();
    overhead_gen = 0;
    have_last_job = false;
    last_job_task = 0;
    last_job_index = -1;
    have_charged_job = false;
    charged_task = 0;
    charged_index = -1;
  }

  // -- helpers ------------------------------------------------------------

  std::uint32_t trace_id(std::size_t task) const {
    return static_cast<std::uint32_t>(task);
  }

  /// The engine's own event write: dispatches on the plain sink-mode
  /// enum, so the static modes cost a predicted branch (kStaticNull) or
  /// an inline counter fold (kStaticCounting) per event — no virtual
  /// call. Only kVirtual goes through the Sink* seam.
  void record(Instant time, trace::EventKind kind,
              std::uint32_t task = trace::kNoTask,
              std::int64_t job = trace::kNoJob, std::int64_t detail = 0) {
    switch (sink_mode) {
      case trace::SinkMode::kStaticNull:
        break;
      case trace::SinkMode::kStaticCounting:
        local_counters.add(trace::TraceEvent{time, job, detail, task, kind});
        break;
      case trace::SinkMode::kVirtual:
        sink->record(time, kind, task, job, detail);
        break;
    }
  }

  /// Batched-counting flush at a run boundary: publishes the local bank
  /// into the configured CountingSink and restarts it, so each
  /// run()/run_until() absorbs its delta exactly once.
  void flush_counters() {
    if (sink_mode == trace::SinkMode::kStaticCounting) {
      flush_target->absorb(local_counters);
      local_counters.clear();
    }
  }

  void push(Ev ev) {
    ev.seq = next_seq++;
    if (wheel_mode) {
      wheel.push(ev);
    } else {
      heap_queue.push(ev);
    }
  }

  [[nodiscard]] bool queue_empty() const {
    return wheel_mode ? wheel.empty() : heap_queue.empty();
  }

  /// The next event to dispatch (wheel access may advance its cursor).
  [[nodiscard]] const Ev& queue_top() {
    return wheel_mode ? wheel.top() : heap_queue.top();
  }

  void queue_pop() {
    if (wheel_mode) {
      wheel.pop();
    } else {
      heap_queue.pop();
    }
  }

  // -- lazy deadline validation (kTimingWheel mode) -----------------------
  //
  // The oracle queues one kDeadlineCheck event per released job; the
  // check reads the job's outcome at the deadline date and records a
  // miss unless it completed. Lazily, the same observation is available
  // for free: outcomes only change when events dispatch, so flushing all
  // deadlines dated strictly before the next event (and through stop_at
  // when a run drains) reads exactly the state the eager check would
  // have seen, and the recorded miss dates and their order — (due, seq),
  // the deadline check's position in the total event order — are
  // bit-identical. A job completing in time retires its pending entry on
  // the spot, so the index tracks only jobs that can still miss.

  /// Registers job `job` of `task` (dispatching its release right now)
  /// for lazy validation at `due`. Consumes one sequence number — the
  /// one the oracle's kDeadlineCheck event would have taken — keeping
  /// the two modes' sequence streams aligned.
  void dl_push(std::size_t task, std::int64_t job, Instant due) {
    TaskRec& t = tasks[task];
    const std::uint64_t seq = next_seq++;
    if (t.dl_head == t.dl_pending.size()) {
      t.dl_pending.clear();
      t.dl_head = 0;
    }
    t.dl_pending.push_back(DlPend{due, seq, job});
    if (t.dl_pending.size() - t.dl_head == 1) {
      deadlines.insert(
          DlHead{due.count(), seq, static_cast<std::uint32_t>(task)});
    }
  }

  /// Drops `task`'s earliest pending deadline and re-keys the heap.
  void dl_advance(std::size_t task) {
    TaskRec& t = tasks[task];
    RTFT_ASSERT(t.dl_head < t.dl_pending.size(), "no pending deadline");
    t.dl_head++;
    if (t.dl_head < t.dl_pending.size()) {
      const DlPend& next = t.dl_pending[t.dl_head];
      deadlines.update(DlHead{next.due.count(), next.seq,
                              static_cast<std::uint32_t>(task)});
    } else {
      deadlines.erase(task);
      t.dl_pending.clear();
      t.dl_head = 0;
    }
  }

  /// Runs every pending deadline check dated before `limit` (through
  /// `limit` when `inclusive`), in the exact (due, seq) order the
  /// oracle's event queue would have dispatched them.
  void flush_deadlines(Instant limit, bool inclusive) {
    while (!deadlines.empty()) {
      const std::size_t task = deadlines.top().task;
      TaskRec& t = tasks[task];
      const DlPend head = t.dl_pending[t.dl_head];
      if (inclusive ? head.due > limit : head.due >= limit) break;
      const auto idx = static_cast<std::size_t>(head.job);
      RTFT_ASSERT(idx < t.outcomes.size(), "deadline check for unreleased job");
      if (t.outcomes[idx] != JobOutcome::kCompleted) {
        t.stats.missed++;
        record(head.due, trace::EventKind::kDeadlineMiss,
                     trace_id(task), head.job, 0);
      }
      dl_advance(task);
    }
  }

  Instant release_date(const TaskRec& t, std::int64_t index) const {
    return t.start + t.params.offset + t.params.period * index;
  }

  Duration actual_cost(TaskRec& t, std::int64_t index) {
    return t.cost.resolve(t.params.cost, index);
  }

  /// Accounts CPU execution between the previous event and `to`.
  void advance_to(Instant to) {
    RTFT_ASSERT(to >= now, "time must be monotone");
    const Duration elapsed = to - now;
    if (elapsed.is_positive()) {
      if (cpu == CpuState::kTask) {
        TaskRec& t = tasks[running_task];
        RTFT_ASSERT(t.remaining >= elapsed,
                    "running job cannot execute past its completion event");
        t.remaining -= elapsed;
      } else if (cpu == CpuState::kOverhead) {
        RTFT_ASSERT(overhead_backlog >= elapsed,
                    "overhead cannot execute past its completion event");
        overhead_backlog -= elapsed;
      }
    }
    now = to;
  }

  /// Makes the next backlogged job of `t` current (ready to execute).
  void start_next_job(std::size_t task_idx) {
    TaskRec& t = tasks[task_idx];
    RTFT_ASSERT(!t.has_current, "previous job still current");
    RTFT_ASSERT(t.next_start_index < t.next_release_index,
                "no released job to start");
    const std::int64_t index = t.next_start_index++;
    t.has_current = true;
    t.cur_index = index;
    t.cur_release = release_date(t, index);
    t.remaining = actual_cost(t, index);
    if (t.remaining != t.params.cost) {
      record(now, trace::EventKind::kOverrunInjected,
                   trace_id(task_idx), index,
                   (t.remaining - t.params.cost).count());
    }
    t.cur_started = false;
    t.ready_seq = next_ready_seq++;
    if (options.dispatch == DispatchMode::kReadyQueue) {
      ready.insert(task_idx, t.params.priority, t.ready_seq);
    }
  }

  /// Ends the current job of `task_idx` with the given outcome and
  /// releases the CPU if that job held it.
  void retire_current_job(std::size_t task_idx, JobOutcome outcome,
                          trace::EventKind record_kind) {
    TaskRec& t = tasks[task_idx];
    RTFT_ASSERT(t.has_current, "no current job to retire");
    const std::int64_t index = t.cur_index;
    t.outcomes[static_cast<std::size_t>(index)] = outcome;
    record(now, record_kind, trace_id(task_idx), index,
                 outcome == JobOutcome::kCompleted
                     ? (now - t.cur_release).count()
                     : 0);
    if (cpu == CpuState::kTask && running_task == task_idx) {
      cpu = CpuState::kIdle;  // reschedule() will pick the next activity.
    }
    if (options.dispatch == DispatchMode::kReadyQueue) ready.erase(task_idx);
    t.gen++;
    t.has_current = false;
    t.cur_index = -1;
  }

  /// Linear-scan dispatcher: picks the highest-priority ready job by
  /// rescanning every task slot, returns false if none. O(n) reference
  /// implementation for DispatchMode::kLinearScan; the ready queue must
  /// agree with it on every call.
  bool pick_top_task(std::size_t& out) const {
    bool found = false;
    for (std::size_t i = 0; i < n_tasks; ++i) {
      const TaskRec& t = tasks[i];
      if (!t.has_current || t.stopped) continue;
      if (!found) {
        out = i;
        found = true;
        continue;
      }
      const TaskRec& best = tasks[out];
      if (t.params.priority > best.params.priority ||
          (t.params.priority == best.params.priority &&
           t.ready_seq < best.ready_seq)) {
        out = i;
      }
    }
    return found;
  }

  /// Dispatch winner under the configured dispatcher. The ready queue
  /// mirrors the scan's candidate set exactly: a task is queued iff it
  /// has a current job and is not stopped (a kTask stop retires the
  /// current job before the next reschedule()).
  bool top_ready_task(std::size_t& out) const {
    if (options.dispatch == DispatchMode::kLinearScan) {
      return pick_top_task(out);
    }
    if (ready.empty()) return false;
    out = ready.top();
    return true;
  }

  /// Re-evaluates what the CPU should run after any state change.
  void reschedule() {
    // The running overhead interval may have drained exactly at the
    // current event's date while its completion event is still queued
    // behind us; consume it eagerly so a ready task can take the CPU at
    // this very instant (the queued OverheadDone becomes stale).
    if (cpu == CpuState::kOverhead && overhead_backlog.is_zero()) {
      overhead_gen++;
      cpu = CpuState::kIdle;
    }
    // Decide the next activity: overhead first, then the top ready job.
    std::size_t top = 0;
    const bool overhead_pending = overhead_backlog.is_positive();
    const bool task_pending = top_ready_task(top);

    // Charge a context switch when a *different* job is about to take the
    // CPU. The charge itself runs as overhead, so the switch target keeps
    // its charge across the overhead interval.
    if (!overhead_pending && task_pending &&
        options.context_switch_cost.is_positive()) {
      const bool different =
          !have_last_job || last_job_task != top ||
          last_job_index != tasks[top].cur_index;
      const bool already_charged = have_charged_job && charged_task == top &&
                                   charged_index == tasks[top].cur_index;
      if (different && !already_charged) {
        have_charged_job = true;
        charged_task = top;
        charged_index = tasks[top].cur_index;
        inject_overhead_now(options.context_switch_cost);
        reschedule();
        return;
      }
    }

    if (overhead_pending) {
      if (cpu == CpuState::kOverhead) return;  // already running it
      preempt_running_job();
      cpu = CpuState::kOverhead;
      overhead_gen++;
      push(Ev{now + overhead_backlog, EvKind::kOverheadDone, 0, 0, -1,
              overhead_gen, StopMode::kTask});
      return;
    }

    if (!task_pending) {
      RTFT_ASSERT(cpu != CpuState::kTask,
                  "running job not found by dispatcher");
      cpu = CpuState::kIdle;  // idle intervals are derived from the trace
      return;
    }

    if (cpu == CpuState::kTask && running_task == top) return;  // no change

    preempt_running_job();
    cpu = CpuState::kTask;
    running_task = top;
    TaskRec& t = tasks[top];
    record(now,
                 t.cur_started ? trace::EventKind::kJobResumed
                               : trace::EventKind::kJobStart,
                 trace_id(top), t.cur_index, 0);
    if (!t.cur_started) {
      t.cur_started = true;
      if (t.callbacks.on_job_begin) {
        t.callbacks.on_job_begin(*owner, t.cur_index);
      }
    }
    have_last_job = true;
    last_job_task = top;
    last_job_index = t.cur_index;
    // The dispatch consumed any pending switch charge.
    have_charged_job = false;
    t.gen++;
    push(Ev{now + t.remaining, EvKind::kCompletion, 0, top, t.cur_index,
            t.gen, StopMode::kTask});
  }

  void preempt_running_job() {
    if (cpu == CpuState::kTask) {
      TaskRec& t = tasks[running_task];
      record(now, trace::EventKind::kJobPreempted,
                   trace_id(running_task), t.cur_index, 0);
      t.gen++;  // invalidate its scheduled completion
      cpu = CpuState::kIdle;
    }
    // Overhead is never preempted (it is the highest priority); a running
    // overhead interval simply continues — callers only preempt tasks.
  }

  void inject_overhead_now(Duration amount) {
    RTFT_EXPECTS(!amount.is_negative(), "overhead must be non-negative");
    if (amount.is_zero()) return;
    overhead_backlog += amount;
    if (cpu == CpuState::kOverhead) {
      // Extend the running overhead interval.
      overhead_gen++;
      push(Ev{now + overhead_backlog, EvKind::kOverheadDone, 0, 0, -1,
              overhead_gen, StopMode::kTask});
    }
  }

  // -- event handlers -----------------------------------------------------

  void on_release(const Ev& ev) {
    TaskRec& t = tasks[ev.index];
    if (t.stopped) return;
    const std::int64_t index = ev.job;
    RTFT_ASSERT(index == t.next_release_index, "releases must be in order");
    t.next_release_index++;
    t.outcomes.push_back(JobOutcome::kPending);
    t.stats.released++;
    record(now, trace::EventKind::kJobRelease, trace_id(ev.index),
                 index, 0);
    if (wheel_mode) {
      dl_push(ev.index, index, now + t.params.deadline);
    } else {
      push(Ev{now + t.params.deadline, EvKind::kDeadlineCheck, 0, ev.index,
              index, 0, StopMode::kTask});
    }
    // Schedule the following release (one outstanding per task).
    push(Ev{now + t.params.period, EvKind::kRelease, 0, ev.index, index + 1,
            0, StopMode::kTask});
    if (!t.has_current) start_next_job(ev.index);
  }

  void on_completion(const Ev& ev) {
    TaskRec& t = tasks[ev.index];
    if (ev.gen != t.gen) return;  // stale: the job was preempted/aborted
    RTFT_ASSERT(cpu == CpuState::kTask && running_task == ev.index,
                "completion of a job that is not running");
    RTFT_ASSERT(t.remaining.is_zero(), "completed job has work left");
    const std::int64_t index = t.cur_index;
    const Duration response = now - t.cur_release;
    t.stats.completed++;
    t.stats.last_response = response;
    if (response > t.stats.max_response) t.stats.max_response = response;
    retire_current_job(ev.index, JobOutcome::kCompleted,
                       trace::EventKind::kJobEnd);
    // A job completing by its deadline can never miss: retire its
    // pending lazy check on the spot (it is the task's earliest — any
    // earlier deadline was flushed before this event dispatched).
    if (wheel_mode && t.dl_head < t.dl_pending.size()) {
      const DlPend& head = t.dl_pending[t.dl_head];
      if (head.job == index && now <= head.due) dl_advance(ev.index);
    }
    if (t.callbacks.on_job_end) t.callbacks.on_job_end(*owner, index);
    if (t.next_start_index < t.next_release_index) start_next_job(ev.index);
  }

  void on_overhead_done(const Ev& ev) {
    if (ev.gen != overhead_gen) return;  // extended meanwhile
    RTFT_ASSERT(cpu == CpuState::kOverhead, "overhead-done while not running");
    RTFT_ASSERT(overhead_backlog.is_zero(), "overhead has work left");
    cpu = CpuState::kIdle;
  }

  void on_timer(const Ev& ev) {
    TimerRec& timer = timers[ev.index];
    if (timer.cancelled) return;
    record(now, trace::EventKind::kTimerFire, trace::kNoTask,
                 trace::kNoJob, static_cast<std::int64_t>(ev.index));
    if (timer.periodic) {
      push(Ev{now + timer.period, EvKind::kTimer, 0, ev.index, -1, 0,
              StopMode::kTask});
    }
    if (timer.handler) timer.handler(*owner);
  }

  void on_stop_effect(const Ev& ev) {
    TaskRec& t = tasks[ev.index];
    t.stop_in_flight = false;
    if (t.stopped) return;
    if (ev.stop_mode == StopMode::kTask) {
      t.stopped = true;
      t.stats.stopped = true;
      record(now, trace::EventKind::kTaskStopped, trace_id(ev.index),
                   t.has_current ? t.cur_index : trace::kNoJob, 0);
      if (t.has_current) {
        t.stats.aborted++;
        retire_current_job(ev.index, JobOutcome::kAborted,
                           trace::EventKind::kJobAborted);
      }
      // Released-but-unstarted jobs will never run.
      while (t.next_start_index < t.next_release_index) {
        t.outcomes[static_cast<std::size_t>(t.next_start_index)] =
            JobOutcome::kSkipped;
        t.next_start_index++;
      }
    } else {  // kJob
      if (t.has_current) {
        t.stats.aborted++;
        retire_current_job(ev.index, JobOutcome::kAborted,
                           trace::EventKind::kJobAborted);
        if (t.next_start_index < t.next_release_index) {
          start_next_job(ev.index);
        }
      }
    }
  }

  void on_deadline_check(const Ev& ev) {
    TaskRec& t = tasks[ev.index];
    const auto idx = static_cast<std::size_t>(ev.job);
    RTFT_ASSERT(idx < t.outcomes.size(), "deadline check for unreleased job");
    if (t.outcomes[idx] != JobOutcome::kCompleted) {
      t.stats.missed++;
      record(now, trace::EventKind::kDeadlineMiss, trace_id(ev.index),
                   ev.job, 0);
    }
  }

  void dispatch(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kCompletion: on_completion(ev); break;
      case EvKind::kOverheadDone: on_overhead_done(ev); break;
      case EvKind::kStopEffect: on_stop_effect(ev); break;
      case EvKind::kTimer: on_timer(ev); break;
      case EvKind::kRelease: on_release(ev); break;
      case EvKind::kDeadlineCheck: on_deadline_check(ev); break;
    }
  }

  void run_until(Instant stop_at) {
    RTFT_EXPECTS(stop_at <= options.horizon, "cannot run past the horizon");
    RTFT_EXPECTS(stop_at >= now, "cannot run backwards");
    while (!queue_empty()) {
      const Ev ev = queue_top();
      if (ev.time > stop_at) break;
      // Deadline checks order after every other kind at their date, so
      // flushing those dated strictly before this event (and the rest
      // through stop_at once the queue drains) reproduces the oracle's
      // dispatch positions exactly.
      if (wheel_mode) flush_deadlines(ev.time, /*inclusive=*/false);
      queue_pop();
      advance_to(ev.time);
      dispatch(ev);
      reschedule();
    }
    if (wheel_mode) flush_deadlines(stop_at, /*inclusive=*/true);
    advance_to(stop_at);
    flush_counters();
  }

  Engine* owner = nullptr;  ///< back-pointer for handler invocation.
};

namespace {

void validate_options(const EngineOptions& options) {
  RTFT_EXPECTS(options.horizon > Instant::epoch(),
               "engine horizon must be positive");
  RTFT_EXPECTS(!options.stop_poll_latency.is_negative(),
               "stop poll latency must be non-negative");
  RTFT_EXPECTS(!options.context_switch_cost.is_negative(),
               "context switch cost must be non-negative");
  switch (options.sink_mode) {
    case trace::SinkMode::kVirtual:
      RTFT_EXPECTS(options.counting_sink == nullptr,
                   "counting_sink requires SinkMode::kStaticCounting");
      break;
    case trace::SinkMode::kStaticNull:
      RTFT_EXPECTS(options.sink == nullptr && options.counting_sink == nullptr,
                   "SinkMode::kStaticNull takes no sink");
      break;
    case trace::SinkMode::kStaticCounting:
      RTFT_EXPECTS(options.sink == nullptr,
                   "SinkMode::kStaticCounting replaces the Sink* seam");
      RTFT_EXPECTS(options.counting_sink != nullptr,
                   "SinkMode::kStaticCounting needs a counting_sink");
      break;
  }
}

}  // namespace

Engine::Engine(EngineOptions options) : impl_(std::make_unique<Impl>()) {
  validate_options(options);
  impl_->rearm(options);
  impl_->owner = this;
}

Engine::~Engine() = default;

void Engine::reset(EngineOptions options) {
  validate_options(options);
  impl_->rearm(options);
}

void Engine::reserve(std::size_t tasks, std::size_t events) {
  Impl& im = *impl_;
  im.tasks.reserve(tasks);
  im.timers.reserve(tasks);
  im.ready.reserve(tasks);
  im.local_counters.reserve(tasks);
  im.deadlines.reserve(tasks);
  im.heap_queue.reserve(events);
  im.wheel.reserve(events);
}

TaskHandle Engine::add_task(const sched::TaskParams& params, CostSpec cost,
                            TaskCallbacks callbacks, Instant start) {
  sched::validate_params(params);
  const Instant first_release = start + params.offset;
  RTFT_EXPECTS(first_release >= impl_->now,
               "task '" + params.name + "': first release lies in the past");
  Impl& im = *impl_;
  if (im.n_tasks == im.tasks.size()) im.tasks.emplace_back();
  TaskRec& rec = im.tasks[im.n_tasks];
  // Reset the reused slot by construction (future TaskRec fields cannot
  // leak across runs), keeping only the per-job vectors' capacity.
  std::vector<JobOutcome> outcomes = std::move(rec.outcomes);
  outcomes.clear();
  std::vector<DlPend> dl_pending = std::move(rec.dl_pending);
  dl_pending.clear();
  rec = TaskRec{};
  rec.outcomes = std::move(outcomes);
  rec.dl_pending = std::move(dl_pending);
  rec.params = params;
  rec.cost = std::move(cost);
  rec.callbacks = std::move(callbacks);
  rec.start = start;
  // Pre-size the outcome log to the number of jobs the window can
  // release, so steady-state recording never grows mid-run (capped to
  // keep a pathological period from reserving gigabytes).
  if (first_release <= im.options.horizon) {
    const std::int64_t expected =
        (im.options.horizon - first_release) / params.period + 1;
    constexpr std::int64_t kReserveCap = std::int64_t{1} << 20;
    rec.outcomes.reserve(
        static_cast<std::size_t>(std::min(expected, kReserveCap)));
  }
  const TaskHandle handle = im.n_tasks++;
  im.push(Ev{first_release, EvKind::kRelease, 0, handle, 0, 0,
             StopMode::kTask});
  return handle;
}

TimerHandle Engine::add_one_shot_timer(Instant when, TimerHandler handler) {
  RTFT_EXPECTS(when >= impl_->now, "timer date lies in the past");
  Impl& im = *impl_;
  if (im.n_timers == im.timers.size()) im.timers.emplace_back();
  im.timers[im.n_timers] =
      TimerRec{std::move(handler), Duration::zero(), false, false};
  const TimerHandle handle = im.n_timers++;
  im.push(Ev{when, EvKind::kTimer, 0, handle, -1, 0, StopMode::kTask});
  return handle;
}

TimerHandle Engine::add_periodic_timer(Instant first, Duration period,
                                       TimerHandler handler) {
  RTFT_EXPECTS(first >= impl_->now, "timer date lies in the past");
  RTFT_EXPECTS(period.is_positive(), "timer period must be positive");
  Impl& im = *impl_;
  if (im.n_timers == im.timers.size()) im.timers.emplace_back();
  im.timers[im.n_timers] = TimerRec{std::move(handler), period, true, false};
  const TimerHandle handle = im.n_timers++;
  im.push(Ev{first, EvKind::kTimer, 0, handle, -1, 0, StopMode::kTask});
  return handle;
}

void Engine::cancel_timer(TimerHandle timer) {
  RTFT_EXPECTS(timer < impl_->n_timers, "timer handle out of range");
  impl_->timers[timer].cancelled = true;
}

void Engine::request_stop(TaskHandle task, StopMode mode,
                          Duration extra_latency) {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  RTFT_EXPECTS(!extra_latency.is_negative(), "latency must be non-negative");
  TaskRec& t = impl_->tasks[task];
  if (t.stopped) return;
  impl_->record(impl_->now, trace::EventKind::kStopRequested,
                      impl_->trace_id(task),
                      t.has_current ? t.cur_index : trace::kNoJob, 0);
  t.stop_in_flight = true;
  impl_->push(Ev{impl_->now + impl_->options.stop_poll_latency + extra_latency,
                 EvKind::kStopEffect, 0, task, -1, 0, mode});
}

void Engine::inject_overhead(Duration amount) {
  impl_->inject_overhead_now(amount);
  impl_->reschedule();
}

void Engine::run() { impl_->run_until(impl_->options.horizon); }

void Engine::run_until(Instant stop_at) { impl_->run_until(stop_at); }

Instant Engine::now() const { return impl_->now; }
Instant Engine::horizon() const { return impl_->options.horizon; }
std::size_t Engine::task_count() const { return impl_->n_tasks; }

const sched::TaskParams& Engine::params(TaskHandle task) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  return impl_->tasks[task].params;
}

Instant Engine::first_release(TaskHandle task) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  const TaskRec& t = impl_->tasks[task];
  return t.start + t.params.offset;
}

const TaskStats& Engine::stats(TaskHandle task) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  return impl_->tasks[task].stats;
}

JobOutcome Engine::job_outcome(TaskHandle task, std::int64_t job_index) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  const TaskRec& t = impl_->tasks[task];
  RTFT_EXPECTS(job_index >= 0 &&
                   static_cast<std::size_t>(job_index) < t.outcomes.size(),
               "job index not released");
  return t.outcomes[static_cast<std::size_t>(job_index)];
}

bool Engine::job_completed(TaskHandle task, std::int64_t job_index) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  const TaskRec& t = impl_->tasks[task];
  if (job_index < 0 ||
      static_cast<std::size_t>(job_index) >= t.outcomes.size()) {
    return false;
  }
  return t.outcomes[static_cast<std::size_t>(job_index)] ==
         JobOutcome::kCompleted;
}

std::int64_t Engine::jobs_released(TaskHandle task) const {
  RTFT_EXPECTS(task < impl_->n_tasks, "task handle out of range");
  return impl_->tasks[task].stats.released;
}

trace::Sink& Engine::sink() const { return *impl_->sink; }

}  // namespace rtft::rt
