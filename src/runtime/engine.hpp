// Virtual-time execution engine: a deterministic discrete-event model of a
// fixed-priority preemptive uniprocessor running RTSJ-style periodic tasks
// and timers.
//
// This is the substitution for the paper's execution substrate (jRate VM on
// a TimeSys real-time kernel, see DESIGN.md §2): it reproduces the
// *scheduling semantics* the paper's measurements depend on —
//
//   * fixed-priority preemption, FIFO within a priority level,
//   * RTSJ periodic-thread lifecycle: a task is one logical thread; a job
//     that overruns delays its successors (releases are never lost, they
//     backlog), mirroring waitForNextPeriod() returning immediately for a
//     period that already elapsed,
//   * per-job actual costs supplied by a flat CostSpec (fault
//     injection; arbitrary callables still convert, see cost_model.hpp),
//   * cooperative stop: a stop request takes effect after a configurable
//     poll latency (Java cannot kill threads, §4.1),
//   * timers whose handlers run at their fire date in zero virtual time,
//   * nanosecond bookkeeping of releases, completions, deadline misses.
//
// Observation is decoupled from execution (§5's discipline, generalized):
// the engine writes events through a borrowed trace::Sink and never owns
// a trace buffer. Pass a trace::Recorder for full-fidelity traces, a
// trace::CountingSink for counters only, or nothing to discard events.
// Sweep-scale runs select a static SinkMode instead (EngineOptions):
// the inner loop then makes zero virtual calls per event and counting
// is batched — accumulated locally and flushed at run boundaries.
//
// Determinism: simultaneous events are ordered Completion < OverheadDone <
// StopEffect < Timer < Release < DeadlineCheck, then by creation sequence.
// A job completing exactly when a detector fires is therefore observed as
// finished (the paper's Figure 5: τ2 ends at its detector's date and is
// not stopped), and a job completing exactly at its deadline meets it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "runtime/cost_model.hpp"
#include "sched/task.hpp"
#include "trace/sink.hpp"

namespace rtft::rt {

class Engine;

/// Index of a task registered with an Engine.
using TaskHandle = std::size_t;
/// Index of a timer registered with an Engine.
using TimerHandle = std::size_t;

/// What a stop request terminates (§4.1).
enum class StopMode {
  kTask,  ///< the paper's behaviour: the thread ends; no future releases.
  kJob,   ///< only the current job is abandoned; the task keeps running.
};

/// Hooks around each job, mirroring the paper's computeBeforePeriodic()/
/// computeAfterPeriodic() inserted around waitForNextPeriod().
struct TaskCallbacks {
  std::function<void(Engine&, std::int64_t job_index)> on_job_begin;
  std::function<void(Engine&, std::int64_t job_index)> on_job_end;
};

/// Timer handler; runs at the fire date in zero virtual time.
using TimerHandler = std::function<void(Engine&)>;

/// How reschedule() finds the dispatch winner. Both produce identical
/// traces — the order (priority desc, FIFO within a level) is total.
enum class DispatchMode : std::uint8_t {
  /// Incrementally maintained ready queue (src/runtime/ready_queue.hpp):
  /// O(1) winner lookup per event, O(log n) per job start/retirement.
  kReadyQueue,
  /// Rescan of every task slot per event — O(n), the original
  /// dispatcher, retained as an equivalence oracle and benchmark
  /// baseline.
  kLinearScan,
};

/// How the engine keeps its future-event queue. Both produce identical
/// traces — the dispatch order (time, kind, creation sequence) is total.
enum class EventQueueMode : std::uint8_t {
  /// Hierarchical timing wheel (src/runtime/timing_wheel.hpp): O(1)
  /// amortized insert/extract for the near-monotone periodic workload.
  /// Deadline checks are *lazy* in this mode — no per-job check event is
  /// queued; deadlines are validated at the moments that can decide them
  /// (job completion, and wheel-turn boundaries for everything else), so
  /// queue traffic roughly halves on periodic-heavy workloads. Observable
  /// behaviour (traces, statistics, miss dates) is unchanged.
  kTimingWheel,
  /// Pooled comparison-based binary heap (src/runtime/event_heap.hpp)
  /// with one eagerly scheduled deadline-check event per released job —
  /// the original design, retained as an equivalence oracle and
  /// benchmark baseline.
  kPooledHeap,
};

/// Terminal state of one released job.
enum class JobOutcome : std::uint8_t {
  kPending,    ///< released, not yet finished.
  kCompleted,  ///< ran to completion.
  kAborted,    ///< terminated by a stop request.
  kSkipped,    ///< released but never started (task stopped first).
};

/// Aggregated per-task counters, maintained during the run.
struct TaskStats {
  std::int64_t released = 0;
  std::int64_t completed = 0;
  std::int64_t missed = 0;    ///< deadline misses (incl. aborted/skipped jobs).
  std::int64_t aborted = 0;
  bool stopped = false;       ///< task terminated by a kTask stop.
  Duration max_response;      ///< over completed jobs.
  Duration last_response;
};

/// Engine construction parameters.
struct EngineOptions {
  /// End of the simulated window; events dated after it do not run.
  Instant horizon = Instant::from_ns(0);
  /// Delay between a stop request and its effect — the cooperative
  /// stop-flag poll of §4.1 (default: immediate).
  Duration stop_poll_latency = Duration::zero();
  /// CPU cost charged when the processor switches to a different job
  /// (ablation knob for the §6.2 overhead discussion; default free).
  Duration context_switch_cost = Duration::zero();
  /// Where trace events go in SinkMode::kVirtual. Borrowed: must
  /// outlive the engine (or its next reset()). Null discards every
  /// event. Must be null in the static sink modes.
  trace::Sink* sink = nullptr;
  /// How the engine observes its own events. The static modes make the
  /// inner loop free of virtual calls: kStaticNull discards on a branch;
  /// kStaticCounting accumulates in an engine-local trace::CounterBank
  /// and flushes into `counting_sink` when run()/run_until() returns
  /// (batched counting). Detector/treatment code recording through
  /// Engine::sink() still lands in the right place in every mode.
  trace::SinkMode sink_mode = trace::SinkMode::kVirtual;
  /// Flush target for SinkMode::kStaticCounting (required there,
  /// forbidden elsewhere). Borrowed: must outlive the engine (or its
  /// next reset()).
  trace::CountingSink* counting_sink = nullptr;
  /// Dispatcher implementation; trace-equivalent, differ only in cost.
  DispatchMode dispatch = DispatchMode::kReadyQueue;
  /// Event-queue implementation; trace-equivalent, differ only in cost.
  EventQueueMode event_queue = EventQueueMode::kTimingWheel;
};

/// The discrete-event engine. Single-threaded; not copyable.
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Re-arms the engine for a fresh run under new options: forgets every
  /// task, timer, queued event and statistic while keeping the event
  /// pool, task slots and per-task vectors allocated, so one engine can
  /// execute thousands of scenarios without per-run allocation.
  void reset(EngineOptions options);

  /// Pre-sizes internal storage for a run of up to `tasks` tasks and
  /// `events` concurrently outstanding events, so the first run after
  /// construction pays no growth reallocation (reset() already keeps
  /// capacity across runs). Purely a capacity hint; over- or
  /// under-estimating is safe.
  void reserve(std::size_t tasks, std::size_t events);

  /// Registers a periodic task. First release at `start + params.offset`
  /// (which must not lie in the past). May be called while the engine is
  /// running (dynamic admission): pass `start >= now()`.
  /// `cost` accepts a flat CostSpec or (implicitly) anything callable
  /// as Duration(std::int64_t); default is the nominal cost every job.
  TaskHandle add_task(const sched::TaskParams& params, CostSpec cost = {},
                      TaskCallbacks callbacks = {},
                      Instant start = Instant::epoch());

  /// One-shot timer at `when` (>= now).
  TimerHandle add_one_shot_timer(Instant when, TimerHandler handler);
  /// Periodic timer: fires at `first`, then every `period`.
  TimerHandle add_periodic_timer(Instant first, Duration period,
                                 TimerHandler handler);
  /// Cancels all future fires of the timer.
  void cancel_timer(TimerHandle timer);

  /// Requests a cooperative stop; takes effect after the engine's
  /// stop-poll latency plus `extra_latency`.
  void request_stop(TaskHandle task, StopMode mode,
                    Duration extra_latency = Duration::zero());

  /// Adds CPU work at above-any-task priority (models detector fire cost
  /// and other kernel overheads, §6.2).
  void inject_overhead(Duration amount);

  /// Runs all events dated up to the horizon.
  void run();
  /// Runs all events dated up to `stop_at` (inclusive; <= horizon).
  void run_until(Instant stop_at);

  [[nodiscard]] Instant now() const;
  [[nodiscard]] Instant horizon() const;
  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] const sched::TaskParams& params(TaskHandle task) const;
  /// Date of the task's first release: start + offset. Job k releases at
  /// first_release + k * period. Detectors align on this.
  [[nodiscard]] Instant first_release(TaskHandle task) const;
  [[nodiscard]] const TaskStats& stats(TaskHandle task) const;
  /// Outcome of one released job (kPending if not yet terminal).
  [[nodiscard]] JobOutcome job_outcome(TaskHandle task,
                                       std::int64_t job_index) const;
  /// True iff job `job_index` of `task` has completed. Safe for any index
  /// (unreleased jobs are simply not completed). Detectors poll this.
  [[nodiscard]] bool job_completed(TaskHandle task,
                                   std::int64_t job_index) const;
  /// Number of jobs released so far.
  [[nodiscard]] std::int64_t jobs_released(TaskHandle task) const;

  /// The sink this engine records through (a NullSink when none was
  /// configured). Detectors and treatments record through this too. In
  /// SinkMode::kStaticCounting this is an adapter into the engine-local
  /// counter bank, so external events join the same batched flush; in
  /// kStaticNull it is the shared NullSink.
  [[nodiscard]] trace::Sink& sink() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtft::rt
