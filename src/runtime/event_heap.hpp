// Index-based binary min-heap over a pooled event store.
//
// std::priority_queue over a by-value vector moves whole events on every
// sift; at the engine's event sizes that is most of the queue cost, and
// the vector is torn down with the engine. This heap keeps events in
// stable pool slots recycled through a free list and sifts 4-byte slot
// indices instead, and clear() retains every buffer's capacity so one
// queue can serve thousands of scenario runs without reallocation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace rtft::rt {

/// `Earlier(a, b)` returns true when `a` must be dispatched before `b`;
/// it must induce a strict weak ordering (the engine's is total, via a
/// unique creation sequence number).
template <typename Event, typename Earlier>
class PooledEventHeap {
 public:
  void reserve(std::size_t n) {
    pool_.reserve(n);
    heap_.reserve(n);
    free_.reserve(n);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The earliest event. Valid until the next push/pop/clear.
  [[nodiscard]] const Event& top() const {
    RTFT_ASSERT(!heap_.empty(), "top() on an empty event heap");
    return pool_[heap_.front()];
  }

  void push(Event event) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(event));
    } else {
      slot = free_.back();
      free_.pop_back();
      pool_[slot] = std::move(event);
    }
    heap_.push_back(slot);
    sift_up(heap_.size() - 1);
  }

  void pop() {
    RTFT_ASSERT(!heap_.empty(), "pop() on an empty event heap");
    free_.push_back(heap_.front());
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  /// Empties the heap; pool, heap and free-list capacity is retained.
  void clear() {
    heap_.clear();
    pool_.clear();
    free_.clear();
  }

 private:
  void sift_up(std::size_t i) {
    const std::uint32_t slot = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier_(pool_[slot], pool_[heap_[parent]])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = slot;
  }

  void sift_down(std::size_t i) {
    const std::uint32_t slot = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          earlier_(pool_[heap_[child + 1]], pool_[heap_[child]])) {
        ++child;
      }
      if (!earlier_(pool_[heap_[child]], pool_[slot])) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = slot;
  }

  Earlier earlier_{};
  std::vector<Event> pool_;           ///< stable event slots.
  std::vector<std::uint32_t> heap_;   ///< heap-ordered slot indices.
  std::vector<std::uint32_t> free_;   ///< recycled slots.
};

}  // namespace rtft::rt
