// Hierarchical timing-wheel event queue for the engine hot path.
//
// The pooled binary heap (event_heap.hpp) pays O(log n) sifts per push
// and per pop over the whole outstanding-event set. The engine's
// workload is overwhelmingly *short-horizon and near-monotone*: strictly
// periodic releases, completions a job-length ahead of now, stop effects
// a poll-latency ahead. A calendar queue exploits that structure: time is
// divided into fixed-width ticks, ticks hash into 64-slot wheels, and
// each wheel level covers 64x the span of the one below (the classic
// hashed hierarchical wheel of Varghese & Lauer, as in kernel timer
// implementations). Insert is O(1): one XOR to find the level, one list
// prepend. Extract is O(1) amortized: per-level occupancy bitmaps jump
// the cursor straight to the next non-empty slot, and an event cascades
// to a lower level at most once per level.
//
// Exact dispatch order is preserved: events of the current tick are
// served through a tiny "near" binary heap ordered by the full `Earlier`
// comparator, so ties within one tick (and same-instant event chains
// pushed while serving) dispatch in exactly the order the pooled heap
// would produce. The near heap holds only the current tick's events —
// its sifts touch one or two levels, not log(total).
//
// Reuse discipline matches event_heap.hpp: clear() retains every
// buffer's capacity so one wheel serves thousands of scenario runs
// without reallocation.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace rtft::rt {

/// Priority queue over `Event` ordered by `Earlier`, specialized for
/// near-monotone time-keyed workloads.
///
/// Requirements: `Earlier(a, b)` must induce a strict total order that
/// is consistent with `TimeNs` (its primary key): Earlier(a, b) implies
/// TimeNs(a) <= TimeNs(b). `TimeNs(e)` returns the event's date as a
/// non-negative nanosecond count.
///
/// Any push order is accepted (a push dated before the last pop simply
/// becomes the next pop, exactly as a heap would behave); performance is
/// tuned for pushes at or after the most recently popped date.
template <typename Event, typename Earlier, typename TimeNs>
class TimingWheel {
 public:
  /// `shift` sets the tick width to 2^shift nanoseconds (default ~65us,
  /// a level-0 revolution of ~4.2ms: coarse enough that sparse
  /// small-task-count workloads rarely cascade, fine enough that dense
  /// 128-task grids keep slots at 0-2 events each).
  explicit TimingWheel(int shift = kDefaultShift) : shift_(shift) {
    RTFT_EXPECTS(shift >= 0 && shift <= 32,
                 "timing-wheel shift must be in [0, 32]");
    levels_ = (63 - shift_ + kSlotBits - 1) / kSlotBits;
    heads_.assign(static_cast<std::size_t>(levels_) * kSlots, kNil);
    occupied_.assign(static_cast<std::size_t>(levels_), 0);
  }

  static constexpr int kDefaultShift = 16;

  void reserve(std::size_t n) {
    pool_.reserve(n);
    next_.reserve(n);
    free_.reserve(n);
    near_.reserve(n);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// The earliest event. Valid until the next push/pop/clear. Advances
  /// the internal cursor (cascading far slots down) — hence non-const —
  /// but never changes the logical contents or their order.
  [[nodiscard]] const Event& top() {
    const bool found = ensure_near();
    RTFT_ASSERT(found, "top() on an empty timing wheel");
    return pool_[near_.front()];
  }

  void push(Event event) {
    const std::int64_t t = time_(event);
    RTFT_EXPECTS(t >= 0, "timing wheel requires non-negative event dates");
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(event));
      next_.push_back(kNil);
    } else {
      slot = free_.back();
      free_.pop_back();
      pool_[slot] = std::move(event);
    }
    place(slot, static_cast<std::uint64_t>(t) >> shift_);
    ++size_;
  }

  void pop() {
    const bool found = ensure_near();
    RTFT_ASSERT(found, "pop() on an empty timing wheel");
    const std::uint32_t slot = near_.front();
    near_.front() = near_.back();
    near_.pop_back();
    if (!near_.empty()) near_sift_down(0);
    free_.push_back(slot);
    --size_;
  }

  /// Empties the wheel; every buffer keeps its capacity.
  void clear() {
    if (size_ != 0 || !near_.empty()) {
      heads_.assign(heads_.size(), kNil);
      occupied_.assign(occupied_.size(), 0);
      near_.clear();
    }
    pool_.clear();
    next_.clear();
    free_.clear();
    cur_ = 0;
    size_ = 0;
  }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 64;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  [[nodiscard]] std::size_t digit(std::uint64_t tick, int level) const {
    return static_cast<std::size_t>((tick >> (kSlotBits * level)) &
                                    (kSlots - 1));
  }

  /// Files `slot` (whose event is dated tick `tick`) relative to the
  /// cursor: the current tick and anything before it is served through
  /// the near heap; later ticks go to the level of their highest digit
  /// differing from the cursor's.
  void place(std::uint32_t slot, std::uint64_t tick) {
    if (tick <= cur_) {
      near_push(slot);
      return;
    }
    const int level = (std::bit_width(tick ^ cur_) - 1) / kSlotBits;
    const std::size_t s = digit(tick, level);
    const std::size_t i = static_cast<std::size_t>(level) * kSlots + s;
    next_[slot] = heads_[i];
    heads_[i] = slot;
    occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << s;
  }

  /// Moves the earliest occupied slot's events into the near heap,
  /// cascading higher-level slots down as the cursor crosses them.
  /// Returns false when the wheel is empty.
  bool ensure_near() {
    if (!near_.empty()) return true;
    for (;;) {
      int level = -1;
      std::size_t s = 0;
      for (int l = 0; l < levels_; ++l) {
        // Occupied slots at every level lie strictly ahead of the
        // cursor's digit (equal digits imply a lower level or the near
        // heap), so masking from the digit up finds the next candidate;
        // any level-l hit precedes everything at levels > l.
        const std::uint64_t mask =
            occupied_[static_cast<std::size_t>(l)] &
            (~std::uint64_t{0} << digit(cur_, l));
        if (mask != 0) {
          level = l;
          s = static_cast<std::size_t>(std::countr_zero(mask));
          break;
        }
      }
      if (level < 0) return false;
      const std::size_t i = static_cast<std::size_t>(level) * kSlots + s;
      std::uint32_t node = heads_[i];
      RTFT_ASSERT(node != kNil, "occupancy bit set on an empty wheel slot");
      heads_[i] = kNil;
      occupied_[static_cast<std::size_t>(level)] &=
          ~(std::uint64_t{1} << s);
      // Advance the cursor to the slot's start: digit `level` becomes s,
      // lower digits reset, higher digits keep the cursor's value.
      const int low_bits = kSlotBits * level;
      cur_ = (cur_ >> (low_bits + kSlotBits) << kSlotBits | s) << low_bits;
      while (node != kNil) {
        const std::uint32_t nx = next_[node];
        if (level == 0) {
          near_push(node);
        } else {
          place(node, static_cast<std::uint64_t>(time_(pool_[node])) >>
                          shift_);
        }
        node = nx;
      }
      if (!near_.empty()) return true;
    }
  }

  // -- near heap: slot indices ordered by the full comparator ------------

  void near_push(std::uint32_t slot) {
    near_.push_back(slot);
    std::size_t i = near_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier_(pool_[slot], pool_[near_[parent]])) break;
      near_[i] = near_[parent];
      i = parent;
    }
    near_[i] = slot;
  }

  void near_sift_down(std::size_t i) {
    const std::uint32_t slot = near_[i];
    const std::size_t n = near_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          earlier_(pool_[near_[child + 1]], pool_[near_[child]])) {
        ++child;
      }
      if (!earlier_(pool_[near_[child]], pool_[slot])) break;
      near_[i] = near_[child];
      i = child;
    }
    near_[i] = slot;
  }

  Earlier earlier_{};
  TimeNs time_{};
  int shift_;
  int levels_;
  std::vector<Event> pool_;          ///< stable event slots.
  std::vector<std::uint32_t> next_;  ///< per pool slot: next in its list.
  std::vector<std::uint32_t> free_;  ///< recycled pool slots.
  std::vector<std::uint32_t> heads_; ///< level*64+slot -> list head.
  std::vector<std::uint64_t> occupied_;  ///< per-level slot bitmap.
  std::vector<std::uint32_t> near_;  ///< heap of current-tick events.
  std::uint64_t cur_ = 0;            ///< cursor tick.
  std::size_t size_ = 0;
};

}  // namespace rtft::rt
