#include "runtime/quantize.hpp"

#include "common/assert.hpp"

namespace rtft::rt {

Duration Quantizer::apply(Duration d) const {
  RTFT_EXPECTS(resolution.is_positive(), "quantizer resolution must be > 0");
  if (d.is_negative()) d = Duration::zero();
  if (mode == Rounding::kNone) return d;
  const std::int64_t res = resolution.count();
  const std::int64_t v = d.count();
  const std::int64_t down = (v / res) * res;
  switch (mode) {
    case Rounding::kDown:
      return Duration::ns(down);
    case Rounding::kUp:
      return Duration::ns(v == down ? v : down + res);
    case Rounding::kNearest: {
      const std::int64_t rem = v - down;
      return Duration::ns(rem * 2 >= res ? down + res : down);
    }
    case Rounding::kNone:
      break;
  }
  return d;
}

}  // namespace rtft::rt
