// Timer-date quantization, modelling the jRate PeriodicTimer quirk.
//
// Paper §6.2: "if the value given for the first release is not a multiple
// of ten [milliseconds], the precision is not good. We thus voluntarily
// round the release values of the detectors." — detector offsets 29/58/87
// ms observably became 30/60/90 ms. The Quantizer reproduces that rounding
// explicitly and configurably.
#pragma once

#include "common/time.hpp"

namespace rtft::rt {

enum class Rounding {
  kNone,     ///< exact dates (an ideal timer).
  kNearest,  ///< to the nearest multiple of the resolution, ties upward.
  kUp,       ///< to the next multiple (never early).
  kDown,     ///< to the previous multiple (never late).
};

/// Rounds durations to a timer resolution grid.
struct Quantizer {
  Duration resolution = Duration::ms(10);  ///< jRate's observable grid.
  Rounding mode = Rounding::kNone;

  /// The quantized value; negative inputs clamp to zero first.
  [[nodiscard]] Duration apply(Duration d) const;
};

/// The paper's configuration: 10 ms grid, round to nearest.
[[nodiscard]] constexpr Quantizer jrate_quantizer() {
  return Quantizer{Duration::ms(10), Rounding::kNearest};
}

}  // namespace rtft::rt
