// Per-job actual-cost specification for the engine.
//
// The paper injects temporal faults by making a specific job consume
// more CPU than its declared cost (§6: "a cost overrun was voluntarily
// added"). Originally every task carried a std::function cost model and
// paid a type-erased call per job; at sweep scale that call — plus the
// allocation its captures need — is measurable against an inner loop
// that is otherwise branch-and-add.
//
// CostSpec flattens the common cases into an enum plus parameters the
// engine resolves inline:
//
//   kNominal           — the task's declared cost, every job.
//   kFixedOverrunAtJob — one job's cost deviates by a fixed delta
//                        (the paper's injection; what the fault model
//                        and the sweep emit).
//   kSeededJitter      — deterministic pseudo-random cost per job in
//                        [lo, hi], SplitMix64-mixed from (seed, job);
//                        for randomized workloads without closures.
//   kCustom            — an arbitrary std::function; the fully general
//                        path, retained as the equivalence oracle.
//
// Anything callable as Duration(std::int64_t) still converts implicitly
// (to kCustom), so existing call sites that pass lambdas to
// Engine::add_task compile unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace rtft::rt {

/// Actual execution cost of each job. The default (unset) model returns
/// the task's nominal cost; fault injection wraps it (§6: "a cost overrun
/// was voluntarily added").
using CostModel = std::function<Duration(std::int64_t job_index)>;

/// Which rule a CostSpec applies (see file comment).
enum class CostKind : std::uint8_t {
  kNominal,
  kFixedOverrunAtJob,
  kSeededJitter,
  kCustom,
};

/// Flat per-job cost rule; resolve() is the engine's only entry point.
struct CostSpec {
  CostKind kind = CostKind::kNominal;
  std::int64_t job = 0;       ///< kFixedOverrunAtJob: the deviating job.
  Duration extra;             ///< kFixedOverrunAtJob: the delta (any sign).
  std::uint64_t seed = 0;     ///< kSeededJitter.
  Duration jitter_lo;         ///< kSeededJitter: inclusive bounds.
  Duration jitter_hi;
  Duration quantum = Duration::ns(1);  ///< kSeededJitter: snap-down grid.
  CostModel custom;           ///< kCustom.

  CostSpec() = default;

  /// Implicit conversion from anything callable as Duration(int64) —
  /// including CostModel itself — so add_task keeps accepting lambdas.
  /// An empty CostModel means "nominal", exactly as before.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, CostSpec> &&
                std::is_constructible_v<CostModel, F&&>>>
  CostSpec(F&& fn)  // NOLINT(google-explicit-constructor)
      : kind(CostKind::kCustom), custom(std::forward<F>(fn)) {
    if (!custom) kind = CostKind::kNominal;
  }

  /// The task's declared cost, every job.
  [[nodiscard]] static CostSpec nominal() { return CostSpec{}; }

  /// Job `job` costs nominal + `extra` (floored at 1 ns — a job always
  /// does some work); every other job is nominal. Matches the fault
  /// model's closure semantics bit for bit.
  [[nodiscard]] static CostSpec fixed_overrun(std::int64_t job,
                                              Duration extra) {
    CostSpec s;
    s.kind = CostKind::kFixedOverrunAtJob;
    s.job = job;
    s.extra = extra;
    return s;
  }

  /// Deterministic per-job cost uniform over the `quantum`-ns grid
  /// points of [lo, hi], mixed from (seed, job) — same jobs, same
  /// costs, on every platform.
  [[nodiscard]] static CostSpec seeded_jitter(
      std::uint64_t seed, Duration lo, Duration hi,
      Duration quantum = Duration::ns(1)) {
    RTFT_EXPECTS(lo.is_positive(), "jitter bounds must be positive");
    RTFT_EXPECTS(hi >= lo, "jitter bounds must be ordered");
    RTFT_EXPECTS(quantum.is_positive(), "jitter quantum must be positive");
    CostSpec s;
    s.kind = CostKind::kSeededJitter;
    s.seed = seed;
    s.jitter_lo = lo;
    s.jitter_hi = hi;
    s.quantum = quantum;
    return s;
  }

  /// True when resolve() can never deviate from the nominal cost.
  [[nodiscard]] bool is_nominal() const {
    return kind == CostKind::kNominal;
  }

  /// Actual cost of job `job_index` for a task of declared cost
  /// `nominal_cost`. Always positive.
  [[nodiscard]] Duration resolve(Duration nominal_cost,
                                 std::int64_t job_index) const {
    switch (kind) {
      case CostKind::kNominal:
        return nominal_cost;
      case CostKind::kFixedOverrunAtJob: {
        if (job_index != job) return nominal_cost;
        const Duration c = nominal_cost + extra;
        return c < Duration::ns(1) ? Duration::ns(1) : c;
      }
      case CostKind::kSeededJitter: {
        // SplitMix64 finalizer over (seed, job): full-period, cheap,
        // and identical across platforms.
        std::uint64_t x =
            seed + 0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(job_index) + 1);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        x ^= x >> 31;
        const auto span = static_cast<std::uint64_t>(
            (jitter_hi - jitter_lo).count() + 1);
        std::int64_t v =
            jitter_lo.count() + static_cast<std::int64_t>(x % span);
        v -= v % quantum.count();  // snap down to the grid.
        if (v < jitter_lo.count()) v = jitter_lo.count();
        return Duration::ns(v);
      }
      case CostKind::kCustom: {
        const Duration c = custom(job_index);
        RTFT_EXPECTS(c.is_positive(), "cost model must return positive costs");
        return c;
      }
    }
    return nominal_cost;  // unreachable; keeps -Wreturn-type quiet.
  }
};

}  // namespace rtft::rt
