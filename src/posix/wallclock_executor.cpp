#include "posix/wallclock_executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "posix/tsc_clock.hpp"

namespace rtft::posix {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::chrono::nanoseconds to_chrono(Duration d) {
  return std::chrono::nanoseconds(d.count());
}

}  // namespace

struct WallclockExecutor::Impl {
  explicit Impl(WallclockOptions opts)
      : options(opts),
        owned_recorder(opts.sink == nullptr
                           ? std::make_unique<trace::Recorder>(1 << 14)
                           : nullptr),
        sink(opts.sink != nullptr ? opts.sink : owned_recorder.get()) {}

  struct TaskRec {
    sched::TaskParams params;
    rt::CostModel cost_model;
    rt::TaskStats stats;
  };

  WallclockOptions options;
  std::vector<TaskRec> tasks;

  // Shared scheduling state. The mutex guards the ready set, the sink
  // and all counters (CP.50: mutex lives with the data it guards).
  std::mutex mutex;
  std::condition_variable cv;
  /// ready[i] == true when task i has a released, unfinished job.
  std::vector<bool> ready;
  std::atomic<bool> shutting_down{false};

  TscClock clock;
  SteadyClock::time_point start_time;
  /// Events go to a borrowed sink (the engine's observation seam); the
  /// executor owns a Recorder only when the caller configured none.
  std::unique_ptr<trace::Recorder> owned_recorder;
  trace::Sink* sink;
  bool ran = false;

  /// True when task `self` outranks every other ready task (FIFO among
  /// equal priorities is approximated by TaskHandle order).
  bool holds_cpu(std::size_t self) const {
    const sched::Priority mine = tasks[self].params.priority;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == self || !ready[j]) continue;
      const sched::Priority other = tasks[j].params.priority;
      if (other > mine || (other == mine && j < self)) return false;
    }
    return true;
  }

  Instant trace_now() { return clock.now(); }

  void worker(std::size_t self) {
    TaskRec& task = tasks[self];
    const auto period = to_chrono(task.params.period);
    auto next_release = start_time + to_chrono(task.params.offset);
    std::int64_t job = 0;

    while (!shutting_down.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_until(next_release);
      if (shutting_down.load(std::memory_order_relaxed)) break;
      const auto release = next_release;
      next_release += period;

      Duration remaining =
          task.cost_model ? task.cost_model(job) : task.params.cost;
      {
        std::lock_guard lock(mutex);
        task.stats.released++;
        ready[self] = true;
        sink->record(trace_now(), trace::EventKind::kJobRelease,
                     static_cast<std::uint32_t>(self), job);
      }
      cv.notify_all();

      bool started = false;
      while (remaining.is_positive() &&
             !shutting_down.load(std::memory_order_relaxed)) {
        {
          // Wait for the CPU token.
          std::unique_lock lock(mutex);
          cv.wait_for(lock, to_chrono(options.slice), [&] {
            return holds_cpu(self) ||
                   shutting_down.load(std::memory_order_relaxed);
          });
          if (shutting_down.load(std::memory_order_relaxed)) break;
          if (!holds_cpu(self)) continue;
          if (!started) {
            started = true;
            sink->record(trace_now(), trace::EventKind::kJobStart,
                         static_cast<std::uint32_t>(self), job);
          }
        }
        // Execute one slice outside the lock.
        const Duration slice = std::min(remaining, options.slice);
        if (options.busy_spin) {
          const auto until = SteadyClock::now() + to_chrono(slice);
          while (SteadyClock::now() < until) {
            // burn
          }
        } else {
          std::this_thread::sleep_for(to_chrono(slice));
        }
        remaining -= slice;
      }

      {
        std::lock_guard lock(mutex);
        ready[self] = false;
        if (remaining.is_positive()) {
          // Shut down mid-job: count it aborted, not completed.
          task.stats.aborted++;
        } else {
          const auto response =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  SteadyClock::now() - release);
          const Duration r = Duration::ns(response.count());
          task.stats.completed++;
          task.stats.last_response = r;
          if (r > task.stats.max_response) task.stats.max_response = r;
          if (r > task.params.deadline) {
            task.stats.missed++;
            sink->record(trace_now(), trace::EventKind::kDeadlineMiss,
                         static_cast<std::uint32_t>(self), job);
          }
          sink->record(trace_now(), trace::EventKind::kJobEnd,
                       static_cast<std::uint32_t>(self), job, r.count());
        }
      }
      cv.notify_all();
      ++job;
    }
  }
};

WallclockExecutor::WallclockExecutor(WallclockOptions options)
    : impl_(std::make_unique<Impl>(options)) {
  RTFT_EXPECTS(options.horizon.is_positive(), "horizon must be positive");
  RTFT_EXPECTS(options.slice.is_positive(), "slice must be positive");
}

WallclockExecutor::~WallclockExecutor() = default;

rt::TaskHandle WallclockExecutor::add_task(const sched::TaskParams& params,
                                           rt::CostModel cost) {
  RTFT_EXPECTS(!impl_->ran, "tasks must be added before run()");
  sched::validate_params(params);
  Impl::TaskRec rec;
  rec.params = params;
  rec.cost_model = std::move(cost);
  impl_->tasks.push_back(std::move(rec));
  impl_->ready.push_back(false);
  return impl_->tasks.size() - 1;
}

void WallclockExecutor::run() {
  RTFT_EXPECTS(!impl_->ran, "a WallclockExecutor runs exactly once");
  RTFT_EXPECTS(!impl_->tasks.empty(), "no tasks to run");
  impl_->ran = true;
  impl_->start_time = SteadyClock::now();

  std::vector<std::thread> threads;
  threads.reserve(impl_->tasks.size());
  for (std::size_t i = 0; i < impl_->tasks.size(); ++i) {
    threads.emplace_back([this, i] { impl_->worker(i); });
  }
  std::this_thread::sleep_until(impl_->start_time +
                                to_chrono(impl_->options.horizon));
  impl_->shutting_down.store(true, std::memory_order_relaxed);
  impl_->cv.notify_all();
  for (std::thread& t : threads) t.join();
}

const rt::TaskStats& WallclockExecutor::stats(rt::TaskHandle task) const {
  RTFT_EXPECTS(task < impl_->tasks.size(), "task handle out of range");
  return impl_->tasks[task].stats;
}

const trace::Recorder& WallclockExecutor::recorder() const {
  RTFT_EXPECTS(impl_->owned_recorder != nullptr,
               "recorder(): events went to the configured sink");
  return *impl_->owned_recorder;
}

}  // namespace rtft::posix
