// Nanosecond time source backed by the CPU timestamp counter.
//
// The paper (§5) reads the Intel RDTSC instruction through a JNI wrapper
// "in order to obtain durations with a nanosecond precision". In C++ the
// instruction is reachable directly; this class calibrates the TSC
// frequency against the OS monotonic clock once at construction and then
// converts raw cycle counts to nanoseconds. On non-x86 builds it degrades
// transparently to clock_gettime(CLOCK_MONOTONIC).
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace rtft::posix {

class TscClock {
 public:
  /// True when the build targets x86 and the TSC is used; false when the
  /// implementation fell back to the OS monotonic clock.
  [[nodiscard]] static bool uses_tsc();

  /// Calibrates (one ~2 ms sampling window on first construction).
  TscClock();

  /// Raw cycle count (x86) or raw monotonic nanoseconds (fallback).
  [[nodiscard]] std::uint64_t raw() const;

  /// Nanoseconds since this clock was constructed.
  [[nodiscard]] Instant now() const;

  /// Calibrated frequency; 1.0 in the fallback.
  [[nodiscard]] double cycles_per_ns() const { return cycles_per_ns_; }

  /// Converts a raw-count difference to a duration.
  [[nodiscard]] Duration to_duration(std::uint64_t raw_delta) const;

 private:
  std::uint64_t origin_ = 0;
  double cycles_per_ns_ = 1.0;
};

}  // namespace rtft::posix
