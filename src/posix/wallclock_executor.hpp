// Wall-clock executor: the same task model as rt::Engine, run against
// real time on std::thread.
//
// This is the documented approximation of the paper's execution substrate
// (jRate on a TimeSys real-time kernel). A stock kernel in a container
// gives no fixed-priority preemption guarantee, so the executor emulates
// one in user space:
//
//   * every task is a thread; a shared priority gate admits only the
//     highest-priority released job to "execute";
//   * execution is sliced — the running job re-checks the gate every
//     `slice`, so preemption latency is one slice (this is precisely the
//     cooperative polling the paper describes for stopping threads,
//     §4.1, applied to scheduling);
//   * "work" is either a busy spin (consumes real CPU, needs an idle
//     core) or a timed sleep (default; robust on loaded CI machines).
//
// Use the virtual-time engine for exact figures; use this to demonstrate
// the API against a real clock and to sanity-check orderings. Timestamps
// come from the TscClock (the paper's RDTSC path).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "runtime/engine.hpp"  // CostModel, TaskStats
#include "sched/task.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::posix {

struct WallclockOptions {
  /// Real-time length of the run.
  Duration horizon = Duration::ms(500);
  /// Cooperative preemption granularity (and stop-poll latency).
  Duration slice = Duration::ms(1);
  /// Burn CPU for "execution" instead of sleeping through it.
  bool busy_spin = false;
  /// Where trace events go (borrowed; must outlive the executor) — the
  /// engine's Sink seam applied to the wall-clock substrate, so a sweep
  /// can observe wall-clock runs through the same CountingSink it uses
  /// for virtual-time runs. Null (the default) keeps the historical
  /// behavior: the executor owns a full-fidelity Recorder, exposed
  /// through recorder().
  trace::Sink* sink = nullptr;
};

/// Runs periodic tasks against the wall clock. Threads are created by
/// run() and joined before it returns; the object is single-use.
class WallclockExecutor {
 public:
  explicit WallclockExecutor(WallclockOptions options);
  ~WallclockExecutor();
  WallclockExecutor(const WallclockExecutor&) = delete;
  WallclockExecutor& operator=(const WallclockExecutor&) = delete;

  /// Registers a task before run(). Offsets are relative to run() start.
  rt::TaskHandle add_task(const sched::TaskParams& params,
                          rt::CostModel cost = {});

  /// Executes all tasks until the horizon elapses (blocking).
  void run();

  /// Post-run statistics (same shape as the virtual engine's).
  [[nodiscard]] const rt::TaskStats& stats(rt::TaskHandle task) const;
  /// Post-run trace with TSC timestamps (release/start/end/miss events).
  /// Only meaningful when no external sink was configured — events then
  /// went to WallclockOptions::sink, and this throws ContractViolation
  /// (mirroring FaultTolerantSystem::recorder()).
  [[nodiscard]] const trace::Recorder& recorder() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtft::posix
