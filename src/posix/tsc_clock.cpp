#include "posix/tsc_clock.hpp"

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define RTFT_HAVE_TSC 1
#else
#define RTFT_HAVE_TSC 0
#endif

namespace rtft::posix {
namespace {

std::uint64_t read_raw() {
#if RTFT_HAVE_TSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

double calibrate() {
#if RTFT_HAVE_TSC
  // Sample (steady_clock, TSC) pairs across a short window. 2 ms is
  // enough for a stable ratio on an invariant-TSC CPU, and construction
  // stays cheap.
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = __rdtsc();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t c1 = __rdtsc();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count();
  if (ns <= 0 || c1 <= c0) return 1.0;
  return static_cast<double>(c1 - c0) / static_cast<double>(ns);
#else
  return 1.0;
#endif
}

}  // namespace

bool TscClock::uses_tsc() { return RTFT_HAVE_TSC != 0; }

TscClock::TscClock() : cycles_per_ns_(calibrate()) { origin_ = read_raw(); }

std::uint64_t TscClock::raw() const { return read_raw(); }

Instant TscClock::now() const {
  return Instant::epoch() + to_duration(read_raw() - origin_);
}

Duration TscClock::to_duration(std::uint64_t raw_delta) const {
  return Duration::ns(static_cast<std::int64_t>(
      static_cast<double>(raw_delta) / cycles_per_ns_));
}

}  // namespace rtft::posix
