// Distributed sweep coordinator — the layer that *drives* the
// partition/run/merge triad of sweep.hpp across worker processes, and
// keeps driving it when workers crash, stall or corrupt their output.
//
//   SweepPlan -> M shard ranges -> worker processes -> shard files -> merge
//
// The coordinator supervises rather than computes (the
// recovery-strategy-around-workers structure of De Florio & Deconinck's
// REL framework): it spawns up to max_procs concurrent
//
//   sweep_runner --shard i/M --emit-shard <dir>/shard-i.json --progress
//
// workers through the ExecTransport seam, parses each worker's
// --progress stderr stream (progress.hpp) into a live scenario
// aggregate, and treats the shard *file* — validated by
// load_shard_json's full re-derivation — as the only proof of
// completion. A worker that exits without leaving a valid file, for
// whatever reason (crash, kill -9, ENOSPC, truncated write, a stale
// file from a different sweep), just returns its range to the pending
// queue; the shard is re-issued up to a retry budget and the final
// merge still reproduces the single-process fingerprint bit for bit.
//
// Stragglers: once enough attempts have completed to estimate a median
// shard time, an attempt running longer than straggler_factor x that
// median (never less than min_straggler_timeout) is killed and
// re-issued — speculative re-execution in the MapReduce tradition,
// sized from observed behavior rather than a wired-in timeout.
//
// Completed shard files double as checkpoints: run() first scans the
// output directory, adopts every file that validates against this
// sweep's options and partition, and schedules only the missing
// ranges. Killing the coordinator therefore loses at most the
// in-flight shards; a restart resumes instead of restarting.
//
// The transport is a seam on purpose: ProcessTransport runs workers as
// local child processes (fork/exec, stderr piped, stdout discarded);
// an ssh or cluster transport implements the same four calls and the
// coordinator logic carries over unchanged, which is how the
// million-scenario multi-host sweep the ROADMAP names slots in.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sweep/progress.hpp"
#include "sweep/sweep.hpp"

namespace rtft::sweep {

/// Thrown when the coordinator cannot converge (a shard exhausted its
/// retry budget) or a transport operation fails. Recoverable error
/// reporting, like ShardError — not a caller bug.
class CoordinatorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One observation delivered by a transport: a progress update parsed
/// from a worker's stderr, or the worker's termination.
struct WorkerEvent {
  enum class Kind { kProgress, kExit };
  Kind kind = Kind::kExit;
  std::uint64_t worker = 0;  ///< the id spawn() returned.
  ProgressUpdate progress;   ///< kProgress only.
  /// kExit only: 0 on success, the exit status when positive, the
  /// negated terminating signal when negative (-9 for SIGKILL).
  int exit_code = 0;
};

/// The exec-transport seam. Implementations launch worker commands and
/// surface their progress streams and exits as a single event queue.
/// Contract: every spawned worker eventually yields exactly one kExit
/// event (also after kill_worker), with any of its kProgress events
/// delivered before it. The coordinator is single-threaded around the
/// transport — no call is made concurrently with another.
class ExecTransport {
 public:
  virtual ~ExecTransport() = default;

  /// Starts a worker running argv (argv[0] is the binary); returns a
  /// transport-unique worker id. Throws CoordinatorError on launch
  /// failure.
  virtual std::uint64_t spawn(const std::vector<std::string>& argv) = 0;
  /// Blocks up to `timeout` for the next event; nullopt on timeout or
  /// when no worker is live.
  virtual std::optional<WorkerEvent> poll(Duration timeout) = 0;
  /// Forcibly terminates a worker. Idempotent; the worker's kExit event
  /// is still delivered through poll().
  virtual void kill_worker(std::uint64_t worker) = 0;
  /// Monotonic clock the coordinator times attempts with. Virtual so a
  /// fake transport controls time and straggler tests are exact.
  virtual Duration now() = 0;
};

/// ExecTransport over local child processes: fork/exec with the
/// worker's stderr on a pipe (parsed incrementally into kProgress
/// events) and stdout discarded; poll(2) multiplexes the pipes, EOF
/// triggers the waitpid that turns an exit status into kExit. The
/// destructor SIGKILLs and reaps anything still live.
class ProcessTransport final : public ExecTransport {
 public:
  ProcessTransport();
  ~ProcessTransport() override;
  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  std::uint64_t spawn(const std::vector<std::string>& argv) override;
  std::optional<WorkerEvent> poll(Duration timeout) override;
  void kill_worker(std::uint64_t worker) override;
  Duration now() override;

 private:
  struct Child {
    std::uint64_t id = 0;
    int pid = -1;
    int stderr_fd = -1;
    ProgressParser parser;
  };

  /// Drains one child's readable stderr; on EOF reaps it and queues its
  /// kExit event. Returns true when the child was reaped.
  bool drain(Child& child);

  std::vector<Child> children_;
  std::deque<WorkerEvent> ready_;  ///< parsed but undelivered events.
  std::uint64_t next_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;
};

/// Coordinator policy knobs. The sweep itself (grid, seed, scenario
/// count, per-worker threads) comes from SweepOptions; these only
/// shape how the work is driven.
struct CoordinatorOptions {
  /// The sweep_runner binary workers exec.
  std::string runner;
  /// Directory for the shard-<i>.json files — the checkpoint state a
  /// restarted coordinator resumes from. Created if missing.
  std::string output_dir;
  /// How many shards to split the sweep into; 0 means 4 x max_procs
  /// (enough slack that one slow range cannot serialize the tail).
  std::uint64_t shards = 0;
  /// Concurrent worker processes.
  std::size_t max_procs = 3;
  /// Re-issues allowed per shard after its first attempt; a shard
  /// failing 1 + retry_budget times aborts the run with
  /// CoordinatorError.
  int retry_budget = 2;
  /// Straggler rule: with >= 3 completed attempts, kill and re-issue an
  /// attempt older than straggler_factor x the median completed attempt
  /// time, floored at min_straggler_timeout. <= 0 disables.
  double straggler_factor = 4.0;
  Duration min_straggler_timeout = Duration::s(10);
  /// Transport poll granularity — also the straggler-check cadence.
  Duration poll_interval = Duration::ms(100);
  /// Lifecycle log lines (launch, completion, re-issue, resume...), one
  /// complete line per call, no trailing newline. Empty discards them.
  std::function<void(const std::string&)> on_log;
  /// Live aggregate across workers: (scenarios done, scenario count).
  /// May regress when a worker dies — its in-flight scenarios are lost
  /// and re-run. Empty costs nothing.
  std::function<void(std::uint64_t done, std::uint64_t total)> on_progress;
};

/// What the run did, beyond the report itself.
struct CoordinatorStats {
  std::uint64_t shards = 0;           ///< partition size.
  std::uint64_t resumed = 0;          ///< adopted from checkpoint files.
  std::uint64_t launched = 0;         ///< worker processes spawned.
  std::uint64_t reissued = 0;         ///< failed/stale attempts re-queued.
  std::uint64_t straggler_kills = 0;  ///< attempts killed for slowness.
  std::uint64_t invalid_files = 0;    ///< shard files that failed to load.
};

struct CoordinatorResult {
  SweepReport report;  ///< == the single-process run, bit for bit.
  CoordinatorStats stats;
};

/// Drives one sweep to completion through a transport. Construction
/// validates everything (including that the sweep options are
/// expressible as runner flags — cli.hpp); run() blocks until the
/// merged report is ready or a shard exhausts its retry budget.
class Coordinator {
 public:
  Coordinator(const SweepOptions& sweep, CoordinatorOptions options,
              ExecTransport& transport);

  /// Resumes from the output directory, schedules what is missing,
  /// supervises until every shard has a valid file, merges. Throws
  /// CoordinatorError (budget exhausted, transport failure) or
  /// ShardError (the final merge — unreachable when every adopted file
  /// validated, kept as a backstop).
  [[nodiscard]] CoordinatorResult run();

 private:
  enum class State { kPending, kRunning, kDone };

  struct ShardTask {
    ShardSpec spec;
    std::string path;  ///< <output_dir>/shard-<index>.json
    State state = State::kPending;
    int attempts = 0;           ///< launches so far.
    std::uint64_t worker = 0;   ///< valid while kRunning.
    Duration started;           ///< transport time of the live attempt.
    std::uint64_t live_done = 0;  ///< progress of the live attempt.
    bool kill_sent = false;     ///< straggler kill already requested.
  };

  void log(const std::string& line);
  void emit_progress();
  /// Loads + validates the task's shard file against this sweep and
  /// partition; adopts it (-> kDone) on success, removes it and counts
  /// it invalid on failure.
  bool adopt_shard_file(ShardTask& task, bool resumed);
  void launch(ShardTask& task);
  void handle_exit(ShardTask& task, int exit_code);
  void check_stragglers();
  [[nodiscard]] std::optional<Duration> straggler_timeout() const;
  [[nodiscard]] ShardTask* task_of_worker(std::uint64_t worker);

  SweepPlan plan_;
  CoordinatorOptions opts_;
  ExecTransport& transport_;
  std::vector<ShardTask> tasks_;
  std::vector<Duration> completed_elapsed_;  ///< straggler median input.
  CoordinatorStats stats_;
  std::uint64_t done_scenarios_ = 0;  ///< over kDone shards only.
  /// Folds each shard the moment its file validates, so the run never
  /// holds the whole ShardResult list — only out-of-order completions
  /// wait (buffered inside the merger) for their predecessor range.
  ShardMerger merger_;
};

}  // namespace rtft::sweep
