#include "sweep/export.hpp"

#include <cinttypes>
#include <clocale>
#include <cstdarg>
#include <cstdio>

#include "common/assert.hpp"

namespace rtft::sweep {

namespace detail {

void appendf(std::string& out, const char* fmt, ...) {
  // Large enough for the widest verdict row; wider rows grow below.
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::va_list retry;
  va_copy(retry, args);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  RTFT_ASSERT(n >= 0, "invalid export format string");
  if (n >= 0) {
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
      out.append(buf, static_cast<std::size_t>(n));
    } else {
      // Truncated: format again straight into the grown destination
      // (vsnprintf needs room for its terminating NUL, trimmed after).
      const std::size_t old = out.size();
      out.resize(old + static_cast<std::size_t>(n) + 1);
      std::vsnprintf(&out[old], static_cast<std::size_t>(n) + 1, fmt, retry);
      out.resize(old + static_cast<std::size_t>(n));
    }
  }
  va_end(retry);
}

std::string normalize_decimal_point(std::string_view formatted,
                                    std::string_view decimal_point) {
  const std::size_t pos = decimal_point.empty() || decimal_point == "."
                              ? std::string_view::npos
                              : formatted.find(decimal_point);
  if (pos == std::string_view::npos) return std::string(formatted);
  std::string out;
  out.reserve(formatted.size());
  out.append(formatted.substr(0, pos));
  out += '.';
  out.append(formatted.substr(pos + decimal_point.size()));
  return out;
}

void append_double(std::string& out, double value) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", value);
  RTFT_ASSERT(n > 0 && static_cast<std::size_t>(n) < sizeof(buf),
              "%.17g exceeds the number buffer");
  const char* dp = std::localeconv()->decimal_point;
  if (dp == nullptr || (dp[0] == '.' && dp[1] == '\0')) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  out += normalize_decimal_point(std::string_view(buf,
                                                  static_cast<std::size_t>(n)),
                                 dp);
}

}  // namespace detail

namespace {

using detail::append_double;
using detail::appendf;

void append_hex(std::string& out, std::uint64_t v) {
  appendf(out, "%016" PRIx64, v);
}

const char* b(bool v) { return v ? "1" : "0"; }

void append_aggregate_json(std::string& out, const SweepAggregate& a) {
  appendf(out,
          "{\"total\":%" PRIu64 ",\"rta_schedulable\":%" PRIu64
          ",\"engine_clean\":%" PRIu64 ",\"agreement_violations\":%" PRIu64
          ",\"allowance_feasible\":%" PRIu64 ",\"allowance_honored\":%" PRIu64
          ",\"detector_clean\":%" PRIu64 ",\"allowance_sum_ns\":%" PRId64
          ",\"mean_allowance_ms\":",
          a.total, a.rta_schedulable, a.engine_clean, a.agreement_violations,
          a.allowance_feasible, a.allowance_honored, a.detector_clean,
          a.allowance_sum.count());
  append_double(out, a.mean_allowance_ms());
  out += '}';
}

}  // namespace

std::string verdicts_csv(const SweepReport& report) {
  std::string out =
      "index,seed,cell,tasks,target_utilization,actual_utilization,"
      "detector_cost_ns,stop_poll_latency_ns,rta_schedulable,engine_clean,"
      "nominal_misses,"
      "agreement,allowance_feasible,allowance_ns,allowance_honored,"
      "detector_clean,detector_faults\n";
  for (const ScenarioVerdict& v : report.verdicts) {
    appendf(out, "%" PRIu64 ",", v.index);
    append_hex(out, v.seed);
    appendf(out, ",%zu,%zu,", v.cell, v.task_count);
    append_double(out, v.target_utilization);
    out += ',';
    append_double(out, v.actual_utilization);
    appendf(out,
            ",%" PRId64 ",%" PRId64 ",%s,%s,%" PRId64 ",%s,%s,%" PRId64
            ",%s,%s,%" PRId64 "\n",
            v.detector_cost.count(), v.stop_poll_latency.count(),
            b(v.rta_schedulable), b(v.engine_clean),
            v.nominal_misses, b(v.agreement), b(v.allowance_feasible),
            v.allowance.count(), b(v.allowance_honored), b(v.detector_clean),
            v.detector_faults);
  }
  return out;
}

std::string cells_csv(const SweepReport& report) {
  std::string out =
      "cell,tasks,utilization,detector_cost_ns,stop_poll_latency_ns,total,"
      "rta_schedulable,"
      "engine_clean,agreement_violations,allowance_feasible,"
      "allowance_honored,detector_clean,mean_allowance_ms\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    const SweepAggregate& a = cell.agg;
    appendf(out, "%zu,%zu,", c, cell.task_count);
    append_double(out, cell.utilization);
    appendf(out,
            ",%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",",
            cell.detector_cost.count(), cell.stop_poll_latency.count(),
            a.total, a.rta_schedulable,
            a.engine_clean, a.agreement_violations, a.allowance_feasible,
            a.allowance_honored, a.detector_clean);
    append_double(out, a.mean_allowance_ms());
    out += '\n';
  }
  return out;
}

std::string report_json(const SweepReport& report) {
  const SweepOptions& o = report.options;
  std::string out = "{\n  \"options\": ";
  appendf(out,
          "{\"scenario_count\":%" PRIu64 ",\"workers\":%zu,\"base_seed\":\"",
          o.scenario_count, o.workers);
  append_hex(out, o.base_seed);
  appendf(out,
          "\",\"horizon_periods\":%" PRId64
          ",\"allowance_granularity_ns\":%" PRId64
          ",\"keep_verdicts\":%s,\"full_traces\":%s},\n",
          o.horizon_periods, o.allowance_granularity.count(),
          o.keep_verdicts ? "true" : "false",
          o.full_traces ? "true" : "false");
  out += "  \"totals\": ";
  append_aggregate_json(out, report.totals);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    if (c > 0) out += ',';
    appendf(out, "\n    {\"cell\":%zu,\"tasks\":%zu,\"utilization\":", c,
            cell.task_count);
    append_double(out, cell.utilization);
    appendf(out,
            ",\"detector_cost_ns\":%" PRId64
            ",\"stop_poll_latency_ns\":%" PRId64 ",\"aggregate\":",
            cell.detector_cost.count(), cell.stop_poll_latency.count());
    append_aggregate_json(out, cell.agg);
    out += '}';
  }
  out += "\n  ],\n  \"verdicts\": [";
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const ScenarioVerdict& v = report.verdicts[i];
    if (i > 0) out += ',';
    appendf(out, "\n    {\"index\":%" PRIu64 ",\"seed\":\"", v.index);
    append_hex(out, v.seed);
    appendf(out, "\",\"cell\":%zu,\"tasks\":%zu,\"actual_utilization\":",
            v.cell, v.task_count);
    append_double(out, v.actual_utilization);
    appendf(out,
            ",\"detector_cost_ns\":%" PRId64
            ",\"stop_poll_latency_ns\":%" PRId64 ",\"rta_schedulable\":%s,"
            "\"engine_clean\":%s,\"nominal_misses\":%" PRId64
            ",\"agreement\":%s,\"allowance_feasible\":%s,"
            "\"allowance_ns\":%" PRId64 ",\"allowance_honored\":%s,"
            "\"detector_clean\":%s,\"detector_faults\":%" PRId64 "}",
            v.detector_cost.count(), v.stop_poll_latency.count(),
            v.rta_schedulable ? "true" : "false",
            v.engine_clean ? "true" : "false", v.nominal_misses,
            v.agreement ? "true" : "false",
            v.allowance_feasible ? "true" : "false", v.allowance.count(),
            v.allowance_honored ? "true" : "false",
            v.detector_clean ? "true" : "false", v.detector_faults);
  }
  out += "\n  ],\n  \"elapsed_seconds\": ";
  append_double(out, report.elapsed_seconds);
  out += ",\n  \"fingerprint\": \"";
  append_hex(out, report.fingerprint);
  out += "\"\n}\n";
  return out;
}

}  // namespace rtft::sweep
