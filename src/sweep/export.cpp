#include "sweep/export.hpp"

#include <charconv>
#include <cinttypes>
#include <clocale>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "core/treatment.hpp"
#include "sweep/generators.hpp"

namespace rtft::sweep {

namespace detail {

void appendf(std::string& out, const char* fmt, ...) {
  // Large enough for the widest verdict row; wider rows grow below.
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::va_list retry;
  va_copy(retry, args);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  RTFT_ASSERT(n >= 0, "invalid export format string");
  if (n >= 0) {
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
      out.append(buf, static_cast<std::size_t>(n));
    } else {
      // Truncated: format again straight into the grown destination
      // (vsnprintf needs room for its terminating NUL, trimmed after).
      const std::size_t old = out.size();
      out.resize(old + static_cast<std::size_t>(n) + 1);
      std::vsnprintf(&out[old], static_cast<std::size_t>(n) + 1, fmt, retry);
      out.resize(old + static_cast<std::size_t>(n));
    }
  }
  va_end(retry);
}

std::string normalize_decimal_point(std::string_view formatted,
                                    std::string_view decimal_point) {
  const std::size_t pos = decimal_point.empty() || decimal_point == "."
                              ? std::string_view::npos
                              : formatted.find(decimal_point);
  if (pos == std::string_view::npos) return std::string(formatted);
  std::string out;
  out.reserve(formatted.size());
  out.append(formatted.substr(0, pos));
  out += '.';
  out.append(formatted.substr(pos + decimal_point.size()));
  return out;
}

void append_double(std::string& out, double value) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", value);
  RTFT_ASSERT(n > 0 && static_cast<std::size_t>(n) < sizeof(buf),
              "%.17g exceeds the number buffer");
  const char* dp = std::localeconv()->decimal_point;
  if (dp == nullptr || (dp[0] == '.' && dp[1] == '\0')) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  out += normalize_decimal_point(std::string_view(buf,
                                                  static_cast<std::size_t>(n)),
                                 dp);
}

}  // namespace detail

namespace {

using detail::append_double;
using detail::appendf;

void append_hex(std::string& out, std::uint64_t v) {
  appendf(out, "%016" PRIx64, v);
}

const char* b(bool v) { return v ? "1" : "0"; }

void append_aggregate_json(std::string& out, const SweepAggregate& a) {
  appendf(out,
          "{\"total\":%" PRIu64 ",\"rta_schedulable\":%" PRIu64
          ",\"engine_clean\":%" PRIu64 ",\"agreement_violations\":%" PRIu64
          ",\"allowance_feasible\":%" PRIu64 ",\"allowance_honored\":%" PRIu64
          ",\"detector_clean\":%" PRIu64 ",\"allowance_sum_ns\":%" PRId64
          ",\"multicore\":%" PRIu64 ",\"ff_placed\":%" PRIu64
          ",\"fa_placed\":%" PRIu64 ",\"ff_failover_clean\":%" PRIu64
          ",\"fa_failover_clean\":%" PRIu64 ",\"mean_allowance_ms\":",
          a.total, a.rta_schedulable, a.engine_clean, a.agreement_violations,
          a.allowance_feasible, a.allowance_honored, a.detector_clean,
          a.allowance_sum.count(), a.multicore, a.ff_placed, a.fa_placed,
          a.ff_failover_clean, a.fa_failover_clean);
  append_double(out, a.mean_allowance_ms());
  out += '}';
}

/// The one verdict-object serialization, shared by report_json and the
/// shard writer: two hand-maintained copies of a 27-field format string
/// would drift apart silently.
void append_verdict_json(std::string& out, const ScenarioVerdict& v) {
  appendf(out, "{\"index\":%" PRIu64 ",\"seed\":\"", v.index);
  append_hex(out, v.seed);
  appendf(out, "\",\"cell\":%zu,\"tasks\":%zu,\"target_utilization\":",
          v.cell, v.task_count);
  append_double(out, v.target_utilization);
  out += ",\"actual_utilization\":";
  append_double(out, v.actual_utilization);
  appendf(out,
          ",\"detector_cost_ns\":%" PRId64 ",\"stop_poll_latency_ns\":%" PRId64
          ",\"rta_schedulable\":%s,\"engine_clean\":%s,\"nominal_misses\":%"
          PRId64 ",\"agreement\":%s,\"allowance_feasible\":%s,\"allowance_ns\""
          ":%" PRId64 ",\"allowance_honored\":%s,\"detector_clean\":%s,"
          "\"detector_faults\":%" PRId64,
          v.detector_cost.count(), v.stop_poll_latency.count(),
          v.rta_schedulable ? "true" : "false",
          v.engine_clean ? "true" : "false", v.nominal_misses,
          v.agreement ? "true" : "false",
          v.allowance_feasible ? "true" : "false", v.allowance.count(),
          v.allowance_honored ? "true" : "false",
          v.detector_clean ? "true" : "false", v.detector_faults);
  appendf(out,
          ",\"cores\":%zu,\"quantum_ns\":%" PRId64
          ",\"ff_placement_feasible\":%s,\"fa_placement_feasible\":%s"
          ",\"ff_failover_clean\":%s,\"fa_failover_clean\":%s"
          ",\"ff_missed_tasks\":%" PRId64 ",\"fa_missed_tasks\":%" PRId64
          ",\"ff_lost_jobs\":%" PRId64 ",\"fa_lost_jobs\":%" PRId64 "}",
          v.cores, v.quantum.count(),
          v.ff_placement_feasible ? "true" : "false",
          v.fa_placement_feasible ? "true" : "false",
          v.ff_failover_clean ? "true" : "false",
          v.fa_failover_clean ? "true" : "false", v.ff_missed_tasks,
          v.fa_missed_tasks, v.ff_lost_jobs, v.fa_lost_jobs);
}

}  // namespace

std::string verdicts_csv(const SweepReport& report) {
  std::string out =
      "index,seed,cell,tasks,target_utilization,actual_utilization,"
      "detector_cost_ns,stop_poll_latency_ns,rta_schedulable,engine_clean,"
      "nominal_misses,"
      "agreement,allowance_feasible,allowance_ns,allowance_honored,"
      "detector_clean,detector_faults,cores,quantum_ns,"
      "ff_placement_feasible,fa_placement_feasible,ff_failover_clean,"
      "fa_failover_clean,ff_missed_tasks,fa_missed_tasks,ff_lost_jobs,"
      "fa_lost_jobs\n";
  for (const ScenarioVerdict& v : report.verdicts) {
    appendf(out, "%" PRIu64 ",", v.index);
    append_hex(out, v.seed);
    appendf(out, ",%zu,%zu,", v.cell, v.task_count);
    append_double(out, v.target_utilization);
    out += ',';
    append_double(out, v.actual_utilization);
    appendf(out,
            ",%" PRId64 ",%" PRId64 ",%s,%s,%" PRId64 ",%s,%s,%" PRId64
            ",%s,%s,%" PRId64,
            v.detector_cost.count(), v.stop_poll_latency.count(),
            b(v.rta_schedulable), b(v.engine_clean),
            v.nominal_misses, b(v.agreement), b(v.allowance_feasible),
            v.allowance.count(), b(v.allowance_honored), b(v.detector_clean),
            v.detector_faults);
    appendf(out,
            ",%zu,%" PRId64 ",%s,%s,%s,%s,%" PRId64 ",%" PRId64 ",%" PRId64
            ",%" PRId64 "\n",
            v.cores, v.quantum.count(), b(v.ff_placement_feasible),
            b(v.fa_placement_feasible), b(v.ff_failover_clean),
            b(v.fa_failover_clean), v.ff_missed_tasks, v.fa_missed_tasks,
            v.ff_lost_jobs, v.fa_lost_jobs);
  }
  return out;
}

std::string cells_csv(const SweepReport& report) {
  std::string out =
      "cell,tasks,utilization,detector_cost_ns,stop_poll_latency_ns,cores,"
      "quantum_ns,total,"
      "rta_schedulable,"
      "engine_clean,agreement_violations,allowance_feasible,"
      "allowance_honored,detector_clean,multicore,ff_placed,fa_placed,"
      "ff_failover_clean,fa_failover_clean,mean_allowance_ms\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    const SweepAggregate& a = cell.agg;
    appendf(out, "%zu,%zu,", c, cell.task_count);
    append_double(out, cell.utilization);
    appendf(out,
            ",%" PRId64 ",%" PRId64 ",%zu,%" PRId64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",",
            cell.detector_cost.count(), cell.stop_poll_latency.count(),
            cell.cores, cell.quantum.count(), a.total, a.rta_schedulable,
            a.engine_clean, a.agreement_violations, a.allowance_feasible,
            a.allowance_honored, a.detector_clean, a.multicore, a.ff_placed,
            a.fa_placed, a.ff_failover_clean, a.fa_failover_clean);
    append_double(out, a.mean_allowance_ms());
    out += '\n';
  }
  return out;
}

std::string report_json(const SweepReport& report) {
  const SweepOptions& o = report.options;
  std::string out = "{\n  \"options\": ";
  appendf(out,
          "{\"scenario_count\":%" PRIu64 ",\"workers\":%zu,\"base_seed\":\"",
          o.scenario_count, o.workers);
  append_hex(out, o.base_seed);
  appendf(out,
          "\",\"horizon_periods\":%" PRId64
          ",\"allowance_granularity_ns\":%" PRId64
          ",\"keep_verdicts\":%s,\"full_traces\":%s,\"partitioner\":\"%.*s\""
          ",\"core_fault_fraction\":",
          o.horizon_periods, o.allowance_granularity.count(),
          o.keep_verdicts ? "true" : "false",
          o.full_traces ? "true" : "false",
          static_cast<int>(to_string(o.partitioner).size()),
          to_string(o.partitioner).data());
  append_double(out, o.core_fault_fraction);
  out += "},\n";
  out += "  \"totals\": ";
  append_aggregate_json(out, report.totals);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    if (c > 0) out += ',';
    appendf(out, "\n    {\"cell\":%zu,\"tasks\":%zu,\"utilization\":", c,
            cell.task_count);
    append_double(out, cell.utilization);
    appendf(out,
            ",\"detector_cost_ns\":%" PRId64
            ",\"stop_poll_latency_ns\":%" PRId64 ",\"cores\":%zu"
            ",\"quantum_ns\":%" PRId64 ",\"aggregate\":",
            cell.detector_cost.count(), cell.stop_poll_latency.count(),
            cell.cores, cell.quantum.count());
    append_aggregate_json(out, cell.agg);
    out += '}';
  }
  out += "\n  ],\n  \"verdicts\": [";
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    ";
    append_verdict_json(out, report.verdicts[i]);
  }
  out += "\n  ],\n  \"elapsed_seconds\": ";
  append_double(out, report.elapsed_seconds);
  out += ",\n  \"fingerprint\": \"";
  append_hex(out, report.fingerprint);
  out += "\"\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Shard interchange: writer.
// ---------------------------------------------------------------------------

namespace {

void append_grid_json(std::string& out, const SweepGrid& g) {
  out += "{\"task_counts\":[";
  for (std::size_t i = 0; i < g.task_counts.size(); ++i) {
    appendf(out, "%s%zu", i > 0 ? "," : "", g.task_counts[i]);
  }
  out += "],\"utilizations\":[";
  for (std::size_t i = 0; i < g.utilizations.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, g.utilizations[i]);
  }
  out += "],\"detector_cost_ns\":[";
  for (std::size_t i = 0; i < g.detector_costs.size(); ++i) {
    appendf(out, "%s%" PRId64, i > 0 ? "," : "",
            g.detector_costs[i].count());
  }
  out += "],\"stop_poll_latency_ns\":[";
  for (std::size_t i = 0; i < g.stop_poll_latencies.size(); ++i) {
    appendf(out, "%s%" PRId64, i > 0 ? "," : "",
            g.stop_poll_latencies[i].count());
  }
  out += "],\"core_counts\":[";
  for (std::size_t i = 0; i < g.core_counts.size(); ++i) {
    appendf(out, "%s%zu", i > 0 ? "," : "", g.core_counts[i]);
  }
  out += "],\"quantizer_resolution_ns\":[";
  for (std::size_t i = 0; i < g.quantizer_resolutions.size(); ++i) {
    appendf(out, "%s%" PRId64, i > 0 ? "," : "",
            g.quantizer_resolutions[i].count());
  }
  out += "],\"deadline_min_factor\":";
  append_double(out, g.deadline_min_factor);
  out += ",\"deadline_max_factor\":";
  append_double(out, g.deadline_max_factor);
  appendf(out, ",\"min_period_ns\":%" PRId64 ",\"max_period_ns\":%" PRId64 "}",
          g.min_period.count(), g.max_period.count());
}

}  // namespace

std::string shard_json(const ShardResult& shard) {
  const SweepOptions& o = shard.options;
  std::string out;
  appendf(out, "{\n  \"format\": \"%.*s\",\n  \"version\": %" PRId64 ",\n",
          static_cast<int>(kShardFormatName.size()), kShardFormatName.data(),
          kShardFormatVersion);
  out += "  \"options\": {";
  appendf(out, "\"scenario_count\":%" PRIu64 ",\"base_seed\":\"",
          o.scenario_count);
  append_hex(out, o.base_seed);
  appendf(out,
          "\",\"workers\":%zu,\"horizon_periods\":%" PRId64
          ",\"allowance_granularity_ns\":%" PRId64 ",\"detector_policy\":"
          "\"%.*s\",\"partitioner\":\"%.*s\",\"core_fault_fraction\":",
          o.workers, o.horizon_periods, o.allowance_granularity.count(),
          static_cast<int>(to_string(o.detector_policy).size()),
          to_string(o.detector_policy).data(),
          static_cast<int>(to_string(o.partitioner).size()),
          to_string(o.partitioner).data());
  append_double(out, o.core_fault_fraction);
  out += ",\"grid\":";
  append_grid_json(out, o.grid);
  out += "},\n  \"shard\": ";
  appendf(out,
          "{\"index\":%" PRIu64 ",\"shards\":%" PRIu64 ",\"begin\":%" PRIu64
          ",\"end\":%" PRIu64 "},\n",
          shard.shard.index, shard.shard.shards, shard.shard.begin,
          shard.shard.end);
  out += "  \"totals\": ";
  append_aggregate_json(out, shard.totals);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < shard.cells.size(); ++c) {
    const CellSummary& cell = shard.cells[c];
    if (c > 0) out += ',';
    appendf(out, "\n    {\"cell\":%zu,\"tasks\":%zu,\"utilization\":", c,
            cell.task_count);
    append_double(out, cell.utilization);
    appendf(out,
            ",\"detector_cost_ns\":%" PRId64
            ",\"stop_poll_latency_ns\":%" PRId64 ",\"cores\":%zu"
            ",\"quantum_ns\":%" PRId64 ",\"aggregate\":",
            cell.detector_cost.count(), cell.stop_poll_latency.count(),
            cell.cores, cell.quantum.count());
    append_aggregate_json(out, cell.agg);
    out += '}';
  }
  out += "\n  ],\n  \"verdicts\": [";
  for (std::size_t i = 0; i < shard.verdicts.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    ";
    append_verdict_json(out, shard.verdicts[i]);
  }
  out += "\n  ],\n  \"fingerprint\": \"";
  append_hex(out, shard.fingerprint);
  out += "\",\n  \"elapsed_seconds\": ";
  append_double(out, shard.elapsed_seconds);
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Shard interchange: reader. A minimal recursive-descent JSON parser —
// just what the versioned shard format needs, with every failure mapped
// to a ShardError naming the defect (the repo deliberately has no JSON
// dependency).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Decoded characters for kString; the raw token for kNumber (kept
  /// textual so 64-bit integers and %.17g doubles convert losslessly
  /// via from_chars instead of detouring through double).
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject.
  std::vector<JsonValue> items;                            ///< kArray.

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  /// The shard format nests four levels deep; anything past this bound
  /// is not one of our documents (and must not overflow the C++ stack).
  static constexpr int kMaxDepth = 16;

  [[noreturn]] void fail(const std::string& why) const {
    throw ShardError("shard JSON parse error at offset " +
                     std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw ShardError("shard JSON parse error at offset " +
                       std::to_string(pos_) + ": unexpected end of document");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        switch (text_[pos_++]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default:
            // \uXXXX is valid JSON but the format never emits it.
            fail("unsupported string escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      out += c;
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("document nests too deeply");
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        v.items.push_back(parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_word("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_word("null")) return v;
    // Number token: validated on conversion, so the scan just collects.
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      const bool number_char = (d >= '0' && d <= '9') || d == '-' ||
                               d == '+' || d == '.' || d == 'e' || d == 'E';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    v.kind = JsonValue::Kind::kNumber;
    v.text.assign(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void field_error(const char* what, const std::string& why) {
  throw ShardError(std::string("shard JSON field '") + what + "': " + why);
}

const JsonValue& member(const JsonValue& obj, const char* key) {
  if (obj.kind != JsonValue::Kind::kObject) {
    field_error(key, "enclosing value is not an object");
  }
  const JsonValue* v = obj.find(key);
  if (v == nullptr) field_error(key, "missing");
  return *v;
}

std::uint64_t as_u64(const JsonValue& v, const char* what) {
  std::uint64_t out = 0;
  const char* b = v.text.data();
  const char* e = b + v.text.size();
  if (v.kind != JsonValue::Kind::kNumber) {
    field_error(what, "expected a number");
  }
  const auto [p, ec] = std::from_chars(b, e, out);
  if (ec != std::errc{} || p != e) {
    field_error(what, "expected an unsigned integer");
  }
  return out;
}

std::int64_t as_i64(const JsonValue& v, const char* what) {
  std::int64_t out = 0;
  const char* b = v.text.data();
  const char* e = b + v.text.size();
  if (v.kind != JsonValue::Kind::kNumber) {
    field_error(what, "expected a number");
  }
  const auto [p, ec] = std::from_chars(b, e, out);
  if (ec != std::errc{} || p != e) field_error(what, "expected an integer");
  return out;
}

double as_double(const JsonValue& v, const char* what) {
  double out = 0.0;
  const char* b = v.text.data();
  const char* e = b + v.text.size();
  if (v.kind != JsonValue::Kind::kNumber) {
    field_error(what, "expected a number");
  }
  const auto [p, ec] = std::from_chars(b, e, out);
  if (ec != std::errc{} || p != e) field_error(what, "expected a number");
  return out;
}

bool as_bool(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::kBool) field_error(what, "expected a bool");
  return v.boolean;
}

const std::string& as_string(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::kString) {
    field_error(what, "expected a string");
  }
  return v.text;
}

/// 64-bit values ride as hex strings (JSON numbers stop being exact at
/// 2^53); accepts what append_hex writes.
std::uint64_t as_hex_u64(const JsonValue& v, const char* what) {
  const std::string& s = as_string(v, what);
  std::uint64_t out = 0;
  const char* b = s.data();
  const char* e = b + s.size();
  const auto [p, ec] = std::from_chars(b, e, out, 16);
  if (ec != std::errc{} || p != e || s.empty() || s.size() > 16) {
    field_error(what, "expected a 64-bit hex string");
  }
  return out;
}

const std::vector<JsonValue>& as_array(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::kArray) field_error(what, "expected an array");
  return v.items;
}

SweepAggregate read_aggregate(const JsonValue& v) {
  SweepAggregate a;
  a.total = as_u64(member(v, "total"), "total");
  a.rta_schedulable = as_u64(member(v, "rta_schedulable"), "rta_schedulable");
  a.engine_clean = as_u64(member(v, "engine_clean"), "engine_clean");
  a.agreement_violations =
      as_u64(member(v, "agreement_violations"), "agreement_violations");
  a.allowance_feasible =
      as_u64(member(v, "allowance_feasible"), "allowance_feasible");
  a.allowance_honored =
      as_u64(member(v, "allowance_honored"), "allowance_honored");
  a.detector_clean = as_u64(member(v, "detector_clean"), "detector_clean");
  a.multicore = as_u64(member(v, "multicore"), "multicore");
  a.ff_placed = as_u64(member(v, "ff_placed"), "ff_placed");
  a.fa_placed = as_u64(member(v, "fa_placed"), "fa_placed");
  a.ff_failover_clean =
      as_u64(member(v, "ff_failover_clean"), "ff_failover_clean");
  a.fa_failover_clean =
      as_u64(member(v, "fa_failover_clean"), "fa_failover_clean");
  a.allowance_sum =
      Duration::ns(as_i64(member(v, "allowance_sum_ns"), "allowance_sum_ns"));
  return a;
}

bool aggregates_equal(const SweepAggregate& a, const SweepAggregate& b) {
  return a.total == b.total && a.rta_schedulable == b.rta_schedulable &&
         a.engine_clean == b.engine_clean &&
         a.agreement_violations == b.agreement_violations &&
         a.allowance_feasible == b.allowance_feasible &&
         a.allowance_honored == b.allowance_honored &&
         a.detector_clean == b.detector_clean &&
         a.multicore == b.multicore && a.ff_placed == b.ff_placed &&
         a.fa_placed == b.fa_placed &&
         a.ff_failover_clean == b.ff_failover_clean &&
         a.fa_failover_clean == b.fa_failover_clean &&
         a.allowance_sum == b.allowance_sum;
}

ScenarioVerdict read_verdict(const JsonValue& jv) {
  ScenarioVerdict v;
  v.index = as_u64(member(jv, "index"), "index");
  v.seed = as_hex_u64(member(jv, "seed"), "seed");
  v.cell = static_cast<std::size_t>(as_u64(member(jv, "cell"), "cell"));
  v.task_count =
      static_cast<std::size_t>(as_u64(member(jv, "tasks"), "tasks"));
  v.target_utilization =
      as_double(member(jv, "target_utilization"), "target_utilization");
  v.actual_utilization =
      as_double(member(jv, "actual_utilization"), "actual_utilization");
  v.detector_cost =
      Duration::ns(as_i64(member(jv, "detector_cost_ns"), "detector_cost_ns"));
  v.stop_poll_latency = Duration::ns(
      as_i64(member(jv, "stop_poll_latency_ns"), "stop_poll_latency_ns"));
  v.rta_schedulable = as_bool(member(jv, "rta_schedulable"), "rta_schedulable");
  v.engine_clean = as_bool(member(jv, "engine_clean"), "engine_clean");
  v.nominal_misses = as_i64(member(jv, "nominal_misses"), "nominal_misses");
  v.agreement = as_bool(member(jv, "agreement"), "agreement");
  v.allowance_feasible =
      as_bool(member(jv, "allowance_feasible"), "allowance_feasible");
  v.allowance =
      Duration::ns(as_i64(member(jv, "allowance_ns"), "allowance_ns"));
  v.allowance_honored =
      as_bool(member(jv, "allowance_honored"), "allowance_honored");
  v.detector_clean = as_bool(member(jv, "detector_clean"), "detector_clean");
  v.detector_faults = as_i64(member(jv, "detector_faults"), "detector_faults");
  v.cores = static_cast<std::size_t>(as_u64(member(jv, "cores"), "cores"));
  v.quantum = Duration::ns(as_i64(member(jv, "quantum_ns"), "quantum_ns"));
  v.ff_placement_feasible =
      as_bool(member(jv, "ff_placement_feasible"), "ff_placement_feasible");
  v.fa_placement_feasible =
      as_bool(member(jv, "fa_placement_feasible"), "fa_placement_feasible");
  v.ff_failover_clean =
      as_bool(member(jv, "ff_failover_clean"), "ff_failover_clean");
  v.fa_failover_clean =
      as_bool(member(jv, "fa_failover_clean"), "fa_failover_clean");
  v.ff_missed_tasks = as_i64(member(jv, "ff_missed_tasks"), "ff_missed_tasks");
  v.fa_missed_tasks = as_i64(member(jv, "fa_missed_tasks"), "fa_missed_tasks");
  v.ff_lost_jobs = as_i64(member(jv, "ff_lost_jobs"), "ff_lost_jobs");
  v.fa_lost_jobs = as_i64(member(jv, "fa_lost_jobs"), "fa_lost_jobs");
  return v;
}

}  // namespace

ShardResult load_shard_json(std::string_view json) {
  JsonParser parser(json);
  const JsonValue root = parser.parse_document();
  if (root.kind != JsonValue::Kind::kObject) {
    throw ShardError("shard document must be a JSON object");
  }
  if (as_string(member(root, "format"), "format") != kShardFormatName) {
    throw ShardError("not an rtft-shard document (format field differs)");
  }
  const std::int64_t version = as_i64(member(root, "version"), "version");
  if (version != kShardFormatVersion) {
    throw ShardError("unsupported rtft-shard version " +
                     std::to_string(version) + " (this build reads version " +
                     std::to_string(kShardFormatVersion) + ")");
  }

  ShardResult result;
  SweepOptions& o = result.options;
  const JsonValue& jo = member(root, "options");
  o.scenario_count = as_u64(member(jo, "scenario_count"), "scenario_count");
  o.base_seed = as_hex_u64(member(jo, "base_seed"), "base_seed");
  o.workers = static_cast<std::size_t>(as_u64(member(jo, "workers"),
                                              "workers"));
  o.horizon_periods = as_i64(member(jo, "horizon_periods"), "horizon_periods");
  o.allowance_granularity = Duration::ns(as_i64(
      member(jo, "allowance_granularity_ns"), "allowance_granularity_ns"));
  try {
    o.detector_policy = core::treatment_policy_from_string(
        as_string(member(jo, "detector_policy"), "detector_policy"));
  } catch (const ContractViolation&) {
    throw ShardError("unknown detector_policy name");
  }
  try {
    o.partitioner = partitioner_mode_from_string(
        as_string(member(jo, "partitioner"), "partitioner"));
  } catch (const ContractViolation&) {
    throw ShardError("unknown partitioner name");
  }
  o.core_fault_fraction =
      as_double(member(jo, "core_fault_fraction"), "core_fault_fraction");
  const JsonValue& jg = member(jo, "grid");
  SweepGrid& g = o.grid;
  g.task_counts.clear();
  for (const JsonValue& t : as_array(member(jg, "task_counts"),
                                     "task_counts")) {
    g.task_counts.push_back(static_cast<std::size_t>(as_u64(t,
                                                            "task_counts")));
  }
  g.utilizations.clear();
  for (const JsonValue& u : as_array(member(jg, "utilizations"),
                                     "utilizations")) {
    g.utilizations.push_back(as_double(u, "utilizations"));
  }
  g.detector_costs.clear();
  for (const JsonValue& c : as_array(member(jg, "detector_cost_ns"),
                                     "detector_cost_ns")) {
    g.detector_costs.push_back(Duration::ns(as_i64(c, "detector_cost_ns")));
  }
  g.stop_poll_latencies.clear();
  for (const JsonValue& l : as_array(member(jg, "stop_poll_latency_ns"),
                                     "stop_poll_latency_ns")) {
    g.stop_poll_latencies.push_back(
        Duration::ns(as_i64(l, "stop_poll_latency_ns")));
  }
  g.core_counts.clear();
  for (const JsonValue& m : as_array(member(jg, "core_counts"),
                                     "core_counts")) {
    g.core_counts.push_back(static_cast<std::size_t>(as_u64(m,
                                                            "core_counts")));
  }
  g.quantizer_resolutions.clear();
  for (const JsonValue& q : as_array(member(jg, "quantizer_resolution_ns"),
                                     "quantizer_resolution_ns")) {
    g.quantizer_resolutions.push_back(
        Duration::ns(as_i64(q, "quantizer_resolution_ns")));
  }
  g.deadline_min_factor =
      as_double(member(jg, "deadline_min_factor"), "deadline_min_factor");
  g.deadline_max_factor =
      as_double(member(jg, "deadline_max_factor"), "deadline_max_factor");
  g.min_period = Duration::ns(as_i64(member(jg, "min_period_ns"),
                                     "min_period_ns"));
  g.max_period = Duration::ns(as_i64(member(jg, "max_period_ns"),
                                     "max_period_ns"));
  // A merged report of loaded shards always carries its verdicts: they
  // are what the file transported.
  o.keep_verdicts = true;

  // The plan constructor is the one source of truth for option
  // validity; a file that fails it is not a usable shard.
  try {
    const SweepPlan plan(o);
    o = plan.options();
  } catch (const ContractViolation& e) {
    throw ShardError(std::string("invalid sweep options in shard file: ") +
                     e.what());
  }

  const JsonValue& js = member(root, "shard");
  result.shard.index = as_u64(member(js, "index"), "shard.index");
  result.shard.shards = as_u64(member(js, "shards"), "shard.shards");
  result.shard.begin = as_u64(member(js, "begin"), "shard.begin");
  result.shard.end = as_u64(member(js, "end"), "shard.end");
  if (result.shard.shards == 0 ||
      result.shard.index >= result.shard.shards) {
    throw ShardError("shard index/count are inconsistent");
  }
  if (result.shard.begin > result.shard.end ||
      result.shard.end > o.scenario_count) {
    throw ShardError("shard range does not lie within the sweep");
  }

  // Verdicts: the payload. Everything derivable is re-derived and
  // compared, so a shard that loads is internally consistent.
  const std::size_t cells = o.grid.cell_count();
  const auto& jverdicts = as_array(member(root, "verdicts"), "verdicts");
  if (jverdicts.size() != result.shard.count()) {
    throw ShardError("verdict count " + std::to_string(jverdicts.size()) +
                     " does not match the shard range [" +
                     std::to_string(result.shard.begin) + ", " +
                     std::to_string(result.shard.end) + ")");
  }
  result.verdicts.reserve(jverdicts.size());
  std::vector<SweepAggregate> cell_aggs(cells);
  Fingerprint fp;
  for (std::size_t i = 0; i < jverdicts.size(); ++i) {
    ScenarioVerdict v = read_verdict(jverdicts[i]);
    const std::uint64_t expect_index =
        result.shard.begin + static_cast<std::uint64_t>(i);
    if (v.index != expect_index) {
      throw ShardError("verdict " + std::to_string(i) +
                       " is out of index order");
    }
    if (v.seed != scenario_seed(o.base_seed, v.index)) {
      throw ShardError("verdict " + std::to_string(v.index) +
                       " carries a seed the sweep options do not derive");
    }
    if (v.cell != static_cast<std::size_t>(v.index % cells)) {
      throw ShardError("verdict " + std::to_string(v.index) +
                       " is assigned to the wrong grid cell");
    }
    // The one verdict field that is neither fingerprinted nor aggregate
    // -covered; re-derive it like seeds and cells or tampering would
    // slip into merged exports.
    if (v.target_utilization !=
        scenario_spec(o, v.index).tasks.total_utilization) {
      throw ShardError("verdict " + std::to_string(v.index) +
                       " carries a target utilization the grid does not "
                       "derive");
    }
    result.totals.add(v);
    cell_aggs[v.cell].add(v);
    fp.add(v);
    result.verdicts.push_back(std::move(v));
  }

  // Declared aggregates and fingerprint must equal the recomputation —
  // the tamper/bit-rot/version-skew check.
  if (!aggregates_equal(result.totals, read_aggregate(member(root,
                                                             "totals")))) {
    throw ShardError("totals do not match the verdicts (corrupt shard file)");
  }
  const auto& jcells = as_array(member(root, "cells"), "cells");
  if (jcells.size() != cells) {
    throw ShardError("cell count does not match the sweep grid");
  }
  result.cells.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    if (!aggregates_equal(cell_aggs[c],
                          read_aggregate(member(jcells[c], "aggregate")))) {
      throw ShardError("cell " + std::to_string(c) +
                       " aggregate does not match the verdicts");
    }
    result.cells[c].agg = cell_aggs[c];
  }
  detail::fill_cell_metadata(o, result.cells);
  result.fingerprint = fp.value();
  if (result.fingerprint !=
      as_hex_u64(member(root, "fingerprint"), "fingerprint")) {
    throw ShardError(
        "fingerprint does not match the verdicts (corrupt or tampered "
        "shard file)");
  }
  result.elapsed_seconds =
      as_double(member(root, "elapsed_seconds"), "elapsed_seconds");
  return result;
}

}  // namespace rtft::sweep
