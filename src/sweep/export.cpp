#include "sweep/export.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/assert.hpp"

namespace rtft::sweep {
namespace {

void appendf(std::string& out, const char* fmt, auto... args) {
  // Large enough for the widest verdict row (16 fields, several %.17g).
  char buf[1024];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  RTFT_ASSERT(n >= 0 && static_cast<std::size_t>(n) < sizeof(buf),
              "export row exceeds the format buffer");
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  appendf(out, "%016" PRIx64, v);
}

const char* b(bool v) { return v ? "1" : "0"; }

void append_aggregate_json(std::string& out, const SweepAggregate& a) {
  appendf(out,
          "{\"total\":%" PRIu64 ",\"rta_schedulable\":%" PRIu64
          ",\"engine_clean\":%" PRIu64 ",\"agreement_violations\":%" PRIu64
          ",\"allowance_feasible\":%" PRIu64 ",\"allowance_honored\":%" PRIu64
          ",\"detector_clean\":%" PRIu64 ",\"allowance_sum_ns\":%" PRId64
          ",\"mean_allowance_ms\":%.17g}",
          a.total, a.rta_schedulable, a.engine_clean, a.agreement_violations,
          a.allowance_feasible, a.allowance_honored, a.detector_clean,
          a.allowance_sum.count(), a.mean_allowance_ms());
}

}  // namespace

std::string verdicts_csv(const SweepReport& report) {
  std::string out =
      "index,seed,cell,tasks,target_utilization,actual_utilization,"
      "detector_cost_ns,rta_schedulable,engine_clean,nominal_misses,"
      "agreement,allowance_feasible,allowance_ns,allowance_honored,"
      "detector_clean,detector_faults\n";
  for (const ScenarioVerdict& v : report.verdicts) {
    appendf(out, "%" PRIu64 ",", v.index);
    append_hex(out, v.seed);
    appendf(out,
            ",%zu,%zu,%.17g,%.17g,%" PRId64 ",%s,%s,%" PRId64
            ",%s,%s,%" PRId64 ",%s,%s,%" PRId64 "\n",
            v.cell, v.task_count, v.target_utilization, v.actual_utilization,
            v.detector_cost.count(), b(v.rta_schedulable), b(v.engine_clean),
            v.nominal_misses, b(v.agreement), b(v.allowance_feasible),
            v.allowance.count(), b(v.allowance_honored), b(v.detector_clean),
            v.detector_faults);
  }
  return out;
}

std::string cells_csv(const SweepReport& report) {
  std::string out =
      "cell,tasks,utilization,detector_cost_ns,total,rta_schedulable,"
      "engine_clean,agreement_violations,allowance_feasible,"
      "allowance_honored,detector_clean,mean_allowance_ms\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    const SweepAggregate& a = cell.agg;
    appendf(out,
            "%zu,%zu,%.17g,%" PRId64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.17g\n",
            c, cell.task_count, cell.utilization, cell.detector_cost.count(),
            a.total, a.rta_schedulable, a.engine_clean,
            a.agreement_violations, a.allowance_feasible, a.allowance_honored,
            a.detector_clean, a.mean_allowance_ms());
  }
  return out;
}

std::string report_json(const SweepReport& report) {
  const SweepOptions& o = report.options;
  std::string out = "{\n  \"options\": ";
  appendf(out,
          "{\"scenario_count\":%" PRIu64 ",\"workers\":%zu,\"base_seed\":\"",
          o.scenario_count, o.workers);
  append_hex(out, o.base_seed);
  appendf(out,
          "\",\"horizon_periods\":%" PRId64
          ",\"allowance_granularity_ns\":%" PRId64
          ",\"keep_verdicts\":%s,\"full_traces\":%s},\n",
          o.horizon_periods, o.allowance_granularity.count(),
          o.keep_verdicts ? "true" : "false",
          o.full_traces ? "true" : "false");
  out += "  \"totals\": ";
  append_aggregate_json(out, report.totals);
  out += ",\n  \"cells\": [";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    if (c > 0) out += ',';
    appendf(out,
            "\n    {\"cell\":%zu,\"tasks\":%zu,\"utilization\":%.17g,"
            "\"detector_cost_ns\":%" PRId64 ",\"aggregate\":",
            c, cell.task_count, cell.utilization, cell.detector_cost.count());
    append_aggregate_json(out, cell.agg);
    out += '}';
  }
  out += "\n  ],\n  \"verdicts\": [";
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const ScenarioVerdict& v = report.verdicts[i];
    if (i > 0) out += ',';
    appendf(out, "\n    {\"index\":%" PRIu64 ",\"seed\":\"", v.index);
    append_hex(out, v.seed);
    appendf(out,
            "\",\"cell\":%zu,\"tasks\":%zu,\"actual_utilization\":%.17g,"
            "\"detector_cost_ns\":%" PRId64 ",\"rta_schedulable\":%s,"
            "\"engine_clean\":%s,\"nominal_misses\":%" PRId64
            ",\"agreement\":%s,\"allowance_feasible\":%s,"
            "\"allowance_ns\":%" PRId64 ",\"allowance_honored\":%s,"
            "\"detector_clean\":%s,\"detector_faults\":%" PRId64 "}",
            v.cell, v.task_count, v.actual_utilization,
            v.detector_cost.count(), v.rta_schedulable ? "true" : "false",
            v.engine_clean ? "true" : "false", v.nominal_misses,
            v.agreement ? "true" : "false",
            v.allowance_feasible ? "true" : "false", v.allowance.count(),
            v.allowance_honored ? "true" : "false",
            v.detector_clean ? "true" : "false", v.detector_faults);
  }
  out += "\n  ],\n  \"elapsed_seconds\": ";
  appendf(out, "%.17g", report.elapsed_seconds);
  out += ",\n  \"fingerprint\": \"";
  append_hex(out, report.fingerprint);
  out += "\"\n}\n";
  return out;
}

}  // namespace rtft::sweep
