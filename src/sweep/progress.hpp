// Worker progress protocol — the stderr stream a sweep worker emits
// under --progress, and the incremental parser a coordinator turns that
// stream back into counts with.
//
// A worker writing to a terminal prints the human one-line form
// ("123/1000 scenarios ( 12%)", '\r'-overwritten in place); a worker
// whose stderr is a pipe prints one machine line per update instead:
//
//   progress <done>/<total>\n
//
// Both carry the same two numbers, and parse_progress_token accepts
// both, so a coordinator never depends on how the worker detected its
// terminal. run_shard serializes on_progress invocations and guarantees
// `done` is strictly increasing (sweep.hpp), so a parsed stream is
// monotone per worker; a lower value after a higher one means a new
// worker attempt took over the range.
//
// ProgressParser is the pipe-side half: feed it byte chunks exactly as
// read(2) returns them — tokens split across reads, '\r' or '\n'
// delimited, interleaved with unrelated stderr noise — and it invokes a
// callback once per complete, well-formed update.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace rtft::sweep {

/// One progress observation: `done` of `total` scenarios finished in
/// the run (for a shard run, the shard).
struct ProgressUpdate {
  std::uint64_t done = 0;
  std::uint64_t total = 0;

  friend bool operator==(const ProgressUpdate&,
                         const ProgressUpdate&) = default;
};

/// The canonical machine form, newline-terminated:
/// "progress <done>/<total>\n".
[[nodiscard]] std::string progress_line(const ProgressUpdate& update);

/// Parses one delimiter-free token. Accepts the machine form (with or
/// without the trailing newline stripped) and the human terminal form
/// "<done>/<total> scenarios (NN%)". Returns false — leaving `out`
/// untouched — for anything else, including done > total or numbers
/// that overflow.
[[nodiscard]] bool parse_progress_token(std::string_view token,
                                        ProgressUpdate& out);

/// Incremental stream parser for one worker's stderr. feed() splits on
/// '\r' and '\n', buffers a trailing partial token across calls, skips
/// tokens that are not progress updates (a worker is free to mix other
/// diagnostics into stderr), and invokes the callback once per parsed
/// update, in stream order.
class ProgressParser {
 public:
  using Callback = std::function<void(const ProgressUpdate&)>;

  /// Consumes one chunk of stream bytes.
  void feed(std::string_view bytes, const Callback& on_update);
  /// Flushes the trailing unterminated token — call at EOF, where the
  /// final token may lack its delimiter.
  void finish(const Callback& on_update);

 private:
  std::string buffer_;  ///< trailing partial token from the last feed.
};

}  // namespace rtft::sweep
