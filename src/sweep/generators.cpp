#include "sweep/generators.hpp"

#include <string>
#include <utility>

#include "sched/priority.hpp"

namespace rtft::sweep {

sched::TaskSet make_random_task_set(Rng& rng, const RandomTaskSetSpec& spec) {
  const auto raw = random_task_set(rng, spec);
  sched::TaskSet ts;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    sched::TaskParams p;
    p.name = "t" + std::to_string(i);
    p.priority = 0;  // assigned below
    p.cost = raw[i].cost;
    p.period = raw[i].period;
    p.deadline = raw[i].deadline;
    p.offset = Duration::zero();
    ts.add(std::move(p));
  }
  return sched::with_deadline_monotonic_priorities(ts);
}

sched::TaskSet make_seeded_task_set(std::uint64_t seed,
                                    const RandomTaskSetSpec& spec) {
  Rng rng(seed);
  return make_random_task_set(rng, spec);
}

std::uint64_t scenario_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 finalizer over the combined inputs. The golden-ratio
  // increment keeps index 0 from passing base_seed through unmixed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rtft::sweep
