#include "sweep/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/assert.hpp"
#include "sweep/cli.hpp"
#include "sweep/export.hpp"

namespace rtft::sweep {

namespace {

[[noreturn]] void transport_failure(const char* what) {
  throw CoordinatorError(std::string(what) + " failed: " +
                         std::strerror(errno));
}

/// Reads a whole file; false on any I/O failure (the caller treats an
/// unreadable checkpoint exactly like an invalid one).
bool read_whole_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  return !failed;
}

/// waitpid(2) restarted across EINTR. A benign signal (SIGCHLD from a
/// sibling, a profiler's SIGPROF, a debugger detach) delivered while the
/// coordinator blocks in waitpid must not abandon the reap: the child
/// would linger as a zombie and its exit status would be lost, turning
/// an innocuous interruption into a phantom worker failure.
int reap(int pid, int* status) {
  for (;;) {
    const int rc = ::waitpid(pid, status, 0);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

std::string describe_exit(int exit_code) {
  if (exit_code == 0) return "exit 0";
  if (exit_code < 0) return "signal " + std::to_string(-exit_code);
  return "exit " + std::to_string(exit_code);
}

}  // namespace

// ---------------------------------------------------------------------------
// ProcessTransport: local child processes over fork/exec + poll(2).
// ---------------------------------------------------------------------------

ProcessTransport::ProcessTransport()
    : epoch_(std::chrono::steady_clock::now()) {}

ProcessTransport::~ProcessTransport() {
  for (Child& child : children_) {
    ::kill(child.pid, SIGKILL);
    int status = 0;
    reap(child.pid, &status);
    ::close(child.stderr_fd);
  }
}

std::uint64_t ProcessTransport::spawn(const std::vector<std::string>& argv) {
  RTFT_EXPECTS(!argv.empty(), "spawn needs at least the binary path");
  int fds[2];
  if (::pipe(fds) != 0) transport_failure("pipe()");
  // Both ends close-on-exec: the read end must not leak into this or
  // any sibling worker; the write end survives into the child only as
  // the dup2 copy on fd 2.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);

  const int pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    transport_failure("fork()");
  }
  if (pid == 0) {
    // Child: stderr onto the pipe, stdout discarded (workers print
    // their human summary there; the coordinator speaks for the run).
    ::dup2(fds[1], STDERR_FILENO);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDOUT_FILENO);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    std::_Exit(127);  // exec failed; surfaces as a nonzero kExit.
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.id = next_id_++;
  child.pid = pid;
  child.stderr_fd = fds[0];
  children_.push_back(std::move(child));
  return children_.back().id;
}

bool ProcessTransport::drain(Child& child) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(child.stderr_fd, buf, sizeof(buf));
    if (n > 0) {
      child.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                        [&](const ProgressUpdate& update) {
                          WorkerEvent ev;
                          ev.kind = WorkerEvent::Kind::kProgress;
                          ev.worker = child.id;
                          ev.progress = update;
                          ready_.push_back(ev);
                        });
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      // Treat a read error like EOF: fall through and reap.
    }
    // EOF: the worker closed stderr — it is exiting. Reap it (blocking;
    // the window between closing stderr and process exit is tiny).
    child.parser.finish([&](const ProgressUpdate& update) {
      WorkerEvent ev;
      ev.kind = WorkerEvent::Kind::kProgress;
      ev.worker = child.id;
      ev.progress = update;
      ready_.push_back(ev);
    });
    int status = 0;
    reap(child.pid, &status);
    WorkerEvent ev;
    ev.kind = WorkerEvent::Kind::kExit;
    ev.worker = child.id;
    if (WIFEXITED(status)) {
      ev.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      ev.exit_code = -WTERMSIG(status);
    } else {
      ev.exit_code = 126;  // neither exited nor signaled: report failure.
    }
    ready_.push_back(ev);
    ::close(child.stderr_fd);
    return true;
  }
}

std::optional<WorkerEvent> ProcessTransport::poll(Duration timeout) {
  const Duration deadline = now() + timeout;
  for (;;) {
    if (!ready_.empty()) {
      const WorkerEvent ev = ready_.front();
      ready_.pop_front();
      return ev;
    }
    if (children_.empty()) return std::nullopt;
    const Duration remaining = deadline - now();
    if (remaining.is_negative()) return std::nullopt;
    std::vector<pollfd> pfds;
    pfds.reserve(children_.size());
    for (const Child& child : children_) {
      pfds.push_back({child.stderr_fd, POLLIN, 0});
    }
    // Round the wait up to a whole millisecond so a sub-ms remainder
    // cannot busy-spin.
    const int wait_ms = static_cast<int>(
        std::min<std::int64_t>((remaining.count() + 999'999) / 1'000'000,
                               60'000));
    const int rc = ::poll(pfds.data(), pfds.size(), wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      transport_failure("poll()");
    }
    if (rc == 0) return std::nullopt;
    // Drain readable children; reaped ones leave the vector.
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::uint64_t id = children_[i].id;
      if (drain(children_[i])) {
        children_.erase(
            std::find_if(children_.begin(), children_.end(),
                         [id](const Child& c) { return c.id == id; }));
        // Indices shifted; deliver what we have and re-poll for the rest.
        break;
      }
    }
  }
}

void ProcessTransport::kill_worker(std::uint64_t worker) {
  for (const Child& child : children_) {
    if (child.id == worker) {
      ::kill(child.pid, SIGKILL);
      return;
    }
  }
}

Duration ProcessTransport::now() {
  return Duration::ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count());
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

Coordinator::Coordinator(const SweepOptions& sweep, CoordinatorOptions options,
                         ExecTransport& transport)
    : plan_(sweep), opts_(std::move(options)), transport_(transport) {
  RTFT_EXPECTS(!opts_.runner.empty(), "coordinator needs a runner binary");
  RTFT_EXPECTS(!opts_.output_dir.empty(),
               "coordinator needs an output directory");
  RTFT_EXPECTS(opts_.max_procs > 0,
               "coordinator needs at least one worker slot");
  RTFT_EXPECTS(opts_.retry_budget >= 0, "retry budget must be >= 0");
  RTFT_EXPECTS(opts_.poll_interval.is_positive(),
               "poll interval must be positive");
  if (opts_.shards == 0) {
    opts_.shards = 4 * static_cast<std::uint64_t>(opts_.max_procs);
  }
  // Fail on the constructing thread if the sweep cannot travel through
  // the runner CLI (non-default granularity, sub-us grid durations...):
  // better than every worker computing a foreign sweep.
  (void)cli::worker_argv(opts_.runner, plan_.options(),
                         plan_.shard(0, opts_.shards), "validate");

  tasks_.resize(opts_.shards);
  for (std::uint64_t i = 0; i < opts_.shards; ++i) {
    tasks_[i].spec = plan_.shard(i, opts_.shards);
    tasks_[i].path = opts_.output_dir + "/shard-" + std::to_string(i) +
                     ".json";
  }
  stats_.shards = opts_.shards;
}

void Coordinator::log(const std::string& line) {
  if (opts_.on_log) opts_.on_log(line);
}

void Coordinator::emit_progress() {
  if (!opts_.on_progress) return;
  std::uint64_t done = done_scenarios_;
  for (const ShardTask& t : tasks_) {
    if (t.state == State::kRunning) done += t.live_done;
  }
  opts_.on_progress(done, plan_.scenario_count());
}

bool Coordinator::adopt_shard_file(ShardTask& task, bool resumed) {
  std::string content;
  if (!read_whole_file(task.path, content)) return false;
  try {
    ShardResult loaded = load_shard_json(content);
    if (!detail::same_scenario_identity(plan_.options(), loaded.options) ||
        loaded.shard.begin != task.spec.begin ||
        loaded.shard.end != task.spec.end) {
      throw ShardError(
          "the file belongs to a different sweep or a different "
          "partition of it");
    }
    merger_.add(std::move(loaded));
    task.state = State::kDone;
    done_scenarios_ += task.spec.count();
    if (resumed) ++stats_.resumed;
    return true;
  } catch (const ShardError& e) {
    ++stats_.invalid_files;
    log("shard " + std::to_string(task.spec.index) + ": invalid shard file '" +
        task.path + "': " + e.what());
    std::remove(task.path.c_str());
    return false;
  }
}

void Coordinator::launch(ShardTask& task) {
  // A stale partial file from a crashed attempt must not be mistaken
  // for this attempt's output.
  std::remove(task.path.c_str());
  ++task.attempts;
  ++stats_.launched;
  task.live_done = 0;
  task.kill_sent = false;
  task.worker = transport_.spawn(
      cli::worker_argv(opts_.runner, plan_.options(), task.spec, task.path));
  task.started = transport_.now();
  task.state = State::kRunning;
  log("shard " + std::to_string(task.spec.index) + " [" +
      std::to_string(task.spec.begin) + ", " + std::to_string(task.spec.end) +
      "): launched attempt " + std::to_string(task.attempts) + " as worker " +
      std::to_string(task.worker));
}

void Coordinator::handle_exit(ShardTask& task, int exit_code) {
  const Duration elapsed = transport_.now() - task.started;
  task.state = State::kPending;  // until the file proves otherwise.
  // The shard file is the sole proof of completion: a clean exit with a
  // bad file is a failure, and a killed worker that finished its write
  // first still counts (exactly what checkpoint resume adopts anyway).
  if (adopt_shard_file(task, /*resumed=*/false)) {
    completed_elapsed_.push_back(elapsed);
    log("shard " + std::to_string(task.spec.index) + ": completed (" +
        describe_exit(exit_code) + ", " + to_string(elapsed) + ")");
    emit_progress();
    return;
  }
  log("shard " + std::to_string(task.spec.index) + ": attempt " +
      std::to_string(task.attempts) + " failed (" + describe_exit(exit_code) +
      ") without a valid shard file");
  if (task.attempts >= 1 + opts_.retry_budget) {
    throw CoordinatorError(
        "shard " + std::to_string(task.spec.index) + " failed " +
        std::to_string(task.attempts) + " attempt(s) (retry budget " +
        std::to_string(opts_.retry_budget) + " exhausted); last worker " +
        describe_exit(exit_code));
  }
  ++stats_.reissued;
  log("shard " + std::to_string(task.spec.index) + ": re-issuing (attempt " +
      std::to_string(task.attempts + 1) + " of " +
      std::to_string(1 + opts_.retry_budget) + ")");
  emit_progress();  // the lost attempt's live progress is gone.
}

std::optional<Duration> Coordinator::straggler_timeout() const {
  if (opts_.straggler_factor <= 0.0 || completed_elapsed_.size() < 3) {
    return std::nullopt;
  }
  std::vector<Duration> sorted = completed_elapsed_;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const Duration median = sorted[sorted.size() / 2];
  const Duration scaled = Duration::ns(static_cast<std::int64_t>(
      static_cast<double>(median.count()) * opts_.straggler_factor));
  return std::max(scaled, opts_.min_straggler_timeout);
}

void Coordinator::check_stragglers() {
  const std::optional<Duration> timeout = straggler_timeout();
  if (!timeout) return;
  const Duration t_now = transport_.now();
  for (ShardTask& task : tasks_) {
    if (task.state != State::kRunning || task.kill_sent) continue;
    // Only kill what the budget can still re-issue: past the budget a
    // slow worker is the only hope left, so let it run.
    if (task.attempts >= 1 + opts_.retry_budget) continue;
    const Duration age = t_now - task.started;
    if (age <= *timeout) continue;
    task.kill_sent = true;
    ++stats_.straggler_kills;
    log("shard " + std::to_string(task.spec.index) + ": straggler (" +
        to_string(age) + " > timeout " + to_string(*timeout) +
        "), killing worker " + std::to_string(task.worker) +
        " for re-issue");
    transport_.kill_worker(task.worker);
  }
}

Coordinator::ShardTask* Coordinator::task_of_worker(std::uint64_t worker) {
  for (ShardTask& task : tasks_) {
    if (task.state == State::kRunning && task.worker == worker) return &task;
  }
  return nullptr;
}

CoordinatorResult Coordinator::run() {
  std::error_code ec;
  std::filesystem::create_directories(opts_.output_dir, ec);
  if (ec) {
    throw CoordinatorError("cannot create output directory '" +
                           opts_.output_dir + "': " + ec.message());
  }

  // Checkpoint resume: adopt every valid shard file, compute empty
  // shards in-process (a partition wider than the scenario count leaves
  // trailing empty ranges; no worker needed for zero scenarios).
  for (ShardTask& task : tasks_) {
    if (task.spec.count() == 0) {
      ShardResult empty = run_shard(task.spec, plan_.options());
      // Match what every loaded file carries (load_shard_json forces
      // keep_verdicts on), so the merged report's options cannot depend
      // on whether an empty shard happened to fold first.
      empty.options.keep_verdicts = true;
      merger_.add(std::move(empty));
      task.state = State::kDone;
      continue;
    }
    if (std::filesystem::exists(task.path)) {
      (void)adopt_shard_file(task, /*resumed=*/true);
    }
  }
  log("resumed " + std::to_string(stats_.resumed) + " of " +
      std::to_string(stats_.shards) + " shard(s) from checkpoint files in '" +
      opts_.output_dir + "'");
  emit_progress();

  for (;;) {
    // Keep every slot busy with pending work.
    std::size_t running = 0;
    for (const ShardTask& task : tasks_) {
      if (task.state == State::kRunning) ++running;
    }
    for (ShardTask& task : tasks_) {
      if (running >= opts_.max_procs) break;
      if (task.state != State::kPending) continue;
      launch(task);
      ++running;
    }
    if (running == 0) break;  // nothing running, nothing pending: done.

    if (const std::optional<WorkerEvent> ev =
            transport_.poll(opts_.poll_interval)) {
      ShardTask* task = task_of_worker(ev->worker);
      if (task != nullptr) {
        if (ev->kind == WorkerEvent::Kind::kProgress) {
          task->live_done = ev->progress.done;
          emit_progress();
        } else {
          handle_exit(*task, ev->exit_code);
        }
      }
      // Events from unknown workers (an attempt already written off)
      // are dropped.
    }
    check_stragglers();
  }

  for (const ShardTask& task : tasks_) {
    RTFT_ASSERT(task.state == State::kDone,
                "coordinator loop exited with unfinished shards");
  }
  CoordinatorResult out;
  out.report = merger_.finish();
  out.stats = stats_;
  return out;
}

}  // namespace rtft::sweep
