#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "core/detector.hpp"
#include "runtime/engine.hpp"
#include "runtime/quantize.hpp"
#include "sched/allowance.hpp"
#include "sched/feasibility.hpp"
#include "sched/priority.hpp"

namespace rtft::sweep {
namespace {

// ---------------------------------------------------------------------------
// Deterministic fingerprinting (FNV-1a 64).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// ---------------------------------------------------------------------------
// Per-scenario execution.
// ---------------------------------------------------------------------------

Duration max_period(const sched::TaskSet& ts) {
  Duration m = Duration::zero();
  for (const auto& t : ts) m = std::max(m, t.period);
  return m;
}

}  // namespace

void Fingerprint::add(const ScenarioVerdict& v) {
  std::uint64_t& h = h_;
  fnv_mix(h, v.index);
  fnv_mix(h, v.seed);
  fnv_mix(h, v.cell);
  fnv_mix(h, v.task_count);
  fnv_mix(h, bits_of(v.actual_utilization));
  fnv_mix(h, static_cast<std::uint64_t>(v.detector_cost.count()));
  const std::uint64_t flags =
      (v.rta_schedulable ? 1u : 0u) | (v.engine_clean ? 2u : 0u) |
      (v.agreement ? 4u : 0u) | (v.allowance_feasible ? 8u : 0u) |
      (v.allowance_honored ? 16u : 0u) | (v.detector_clean ? 32u : 0u);
  fnv_mix(h, flags);
  fnv_mix(h, static_cast<std::uint64_t>(v.nominal_misses));
  fnv_mix(h, static_cast<std::uint64_t>(v.allowance.count()));
  fnv_mix(h, static_cast<std::uint64_t>(v.detector_faults));
  // The stop-poll-latency axis postdates the pinned default-grid
  // fingerprint (3de9f44828016e12); mixing its zero default would
  // silently re-fingerprint every historical sweep, so only non-default
  // values contribute.
  if (!v.stop_poll_latency.is_zero()) {
    fnv_mix(h, static_cast<std::uint64_t>(v.stop_poll_latency.count()));
  }
  // Same rule for the quantizer and multicore axes (they postdate both
  // pins, 3de9f44828016e12 and 29f191207d7f83cd): the defaults — 1 ms
  // resolution, one core — contribute nothing.
  if (v.quantum != Duration::ms(1)) {
    fnv_mix(h, static_cast<std::uint64_t>(v.quantum.count()));
  }
  if (v.cores > 1) {
    fnv_mix(h, v.cores);
    const std::uint64_t mc_flags = (v.ff_placement_feasible ? 1u : 0u) |
                                   (v.fa_placement_feasible ? 2u : 0u) |
                                   (v.ff_failover_clean ? 4u : 0u) |
                                   (v.fa_failover_clean ? 8u : 0u);
    fnv_mix(h, mc_flags);
    fnv_mix(h, static_cast<std::uint64_t>(v.ff_missed_tasks));
    fnv_mix(h, static_cast<std::uint64_t>(v.fa_missed_tasks));
    fnv_mix(h, static_cast<std::uint64_t>(v.ff_lost_jobs));
    fnv_mix(h, static_cast<std::uint64_t>(v.fa_lost_jobs));
  }
}

std::string_view to_string(PartitionerMode mode) {
  switch (mode) {
    case PartitionerMode::kBoth: return "both";
    case PartitionerMode::kFirstFit: return "first-fit";
    case PartitionerMode::kFaultAware: return "fault-aware";
  }
  RTFT_ASSERT(false, "unknown partitioner mode");
  return "both";
}

PartitionerMode partitioner_mode_from_string(std::string_view name) {
  if (name == "both") return PartitionerMode::kBoth;
  if (name == "first-fit") return PartitionerMode::kFirstFit;
  if (name == "fault-aware") return PartitionerMode::kFaultAware;
  RTFT_EXPECTS(false, "unknown partitioner mode name");
  return PartitionerMode::kBoth;
}

// ---------------------------------------------------------------------------
// Aggregates.
// ---------------------------------------------------------------------------

void SweepAggregate::add(const ScenarioVerdict& v) {
  ++total;
  if (v.rta_schedulable) ++rta_schedulable;
  if (v.engine_clean) ++engine_clean;
  if (!v.agreement) ++agreement_violations;
  if (v.allowance_feasible) {
    ++allowance_feasible;
    allowance_sum += v.allowance;
    if (v.allowance_honored) ++allowance_honored;
  }
  if (v.detector_clean) ++detector_clean;
  if (v.cores > 1) {
    ++multicore;
    if (v.ff_placement_feasible) ++ff_placed;
    if (v.fa_placement_feasible) ++fa_placed;
    if (v.ff_failover_clean) ++ff_failover_clean;
    if (v.fa_failover_clean) ++fa_failover_clean;
  }
}

void SweepAggregate::merge(const SweepAggregate& other) {
  total += other.total;
  rta_schedulable += other.rta_schedulable;
  engine_clean += other.engine_clean;
  agreement_violations += other.agreement_violations;
  allowance_feasible += other.allowance_feasible;
  allowance_honored += other.allowance_honored;
  detector_clean += other.detector_clean;
  allowance_sum += other.allowance_sum;
  multicore += other.multicore;
  ff_placed += other.ff_placed;
  fa_placed += other.fa_placed;
  ff_failover_clean += other.ff_failover_clean;
  fa_failover_clean += other.fa_failover_clean;
}

double SweepAggregate::mean_allowance_ms() const {
  if (allowance_feasible == 0) return 0.0;
  return allowance_sum.to_ms() / static_cast<double>(allowance_feasible);
}

// ---------------------------------------------------------------------------
// Grid plumbing.
// ---------------------------------------------------------------------------

ScenarioSpec scenario_spec(const SweepOptions& opts, std::uint64_t index) {
  const SweepGrid& g = opts.grid;
  RTFT_EXPECTS(g.cell_count() > 0, "sweep grid must have at least one cell");
  const std::size_t cells = g.cell_count();
  const std::size_t cell = static_cast<std::size_t>(index % cells);

  // Flat cell -> (task_count, utilization, detector_cost, stop
  // latency, cores, quantum); the quantizer resolution varies fastest,
  // then cores, then stop latency, ..., task count slowest. With the
  // default single-value core and quantum axes the mapping is
  // identical to the historical grids (three-axis and four-axis).
  const std::size_t q_n = g.quantizer_resolutions.size();
  const std::size_t m_n = g.core_counts.size();
  const std::size_t s_n = g.stop_poll_latencies.size();
  const std::size_t d_n = g.detector_costs.size();
  const std::size_t u_n = g.utilizations.size();
  const std::size_t q_i = cell % q_n;
  const std::size_t m_i = (cell / q_n) % m_n;
  const std::size_t s_i = (cell / (q_n * m_n)) % s_n;
  const std::size_t d_i = (cell / (q_n * m_n * s_n)) % d_n;
  const std::size_t u_i = (cell / (q_n * m_n * s_n * d_n)) % u_n;
  const std::size_t t_i = cell / (q_n * m_n * s_n * d_n * u_n);

  ScenarioSpec spec;
  spec.index = index;
  spec.seed = scenario_seed(opts.base_seed, index);
  spec.cell = cell;
  spec.tasks.tasks = g.task_counts[t_i];
  spec.tasks.total_utilization = g.utilizations[u_i];
  spec.tasks.min_period = g.min_period;
  spec.tasks.max_period = g.max_period;
  spec.tasks.deadline_min_factor = g.deadline_min_factor;
  spec.tasks.deadline_max_factor = g.deadline_max_factor;
  spec.detector_cost = g.detector_costs[d_i];
  spec.stop_poll_latency = g.stop_poll_latencies[s_i];
  spec.cores = g.core_counts[m_i];
  spec.quantum = g.quantizer_resolutions[q_i];
  return spec;
}

namespace detail {

void fill_cell_metadata(const SweepOptions& opts,
                        std::vector<CellSummary>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const ScenarioSpec spec = scenario_spec(opts, c);
    cells[c].task_count = spec.tasks.tasks;
    cells[c].utilization = spec.tasks.total_utilization;
    cells[c].detector_cost = spec.detector_cost;
    cells[c].stop_poll_latency = spec.stop_poll_latency;
    cells[c].cores = spec.cores;
    cells[c].quantum = spec.quantum;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// One scenario.
// ---------------------------------------------------------------------------

namespace {

rt::EngineOptions placeholder_engine_options() {
  rt::EngineOptions eopts;
  eopts.horizon = Instant::from_ns(1);  // re-armed before every run.
  return eopts;
}

}  // namespace

ScenarioRunner::ScenarioRunner(const SweepOptions& opts)
    : opts_(opts),
      engine_(placeholder_engine_options()),
      full_(opts.full_traces ? (std::size_t{1} << 16) : 0) {
  // Pre-size the engine from the grid so even the worker's first run
  // allocates nothing mid-simulation. The busiest draw the grid can
  // produce releases tasks x ceil(horizon / min period) jobs — that
  // bound sizes the per-task outcome logs (Engine::add_task reserves
  // them from the actual horizon and period). The event queue only ever
  // holds *outstanding* events — one release and at most one completion
  // and one deadline check per task, plus stop/overhead slack — so its
  // hint is a small multiple of the largest swept task count.
  std::size_t max_tasks = 0;
  for (const std::size_t n : opts.grid.task_counts) {
    max_tasks = std::max(max_tasks, n);
  }
  engine_.reserve(max_tasks, 4 * max_tasks + 16);
  handles_.reserve(max_tasks);
  // Multicore cells reuse a pooled fleet the same way; a historical
  // single-core grid never pays for it.
  std::size_t max_cores = 1;
  for (const std::size_t m : opts.grid.core_counts) {
    max_cores = std::max(max_cores, m);
  }
  if (max_cores > 1) {
    fleet_.reserve(max_cores, max_tasks, 4 * max_tasks + 16);
  }
}

void ScenarioRunner::arm(const sched::TaskSet& ts, Duration horizon,
                         std::optional<sched::TaskId> faulty,
                         Duration extra) {
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + horizon;
  eopts.stop_poll_latency = stop_poll_latency_;
  eopts.event_queue = opts_.event_queue;
  if (opts_.full_traces) {
    full_.clear();
    eopts.sink = &full_;
  } else {
    counting_.reset();
    if (opts_.sink_dispatch == SinkDispatch::kStatic) {
      // The zero-virtual path: events fold into an engine-local bank
      // and flush into counting_ when each run returns — which is
      // before total_misses() reads it, so verdicts see whole runs.
      eopts.sink_mode = trace::SinkMode::kStaticCounting;
      eopts.counting_sink = &counting_;
    } else {
      eopts.sink = &counting_;  // per-event virtual oracle.
    }
  }
  engine_.reset(eopts);
  handles_.clear();
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    rt::CostSpec cost;  // nominal
    if (faulty && *faulty == id) {
      if (opts_.cost_spec == CostSpecMode::kFlat) {
        cost = rt::CostSpec::fixed_overrun(0, extra);
      } else {
        const Duration nominal = ts[id].cost;  // closure oracle.
        cost = rt::CostModel([nominal, extra](std::int64_t job) {
          return job == 0 ? nominal + extra : nominal;
        });
      }
    }
    handles_.push_back(engine_.add_task(ts[id], std::move(cost)));
  }
}

std::int64_t ScenarioRunner::total_misses() const {
  // In the default mode the CountingSink *is* the verdict source — the
  // per-task counters it maintains are exactly what a verdict needs (the
  // sink-equivalence tests pin them to the engine's statistics). With
  // full traces the Recorder keeps raw events instead, so fall back to
  // the engine's counters.
  if (!opts_.full_traces) {
    return counting_.total(trace::EventKind::kDeadlineMiss);
  }
  std::int64_t misses = 0;
  for (const rt::TaskHandle h : handles_) misses += engine_.stats(h).missed;
  return misses;
}

ScenarioVerdict ScenarioRunner::run(const ScenarioSpec& spec) {
  const sched::TaskSet ts = make_seeded_task_set(spec.seed, spec.tasks);
  const Duration horizon = max_period(ts) * opts_.horizon_periods;
  stop_poll_latency_ = spec.stop_poll_latency;

  ScenarioVerdict v;
  v.index = spec.index;
  v.seed = spec.seed;
  v.cell = spec.cell;
  v.task_count = ts.size();
  v.target_utilization = spec.tasks.total_utilization;
  v.actual_utilization = ts.utilization();
  v.detector_cost = spec.detector_cost;
  v.stop_poll_latency = spec.stop_poll_latency;
  v.cores = spec.cores;
  v.quantum = spec.quantum;

  // 1. Analysis.
  v.rta_schedulable = sched::is_feasible(ts);

  // 2. Nominal engine run (synchronous release; the engine must agree
  //    with a schedulable verdict — RTA is a sound worst case).
  arm(ts, horizon);
  engine_.run();
  v.nominal_misses = total_misses();
  v.engine_clean = v.nominal_misses == 0;
  v.agreement = !v.rta_schedulable || v.engine_clean;

  // 3. Equitable allowance, then a faulty run overrunning by exactly A.
  sched::AllowanceOptions aopts;
  aopts.granularity = opts_.allowance_granularity;
  const sched::EquitableAllowance ea = sched::equitable_allowance(ts, aopts);
  v.allowance_feasible = ea.feasible_at_zero;
  if (ea.feasible_at_zero) {
    v.allowance = ea.allowance;
    const sched::TaskId top = ts.by_priority_desc().front();
    arm(ts, horizon, top, ea.allowance);
    engine_.run();
    v.allowance_honored = total_misses() == 0;
  }

  // 4. Detector-loaded run: detectors armed (exact thresholds, per-fire
  //    CPU cost) on top of the nominal workload. An infeasible set still
  //    runs, but with a detection-less plan (thresholds would be
  //    meaningless) — the same degradation FaultTolerantSystem applies.
  //    A *stopping* policy is exercised end-to-end instead: the
  //    top-priority task overruns job 0 far past its stop threshold, so
  //    its detector fires, the stop is requested, and the swept
  //    stop-poll latency (§4.1) decides how long the hog burns CPU
  //    before dying — visible in how many lower-priority detectors fire
  //    in the meantime. Non-stopping policies keep the nominal run (and
  //    the historical default-grid fingerprint) unchanged.
  core::TreatmentPlan plan = core::make_treatment_plan_or_degrade(
      ts, opts_.detector_policy, v.rta_schedulable, aopts);
  if (plan.detects && plan.stops) {
    arm(ts, horizon, ts.by_priority_desc().front(), max_period(ts));
  } else {
    arm(ts, horizon);
  }
  std::optional<core::DetectorBank> bank;
  if (plan.detects) {
    core::DetectorConfig dcfg;
    // The default 1 ms resolution keeps the historical exact-threshold
    // behaviour (kNone ignores the resolution); a swept non-default
    // resolution arms the paper's round-to-nearest jRate grid (§6.2).
    dcfg.quantizer =
        spec.quantum == Duration::ms(1)
            ? rt::Quantizer{Duration::ms(1), rt::Rounding::kNone}
            : rt::Quantizer{spec.quantum, rt::Rounding::kNearest};
    dcfg.fire_cost = spec.detector_cost;
    core::DetectorBank::FaultHandler handler;
    if (plan.stops) {
      handler = [](rt::Engine& e, rt::TaskHandle task, std::int64_t) {
        e.request_stop(task, rt::StopMode::kTask);
      };
    }
    bank.emplace(engine_, handles_, std::move(plan.thresholds), dcfg,
                 std::move(handler));
  }
  engine_.run();
  v.detector_clean = total_misses() == 0;
  v.detector_faults = bank ? bank->total_faults() : 0;

  // 5. Multicore stage: partitioned placement plus mid-run core
  //    fail-over (ROADMAP 4(b)). Only cells that sweep cores > 1 pay
  //    for it; single-core cells keep the historical verdict exactly.
  if (spec.cores > 1) run_multicore(spec, ts, horizon, v);
  return v;
}

void ScenarioRunner::run_multicore(const ScenarioSpec& spec,
                                   const sched::TaskSet& ts,
                                   Duration horizon, ScenarioVerdict& v) {
  // Engine statistics are the only verdict source here, so the stage
  // runs sink-free (kStaticNull) whatever the sweep's dispatch mode —
  // the sink/cost-mode fingerprint equivalence holds by construction.
  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + horizon;
  eopts.event_queue = opts_.event_queue;
  eopts.sink_mode = trace::SinkMode::kStaticNull;

  // Deterministic fault date: a fixed fraction of the horizon. The
  // double product is exact IEEE arithmetic on integral inputs, so
  // every platform computes the same instant.
  const Duration fault_after = Duration::ns(static_cast<std::int64_t>(
      opts_.core_fault_fraction * static_cast<double>(horizon.count())));

  const auto run_one = [&](const multicore::Partitioner& strategy,
                           bool& placed, bool& clean,
                           std::int64_t& missed_tasks,
                           std::int64_t& lost_jobs) {
    const multicore::Placement placement = strategy.place(ts, spec.cores);
    placed = placement.feasible;
    if (!placement.feasible) return;
    fleet_.reset(spec.cores, eopts);
    fleet_.add_placed(ts, placement);
    multicore::CoreFaultPlan fault;
    if (fault_after.is_positive() &&
        fault_after < horizon) {  // 0 and >= horizon disable the fault.
      // Kill the busiest core: highest primary utilization, ties to
      // the lowest index — the worst single failure the placement can
      // suffer under the single-fault hypothesis.
      const std::vector<double> load =
          multicore::primary_utilization(ts, placement, spec.cores);
      std::size_t victim = 0;
      for (std::size_t c = 1; c < load.size(); ++c) {
        if (load[c] > load[victim]) victim = c;
      }
      fault.core = victim;
      fault.at = Instant::epoch() + fault_after;
    }
    const multicore::MultiRunReport report = fleet_.run_with_fault(fault);
    clean = report.failover_clean;
    missed_tasks = report.missed_tasks;
    lost_jobs = report.total_lost_jobs;
  };

  if (opts_.partitioner != PartitionerMode::kFaultAware) {
    run_one(first_fit_, v.ff_placement_feasible, v.ff_failover_clean,
            v.ff_missed_tasks, v.ff_lost_jobs);
  }
  if (opts_.partitioner != PartitionerMode::kFirstFit) {
    run_one(fault_aware_, v.fa_placement_feasible, v.fa_failover_clean,
            v.fa_missed_tasks, v.fa_lost_jobs);
  }
}

ScenarioVerdict run_scenario(const ScenarioSpec& spec,
                             const SweepOptions& opts) {
  ScenarioRunner runner(opts);
  return runner.run(spec);
}

// ---------------------------------------------------------------------------
// The plan: validation + deterministic partitioning.
// ---------------------------------------------------------------------------

SweepPlan::SweepPlan(const SweepOptions& opts) : opts_(opts) {
  // Validate here, on the calling thread: a bad grid must surface as one
  // ContractViolation, not a std::terminate from every worker at once.
  RTFT_EXPECTS(opts.scenario_count > 0, "sweep needs at least one scenario");
  RTFT_EXPECTS(opts.grid.cell_count() > 0, "sweep grid must not be empty");
  RTFT_EXPECTS(opts.horizon_periods > 0, "horizon must cover >= 1 period");
  RTFT_EXPECTS(opts.allowance_granularity.is_positive(),
               "allowance granularity must be positive");
  // Generated sets take unique DM priorities from the RTSJ range, which
  // bounds the task count.
  constexpr std::size_t kMaxTasks =
      static_cast<std::size_t>(sched::kMaxRtPriority - sched::kMinRtPriority) +
      1;
  for (const std::size_t n : opts.grid.task_counts)
    RTFT_EXPECTS(n > 0 && n <= kMaxTasks,
                 "every swept task count must be in [1, 28] (the RTSJ "
                 "priority range)");
  for (const double u : opts.grid.utilizations)
    RTFT_EXPECTS(u > 0.0, "every swept utilization must be positive");
  for (const Duration c : opts.grid.detector_costs)
    RTFT_EXPECTS(!c.is_negative(), "detector cost must be non-negative");
  RTFT_EXPECTS(!opts.grid.stop_poll_latencies.empty(),
               "sweep needs at least one stop-poll latency");
  for (const Duration l : opts.grid.stop_poll_latencies)
    RTFT_EXPECTS(!l.is_negative(), "stop-poll latency must be non-negative");
  RTFT_EXPECTS(!opts.grid.core_counts.empty(),
               "sweep needs at least one core count");
  for (const std::size_t m : opts.grid.core_counts)
    RTFT_EXPECTS(m >= 1 && m <= 64,
                 "every swept core count must be in [1, 64]");
  RTFT_EXPECTS(!opts.grid.quantizer_resolutions.empty(),
               "sweep needs at least one quantizer resolution");
  for (const Duration q : opts.grid.quantizer_resolutions)
    RTFT_EXPECTS(q.is_positive(), "quantizer resolution must be positive");
  RTFT_EXPECTS(
      opts.core_fault_fraction >= 0.0 && opts.core_fault_fraction <= 1.0,
      "the core-fault fraction must lie in [0, 1]");
  RTFT_EXPECTS(opts.grid.min_period.is_positive() &&
                   opts.grid.max_period >= opts.grid.min_period,
               "period range must be positive and ordered");
  if (opts_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.workers = hw == 0 ? 1 : hw;
  }
}

ShardSpec SweepPlan::shard(std::uint64_t i, std::uint64_t n) const {
  RTFT_EXPECTS(n > 0, "a plan splits into at least one shard");
  RTFT_EXPECTS(i < n, "shard index must be below the shard count");
  // Contiguous, balanced to within one: the first `count % n` shards
  // take one extra scenario. Pure arithmetic — every process computes
  // the same ranges from equal options.
  const std::uint64_t count = opts_.scenario_count;
  const std::uint64_t quota = count / n;
  const std::uint64_t extra = count % n;
  ShardSpec spec;
  spec.index = i;
  spec.shards = n;
  spec.begin = i * quota + std::min<std::uint64_t>(i, extra);
  spec.end = spec.begin + quota + (i < extra ? 1 : 0);
  return spec;
}

// ---------------------------------------------------------------------------
// Running one shard: the worker pool.
// ---------------------------------------------------------------------------

ShardResult run_shard(const ShardSpec& shard, const SweepOptions& opts) {
  const SweepPlan plan(opts);  // validates, resolves workers.
  RTFT_EXPECTS(shard.begin <= shard.end,
               "shard range must be ordered: begin <= end");
  RTFT_EXPECTS(shard.end <= plan.scenario_count(),
               "shard range must lie within the sweep's scenario count");
  RTFT_EXPECTS(shard.shards > 0 && shard.index < shard.shards,
               "shard index must be below the shard count");
  SweepOptions resolved = plan.options();
  const std::uint64_t count = shard.count();
  // Never more threads than scenarios; an empty shard keeps one worker
  // slot (no thread runs — the pool below is skipped entirely).
  const std::size_t workers = static_cast<std::size_t>(std::min<std::uint64_t>(
      resolved.workers, std::max<std::uint64_t>(count, 1)));
  resolved.workers = workers;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ScenarioVerdict> verdicts(count);
  std::atomic<std::uint64_t> next{0};
  // Progress state: a plain counter under a mutex, *not* an atomic. The
  // lock covers the increment and the callback together, so invocations
  // are serialized and each one observes `done` exactly one larger than
  // the previous — the monotone stream sweep.hpp promises. (With an
  // atomic counter two workers could increment back to back and then
  // invoke in the opposite order, showing the callback 2 then 1.)
  std::uint64_t completed = 0;
  std::mutex progress_mutex;
  // A throw inside a std::thread body would call std::terminate; capture
  // the first failure instead, stop handing out work, and rethrow on the
  // calling thread after the pool has drained.
  std::atomic<bool> failed{false};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  auto worker = [&] {
    // One reusable engine + sink per worker: scenarios share event-pool,
    // task-slot and counter storage instead of reallocating per run.
    ScenarioRunner runner(resolved);
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        verdicts[i] = runner.run(scenario_spec(resolved, shard.begin + i));
        if (resolved.on_progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          resolved.on_progress(++completed, count);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  if (count > 0) {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w + 1 < workers; ++w) pool.emplace_back(worker);
    worker();  // the calling thread participates.
    for (std::thread& t : pool) t.join();
    if (failure) std::rethrow_exception(failure);
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Serial aggregation in index order: deterministic whatever the
  // completion order above was.
  ShardResult result;
  result.options = resolved;
  result.shard = shard;
  result.cells.resize(resolved.grid.cell_count());
  Fingerprint fp;
  for (const ScenarioVerdict& v : verdicts) {
    result.totals.add(v);
    result.cells[v.cell].agg.add(v);
    fp.add(v);
  }
  result.fingerprint = fp.value();
  detail::fill_cell_metadata(resolved, result.cells);
  result.verdicts = std::move(verdicts);
  result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

// ---------------------------------------------------------------------------
// Merging shards back into one report.
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void merge_error(std::size_t shard_pos, const std::string& why) {
  throw ShardError("cannot merge shard #" + std::to_string(shard_pos) + ": " +
                   why);
}

}  // namespace

namespace detail {

bool same_scenario_identity(const SweepOptions& a, const SweepOptions& b) {
  return a.scenario_count == b.scenario_count && a.base_seed == b.base_seed &&
         a.horizon_periods == b.horizon_periods &&
         a.allowance_granularity == b.allowance_granularity &&
         a.detector_policy == b.detector_policy &&
         a.grid.task_counts == b.grid.task_counts &&
         a.grid.utilizations == b.grid.utilizations &&
         a.grid.detector_costs == b.grid.detector_costs &&
         a.grid.stop_poll_latencies == b.grid.stop_poll_latencies &&
         a.grid.core_counts == b.grid.core_counts &&
         a.grid.quantizer_resolutions == b.grid.quantizer_resolutions &&
         a.partitioner == b.partitioner &&
         a.core_fault_fraction == b.core_fault_fraction &&
         a.grid.deadline_min_factor == b.grid.deadline_min_factor &&
         a.grid.deadline_max_factor == b.grid.deadline_max_factor &&
         a.grid.min_period == b.grid.min_period &&
         a.grid.max_period == b.grid.max_period;
}

}  // namespace detail

namespace {

/// Shared merge implementation over shards in arbitrary input order.
/// `take_verdicts` moves each shard's verdict vector into the report
/// (the pointees are then consumed); false copies and never mutates.
SweepReport merge_shards(const std::vector<ShardResult*>& input,
                         bool take_verdicts) {
  if (input.empty()) {
    throw ShardError("cannot merge an empty shard list");
  }
  // Index order = fingerprint order. Accept any input order; sort by
  // range start and then require an exact tiling of [0, count).
  std::vector<ShardResult*> ordered = input;
  // (begin, end) — not begin alone: an empty shard [b, b) must order
  // before a non-empty [b, e) or the tiling walk below would reject a
  // valid tiling depending on std::sort's unspecified tie order.
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardResult* a, const ShardResult* b) {
              return a->shard.begin != b->shard.begin
                         ? a->shard.begin < b->shard.begin
                         : a->shard.end < b->shard.end;
            });

  const SweepOptions& base = ordered.front()->options;
  const std::size_t cells = base.grid.cell_count();
  std::uint64_t expected_begin = 0;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const ShardResult& s = *ordered[i];
    if (!detail::same_scenario_identity(base, s.options)) {
      // Name the shard by its range — positions here follow the sorted
      // order, not the caller's input order, so a bare index would not
      // identify the offending file.
      merge_error(i, "the shard covering [" + std::to_string(s.shard.begin) +
                         ", " + std::to_string(s.shard.end) +
                         ") belongs to a different sweep (seed, grid, "
                         "policy or scenario count differ)");
    }
    if (s.shard.begin != expected_begin) {
      merge_error(i, "shard ranges must tile the index space contiguously: "
                     "expected a shard starting at scenario " +
                         std::to_string(expected_begin) + ", got [" +
                         std::to_string(s.shard.begin) + ", " +
                         std::to_string(s.shard.end) + ")");
    }
    if (s.verdicts.size() != s.shard.count()) {
      merge_error(i, "verdict count does not match the shard's index range");
    }
    if (s.cells.size() != cells) {
      merge_error(i, "cell count does not match the sweep grid");
    }
    expected_begin = s.shard.end;
  }
  if (expected_begin != base.scenario_count) {
    throw ShardError(
        "shards cover only [0, " + std::to_string(expected_begin) +
        ") of the sweep's " + std::to_string(base.scenario_count) +
        " scenarios");
  }

  SweepReport report;
  report.options = base;
  report.cells.resize(cells);
  // Chain the fingerprint across shards by re-folding every verdict's
  // fields in index order: FNV-1a state is sequential, so this — not a
  // combination of the per-shard hashes — is what reproduces the
  // single-process value bit for bit.
  Fingerprint fp;
  std::vector<ScenarioVerdict> verdicts;
  // Reserve unless the single-shard move below adopts the vector whole.
  if (base.keep_verdicts && !(take_verdicts && ordered.size() == 1)) {
    verdicts.reserve(base.scenario_count);
  }
  for (ShardResult* s : ordered) {
    report.totals.merge(s->totals);
    for (std::size_t c = 0; c < cells; ++c) {
      report.cells[c].agg.merge(s->cells[c].agg);
    }
    for (const ScenarioVerdict& v : s->verdicts) fp.add(v);
    if (base.keep_verdicts) {
      if (take_verdicts && ordered.size() == 1) {
        // The single-shard fast path (run_sweep): adopt the vector
        // whole — a full sweep never holds its verdicts twice.
        verdicts = std::move(s->verdicts);
      } else {
        verdicts.insert(verdicts.end(), s->verdicts.begin(),
                        s->verdicts.end());
        if (take_verdicts) {
          // Consume as we go: peak memory stays at the report plus one
          // shard, not the report plus every shard.
          s->verdicts.clear();
          s->verdicts.shrink_to_fit();
        }
      }
    }
    report.elapsed_seconds += s->elapsed_seconds;
  }
  report.fingerprint = fp.value();
  report.verdicts = std::move(verdicts);
  detail::fill_cell_metadata(base, report.cells);
  return report;
}

}  // namespace

SweepReport merge(std::span<const ShardResult> shards) {
  std::vector<ShardResult*> input;
  input.reserve(shards.size());
  for (const ShardResult& s : shards) {
    // Safe cast: merge_shards(..., false) never mutates the pointees.
    input.push_back(const_cast<ShardResult*>(&s));
  }
  return merge_shards(input, /*take_verdicts=*/false);
}

SweepReport merge(std::vector<ShardResult>&& shards) {
  std::vector<ShardResult*> input;
  input.reserve(shards.size());
  for (ShardResult& s : shards) input.push_back(&s);
  return merge_shards(input, /*take_verdicts=*/true);
}

// ---------------------------------------------------------------------------
// Incremental merge.
// ---------------------------------------------------------------------------

void ShardMerger::fold(ShardResult&& shard) {
  report_.totals.merge(shard.totals);
  for (std::size_t c = 0; c < report_.cells.size(); ++c) {
    report_.cells[c].agg.merge(shard.cells[c].agg);
  }
  for (const ScenarioVerdict& v : shard.verdicts) fp_.add(v);
  if (report_.options.keep_verdicts) {
    report_.verdicts.insert(report_.verdicts.end(),
                            std::make_move_iterator(shard.verdicts.begin()),
                            std::make_move_iterator(shard.verdicts.end()));
  }
  report_.elapsed_seconds += shard.elapsed_seconds;
  accepted_scenarios_ += shard.shard.count();
  // Only non-empty shards advance the frontier: an empty shard is a
  // no-op wherever its [b, b) marker sits and must not fake coverage.
  if (shard.shard.count() > 0) expected_begin_ = shard.shard.end;
}

void ShardMerger::drain_pending() {
  // Fold every buffered shard the last fold unblocked; folding one may
  // unblock another, so scan until a full pass makes no progress.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const ShardSpec& s = pending_[i].shard;
      if (s.begin == expected_begin_) {  // empties are never buffered.
        ShardResult next = std::move(pending_[i]);
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(i));
        fold(std::move(next));
        progressed = true;
        break;  // indices shifted; restart the scan.
      }
    }
  }
}

void ShardMerger::add(ShardResult&& shard) {
  const auto range_of = [](const ShardSpec& s) {
    return "[" + std::to_string(s.begin) + ", " + std::to_string(s.end) +
           ")";
  };
  // Shape checks first — a malformed shard must not corrupt the fold.
  if (shard.shard.begin > shard.shard.end ||
      shard.shard.end > shard.options.scenario_count) {
    throw ShardError("cannot merge the shard covering " +
                     range_of(shard.shard) +
                     ": its range does not lie within the sweep");
  }
  if (shard.verdicts.size() != shard.shard.count()) {
    throw ShardError("cannot merge the shard covering " +
                     range_of(shard.shard) +
                     ": verdict count does not match the shard's index "
                     "range");
  }
  if (!have_base_) {
    report_.options = shard.options;
    report_.cells.resize(shard.options.grid.cell_count());
    if (report_.options.keep_verdicts) {
      report_.verdicts.reserve(report_.options.scenario_count);
    }
    have_base_ = true;
  } else if (!detail::same_scenario_identity(report_.options,
                                             shard.options)) {
    throw ShardError("cannot merge the shard covering " +
                     range_of(shard.shard) +
                     ": it belongs to a different sweep (seed, grid, "
                     "policy or scenario count differ)");
  }
  if (shard.cells.size() != report_.cells.size()) {
    throw ShardError("cannot merge the shard covering " +
                     range_of(shard.shard) +
                     ": cell count does not match the sweep grid");
  }
  if (shard.shard.count() > 0 && shard.shard.begin < expected_begin_) {
    throw ShardError("cannot merge the shard covering " +
                     range_of(shard.shard) +
                     ": it overlaps scenarios already merged (the fold "
                     "has reached scenario " +
                     std::to_string(expected_begin_) + ")");
  }
  if (shard.shard.begin == expected_begin_ || shard.shard.count() == 0) {
    fold(std::move(shard));
    drain_pending();
  } else {
    pending_.push_back(std::move(shard));  // a gap precedes it; wait.
  }
}

SweepReport ShardMerger::finish() {
  if (!have_base_) {
    throw ShardError("cannot merge an empty shard list");
  }
  if (!pending_.empty()) {
    // Name the gap the way the batch merge does: the lowest buffered
    // range is the first shard the tiling is missing a predecessor of.
    const ShardResult* lowest = &pending_.front();
    for (const ShardResult& s : pending_) {
      if (s.shard.begin < lowest->shard.begin) lowest = &s;
    }
    throw ShardError(
        "shard ranges must tile the index space contiguously: expected "
        "a shard starting at scenario " +
        std::to_string(expected_begin_) + ", got [" +
        std::to_string(lowest->shard.begin) + ", " +
        std::to_string(lowest->shard.end) + ")");
  }
  if (expected_begin_ != report_.options.scenario_count) {
    throw ShardError(
        "shards cover only [0, " + std::to_string(expected_begin_) +
        ") of the sweep's " +
        std::to_string(report_.options.scenario_count) + " scenarios");
  }
  report_.fingerprint = fp_.value();
  detail::fill_cell_metadata(report_.options, report_.cells);
  return std::move(report_);
}

// ---------------------------------------------------------------------------
// The single-process convenience.
// ---------------------------------------------------------------------------

SweepReport run_sweep(const SweepOptions& opts) {
  const SweepPlan plan(opts);
  std::vector<ShardResult> whole;
  whole.push_back(run_shard(plan.shard(0, 1), plan.options()));
  return merge(std::move(whole));
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

std::string SweepReport::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%5s %5s %9s %9s %7s %7s %7s %7s %9s %8s\n", "tasks", "U",
                "det-cost", "stop-lat", "n", "sched", "clean", "agree",
                "mean-A", "honored");
  out += line;
  auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
  };
  for (const CellSummary& c : cells) {
    const SweepAggregate& a = c.agg;
    std::snprintf(line, sizeof(line),
                  "%5zu %5.2f %9s %9s %7llu %6.1f%% %6.1f%% %7s %7.2fms "
                  "%7.1f%%\n",
                  c.task_count, c.utilization,
                  to_string(c.detector_cost).c_str(),
                  to_string(c.stop_poll_latency).c_str(),
                  static_cast<unsigned long long>(a.total),
                  pct(a.rta_schedulable, a.total), pct(a.engine_clean, a.total),
                  a.agreement_violations == 0 ? "yes" : "NO",
                  a.mean_allowance_ms(),
                  pct(a.allowance_honored, a.allowance_feasible));
    out += line;
  }
  std::snprintf(
      line, sizeof(line),
      "total %llu  schedulable %llu  engine-clean %llu  "
      "agreement-violations %llu  allowance-honored %llu/%llu\n",
      static_cast<unsigned long long>(totals.total),
      static_cast<unsigned long long>(totals.rta_schedulable),
      static_cast<unsigned long long>(totals.engine_clean),
      static_cast<unsigned long long>(totals.agreement_violations),
      static_cast<unsigned long long>(totals.allowance_honored),
      static_cast<unsigned long long>(totals.allowance_feasible));
  out += line;
  return out;
}

}  // namespace rtft::sweep
