#include "sweep/progress.hpp"

#include "common/strings.hpp"

namespace rtft::sweep {

namespace {

constexpr std::string_view kMachinePrefix = "progress";
constexpr std::string_view kHumanSuffix = "scenarios";

/// Parses the bare "<done>/<total>" fraction.
bool parse_fraction(std::string_view text, ProgressUpdate& out) {
  const auto parts = split(text, '/');
  if (parts.size() != 2) return false;
  std::int64_t done = 0;
  std::int64_t total = 0;
  if (!parse_int64(parts[0], done) || !parse_int64(parts[1], total)) {
    return false;
  }
  if (done < 0 || total < 0 || done > total) return false;
  out.done = static_cast<std::uint64_t>(done);
  out.total = static_cast<std::uint64_t>(total);
  return true;
}

}  // namespace

std::string progress_line(const ProgressUpdate& update) {
  std::string line(kMachinePrefix);
  line += ' ';
  line += std::to_string(update.done);
  line += '/';
  line += std::to_string(update.total);
  line += '\n';
  return line;
}

bool parse_progress_token(std::string_view token, ProgressUpdate& out) {
  token = trim(token);
  if (token.empty()) return false;
  ProgressUpdate parsed;
  if (token.substr(0, kMachinePrefix.size()) == kMachinePrefix) {
    // Machine form: "progress D/T".
    if (!parse_fraction(trim(token.substr(kMachinePrefix.size())), parsed)) {
      return false;
    }
  } else {
    // Human form: "D/T scenarios (NN%)" — the fraction is the first
    // space-separated field, the "scenarios" keyword disambiguates it
    // from arbitrary stderr noise that happens to contain a slash.
    const std::size_t space = token.find(' ');
    if (space == std::string_view::npos) return false;
    const std::string_view rest = trim(token.substr(space + 1));
    if (rest.substr(0, kHumanSuffix.size()) != kHumanSuffix) return false;
    if (!parse_fraction(token.substr(0, space), parsed)) return false;
  }
  out = parsed;
  return true;
}

void ProgressParser::feed(std::string_view bytes, const Callback& on_update) {
  for (const char c : bytes) {
    if (c != '\r' && c != '\n') {
      buffer_.push_back(c);
      continue;
    }
    ProgressUpdate update;
    if (parse_progress_token(buffer_, update) && on_update) {
      on_update(update);
    }
    buffer_.clear();
  }
}

void ProgressParser::finish(const Callback& on_update) {
  ProgressUpdate update;
  if (parse_progress_token(buffer_, update) && on_update) {
    on_update(update);
  }
  buffer_.clear();
}

}  // namespace rtft::sweep
