// SweepReport export — machine-readable forms for plotting pipelines
// (ROADMAP: "CSV/JSON export for plotting").
//
// Two CSV granularities plus one self-describing JSON document:
//
//   verdicts_csv — one row per kept scenario verdict (the plotting data:
//                  schedulability and allowance outcomes per scenario);
//   cells_csv    — one row per grid cell with aggregate counters;
//   report_json  — options, totals, cells, kept verdicts, fingerprint.
//
// 64-bit seeds and the fingerprint are emitted as hex strings: JSON
// numbers lose integer precision beyond 2^53.
#pragma once

#include <string>

#include "sweep/sweep.hpp"

namespace rtft::sweep {

/// One row per kept verdict, in index order. Header-only when the sweep
/// ran with keep_verdicts=false.
[[nodiscard]] std::string verdicts_csv(const SweepReport& report);

/// One row per grid cell with its aggregate counters, in grid order.
[[nodiscard]] std::string cells_csv(const SweepReport& report);

/// The whole report as one JSON document.
[[nodiscard]] std::string report_json(const SweepReport& report);

}  // namespace rtft::sweep
