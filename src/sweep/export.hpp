// SweepReport export — machine-readable forms for plotting pipelines
// (ROADMAP: "CSV/JSON export for plotting").
//
// Two CSV granularities plus one self-describing JSON document:
//
//   verdicts_csv — one row per kept scenario verdict (the plotting data:
//                  schedulability and allowance outcomes per scenario);
//   cells_csv    — one row per grid cell with aggregate counters;
//   report_json  — options, totals, cells, kept verdicts, fingerprint.
//
// Plus the shard interchange format that lets the partition/run/merge
// triad cross process and host boundaries:
//
//   shard_json      — one ShardResult as a versioned ("rtft-shard" v2)
//                     JSON document: the producing options and grid, the
//                     index range, per-cell aggregates, every verdict
//                     (the shard's fingerprint contribution — FNV-1a
//                     state is sequential, so merge re-folds verdict
//                     fields in index order), and the shard's standalone
//                     fingerprint;
//   load_shard_json — the inverse, with full validation: malformed
//                     documents, foreign formats/versions, ranges that
//                     do not match the verdicts, aggregates that do not
//                     match the verdicts, and fingerprint mismatches
//                     (bit rot, tampering, version skew) all throw
//                     ShardError with a message naming the defect.
//
// 64-bit seeds and fingerprints are emitted as hex strings: JSON
// numbers lose integer precision beyond 2^53. Doubles are %.17g, which
// round-trips bit-exactly — a loaded shard merges to the same
// fingerprint the in-process ShardResult would have.
#pragma once

#include <string>
#include <string_view>

#include "sweep/sweep.hpp"

namespace rtft::sweep {

/// One row per kept verdict, in index order. Header-only when the sweep
/// ran with keep_verdicts=false.
[[nodiscard]] std::string verdicts_csv(const SweepReport& report);

/// One row per grid cell with its aggregate counters, in grid order.
[[nodiscard]] std::string cells_csv(const SweepReport& report);

/// The whole report as one JSON document.
[[nodiscard]] std::string report_json(const SweepReport& report);

/// The shard-file format identity. The version bumps on any change to
/// the document's structure or field semantics; the loader rejects
/// everything it was not written to understand.
inline constexpr std::string_view kShardFormatName = "rtft-shard";
/// v2 added the multicore axes (core_counts, quantizer_resolution_ns,
/// partitioner, core_fault_fraction) and the ff_*/fa_* verdict and
/// aggregate fields.
inline constexpr std::int64_t kShardFormatVersion = 2;

/// One ShardResult as a self-contained, versioned JSON document.
[[nodiscard]] std::string shard_json(const ShardResult& shard);

/// Parses and validates a shard_json document. Beyond syntax, the
/// loader re-derives everything derivable — verdict indices, seeds and
/// cells from the options; totals and per-cell aggregates from the
/// verdicts; the fingerprint from a fresh FNV-1a fold — and requires
/// each to equal what the document claims, so a shard that loads
/// cleanly merges exactly like the in-process result it serialized.
/// Throws ShardError (with the defect named) on any violation.
[[nodiscard]] ShardResult load_shard_json(std::string_view json);

namespace detail {

/// printf-style append. Rows that exceed the internal stack buffer are
/// formatted again into the grown destination — never truncated (the
/// export format must stay parseable whatever the row width).
void appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Appends `value` as %.17g (shortest round-trippable form) with the
/// decimal separator forced to '.': the C library formats floats with
/// the global LC_NUMERIC locale, and a comma separator would corrupt
/// CSV rows and JSON documents.
void append_double(std::string& out, double value);

/// The locale fix-up of append_double on an already formatted number:
/// replaces the first occurrence of `decimal_point` (as written by the C
/// library, possibly multi-byte) with '.'.
[[nodiscard]] std::string normalize_decimal_point(
    std::string_view formatted, std::string_view decimal_point);

}  // namespace detail

}  // namespace rtft::sweep
