// SweepReport export — machine-readable forms for plotting pipelines
// (ROADMAP: "CSV/JSON export for plotting").
//
// Two CSV granularities plus one self-describing JSON document:
//
//   verdicts_csv — one row per kept scenario verdict (the plotting data:
//                  schedulability and allowance outcomes per scenario);
//   cells_csv    — one row per grid cell with aggregate counters;
//   report_json  — options, totals, cells, kept verdicts, fingerprint.
//
// 64-bit seeds and the fingerprint are emitted as hex strings: JSON
// numbers lose integer precision beyond 2^53.
#pragma once

#include <string>

#include "sweep/sweep.hpp"

namespace rtft::sweep {

/// One row per kept verdict, in index order. Header-only when the sweep
/// ran with keep_verdicts=false.
[[nodiscard]] std::string verdicts_csv(const SweepReport& report);

/// One row per grid cell with its aggregate counters, in grid order.
[[nodiscard]] std::string cells_csv(const SweepReport& report);

/// The whole report as one JSON document.
[[nodiscard]] std::string report_json(const SweepReport& report);

namespace detail {

/// printf-style append. Rows that exceed the internal stack buffer are
/// formatted again into the grown destination — never truncated (the
/// export format must stay parseable whatever the row width).
void appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Appends `value` as %.17g (shortest round-trippable form) with the
/// decimal separator forced to '.': the C library formats floats with
/// the global LC_NUMERIC locale, and a comma separator would corrupt
/// CSV rows and JSON documents.
void append_double(std::string& out, double value);

/// The locale fix-up of append_double on an already formatted number:
/// replaces the first occurrence of `decimal_point` (as written by the C
/// library, possibly multi-byte) with '.'.
[[nodiscard]] std::string normalize_decimal_point(
    std::string_view formatted, std::string_view decimal_point);

}  // namespace detail

}  // namespace rtft::sweep
