// Batch scenario sweeps — many task systems through the analyses and the
// virtual-time engine at once.
//
// The paper evaluates one hand-built system (Table 2). This module turns
// that into a population study in the style of the weakly-hard and
// multi-task-set evaluation literature: a deterministic generator fans
// random task systems (UUniFast utilizations, deadline-monotonic
// priorities) across a parameter grid of task count × utilization ×
// detector cost, a worker pool runs every scenario through
//
//   1. the RTA/feasibility analysis          (schedulable?)
//   2. a nominal rt::Engine run              (does the engine agree?)
//   3. the equitable-allowance search plus a faulty run that overruns by
//      exactly the allowance                 (is the allowance honored?)
//   4. a detector-loaded run with per-fire CPU cost
//      (does detection overhead break marginal systems? §6.2)
//
// and the per-scenario verdicts are aggregated into grid-cell and total
// summaries. Results are bitwise deterministic for a given (seed, grid,
// scenario count) regardless of worker count or thread scheduling: every
// scenario's verdict is a pure function of its derived seed, and verdicts
// are stored by scenario index, not completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/time.hpp"
#include "core/treatment.hpp"
#include "runtime/engine.hpp"
#include "sweep/generators.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::sweep {

/// The parameter grid a sweep covers. Scenarios are assigned to cells
/// round-robin by index, so every cell receives an equal share (+/-1) of
/// the scenario budget in a deterministic order.
struct SweepGrid {
  std::vector<std::size_t> task_counts = {3, 5, 8};
  std::vector<double> utilizations = {0.5, 0.7, 0.9};
  std::vector<Duration> detector_costs = {Duration::zero()};
  /// Stop-poll latencies for the engine runs (§4.1's cooperative-stop
  /// delay). Matters under a stopping detector policy: a slow poll lets
  /// a faulty job burn CPU past its stop request. The default single
  /// zero keeps the historical grid shape (and fingerprint) unchanged.
  std::vector<Duration> stop_poll_latencies = {Duration::zero()};
  /// Deadline = period * factor drawn uniformly from this range
  /// (<= 1: constrained deadlines, the paper's setting).
  double deadline_min_factor = 0.8;
  double deadline_max_factor = 1.0;
  Duration min_period = Duration::ms(10);
  Duration max_period = Duration::ms(1000);

  [[nodiscard]] std::size_t cell_count() const {
    return task_counts.size() * utilizations.size() * detector_costs.size() *
           stop_poll_latencies.size();
  }
};

/// Everything one worker needs to run one scenario.
struct ScenarioSpec {
  std::uint64_t index = 0;  ///< position in the sweep, assigns the cell.
  std::uint64_t seed = 0;   ///< derived seed; fully determines the task set.
  std::size_t cell = 0;     ///< flat grid-cell index.
  RandomTaskSetSpec tasks;
  Duration detector_cost;
  Duration stop_poll_latency;
};

/// Sweep-wide options.
struct SweepOptions {
  std::uint64_t scenario_count = 1000;
  /// Worker threads; 0 means hardware concurrency.
  std::size_t workers = 4;
  std::uint64_t base_seed = 42;
  SweepGrid grid;
  /// Granularity of the equitable-allowance binary search. Coarser than
  /// the exact-nanosecond default: a sweep values throughput and only
  /// needs A to be *a* feasible allowance, not the supremum.
  Duration allowance_granularity = Duration::us(100);
  /// Engine window, as a multiple of the set's largest period.
  std::int64_t horizon_periods = 8;
  /// Policy armed in the detector-loaded run.
  core::TreatmentPolicy detector_policy = core::TreatmentPolicy::kDetectOnly;
  /// Keep the per-scenario verdicts in the report (aggregates are always
  /// computed). Off saves memory on very large sweeps.
  bool keep_verdicts = true;
  /// Observation mode for the engine runs. By default every worker
  /// records through a reused, allocation-free trace::CountingSink —
  /// the paper's keep-the-substrate-undisturbed discipline at sweep
  /// scale. Setting this routes events into a per-worker full-fidelity
  /// trace::Recorder instead (cleared between runs). Verdicts and the
  /// fingerprint are identical either way; the knob exists for debugging
  /// and for measuring what full-trace observation costs.
  bool full_traces = false;
  /// Event-queue implementation for the engine runs. Trace-equivalent
  /// by construction (the engine's dispatch order is total); the knob
  /// exists for the equivalence tests and for benchmarking the oracle.
  rt::EventQueueMode event_queue = rt::EventQueueMode::kTimingWheel;
};

/// Outcome of one scenario. Every field is a pure function of the spec.
struct ScenarioVerdict {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  std::size_t cell = 0;
  std::size_t task_count = 0;
  double target_utilization = 0.0;
  double actual_utilization = 0.0;
  Duration detector_cost;
  Duration stop_poll_latency;

  bool rta_schedulable = false;   ///< analysis: every WCRT within deadline.
  bool engine_clean = false;      ///< nominal run: zero deadline misses.
  std::int64_t nominal_misses = 0;
  /// RTA soundness vs the engine: schedulable implies a clean run. (The
  /// converse may fail — the window is finite and the analysis is
  /// worst-case — so a clean run of an unschedulable-by-RTA set is fine.)
  bool agreement = false;

  bool allowance_feasible = false;  ///< feasible at zero inflation.
  Duration allowance;               ///< equitable A at sweep granularity.
  /// Faulty run: the highest-priority task overruns job 0 by exactly A;
  /// honored means still zero misses (§4.2's guarantee).
  bool allowance_honored = false;

  /// Detector-loaded run with per-fire cost: zero misses?
  bool detector_clean = false;
  std::int64_t detector_faults = 0;  ///< faults reported by the detectors.
};

/// Counting aggregate over a set of verdicts.
struct SweepAggregate {
  std::uint64_t total = 0;
  std::uint64_t rta_schedulable = 0;
  std::uint64_t engine_clean = 0;
  std::uint64_t agreement_violations = 0;
  std::uint64_t allowance_feasible = 0;
  std::uint64_t allowance_honored = 0;
  std::uint64_t detector_clean = 0;
  Duration allowance_sum;  ///< over allowance_feasible scenarios.

  void add(const ScenarioVerdict& v);
  /// Mean equitable allowance over the feasible scenarios.
  [[nodiscard]] double mean_allowance_ms() const;
};

/// Aggregate for one grid cell.
struct CellSummary {
  std::size_t task_count = 0;
  double utilization = 0.0;
  Duration detector_cost;
  Duration stop_poll_latency;
  SweepAggregate agg;
};

/// Full sweep outcome.
struct SweepReport {
  SweepOptions options;  ///< as resolved (workers filled in).
  SweepAggregate totals;
  std::vector<CellSummary> cells;        ///< grid order.
  std::vector<ScenarioVerdict> verdicts; ///< index order; empty unless kept.
  /// Wall-clock of the sweep, for the CLI's scenarios/s line. Not part of
  /// the deterministic state.
  double elapsed_seconds = 0.0;
  /// FNV-1a hash over every verdict's deterministic fields, in index
  /// order (computed even when verdicts are not kept). Two runs with
  /// equal (seed, grid, count) produce equal fingerprints whatever the
  /// worker count.
  std::uint64_t fingerprint = 0;

  /// Aligned per-cell summary table plus a totals line.
  [[nodiscard]] std::string table() const;
};

/// The spec for scenario `index` of a sweep (pure function of options).
[[nodiscard]] ScenarioSpec scenario_spec(const SweepOptions& opts,
                                         std::uint64_t index);

/// Per-worker reusable execution context: one engine and one sink,
/// re-armed between scenarios, so a sweep pays no per-scenario engine or
/// trace-buffer allocation (the seed design heap-allocated a fresh
/// engine plus a 64K-event recorder for every one of the four runs of
/// every scenario). `opts` is borrowed and must outlive the runner.
/// Verdicts remain pure functions of the spec: run() fully resets the
/// engine, so reuse is observationally identical to a fresh engine.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const SweepOptions& opts);

  /// Runs one scenario to its verdict.
  [[nodiscard]] ScenarioVerdict run(const ScenarioSpec& spec);

 private:
  /// Re-arms the engine for one run over `horizon` and registers `ts`;
  /// `faulty` (if set) gets `extra` added to the cost of its job 0.
  void arm(const sched::TaskSet& ts, Duration horizon,
           std::optional<sched::TaskId> faulty = {},
           Duration extra = Duration::zero());
  [[nodiscard]] std::int64_t total_misses() const;

  const SweepOptions& opts_;
  rt::Engine engine_;
  trace::CountingSink counting_;
  trace::Recorder full_;  ///< used only when opts.full_traces.
  std::vector<rt::TaskHandle> handles_;
  Duration stop_poll_latency_;  ///< current scenario's §4.1 poll delay.
};

/// Runs one scenario to its verdict (pure; callable from any thread).
/// One-shot convenience over ScenarioRunner.
[[nodiscard]] ScenarioVerdict run_scenario(const ScenarioSpec& spec,
                                           const SweepOptions& opts);

/// Fans `opts.scenario_count` scenarios across `opts.workers` threads and
/// aggregates. Deterministic for fixed options (minus elapsed_seconds).
[[nodiscard]] SweepReport run_sweep(const SweepOptions& opts);

}  // namespace rtft::sweep
