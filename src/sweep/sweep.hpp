// Batch scenario sweeps — many task systems through the analyses and the
// virtual-time engine at once.
//
// The paper evaluates one hand-built system (Table 2). This module turns
// that into a population study in the style of the weakly-hard and
// multi-task-set evaluation literature: a deterministic generator fans
// random task systems (UUniFast utilizations, deadline-monotonic
// priorities) across a parameter grid of task count × utilization ×
// detector cost, a worker pool runs every scenario through
//
//   1. the RTA/feasibility analysis          (schedulable?)
//   2. a nominal rt::Engine run              (does the engine agree?)
//   3. the equitable-allowance search plus a faulty run that overruns by
//      exactly the allowance                 (is the allowance honored?)
//   4. a detector-loaded run with per-fire CPU cost
//      (does detection overhead break marginal systems? §6.2)
//
// and the per-scenario verdicts are aggregated into grid-cell and total
// summaries. Results are bitwise deterministic for a given (seed, grid,
// scenario count) regardless of worker count or thread scheduling: every
// scenario's verdict is a pure function of its derived seed, and verdicts
// are stored by scenario index, not completion order.
//
// The sweep API is a partition/run/merge triad, so the scenario index
// space can be split across threads, processes or hosts:
//
//   SweepPlan plan(opts);                  // validate once, partition
//   ShardSpec s   = plan.shard(i, n);      // contiguous index range i/n
//   ShardResult r = run_shard(s, opts);    // any process, any workers
//   SweepReport report = merge(shards);    // == single-process run,
//                                          //    bit for bit
//
// run_sweep() is the single-process convenience: plan -> run -> merge of
// one shard covering everything. Shards serialize to versioned JSON
// (sweep/export.hpp: shard_json / load_shard_json) so the run step can
// cross process and host boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hpp"
#include "common/time.hpp"
#include "core/treatment.hpp"
#include "multicore/multi_engine.hpp"
#include "runtime/engine.hpp"
#include "sweep/generators.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace rtft::sweep {

/// The parameter grid a sweep covers. Scenarios are assigned to cells
/// round-robin by index, so every cell receives an equal share (+/-1) of
/// the scenario budget in a deterministic order.
struct SweepGrid {
  std::vector<std::size_t> task_counts = {3, 5, 8};
  std::vector<double> utilizations = {0.5, 0.7, 0.9};
  std::vector<Duration> detector_costs = {Duration::zero()};
  /// Stop-poll latencies for the engine runs (§4.1's cooperative-stop
  /// delay). Matters under a stopping detector policy: a slow poll lets
  /// a faulty job burn CPU past its stop request. The default single
  /// zero keeps the historical grid shape (and fingerprint) unchanged.
  std::vector<Duration> stop_poll_latencies = {Duration::zero()};
  /// Core counts for the partitioned-multiprocessor stage (ROADMAP
  /// 4(b)). Cells with cores > 1 additionally place the task set on a
  /// per-core engine fleet (first-fit and fault-aware primary/backup
  /// placement), kill the busiest core mid-run and record the
  /// fail-over verdicts. The default single 1 keeps the historical
  /// grid shape (and both pinned fingerprints) unchanged.
  std::vector<std::size_t> core_counts = {1};
  /// Detector timer-quantizer resolutions (the paper's §6.2 jRate
  /// grid as an axis). The default single 1 ms keeps the historical
  /// exact-threshold behaviour (no rounding); any other resolution
  /// arms paper-style round-to-nearest on the detector thresholds.
  std::vector<Duration> quantizer_resolutions = {Duration::ms(1)};
  /// Deadline = period * factor drawn uniformly from this range
  /// (<= 1: constrained deadlines, the paper's setting).
  double deadline_min_factor = 0.8;
  double deadline_max_factor = 1.0;
  Duration min_period = Duration::ms(10);
  Duration max_period = Duration::ms(1000);

  [[nodiscard]] std::size_t cell_count() const {
    return task_counts.size() * utilizations.size() * detector_costs.size() *
           stop_poll_latencies.size() * core_counts.size() *
           quantizer_resolutions.size();
  }
};

/// Everything one worker needs to run one scenario.
struct ScenarioSpec {
  std::uint64_t index = 0;  ///< position in the sweep, assigns the cell.
  std::uint64_t seed = 0;   ///< derived seed; fully determines the task set.
  std::size_t cell = 0;     ///< flat grid-cell index.
  RandomTaskSetSpec tasks;
  Duration detector_cost;
  Duration stop_poll_latency;
  std::size_t cores = 1;
  Duration quantum = Duration::ms(1);  ///< detector-quantizer resolution.
};

/// How the sweep's engines observe events (counter-only runs; a
/// full_traces run always uses the virtual Recorder seam).
enum class SinkDispatch : std::uint8_t {
  /// Engine-local batched counting (trace::SinkMode::kStaticCounting):
  /// zero virtual calls per event. The production path.
  kStatic,
  /// Per-event virtual CountingSink::record through the Sink* seam —
  /// the original design, retained as the equivalence oracle.
  kVirtual,
};

/// How scenario fault injections reach the engine.
enum class CostSpecMode : std::uint8_t {
  /// Flat rt::CostSpec resolved inline per job. The production path.
  kFlat,
  /// A std::function closure per faulty task — the original design,
  /// retained as the equivalence oracle.
  kFunction,
};

/// Which placement strategies the multicore stage runs. kBoth pairs
/// the verdicts per scenario — the evidence the fault-aware placement
/// is worth its admission cost is exactly a cell where it stays clean
/// while first-fit misses on the same draw.
enum class PartitionerMode : std::uint8_t {
  kBoth,
  kFirstFit,
  kFaultAware,
};

/// "both", "first-fit" or "fault-aware" — the CLI/export spelling.
[[nodiscard]] std::string_view to_string(PartitionerMode mode);
/// Inverse of to_string; throws ContractViolation for unknown names.
[[nodiscard]] PartitionerMode partitioner_mode_from_string(
    std::string_view name);

/// Sweep-wide options.
struct SweepOptions {
  std::uint64_t scenario_count = 1000;
  /// Worker threads; 0 means hardware concurrency.
  std::size_t workers = 4;
  std::uint64_t base_seed = 42;
  SweepGrid grid;
  /// Granularity of the equitable-allowance binary search. Coarser than
  /// the exact-nanosecond default: a sweep values throughput and only
  /// needs A to be *a* feasible allowance, not the supremum.
  Duration allowance_granularity = Duration::us(100);
  /// Engine window, as a multiple of the set's largest period.
  std::int64_t horizon_periods = 8;
  /// Policy armed in the detector-loaded run.
  core::TreatmentPolicy detector_policy = core::TreatmentPolicy::kDetectOnly;
  /// Placement strategies run in multicore cells (cores > 1).
  PartitionerMode partitioner = PartitionerMode::kBoth;
  /// When the multicore stage kills a core: the fault instant as a
  /// fraction of the scenario horizon, in [0, 1]. The victim is the
  /// core with the highest primary utilization (ties to the lowest
  /// index). 0 disables the fault (placement verdicts only); 1 dates
  /// it at the horizon, which also never fires.
  double core_fault_fraction = 0.5;
  /// Keep the per-scenario verdicts in the report (aggregates are always
  /// computed). Off saves memory on very large sweeps.
  bool keep_verdicts = true;
  /// Observation mode for the engine runs. By default every worker
  /// records through a reused, allocation-free trace::CountingSink —
  /// the paper's keep-the-substrate-undisturbed discipline at sweep
  /// scale. Setting this routes events into a per-worker full-fidelity
  /// trace::Recorder instead (cleared between runs). Verdicts and the
  /// fingerprint are identical either way; the knob exists for debugging
  /// and for measuring what full-trace observation costs.
  bool full_traces = false;
  /// Event-queue implementation for the engine runs. Trace-equivalent
  /// by construction (the engine's dispatch order is total); the knob
  /// exists for the equivalence tests and for benchmarking the oracle.
  rt::EventQueueMode event_queue = rt::EventQueueMode::kTimingWheel;
  /// Observation dispatch for counter-only runs. Verdicts and the
  /// fingerprint are identical in both modes (pinned by tests and CI);
  /// kVirtual exists as the oracle and benchmark baseline. Ignored when
  /// full_traces routes events into the Recorder.
  SinkDispatch sink_dispatch = SinkDispatch::kStatic;
  /// Fault-injection representation. Verdict- and fingerprint-
  /// equivalent; kFunction is the oracle.
  CostSpecMode cost_spec = CostSpecMode::kFlat;
  /// Progress hook: invoked once per completed scenario with
  /// (scenarios completed so far, scenarios in this run) — for a shard
  /// run, "this run" is the shard. Invocations are serialized (the
  /// worker pool holds a lock across counter increment and call), and
  /// `completed` is exactly sequential: 1, 2, ..., total, each call one
  /// larger than the last. The callback itself therefore needs no
  /// internal locking, but it runs on whichever worker thread finished
  /// the scenario and while the progress lock is held — keep it cheap,
  /// and never call back into the sweep from inside it. On a non-empty
  /// run the final call reports (total, total); an empty shard makes no
  /// calls at all. Purely observational: verdicts, aggregates and
  /// fingerprints are identical with or without it. Empty (the default)
  /// costs nothing.
  std::function<void(std::uint64_t completed, std::uint64_t total)>
      on_progress;
};

/// Outcome of one scenario. Every field is a pure function of the spec.
struct ScenarioVerdict {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  std::size_t cell = 0;
  std::size_t task_count = 0;
  double target_utilization = 0.0;
  double actual_utilization = 0.0;
  Duration detector_cost;
  Duration stop_poll_latency;

  bool rta_schedulable = false;   ///< analysis: every WCRT within deadline.
  bool engine_clean = false;      ///< nominal run: zero deadline misses.
  std::int64_t nominal_misses = 0;
  /// RTA soundness vs the engine: schedulable implies a clean run. (The
  /// converse may fail — the window is finite and the analysis is
  /// worst-case — so a clean run of an unschedulable-by-RTA set is fine.)
  bool agreement = false;

  bool allowance_feasible = false;  ///< feasible at zero inflation.
  Duration allowance;               ///< equitable A at sweep granularity.
  /// Faulty run: the highest-priority task overruns job 0 by exactly A;
  /// honored means still zero misses (§4.2's guarantee).
  bool allowance_honored = false;

  /// Detector-loaded run with per-fire cost: zero misses?
  bool detector_clean = false;
  std::int64_t detector_faults = 0;  ///< faults reported by the detectors.

  // Multicore stage (cells with cores > 1; inert at the defaults so
  // both pinned fingerprints survive). ff_* = first-fit placement,
  // fa_* = fault-aware placement, each run on the same draw.
  std::size_t cores = 1;
  Duration quantum = Duration::ms(1);  ///< detector-quantizer resolution.
  bool ff_placement_feasible = false;  ///< first-fit found every slot.
  bool fa_placement_feasible = false;  ///< fault-aware admitted backups.
  bool ff_failover_clean = false;      ///< no task missed across the fault.
  bool fa_failover_clean = false;
  std::int64_t ff_missed_tasks = 0;  ///< tasks not kSurvived.
  std::int64_t fa_missed_tasks = 0;
  std::int64_t ff_lost_jobs = 0;  ///< in-flight jobs lost with the core.
  std::int64_t fa_lost_jobs = 0;
};

/// Counting aggregate over a set of verdicts.
struct SweepAggregate {
  std::uint64_t total = 0;
  std::uint64_t rta_schedulable = 0;
  std::uint64_t engine_clean = 0;
  std::uint64_t agreement_violations = 0;
  std::uint64_t allowance_feasible = 0;
  std::uint64_t allowance_honored = 0;
  std::uint64_t detector_clean = 0;
  Duration allowance_sum;  ///< over allowance_feasible scenarios.
  // Multicore counters (over verdicts with cores > 1; all zero on a
  // historical single-core sweep).
  std::uint64_t multicore = 0;  ///< verdicts that ran the multicore stage.
  std::uint64_t ff_placed = 0;
  std::uint64_t fa_placed = 0;
  std::uint64_t ff_failover_clean = 0;
  std::uint64_t fa_failover_clean = 0;

  void add(const ScenarioVerdict& v);
  /// Adds another aggregate's counts — how shard totals combine. Sums
  /// are associative, so merging per-shard aggregates in any grouping
  /// reproduces the single-pass aggregate exactly.
  void merge(const SweepAggregate& other);
  /// Mean equitable allowance over the feasible scenarios.
  [[nodiscard]] double mean_allowance_ms() const;
};

/// Aggregate for one grid cell.
struct CellSummary {
  std::size_t task_count = 0;
  double utilization = 0.0;
  Duration detector_cost;
  Duration stop_poll_latency;
  std::size_t cores = 1;
  Duration quantum = Duration::ms(1);
  SweepAggregate agg;
};

/// Full sweep outcome.
struct SweepReport {
  SweepOptions options;  ///< as resolved (workers filled in).
  SweepAggregate totals;
  std::vector<CellSummary> cells;        ///< grid order.
  std::vector<ScenarioVerdict> verdicts; ///< index order; empty unless kept.
  /// Wall-clock of the sweep, for the CLI's scenarios/s line. Not part of
  /// the deterministic state.
  double elapsed_seconds = 0.0;
  /// FNV-1a hash over every verdict's deterministic fields, in index
  /// order (computed even when verdicts are not kept). Two runs with
  /// equal (seed, grid, count) produce equal fingerprints whatever the
  /// worker count.
  std::uint64_t fingerprint = 0;

  /// Aligned per-cell summary table plus a totals line.
  [[nodiscard]] std::string table() const;
};

/// The spec for scenario `index` of a sweep (pure function of options).
[[nodiscard]] ScenarioSpec scenario_spec(const SweepOptions& opts,
                                         std::uint64_t index);

namespace detail {
/// Fills every cell's grid coordinates (task count, utilization,
/// detector cost, stop-poll latency) from the options, leaving the
/// aggregates untouched. One definition shared by run_shard, merge and
/// the shard-file loader so the metadata cannot drift between them.
void fill_cell_metadata(const SweepOptions& opts,
                        std::vector<CellSummary>& cells);

/// True when two option sets define the same scenario population —
/// every field a verdict depends on. Workers, observation mode (full
/// traces and sink dispatch), cost-spec representation and the
/// event-queue implementation are excluded on purpose: they are proven
/// not to affect verdicts, so shards run with different worker counts
/// (or one per queue/sink/cost mode) merge fine. Shared by merge() and the sweep
/// coordinator's checkpoint-resume validation, so "same sweep" cannot
/// mean different things in the two places.
[[nodiscard]] bool same_scenario_identity(const SweepOptions& a,
                                          const SweepOptions& b);
}  // namespace detail

// ---------------------------------------------------------------------------
// The partition/run/merge triad.
// ---------------------------------------------------------------------------

/// Thrown when shard inputs cannot be combined or loaded: malformed or
/// tampered shard files, shards from different sweeps, ranges that do
/// not tile the index space. Ordinary (recoverable) error reporting —
/// unlike ContractViolation, which flags caller bugs.
class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A contiguous half-open range [begin, end) of scenario indices —
/// shard `index` of `shards` in a SweepPlan partition. The unit of
/// distribution: every scenario's verdict is a pure function of
/// (options, index), so a shard can run in any process on any host.
struct ShardSpec {
  std::uint64_t index = 0;   ///< which shard: 0 <= index < shards.
  std::uint64_t shards = 1;  ///< how many shards the plan was split into.
  std::uint64_t begin = 0;   ///< first scenario index (inclusive).
  std::uint64_t end = 0;     ///< one past the last scenario index.

  [[nodiscard]] std::uint64_t count() const { return end - begin; }
};

/// Validated, resolved sweep options plus the deterministic partition of
/// the scenario index space. Construction performs all option checks
/// (one ContractViolation on the calling thread, never a worker crash)
/// and resolves workers == 0 to the hardware concurrency; shard() is
/// then a pure function, so cooperating processes that construct the
/// plan from equal options agree on every range without coordination.
class SweepPlan {
 public:
  explicit SweepPlan(const SweepOptions& opts);

  [[nodiscard]] const SweepOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t scenario_count() const {
    return opts_.scenario_count;
  }
  /// Shard `i` of `n`: contiguous ranges that tile [0, scenario_count)
  /// in index order, sizes equal to within one (the first
  /// scenario_count % n shards take the extra scenario). n may exceed
  /// the scenario count; trailing shards are then empty.
  [[nodiscard]] ShardSpec shard(std::uint64_t i, std::uint64_t n) const;

 private:
  SweepOptions opts_;
};

/// The sweep fingerprint as a running FNV-1a fold over verdicts in
/// index order. Exposed so that merge() and the shard-file loader chain
/// or recompute the exact same hash the single-process sweep produces.
class Fingerprint {
 public:
  /// Folds one verdict's deterministic fields into the state.
  void add(const ScenarioVerdict& v);
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis.
};

/// Outcome of one shard: the shard's slice of every SweepReport field.
/// Verdicts are always kept — they are the shard's fingerprint
/// contribution (FNV-1a state is sequential, so merge() re-folds the
/// verdict fields in index order; a lone hash could not be chained) —
/// and SweepOptions::keep_verdicts decides only whether the *merged*
/// report retains them.
struct ShardResult {
  SweepOptions options;  ///< as resolved by the plan (workers filled in).
  ShardSpec shard;
  SweepAggregate totals;           ///< this shard's scenarios only.
  std::vector<CellSummary> cells;  ///< grid order; partial counts.
  std::vector<ScenarioVerdict> verdicts;  ///< index order, always kept.
  /// FNV-1a fold over this shard's verdicts from the offset basis: a
  /// pure function of (seed, grid, range) for cross-process spot checks
  /// and loader validation. Equals the sweep fingerprint only for a
  /// shard covering the whole index space.
  std::uint64_t fingerprint = 0;
  double elapsed_seconds = 0.0;  ///< not part of the deterministic state.
};

/// Runs one shard on `opts.workers` threads (clamped to the shard size).
/// The per-worker ScenarioRunner is the unit of execution, exactly as in
/// a single-process sweep. Deterministic minus elapsed_seconds.
[[nodiscard]] ShardResult run_shard(const ShardSpec& shard,
                                    const SweepOptions& opts);

/// Combines shard results into the SweepReport the single-process sweep
/// would have produced — totals, per-cell aggregates and fingerprint are
/// bit-identical for any shard count and any per-shard worker count.
/// Shards may arrive in any order but must come from the same sweep
/// (equal seed/grid/policy identity) and tile [0, scenario_count)
/// exactly; anything else throws ShardError.
[[nodiscard]] SweepReport merge(std::span<const ShardResult> shards);
/// Owning overload: moves the shards' verdicts into the report instead
/// of copying them — what run_sweep and the CLI use, so a
/// million-scenario sweep never holds its verdicts twice.
[[nodiscard]] SweepReport merge(std::vector<ShardResult>&& shards);

/// Incremental merge: folds shards into the report one at a time, as
/// they load, instead of holding every ShardResult in memory at once —
/// what `sweep_runner --merge` and the coordinator use, so peak memory
/// is the report plus the shards buffered out of order, not the whole
/// sweep twice. Produces the exact report (totals, cells, verdicts and
/// fingerprint bit for bit) the batch merge() overloads produce for the
/// same shards in any arrival order: the FNV-1a fold is sequential in
/// index order, so a shard arriving early is folded immediately and a
/// shard arriving out of order is buffered until the gap before it
/// closes.
///
///   ShardMerger merger;
///   for (auto& file : files) merger.add(load_shard_json(read(file)));
///   SweepReport report = merger.finish();
///
/// add() throws ShardError on identity mismatches and overlapping
/// ranges as they are detected; finish() throws if the accepted shards
/// do not tile [0, scenario_count) exactly. The merger is single-use:
/// after finish() (or a throw from it) construct a fresh one.
class ShardMerger {
 public:
  /// Folds one shard in. The first shard fixes the sweep identity;
  /// later shards must match it (ShardError otherwise, the shard is
  /// not consumed logically — the merger stays usable).
  void add(ShardResult&& shard);

  /// Scenarios folded so far (buffered out-of-order shards included).
  [[nodiscard]] std::uint64_t accepted_scenarios() const {
    return accepted_scenarios_;
  }
  /// Shards buffered waiting for a gap to close.
  [[nodiscard]] std::size_t pending_shards() const { return pending_.size(); }

  /// Validates full coverage and returns the merged report.
  [[nodiscard]] SweepReport finish();

 private:
  void fold(ShardResult&& shard);
  void drain_pending();

  bool have_base_ = false;
  SweepReport report_;           ///< accumulated in index order.
  Fingerprint fp_;
  std::uint64_t expected_begin_ = 0;
  std::uint64_t accepted_scenarios_ = 0;
  std::vector<ShardResult> pending_;  ///< out-of-order arrivals.
};

/// Per-worker reusable execution context: one engine and one sink,
/// re-armed between scenarios, so a sweep pays no per-scenario engine or
/// trace-buffer allocation (the seed design heap-allocated a fresh
/// engine plus a 64K-event recorder for every one of the four runs of
/// every scenario). `opts` is borrowed and must outlive the runner.
/// Verdicts remain pure functions of the spec: run() fully resets the
/// engine, so reuse is observationally identical to a fresh engine.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const SweepOptions& opts);

  /// Runs one scenario to its verdict.
  [[nodiscard]] ScenarioVerdict run(const ScenarioSpec& spec);

 private:
  /// Re-arms the engine for one run over `horizon` and registers `ts`;
  /// `faulty` (if set) gets `extra` added to the cost of its job 0.
  void arm(const sched::TaskSet& ts, Duration horizon,
           std::optional<sched::TaskId> faulty = {},
           Duration extra = Duration::zero());
  [[nodiscard]] std::int64_t total_misses() const;
  /// The multicore stage (cells with cores > 1): places the set with
  /// each requested partitioner, kills the busiest core at the
  /// configured horizon fraction, and fills the ff_*/fa_* verdict
  /// fields. Verdicts come from engine statistics, so the stage is
  /// independent of sink dispatch and cost-spec representation.
  void run_multicore(const ScenarioSpec& spec, const sched::TaskSet& ts,
                     Duration horizon, ScenarioVerdict& v);

  const SweepOptions& opts_;
  rt::Engine engine_;
  trace::CountingSink counting_;
  trace::Recorder full_;  ///< used only when opts.full_traces.
  std::vector<rt::TaskHandle> handles_;
  Duration stop_poll_latency_;  ///< current scenario's §4.1 poll delay.
  multicore::MultiEngine fleet_;  ///< pooled; armed in multicore cells only.
  multicore::FirstFitDecreasing first_fit_;
  multicore::FaultAware fault_aware_;
};

/// Runs one scenario to its verdict (pure; callable from any thread).
/// One-shot convenience over ScenarioRunner.
[[nodiscard]] ScenarioVerdict run_scenario(const ScenarioSpec& spec,
                                           const SweepOptions& opts);

/// Fans `opts.scenario_count` scenarios across `opts.workers` threads and
/// aggregates. Deterministic for fixed options (minus elapsed_seconds).
/// A thin wrapper: plan -> run_shard of the one full-range shard ->
/// merge, so every caller exercises the same code path a distributed
/// sweep does.
[[nodiscard]] SweepReport run_sweep(const SweepOptions& opts);

}  // namespace rtft::sweep
