// Scenario generation for batch sweeps.
//
// Promoted from the test-suite's random task-set helper so that tests,
// benchmarks and the sweep engine all draw task systems from one place:
// UUniFast utilizations, log-uniform periods, deadline-monotonic
// priorities (see common/random.hpp for the underlying generator).
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "sched/task.hpp"

namespace rtft::sweep {

/// Builds a TaskSet from random parameters with deadline-monotonic
/// priorities (unique, descending from the RTSJ max). Task names are
/// "t0", "t1", ... in generation order.
[[nodiscard]] sched::TaskSet make_random_task_set(Rng& rng,
                                                  const RandomTaskSetSpec& spec);

/// One-shot convenience: a fresh Rng seeded with `seed`, then
/// make_random_task_set. Identical seed + spec => identical set.
[[nodiscard]] sched::TaskSet make_seeded_task_set(std::uint64_t seed,
                                                  const RandomTaskSetSpec& spec);

/// Derives the per-scenario seed for scenario `index` of a sweep keyed by
/// `base_seed`. SplitMix64-style mixing: changing either input decorrelates
/// every generated task set, and the mapping is stable across platforms,
/// worker counts and scheduling order.
[[nodiscard]] std::uint64_t scenario_seed(std::uint64_t base_seed,
                                          std::uint64_t index);

}  // namespace rtft::sweep
