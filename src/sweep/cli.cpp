#include "sweep/cli.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "common/assert.hpp"
#include "common/strings.hpp"
#include "core/treatment.hpp"
#include "sched/priority.hpp"
#include "sweep/export.hpp"
#include "sweep/progress.hpp"

namespace rtft::sweep::cli {

namespace {

/// Largest microsecond count whose Duration::us conversion cannot
/// overflow the nanosecond representation.
constexpr std::uint64_t kMaxUs = static_cast<std::uint64_t>(
    std::numeric_limits<std::int64_t>::max() / 1000);

/// Generated task sets take unique DM priorities from the RTSJ range.
constexpr std::uint64_t kMaxTasks =
    static_cast<std::uint64_t>(sched::kMaxRtPriority - sched::kMinRtPriority) +
    1;

[[noreturn]] void bad_value(const char* flag, std::string_view value,
                            const std::string& reason) {
  throw ArgError(std::string(flag) + " " + reason + " (got '" +
                 std::string(value) + "')");
}

/// Appends "--flag v1,v2,..." for a list-valued flag.
template <typename Range, typename Renderer>
void push_list_flag(std::vector<std::string>& argv, const char* flag,
                    const Range& values, Renderer&& render) {
  argv.emplace_back(flag);
  std::string joined;
  for (const auto& v : values) {
    if (!joined.empty()) joined += ',';
    render(joined, v);
  }
  argv.push_back(std::move(joined));
}

}  // namespace

std::uint64_t parse_u64(const char* flag, std::string_view value,
                        std::uint64_t min, std::uint64_t max) {
  std::int64_t parsed = 0;
  if (!parse_int64(value, parsed) || parsed < 0) {
    bad_value(flag, value,
              "expects an unsigned decimal integer within the 64-bit "
              "signed range");
  }
  const std::uint64_t v = static_cast<std::uint64_t>(parsed);
  if (v < min || v > max) {
    bad_value(flag, value,
              "must be in [" + std::to_string(min) + ", " +
                  std::to_string(max) + "]");
  }
  return v;
}

double parse_positive_double(const char* flag, std::string_view value) {
  double parsed = 0.0;
  if (!parse_double(value, parsed) || !std::isfinite(parsed) ||
      parsed <= 0.0) {
    bad_value(flag, value, "expects a finite number > 0");
  }
  return parsed;
}

ShardRequest parse_shard_request(std::string_view value) {
  const auto parts = split(value, '/');
  std::int64_t index = 0;
  std::int64_t count = 0;
  if (parts.size() != 2 || !parse_int64(parts[0], index) ||
      !parse_int64(parts[1], count) || index < 0 || count < 0) {
    bad_value("--shard", value,
              "expects I/N, two unsigned decimal integers within the "
              "64-bit signed range");
  }
  if (count == 0) bad_value("--shard", value, "shard count N must be >= 1");
  if (index >= count) {
    bad_value("--shard", value, "shard index I must be below the count N");
  }
  return {static_cast<std::uint64_t>(index),
          static_cast<std::uint64_t>(count)};
}

bool apply_sweep_flag(std::string_view arg,
                      const std::function<std::string()>& value,
                      SweepOptions& opts) {
  if (arg == "--scenarios") {
    opts.scenario_count =
        parse_u64("--scenarios", value(), 1,
                  static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()));
  } else if (arg == "--workers") {
    opts.workers = static_cast<std::size_t>(
        parse_u64("--workers", value(), 0, kMaxWorkers));
  } else if (arg == "--seed") {
    opts.base_seed =
        parse_u64("--seed", value(), 0,
                  static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()));
  } else if (arg == "--tasks") {
    const std::string v = value();  // keep alive: split returns views.
    opts.grid.task_counts.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.task_counts.push_back(
          static_cast<std::size_t>(parse_u64("--tasks", p, 1, kMaxTasks)));
    }
  } else if (arg == "--util") {
    const std::string v = value();
    opts.grid.utilizations.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.utilizations.push_back(parse_positive_double("--util", p));
    }
  } else if (arg == "--detector-cost-us") {
    const std::string v = value();
    opts.grid.detector_costs.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.detector_costs.push_back(Duration::us(static_cast<std::int64_t>(
          parse_u64("--detector-cost-us", p, 0, kMaxUs))));
    }
  } else if (arg == "--stop-latency-us") {
    const std::string v = value();
    opts.grid.stop_poll_latencies.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.stop_poll_latencies.push_back(Duration::us(
          static_cast<std::int64_t>(parse_u64("--stop-latency-us", p, 0,
                                              kMaxUs))));
    }
  } else if (arg == "--cores") {
    const std::string v = value();
    opts.grid.core_counts.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.core_counts.push_back(
          static_cast<std::size_t>(parse_u64("--cores", p, 1, 64)));
    }
  } else if (arg == "--quantum-us") {
    const std::string v = value();
    opts.grid.quantizer_resolutions.clear();
    for (const std::string_view p : split(v, ',')) {
      opts.grid.quantizer_resolutions.push_back(Duration::us(
          static_cast<std::int64_t>(parse_u64("--quantum-us", p, 1, kMaxUs))));
    }
  } else if (arg == "--partitioner") {
    const std::string v = value();
    try {
      opts.partitioner = partitioner_mode_from_string(v);
    } catch (const std::exception&) {
      bad_value("--partitioner", v,
                "expects 'both', 'first-fit' or 'fault-aware'");
    }
  } else if (arg == "--core-fault") {
    const std::string v = value();
    double fraction = 0.0;
    if (!parse_double(v, fraction) || !std::isfinite(fraction) ||
        fraction < 0.0 || fraction > 1.0) {
      bad_value("--core-fault", v,
                "expects a horizon fraction in [0, 1] (0 disables the "
                "fault)");
    }
    opts.core_fault_fraction = fraction;
  } else if (arg == "--policy") {
    const std::string v = value();
    try {
      opts.detector_policy = core::treatment_policy_from_string(v);
    } catch (const std::exception&) {
      bad_value("--policy", v, "names no known treatment policy");
    }
  } else if (arg == "--event-queue") {
    const std::string v = value();
    if (v == "wheel") {
      opts.event_queue = rt::EventQueueMode::kTimingWheel;
    } else if (v == "heap") {
      opts.event_queue = rt::EventQueueMode::kPooledHeap;
    } else {
      bad_value("--event-queue", v, "expects 'wheel' or 'heap'");
    }
  } else if (arg == "--sink-mode") {
    const std::string v = value();
    if (v == "static") {
      opts.sink_dispatch = SinkDispatch::kStatic;
    } else if (v == "virtual") {
      opts.sink_dispatch = SinkDispatch::kVirtual;
    } else {
      bad_value("--sink-mode", v, "expects 'static' or 'virtual'");
    }
  } else if (arg == "--cost-spec") {
    const std::string v = value();
    if (v == "flat") {
      opts.cost_spec = CostSpecMode::kFlat;
    } else if (v == "function") {
      opts.cost_spec = CostSpecMode::kFunction;
    } else {
      bad_value("--cost-spec", v, "expects 'flat' or 'function'");
    }
  } else if (arg == "--horizon-periods") {
    opts.horizon_periods = static_cast<std::int64_t>(
        parse_u64("--horizon-periods", value(), 1, kMaxHorizonPeriods));
  } else if (arg == "--full-traces") {
    opts.full_traces = true;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> worker_argv(const std::string& runner,
                                     const SweepOptions& opts,
                                     const ShardSpec& shard,
                                     const std::string& emit_path) {
  RTFT_EXPECTS(!runner.empty(), "worker argv needs a runner binary path");
  // Everything that defines the scenario population must survive the
  // trip through the runner's flags, or the worker computes a different
  // sweep and the merge rejects its shard. Fields the CLI cannot
  // express must therefore sit at their defaults.
  const SweepOptions defaults;
  RTFT_EXPECTS(opts.allowance_granularity == defaults.allowance_granularity,
               "the runner CLI cannot express a non-default allowance "
               "granularity");
  RTFT_EXPECTS(opts.grid.deadline_min_factor ==
                       defaults.grid.deadline_min_factor &&
                   opts.grid.deadline_max_factor ==
                       defaults.grid.deadline_max_factor,
               "the runner CLI cannot express non-default deadline factors");
  RTFT_EXPECTS(opts.grid.min_period == defaults.grid.min_period &&
                   opts.grid.max_period == defaults.grid.max_period,
               "the runner CLI cannot express a non-default period range");
  RTFT_EXPECTS(opts.base_seed <=
                   static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max()),
               "the runner CLI parses seeds as signed 64-bit integers");
  for (const Duration c : opts.grid.detector_costs) {
    RTFT_EXPECTS(c.count() % 1000 == 0,
                 "the runner CLI expresses detector costs in whole "
                 "microseconds");
  }
  for (const Duration l : opts.grid.stop_poll_latencies) {
    RTFT_EXPECTS(l.count() % 1000 == 0,
                 "the runner CLI expresses stop latencies in whole "
                 "microseconds");
  }
  for (const Duration q : opts.grid.quantizer_resolutions) {
    RTFT_EXPECTS(q.count() % 1000 == 0,
                 "the runner CLI expresses quantizer resolutions in whole "
                 "microseconds");
  }

  std::vector<std::string> argv;
  argv.reserve(32);
  argv.push_back(runner);
  argv.emplace_back("--scenarios");
  argv.push_back(std::to_string(opts.scenario_count));
  argv.emplace_back("--workers");
  argv.push_back(std::to_string(opts.workers));
  argv.emplace_back("--seed");
  argv.push_back(std::to_string(opts.base_seed));
  push_list_flag(argv, "--tasks", opts.grid.task_counts,
                 [](std::string& out, std::size_t n) {
                   out += std::to_string(n);
                 });
  push_list_flag(argv, "--util", opts.grid.utilizations,
                 [](std::string& out, double u) {
                   // %.17g: bit-exact through the worker's parse_double.
                   detail::append_double(out, u);
                 });
  push_list_flag(argv, "--detector-cost-us", opts.grid.detector_costs,
                 [](std::string& out, Duration c) {
                   out += std::to_string(c.count() / 1000);
                 });
  push_list_flag(argv, "--stop-latency-us", opts.grid.stop_poll_latencies,
                 [](std::string& out, Duration l) {
                   out += std::to_string(l.count() / 1000);
                 });
  push_list_flag(argv, "--cores", opts.grid.core_counts,
                 [](std::string& out, std::size_t m) {
                   out += std::to_string(m);
                 });
  push_list_flag(argv, "--quantum-us", opts.grid.quantizer_resolutions,
                 [](std::string& out, Duration q) {
                   out += std::to_string(q.count() / 1000);
                 });
  argv.emplace_back("--partitioner");
  argv.emplace_back(to_string(opts.partitioner));
  argv.emplace_back("--core-fault");
  {
    std::string fraction;
    detail::append_double(fraction, opts.core_fault_fraction);
    argv.push_back(std::move(fraction));
  }
  argv.emplace_back("--policy");
  argv.emplace_back(core::to_string(opts.detector_policy));
  argv.emplace_back("--event-queue");
  argv.emplace_back(
      opts.event_queue == rt::EventQueueMode::kTimingWheel ? "wheel" : "heap");
  argv.emplace_back("--sink-mode");
  argv.emplace_back(
      opts.sink_dispatch == SinkDispatch::kStatic ? "static" : "virtual");
  argv.emplace_back("--cost-spec");
  argv.emplace_back(
      opts.cost_spec == CostSpecMode::kFlat ? "flat" : "function");
  argv.emplace_back("--horizon-periods");
  argv.push_back(std::to_string(opts.horizon_periods));
  if (opts.full_traces) argv.emplace_back("--full-traces");
  argv.emplace_back("--shard");
  argv.push_back(std::to_string(shard.index) + "/" +
                 std::to_string(shard.shards));
  argv.emplace_back("--emit-shard");
  argv.push_back(emit_path);
  argv.emplace_back("--progress");
  return argv;
}

std::function<void(std::uint64_t, std::uint64_t)> stderr_progress_printer() {
  struct State {
    bool have = false;
    std::uint64_t printed = 0;
  };
  auto state = std::make_shared<State>();
  const bool tty = ::isatty(::fileno(stderr)) != 0;
  return [state, tty](std::uint64_t done, std::uint64_t total) {
    const std::uint64_t step = total < 100 ? 1 : total / 100;
    if (state->have && done == state->printed) return;
    // Throttle forward motion to ~1% steps; the final value and any
    // backward jump (a coordinator aggregate that lost a worker's
    // in-flight attempt) always print.
    if (state->have && done > state->printed && done != total &&
        done < state->printed + step) {
      return;
    }
    state->have = true;
    state->printed = done;
    if (tty) {
      std::fprintf(stderr, "\r%llu/%llu scenarios (%3.0f%%)",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total),
                   100.0 * static_cast<double>(done) /
                       static_cast<double>(total == 0 ? 1 : total));
      if (done == total) std::fputc('\n', stderr);
    } else {
      const std::string line = progress_line({done, total});
      std::fwrite(line.data(), 1, line.size(), stderr);
    }
  };
}

}  // namespace rtft::sweep::cli
