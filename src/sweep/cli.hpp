// The sweep CLI surface as a library: the mapping between command-line
// flags and SweepOptions, its inverse (the argv a coordinator hands a
// worker process), and the bounds every scalar flag is checked against.
//
// The coordinator spawns `sweep_runner --shard i/n --emit-shard ...`
// workers, so the flag->options mapping and the options->argv mapping
// must never drift apart; keeping both in this one module (and
// round-tripping them in tests) is what prevents that. The executables
// in examples/ are thin wrappers over these helpers.
//
// Every parser here rejects bad input with ArgError carrying a complete
// one-line message — non-numeric text, out-of-range values, overflow,
// malformed I/N shard requests — instead of silently misbehaving; the
// CLIs print the message verbatim and exit 2.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/sweep.hpp"

namespace rtft::sweep::cli {

/// Thrown on an invalid or out-of-range argument value. what() is a
/// complete one-line explanation naming the flag and the offending
/// value; the CLIs print it as "error: <what>" and exit 2.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard caps on the scalar flags. Far above any sensible run, low
/// enough that a typo (or an overflowed computation upstream) fails
/// loudly instead of spawning a million threads or looping for years.
inline constexpr std::uint64_t kMaxWorkers = 4096;
inline constexpr std::uint64_t kMaxHorizonPeriods = 100000;

/// Parses an unsigned decimal integer in [min, max]; rejects sign
/// characters, garbage, overflow and out-of-range values with ArgError
/// naming `flag`.
[[nodiscard]] std::uint64_t parse_u64(const char* flag,
                                      std::string_view value,
                                      std::uint64_t min, std::uint64_t max);

/// Parses a finite double > 0 (utilizations); ArgError otherwise.
[[nodiscard]] double parse_positive_double(const char* flag,
                                           std::string_view value);

/// A validated `--shard I/N` request.
struct ShardRequest {
  std::uint64_t index = 0;
  std::uint64_t count = 1;
};

/// Parses "I/N". Rejects non-numeric input, N == 0, I >= N and
/// overflow, each with its own one-line ArgError.
[[nodiscard]] ShardRequest parse_shard_request(std::string_view value);

/// Applies one sweep-defining flag (--scenarios, --workers, --seed,
/// --tasks, --util, --detector-cost-us, --stop-latency-us, --cores,
/// --quantum-us, --partitioner, --core-fault, --policy,
/// --event-queue, --sink-mode, --cost-spec, --horizon-periods,
/// --full-traces) to `opts`. Returns
/// false when `arg` is none of these — the caller handles its own
/// flags; throws ArgError on a bad value. `value` supplies the flag's
/// argument and is called at most once.
bool apply_sweep_flag(std::string_view arg,
                      const std::function<std::string()>& value,
                      SweepOptions& opts);

/// The argv for one worker process running `shard` of the sweep `opts`
/// describes: runner path, then the exact inverse of apply_sweep_flag,
/// then `--shard i/n --emit-shard emit_path --progress`. Re-parsing the
/// result reproduces the scenario identity bit for bit (doubles travel
/// as %.17g). Throws ContractViolation when `opts` holds
/// identity-relevant fields the runner CLI cannot express: a
/// non-default allowance granularity, deadline-factor or period range,
/// sub-microsecond detector costs or stop latencies, or a seed above
/// the CLI's signed-integer range.
[[nodiscard]] std::vector<std::string> worker_argv(
    const std::string& runner, const SweepOptions& opts,
    const ShardSpec& shard, const std::string& emit_path);

/// A ready-made progress callback printing to stderr: the '\r'-in-place
/// human line on a terminal, machine `progress_line`s (progress.hpp) on
/// a pipe — which is how a worker's stream becomes parseable to the
/// coordinator while staying readable to a human. Updates are throttled
/// to ~1% steps (the total and any backward jump always print, so a
/// coordinator-level aggregate that regresses after a lost worker stays
/// honest). The returned callback is not thread-safe; run_shard
/// serializes on_progress invocations, which is exactly the guarantee
/// it relies on.
[[nodiscard]] std::function<void(std::uint64_t, std::uint64_t)>
stderr_progress_printer();

}  // namespace rtft::sweep::cli
