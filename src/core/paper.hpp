// Canonical reconstructions of the paper's experimental setups, shared by
// the test suite, the bench harnesses and the examples. See DESIGN.md §3
// for how the unstated parameters (release window, overrun magnitude)
// were pinned down from the narration.
#pragma once

#include "core/ft_system.hpp"
#include "runtime/quantize.hpp"
#include "sched/task.hpp"

namespace rtft::core::paper {

/// Table 1 (§2.2 / Figure 1): τ1(P20 D6 T6 C3), τ2(P15 D2 T4 C2), in ms.
/// U = 1 exactly; τ2's worst response (6 ms) is at its second job.
[[nodiscard]] sched::TaskSet table1_system();

/// Table 2 (§6): τ1(P20 T200 D70 C29), τ2(P18 T250 D120 C29),
/// τ3(P16 T1500 D120 C29), in ms. WCRTs 29/58/87, A = 11, B = 33.
/// `tau3_offset` shifts τ3's first release (the figures need 1000 ms).
[[nodiscard]] sched::TaskSet table2_system(
    Duration tau3_offset = Duration::zero());

/// The window all five figures observe: τ1's job released at 1000 ms,
/// coincident with a τ2 and (offset) τ3 release.
inline constexpr Duration kWindowStart = Duration::ms(1000);
/// Index of τ1's faulty job (released at kWindowStart).
inline constexpr std::int64_t kFaultyJobIndex = 5;
/// Injected overrun: +40 ms (see DESIGN.md — the narration bounds it to
/// (33, 41] and Figure 7 pins it at 40).
inline constexpr Duration kDefaultOverrun = Duration::ms(40);
/// Horizon of the figure runs.
inline constexpr Duration kFigureHorizon = Duration::ms(2000);

/// One ready-to-run figure experiment.
struct Scenario {
  FtSystemConfig config;
  FaultPlan faults;
};

/// Builds the Figures 3–7 experiment for the given policy:
///   Figure 3 — kNoDetection        Figure 4 — kDetectOnly
///   Figure 5 — kInstantStop        Figure 6 — kEquitableAllowance
///   Figure 7 — kSystemAllowance
[[nodiscard]] Scenario figures_scenario(
    TreatmentPolicy policy, Duration overrun = kDefaultOverrun,
    rt::Quantizer quantizer = rt::jrate_quantizer());

}  // namespace rtft::core::paper
