// Fault treatments (paper §4).
//
// The paper compares three ways of handling a detected WCRT overrun, plus
// the two experimental baselines of §6:
//
//   kNoDetection        — Figure 3: nothing installed.
//   kDetectOnly         — Figure 4: detectors report, nobody acts.
//   kInstantStop        — Figure 5 / §4.1: stop at the nominal WCRT.
//                         "very pessimistic" — a fault may be harmless.
//   kEquitableAllowance — Figure 6 / §4.2: every task is granted the same
//                         allowance A (the largest value addable to all
//                         costs keeping the system feasible); stop at the
//                         WCRT recomputed with inflated costs (Table 3).
//   kSystemAllowance    — Figure 7 / §4.3: the whole spare budget B goes
//                         to the first faulty task; stop thresholds are
//                         WCRTi + B, which automatically hands any
//                         unconsumed remainder to later faulty tasks.
#pragma once

#include <string_view>
#include <vector>

#include "sched/allowance.hpp"
#include "sched/task.hpp"

namespace rtft::core {

enum class TreatmentPolicy {
  kNoDetection,
  kDetectOnly,
  kInstantStop,
  kEquitableAllowance,
  kSystemAllowance,
  /// Extension (not in the paper): system allowance with *sound* stop
  /// thresholds — each task's WCRT recomputed with the beneficiary's
  /// cost inflated by B instead of the paper's WCRTi + B shift. The
  /// paper's shift under-estimates inherited lateness when the extended
  /// window catches extra higher-priority releases and can then stop a
  /// non-faulty task; the sound variant provably never does. Both agree
  /// on the paper's Table 2 system.
  kSystemAllowanceSound,
};

/// Stable identifier ("no-detection", "instant-stop", ...) for configs,
/// logs and reports.
[[nodiscard]] std::string_view to_string(TreatmentPolicy policy);
/// Inverse of to_string; throws ContractViolation for unknown names.
[[nodiscard]] TreatmentPolicy treatment_policy_from_string(
    std::string_view name);

/// Everything the runtime needs to enact a policy on a task set.
struct TreatmentPlan {
  TreatmentPolicy policy = TreatmentPolicy::kNoDetection;
  /// Whether detectors are installed at all.
  bool detects = false;
  /// Whether a detected fault stops the task.
  bool stops = false;
  /// Raw per-task stop/detection thresholds (TaskId order); empty for
  /// kNoDetection.
  std::vector<Duration> thresholds;
  /// Nominal WCRTs (TaskId order), for reporting.
  std::vector<Duration> nominal_wcrt;
  /// The allowance behind the thresholds: A for kEquitableAllowance,
  /// B for kSystemAllowance, zero otherwise.
  Duration allowance;
};

/// Computes the plan for `policy` on `ts`. The task set must be feasible
/// for the threshold-bearing policies (throws ContractViolation
/// otherwise, since thresholds would be meaningless).
[[nodiscard]] TreatmentPlan make_treatment_plan(
    const sched::TaskSet& ts, TreatmentPolicy policy,
    const sched::AllowanceOptions& opts = {});

/// Like make_treatment_plan, but degrades to a detection-less plan (the
/// policy is kept for reporting) instead of throwing when the set is
/// infeasible. `feasible` is the caller's already-computed feasibility
/// verdict for `ts` — both FaultTolerantSystem and the sweep have it in
/// hand, and sharing the rule here keeps their degradation identical.
[[nodiscard]] TreatmentPlan make_treatment_plan_or_degrade(
    const sched::TaskSet& ts, TreatmentPolicy policy, bool feasible,
    const sched::AllowanceOptions& opts = {});

}  // namespace rtft::core
