// Runtime polling server: aperiodic jobs on top of the periodic engine —
// the execution side of the paper's §7 aperiodic future work.
//
// The server is an ordinary periodic task on the Engine (so admission
// control, priorities and WCRT-overrun detectors all apply to it
// unchanged). At each release ("poll") it serves the queue FIFO for at
// most its budget; budget is not preserved across polls (the defining
// property of a polling server: if the queue is empty at the poll, the
// capacity is lost).
//
// Aperiodic completions are attributed to the end of the server job that
// finished serving them — a conservative placement consistent with the
// analysis bound in sched/aperiodic.hpp.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "sched/task.hpp"

namespace rtft::core {

/// Identifier of a submitted aperiodic job (submission order).
using AperiodicId = std::size_t;

/// Outcome of one aperiodic job.
struct AperiodicJobReport {
  std::string name;
  Instant arrival;
  Duration cost;
  std::optional<Duration> relative_deadline;  ///< soft; miss is recorded.
  std::optional<Instant> completion;
  bool deadline_missed = false;

  [[nodiscard]] std::optional<Duration> response() const {
    if (!completion) return std::nullopt;
    return *completion - arrival;
  }
};

class PollingServer {
 public:
  /// Registers the server task on the engine. `server_params.cost` is
  /// the per-period budget; priority/period/deadline are the server's
  /// periodic parameters (admit them like any task).
  PollingServer(rt::Engine& engine, const sched::TaskParams& server_params);

  PollingServer(const PollingServer&) = delete;
  PollingServer& operator=(const PollingServer&) = delete;

  /// Queues an aperiodic job at the current engine time.
  AperiodicId submit(std::string name, Duration cost,
                     std::optional<Duration> relative_deadline = {});

  /// Engine handle of the underlying server task (for detectors).
  [[nodiscard]] rt::TaskHandle task() const { return task_; }

  [[nodiscard]] std::size_t submitted() const { return jobs_.size(); }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t pending() const {
    return jobs_.size() - completed_;
  }
  [[nodiscard]] const AperiodicJobReport& report(AperiodicId id) const;
  [[nodiscard]] const std::vector<AperiodicJobReport>& reports() const {
    return jobs_;
  }

 private:
  /// Budget the poll released at job `index` should consume.
  Duration planned_service(std::int64_t job_index);
  /// Attributes `served` of FIFO service at server-job end.
  void on_served(rt::Engine& engine, std::int64_t job_index);

  rt::Engine& engine_;
  Duration budget_;
  rt::TaskHandle task_ = 0;

  std::vector<AperiodicJobReport> jobs_;
  std::deque<AperiodicId> queue_;       ///< ids with unserved work.
  Duration head_served_;                ///< service already given to head.
  std::size_t completed_ = 0;
  /// Service amount decided at each poll (job index -> amount), consumed
  /// by on_served.
  std::vector<Duration> poll_plan_;
};

}  // namespace rtft::core
