#include "core/ft_system.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rtft::core {

FaultTolerantSystem::FaultTolerantSystem(FtSystemConfig config,
                                         FaultPlan faults)
    : config_(std::move(config)), faults_(std::move(faults)) {
  RTFT_EXPECTS(!config_.tasks.empty(), "a system needs at least one task");
  RTFT_EXPECTS(config_.horizon.is_positive(), "horizon must be positive");
  faults_.validate_against(config_.tasks);
}

RunReport FaultTolerantSystem::run() {
  RTFT_EXPECTS(!ran_, "a FaultTolerantSystem runs exactly once");
  ran_ = true;

  RunReport report;
  report.feasibility = sched::analyze(config_.tasks, config_.allowance.rta);
  report.admitted = report.feasibility.feasible;
  report.plan = make_treatment_plan_or_detect_only();

  if (!report.admitted && !config_.run_infeasible) {
    // Admission control refuses the system (paper §2: never start a
    // system that is not theoretically feasible).
    for (sched::TaskId i = 0; i < config_.tasks.size(); ++i) {
      TaskRunReport tr;
      tr.name = config_.tasks[i].name;
      report.tasks.push_back(std::move(tr));
    }
    return report;
  }

  rt::EngineOptions engine_opts;
  engine_opts.horizon = Instant::epoch() + config_.horizon;
  engine_opts.stop_poll_latency = config_.stop_poll_latency;
  engine_opts.context_switch_cost = config_.context_switch_cost;
  if (config_.sink != nullptr) {
    engine_opts.sink = config_.sink;
  } else {
    owned_recorder_ = std::make_unique<trace::Recorder>();
    engine_opts.sink = owned_recorder_.get();
  }
  engine_ = std::make_unique<rt::Engine>(engine_opts);

  std::vector<rt::TaskHandle> handles;
  handles.reserve(config_.tasks.size());
  for (sched::TaskId i = 0; i < config_.tasks.size(); ++i) {
    handles.push_back(engine_->add_task(
        config_.tasks[i], faults_.cost_spec_for(config_.tasks, i)));
  }

  if (report.plan.detects) {
    DetectorBank::FaultHandler handler;
    if (report.plan.stops) {
      const rt::StopMode mode = config_.stop_mode;
      handler = [mode](rt::Engine& e, rt::TaskHandle task, std::int64_t) {
        e.request_stop(task, mode);
      };
    }
    detectors_ = std::make_unique<DetectorBank>(
        *engine_, handles, report.plan.thresholds, config_.detector,
        std::move(handler));
  }

  engine_->run();
  report.executed = true;

  for (std::size_t i = 0; i < handles.size(); ++i) {
    TaskRunReport tr;
    tr.name = config_.tasks[i].name;
    tr.stats = engine_->stats(handles[i]);
    if (detectors_) {
      tr.threshold = detectors_->raw_threshold(i);
      tr.quantized_threshold = detectors_->quantized_threshold(i);
      tr.faults_detected = detectors_->faults_detected(i);
    }
    report.tasks.push_back(std::move(tr));
  }
  return report;
}

TreatmentPlan FaultTolerantSystem::make_treatment_plan_or_detect_only() {
  // Threshold-bearing policies require feasibility; when the system is
  // infeasible the plan degrades to "no detection" so the report can
  // still describe the refused run. (`||` keeps the kNoDetection path
  // from paying the feasibility analysis.)
  const bool feasible =
      config_.policy == TreatmentPolicy::kNoDetection ||
      sched::is_feasible(config_.tasks, config_.allowance.rta);
  return make_treatment_plan_or_degrade(config_.tasks, config_.policy,
                                        feasible, config_.allowance);
}

const rt::Engine& FaultTolerantSystem::engine() const {
  RTFT_EXPECTS(engine_ != nullptr, "run() has not executed the system");
  return *engine_;
}

const trace::Recorder& FaultTolerantSystem::recorder() const {
  RTFT_EXPECTS(owned_recorder_ != nullptr,
               config_.sink != nullptr
                   ? "recorder(): events went to the configured sink"
                   : "recorder(): run() has not executed the system");
  return *owned_recorder_;
}

std::int64_t RunReport::total_misses() const {
  std::int64_t total = 0;
  for (const TaskRunReport& t : tasks) total += t.stats.missed;
  return total;
}

std::vector<std::string> RunReport::missing_tasks() const {
  std::vector<std::string> out;
  for (const TaskRunReport& t : tasks) {
    if (t.stats.missed > 0) out.push_back(t.name);
  }
  return out;
}

std::string RunReport::summary() const {
  std::ostringstream out;
  out << "policy: " << to_string(plan.policy) << '\n';
  out << "admitted: " << (admitted ? "yes" : "no")
      << "  executed: " << (executed ? "yes" : "no") << '\n';
  if (plan.allowance.is_positive()) {
    out << "allowance: " << rtft::to_string(plan.allowance) << '\n';
  }
  for (const TaskRunReport& t : tasks) {
    out << "  " << pad_right(t.name, 12) << " released=" << t.stats.released
        << " completed=" << t.stats.completed << " missed=" << t.stats.missed
        << " aborted=" << t.stats.aborted
        << (t.stats.stopped ? " STOPPED" : "");
    if (t.quantized_threshold) {
      out << " threshold=" << rtft::to_string(*t.quantized_threshold);
    }
    if (t.faults_detected > 0) out << " faults=" << t.faults_detected;
    out << '\n';
  }
  return out.str();
}

}  // namespace rtft::core
