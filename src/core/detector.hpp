// Temporal-fault detectors (paper §3).
//
// "A worst case response time overrun implies a cost overrun. … a detector
// can be a periodic task, with a period equal to the task period and with
// an offset equal to the task worst case response time." Each detector is
// a periodic timer that checks, at (release of job k) + threshold, whether
// job k has completed; if not, the watched task is faulty and the
// installed handler (the treatment) runs.
//
// The threshold passed in is the raw analysis value (nominal WCRT, or an
// allowance-augmented variant); the DetectorConfig's quantizer models the
// jRate timer-resolution rounding (§6.2) that made the paper's detectors
// fire at 30/60/90 ms instead of 29/58/87 ms.
#pragma once

#include <functional>
#include <vector>

#include "common/time.hpp"
#include "runtime/engine.hpp"
#include "runtime/quantize.hpp"

namespace rtft::core {

/// Detector installation parameters.
struct DetectorConfig {
  /// Rounding applied to thresholds (paper default: 10 ms, nearest).
  rt::Quantizer quantizer = rt::jrate_quantizer();
  /// CPU overhead charged at each detector release — §6.2 estimates it as
  /// one preemption plus an unbounded flag test; default free.
  Duration fire_cost = Duration::zero();
};

/// One periodic detector per watched task.
class DetectorBank {
 public:
  /// Called when a detector finds its watched job unfinished.
  using FaultHandler =
      std::function<void(rt::Engine&, rt::TaskHandle, std::int64_t job)>;

  /// Installs detectors into `engine` for `tasks[i]` with raw threshold
  /// `thresholds[i]`. `handler` may be empty (detection only).
  /// The DetectorBank must outlive the engine run.
  ///
  /// May be constructed while the engine is mid-run (dynamic admission,
  /// the paper's §7 future work): watching starts at the first job whose
  /// watch date (release + threshold) still lies in the future; earlier
  /// jobs go unwatched.
  DetectorBank(rt::Engine& engine, std::vector<rt::TaskHandle> tasks,
               std::vector<Duration> thresholds, DetectorConfig config,
               FaultHandler handler);

  DetectorBank(const DetectorBank&) = delete;
  DetectorBank& operator=(const DetectorBank&) = delete;

  /// Cancels every detector in the bank (used when thresholds are
  /// re-computed after a dynamic admission and a new bank takes over).
  void cancel(rt::Engine& engine);

  /// The quantized threshold actually armed for watched task `i`.
  [[nodiscard]] Duration quantized_threshold(std::size_t i) const;
  /// The raw (analysis) threshold for watched task `i`.
  [[nodiscard]] Duration raw_threshold(std::size_t i) const;
  /// Number of faults this bank reported for watched task `i`.
  [[nodiscard]] std::int64_t faults_detected(std::size_t i) const;
  /// Total faults across all watched tasks.
  [[nodiscard]] std::int64_t total_faults() const;

  [[nodiscard]] std::size_t size() const { return watches_.size(); }

 private:
  struct Watch {
    rt::TaskHandle task = 0;
    Duration raw_threshold;
    Duration quantized_threshold;
    rt::TimerHandle timer = 0;
    std::int64_t next_job = 0;   ///< job index the next fire watches.
    std::int64_t faults = 0;
  };

  void on_fire(rt::Engine& engine, std::size_t watch_index);

  DetectorConfig config_;
  FaultHandler handler_;
  std::vector<Watch> watches_;
};

}  // namespace rtft::core
