#include "core/detector.hpp"

#include "common/assert.hpp"
#include "trace/events.hpp"

namespace rtft::core {

DetectorBank::DetectorBank(rt::Engine& engine,
                           std::vector<rt::TaskHandle> tasks,
                           std::vector<Duration> thresholds,
                           DetectorConfig config, FaultHandler handler)
    : config_(config), handler_(std::move(handler)) {
  RTFT_EXPECTS(tasks.size() == thresholds.size(),
               "one threshold per watched task");
  watches_.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    RTFT_EXPECTS(!thresholds[i].is_negative(),
                 "detector thresholds must be non-negative");
    Watch w;
    w.task = tasks[i];
    w.raw_threshold = thresholds[i];
    w.quantized_threshold = config_.quantizer.apply(thresholds[i]);
    const sched::TaskParams& params = engine.params(w.task);
    // First fire watches job 0: its release date plus the threshold.
    Instant first = engine.first_release(w.task) + w.quantized_threshold;
    if (first < engine.now()) {
      // Mid-run arming: skip to the first job whose watch date is still
      // ahead of us.
      const std::int64_t skipped =
          ceil_div(engine.now() - first, params.period);
      first = first + params.period * skipped;
      w.next_job = skipped;
    }
    const std::size_t watch_index = watches_.size();
    w.timer = engine.add_periodic_timer(
        first, params.period,
        [this, watch_index](rt::Engine& e) { on_fire(e, watch_index); });
    watches_.push_back(w);
  }
}

void DetectorBank::cancel(rt::Engine& engine) {
  for (const Watch& w : watches_) engine.cancel_timer(w.timer);
}

void DetectorBank::on_fire(rt::Engine& engine, std::size_t watch_index) {
  Watch& w = watches_[watch_index];
  // A stopped task releases no further jobs; its detector retires too
  // (the paper's detector dies with its thread).
  if (engine.stats(w.task).stopped) {
    engine.cancel_timer(w.timer);
    return;
  }
  const std::int64_t job = w.next_job++;
  engine.sink().record(engine.now(), trace::EventKind::kDetectorFire,
                       static_cast<std::uint32_t>(w.task), job, 0);
  if (config_.fire_cost.is_positive()) {
    engine.inject_overhead(config_.fire_cost);
  }
  if (!engine.job_completed(w.task, job)) {
    w.faults++;
    engine.sink().record(engine.now(), trace::EventKind::kFaultDetected,
                         static_cast<std::uint32_t>(w.task), job, 0);
    if (handler_) handler_(engine, w.task, job);
  }
}

Duration DetectorBank::quantized_threshold(std::size_t i) const {
  RTFT_EXPECTS(i < watches_.size(), "watch index out of range");
  return watches_[i].quantized_threshold;
}

Duration DetectorBank::raw_threshold(std::size_t i) const {
  RTFT_EXPECTS(i < watches_.size(), "watch index out of range");
  return watches_[i].raw_threshold;
}

std::int64_t DetectorBank::faults_detected(std::size_t i) const {
  RTFT_EXPECTS(i < watches_.size(), "watch index out of range");
  return watches_[i].faults;
}

std::int64_t DetectorBank::total_faults() const {
  std::int64_t total = 0;
  for (const Watch& w : watches_) total += w.faults;
  return total;
}

}  // namespace rtft::core
