#include "core/underrun.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"
#include "sched/allowance.hpp"

namespace rtft::core {

UnderrunReport analyze_underruns(const sched::TaskSet& ts,
                                 const trace::Recorder& recorder,
                                 const std::vector<Duration>& wcrt) {
  RTFT_EXPECTS(wcrt.size() == ts.size(), "one WCRT bound per task");
  UnderrunReport report;
  report.tasks.resize(ts.size());
  for (sched::TaskId i = 0; i < ts.size(); ++i) {
    TaskUnderrun& t = report.tasks[i];
    t.name = ts[i].name;
    t.declared_cost = ts[i].cost;
    t.wcrt_bound = wcrt[i];
  }
  for (const trace::TraceEvent& e : recorder.events()) {
    if (e.kind != trace::EventKind::kJobEnd) continue;
    RTFT_EXPECTS(e.task < ts.size(), "event references unknown task");
    TaskUnderrun& t = report.tasks[e.task];
    t.completed_jobs++;
    const Duration response = Duration::ns(e.detail);
    if (response > t.max_response) t.max_response = response;
  }
  for (TaskUnderrun& t : report.tasks) {
    if (t.completed_jobs == 0) continue;
    const Duration head = t.wcrt_bound - t.max_response;
    t.headroom = head.is_negative() ? Duration::zero() : head;
    const Duration over = t.declared_cost - t.max_response;
    t.overestimate = over.is_negative() ? Duration::zero() : over;
  }
  return report;
}

std::vector<std::string> UnderrunReport::overestimated_tasks() const {
  std::vector<std::string> out;
  for (const TaskUnderrun& t : tasks) {
    if (t.overestimate.is_positive()) out.push_back(t.name);
  }
  return out;
}

std::string UnderrunReport::table() const {
  std::ostringstream out;
  out << pad_right("task", 12) << pad_left("jobs", 6)
      << pad_left("declared C", 12) << pad_left("max resp", 10)
      << pad_left("headroom", 10) << pad_left("overest.", 10) << '\n';
  for (const TaskUnderrun& t : tasks) {
    out << pad_right(t.name, 12)
        << pad_left(std::to_string(t.completed_jobs), 6)
        << pad_left(to_string(t.declared_cost), 12)
        << pad_left(t.completed_jobs ? to_string(t.max_response) : "-", 10)
        << pad_left(t.completed_jobs ? to_string(t.headroom) : "-", 10)
        << pad_left(t.completed_jobs ? to_string(t.overestimate) : "-", 10)
        << '\n';
  }
  return out.str();
}

Duration reclaimable_allowance(const sched::TaskSet& ts,
                               const UnderrunReport& report,
                               Duration granularity) {
  RTFT_EXPECTS(report.tasks.size() == ts.size(),
               "report does not match the task set");
  sched::AllowanceOptions opts;
  opts.granularity = granularity;
  const sched::EquitableAllowance before =
      sched::equitable_allowance(ts, opts);
  if (!before.feasible_at_zero) return Duration::zero();

  sched::TaskSet trimmed;
  for (sched::TaskId i = 0; i < ts.size(); ++i) {
    sched::TaskParams p = ts[i];
    const TaskUnderrun& t = report.tasks[i];
    if (t.completed_jobs > 0 && t.max_response < p.cost) {
      p.cost = t.max_response;
    }
    trimmed.add(std::move(p));
  }
  const sched::EquitableAllowance after =
      sched::equitable_allowance(trimmed, opts);
  RTFT_ASSERT(after.feasible_at_zero, "trimming costs keeps feasibility");
  const Duration gain = after.allowance - before.allowance;
  return gain.is_negative() ? Duration::zero() : gain;
}

}  // namespace rtft::core
