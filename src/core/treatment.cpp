#include "core/treatment.hpp"

#include "common/assert.hpp"
#include "sched/feasibility.hpp"
#include "sched/response_time.hpp"

namespace rtft::core {

std::string_view to_string(TreatmentPolicy policy) {
  switch (policy) {
    case TreatmentPolicy::kNoDetection: return "no-detection";
    case TreatmentPolicy::kDetectOnly: return "detect-only";
    case TreatmentPolicy::kInstantStop: return "instant-stop";
    case TreatmentPolicy::kEquitableAllowance: return "equitable-allowance";
    case TreatmentPolicy::kSystemAllowance: return "system-allowance";
    case TreatmentPolicy::kSystemAllowanceSound:
      return "system-allowance-sound";
  }
  return "unknown";
}

TreatmentPolicy treatment_policy_from_string(std::string_view name) {
  if (name == "no-detection") return TreatmentPolicy::kNoDetection;
  if (name == "detect-only") return TreatmentPolicy::kDetectOnly;
  if (name == "instant-stop") return TreatmentPolicy::kInstantStop;
  if (name == "equitable-allowance") {
    return TreatmentPolicy::kEquitableAllowance;
  }
  if (name == "system-allowance") return TreatmentPolicy::kSystemAllowance;
  if (name == "system-allowance-sound") {
    return TreatmentPolicy::kSystemAllowanceSound;
  }
  RTFT_EXPECTS(false,
               "unknown treatment policy '" + std::string(name) + "'");
  return TreatmentPolicy::kNoDetection;  // unreachable
}

TreatmentPlan make_treatment_plan(const sched::TaskSet& ts,
                                  TreatmentPolicy policy,
                                  const sched::AllowanceOptions& opts) {
  TreatmentPlan plan;
  plan.policy = policy;
  if (policy == TreatmentPolicy::kNoDetection) return plan;

  plan.detects = true;
  plan.stops = policy != TreatmentPolicy::kDetectOnly;

  plan.nominal_wcrt.reserve(ts.size());
  for (sched::TaskId i = 0; i < ts.size(); ++i) {
    const sched::RtaResult rta = sched::response_time(ts, i, opts.rta);
    RTFT_EXPECTS(rta.bounded && rta.wcrt <= ts[i].deadline,
                 "treatment thresholds need a feasible task set; '" +
                     ts[i].name + "' is not schedulable");
    plan.nominal_wcrt.push_back(rta.wcrt);
  }

  switch (policy) {
    case TreatmentPolicy::kDetectOnly:
    case TreatmentPolicy::kInstantStop:
      plan.thresholds = plan.nominal_wcrt;
      break;
    case TreatmentPolicy::kEquitableAllowance: {
      const sched::EquitableAllowance a = sched::equitable_allowance(ts, opts);
      RTFT_ASSERT(a.feasible_at_zero, "feasibility checked above");
      plan.allowance = a.allowance;
      plan.thresholds = a.inflated_wcrt;
      break;
    }
    case TreatmentPolicy::kSystemAllowance:
    case TreatmentPolicy::kSystemAllowanceSound: {
      const sched::SystemAllowance s = sched::system_allowance(ts, opts);
      RTFT_ASSERT(s.feasible_at_zero, "feasibility checked above");
      plan.allowance = s.budget;
      plan.thresholds = policy == TreatmentPolicy::kSystemAllowance
                            ? s.stop_thresholds
                            : s.sound_stop_thresholds;
      break;
    }
    case TreatmentPolicy::kNoDetection:
      break;  // handled above
  }
  return plan;
}

TreatmentPlan make_treatment_plan_or_degrade(
    const sched::TaskSet& ts, TreatmentPolicy policy, bool feasible,
    const sched::AllowanceOptions& opts) {
  if (policy != TreatmentPolicy::kNoDetection && !feasible) {
    TreatmentPlan plan;
    plan.policy = policy;
    return plan;
  }
  return make_treatment_plan(ts, policy, opts);
}

}  // namespace rtft::core
