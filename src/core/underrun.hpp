// Cost under-run detection — the paper's §7: "if the cost of a task can
// be underestimated, it is also possible to overestimate it.
// Consequently, we can consider to dynamically study the system in order
// to detect these costs under-run and to reassign resources for faulty
// tasks."
//
// This module studies a recorded run and quantifies, per task, how far
// observed behaviour stays below the declared envelope:
//
//   * headroom       — WCRT bound minus the worst observed response: the
//                      margin the admission analysis never saw used;
//   * overestimate   — declared cost minus the worst observed response,
//                      when positive. For the highest-priority task the
//                      response *is* the consumed cost, so this is an
//                      exact lower bound on the cost overestimation; for
//                      lower tasks it is conservative (interference only
//                      inflates responses).
//
// The reclaimable budget — the extra allowance the treatments of §4
// could grant faulty tasks if declared costs were trimmed to observed
// ones — follows by re-running the allowance search on the trimmed set.
#pragma once

#include <string>
#include <vector>

#include "sched/task.hpp"
#include "trace/recorder.hpp"

namespace rtft::core {

/// Observed-vs-declared summary for one task.
struct TaskUnderrun {
  std::string name;
  std::int64_t completed_jobs = 0;
  Duration declared_cost;
  Duration wcrt_bound;       ///< analysis bound supplied by the caller.
  Duration max_response;     ///< worst observed (zero if no completions).
  Duration headroom;         ///< max(0, wcrt_bound - max_response).
  Duration overestimate;     ///< max(0, declared_cost - max_response).
};

struct UnderrunReport {
  std::vector<TaskUnderrun> tasks;  ///< TaskId order.
  /// Tasks whose declared cost provably exceeds observed need.
  [[nodiscard]] std::vector<std::string> overestimated_tasks() const;
  [[nodiscard]] std::string table() const;
};

/// Scans a recorded run. `wcrt` holds the per-task analysis bounds
/// (TaskId order), e.g. from sched::response_times().
[[nodiscard]] UnderrunReport analyze_underruns(
    const sched::TaskSet& ts, const trace::Recorder& recorder,
    const std::vector<Duration>& wcrt);

/// The extra equitable allowance unlocked by trimming each task's
/// declared cost to the worst response observed for it (tasks with no
/// completed jobs keep their declared cost). Returns the difference
/// new_allowance - old_allowance (never negative).
[[nodiscard]] Duration reclaimable_allowance(
    const sched::TaskSet& ts, const UnderrunReport& report,
    Duration granularity = Duration::ms(1));

}  // namespace rtft::core
