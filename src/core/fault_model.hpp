// Fault model (paper §3 and §6).
//
// A *temporal fault* is a job consuming more CPU than its declared cost —
// "either because it was underestimated, or because of an external event"
// (§3). The evaluation injects such overruns deliberately ("a cost overrun
// was voluntarily added for the priority task", §6). FaultPlan captures
// those injections declaratively and converts them into per-task
// CostModels for the engine. Negative deltas (cost under-runs, the §7
// future-work case) are also supported.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "runtime/engine.hpp"
#include "sched/task.hpp"

namespace rtft::core {

/// One injected cost deviation.
struct FaultSpec {
  std::string task;        ///< task name (resolved against the TaskSet).
  std::int64_t job_index;  ///< 0-based job whose cost deviates.
  Duration extra_cost;     ///< added to the nominal cost (may be negative).
};

/// Declarative collection of injected faults.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Adds a fault. Multiple faults on the same (task, job) accumulate.
  void add(FaultSpec spec);

  /// Convenience: overrun of `extra` on `task`'s job `job_index`.
  void add_overrun(std::string task, std::int64_t job_index, Duration extra);

  [[nodiscard]] bool empty() const { return faults_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const {
    return faults_;
  }

  /// Validates that every referenced task exists in `ts`.
  void validate_against(const sched::TaskSet& ts) const;

  /// Flat CostSpec for task `id`: kNominal when no fault touches the
  /// task, kFixedOverrunAtJob when all matching deltas hit one job (the
  /// paper's single-injection case — and everything the sweep emits),
  /// kCustom wrapping cost_model_for otherwise. Resolves to the same
  /// per-job costs as cost_model_for in every case.
  [[nodiscard]] rt::CostSpec cost_spec_for(const sched::TaskSet& ts,
                                           sched::TaskId id) const;

  /// CostModel for task `id`: nominal cost plus any matching deltas,
  /// floored at 1 ns (a job always does some work). Returns an empty
  /// model when no fault touches the task. Retained as the
  /// randomized-equivalence oracle for cost_spec_for.
  [[nodiscard]] rt::CostModel cost_model_for(const sched::TaskSet& ts,
                                             sched::TaskId id) const;

 private:
  std::vector<FaultSpec> faults_;
};

}  // namespace rtft::core
