#include "core/fault_model.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rtft::core {

void FaultPlan::add(FaultSpec spec) {
  RTFT_EXPECTS(!spec.task.empty(), "fault spec needs a task name");
  RTFT_EXPECTS(spec.job_index >= 0, "fault spec needs a valid job index");
  faults_.push_back(std::move(spec));
}

void FaultPlan::add_overrun(std::string task, std::int64_t job_index,
                            Duration extra) {
  add(FaultSpec{std::move(task), job_index, extra});
}

void FaultPlan::validate_against(const sched::TaskSet& ts) const {
  for (const FaultSpec& f : faults_) {
    RTFT_EXPECTS(ts.contains(f.task),
                 "fault references unknown task '" + f.task + "'");
  }
}

rt::CostSpec FaultPlan::cost_spec_for(const sched::TaskSet& ts,
                                      sched::TaskId id) const {
  const sched::TaskParams& params = ts[id];
  // Coalesce deltas by job: multiple faults on one (task, job) add up.
  std::vector<std::pair<std::int64_t, Duration>> deltas;
  for (const FaultSpec& f : faults_) {
    if (f.task != params.name) continue;
    bool merged = false;
    for (auto& [index, delta] : deltas) {
      if (index == f.job_index) {
        delta += f.extra_cost;
        merged = true;
        break;
      }
    }
    if (!merged) deltas.emplace_back(f.job_index, f.extra_cost);
  }
  if (deltas.empty()) return rt::CostSpec::nominal();
  if (deltas.size() == 1) {
    return rt::CostSpec::fixed_overrun(deltas[0].first, deltas[0].second);
  }
  return rt::CostSpec(cost_model_for(ts, id));  // multi-job: general path.
}

rt::CostModel FaultPlan::cost_model_for(const sched::TaskSet& ts,
                                        sched::TaskId id) const {
  const sched::TaskParams& params = ts[id];
  std::vector<std::pair<std::int64_t, Duration>> deltas;
  for (const FaultSpec& f : faults_) {
    if (f.task == params.name) deltas.emplace_back(f.job_index, f.extra_cost);
  }
  if (deltas.empty()) return {};
  const Duration nominal = params.cost;
  return [nominal, deltas = std::move(deltas)](std::int64_t job) {
    Duration cost = nominal;
    for (const auto& [index, delta] : deltas) {
      if (index == job) cost += delta;
    }
    return cost < Duration::ns(1) ? Duration::ns(1) : cost;
  };
}

}  // namespace rtft::core
