#include "core/paper.hpp"

namespace rtft::core::paper {

sched::TaskSet table1_system() {
  sched::TaskSet ts;
  ts.add(sched::TaskParams{"tau1", 20, Duration::ms(3), Duration::ms(6),
                           Duration::ms(6), Duration::zero()});
  ts.add(sched::TaskParams{"tau2", 15, Duration::ms(2), Duration::ms(4),
                           Duration::ms(2), Duration::zero()});
  return ts;
}

sched::TaskSet table2_system(Duration tau3_offset) {
  sched::TaskSet ts;
  ts.add(sched::TaskParams{"tau1", 20, Duration::ms(29), Duration::ms(200),
                           Duration::ms(70), Duration::zero()});
  ts.add(sched::TaskParams{"tau2", 18, Duration::ms(29), Duration::ms(250),
                           Duration::ms(120), Duration::zero()});
  ts.add(sched::TaskParams{"tau3", 16, Duration::ms(29), Duration::ms(1500),
                           Duration::ms(120), tau3_offset});
  return ts;
}

Scenario figures_scenario(TreatmentPolicy policy, Duration overrun,
                          rt::Quantizer quantizer) {
  Scenario s;
  s.config.tasks = table2_system(/*tau3_offset=*/kWindowStart);
  s.config.policy = policy;
  s.config.horizon = kFigureHorizon;
  s.config.detector.quantizer = quantizer;
  s.faults.add_overrun("tau1", kFaultyJobIndex, overrun);
  return s;
}

}  // namespace rtft::core::paper
