#include "core/polling_server.hpp"

#include "common/assert.hpp"

namespace rtft::core {

PollingServer::PollingServer(rt::Engine& engine,
                             const sched::TaskParams& server_params)
    : engine_(engine), budget_(server_params.cost) {
  rt::TaskCallbacks callbacks;
  callbacks.on_job_end = [this](rt::Engine& e, std::int64_t job) {
    on_served(e, job);
  };
  task_ = engine.add_task(
      server_params,
      [this](std::int64_t job) { return planned_service(job); },
      std::move(callbacks));
}

AperiodicId PollingServer::submit(std::string name, Duration cost,
                                  std::optional<Duration> relative_deadline) {
  RTFT_EXPECTS(cost.is_positive(), "aperiodic cost must be positive");
  AperiodicJobReport job;
  job.name = std::move(name);
  job.arrival = engine_.now();
  job.cost = cost;
  job.relative_deadline = relative_deadline;
  jobs_.push_back(std::move(job));
  const AperiodicId id = jobs_.size() - 1;
  queue_.push_back(id);
  return id;
}

Duration PollingServer::planned_service(std::int64_t job_index) {
  // Work available at this poll, capped by the budget. A poll with an
  // empty queue still runs for a token nanosecond (the poll itself);
  // that keeps the engine's positive-cost invariant and models the
  // (negligible) polling overhead.
  Duration backlog;
  for (const AperiodicId id : queue_) {
    backlog += jobs_[id].cost;
  }
  backlog -= head_served_;
  Duration service = backlog < budget_ ? backlog : budget_;
  if (!service.is_positive()) service = Duration::ns(1);
  const auto index = static_cast<std::size_t>(job_index);
  if (poll_plan_.size() <= index) poll_plan_.resize(index + 1);
  poll_plan_[index] = service;
  return service;
}

void PollingServer::on_served(rt::Engine& engine, std::int64_t job_index) {
  const auto index = static_cast<std::size_t>(job_index);
  RTFT_ASSERT(index < poll_plan_.size(), "poll ended without a plan");
  Duration served = poll_plan_[index];
  // Distribute FIFO. The token nanosecond of an empty poll serves no one.
  while (served.is_positive() && !queue_.empty()) {
    AperiodicJobReport& head = jobs_[queue_.front()];
    const Duration need = head.cost - head_served_;
    if (served < need) {
      head_served_ += served;
      served = Duration::zero();
      break;
    }
    served -= need;
    head_served_ = Duration::zero();
    head.completion = engine.now();
    if (head.relative_deadline &&
        *head.completion > head.arrival + *head.relative_deadline) {
      head.deadline_missed = true;
    }
    completed_++;
    queue_.pop_front();
  }
}

const AperiodicJobReport& PollingServer::report(AperiodicId id) const {
  RTFT_EXPECTS(id < jobs_.size(), "aperiodic id out of range");
  return jobs_[id];
}

}  // namespace rtft::core
