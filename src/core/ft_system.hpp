// FaultTolerantSystem — the top-level facade, mirroring the paper's
// javax.realtime.extended package: admission control at start-up,
// detectors installed by start() with offsets equal to the (treatment-
// specific, quantized) worst-case response times, and a treatment invoked
// when a detector finds its job unfinished.
//
// One object = one experiment: configure tasks + policy + faults, call
// run(), inspect the RunReport and the trace.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/fault_model.hpp"
#include "core/treatment.hpp"
#include "runtime/engine.hpp"
#include "sched/feasibility.hpp"
#include "sched/task.hpp"
#include "trace/recorder.hpp"

namespace rtft::core {

/// Experiment configuration.
struct FtSystemConfig {
  sched::TaskSet tasks;
  TreatmentPolicy policy = TreatmentPolicy::kDetectOnly;
  /// Simulated window; all of the paper's figures use 2000 ms.
  Duration horizon = Duration::ms(2000);
  /// Detector timer quantization and per-fire cost (§6.2).
  DetectorConfig detector{};
  /// What a stop terminates (paper: the whole thread).
  rt::StopMode stop_mode = rt::StopMode::kTask;
  /// Cooperative stop-flag poll latency (§4.1).
  Duration stop_poll_latency = Duration::zero();
  /// Engine context-switch cost (ablation knob).
  Duration context_switch_cost = Duration::zero();
  /// Allowance search options (granularity, RTA guards).
  sched::AllowanceOptions allowance{};
  /// When false (default), an infeasible task set refuses to run —
  /// admission control as the paper prescribes. When true, the system
  /// runs anyway (useful to demonstrate failures).
  bool run_infeasible = false;
  /// Observation seam: where the run's trace events go. Borrowed; must
  /// outlive run(). Null (default) keeps the historical behaviour — the
  /// system owns a full-fidelity Recorder, exposed through recorder().
  /// Supplying a sink (e.g. a trace::CountingSink) makes the run record
  /// through it instead, and recorder() then refuses.
  trace::Sink* sink = nullptr;
};

/// Per-task outcome of a run.
struct TaskRunReport {
  std::string name;
  rt::TaskStats stats;
  /// Raw analysis threshold, if the policy installs detectors.
  std::optional<Duration> threshold;
  /// Threshold after quantization (what the detector actually used).
  std::optional<Duration> quantized_threshold;
  std::int64_t faults_detected = 0;
};

/// Outcome of a run.
struct RunReport {
  /// Admission-control verdict on the configured task set.
  bool admitted = false;
  /// True when the engine actually executed (admitted or run_infeasible).
  bool executed = false;
  sched::FeasibilityReport feasibility;
  TreatmentPlan plan;
  std::vector<TaskRunReport> tasks;  ///< TaskId order.

  /// Total deadline misses across tasks.
  [[nodiscard]] std::int64_t total_misses() const;
  /// Names of tasks that missed at least one deadline.
  [[nodiscard]] std::vector<std::string> missing_tasks() const;
  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Builds, runs and reports one fault-tolerance experiment.
class FaultTolerantSystem {
 public:
  FaultTolerantSystem(FtSystemConfig config, FaultPlan faults = {});

  /// Performs admission control, executes the scenario (unless refused)
  /// and returns the report. May be called once per object.
  RunReport run();

  /// Valid after run() when the report says executed.
  [[nodiscard]] const rt::Engine& engine() const;
  /// The owned full-fidelity trace. Valid after run() when no external
  /// sink was configured; throws otherwise (the events went elsewhere).
  [[nodiscard]] const trace::Recorder& recorder() const;
  [[nodiscard]] const FtSystemConfig& config() const { return config_; }

 private:
  /// The plan for the configured policy; degrades to a detection-less
  /// plan when the set is infeasible (thresholds would be meaningless).
  TreatmentPlan make_treatment_plan_or_detect_only();

  FtSystemConfig config_;
  FaultPlan faults_;
  std::unique_ptr<trace::Recorder> owned_recorder_;  ///< when no sink given.
  std::unique_ptr<rt::Engine> engine_;
  std::unique_ptr<DetectorBank> detectors_;
  bool ran_ = false;
};

}  // namespace rtft::core
