#include "sched/format.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rtft::sched {

std::string format_task_table(const TaskSet& ts, const TableColumns& cols) {
  const std::size_t n = ts.size();
  if (cols.wcrt) RTFT_EXPECTS(cols.wcrt->size() == n, "wcrt column size");
  if (cols.allowance)
    RTFT_EXPECTS(cols.allowance->size() == n, "allowance column size");
  if (cols.threshold)
    RTFT_EXPECTS(cols.threshold->size() == n, "threshold column size");

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"task", "Pi", "Ti", "Di", "Ci"};
  if (cols.wcrt) header.push_back("WCRTi");
  if (cols.allowance) header.push_back("Ai");
  if (cols.threshold) header.push_back("stop");
  rows.push_back(header);

  for (TaskId i = 0; i < n; ++i) {
    const TaskParams& t = ts[i];
    std::vector<std::string> row{t.name, std::to_string(t.priority),
                                 to_string(t.period), to_string(t.deadline),
                                 to_string(t.cost)};
    if (cols.wcrt) row.push_back(to_string((*cols.wcrt)[i]));
    if (cols.allowance) row.push_back(to_string((*cols.allowance)[i]));
    if (cols.threshold) row.push_back(to_string((*cols.threshold)[i]));
    rows.push_back(std::move(row));
  }

  std::vector<std::size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out << "  ";
      out << (c == 0 ? pad_right(rows[r][c], widths[c])
                     : pad_left(rows[r][c], widths[c]));
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c > 0 ? 2 : 0);
      }
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

}  // namespace rtft::sched
