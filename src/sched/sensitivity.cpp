#include "sched/sensitivity.hpp"

#include "common/assert.hpp"
#include "common/math.hpp"
#include "sched/feasibility.hpp"

namespace rtft::sched {
namespace {

/// Copy of `ts` with every cost scaled by ppm/1e6 (rounded up: an
/// admission test must never under-account work), floored at 1 ns.
TaskSet scaled(const TaskSet& ts, std::int64_t ppm) {
  TaskSet out;
  for (const TaskParams& t : ts) {
    TaskParams copy = t;
    const auto product = checked_mul(t.cost.count(), ppm);
    RTFT_EXPECTS(product.has_value(), "scaled cost overflows");
    std::int64_t ns = (*product + 999'999) / 1'000'000;
    if (ns < 1) ns = 1;
    copy.cost = Duration::ns(ns);
    out.add(std::move(copy));
  }
  return out;
}

}  // namespace

std::optional<Duration> response_time_with_jitter(
    const TaskSet& ts, TaskId id, const std::vector<Duration>& jitters,
    const RtaOptions& opts) {
  RTFT_EXPECTS(id < ts.size(), "task id out of range");
  RTFT_EXPECTS(jitters.size() == ts.size(), "one jitter per task");
  for (const Duration j : jitters) {
    RTFT_EXPECTS(!j.is_negative(), "jitter must be non-negative");
  }
  const std::vector<TaskId> hp = ts.interferers_of(id);

  std::int64_t budget = opts.max_iterations;
  Duration r = ts[id].cost;
  while (budget-- > 0) {
    Duration next = ts[id].cost;
    for (const TaskId j : hp) {
      const std::int64_t releases =
          ceil_div(r + jitters[j], ts[j].period);
      const auto add = checked_mul(releases, ts[j].cost.count());
      if (!add) return std::nullopt;
      const auto sum = checked_add(next.count(), *add);
      if (!sum) return std::nullopt;
      next = Duration::ns(*sum);
    }
    if (next == r) return r + jitters[id];
    RTFT_ASSERT(next > r, "jitter fixed point must be monotone");
    r = next;
  }
  return std::nullopt;
}

bool is_feasible_with_jitter(const TaskSet& ts,
                             const std::vector<Duration>& jitters,
                             const RtaOptions& opts) {
  for (TaskId i = 0; i < ts.size(); ++i) {
    const auto r = response_time_with_jitter(ts, i, jitters, opts);
    if (!r || *r > ts[i].deadline) return false;
  }
  return true;
}

ScalingFactor critical_scaling_factor(const TaskSet& ts,
                                      std::int64_t precision_ppm,
                                      const RtaOptions& opts) {
  RTFT_EXPECTS(!ts.empty(), "scaling factor of an empty task set");
  RTFT_EXPECTS(precision_ppm > 0, "precision must be positive");

  const auto feasible_at = [&](std::int64_t ppm) {
    return is_feasible(scaled(ts, ppm), opts);
  };

  // Upper bound: λ where some task's scaled cost alone exceeds its
  // deadline. λ <= min_i D_i/C_i, so start just above it.
  std::int64_t hi = 0;
  for (const TaskParams& t : ts) {
    const auto ratio = checked_mul(t.deadline.count(), 1'000'000);
    RTFT_EXPECTS(ratio.has_value(), "deadline/cost ratio overflows");
    const std::int64_t bound = *ratio / t.cost.count() + precision_ppm;
    if (hi == 0 || bound < hi) hi = bound;
  }
  RTFT_ASSERT(!feasible_at(hi), "upper bound must be infeasible");

  std::int64_t lo = 0;  // λ -> 0: costs floor at 1 ns; treat as feasible
  while (hi - lo > precision_ppm) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return ScalingFactor{lo};
}

}  // namespace rtft::sched
