// Periodic task model for fixed-priority preemptive scheduling.
//
// Follows the paper's notation: a task τi has a cost Ci, a relative
// deadline Di, a period Ti and a priority Pi (RTSJ convention: a larger
// priority value is more urgent). Deadlines may exceed periods — the
// analysis handles the general case (Lehoczky 1990).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rtft::sched {

/// RTSJ-style priority: larger value = more urgent.
using Priority = int;

/// Index of a task within a TaskSet. Stable for the lifetime of the set.
using TaskId = std::size_t;

/// Static parameters of one periodic task.
struct TaskParams {
  std::string name;
  Priority priority = 0;
  Duration cost;            ///< Ci — worst-case execution time per job.
  Duration period;          ///< Ti — inter-release separation.
  Duration deadline;        ///< Di — relative deadline; may exceed Ti.
  Duration offset;          ///< release date of the first job (default 0).

  /// Utilization Ci/Ti of this task alone.
  [[nodiscard]] double utilization() const {
    return static_cast<double>(cost.count()) /
           static_cast<double>(period.count());
  }
};

/// An immutable-after-construction collection of periodic tasks.
///
/// TaskIds are the insertion indices; all analysis results are reported
/// in TaskId order. Names must be unique and non-empty; parameters are
/// validated on insertion (positive period/cost/deadline, non-negative
/// offset). Equal priorities are allowed — analysis treats equal-priority
/// tasks as mutually interfering, matching the paper's HP(S) definition
/// ("higher or equal priority").
class TaskSet {
 public:
  TaskSet() = default;

  /// Validates and appends a task; returns its TaskId.
  /// Throws ContractViolation on invalid parameters or duplicate name.
  TaskId add(TaskParams params);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const TaskParams& operator[](TaskId id) const;
  [[nodiscard]] const std::vector<TaskParams>& tasks() const { return tasks_; }

  [[nodiscard]] auto begin() const { return tasks_.begin(); }
  [[nodiscard]] auto end() const { return tasks_.end(); }

  /// TaskId of the task named `name`; throws if absent.
  [[nodiscard]] TaskId find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;

  /// The paper's HP(S): tasks with priority higher than or equal to
  /// `id`'s priority, excluding `id` itself. Order: descending priority,
  /// ties by TaskId.
  [[nodiscard]] std::vector<TaskId> interferers_of(TaskId id) const;

  /// All TaskIds ordered by descending priority (ties by TaskId).
  [[nodiscard]] std::vector<TaskId> by_priority_desc() const;

  /// Total utilization U = Σ Ci/Ti.
  [[nodiscard]] double utilization() const;

  /// Copy with every cost inflated by `extra` (used by the equitable
  /// allowance search, §4.2).
  [[nodiscard]] TaskSet with_all_costs_inflated(Duration extra) const;

  /// Copy with one task's cost replaced (used by the per-task overrun
  /// search, §4.3).
  [[nodiscard]] TaskSet with_cost(TaskId id, Duration new_cost) const;

  /// Copy without the given task (remaining TaskIds shift down).
  [[nodiscard]] TaskSet without(TaskId id) const;

  /// Copy with one task's priority replaced.
  [[nodiscard]] TaskSet with_priority(TaskId id, Priority p) const;

 private:
  std::vector<TaskParams> tasks_;
};

/// Validates a single task's parameters; throws ContractViolation with a
/// precise message when invalid. Exposed for config-file validation.
void validate_params(const TaskParams& params);

}  // namespace rtft::sched
