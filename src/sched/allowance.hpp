// Allowance (tolerance factor) computation — paper §4.2 and §4.3.
//
// The *equitable allowance* A is the largest amount that can be added to
// EVERY task's cost while the system remains feasible; it is found by
// binary search over the feasibility predicate (monotone in A). The
// inflated WCRTs (computed with all costs at Ci + A) become the stop
// thresholds of the equitable treatment — Table 3 of the paper.
//
// The *system allowance* B is the largest overrun the highest-priority
// task can make alone while the system stays feasible; it is granted
// entirely to the first faulty task (§4.3). Stop thresholds WCRTi + B
// realize the "remainder flows to later faulty tasks" rule: if the first
// faulty task consumes only o < B, every lower task inherits a shift of
// at most o and retains B − o of headroom for its own overrun.
#pragma once

#include "sched/response_time.hpp"
#include "sched/task.hpp"

namespace rtft::sched {

/// Result of the equitable-allowance search (§4.2).
struct EquitableAllowance {
  /// False when the system is infeasible even with zero allowance; the
  /// other fields are then meaningless.
  bool feasible_at_zero = false;
  /// A — the common allowance granted to every task.
  Duration allowance;
  /// WCRT of each task (TaskId order) with all costs inflated by A.
  /// These are the stop thresholds of the equitable treatment (Table 3).
  std::vector<Duration> inflated_wcrt;
};

/// Result of the system-allowance computation (§4.3).
struct SystemAllowance {
  bool feasible_at_zero = false;
  /// B — the whole spare budget, granted to the first faulty task.
  Duration budget;
  /// The highest-priority task, to which the budget is nominally granted.
  TaskId beneficiary = 0;
  /// Stop threshold of each task (TaskId order): WCRTi + B — the paper's
  /// formulation. Not a sound bound on inherited lateness in general: an
  /// overrun of B can delay a lower task by more than B when the extended
  /// window catches additional higher-priority releases.
  std::vector<Duration> stop_thresholds;
  /// Sound variant: WCRT of each task recomputed with the beneficiary's
  /// cost inflated by B. Dominates stop_thresholds, and coincides with it
  /// when no extra interference lands in the extended window (as on the
  /// paper's Table 2 system). Non-faulty tasks provably never cross it.
  std::vector<Duration> sound_stop_thresholds;
  /// Nominal WCRTs (TaskId order), for reporting.
  std::vector<Duration> nominal_wcrt;
};

/// Options common to the allowance searches.
struct AllowanceOptions {
  /// Search granularity: the result is the largest feasible multiple of
  /// this. The paper works at millisecond granularity; the default is
  /// exact to the nanosecond.
  Duration granularity = Duration::ns(1);
  RtaOptions rta{};
};

/// Binary search for the equitable allowance A (paper §4.2).
[[nodiscard]] EquitableAllowance equitable_allowance(
    const TaskSet& ts, const AllowanceOptions& opts = {});

/// Largest overrun task `id` can make alone (every other cost nominal)
/// while the system stays feasible. Duration::zero() when even the
/// smallest overrun breaks feasibility.
[[nodiscard]] Duration max_single_task_overrun(
    const TaskSet& ts, TaskId id, const AllowanceOptions& opts = {});

/// System allowance B and the per-task stop thresholds WCRTi + B (§4.3).
[[nodiscard]] SystemAllowance system_allowance(
    const TaskSet& ts, const AllowanceOptions& opts = {});

}  // namespace rtft::sched
