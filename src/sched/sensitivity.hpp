// Sensitivity analysis companions to the paper's §4 allowance.
//
// The paper's allowance is *additive*: the largest constant addable to
// every cost. Two classic relatives complete the picture:
//
//   * jitter-aware response times — release jitter J_j inflates the
//     interference term to ceil((R + J_j)/T_j)·C_j and a task's own
//     response by J_i (Audsley et al., the paper's ref [1] lineage);
//     detectors armed at jitter-aware WCRTs stay sound when releases
//     wobble (e.g. the 10 ms timer grid of §6.2 seen as release jitter);
//
//   * the critical scaling factor — the largest λ such that the system
//     stays feasible with every cost multiplied by λ (Lehoczky's
//     multiplicative stress measure). λ > 1 quantifies global headroom
//     the way the allowance A quantifies per-task headroom.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/response_time.hpp"
#include "sched/task.hpp"

namespace rtft::sched {

/// Jitter-aware single-job response time (constrained deadlines):
/// least fixed point of  R = C_i + Σ_j ceil((R + J_j)/T_j)·C_j,
/// reported response = R + J_i. `jitters` is in TaskId order.
/// Returns nullopt when the iteration diverges.
[[nodiscard]] std::optional<Duration> response_time_with_jitter(
    const TaskSet& ts, TaskId id, const std::vector<Duration>& jitters,
    const RtaOptions& opts = {});

/// True iff every task meets its deadline under the given jitters.
[[nodiscard]] bool is_feasible_with_jitter(
    const TaskSet& ts, const std::vector<Duration>& jitters,
    const RtaOptions& opts = {});

/// Result of the critical-scaling search.
struct ScalingFactor {
  /// λ in parts-per-million (1'000'000 = exactly the current costs).
  std::int64_t ppm = 0;
  [[nodiscard]] double value() const {
    return static_cast<double>(ppm) / 1e6;
  }
};

/// Largest λ (to `precision_ppm`) with the system feasible at costs
/// scaled by λ. For a feasible system λ >= 1; for an infeasible one the
/// result is the shrink factor (< 1) that would rescue it; zero if even
/// vanishing costs miss (deadline shorter than any work, impossible here
/// since costs scale to ~0 — so only returned for empty search ranges).
[[nodiscard]] ScalingFactor critical_scaling_factor(
    const TaskSet& ts, std::int64_t precision_ppm = 1'000,
    const RtaOptions& opts = {});

}  // namespace rtft::sched
