#include "sched/canonical.hpp"

#include <algorithm>

namespace rtft::sched {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

CanonicalTaskSet canonicalize(const TaskSet& ts) {
  CanonicalTaskSet canon;
  canon.rows.reserve(ts.size());
  for (const TaskParams& t : ts) {
    canon.rows.push_back(CanonicalRow{static_cast<std::int64_t>(t.priority),
                                      t.cost.count(), t.period.count(),
                                      t.deadline.count(), t.offset.count()});
  }
  // Priority descending first (the dispatch order), then the remaining
  // fields ascending — any total order works, this one reads naturally
  // in dumps.
  std::sort(canon.rows.begin(), canon.rows.end(),
            [](const CanonicalRow& a, const CanonicalRow& b) {
              if (a[0] != b[0]) return a[0] > b[0];
              return std::lexicographical_compare(a.begin() + 1, a.end(),
                                                  b.begin() + 1, b.end());
            });
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, canon.rows.size());
  for (const CanonicalRow& row : canon.rows) {
    for (const std::int64_t field : row) {
      fnv_mix(h, static_cast<std::uint64_t>(field));
    }
  }
  canon.hash = h;
  return canon;
}

std::uint64_t canonical_hash(const TaskSet& ts) { return canonicalize(ts).hash; }

}  // namespace rtft::sched
