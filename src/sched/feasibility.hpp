// Admission control (paper §2): load test + per-task WCRT vs deadline.
//
// FeasibilityAnalysis mirrors the paper's incremental admission object
// (the work RTSJ delegates to through addToFeasibility() /
// removeFromFeasibility(), which the authors had to implement themselves
// because RI's version was wrong and jRate's was missing).
#pragma once

#include <string>
#include <string_view>

#include "sched/response_time.hpp"
#include "sched/task.hpp"
#include "sched/utilization.hpp"

namespace rtft::sched {

/// Analysis outcome for one task.
struct TaskVerdict {
  TaskId id = 0;
  bool bounded = false;       ///< WCRT computation terminated.
  Duration wcrt;              ///< valid when bounded.
  bool meets_deadline = false;///< bounded && wcrt <= deadline.
};

/// Full admission-control report.
struct FeasibilityReport {
  bool feasible = false;      ///< every task bounded and within deadline.
  LoadVerdict load = LoadVerdict::kBelowOne;
  double utilization = 0.0;
  std::vector<TaskVerdict> tasks;  ///< in TaskId order.

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary(const TaskSet& ts) const;
};

/// Runs the load test and, unless it already proves infeasibility, the
/// response-time analysis of every task.
[[nodiscard]] FeasibilityReport analyze(const TaskSet& ts,
                                        const RtaOptions& opts = {});

/// True iff every task's WCRT is bounded and within its deadline.
[[nodiscard]] bool is_feasible(const TaskSet& ts, const RtaOptions& opts = {});

/// Incremental admission control in the RTSJ style: tasks are admitted
/// only if the system stays feasible, and the mutation is rolled back
/// otherwise.
///
/// Robustness contract (a long-lived admission object must survive bad
/// input — the serving layer feeds it straight from clients):
///   * Every mutation is strong-exception-safe: if add()/add_unchecked()
///     throws (invalid parameters, duplicate name), the analysis is
///     exactly as it was before the call — candidates are built on a
///     copy and committed only on success.
///   * Mutations never assert on merely-absent state: remove() of an
///     unknown name reports false instead of throwing, so callers can
///     treat "already gone" as success.
class FeasibilityAnalysis {
 public:
  explicit FeasibilityAnalysis(RtaOptions opts = {}) : opts_(opts) {}

  /// Admits `params` iff the resulting system is feasible.
  /// Returns false (and leaves the set unchanged) otherwise. Throws
  /// ContractViolation on invalid parameters or a duplicate name,
  /// leaving the set unchanged.
  bool add(const TaskParams& params);

  /// Removes the named task. Returns false (never throws) if no such
  /// task. Removal never hurts feasibility, so it always succeeds when
  /// the task exists.
  bool remove(std::string_view name);

  /// Force-adds a task without the admission check (used to model systems
  /// that bypass admission control; analysis can then flag them). Same
  /// strong guarantee as add() when validation throws.
  void add_unchecked(const TaskParams& params);

  [[nodiscard]] const TaskSet& task_set() const { return set_; }
  [[nodiscard]] FeasibilityReport report() const {
    return analyze(set_, opts_);
  }

 private:
  TaskSet set_;
  RtaOptions opts_;
};

}  // namespace rtft::sched
