// Worst-case response time (WCRT) analysis for fixed-priority preemptive
// uniprocessor scheduling — the paper's §2.2 / Figure 2 algorithm.
//
// The general algorithm (Lehoczky 1990) iterates over the jobs of the
// level-i busy period: job q's completion R(q) is the least fixed point of
//
//   R = (q+1)·Ci + Σ_{j ∈ HP(i)} ceil(R / Tj) · Cj
//
// its response is R(q) − q·Ti, and iteration stops at the first q with
// R(q) <= (q+1)·Ti (that job no longer pushes work onto the next one).
// The WCRT is the maximum response observed. When Di <= Ti this reduces
// to the classic Joseph & Pandya single-job fixed point (q = 0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/task.hpp"

namespace rtft::sched {

/// Guard rails for the iterative analysis. Divergent systems (load >= 1
/// among interferers) are detected exactly beforehand where possible and
/// otherwise cut off by these caps.
struct RtaOptions {
  /// Maximum number of jobs examined in the level-i busy period.
  std::int64_t max_jobs = 1 << 20;
  /// Maximum total fixed-point iterations across all jobs.
  std::int64_t max_iterations = 1 << 26;
  /// Record the per-job responses (Table 1 / Figure 1 reproduction).
  bool record_jobs = false;
  /// Cap on the number of recorded jobs when record_jobs is set.
  std::size_t max_recorded_jobs = 4096;
};

/// Response of one job of the analyzed task within the level-i busy
/// period started at the critical instant.
struct JobResponse {
  std::int64_t index = 0;    ///< q — 0-based job index.
  Duration completion;       ///< R(q), from the critical instant.
  Duration response;         ///< R(q) − q·Ti.
};

/// Outcome of the analysis of one task.
struct RtaResult {
  /// False when the busy period provably never ends (interfering load
  /// >= 1) or a guard rail was hit; `wcrt` is then meaningless.
  bool bounded = false;
  Duration wcrt;             ///< max over jobs of R(q) − q·Ti.
  std::int64_t worst_job = 0;///< q achieving the maximum.
  std::int64_t jobs_examined = 0;
  std::vector<JobResponse> jobs;  ///< filled when RtaOptions::record_jobs.
};

/// Worst-case response time of task `id` within `ts` (paper Figure 2).
/// Offsets are ignored: the critical instant (synchronous release) is a
/// sound worst case for fixed-priority scheduling.
[[nodiscard]] RtaResult response_time(const TaskSet& ts, TaskId id,
                                      const RtaOptions& opts = {});

/// Classic single-job fixed point (valid as the WCRT when the result does
/// not exceed the period). Returns nullopt when iteration diverges.
/// Kept separate because tests cross-validate it against the general
/// algorithm, and because it is the textbook form (Joseph & Pandya).
[[nodiscard]] std::optional<Duration> classic_response_time(
    const TaskSet& ts, TaskId id, const RtaOptions& opts = {});

/// Convenience: WCRT of every task, in TaskId order.
[[nodiscard]] std::vector<RtaResult> response_times(const TaskSet& ts,
                                                    const RtaOptions& opts = {});

}  // namespace rtft::sched
