#include "sched/utilization.hpp"

#include <cmath>
#include <vector>

#include "common/math.hpp"

namespace rtft::sched {

LoadVerdict load_test(const TaskSet& ts) {
  std::vector<Duration> costs;
  std::vector<Duration> periods;
  costs.reserve(ts.size());
  periods.reserve(ts.size());
  for (const TaskParams& t : ts) {
    costs.push_back(t.cost);
    periods.push_back(t.period);
  }
  const int cmp = compare_load_to_one(costs, periods);
  if (cmp > 0) return LoadVerdict::kAboveOne;
  if (cmp == 0) return LoadVerdict::kExactlyOne;
  return LoadVerdict::kBelowOne;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool passes_liu_layland(const TaskSet& ts) {
  return ts.utilization() <= liu_layland_bound(ts.size());
}

bool passes_hyperbolic(const TaskSet& ts) {
  double product = 1.0;
  for (const TaskParams& t : ts) product *= t.utilization() + 1.0;
  return product <= 2.0;
}

}  // namespace rtft::sched
