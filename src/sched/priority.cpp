#include "sched/priority.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/assert.hpp"

namespace rtft::sched {
namespace {

/// Rebuilds `ts` with priorities assigned by rank: rank_order[0] gets the
/// highest priority, the next one less, etc.
TaskSet with_ranked_priorities(const TaskSet& ts,
                               const std::vector<TaskId>& rank_order,
                               Priority top) {
  RTFT_EXPECTS(rank_order.size() == ts.size(), "rank order size mismatch");
  RTFT_EXPECTS(top - static_cast<Priority>(ts.size()) + 1 >=
                   std::numeric_limits<Priority>::min() / 2,
               "priority range underflow");
  std::vector<Priority> assigned(ts.size(), 0);
  Priority p = top;
  for (TaskId id : rank_order) assigned[id] = p--;
  TaskSet out;
  for (TaskId i = 0; i < ts.size(); ++i) {
    TaskParams copy = ts[i];
    copy.priority = assigned[i];
    out.add(std::move(copy));
  }
  return out;
}

}  // namespace

TaskSet with_rate_monotonic_priorities(const TaskSet& ts, Priority top) {
  std::vector<TaskId> order(ts.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return ts[a].period < ts[b].period;
  });
  return with_ranked_priorities(ts, order, top);
}

TaskSet with_deadline_monotonic_priorities(const TaskSet& ts, Priority top) {
  std::vector<TaskId> order(ts.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return ts[a].deadline < ts[b].deadline;
  });
  return with_ranked_priorities(ts, order, top);
}

std::optional<TaskSet> audsley_assignment(const TaskSet& ts, Priority top,
                                          const RtaOptions& opts) {
  // Audsley's algorithm: assign priority levels from the lowest upward.
  // At each level, any unassigned task whose response time meets its
  // deadline with all other unassigned tasks as interferers may take the
  // level; if none can, no fixed-priority assignment is feasible.
  const std::size_t n = ts.size();
  std::vector<TaskId> unassigned(n);
  std::iota(unassigned.begin(), unassigned.end(), TaskId{0});
  // rank_order[0] will be the highest-priority task.
  std::vector<TaskId> rank_order(n);

  for (std::size_t level = n; level > 0; --level) {
    bool placed = false;
    for (std::size_t k = 0; k < unassigned.size(); ++k) {
      const TaskId candidate = unassigned[k];
      // Build a trial set: candidate at the bottom, all other unassigned
      // tasks above it. Already-assigned (lower) tasks cannot interfere.
      TaskSet trial;
      TaskId trial_candidate = 0;
      for (std::size_t m = 0; m < unassigned.size(); ++m) {
        TaskParams copy = ts[unassigned[m]];
        copy.priority = (unassigned[m] == candidate) ? 0 : 1;
        const TaskId tid = trial.add(std::move(copy));
        if (unassigned[m] == candidate) trial_candidate = tid;
      }
      const RtaResult rta = response_time(trial, trial_candidate, opts);
      if (rta.bounded && rta.wcrt <= ts[candidate].deadline) {
        rank_order[level - 1] = candidate;
        unassigned.erase(unassigned.begin() +
                         static_cast<std::ptrdiff_t>(k));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return with_ranked_priorities(ts, rank_order, top);
}

}  // namespace rtft::sched
