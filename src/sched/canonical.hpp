// Canonical task-set identity — the cache key of the admission service.
//
// Two clients asking "can {C,T,D,P} be admitted?" must hit the same
// cache line even when they name their tasks differently or list them in
// a different order: scheduling analysis depends only on the multiset of
// (priority, cost, period, deadline, offset) rows. canonicalize() sorts
// the rows into a total order and drops the names, so equal systems
// compare equal and hash equal; millions of repeated queries then never
// recompute an RTA.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sched/task.hpp"

namespace rtft::sched {

/// One task reduced to the fields analysis depends on, in a fixed field
/// order so rows are comparable and hashable as plain integer tuples.
using CanonicalRow = std::array<std::int64_t, 5>;

/// Name-free, order-free identity of a task set. Rows are sorted
/// (priority descending, then cost, period, deadline, offset ascending);
/// `hash` is an FNV-1a 64 fold over the rows in that order. Equality
/// compares the full rows — the hash alone is only a bucket index, so
/// colliding systems can never alias each other's verdicts.
struct CanonicalTaskSet {
  std::vector<CanonicalRow> rows;
  std::uint64_t hash = 0;

  friend bool operator==(const CanonicalTaskSet& a, const CanonicalTaskSet& b) {
    return a.hash == b.hash && a.rows == b.rows;
  }
};

/// Canonicalizes a task set. Deterministic across platforms and
/// insertion orders; identical for sets differing only in task names.
[[nodiscard]] CanonicalTaskSet canonicalize(const TaskSet& ts);

/// The canonical hash alone (convenience for logging and sharding).
[[nodiscard]] std::uint64_t canonical_hash(const TaskSet& ts);

}  // namespace rtft::sched
