#include "sched/task.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtft::sched {

void validate_params(const TaskParams& params) {
  RTFT_EXPECTS(!params.name.empty(), "task name must be non-empty");
  RTFT_EXPECTS(params.period.is_positive(),
               "task '" + params.name + "': period must be positive");
  RTFT_EXPECTS(params.cost.is_positive(),
               "task '" + params.name + "': cost must be positive");
  RTFT_EXPECTS(params.deadline.is_positive(),
               "task '" + params.name + "': deadline must be positive");
  RTFT_EXPECTS(!params.offset.is_negative(),
               "task '" + params.name + "': offset must be non-negative");
}

TaskId TaskSet::add(TaskParams params) {
  validate_params(params);
  RTFT_EXPECTS(!contains(params.name),
               "duplicate task name '" + params.name + "'");
  tasks_.push_back(std::move(params));
  return tasks_.size() - 1;
}

const TaskParams& TaskSet::operator[](TaskId id) const {
  RTFT_EXPECTS(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

TaskId TaskSet::find(std::string_view name) const {
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) return i;
  }
  RTFT_EXPECTS(false, "no task named '" + std::string(name) + "'");
  return 0;  // unreachable
}

bool TaskSet::contains(std::string_view name) const {
  return std::any_of(tasks_.begin(), tasks_.end(),
                     [&](const TaskParams& t) { return t.name == name; });
}

std::vector<TaskId> TaskSet::interferers_of(TaskId id) const {
  RTFT_EXPECTS(id < tasks_.size(), "task id out of range");
  std::vector<TaskId> out;
  for (TaskId j = 0; j < tasks_.size(); ++j) {
    if (j != id && tasks_[j].priority >= tasks_[id].priority) out.push_back(j);
  }
  std::stable_sort(out.begin(), out.end(), [&](TaskId a, TaskId b) {
    return tasks_[a].priority > tasks_[b].priority;
  });
  return out;
}

std::vector<TaskId> TaskSet::by_priority_desc() const {
  std::vector<TaskId> out(tasks_.size());
  for (TaskId i = 0; i < out.size(); ++i) out[i] = i;
  std::stable_sort(out.begin(), out.end(), [&](TaskId a, TaskId b) {
    return tasks_[a].priority > tasks_[b].priority;
  });
  return out;
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const TaskParams& t : tasks_) u += t.utilization();
  return u;
}

TaskSet TaskSet::with_all_costs_inflated(Duration extra) const {
  RTFT_EXPECTS(!extra.is_negative(), "inflation must be non-negative");
  TaskSet out;
  for (const TaskParams& t : tasks_) {
    TaskParams copy = t;
    copy.cost += extra;
    out.add(std::move(copy));
  }
  return out;
}

TaskSet TaskSet::with_cost(TaskId id, Duration new_cost) const {
  RTFT_EXPECTS(id < tasks_.size(), "task id out of range");
  TaskSet out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    TaskParams copy = tasks_[i];
    if (i == id) copy.cost = new_cost;
    out.add(std::move(copy));
  }
  return out;
}

TaskSet TaskSet::without(TaskId id) const {
  RTFT_EXPECTS(id < tasks_.size(), "task id out of range");
  TaskSet out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (i != id) out.add(tasks_[i]);
  }
  return out;
}

TaskSet TaskSet::with_priority(TaskId id, Priority p) const {
  RTFT_EXPECTS(id < tasks_.size(), "task id out of range");
  TaskSet out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    TaskParams copy = tasks_[i];
    if (i == id) copy.priority = p;
    out.add(std::move(copy));
  }
  return out;
}

}  // namespace rtft::sched
