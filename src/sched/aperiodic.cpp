#include "sched/aperiodic.hpp"

#include "common/assert.hpp"

namespace rtft::sched {

Duration polling_server_response_bound(Duration cost, Duration server_cost,
                                       Duration server_period,
                                       Duration server_wcrt) {
  RTFT_EXPECTS(cost.is_positive(), "aperiodic cost must be positive");
  RTFT_EXPECTS(server_cost.is_positive(), "server budget must be positive");
  RTFT_EXPECTS(server_period.is_positive(),
               "server period must be positive");
  RTFT_EXPECTS(!server_wcrt.is_negative(), "server WCRT must be >= 0");
  const std::int64_t polls = ceil_div(cost, server_cost);
  return server_period * polls + server_wcrt;
}

Duration max_aperiodic_cost_within(Duration deadline, Duration server_cost,
                                   Duration server_period,
                                   Duration server_wcrt) {
  RTFT_EXPECTS(server_cost.is_positive(), "server budget must be positive");
  RTFT_EXPECTS(server_period.is_positive(),
               "server period must be positive");
  if (deadline <= server_period + server_wcrt) return Duration::zero();
  // polls * Ts + wcrt <= D  =>  polls <= (D - wcrt) / Ts.
  const std::int64_t polls = (deadline - server_wcrt) / server_period;
  RTFT_ASSERT(polls >= 1, "guarded by the early return");
  // cost <= polls * Cs, and a cost of exactly polls*Cs needs precisely
  // `polls` polls.
  return server_cost * polls;
}

}  // namespace rtft::sched
