#include "sched/allowance.hpp"

#include <functional>

#include "common/assert.hpp"
#include "sched/feasibility.hpp"

namespace rtft::sched {
namespace {

/// Largest k*granularity in [0, hi_bound] with feasible(k*granularity),
/// given feasible(0) and monotonicity (feasible(x) implies feasible(y)
/// for all y < x). `hi_bound` must satisfy !feasible(hi_bound).
Duration monotone_search(Duration granularity, Duration hi_bound,
                         const std::function<bool(Duration)>& feasible) {
  RTFT_EXPECTS(granularity.is_positive(), "granularity must be positive");
  std::int64_t lo = 0;  // feasible, in granularity units
  std::int64_t hi = ceil_div(hi_bound, granularity);  // infeasible
  RTFT_ASSERT(hi >= 1, "search upper bound must be positive");
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible(granularity * mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return granularity * lo;
}

/// A value of extra cost that provably breaks feasibility: inflating any
/// task past its own deadline-minus-cost slack makes that task miss.
Duration infeasibility_bound_all(const TaskSet& ts) {
  Duration bound = Duration::max();
  for (const TaskParams& t : ts) {
    const Duration slack = t.deadline - t.cost;
    if (slack < bound) bound = slack;
  }
  // +1ns: strictly beyond the largest conceivable allowance.
  return (bound.is_negative() ? Duration::zero() : bound) + Duration::ns(1);
}

}  // namespace

EquitableAllowance equitable_allowance(const TaskSet& ts,
                                       const AllowanceOptions& opts) {
  EquitableAllowance out;
  RTFT_EXPECTS(!ts.empty(), "allowance of an empty task set");
  if (!is_feasible(ts, opts.rta)) return out;  // feasible_at_zero = false
  out.feasible_at_zero = true;

  const Duration hi = infeasibility_bound_all(ts);
  out.allowance = monotone_search(opts.granularity, hi, [&](Duration a) {
    return is_feasible(ts.with_all_costs_inflated(a), opts.rta);
  });

  const TaskSet inflated = ts.with_all_costs_inflated(out.allowance);
  out.inflated_wcrt.reserve(ts.size());
  for (TaskId i = 0; i < ts.size(); ++i) {
    const RtaResult rta = response_time(inflated, i, opts.rta);
    RTFT_ASSERT(rta.bounded, "inflated system was checked feasible");
    out.inflated_wcrt.push_back(rta.wcrt);
  }
  return out;
}

Duration max_single_task_overrun(const TaskSet& ts, TaskId id,
                                 const AllowanceOptions& opts) {
  RTFT_EXPECTS(id < ts.size(), "task id out of range");
  if (!is_feasible(ts, opts.rta)) return Duration::zero();
  // Beyond the task's own slack it misses its own deadline, so this is a
  // valid infeasibility bound.
  const Duration own_slack = ts[id].deadline - ts[id].cost;
  const Duration hi =
      (own_slack.is_negative() ? Duration::zero() : own_slack) +
      Duration::ns(1);
  return monotone_search(opts.granularity, hi, [&](Duration extra) {
    return is_feasible(ts.with_cost(id, ts[id].cost + extra), opts.rta);
  });
}

SystemAllowance system_allowance(const TaskSet& ts,
                                 const AllowanceOptions& opts) {
  SystemAllowance out;
  RTFT_EXPECTS(!ts.empty(), "allowance of an empty task set");
  if (!is_feasible(ts, opts.rta)) return out;
  out.feasible_at_zero = true;

  out.beneficiary = ts.by_priority_desc().front();
  out.budget = max_single_task_overrun(ts, out.beneficiary, opts);

  const TaskSet worst_case =
      ts.with_cost(out.beneficiary, ts[out.beneficiary].cost + out.budget);
  out.nominal_wcrt.reserve(ts.size());
  out.stop_thresholds.reserve(ts.size());
  out.sound_stop_thresholds.reserve(ts.size());
  for (TaskId i = 0; i < ts.size(); ++i) {
    const RtaResult rta = response_time(ts, i, opts.rta);
    RTFT_ASSERT(rta.bounded, "system was checked feasible");
    out.nominal_wcrt.push_back(rta.wcrt);
    out.stop_thresholds.push_back(rta.wcrt + out.budget);
    const RtaResult sound = response_time(worst_case, i, opts.rta);
    RTFT_ASSERT(sound.bounded, "budgeted system is feasible by definition");
    out.sound_stop_thresholds.push_back(sound.wcrt);
  }
  return out;
}

}  // namespace rtft::sched
