// Utilization-based admission tests (paper §2.1 and the classic bounds the
// paper's state of the art surveys: Liu & Layland 1973, Bini & Buttazzo
// 2003 hyperbolic bound).
//
// The load test alone is necessary but not sufficient: U > 1 proves
// infeasibility; U <= 1 "is not enough to conclude" (paper §2.1) except
// through the sufficient-only bounds below.
#pragma once

#include "sched/task.hpp"

namespace rtft::sched {

/// Exact verdict of the necessary load test U = Σ Ci/Ti vs 1.
enum class LoadVerdict {
  kBelowOne,   ///< U < 1 — inconclusive, run response-time analysis.
  kExactlyOne, ///< U = 1 — boundary; only specific structures are feasible.
  kAboveOne,   ///< U > 1 — provably infeasible.
};

/// Compares the task set's utilization to 1 using exact integer
/// arithmetic (no floating-point rounding at the boundary).
[[nodiscard]] LoadVerdict load_test(const TaskSet& ts);

/// Liu & Layland's RM bound n(2^{1/n} - 1). Sufficient for implicit
/// deadlines (D = T) under rate-monotonic priorities.
[[nodiscard]] double liu_layland_bound(std::size_t n);

/// True if U <= liu_layland_bound(n): the set is feasible under RM with
/// implicit deadlines. False is inconclusive.
[[nodiscard]] bool passes_liu_layland(const TaskSet& ts);

/// Bini & Buttazzo's hyperbolic bound: Π (Ui + 1) <= 2 is sufficient for
/// RM with implicit deadlines, and strictly dominates Liu & Layland.
[[nodiscard]] bool passes_hyperbolic(const TaskSet& ts);

}  // namespace rtft::sched
