#include "sched/blocking.hpp"

#include "common/assert.hpp"

namespace rtft::sched {

void ResourceModel::add(CriticalSection section) {
  RTFT_EXPECTS(!section.task.empty(), "critical section needs a task");
  RTFT_EXPECTS(!section.resource.empty(),
               "critical section needs a resource");
  RTFT_EXPECTS(section.duration.is_positive(),
               "critical section duration must be positive");
  sections_.push_back(std::move(section));
}

void ResourceModel::add(std::string task, std::string resource,
                        Duration duration) {
  add(CriticalSection{std::move(task), std::move(resource), duration});
}

void ResourceModel::validate_against(const TaskSet& ts) const {
  for (const CriticalSection& s : sections_) {
    RTFT_EXPECTS(ts.contains(s.task),
                 "critical section references unknown task '" + s.task +
                     "'");
  }
}

std::optional<Priority> ResourceModel::ceiling(
    const TaskSet& ts, std::string_view resource) const {
  std::optional<Priority> best;
  for (const CriticalSection& s : sections_) {
    if (s.resource != resource) continue;
    const Priority p = ts[ts.find(s.task)].priority;
    if (!best || p > *best) best = p;
  }
  return best;
}

Duration ResourceModel::blocking_term(const TaskSet& ts, TaskId id) const {
  validate_against(ts);
  const Priority mine = ts[id].priority;
  Duration worst;
  for (const CriticalSection& s : sections_) {
    const TaskId owner = ts.find(s.task);
    if (owner == id) continue;
    if (ts[owner].priority >= mine) continue;  // only lower tasks block
    const auto c = ceiling(ts, s.resource);
    RTFT_ASSERT(c.has_value(), "section's resource must have a ceiling");
    if (*c < mine) continue;  // ceiling below us: we never contend
    if (s.duration > worst) worst = s.duration;
  }
  return worst;
}

BlockingVerdict response_time_with_blocking(const TaskSet& ts, TaskId id,
                                            const ResourceModel& resources,
                                            const RtaOptions& opts) {
  BlockingVerdict v;
  v.id = id;
  v.blocking = resources.blocking_term(ts, id);
  // Fold B_i into the task's own cost for the q = 0 fixed point: the
  // classic R = C + B + interference. Reuse the single-job analysis on a
  // copy with the inflated cost (interference terms are unchanged —
  // other tasks keep their own costs).
  const TaskSet inflated = ts.with_cost(id, ts[id].cost + v.blocking);
  const auto r = classic_response_time(inflated, id, opts);
  if (r.has_value()) {
    v.bounded = true;
    v.wcrt = *r;
    v.meets_deadline = v.wcrt <= ts[id].deadline;
  }
  return v;
}

BlockingReport analyze_with_blocking(const TaskSet& ts,
                                     const ResourceModel& resources,
                                     const RtaOptions& opts) {
  BlockingReport report;
  report.feasible = true;
  for (TaskId i = 0; i < ts.size(); ++i) {
    BlockingVerdict v = response_time_with_blocking(ts, i, resources, opts);
    report.feasible = report.feasible && v.meets_deadline;
    report.tasks.push_back(std::move(v));
  }
  return report;
}

Duration equitable_allowance_with_blocking(const TaskSet& ts,
                                           const ResourceModel& resources,
                                           Duration granularity,
                                           const RtaOptions& opts) {
  RTFT_EXPECTS(granularity.is_positive(), "granularity must be positive");
  const auto feasible = [&](Duration a) {
    return analyze_with_blocking(ts.with_all_costs_inflated(a), resources,
                                 opts)
        .feasible;
  };
  if (!feasible(Duration::zero())) return Duration::zero();
  // Same monotone search as the blocking-free case: beyond the smallest
  // deadline-minus-cost slack some task provably misses.
  Duration bound = Duration::max();
  for (const TaskParams& t : ts) {
    const Duration slack = t.deadline - t.cost;
    if (slack < bound) bound = slack;
  }
  if (bound.is_negative()) bound = Duration::zero();
  std::int64_t lo = 0;
  std::int64_t hi = ceil_div(bound + Duration::ns(1), granularity);
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible(granularity * mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return granularity * lo;
}

}  // namespace rtft::sched
