#include "sched/response_time.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace rtft::sched {
namespace {

/// True when the combined utilization of `id` and its interferers
/// strictly exceeds 1 — the level-i busy period then provably diverges.
bool interfering_load_exceeds_one(const TaskSet& ts, TaskId id,
                                  const std::vector<TaskId>& hp) {
  std::vector<Duration> costs;
  std::vector<Duration> periods;
  costs.reserve(hp.size() + 1);
  periods.reserve(hp.size() + 1);
  costs.push_back(ts[id].cost);
  periods.push_back(ts[id].period);
  for (TaskId j : hp) {
    costs.push_back(ts[j].cost);
    periods.push_back(ts[j].period);
  }
  return compare_load_to_one(costs, periods) > 0;
}

/// Least fixed point of R = base + Σ ceil(R/Tj)·Cj, starting from `seed`.
/// Returns nullopt if the iteration budget is exhausted or R overflows.
std::optional<Duration> fixed_point(const TaskSet& ts,
                                    const std::vector<TaskId>& hp,
                                    Duration base, Duration seed,
                                    std::int64_t& iteration_budget) {
  Duration r = seed;
  while (iteration_budget-- > 0) {
    Duration next = base;
    for (TaskId j : hp) {
      const std::int64_t releases = ceil_div(r, ts[j].period);
      const auto add = checked_mul(releases, ts[j].cost.count());
      if (!add) return std::nullopt;
      const auto sum = checked_add(next.count(), *add);
      if (!sum) return std::nullopt;
      next = Duration::ns(*sum);
    }
    if (next == r) return r;
    RTFT_ASSERT(next > r, "fixed-point iterate must be monotone");
    r = next;
  }
  return std::nullopt;
}

}  // namespace

RtaResult response_time(const TaskSet& ts, TaskId id, const RtaOptions& opts) {
  RTFT_EXPECTS(id < ts.size(), "task id out of range");
  const TaskParams& task = ts[id];
  const std::vector<TaskId> hp = ts.interferers_of(id);

  RtaResult result;
  if (interfering_load_exceeds_one(ts, id, hp)) {
    return result;  // bounded = false
  }

  std::int64_t iteration_budget = opts.max_iterations;
  Duration previous_completion = Duration::zero();

  for (std::int64_t q = 0; q < opts.max_jobs; ++q) {
    const auto base_ns = checked_mul(q + 1, task.cost.count());
    if (!base_ns) return result;
    const Duration base = Duration::ns(*base_ns);

    // Seed with the previous job's completion (it is a lower bound on
    // this job's completion and accelerates convergence) or the base.
    const Duration seed = previous_completion > base ? previous_completion
                                                     : base;
    const auto completion = fixed_point(ts, hp, base, seed, iteration_budget);
    if (!completion) return result;  // guard rail hit: report unbounded
    previous_completion = *completion;

    const Duration response = *completion - task.period * q;
    result.jobs_examined = q + 1;
    if (opts.record_jobs && result.jobs.size() < opts.max_recorded_jobs) {
      result.jobs.push_back(JobResponse{q, *completion, response});
    }
    if (q == 0 || response > result.wcrt) {
      result.wcrt = response;
      result.worst_job = q;
    }
    // Busy period closes: this job completed within its own period slot,
    // so it exerts no carry-in on the next job.
    if (*completion <= task.period * (q + 1)) {
      result.bounded = true;
      return result;
    }
  }
  return result;  // max_jobs exhausted: report unbounded
}

std::optional<Duration> classic_response_time(const TaskSet& ts, TaskId id,
                                              const RtaOptions& opts) {
  RTFT_EXPECTS(id < ts.size(), "task id out of range");
  const std::vector<TaskId> hp = ts.interferers_of(id);
  if (interfering_load_exceeds_one(ts, id, hp)) return std::nullopt;
  std::int64_t budget = opts.max_iterations;
  return fixed_point(ts, hp, ts[id].cost, ts[id].cost, budget);
}

std::vector<RtaResult> response_times(const TaskSet& ts,
                                      const RtaOptions& opts) {
  std::vector<RtaResult> out;
  out.reserve(ts.size());
  for (TaskId i = 0; i < ts.size(); ++i) out.push_back(response_time(ts, i, opts));
  return out;
}

}  // namespace rtft::sched
