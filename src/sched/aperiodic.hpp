// Aperiodic workload analysis under a polling server — the paper's §7
// future work ("studying the faults detection and tolerance in the case
// of aperiodic tasks"), realized with the textbook mechanism that fits
// the paper's fixed-priority periodic framework: a *polling server*, a
// periodic task (Cs, Ts) that serves queued aperiodic jobs up to its
// budget each period. For admission control the server is just another
// periodic task, so the paper's §2 analysis applies unchanged; this
// header adds the aperiodic-side bounds.
#pragma once

#include "common/time.hpp"
#include "sched/task.hpp"

namespace rtft::sched {

/// Sound upper bound on the response time of an aperiodic job of cost
/// `cost` served FIFO by a polling server with budget `server_cost` per
/// period `server_period`, assuming the job finds an empty queue and the
/// server itself always completes within `server_wcrt` of its release
/// (its WCRT from the periodic analysis).
///
/// Worst case: the job arrives just after a poll found the queue empty.
/// It is first picked up one full period later, and needs
/// ceil(cost / budget) server periods of service; the service inside the
/// final period completes within the server's own WCRT.
[[nodiscard]] Duration polling_server_response_bound(Duration cost,
                                                     Duration server_cost,
                                                     Duration server_period,
                                                     Duration server_wcrt);

/// Largest single aperiodic job cost whose bound fits within `deadline`
/// (inverse of polling_server_response_bound); zero if even an
/// infinitesimal job cannot make it.
[[nodiscard]] Duration max_aperiodic_cost_within(Duration deadline,
                                                 Duration server_cost,
                                                 Duration server_period,
                                                 Duration server_wcrt);

}  // namespace rtft::sched
