// Priority assignment policies.
//
// The paper fixes priorities by hand (RTSJ integers, larger = more
// urgent). These helpers assign them automatically: rate-monotonic and
// deadline-monotonic (Audsley et al. 1991, the paper's ref [1]) plus
// Audsley's optimal priority assignment, which is optimal for the
// arbitrary-deadline analysis used here.
#pragma once

#include <optional>

#include "sched/response_time.hpp"
#include "sched/task.hpp"

namespace rtft::sched {

/// The RTSJ PriorityScheduler exposes 28 real-time priorities; we mirror
/// its conventional range.
inline constexpr Priority kMinRtPriority = 11;
inline constexpr Priority kMaxRtPriority = 38;

/// Copy of `ts` with rate-monotonic priorities: shorter period = higher
/// priority. Ties broken by TaskId. Priorities are assigned downward from
/// `top` (default RTSJ max).
[[nodiscard]] TaskSet with_rate_monotonic_priorities(
    const TaskSet& ts, Priority top = kMaxRtPriority);

/// Copy of `ts` with deadline-monotonic priorities: shorter relative
/// deadline = higher priority. Optimal for D <= T.
[[nodiscard]] TaskSet with_deadline_monotonic_priorities(
    const TaskSet& ts, Priority top = kMaxRtPriority);

/// Audsley's optimal priority assignment: returns a copy of `ts` with a
/// feasible priority order if any fixed-priority order is feasible under
/// the response-time analysis; nullopt otherwise.
[[nodiscard]] std::optional<TaskSet> audsley_assignment(
    const TaskSet& ts, Priority top = kMaxRtPriority,
    const RtaOptions& opts = {});

}  // namespace rtft::sched
