#include "sched/feasibility.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace rtft::sched {

FeasibilityReport analyze(const TaskSet& ts, const RtaOptions& opts) {
  FeasibilityReport report;
  report.load = load_test(ts);
  report.utilization = ts.utilization();
  report.tasks.reserve(ts.size());

  bool all_ok = true;
  for (TaskId i = 0; i < ts.size(); ++i) {
    TaskVerdict v;
    v.id = i;
    const RtaResult rta = response_time(ts, i, opts);
    v.bounded = rta.bounded;
    v.wcrt = rta.wcrt;
    v.meets_deadline = rta.bounded && rta.wcrt <= ts[i].deadline;
    all_ok = all_ok && v.meets_deadline;
    report.tasks.push_back(v);
  }
  report.feasible = all_ok && report.load != LoadVerdict::kAboveOne;
  return report;
}

bool is_feasible(const TaskSet& ts, const RtaOptions& opts) {
  return analyze(ts, opts).feasible;
}

std::string FeasibilityReport::summary(const TaskSet& ts) const {
  std::ostringstream out;
  out << "load U = " << format_fixed(utilization, 4);
  switch (load) {
    case LoadVerdict::kAboveOne:
      out << " (> 1: infeasible)";
      break;
    case LoadVerdict::kExactlyOne:
      out << " (= 1: boundary)";
      break;
    case LoadVerdict::kBelowOne:
      out << " (< 1)";
      break;
  }
  out << '\n';
  for (const TaskVerdict& v : tasks) {
    out << "  " << pad_right(ts[v.id].name, 12) << " WCRT=";
    if (v.bounded) {
      out << pad_left(to_string(v.wcrt), 10) << "  D="
          << pad_left(to_string(ts[v.id].deadline), 10) << "  "
          << (v.meets_deadline ? "ok" : "MISS");
    } else {
      out << " unbounded  MISS";
    }
    out << '\n';
  }
  out << (feasible ? "FEASIBLE" : "NOT FEASIBLE");
  return out.str();
}

bool FeasibilityAnalysis::add(const TaskParams& params) {
  TaskSet candidate = set_;
  candidate.add(params);
  if (!is_feasible(candidate, opts_)) return false;
  set_ = std::move(candidate);
  return true;
}

bool FeasibilityAnalysis::remove(std::string_view name) {
  if (!set_.contains(name)) return false;
  set_ = set_.without(set_.find(name));
  return true;
}

void FeasibilityAnalysis::add_unchecked(const TaskParams& params) {
  set_.add(params);
}

}  // namespace rtft::sched
