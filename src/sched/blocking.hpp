// Shared-resource blocking analysis — the paper's §7 future work
// ("the issues deriving from the share of resources among the various
// tasks… it would be advisable to study the influence of tolerance on
// the determination of the blocking time (bi)").
//
// Tasks declare critical sections on named resources. Under the Priority
// Ceiling Protocol (the locking policy the RTSJ mandates for its
// PriorityCeilingEmulation monitors), a task is blocked at most once, by
// at most the longest critical section of a lower-priority task on a
// resource whose ceiling is at least the task's priority:
//
//   ceiling(R) = max { priority(τj) : τj uses R }
//   B_i = max  { d : (τj, R, d) with priority(τj) < priority(τi)
//                     and ceiling(R) >= priority(τi) }
//
// The response-time analysis then adds B_i once to the fixed point
// (valid for constrained deadlines, D <= T), and the allowance search of
// §4.2 runs unchanged on top — answering the paper's question: tolerance
// and blocking compose additively in the fixed point, so the allowance
// shrinks by exactly the response-time inflation the blocking causes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/response_time.hpp"
#include "sched/task.hpp"

namespace rtft::sched {

/// One declared critical section.
struct CriticalSection {
  std::string task;      ///< task name.
  std::string resource;  ///< resource name.
  Duration duration;     ///< worst-case lock-holding time.
};

/// Declares which tasks lock which resources and for how long.
class ResourceModel {
 public:
  void add(CriticalSection section);
  void add(std::string task, std::string resource, Duration duration);

  [[nodiscard]] bool empty() const { return sections_.empty(); }
  [[nodiscard]] const std::vector<CriticalSection>& sections() const {
    return sections_;
  }

  /// Throws if a section references a task absent from `ts`.
  void validate_against(const TaskSet& ts) const;

  /// PCP priority ceiling of `resource` in `ts`; nullopt if unused.
  [[nodiscard]] std::optional<Priority> ceiling(const TaskSet& ts,
                                                std::string_view resource) const;

  /// PCP blocking bound B_i for task `id`.
  [[nodiscard]] Duration blocking_term(const TaskSet& ts, TaskId id) const;

 private:
  std::vector<CriticalSection> sections_;
};

/// Per-task outcome of the blocking-aware analysis.
struct BlockingVerdict {
  TaskId id = 0;
  Duration blocking;          ///< B_i.
  bool bounded = false;
  Duration wcrt;              ///< includes the blocking term.
  bool meets_deadline = false;
};

/// Blocking-aware response time of one task: least fixed point of
/// R = C_i + B_i + Σ ceil(R/T_j)·C_j. Valid for constrained deadlines
/// (D <= T); callers with D > T should treat the result as approximate.
[[nodiscard]] BlockingVerdict response_time_with_blocking(
    const TaskSet& ts, TaskId id, const ResourceModel& resources,
    const RtaOptions& opts = {});

/// Blocking-aware feasibility of the whole set.
struct BlockingReport {
  bool feasible = false;
  std::vector<BlockingVerdict> tasks;  ///< TaskId order.
};
[[nodiscard]] BlockingReport analyze_with_blocking(
    const TaskSet& ts, const ResourceModel& resources,
    const RtaOptions& opts = {});

/// §4.2's equitable allowance, blocking-aware: the largest A such that
/// every task still meets its deadline with all costs inflated by A and
/// blocking terms in place.
[[nodiscard]] Duration equitable_allowance_with_blocking(
    const TaskSet& ts, const ResourceModel& resources,
    Duration granularity = Duration::ns(1), const RtaOptions& opts = {});

}  // namespace rtft::sched
