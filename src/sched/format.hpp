// Paper-style table rendering of task sets and analysis results.
//
// Produces the row layout of the paper's Tables 1–3:
//   name  Pi  Ti  Di  Ci  [WCRTi]  [Ai]
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"

namespace rtft::sched {

/// Optional per-task columns appended to the base table.
struct TableColumns {
  const std::vector<Duration>* wcrt = nullptr;       ///< "WCRTi"
  const std::vector<Duration>* allowance = nullptr;  ///< "Ai"
  const std::vector<Duration>* threshold = nullptr;  ///< "stop threshold"
};

/// Renders the task set as an aligned text table (TaskId order).
[[nodiscard]] std::string format_task_table(const TaskSet& ts,
                                            const TableColumns& cols = {});

}  // namespace rtft::sched
