#include "rtsj/realtime.hpp"

#include "common/assert.hpp"
#include "sched/response_time.hpp"

namespace rtft::rtsj {

VirtualMachine::VirtualMachine(Duration horizon) {
  rt::EngineOptions opts;
  opts.horizon = Instant::epoch() + horizon;
  engine_ = std::make_unique<rt::Engine>(opts);
}

void VirtualMachine::run() { engine_->run(); }

RealtimeThread::RealtimeThread(VirtualMachine& vm, std::string name,
                               PriorityParameters priority,
                               PeriodicParameters release)
    : vm_(vm) {
  params_.name = std::move(name);
  params_.priority = priority.getPriority();
  params_.cost = release.getCost();
  params_.period = release.getPeriod();
  params_.deadline = release.getDeadline();
  params_.offset = release.getStart();
  sched::validate_params(params_);
}

bool RealtimeThread::addToFeasibility() {
  if (admitted_) return true;
  admitted_ = vm_.scheduler().add(params_);
  return admitted_;
}

bool RealtimeThread::removeFromFeasibility() {
  if (!admitted_) return false;
  RTFT_EXPECTS(!started_, "cannot withdraw a started thread");
  admitted_ = false;
  return vm_.scheduler().remove(params_.name);
}

void RealtimeThread::start() {
  RTFT_EXPECTS(!started_, "thread already started");
  rt::TaskCallbacks callbacks;
  callbacks.on_job_begin = [this](rt::Engine&, std::int64_t job) {
    computeBeforePeriodic(job);
  };
  callbacks.on_job_end = [this](rt::Engine&, std::int64_t job) {
    computeAfterPeriodic(job);
  };
  handle_ = vm_.engine().add_task(params_, cost_model_,
                                  std::move(callbacks),
                                  vm_.engine().now());
  started_ = true;
}

void RealtimeThread::setCostModel(rt::CostModel model) {
  RTFT_EXPECTS(!started_, "cost model must be set before start()");
  cost_model_ = std::move(model);
}

rt::TaskHandle RealtimeThread::handle() const {
  RTFT_EXPECTS(started_, "thread not started");
  return handle_;
}

const rt::TaskStats& RealtimeThread::getStats() const {
  return vm_.engine().stats(handle());
}

RealtimeThreadExtended::RealtimeThreadExtended(VirtualMachine& vm,
                                               std::string name,
                                               PriorityParameters priority,
                                               PeriodicParameters release)
    : RealtimeThread(vm, std::move(name), priority, release) {}

void RealtimeThreadExtended::setFaultHandler(FaultHandler handler) {
  fault_handler_ = std::move(handler);
}

void RealtimeThreadExtended::setDetectorConfig(core::DetectorConfig config) {
  RTFT_EXPECTS(detector_ == nullptr,
               "detector config must be set before start()");
  detector_config_ = config;
}

void RealtimeThreadExtended::setDetectorThreshold(Duration threshold) {
  RTFT_EXPECTS(detector_ == nullptr,
               "detector threshold must be set before start()");
  RTFT_EXPECTS(!threshold.is_negative(), "threshold must be non-negative");
  explicit_threshold_ = threshold;
}

void RealtimeThreadExtended::start() {
  // "Our method starts a periodic detector with an offset equal to the
  // worst case response time just after having called the method start()
  // of the super-class." (§3.1)
  RealtimeThread::start();

  Duration threshold;
  if (explicit_threshold_) {
    threshold = *explicit_threshold_;
  } else {
    // WCRT within the currently admitted set; fall back to the thread's
    // deadline when it was started without admission.
    const sched::TaskSet& admitted = vm_.scheduler().task_set();
    if (admitted.contains(params_.name)) {
      const sched::RtaResult rta =
          sched::response_time(admitted, admitted.find(params_.name));
      RTFT_EXPECTS(rta.bounded,
                   "cannot derive a detector threshold for an unbounded "
                   "thread; set one explicitly");
      threshold = rta.wcrt;
    } else {
      threshold = params_.deadline;
    }
  }

  core::DetectorBank::FaultHandler handler;
  if (fault_handler_) {
    handler = [this](rt::Engine&, rt::TaskHandle, std::int64_t job) {
      fault_handler_(*this, job);
    };
  }
  detector_ = std::make_unique<core::DetectorBank>(
      vm_.engine(), std::vector<rt::TaskHandle>{handle_},
      std::vector<Duration>{threshold}, detector_config_,
      std::move(handler));
}

void RealtimeThreadExtended::interrupt() {
  RTFT_EXPECTS(started_, "thread not started");
  vm_.engine().request_stop(handle_, rt::StopMode::kTask);
}

std::int64_t RealtimeThreadExtended::faultsDetected() const {
  RTFT_EXPECTS(detector_ != nullptr, "thread not started");
  return detector_->faults_detected(0);
}

Duration RealtimeThreadExtended::detectorThreshold() const {
  RTFT_EXPECTS(detector_ != nullptr, "thread not started");
  return detector_->quantized_threshold(0);
}

}  // namespace rtft::rtsj
