// RTSJ-flavoured API veneer.
//
// The paper packages its contribution as Java classes: a
// javax.realtime.extended package whose RealtimeThreadExtended overloads
// addToFeasibility()/removeFromFeasibility() (delegating to a *correct*
// FeasibilityAnalysis — the RI's was wrong and jRate's missing, §2.3),
// overloads start() to launch a per-thread detector with an offset equal
// to the WCRT (§3.1), and wraps waitForNextPeriod() between
// computeBeforePeriodic()/computeAfterPeriodic() hooks.
//
// This header mirrors that surface in C++ so code reads like the paper —
// Java-style method names are intentional. Underneath everything maps
// onto the virtual-time engine: thread bodies are simulated costs (the
// substrate substitution of DESIGN.md), the hooks are real callbacks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "runtime/engine.hpp"
#include "sched/feasibility.hpp"

namespace rtft::rtsj {

/// javax.realtime.PriorityParameters.
class PriorityParameters {
 public:
  explicit PriorityParameters(sched::Priority priority)
      : priority_(priority) {}
  [[nodiscard]] sched::Priority getPriority() const { return priority_; }

 private:
  sched::Priority priority_;
};

/// javax.realtime.PeriodicParameters: start offset, period, cost,
/// deadline (deadline defaults to the period, as in the RTSJ).
class PeriodicParameters {
 public:
  PeriodicParameters(Duration start, Duration period, Duration cost,
                     Duration deadline = Duration::zero())
      : start_(start),
        period_(period),
        cost_(cost),
        deadline_(deadline.is_zero() ? period : deadline) {}
  [[nodiscard]] Duration getStart() const { return start_; }
  [[nodiscard]] Duration getPeriod() const { return period_; }
  [[nodiscard]] Duration getCost() const { return cost_; }
  [[nodiscard]] Duration getDeadline() const { return deadline_; }

 private:
  Duration start_;
  Duration period_;
  Duration cost_;
  Duration deadline_;
};

class RealtimeThread;

/// The "virtual machine": engine + the corrected admission control the
/// paper contributes (the work RTSJ routes through PriorityScheduler).
class VirtualMachine {
 public:
  explicit VirtualMachine(Duration horizon);

  /// Runs every started thread until the horizon.
  void run();

  [[nodiscard]] rt::Engine& engine() { return *engine_; }
  [[nodiscard]] const rt::Engine& engine() const { return *engine_; }
  [[nodiscard]] sched::FeasibilityAnalysis& scheduler() {
    return admission_;
  }

 private:
  std::unique_ptr<rt::Engine> engine_;
  sched::FeasibilityAnalysis admission_;
};

/// javax.realtime.RealtimeThread analog: one periodic logical thread.
class RealtimeThread {
 public:
  RealtimeThread(VirtualMachine& vm, std::string name,
                 PriorityParameters priority, PeriodicParameters release);
  virtual ~RealtimeThread() = default;
  RealtimeThread(const RealtimeThread&) = delete;
  RealtimeThread& operator=(const RealtimeThread&) = delete;

  /// Admission control (§2.3): true iff the system with this thread
  /// stays feasible; the thread is then part of the admitted set.
  bool addToFeasibility();
  /// Withdraws the thread from the admitted set.
  bool removeFromFeasibility();

  /// Registers the thread with the engine; releases begin at its start
  /// offset. Must be admitted first (or call with force=true to model
  /// systems that skip admission).
  virtual void start();

  /// §3.1 hooks around each job (waitForNextPeriod bracketing).
  virtual void computeBeforePeriodic(std::int64_t /*job*/) {}
  virtual void computeAfterPeriodic(std::int64_t /*job*/) {}

  /// Experiment support: per-job actual costs (fault injection).
  void setCostModel(rt::CostModel model);

  [[nodiscard]] const std::string& getName() const { return params_.name; }
  [[nodiscard]] const sched::TaskParams& getTaskParams() const {
    return params_;
  }
  [[nodiscard]] bool isStarted() const { return started_; }
  /// Valid after start().
  [[nodiscard]] rt::TaskHandle handle() const;
  [[nodiscard]] const rt::TaskStats& getStats() const;

 protected:
  VirtualMachine& vm_;
  sched::TaskParams params_;
  rt::CostModel cost_model_;
  bool admitted_ = false;
  bool started_ = false;
  rt::TaskHandle handle_ = 0;
};

/// The paper's javax.realtime.extended.RealtimeThreadExtended: start()
/// additionally launches the WCRT-offset detector; interrupt() is the
/// cooperative stop of §4.1.
class RealtimeThreadExtended : public RealtimeThread {
 public:
  using FaultHandler =
      std::function<void(RealtimeThreadExtended&, std::int64_t job)>;

  RealtimeThreadExtended(VirtualMachine& vm, std::string name,
                         PriorityParameters priority,
                         PeriodicParameters release);

  /// Installs a fault reaction (default: none — detection only).
  void setFaultHandler(FaultHandler handler);
  /// Detector timer quantization (default: the paper's 10 ms nearest).
  void setDetectorConfig(core::DetectorConfig config);
  /// Overrides the detector threshold; by default start() uses the
  /// WCRT computed from the VM's admitted set.
  void setDetectorThreshold(Duration threshold);

  /// §3.1: super.start(), then the periodic detector with an offset
  /// equal to the (quantized) worst-case response time.
  void start() override;

  /// §4.1: cooperative stop of the whole thread.
  void interrupt();

  [[nodiscard]] std::int64_t faultsDetected() const;
  /// The quantized threshold the running detector uses (post-start).
  [[nodiscard]] Duration detectorThreshold() const;

 private:
  core::DetectorConfig detector_config_{};
  std::optional<Duration> explicit_threshold_;
  FaultHandler fault_handler_;
  std::unique_ptr<core::DetectorBank> detector_;
};

}  // namespace rtft::rtsj
